// End-to-end scenarios combining the full stack: workload generation,
// simulated services, both estimation algorithms, the baseline, budget
// accounting and the experiment runner — small-scale versions of the
// paper's §6 experiments.

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/lnr_agg.h"
#include "core/lr_agg.h"
#include "core/nno_baseline.h"
#include "core/runner.h"
#include "lbs/client.h"
#include "util/stats.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

TEST(Integration, LrBeatsNnoAtEqualBudget) {
  // Figure 12/14 shape: at the same query budget, LR-LBS-AGG's mean
  // relative error is below LR-LBS-NNO's.
  UsaOptions uopts;
  uopts.num_pois = 1000;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());
  const double truth = 1000.0;
  const uint64_t budget = 4000;

  std::vector<RunResult> lr_runs, nno_runs;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    LrClient lr_client(&server, {.k = 5, .budget = budget});
    LrAggOptions lr_opts;
    lr_opts.seed = seed;
    LrAggEstimator lr(&lr_client, &sampler, AggregateSpec::Count(), lr_opts);
    lr_runs.push_back(RunWithBudget(MakeHandle(&lr), budget));

    LrClient nno_client(&server, {.k = 5, .budget = budget});
    NnoOptions nno_opts;
    nno_opts.seed = seed;
    NnoEstimator nno(&nno_client, AggregateSpec::Count(), nno_opts);
    nno_runs.push_back(RunWithBudget(MakeHandle(&nno), budget));
  }
  const ErrorCurve lr_curve = ComputeErrorCurve(lr_runs, truth, 10);
  const ErrorCurve nno_curve = ComputeErrorCurve(nno_runs, truth, 10);
  EXPECT_LT(lr_curve.mean_rel_error.back(), nno_curve.mean_rel_error.back());
}

TEST(Integration, StarbucksPassThroughPipeline) {
  // Table-1 scenario: COUNT(name = Starbucks) with the condition passed
  // through to the service.
  UsaOptions uopts;
  uopts.num_pois = 3000;
  const UsaScenario usa = BuildUsaScenario(uopts);
  const double truth =
      usa.dataset->GroundTruthCount(NameIs(usa.columns, "Starbucks"));
  ASSERT_GT(truth, 20);

  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5, .budget = 6000});
  client.SetPassThroughFilter(NameIs(usa.columns, "Starbucks"));
  CensusSampler sampler(&usa.census);
  LrAggOptions opts;
  opts.seed = 5;
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  const RunResult run = RunWithBudget(MakeHandle(&est), 6000);
  EXPECT_NEAR(run.final_estimate, truth, 0.3 * truth);
}

TEST(Integration, WeChatGenderRatioPipeline) {
  // Table-1 scenario: gender ratio over an LNR service with k = 50-style
  // interface (scaled down).
  ChinaOptions copts;
  copts.num_users = 700;
  copts.male_fraction = 0.671;
  const ChinaScenario china = BuildChinaScenario(copts);
  LbsServer server(china.dataset.get(), {.max_k = 5});
  LnrClient male_client(&server, {.k = 5});
  LnrClient all_client(&server, {.k = 5});
  CensusSampler sampler(&china.census);
  const int gender_col = male_client.schema().Require("gender");

  LnrAggOptions opts;
  opts.seed = 7;
  LnrAggEstimator male_est(
      &male_client, &sampler,
      AggregateSpec::CountWhere(ColumnEquals(gender_col, "M"), "COUNT(male)"),
      opts);
  LnrAggEstimator all_est(&all_client, &sampler, AggregateSpec::Count(), opts);
  for (int i = 0; i < 150; ++i) {
    male_est.Step();
    all_est.Step();
  }
  const double ratio = male_est.Estimate() / all_est.Estimate();
  EXPECT_NEAR(ratio, 0.671, 0.15);
}

TEST(Integration, SharedHistoryAcrossSamplesReducesMarginalCost) {
  // §3.2.2 at the estimator level: later samples must get cheaper as the
  // history fills in.
  UsaOptions uopts;
  uopts.num_pois = 1500;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  UniformSampler sampler(usa.dataset->box());
  // Fixed h = 1 isolates the history effect: adaptive-h deliberately spends
  // more queries per sample once history enables larger h.
  LrAggOptions opts;
  opts.adaptive_h = false;
  opts.fixed_h = 1;
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  uint64_t first10 = 0, last10 = 0;
  for (int i = 0; i < 10; ++i) est.Step();
  first10 = client.queries_used();
  for (int i = 0; i < 90; ++i) est.Step();
  const uint64_t before_last = client.queries_used();
  for (int i = 0; i < 10; ++i) est.Step();
  last10 = client.queries_used() - before_last;
  EXPECT_LT(last10, first10);
}

TEST(Integration, BudgetIsSoftButBounding) {
  UsaOptions uopts;
  uopts.num_pois = 500;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  LrClient client(&server, {.k = 3, .budget = 200});
  UniformSampler sampler(usa.dataset->box());
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {});
  const RunResult run = RunWithBudget(MakeHandle(&est), client.budget());
  EXPECT_GE(run.queries, 200u);
  // Soft overshoot is bounded by one sample's worth of queries.
  EXPECT_LT(run.queries, 200u + 500u);
  EXPECT_FALSE(client.HasBudget());
}

TEST(Integration, SubsampledDatabasesGiveProportionalCounts) {
  // Figure 18's mechanism: estimates track the subsampled ground truth.
  UsaOptions uopts;
  uopts.num_pois = 1600;
  const UsaScenario usa = BuildUsaScenario(uopts);
  Rng rng(11);
  for (double fraction : {0.25, 0.5}) {
    Dataset sub = usa.dataset->Subsample(fraction, rng);
    LbsServer server(&sub, {.max_k = 5});
    LrClient client(&server, {.k = 5});
    UniformSampler sampler(sub.box());
    LrAggOptions opts;
    opts.seed = 13;
    LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    for (int i = 0; i < 200; ++i) est.Step();
    EXPECT_NEAR(est.Estimate(), sub.GroundTruthCount(),
                0.25 * sub.GroundTruthCount())
        << fraction;
  }
}

}  // namespace
}  // namespace lbsagg
