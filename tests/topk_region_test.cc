#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/topk_region.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

std::vector<Vec2> RandomPoints(int n, Rng& rng) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

std::vector<Vec2> OthersOf(const std::vector<Vec2>& pts, size_t focal) {
  std::vector<Vec2> others;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i != focal) others.push_back(pts[i]);
  }
  return others;
}

TEST(TopkRegion, SinglePointOwnsWholeBox) {
  const TopkRegion r = ComputeTopkRegion({50, 50}, {}, kBox, 1);
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_NEAR(r.area, kBox.Area(), 1e-9);
}

TEST(TopkRegion, TwoPointsSplitTheBoxEvenly) {
  const TopkRegion r = ComputeTopkRegion({25, 50}, {{75, 50}}, kBox, 1);
  EXPECT_NEAR(r.area, kBox.Area() / 2.0, 1e-9);
  EXPECT_TRUE(r.Contains({10, 50}));
  EXPECT_FALSE(r.Contains({90, 50}));
}

TEST(TopkRegion, Top2OfTwoPointsIsEverything) {
  const TopkRegion r = ComputeTopkRegion({25, 50}, {{75, 50}}, kBox, 2);
  EXPECT_NEAR(r.area, kBox.Area(), 1e-9);
}

TEST(TopkRegion, K1IsConvexSinglePiece) {
  Rng rng(101);
  const std::vector<Vec2> pts = RandomPoints(20, rng);
  const TopkRegion r = ComputeTopkRegion(pts[0], OthersOf(pts, 0), kBox, 1);
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_TRUE(r.Contains(pts[0]));
}

TEST(TopkRegion, ContainsFocalPointForAllK) {
  Rng rng(103);
  const std::vector<Vec2> pts = RandomPoints(30, rng);
  for (int k = 1; k <= 5; ++k) {
    const TopkRegion r = ComputeTopkRegion(pts[3], OthersOf(pts, 3), kBox, k);
    EXPECT_TRUE(r.Contains(pts[3], 1e-6)) << "k=" << k;
  }
}

TEST(TopkRegion, MonotoneInK) {
  Rng rng(107);
  const std::vector<Vec2> pts = RandomPoints(25, rng);
  double prev = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const TopkRegion r = ComputeTopkRegion(pts[7], OthersOf(pts, 7), kBox, k);
    EXPECT_GE(r.area, prev - 1e-9) << "k=" << k;
    prev = r.area;
  }
}

TEST(TopkRegion, MembershipMatchesRankDefinition) {
  Rng rng(109);
  const std::vector<Vec2> pts = RandomPoints(15, rng);
  const std::vector<Vec2> others = OthersOf(pts, 4);
  for (int k = 1; k <= 4; ++k) {
    const TopkRegion r = ComputeTopkRegion(pts[4], others, kBox, k);
    for (int i = 0; i < 500; ++i) {
      const Vec2 q = kBox.SamplePoint(rng);
      const bool in_region = r.Contains(q, 1e-9);
      const bool by_rank = RankAt(q, pts[4], others) < k;
      // Allow disagreement only within a hair of the boundary.
      if (in_region != by_rank) {
        bool near_boundary = false;
        for (const Segment& s : r.boundary_edges) {
          const Line l = Line::Through(s.a, s.b);
          if (l.DistanceTo(q) < 1e-6) near_boundary = true;
        }
        EXPECT_TRUE(near_boundary)
            << "q=" << q << " k=" << k << " in_region=" << in_region;
      }
    }
  }
}

// Σ_t |V_k(t)| = k · |B|: every location lies in exactly k top-k cells
// (§2.2, first observation).
class TopkPartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(TopkPartitionTest, CellAreasSumToKTimesBoxArea) {
  const int k = GetParam();
  Rng rng(113 + k);
  const std::vector<Vec2> pts = RandomPoints(18, rng);
  double total = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    total += ComputeTopkRegion(pts[i], OthersOf(pts, i), kBox, k).area;
  }
  EXPECT_NEAR(total, k * kBox.Area(), 1e-5 * kBox.Area());
}

INSTANTIATE_TEST_SUITE_P(AllK, TopkPartitionTest, ::testing::Values(1, 2, 3, 5));

TEST(TopkRegion, SubsetCellContainsFullCell) {
  // Theorem 1 precondition: the cell from a subset of constraints covers
  // the true cell.
  Rng rng(127);
  const std::vector<Vec2> pts = RandomPoints(40, rng);
  const std::vector<Vec2> all = OthersOf(pts, 0);
  std::vector<Vec2> subset(all.begin(), all.begin() + 10);
  for (int k : {1, 3}) {
    const TopkRegion full = ComputeTopkRegion(pts[0], all, kBox, k);
    const TopkRegion partial = ComputeTopkRegion(pts[0], subset, kBox, k);
    EXPECT_GE(partial.area, full.area - 1e-9);
    // Every point of the full cell is in the partial cell.
    Rng rng2(131);
    for (int i = 0; i < 300; ++i) {
      const Vec2 q = full.SamplePoint(rng2);
      EXPECT_TRUE(partial.Contains(q, 1e-6));
    }
  }
}

TEST(TopkRegion, BoundaryVerticesLieOnBoundary) {
  Rng rng(137);
  const std::vector<Vec2> pts = RandomPoints(25, rng);
  const std::vector<Vec2> others = OthersOf(pts, 2);
  for (int k : {1, 2, 4}) {
    const TopkRegion r = ComputeTopkRegion(pts[2], others, kBox, k);
    for (const Vec2& v : r.BoundaryVertices()) {
      // A boundary vertex is in the closed region...
      EXPECT_TRUE(r.Contains(v, 1e-6));
      // ...and not interior: some nearby point is outside.
      bool outside_nearby = false;
      for (int a = 0; a < 16; ++a) {
        const double ang = 2 * M_PI * a / 16;
        const Vec2 probe = v + Vec2{std::cos(ang), std::sin(ang)} * 1e-4;
        if (!kBox.Contains(probe) ||
            RankAt(probe, pts[2], others) >= k) {
          outside_nearby = true;
          break;
        }
      }
      EXPECT_TRUE(outside_nearby) << "vertex " << v << " seems interior";
    }
  }
}

TEST(TopkRegion, SamplePointsStayInRegion) {
  Rng rng(139);
  const std::vector<Vec2> pts = RandomPoints(20, rng);
  const std::vector<Vec2> others = OthersOf(pts, 5);
  const TopkRegion r = ComputeTopkRegion(pts[5], others, kBox, 3);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 p = r.SamplePoint(rng);
    EXPECT_TRUE(kBox.Contains(p));
    EXPECT_LT(RankAt(p, pts[5], others), 3);
  }
}

TEST(TopkRegion, LevelRegionFromLinesMatchesBisectors) {
  Rng rng(149);
  const std::vector<Vec2> pts = RandomPoints(12, rng);
  const Vec2 focal = pts[0];
  const std::vector<Vec2> others = OthersOf(pts, 0);
  std::vector<Line> lines;
  for (const Vec2& o : others) lines.push_back(Line::Bisector(focal, o));
  for (int k : {1, 2, 3}) {
    const TopkRegion a = ComputeTopkRegion(focal, others, kBox, k);
    const TopkRegion b = ComputeLevelRegionFromLines(lines, kBox, k);
    EXPECT_NEAR(a.area, b.area, 1e-7 * kBox.Area());
  }
}

TEST(TopkRegion, DuplicateOfFocalIgnored) {
  const Vec2 focal{50, 50};
  const TopkRegion r =
      ComputeTopkRegion(focal, {focal, {80, 50}}, kBox, 1);
  EXPECT_NEAR(r.area, kBox.Area() * 0.65, 1e-9);
}

TEST(TopkRegion, InscribedCirclePolygonArea) {
  const ConvexPolygon disc = InscribedCirclePolygon({50, 50}, 10.0, 256);
  EXPECT_EQ(disc.size(), 256u);
  // Inscribed n-gon area = (n/2) r^2 sin(2π/n); relative defect < 1e-3.
  EXPECT_NEAR(disc.Area(), M_PI * 100.0, 1e-3 * M_PI * 100.0);
  EXPECT_TRUE(disc.Contains({50, 50}));
  EXPECT_FALSE(disc.Contains({61, 50}));
}

TEST(TopkRegion, DomainOverloadClipsRegion) {
  const Vec2 focal{50, 50};
  const std::vector<Vec2> others = {{80, 50}};
  const ConvexPolygon domain = InscribedCirclePolygon(focal, 10.0);
  const TopkRegion r = ComputeTopkRegion(focal, others, domain, 1);
  // The bisector x = 65 does not cut the radius-10 disc: the whole disc.
  EXPECT_NEAR(r.area, domain.Area(), 1e-9);
  const TopkRegion r2 =
      ComputeTopkRegion(focal, std::vector<Vec2>{{58, 50}}, domain, 1);
  // Bisector x = 54 cuts the disc: circular segment areas must add up.
  EXPECT_LT(r2.area, domain.Area());
  EXPECT_GT(r2.area, 0.5 * domain.Area());
}

TEST(TopkRegion, ConcaveTopKCellIsRepresented) {
  // Figure 1-style configuration: a ring of points around a center makes
  // the top-2 cell of an off-center tuple concave; the piece decomposition
  // must still represent it exactly (area check against brute force).
  std::vector<Vec2> others;
  const Vec2 center{50, 50};
  for (int i = 0; i < 5; ++i) {
    const double a = 2 * M_PI * i / 5;
    others.push_back(center + Vec2{std::cos(a), std::sin(a)} * 20.0);
  }
  const Vec2 focal = center + Vec2{25.0, 0.0};
  std::vector<Vec2> ring_others;
  for (const Vec2& o : others) {
    if (Distance(o, focal) > 1e-9) ring_others.push_back(o);
  }
  const TopkRegion r = ComputeTopkRegion(focal, ring_others, kBox, 2);
  // Monte-Carlo brute-force area.
  Rng rng(151);
  int inside = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const Vec2 q = kBox.SamplePoint(rng);
    if (RankAt(q, focal, ring_others) < 2) ++inside;
  }
  const double mc_area = kBox.Area() * inside / n;
  EXPECT_NEAR(r.area, mc_area, 0.02 * kBox.Area());
  EXPECT_GT(r.pieces.size(), 1u);  // genuinely non-convex decomposition
}

// --- Pruning / incremental regression (DESIGN.md "Hot path & complexity").

std::vector<Vec2> SortedVertices(const TopkRegion& r) {
  std::vector<Vec2> vs = r.BoundaryVertices();
  std::sort(vs.begin(), vs.end(), [](const Vec2& a, const Vec2& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  return vs;
}

// Line pruning only skips lines whose clip would be a no-op, so the pruned
// production path must be *bit-identical* to the unpruned reference: same
// area double, same piece decomposition, same boundary vertices.
TEST(TopkRegionPruning, PrunedMatchesUnprunedBitExact) {
  for (const uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    Rng rng(seed);
    const std::vector<Vec2> pts = RandomPoints(40, rng);
    const ConvexPolygon domain = ConvexPolygon::FromBox(kBox);
    for (int h = 1; h <= 5; ++h) {
      const TopkRegion pruned =
          ComputeTopkRegion(pts[0], OthersOf(pts, 0), domain, h);
      const TopkRegion reference =
          ComputeTopkRegionUnpruned(pts[0], OthersOf(pts, 0), domain, h);
      ASSERT_EQ(pruned.pieces.size(), reference.pieces.size())
          << "seed " << seed << " h " << h;
      EXPECT_EQ(pruned.area, reference.area) << "seed " << seed << " h " << h;
      const auto va = SortedVertices(pruned);
      const auto vb = SortedVertices(reference);
      ASSERT_EQ(va.size(), vb.size()) << "seed " << seed << " h " << h;
      for (size_t i = 0; i < va.size(); ++i) {
        EXPECT_EQ(va[i].x, vb[i].x);
        EXPECT_EQ(va[i].y, vb[i].y);
      }
    }
  }
}

TEST(TopkRegionPruning, LevelRegionFromLinesMatchesUnpruned) {
  Rng rng(77);
  const std::vector<Vec2> pts = RandomPoints(30, rng);
  const ConvexPolygon domain = ConvexPolygon::FromBox(kBox);
  const Vec2 focal = pts[0];
  std::vector<Line> lines;
  for (size_t i = 1; i < pts.size(); ++i) {
    lines.push_back(Line::Bisector(focal, pts[i]));
  }
  for (int h = 1; h <= 4; ++h) {
    const TopkRegion pruned = ComputeLevelRegionFromLines(lines, domain, h);
    const TopkRegion reference =
        ComputeLevelRegionFromLinesUnpruned(lines, domain, h);
    EXPECT_EQ(pruned.area, reference.area) << "h " << h;
    EXPECT_EQ(pruned.pieces.size(), reference.pieces.size()) << "h " << h;
  }
}

// Feeding the refiner every point in one batch applies the same lines in
// the same (distance-sorted) order as the batch computation, so the result
// is bit-identical to ComputeTopkRegion.
TEST(TopkRegionPruning, RefinerSingleBatchMatchesBatchBitExact) {
  Rng rng(78);
  const std::vector<Vec2> pts = RandomPoints(35, rng);
  const ConvexPolygon domain = ConvexPolygon::FromBox(kBox);
  for (int h = 1; h <= 4; ++h) {
    TopkRegionRefiner refiner(domain, h);
    refiner.AddPoints(pts[0], OthersOf(pts, 0));
    const TopkRegion got = refiner.Region();
    const TopkRegion want = ComputeTopkRegion(pts[0], OthersOf(pts, 0),
                                              domain, h);
    EXPECT_EQ(got.area, want.area) << "h " << h;
    EXPECT_EQ(got.pieces.size(), want.pieces.size()) << "h " << h;
  }
}

// Incremental arrival (points in several round-sized batches) clips in a
// different order, so the decomposition may differ — but the *region* must
// match the from-scratch recompute up to floating-point clipping accuracy.
TEST(TopkRegionPruning, RefinerIncrementalMatchesScratchRegion) {
  for (const uint64_t seed : {21u, 22u, 23u}) {
    Rng rng(seed);
    const std::vector<Vec2> pts = RandomPoints(41, rng);
    const ConvexPolygon domain = ConvexPolygon::FromBox(kBox);
    const Vec2 focal = pts[0];
    const std::vector<Vec2> others = OthersOf(pts, 0);
    for (int h = 1; h <= 5; ++h) {
      TopkRegionRefiner refiner(domain, h);
      constexpr size_t kBatch = 10;
      for (size_t lo = 0; lo < others.size(); lo += kBatch) {
        const size_t hi = std::min(lo + kBatch, others.size());
        refiner.AddPoints(
            focal, std::vector<Vec2>(others.begin() + lo, others.begin() + hi));
      }
      const TopkRegion got = refiner.Region();
      const TopkRegion want = ComputeTopkRegion(focal, others, domain, h);
      EXPECT_NEAR(got.area, want.area, 1e-9 * kBox.Area())
          << "seed " << seed << " h " << h;
      // Membership agrees at points sampled from either region (probed a
      // hair inside to stay clear of boundary rounding).
      Rng probe_rng(seed * 1000 + h);
      for (int t = 0; t < 200; ++t) {
        const Vec2 p = want.SamplePoint(probe_rng);
        const int rank = RankAt(p, focal, others);
        if (rank < h) {
          EXPECT_TRUE(got.Contains(p, 1e-7)) << "seed " << seed << " h " << h;
        }
      }
    }
  }
}

}  // namespace
}  // namespace lbsagg
