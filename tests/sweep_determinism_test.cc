// SweepEstimators fans (spec, seed) tasks out over worker threads. Each
// task is a pure function of its seed (every run owns its client and RNG;
// the shared server and sampler are immutable), so the traces must be
// bit-identical no matter how many threads execute them or how the atomic
// counter interleaves. This is what makes every bench/fig*.cc number
// reproducible on machines with different core counts.

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bench_common.h"
#include "core/lr_agg.h"
#include "engine/engine.h"
#include "engine/nno_resolver.h"
#include "lbs/sharded_server.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "transport/sharded_transport.h"

namespace lbsagg {
namespace bench {
namespace {

std::map<std::string, std::vector<RunResult>> RunSweep(unsigned num_threads) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  static LbsServer* server = new LbsServer(usa->dataset.get(), {.max_k = 10});
  static const UniformSampler* sampler =
      new UniformSampler(usa->dataset->box());

  const AggregateSpec aggregate = AggregateSpec::Count();
  const std::vector<EstimatorSpec> specs = {
      MakeLrSpec("lr", server, sampler, aggregate, /*k=*/3),
      MakeNnoSpec("nno", server, aggregate, /*k=*/3),
  };
  return SweepEstimators(specs, /*runs=*/6, /*budget=*/300,
                         /*seed_base=*/42, num_threads);
}

TEST(SweepDeterminism, OneVersusManyThreadsBitIdentical) {
  const auto serial = RunSweep(1);
  const auto parallel = RunSweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, runs] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    ASSERT_EQ(runs.size(), it->second.size()) << name;
    for (size_t r = 0; r < runs.size(); ++r) {
      const RunResult& a = runs[r];
      const RunResult& b = it->second[r];
      EXPECT_EQ(a.queries, b.queries) << name << " run " << r;
      EXPECT_EQ(a.final_estimate, b.final_estimate) << name << " run " << r;
      ASSERT_EQ(a.trace.size(), b.trace.size()) << name << " run " << r;
      for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].queries, b.trace[i].queries);
        EXPECT_EQ(a.trace[i].estimate, b.trace[i].estimate);
      }
    }
  }
}

// The same determinism contract extended to the metric plane (DESIGN.md
// §4.8): a run's counters and histograms are a pure function of its seed,
// not of the dispatcher's worker count or scheduling. Each run injects a
// fresh registry, so nothing leaks between runs or onto the process-wide
// default plane.
obs::MetricsSnapshot RunFlakyWithRegistry(unsigned dispatcher_workers,
                                          uint64_t seed) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));

  obs::MetricsRegistry registry;
  // The spatial layer is opt-in; wire it too so the comparison covers the
  // kd-tree's per-search counters under concurrent batch probes.
  LbsServer server(usa->dataset.get(),
                   {.max_k = 10, .stats_registry = &registry});

  SimulatedTransportOptions topts;
  topts.faults.transient_error_rate = 0.05;
  topts.faults.truncate_rate = 0.03;
  topts.retry.max_attempts = 3;
  topts.seed = seed;
  topts.registry = &registry;
  SimulatedTransport transport(&server, topts);

  std::unique_ptr<AsyncDispatcher> dispatcher;
  if (dispatcher_workers > 0) {
    dispatcher = std::make_unique<AsyncDispatcher>(
        &transport, DispatcherOptions{dispatcher_workers, 64});
  }
  LrClient client(&server, {.k = 3, .budget = 300, .registry = &registry},
                  &transport, dispatcher.get());
  NnoEstimator est(&client, AggregateSpec::Count(),
                   {.seed = seed, .registry = &registry});
  (void)RunWithBudget(MakeHandle(&est), /*budget=*/300);
  PublishTransportMetrics(transport.Metrics(), &registry);
  return registry.Snapshot();
}

TEST(SweepDeterminism, MetricSnapshotsIdenticalAcrossWorkerCounts) {
  const obs::MetricsSnapshot one = RunFlakyWithRegistry(1, 42);
  const obs::MetricsSnapshot four = RunFlakyWithRegistry(4, 42);
  const obs::MetricsSnapshot eight = RunFlakyWithRegistry(8, 42);
  // The snapshots are name-sorted, so == is a full bit-identical compare of
  // every counter, gauge and histogram across the worker counts.
  EXPECT_EQ(one, four);
  EXPECT_EQ(four, eight);
}

TEST(SweepDeterminism, MetricSnapshotsIdenticalAcrossRepeatedRuns) {
  EXPECT_EQ(RunFlakyWithRegistry(4, 43), RunFlakyWithRegistry(4, 43));
  // Different seeds must actually change the numbers, or the comparisons
  // above prove nothing.
  EXPECT_NE(RunFlakyWithRegistry(4, 43), RunFlakyWithRegistry(4, 44));
}

// The engine's evidence store adds no nondeterminism of its own: over the
// fault-injecting transport and the worker-pool dispatcher, the full log —
// round boundaries, observation order, and every observation's bit pattern
// — plus the consumer traces and the metric plane are a pure function of
// the seed, not of the dispatcher's worker count.
struct EngineRun {
  uint64_t evidence_hash = 0;
  std::vector<TracePoint> count_trace;
  std::vector<TracePoint> sum_trace;
  obs::MetricsSnapshot snapshot;
};

uint64_t HashEvidence(const engine::EvidenceStore& store) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  auto mix_double = [&](uint64_t h, double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    return mix(h, bits);
  };
  uint64_t h = 0;
  for (size_t r = 0; r < store.num_rounds(); ++r) {
    const engine::EvidenceRound& round = store.round(r);
    h = mix(h, round.queries_after);
    h = mix_double(h, round.sample_point.x);
    h = mix_double(h, round.sample_point.y);
    const engine::Observation* obs = store.observations(round);
    for (size_t i = 0; i < round.num_observations; ++i) {
      h = mix(h, static_cast<uint64_t>(obs[i].tuple_id));
      h = mix(h, static_cast<uint64_t>(obs[i].weight_form));
      h = mix_double(h, obs[i].weight);
      h = mix(h, obs[i].cost);
    }
  }
  return h;
}

EngineRun RunEngineFlaky(unsigned dispatcher_workers, uint64_t seed) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  const int rating = usa->columns.rating;

  obs::MetricsRegistry registry;
  LbsServer server(usa->dataset.get(),
                   {.max_k = 10, .stats_registry = &registry});

  SimulatedTransportOptions topts;
  topts.faults.transient_error_rate = 0.05;
  topts.faults.truncate_rate = 0.03;
  topts.retry.max_attempts = 3;
  topts.seed = seed;
  topts.registry = &registry;
  SimulatedTransport transport(&server, topts);

  std::unique_ptr<AsyncDispatcher> dispatcher;
  if (dispatcher_workers > 0) {
    dispatcher = std::make_unique<AsyncDispatcher>(
        &transport, DispatcherOptions{dispatcher_workers, 64});
  }
  LrClient client(&server, {.k = 3, .budget = 300, .registry = &registry},
                  &transport, dispatcher.get());

  engine::NnoProbeResolver resolver(&client,
                                    {.seed = seed, .registry = &registry});
  engine::EstimationEngine eng(&resolver,
                               engine::EngineOptions{.registry = &registry});
  auto* count = eng.AddAggregate(AggregateSpec::Count());
  auto* sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
  (void)RunEngineWithBudget(&eng, /*budget=*/300);
  PublishTransportMetrics(transport.Metrics(), &registry);

  EngineRun run;
  run.evidence_hash = HashEvidence(eng.evidence());
  run.count_trace = count->trace();
  run.sum_trace = sum->trace();
  run.snapshot = registry.Snapshot();
  return run;
}

void ExpectEngineRunsIdentical(const EngineRun& a, const EngineRun& b) {
  EXPECT_EQ(a.evidence_hash, b.evidence_hash);
  ASSERT_EQ(a.count_trace.size(), b.count_trace.size());
  for (size_t i = 0; i < a.count_trace.size(); ++i) {
    EXPECT_EQ(a.count_trace[i].queries, b.count_trace[i].queries);
    EXPECT_EQ(a.count_trace[i].estimate, b.count_trace[i].estimate);
  }
  ASSERT_EQ(a.sum_trace.size(), b.sum_trace.size());
  for (size_t i = 0; i < a.sum_trace.size(); ++i) {
    EXPECT_EQ(a.sum_trace[i].queries, b.sum_trace[i].queries);
    EXPECT_EQ(a.sum_trace[i].estimate, b.sum_trace[i].estimate);
  }
  EXPECT_EQ(a.snapshot, b.snapshot);
}

TEST(SweepDeterminism, EngineEvidenceIdenticalAcrossWorkerCounts) {
  const EngineRun one = RunEngineFlaky(1, 42);
  const EngineRun four = RunEngineFlaky(4, 42);
  const EngineRun eight = RunEngineFlaky(8, 42);
  ExpectEngineRunsIdentical(one, four);
  ExpectEngineRunsIdentical(four, eight);
}

TEST(SweepDeterminism, EngineEvidenceIdenticalAcrossRepeatedSeeds) {
  ExpectEngineRunsIdentical(RunEngineFlaky(4, 43), RunEngineFlaky(4, 43));
  EXPECT_NE(RunEngineFlaky(4, 43).evidence_hash,
            RunEngineFlaky(4, 44).evidence_hash);
}

// ---------------------------------------------------------------------------
// Sharded stack: the scatter-gather wire must be invisible to estimators.
// With clean lanes, the evidence log and the consumer traces are a pure
// function of the seed — invariant to the shard count (1/4/16), to the
// dispatcher worker count (1/8), and identical to the monolithic server
// behind a clean SimulatedTransport. The full metric snapshot is compared
// only across worker counts: per-lane counters (transport.shardNN.*,
// transport.sharded.fanout) legitimately depend on the shard count — that
// per-lane accounting existing is the point, it just must never leak into
// what the estimator sees.

EngineRun RunEngineSharded(int num_shards, unsigned dispatcher_workers,
                           uint64_t seed) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  const int rating = usa->columns.rating;

  obs::MetricsRegistry registry;
  const ShardedLbsServer sharded(
      usa->dataset.get(),
      {.num_shards = num_shards, .server = ServerOptions{.max_k = 10}});
  // Metadata server for the client: never searched (every query routes
  // through the transport), so the brute backend skips the index build.
  const LbsServer meta(usa->dataset.get(),
                       {.max_k = 10,
                        .index_backend = IndexBackend::kBruteForce});

  ShardedTransportOptions topts;
  topts.rate_limit = {.capacity = 8.0, .refill_per_sec = 50.0};
  topts.seed = seed;
  topts.registry = &registry;
  ShardedTransport transport(&sharded, topts);

  std::unique_ptr<AsyncDispatcher> dispatcher;
  if (dispatcher_workers > 0) {
    dispatcher = std::make_unique<AsyncDispatcher>(
        &transport, DispatcherOptions{dispatcher_workers, 64});
  }
  LrClient client(&meta, {.k = 3, .budget = 300, .registry = &registry},
                  &transport, dispatcher.get());

  engine::NnoProbeResolver resolver(&client,
                                    {.seed = seed, .registry = &registry});
  engine::EstimationEngine eng(&resolver,
                               engine::EngineOptions{.registry = &registry});
  auto* count = eng.AddAggregate(AggregateSpec::Count());
  auto* sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
  (void)RunEngineWithBudget(&eng, /*budget=*/300);
  PublishTransportMetrics(transport.Metrics(), &registry);

  EngineRun run;
  run.evidence_hash = HashEvidence(eng.evidence());
  run.count_trace = count->trace();
  run.sum_trace = sum->trace();
  run.snapshot = registry.Snapshot();
  return run;
}

// Evidence + consumer traces only (the estimator-visible surface).
void ExpectEstimatorSurfaceIdentical(const EngineRun& a, const EngineRun& b) {
  EXPECT_EQ(a.evidence_hash, b.evidence_hash);
  ASSERT_EQ(a.count_trace.size(), b.count_trace.size());
  for (size_t i = 0; i < a.count_trace.size(); ++i) {
    EXPECT_EQ(a.count_trace[i].queries, b.count_trace[i].queries);
    EXPECT_EQ(a.count_trace[i].estimate, b.count_trace[i].estimate);
  }
  ASSERT_EQ(a.sum_trace.size(), b.sum_trace.size());
  for (size_t i = 0; i < a.sum_trace.size(); ++i) {
    EXPECT_EQ(a.sum_trace[i].queries, b.sum_trace[i].queries);
    EXPECT_EQ(a.sum_trace[i].estimate, b.sum_trace[i].estimate);
  }
}

TEST(SweepDeterminism, ShardedEvidenceInvariantToShardAndWorkerCount) {
  const EngineRun base = RunEngineSharded(1, 1, 42);
  ASSERT_GT(base.count_trace.size(), 0u);
  for (int shards : {1, 4, 16}) {
    const EngineRun one = RunEngineSharded(shards, 1, 42);
    const EngineRun eight = RunEngineSharded(shards, 8, 42);
    // Same shard count, different worker counts: everything matches, the
    // per-lane metric plane included.
    ExpectEngineRunsIdentical(one, eight);
    // Across shard counts the estimator-visible surface is unchanged.
    ExpectEstimatorSurfaceIdentical(base, one);
  }
}

TEST(SweepDeterminism, ShardedEvidenceMatchesMonolithicStack) {
  // The monolith anchor: same seed, same clean-wire cost model (one attempt
  // per logical query), no shards at all.
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  const int rating = usa->columns.rating;

  obs::MetricsRegistry registry;
  LbsServer server(usa->dataset.get(), {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.seed = 42;
  topts.registry = &registry;
  SimulatedTransport transport(&server, topts);
  LrClient client(&server, {.k = 3, .budget = 300, .registry = &registry},
                  &transport);
  engine::NnoProbeResolver resolver(&client, {.seed = 42});
  engine::EstimationEngine eng(&resolver, engine::EngineOptions{});
  auto* count = eng.AddAggregate(AggregateSpec::Count());
  auto* sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
  (void)RunEngineWithBudget(&eng, /*budget=*/300);

  EngineRun mono;
  mono.evidence_hash = HashEvidence(eng.evidence());
  mono.count_trace = count->trace();
  mono.sum_trace = sum->trace();
  ExpectEstimatorSurfaceIdentical(mono, RunEngineSharded(4, 8, 42));
}

// The legacy fingerprint (engine_regression_test.cc) reproduced through the
// full sharded stack: 6000-POI USA scenario, census sampler, three seeds of
// the LR estimator at budget 4000, every trace point folded into one hash.
// Bit-equality here means the scatter, the per-lane policy pipeline, and
// the (d2, id) merge fold changed *nothing* observable end to end.
TEST(SweepDeterminism, LegacyTraceFingerprintThroughShardedStack) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  UsaOptions uopts;
  uopts.num_pois = 6000;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(uopts));
  CensusSampler sampler(&usa->census);
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa->columns.category, "restaurant"),
      "COUNT(restaurants)");
  const LbsServer meta(usa->dataset.get(),
                       {.max_k = 5,
                        .index_backend = IndexBackend::kBruteForce});
  for (int shards : {1, 4}) {
    const ShardedLbsServer sharded(
        usa->dataset.get(),
        {.num_shards = shards, .server = ServerOptions{.max_k = 5}});
    ShardedTransport transport(&sharded, {});
    uint64_t hash = 0;
    for (uint64_t seed = 42; seed < 45; ++seed) {
      LrClient client(&meta, {.k = 5, .budget = 4000}, &transport);
      LrAggOptions opts;
      opts.seed = seed;
      LrAggEstimator est(&client, &sampler, spec, opts);
      const RunResult r = RunWithBudget(MakeHandle(&est), 4000);
      for (const TracePoint& tp : r.trace) {
        uint64_t bits;
        std::memcpy(&bits, &tp.estimate, sizeof bits);
        hash = mix(hash, tp.queries);
        hash = mix(hash, bits);
      }
    }
    EXPECT_EQ(hash, 0x8e13737b33817270ull) << shards << " shards";
  }
}

}  // namespace
}  // namespace bench
}  // namespace lbsagg
