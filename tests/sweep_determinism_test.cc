// SweepEstimators fans (spec, seed) tasks out over worker threads. Each
// task is a pure function of its seed (every run owns its client and RNG;
// the shared server and sampler are immutable), so the traces must be
// bit-identical no matter how many threads execute them or how the atomic
// counter interleaves. This is what makes every bench/fig*.cc number
// reproducible on machines with different core counts.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bench_common.h"

namespace lbsagg {
namespace bench {
namespace {

std::map<std::string, std::vector<RunResult>> RunSweep(unsigned num_threads) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  static LbsServer* server = new LbsServer(usa->dataset.get(), {.max_k = 10});
  static const UniformSampler* sampler =
      new UniformSampler(usa->dataset->box());

  const AggregateSpec aggregate = AggregateSpec::Count();
  const std::vector<EstimatorSpec> specs = {
      MakeLrSpec("lr", server, sampler, aggregate, /*k=*/3),
      MakeNnoSpec("nno", server, aggregate, /*k=*/3),
  };
  return SweepEstimators(specs, /*runs=*/6, /*budget=*/300,
                         /*seed_base=*/42, num_threads);
}

TEST(SweepDeterminism, OneVersusManyThreadsBitIdentical) {
  const auto serial = RunSweep(1);
  const auto parallel = RunSweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, runs] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    ASSERT_EQ(runs.size(), it->second.size()) << name;
    for (size_t r = 0; r < runs.size(); ++r) {
      const RunResult& a = runs[r];
      const RunResult& b = it->second[r];
      EXPECT_EQ(a.queries, b.queries) << name << " run " << r;
      EXPECT_EQ(a.final_estimate, b.final_estimate) << name << " run " << r;
      ASSERT_EQ(a.trace.size(), b.trace.size()) << name << " run " << r;
      for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].queries, b.trace[i].queries);
        EXPECT_EQ(a.trace[i].estimate, b.trace[i].estimate);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace lbsagg
