// SweepEstimators fans (spec, seed) tasks out over worker threads. Each
// task is a pure function of its seed (every run owns its client and RNG;
// the shared server and sampler are immutable), so the traces must be
// bit-identical no matter how many threads execute them or how the atomic
// counter interleaves. This is what makes every bench/fig*.cc number
// reproducible on machines with different core counts.

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bench_common.h"
#include "core/lr_agg.h"
#include "engine/engine.h"
#include "engine/nno_resolver.h"
#include "lbs/sharded_server.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "service/service.h"
#include "transport/sharded_transport.h"

namespace lbsagg {
namespace bench {
namespace {

std::map<std::string, std::vector<RunResult>> RunSweep(unsigned num_threads) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  static LbsServer* server = new LbsServer(usa->dataset.get(), {.max_k = 10});
  static const UniformSampler* sampler =
      new UniformSampler(usa->dataset->box());

  const AggregateSpec aggregate = AggregateSpec::Count();
  const std::vector<EstimatorSpec> specs = {
      MakeLrSpec("lr", server, sampler, aggregate, /*k=*/3),
      MakeNnoSpec("nno", server, aggregate, /*k=*/3),
  };
  return SweepEstimators(specs, /*runs=*/6, /*budget=*/300,
                         /*seed_base=*/42, num_threads);
}

TEST(SweepDeterminism, OneVersusManyThreadsBitIdentical) {
  const auto serial = RunSweep(1);
  const auto parallel = RunSweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, runs] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    ASSERT_EQ(runs.size(), it->second.size()) << name;
    for (size_t r = 0; r < runs.size(); ++r) {
      const RunResult& a = runs[r];
      const RunResult& b = it->second[r];
      EXPECT_EQ(a.queries, b.queries) << name << " run " << r;
      EXPECT_EQ(a.final_estimate, b.final_estimate) << name << " run " << r;
      ASSERT_EQ(a.trace.size(), b.trace.size()) << name << " run " << r;
      for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].queries, b.trace[i].queries);
        EXPECT_EQ(a.trace[i].estimate, b.trace[i].estimate);
      }
    }
  }
}

// The same determinism contract extended to the metric plane (DESIGN.md
// §4.8): a run's counters and histograms are a pure function of its seed,
// not of the dispatcher's worker count or scheduling. Each run injects a
// fresh registry, so nothing leaks between runs or onto the process-wide
// default plane.
obs::MetricsSnapshot RunFlakyWithRegistry(unsigned dispatcher_workers,
                                          uint64_t seed) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));

  obs::MetricsRegistry registry;
  // The spatial layer is opt-in; wire it too so the comparison covers the
  // kd-tree's per-search counters under concurrent batch probes.
  LbsServer server(usa->dataset.get(),
                   {.max_k = 10, .stats_registry = &registry});

  SimulatedTransportOptions topts;
  topts.faults.transient_error_rate = 0.05;
  topts.faults.truncate_rate = 0.03;
  topts.retry.max_attempts = 3;
  topts.seed = seed;
  topts.registry = &registry;
  SimulatedTransport transport(&server, topts);

  std::unique_ptr<AsyncDispatcher> dispatcher;
  if (dispatcher_workers > 0) {
    dispatcher = std::make_unique<AsyncDispatcher>(
        &transport, DispatcherOptions{dispatcher_workers, 64});
  }
  LrClient client(&server, {.k = 3, .budget = 300, .registry = &registry},
                  &transport, dispatcher.get());
  NnoEstimator est(&client, AggregateSpec::Count(),
                   {.seed = seed, .registry = &registry});
  (void)RunWithBudget(MakeHandle(&est), /*budget=*/300);
  PublishTransportMetrics(transport.Metrics(), &registry);
  return registry.Snapshot();
}

TEST(SweepDeterminism, MetricSnapshotsIdenticalAcrossWorkerCounts) {
  const obs::MetricsSnapshot one = RunFlakyWithRegistry(1, 42);
  const obs::MetricsSnapshot four = RunFlakyWithRegistry(4, 42);
  const obs::MetricsSnapshot eight = RunFlakyWithRegistry(8, 42);
  // The snapshots are name-sorted, so == is a full bit-identical compare of
  // every counter, gauge and histogram across the worker counts.
  EXPECT_EQ(one, four);
  EXPECT_EQ(four, eight);
}

TEST(SweepDeterminism, MetricSnapshotsIdenticalAcrossRepeatedRuns) {
  EXPECT_EQ(RunFlakyWithRegistry(4, 43), RunFlakyWithRegistry(4, 43));
  // Different seeds must actually change the numbers, or the comparisons
  // above prove nothing.
  EXPECT_NE(RunFlakyWithRegistry(4, 43), RunFlakyWithRegistry(4, 44));
}

// The engine's evidence store adds no nondeterminism of its own: over the
// fault-injecting transport and the worker-pool dispatcher, the full log —
// round boundaries, observation order, and every observation's bit pattern
// — plus the consumer traces and the metric plane are a pure function of
// the seed, not of the dispatcher's worker count.
struct EngineRun {
  uint64_t evidence_hash = 0;
  std::vector<TracePoint> count_trace;
  std::vector<TracePoint> sum_trace;
  obs::MetricsSnapshot snapshot;
};

uint64_t HashEvidence(const engine::EvidenceStore& store) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  auto mix_double = [&](uint64_t h, double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    return mix(h, bits);
  };
  uint64_t h = 0;
  for (size_t r = 0; r < store.num_rounds(); ++r) {
    const engine::EvidenceRound& round = store.round(r);
    h = mix(h, round.queries_after);
    h = mix_double(h, round.sample_point.x);
    h = mix_double(h, round.sample_point.y);
    const engine::Observation* obs = store.observations(round);
    for (size_t i = 0; i < round.num_observations; ++i) {
      h = mix(h, static_cast<uint64_t>(obs[i].tuple_id));
      h = mix(h, static_cast<uint64_t>(obs[i].weight_form));
      h = mix_double(h, obs[i].weight);
      h = mix(h, obs[i].cost);
    }
  }
  return h;
}

EngineRun RunEngineFlaky(unsigned dispatcher_workers, uint64_t seed) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  const int rating = usa->columns.rating;

  obs::MetricsRegistry registry;
  LbsServer server(usa->dataset.get(),
                   {.max_k = 10, .stats_registry = &registry});

  SimulatedTransportOptions topts;
  topts.faults.transient_error_rate = 0.05;
  topts.faults.truncate_rate = 0.03;
  topts.retry.max_attempts = 3;
  topts.seed = seed;
  topts.registry = &registry;
  SimulatedTransport transport(&server, topts);

  std::unique_ptr<AsyncDispatcher> dispatcher;
  if (dispatcher_workers > 0) {
    dispatcher = std::make_unique<AsyncDispatcher>(
        &transport, DispatcherOptions{dispatcher_workers, 64});
  }
  LrClient client(&server, {.k = 3, .budget = 300, .registry = &registry},
                  &transport, dispatcher.get());

  engine::NnoProbeResolver resolver(&client,
                                    {.seed = seed, .registry = &registry});
  engine::EstimationEngine eng(&resolver,
                               engine::EngineOptions{.registry = &registry});
  auto* count = eng.AddAggregate(AggregateSpec::Count());
  auto* sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
  (void)RunEngineWithBudget(&eng, /*budget=*/300);
  PublishTransportMetrics(transport.Metrics(), &registry);

  EngineRun run;
  run.evidence_hash = HashEvidence(eng.evidence());
  run.count_trace = count->trace();
  run.sum_trace = sum->trace();
  run.snapshot = registry.Snapshot();
  return run;
}

void ExpectEngineRunsIdentical(const EngineRun& a, const EngineRun& b) {
  EXPECT_EQ(a.evidence_hash, b.evidence_hash);
  ASSERT_EQ(a.count_trace.size(), b.count_trace.size());
  for (size_t i = 0; i < a.count_trace.size(); ++i) {
    EXPECT_EQ(a.count_trace[i].queries, b.count_trace[i].queries);
    EXPECT_EQ(a.count_trace[i].estimate, b.count_trace[i].estimate);
  }
  ASSERT_EQ(a.sum_trace.size(), b.sum_trace.size());
  for (size_t i = 0; i < a.sum_trace.size(); ++i) {
    EXPECT_EQ(a.sum_trace[i].queries, b.sum_trace[i].queries);
    EXPECT_EQ(a.sum_trace[i].estimate, b.sum_trace[i].estimate);
  }
  EXPECT_EQ(a.snapshot, b.snapshot);
}

TEST(SweepDeterminism, EngineEvidenceIdenticalAcrossWorkerCounts) {
  const EngineRun one = RunEngineFlaky(1, 42);
  const EngineRun four = RunEngineFlaky(4, 42);
  const EngineRun eight = RunEngineFlaky(8, 42);
  ExpectEngineRunsIdentical(one, four);
  ExpectEngineRunsIdentical(four, eight);
}

TEST(SweepDeterminism, EngineEvidenceIdenticalAcrossRepeatedSeeds) {
  ExpectEngineRunsIdentical(RunEngineFlaky(4, 43), RunEngineFlaky(4, 43));
  EXPECT_NE(RunEngineFlaky(4, 43).evidence_hash,
            RunEngineFlaky(4, 44).evidence_hash);
}

// ---------------------------------------------------------------------------
// Sharded stack: the scatter-gather wire must be invisible to estimators.
// With clean lanes, the evidence log and the consumer traces are a pure
// function of the seed — invariant to the shard count (1/4/16), to the
// dispatcher worker count (1/8), and identical to the monolithic server
// behind a clean SimulatedTransport. The full metric snapshot is compared
// only across worker counts: per-lane counters (transport.shardNN.*,
// transport.sharded.fanout) legitimately depend on the shard count — that
// per-lane accounting existing is the point, it just must never leak into
// what the estimator sees.

EngineRun RunEngineSharded(int num_shards, unsigned dispatcher_workers,
                           uint64_t seed) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  const int rating = usa->columns.rating;

  obs::MetricsRegistry registry;
  const ShardedLbsServer sharded(
      usa->dataset.get(),
      {.num_shards = num_shards, .server = ServerOptions{.max_k = 10}});
  // Metadata server for the client: never searched (every query routes
  // through the transport), so the brute backend skips the index build.
  const LbsServer meta(usa->dataset.get(),
                       {.max_k = 10,
                        .index_backend = IndexBackend::kBruteForce});

  ShardedTransportOptions topts;
  topts.rate_limit = {.capacity = 8.0, .refill_per_sec = 50.0};
  topts.seed = seed;
  topts.registry = &registry;
  ShardedTransport transport(&sharded, topts);

  std::unique_ptr<AsyncDispatcher> dispatcher;
  if (dispatcher_workers > 0) {
    dispatcher = std::make_unique<AsyncDispatcher>(
        &transport, DispatcherOptions{dispatcher_workers, 64});
  }
  LrClient client(&meta, {.k = 3, .budget = 300, .registry = &registry},
                  &transport, dispatcher.get());

  engine::NnoProbeResolver resolver(&client,
                                    {.seed = seed, .registry = &registry});
  engine::EstimationEngine eng(&resolver,
                               engine::EngineOptions{.registry = &registry});
  auto* count = eng.AddAggregate(AggregateSpec::Count());
  auto* sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
  (void)RunEngineWithBudget(&eng, /*budget=*/300);
  PublishTransportMetrics(transport.Metrics(), &registry);

  EngineRun run;
  run.evidence_hash = HashEvidence(eng.evidence());
  run.count_trace = count->trace();
  run.sum_trace = sum->trace();
  run.snapshot = registry.Snapshot();
  return run;
}

// Evidence + consumer traces only (the estimator-visible surface).
void ExpectEstimatorSurfaceIdentical(const EngineRun& a, const EngineRun& b) {
  EXPECT_EQ(a.evidence_hash, b.evidence_hash);
  ASSERT_EQ(a.count_trace.size(), b.count_trace.size());
  for (size_t i = 0; i < a.count_trace.size(); ++i) {
    EXPECT_EQ(a.count_trace[i].queries, b.count_trace[i].queries);
    EXPECT_EQ(a.count_trace[i].estimate, b.count_trace[i].estimate);
  }
  ASSERT_EQ(a.sum_trace.size(), b.sum_trace.size());
  for (size_t i = 0; i < a.sum_trace.size(); ++i) {
    EXPECT_EQ(a.sum_trace[i].queries, b.sum_trace[i].queries);
    EXPECT_EQ(a.sum_trace[i].estimate, b.sum_trace[i].estimate);
  }
}

TEST(SweepDeterminism, ShardedEvidenceInvariantToShardAndWorkerCount) {
  const EngineRun base = RunEngineSharded(1, 1, 42);
  ASSERT_GT(base.count_trace.size(), 0u);
  for (int shards : {1, 4, 16}) {
    const EngineRun one = RunEngineSharded(shards, 1, 42);
    const EngineRun eight = RunEngineSharded(shards, 8, 42);
    // Same shard count, different worker counts: everything matches, the
    // per-lane metric plane included.
    ExpectEngineRunsIdentical(one, eight);
    // Across shard counts the estimator-visible surface is unchanged.
    ExpectEstimatorSurfaceIdentical(base, one);
  }
}

TEST(SweepDeterminism, ShardedEvidenceMatchesMonolithicStack) {
  // The monolith anchor: same seed, same clean-wire cost model (one attempt
  // per logical query), no shards at all.
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  const int rating = usa->columns.rating;

  obs::MetricsRegistry registry;
  LbsServer server(usa->dataset.get(), {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.seed = 42;
  topts.registry = &registry;
  SimulatedTransport transport(&server, topts);
  LrClient client(&server, {.k = 3, .budget = 300, .registry = &registry},
                  &transport);
  engine::NnoProbeResolver resolver(&client, {.seed = 42});
  engine::EstimationEngine eng(&resolver, engine::EngineOptions{});
  auto* count = eng.AddAggregate(AggregateSpec::Count());
  auto* sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
  (void)RunEngineWithBudget(&eng, /*budget=*/300);

  EngineRun mono;
  mono.evidence_hash = HashEvidence(eng.evidence());
  mono.count_trace = count->trace();
  mono.sum_trace = sum->trace();
  ExpectEstimatorSurfaceIdentical(mono, RunEngineSharded(4, 8, 42));
}

// The legacy fingerprint (engine_regression_test.cc) reproduced through the
// full sharded stack: 6000-POI USA scenario, census sampler, three seeds of
// the LR estimator at budget 4000, every trace point folded into one hash.
// Bit-equality here means the scatter, the per-lane policy pipeline, and
// the (d2, id) merge fold changed *nothing* observable end to end.
TEST(SweepDeterminism, LegacyTraceFingerprintThroughShardedStack) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  UsaOptions uopts;
  uopts.num_pois = 6000;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(uopts));
  CensusSampler sampler(&usa->census);
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa->columns.category, "restaurant"),
      "COUNT(restaurants)");
  const LbsServer meta(usa->dataset.get(),
                       {.max_k = 5,
                        .index_backend = IndexBackend::kBruteForce});
  for (int shards : {1, 4}) {
    const ShardedLbsServer sharded(
        usa->dataset.get(),
        {.num_shards = shards, .server = ServerOptions{.max_k = 5}});
    ShardedTransport transport(&sharded, {});
    uint64_t hash = 0;
    for (uint64_t seed = 42; seed < 45; ++seed) {
      LrClient client(&meta, {.k = 5, .budget = 4000}, &transport);
      LrAggOptions opts;
      opts.seed = seed;
      LrAggEstimator est(&client, &sampler, spec, opts);
      const RunResult r = RunWithBudget(MakeHandle(&est), 4000);
      for (const TracePoint& tp : r.trace) {
        uint64_t bits;
        std::memcpy(&bits, &tp.estimate, sizeof bits);
        hash = mix(hash, tp.queries);
        hash = mix(hash, bits);
      }
    }
    EXPECT_EQ(hash, 0x8e13737b33817270ull) << shards << " shards";
  }
}

// ---------------------------------------------------------------------------
// Service layer: a multi-session host changes *how* queries reach the
// backend (cooperative scheduling, per-backend dispatcher workers,
// cross-session dedup) but must change nothing a session observes. Every
// session's outcome — queries, rounds, full trace, final estimate — and the
// dedup registry's counters are a pure function of the submitted specs, not
// of the dispatcher worker count; repeated runs are bit-identical.

struct ServiceRun {
  std::vector<service::SessionStatus> sessions;  // in submit order
  service::DedupStats dedup;
};

ServiceRun RunServiceMix(unsigned dispatcher_workers, uint64_t seed_base) {
  UsaOptions usa_opts;
  usa_opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(usa_opts));
  static const LbsServer* server =
      new LbsServer(usa->dataset.get(), {.max_k = 10});

  service::ServiceOptions options;
  options.dispatcher_workers = dispatcher_workers;
  options.admission.max_active = 4;
  options.slice_rounds = 2;
  service::EstimationService svc({{.meta = server}}, options);

  // A mixed workload: one LR, one NNO, a twin of the NNO session (same seed
  // → same query stream, the dedup best case), one NNO at another seed.
  std::vector<service::SessionSpec> specs(4);
  specs[0].family = service::EstimatorFamily::kLr;
  specs[0].seed = seed_base;
  specs[1].family = service::EstimatorFamily::kNno;
  specs[1].seed = seed_base;
  specs[2] = specs[1];
  specs[3].family = service::EstimatorFamily::kNno;
  specs[3].seed = seed_base + 1;
  for (service::SessionSpec& spec : specs) {
    spec.k = 3;
    spec.budget = 250;
  }

  std::vector<service::SessionId> ids;
  for (const service::SessionSpec& spec : specs) ids.push_back(svc.Submit(spec));
  svc.RunUntilIdle();

  ServiceRun run;
  for (service::SessionId id : ids) run.sessions.push_back(svc.Poll(id));
  run.dedup = svc.dedup()->Stats();
  return run;
}

void ExpectServiceRunsIdentical(const ServiceRun& a, const ServiceRun& b) {
  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (size_t s = 0; s < a.sessions.size(); ++s) {
    const service::SessionStatus& x = a.sessions[s];
    const service::SessionStatus& y = b.sessions[s];
    EXPECT_EQ(x.state, y.state) << "session " << s;
    EXPECT_EQ(x.queries_used, y.queries_used) << "session " << s;
    EXPECT_EQ(x.rounds, y.rounds) << "session " << s;
    EXPECT_EQ(x.dedup_hits, y.dedup_hits) << "session " << s;
    ASSERT_EQ(x.results.size(), y.results.size()) << "session " << s;
    for (size_t r = 0; r < x.results.size(); ++r) {
      EXPECT_EQ(x.results[r].queries, y.results[r].queries);
      EXPECT_EQ(x.results[r].final_estimate, y.results[r].final_estimate);
      ASSERT_EQ(x.results[r].trace.size(), y.results[r].trace.size());
      for (size_t i = 0; i < x.results[r].trace.size(); ++i) {
        EXPECT_EQ(x.results[r].trace[i].queries, y.results[r].trace[i].queries);
        EXPECT_EQ(x.results[r].trace[i].estimate,
                  y.results[r].trace[i].estimate);
      }
    }
  }
  EXPECT_EQ(a.dedup.lookups, b.dedup.lookups);
  EXPECT_EQ(a.dedup.hits, b.dedup.hits);
  EXPECT_EQ(a.dedup.saved_attempts, b.dedup.saved_attempts);
  EXPECT_EQ(a.dedup.entries, b.dedup.entries);
}

TEST(ServiceDeterminism, SessionOutcomesInvariantToDispatcherWorkers) {
  const ServiceRun inline_batches = RunServiceMix(0, 42);
  ASSERT_GT(inline_batches.sessions.size(), 0u);
  // The twin session guarantees the dedup path is actually exercised.
  EXPECT_GT(inline_batches.dedup.hits, 0u);
  for (unsigned workers : {1u, 4u, 8u}) {
    ExpectServiceRunsIdentical(inline_batches, RunServiceMix(workers, 42));
  }
}

TEST(ServiceDeterminism, ServiceRunsIdenticalAcrossRepeatedSeeds) {
  ExpectServiceRunsIdentical(RunServiceMix(4, 43), RunServiceMix(4, 43));
  // Different seeds must actually move the numbers, or the comparisons
  // above prove nothing.
  EXPECT_NE(RunServiceMix(4, 43).sessions[0].results[0].final_estimate,
            RunServiceMix(4, 44).sessions[0].results[0].final_estimate);
}

// The legacy fingerprint through the service path: the same three LR
// sessions the monolith harness ran back to back, here submitted
// *concurrently* — time-sliced against each other, behind the dedup wire,
// with dispatcher workers fulfilling the plans — and still folding to the
// monolith-era hash. Mirror charging is what makes this possible: a dedup
// hit bills the session exactly what a clean solo wire would have.
TEST(ServiceDeterminism, LegacyTraceFingerprintThroughService) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  UsaOptions uopts;
  uopts.num_pois = 6000;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(uopts));
  static const LbsServer* server =
      new LbsServer(usa->dataset.get(), {.max_k = 5});
  CensusSampler sampler(&usa->census);
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa->columns.category, "restaurant"),
      "COUNT(restaurants)");

  for (unsigned workers : {0u, 4u}) {
    service::ServiceOptions options;
    options.dispatcher_workers = workers;
    options.admission.max_active = 3;
    service::EstimationService svc({{.meta = server}}, options);

    std::vector<service::SessionId> ids;
    for (uint64_t seed = 42; seed < 45; ++seed) {
      service::SessionSpec session;
      session.family = service::EstimatorFamily::kLr;
      session.aggregates = {spec};
      session.k = 5;
      session.budget = 4000;
      session.seed = seed;
      session.sampler = &sampler;
      ids.push_back(svc.Submit(session));
    }
    svc.RunUntilIdle();

    uint64_t hash = 0;
    for (service::SessionId id : ids) {
      const service::SessionStatus done = svc.Poll(id);
      ASSERT_EQ(done.state, service::SessionState::kCompleted);
      ASSERT_EQ(done.results.size(), 1u);
      for (const TracePoint& tp : done.results[0].trace) {
        uint64_t bits;
        std::memcpy(&bits, &tp.estimate, sizeof bits);
        hash = mix(hash, tp.queries);
        hash = mix(hash, bits);
      }
    }
    EXPECT_EQ(hash, 0x8e13737b33817270ull) << workers << " workers";
  }
}

}  // namespace
}  // namespace bench
}  // namespace lbsagg
