// ShardedLbsServer bit-identity: the shard count, partitioner, and build
// thread count are invisible through the query interface — every answer is
// bit-identical to the monolithic LbsServer over the same dataset and
// options, the same guarantee the index backends give (spatial_equivalence_
// test.cc). This is acceptance criterion (b) of the sharded backend.

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lbs/dataset.h"
#include "lbs/server.h"
#include "lbs/sharded_server.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {1000, 600});

Schema MakeSchema() {
  Schema s;
  s.AddColumn("category", AttrType::kString);
  s.AddColumn("score", AttrType::kDouble);
  return s;
}

Dataset MakeDataset(int n, uint64_t seed) {
  Dataset d(kBox, MakeSchema());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    d.Add(kBox.SamplePoint(rng),
          {std::string(i % 4 == 0 ? "restaurant" : "other"),
           rng.Uniform(0.0, 10.0)});
  }
  return d;
}

std::vector<Vec2> MakeQueries(int n, uint64_t seed) {
  // Sample beyond the box too, so bbox pruning sees exterior queries.
  Rng rng(seed);
  std::vector<Vec2> queries;
  const Box outside = kBox.Expanded(150.0);
  for (int i = 0; i < n; ++i) queries.push_back(outside.SamplePoint(rng));
  return queries;
}

void ExpectHitsEqual(const std::vector<ServerHit>& a,
                     const std::vector<ServerHit>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple_id, b[i].tuple_id) << what << " rank " << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << what << " rank " << i;
  }
}

void ExpectBitIdentical(const Dataset& d, const ServerOptions& server_opts,
                        const ShardedServerOptions& sharded_opts,
                        const std::vector<Vec2>& queries, int k,
                        const TupleFilter& filter, const char* what) {
  const LbsServer mono(&d, server_opts);
  const ShardedLbsServer sharded(&d, sharded_opts);
  for (const Vec2& q : queries) {
    ExpectHitsEqual(sharded.Query(q, k, filter), mono.Query(q, k, filter),
                    what);
  }
}

TEST(ShardedServer, PartitionCoversDataset) {
  const Dataset d = MakeDataset(500, 7);
  for (ShardPartition partition :
       {ShardPartition::kSpatial, ShardPartition::kHash}) {
    const ShardedLbsServer sharded(
        &d, {.num_shards = 7, .partition = partition});
    std::vector<int> seen(d.size(), 0);
    for (int s = 0; s < sharded.num_shards(); ++s) {
      const std::vector<int>& ids = sharded.shard_ids(s);
      EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
      for (int id : ids) {
        EXPECT_EQ(sharded.shard_of(id), s);
        ++seen[id];
      }
    }
    for (size_t id = 0; id < d.size(); ++id) {
      EXPECT_EQ(seen[id], 1) << "tuple " << id << " not in exactly one shard";
    }
  }
}

TEST(ShardedServer, QueryBitIdenticalToMonolithEveryShardCount) {
  const Dataset d = MakeDataset(1500, 11);
  const std::vector<Vec2> queries = MakeQueries(120, 21);
  for (ShardPartition partition :
       {ShardPartition::kSpatial, ShardPartition::kHash}) {
    for (int shards : {1, 3, 4, 16}) {
      for (int k : {1, 5, 50}) {
        ExpectBitIdentical(d, {}, {.num_shards = shards, .partition = partition},
                           queries, k, nullptr, "plain knn");
      }
    }
  }
}

TEST(ShardedServer, RadiusAndFilterBitIdentical) {
  const Dataset d = MakeDataset(1500, 13);
  const std::vector<Vec2> queries = MakeQueries(120, 23);
  const TupleFilter restaurants = [](const Tuple& t) {
    return std::get<std::string>(t.values[0]) == "restaurant";
  };
  ServerOptions opts;
  opts.max_radius = 60.0;
  for (int shards : {1, 4, 16}) {
    ExpectBitIdentical(d, opts, {.num_shards = shards, .server = opts},
                       queries, 7, restaurants, "radius+filter");
  }
}

TEST(ShardedServer, ObfuscationSharedWithMonolith) {
  const Dataset d = MakeDataset(800, 17);
  ServerOptions opts;
  opts.obfuscation_radius = 5.0;
  const LbsServer mono(&d, opts);
  const ShardedLbsServer sharded(&d, {.num_shards = 8, .server = opts});
  for (size_t id = 0; id < d.size(); ++id) {
    EXPECT_EQ(sharded.EffectivePosition(id).x,
              mono.EffectivePosition(id).x);
    EXPECT_EQ(sharded.EffectivePosition(id).y,
              mono.EffectivePosition(id).y);
  }
  for (const Vec2& q : MakeQueries(80, 29)) {
    ExpectHitsEqual(sharded.Query(q, 5), mono.Query(q, 5), "obfuscated");
  }
}

TEST(ShardedServer, ProminenceBitIdentical) {
  const Dataset d = MakeDataset(1200, 19);
  const std::vector<Vec2> queries = MakeQueries(100, 31);
  ServerOptions opts;
  opts.ranking = RankingMode::kProminence;
  opts.prominence_column = "score";
  opts.prominence_weight = 0.7;
  opts.max_radius = 80.0;
  for (int shards : {1, 4, 16}) {
    ExpectBitIdentical(d, opts, {.num_shards = shards, .server = opts},
                       queries, 6, nullptr, "prominence");
  }
}

TEST(ShardedServer, AlternateIndexBackendsBitIdentical) {
  const Dataset d = MakeDataset(1000, 23);
  const std::vector<Vec2> queries = MakeQueries(80, 37);
  for (IndexBackend backend : {IndexBackend::kGrid, IndexBackend::kLearned}) {
    ServerOptions opts;
    opts.index_backend = backend;
    ExpectBitIdentical(d, opts, {.num_shards = 8, .server = opts}, queries,
                       5, nullptr, SpatialBackendName(backend));
  }
}

TEST(ShardedServer, WithinRadiusMatchesBruteForceScan) {
  const Dataset d = MakeDataset(900, 29);
  const ShardedLbsServer sharded(&d, {.num_shards = 8});
  Rng rng(41);
  for (int i = 0; i < 40; ++i) {
    const Vec2 q = kBox.Expanded(50.0).SamplePoint(rng);
    const double radius = rng.Uniform(5.0, 120.0);
    // The oracle: exactly the index-inclusion rule d2 <= radius*radius,
    // sorted by the canonical (d2, id) order.
    struct Expect {
      double d2;
      int id;
    };
    std::vector<Expect> expected;
    const double r2 = radius * radius;
    for (const Tuple& t : d.tuples()) {
      const Vec2& p = sharded.EffectivePosition(t.id);
      const double dx = p.x - q.x;
      const double dy = p.y - q.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 <= r2) expected.push_back({d2, t.id});
    }
    std::sort(expected.begin(), expected.end(),
              [](const Expect& a, const Expect& b) {
                return a.d2 < b.d2 || (a.d2 == b.d2 && a.id < b.id);
              });
    const std::vector<ServerHit> got = sharded.WithinRadius(q, radius);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].tuple_id, expected[j].id);
    }
  }
}

TEST(ShardedServer, ShardPagesMergeToGlobalAnswerInAnyOrder) {
  const Dataset d = MakeDataset(1000, 31);
  const ShardedLbsServer sharded(&d, {.num_shards = 8});
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    const Vec2 q = kBox.SamplePoint(rng);
    const std::vector<ServerHit> direct = sharded.Query(q, 5);
    std::vector<std::vector<ServerHit>> pages;
    for (int s : sharded.ReachableShards(q)) {
      pages.push_back(sharded.QueryShard(s, q, 5));
    }
    ExpectHitsEqual(sharded.MergeShardPages(q, pages, 5), direct, "merge");
    // Arrival order is irrelevant: reversing the pages folds identically.
    std::reverse(pages.begin(), pages.end());
    ExpectHitsEqual(sharded.MergeShardPages(q, pages, 5), direct,
                    "merge reversed");
  }
}

TEST(ShardedServer, FoldTopKIsInputOrderInvariant) {
  Rng rng(47);
  std::vector<ShardCandidate> candidates;
  for (int i = 0; i < 200; ++i) {
    // Coarse d2 grid forces plenty of exact ties, exercising the id
    // tie-break.
    const double d2 = static_cast<double>(rng.UniformInt(20));
    candidates.push_back({d2, std::sqrt(d2), i});
  }
  const std::vector<ServerHit> folded = FoldTopK(candidates, 10);
  ASSERT_EQ(folded.size(), 10u);
  for (size_t i = 1; i < folded.size(); ++i) {
    EXPECT_TRUE(folded[i - 1].distance < folded[i].distance ||
                (folded[i - 1].distance == folded[i].distance &&
                 folded[i - 1].tuple_id < folded[i].tuple_id));
  }
  std::mt19937 shuffler(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(candidates.begin(), candidates.end(), shuffler);
    ExpectHitsEqual(FoldTopK(candidates, 10), folded, "shuffled fold");
  }
}

TEST(ShardedServer, BuildThreadCountDoesNotChangeAnswers) {
  const Dataset d = MakeDataset(1200, 37);
  const std::vector<Vec2> queries = MakeQueries(60, 53);
  const ShardedLbsServer serial(&d, {.num_shards = 8, .build_threads = 1});
  const ShardedLbsServer parallel(&d, {.num_shards = 8, .build_threads = 4});
  EXPECT_EQ(serial.build_stats().shard_build_ms.size(), 8u);
  EXPECT_GE(serial.build_stats().wall_ms, 0.0);
  EXPECT_GE(serial.build_stats().critical_path_ms(), 0.0);
  for (const Vec2& q : queries) {
    ExpectHitsEqual(parallel.Query(q, 5), serial.Query(q, 5), "threads");
  }
}

TEST(ShardedServer, MoreShardsThanTuples) {
  const Dataset d = MakeDataset(5, 41);
  const std::vector<Vec2> queries = MakeQueries(30, 59);
  for (ShardPartition partition :
       {ShardPartition::kSpatial, ShardPartition::kHash}) {
    ExpectBitIdentical(d, {}, {.num_shards = 16, .partition = partition},
                       queries, 10, nullptr, "tiny dataset");
  }
}

}  // namespace
}  // namespace lbsagg
