#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/delaunay.h"
#include "geometry/predicates.h"
#include "geometry/topk_region.h"
#include "geometry/voronoi_diagram.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

TEST(Delaunay, TriangleOfThreePoints) {
  const Delaunay d({{0, 0}, {10, 0}, {0, 10}});
  const auto tris = d.Triangles();
  ASSERT_EQ(tris.size(), 1u);
  EXPECT_EQ(d.Neighbors(0).size(), 2u);
  EXPECT_EQ(d.Neighbors(1).size(), 2u);
  EXPECT_EQ(d.Neighbors(2).size(), 2u);
}

TEST(Delaunay, EmptyCircumcirclePropertyHolds) {
  const std::vector<Vec2> pts = RandomPoints(60, 201);
  const Delaunay d(pts);
  for (const std::array<int, 3>& t : d.Triangles()) {
    Vec2 a = pts[t[0]], b = pts[t[1]], c = pts[t[2]];
    if (Orient2d(a, b, c) < 0) std::swap(b, c);
    for (size_t j = 0; j < pts.size(); ++j) {
      if (static_cast<int>(j) == t[0] || static_cast<int>(j) == t[1] ||
          static_cast<int>(j) == t[2]) {
        continue;
      }
      EXPECT_LE(InCircle(a, b, c, pts[j]), 0)
          << "point " << j << " inside circumcircle of triangle";
    }
  }
}

TEST(Delaunay, EulerFormulaForTriangulation) {
  // For a Delaunay triangulation of n points with h hull points:
  // triangles = 2n - 2 - h, edges = 3n - 3 - h.
  const std::vector<Vec2> pts = RandomPoints(80, 207);
  const Delaunay d(pts);
  const auto tris = d.Triangles();
  std::set<std::pair<int, int>> edges;
  for (const auto& t : tris) {
    for (int e = 0; e < 3; ++e) {
      int a = t[e], b = t[(e + 1) % 3];
      if (a > b) std::swap(a, b);
      edges.insert({a, b});
    }
  }
  const int n = static_cast<int>(pts.size());
  const int f = static_cast<int>(tris.size());
  const int e = static_cast<int>(edges.size());
  // Euler: n - e + (f + 1) = 2.
  EXPECT_EQ(n - e + f + 1, 2);
}

TEST(Delaunay, NeighborsAreSymmetric) {
  const std::vector<Vec2> pts = RandomPoints(50, 211);
  const Delaunay d(pts);
  for (int i = 0; i < 50; ++i) {
    for (int j : d.Neighbors(i)) {
      const auto& nj = d.Neighbors(j);
      EXPECT_NE(std::find(nj.begin(), nj.end(), i), nj.end());
    }
  }
}

TEST(Delaunay, DuplicatePointsRejected) {
  EXPECT_DEATH(Delaunay({{1, 1}, {2, 2}, {1, 1}}), "duplicate point");
}

TEST(Delaunay, GridPointsWithJitterWork) {
  // Near-degenerate input: an almost perfect grid (cocircular quadruples),
  // broken only by tiny jitter — stresses the InCircle fallback.
  Rng rng(213);
  std::vector<Vec2> pts;
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      pts.push_back({i * 10.0 + rng.Uniform(-1e-7, 1e-7),
                     j * 10.0 + rng.Uniform(-1e-7, 1e-7)});
    }
  }
  const Delaunay d(pts);
  EXPECT_GT(d.Triangles().size(), 150u);  // 2n-2-h with n=100, h≈36
}

TEST(VoronoiDiagram, CellsPartitionTheBox) {
  const std::vector<Vec2> pts = RandomPoints(40, 217);
  const VoronoiDiagram vd = VoronoiDiagram::Build(pts, kBox);
  EXPECT_NEAR(vd.TotalArea(), kBox.Area(), 1e-6 * kBox.Area());
}

TEST(VoronoiDiagram, EveryCellContainsItsSite) {
  const std::vector<Vec2> pts = RandomPoints(40, 219);
  const VoronoiDiagram vd = VoronoiDiagram::Build(pts, kBox);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(vd.Cell(i).Contains(pts[i], 1e-9)) << i;
  }
}

TEST(VoronoiDiagram, MatchesDirectTopkRegionComputation) {
  // Delaunay-derived cells must equal the brute-force O(n) bisector cells.
  const std::vector<Vec2> pts = RandomPoints(30, 223);
  const VoronoiDiagram vd = VoronoiDiagram::Build(pts, kBox);
  for (size_t i = 0; i < pts.size(); ++i) {
    std::vector<Vec2> others;
    for (size_t j = 0; j < pts.size(); ++j) {
      if (j != i) others.push_back(pts[j]);
    }
    const TopkRegion direct = ComputeTopkRegion(pts[i], others, kBox, 1);
    EXPECT_NEAR(vd.Cell(i).Area(), direct.area, 1e-7 * kBox.Area()) << i;
  }
}

TEST(VoronoiDiagram, NearestNeighborConsistency) {
  // Any random point must lie in the cell of its true nearest site.
  const std::vector<Vec2> pts = RandomPoints(35, 227);
  const VoronoiDiagram vd = VoronoiDiagram::Build(pts, kBox);
  Rng rng(229);
  for (int trial = 0; trial < 2000; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    size_t nearest = 0;
    for (size_t i = 1; i < pts.size(); ++i) {
      if (SquaredDistance(q, pts[i]) < SquaredDistance(q, pts[nearest])) {
        nearest = i;
      }
    }
    EXPECT_TRUE(vd.Cell(nearest).Contains(q, 1e-7));
  }
}

TEST(VoronoiDiagram, FortuneBackendMatchesDelaunayBackend) {
  const std::vector<Vec2> pts = RandomPoints(120, 231);
  const VoronoiDiagram a = VoronoiDiagram::Build(pts, kBox);
  const VoronoiDiagram b =
      VoronoiDiagram::Build(pts, kBox, VoronoiBackend::kFortune);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(a.Cell(i).Area(), b.Cell(i).Area(), 1e-9 * kBox.Area()) << i;
  }
}

TEST(VoronoiDiagram, ScalesToThousandsOfPoints) {
  const std::vector<Vec2> pts = RandomPoints(5000, 233);
  const VoronoiDiagram vd = VoronoiDiagram::Build(pts, kBox);
  EXPECT_EQ(vd.size(), 5000u);
  EXPECT_NEAR(vd.TotalArea(), kBox.Area(), 1e-5 * kBox.Area());
}

}  // namespace
}  // namespace lbsagg
