#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "geometry/circle.h"
#include "geometry/line.h"
#include "geometry/polygon.h"
#include "geometry/predicates.h"
#include "geometry/vec2.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), -7.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), std::sqrt(13.0));
}

TEST(Vec2, PerpAndRotation) {
  const Vec2 v{1.0, 0.0};
  EXPECT_EQ(Perp(v), Vec2(0.0, 1.0));
  const Vec2 r = Rotated(v, M_PI / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-15);
  EXPECT_NEAR(r.y, 1.0, 1e-15);
}

TEST(Box, ContainsAndArea) {
  const Box b({0, 0}, {4, 3});
  EXPECT_DOUBLE_EQ(b.Area(), 12.0);
  EXPECT_DOUBLE_EQ(b.Perimeter(), 14.0);
  EXPECT_TRUE(b.Contains({2, 2}));
  EXPECT_TRUE(b.Contains({0, 0}));  // boundary inclusive
  EXPECT_FALSE(b.Contains({4.001, 1}));
  EXPECT_FALSE(b.ContainsInterior({0, 0}));
}

TEST(Box, SamplePointStaysInside) {
  const Box b({-5, 2}, {3, 9});
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.Contains(b.SamplePoint(rng)));
  }
}

TEST(Line, BisectorEquidistance) {
  const Vec2 a{1, 1}, b{5, 3};
  const Line bis = Line::Bisector(a, b);
  // Points on the bisector are equidistant.
  const Vec2 mid = Midpoint(a, b);
  EXPECT_NEAR(bis.Side(mid), 0.0, 1e-12);
  // Side signs: a negative, b positive.
  EXPECT_LT(bis.Side(a), 0.0);
  EXPECT_GT(bis.Side(b), 0.0);
}

TEST(Line, ProjectAndDistance) {
  const Line l = Line::Through({0, 0}, {10, 0});  // the x-axis
  EXPECT_NEAR(l.DistanceTo({3, 4}), 4.0, 1e-12);
  const Vec2 p = l.Project({3, 4});
  EXPECT_NEAR(p.x, 3.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
}

TEST(Line, IntersectBasic) {
  const Line l1 = Line::Through({0, 0}, {1, 1});
  const Line l2 = Line::Through({0, 2}, {1, 1});
  const auto p = l1.Intersect(l2);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(Line, IntersectParallelReturnsNullopt) {
  const Line l1 = Line::Through({0, 0}, {1, 0});
  const Line l2 = Line::Through({0, 1}, {1, 1});
  EXPECT_FALSE(l1.Intersect(l2).has_value());
}

TEST(Line, ReflectIsInvolution) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Vec2 a{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    const Vec2 b{rng.Uniform(-5, 5), rng.Uniform(-5, 5)};
    if (Distance(a, b) < 1e-6) continue;
    const Line l = Line::Bisector(a, b);
    const Vec2 r = l.Reflect(a);
    EXPECT_NEAR(r.x, b.x, 1e-9);
    EXPECT_NEAR(r.y, b.y, 1e-9);
  }
}

TEST(Line, AngleIsModPi) {
  const Line l1 = Line::Through({0, 0}, {1, 1});
  const Line l2 = Line::Through({1, 1}, {0, 0});
  EXPECT_NEAR(l1.Angle(), l2.Angle(), 1e-12);
  EXPECT_NEAR(l1.Angle(), M_PI / 4.0, 1e-12);
}

TEST(Ray, ExitParamHitsBoxBoundary) {
  const Box b({0, 0}, {10, 10});
  const Ray r({5, 5}, {1, 0});
  EXPECT_NEAR(r.ExitParam(b), 5.0, 1e-12);
  const Ray diag({1, 1}, {1, 2});
  const Vec2 exit = diag.At(diag.ExitParam(b));
  EXPECT_NEAR(exit.y, 10.0, 1e-12);
}

TEST(Circle, ContainsDisc) {
  const Circle outer({0, 0}, 5.0);
  EXPECT_TRUE(outer.ContainsDisc(Circle({1, 1}, 2.0)));
  EXPECT_FALSE(outer.ContainsDisc(Circle({4, 0}, 2.0)));
  EXPECT_TRUE(DiscCoveredBySingle(Circle({0, 1}, 1.0),
                                  {Circle({10, 10}, 1.0), outer}));
}

TEST(ConvexPolygon, BoxAreaAndCentroid) {
  const ConvexPolygon p = ConvexPolygon::FromBox(Box({0, 0}, {4, 2}));
  EXPECT_DOUBLE_EQ(p.Area(), 8.0);
  const Vec2 c = p.Centroid();
  EXPECT_NEAR(c.x, 2.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(ConvexPolygon, DegenerateInputsAreEmpty) {
  EXPECT_TRUE(ConvexPolygon(std::vector<Vec2>{}).IsEmpty());
  EXPECT_TRUE(ConvexPolygon({{0, 0}, {1, 1}}).IsEmpty());
  EXPECT_TRUE(ConvexPolygon({{0, 0}, {0, 0}, {0, 0}, {0, 0}}).IsEmpty());
  EXPECT_EQ(ConvexPolygon(std::vector<Vec2>{}).Area(), 0.0);
}

TEST(ConvexPolygon, ClipHalvesSquare) {
  const ConvexPolygon p = ConvexPolygon::FromBox(Box({0, 0}, {2, 2}));
  // Keep x <= 1.
  const ConvexPolygon clipped = p.Clip(HalfPlane(Line({1, 0}, 1.0)));
  EXPECT_NEAR(clipped.Area(), 2.0, 1e-12);
  EXPECT_TRUE(clipped.Contains({0.5, 1.0}));
  EXPECT_FALSE(clipped.Contains({1.5, 1.0}));
}

TEST(ConvexPolygon, ClipAwayEverything) {
  const ConvexPolygon p = ConvexPolygon::FromBox(Box({0, 0}, {2, 2}));
  const ConvexPolygon clipped = p.Clip(HalfPlane(Line({1, 0}, -1.0)));
  EXPECT_TRUE(clipped.IsEmpty());
}

TEST(ConvexPolygon, ClipNoOpWhenContained) {
  const ConvexPolygon p = ConvexPolygon::FromBox(Box({0, 0}, {2, 2}));
  const ConvexPolygon clipped = p.Clip(HalfPlane(Line({1, 0}, 10.0)));
  EXPECT_NEAR(clipped.Area(), p.Area(), 1e-12);
}

TEST(ConvexPolygon, SplitAreasSumToWhole) {
  Rng rng(5);
  const Box box({0, 0}, {10, 10});
  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 a = box.SamplePoint(rng);
    const Vec2 b = box.SamplePoint(rng);
    if (Distance(a, b) < 1e-9) continue;
    const ConvexPolygon p = ConvexPolygon::FromBox(box);
    const auto [neg, pos] = p.Split(Line::Bisector(a, b));
    EXPECT_NEAR(neg.Area() + pos.Area(), p.Area(), 1e-6);
  }
}

TEST(ConvexPolygon, RepeatedClipsStayConsistent) {
  // Clipping by random bisectors must keep the polygon inside the box and
  // monotonically non-increasing in area.
  Rng rng(6);
  const Box box({0, 0}, {100, 100});
  const Vec2 focal{37.0, 61.0};
  ConvexPolygon p = ConvexPolygon::FromBox(box);
  double prev_area = p.Area();
  for (int i = 0; i < 64 && !p.IsEmpty(); ++i) {
    const Vec2 other = box.SamplePoint(rng);
    if (Distance(other, focal) < 1e-9) continue;
    p = p.Clip(HalfPlane::Closer(focal, other));
    EXPECT_LE(p.Area(), prev_area + 1e-9);
    prev_area = p.Area();
    if (!p.IsEmpty()) EXPECT_TRUE(p.Contains(focal, 1e-9));
  }
  EXPECT_FALSE(p.IsEmpty());  // the focal point's own cell never vanishes
}

TEST(ConvexPolygon, SamplePointUniformityOverTriangle) {
  const ConvexPolygon tri({{0, 0}, {2, 0}, {0, 2}});
  Rng rng(8);
  int left = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Vec2 p = tri.SamplePoint(rng);
    EXPECT_TRUE(tri.Contains(p, 1e-9));
    if (p.x < 0.5) ++left;
  }
  // P(x < 0.5) for the triangle x+y<2: area left of x=0.5 is 0.875 of the
  // total 2.0, i.e. 0.4375.
  EXPECT_NEAR(static_cast<double>(left) / n, 0.4375, 0.02);
}

TEST(ConvexPolygon, ConvexHullOfSquareWithInteriorPoints) {
  const ConvexPolygon hull = ConvexPolygon::ConvexHull(
      {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(hull.Area(), 1.0, 1e-12);
}

TEST(ConvexPolygon, ConvexHullDegenerate) {
  EXPECT_TRUE(ConvexPolygon::ConvexHull({{0, 0}, {1, 1}}).IsEmpty());
  EXPECT_TRUE(
      ConvexPolygon::ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).IsEmpty());
}

TEST(ConvexPolygon, FuzzClipSequencesMatchMonteCarlo) {
  // Property fuzz: after an arbitrary sequence of half-plane clips, the
  // polygon's area must match a Monte-Carlo estimate of the half-plane
  // intersection, and membership must agree with the raw constraints.
  Rng rng(77);
  const Box box({0, 0}, {100, 100});
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<HalfPlane> planes;
    ConvexPolygon poly = ConvexPolygon::FromBox(box);
    const int cuts = 2 + static_cast<int>(rng.UniformInt(8));
    for (int c = 0; c < cuts && !poly.IsEmpty(); ++c) {
      const Vec2 a = box.SamplePoint(rng);
      const Vec2 b = box.SamplePoint(rng);
      if (Distance(a, b) < 1e-6) continue;
      planes.emplace_back(Line::Bisector(a, b));
      poly = poly.Clip(planes.back());
    }
    int inside = 0;
    const int n = 20000;
    Rng mc(trial + 1000);
    for (int i = 0; i < n; ++i) {
      const Vec2 p = box.SamplePoint(mc);
      bool in = true;
      for (const HalfPlane& hp : planes) {
        if (!hp.Contains(p)) {
          in = false;
          break;
        }
      }
      if (in) {
        ++inside;
        EXPECT_TRUE(poly.Contains(p, 1e-6));
      }
    }
    EXPECT_NEAR(poly.Area(), box.Area() * inside / n,
                0.03 * box.Area() + 3.0);
  }
}

TEST(Predicates, Orient2dSigns) {
  EXPECT_GT(Orient2d({0, 0}, {1, 0}, {0, 1}), 0);
  EXPECT_LT(Orient2d({0, 0}, {0, 1}, {1, 0}), 0);
  EXPECT_EQ(Orient2d({0, 0}, {1, 1}, {2, 2}), 0);
}

TEST(Predicates, OrientNearlyCollinearIsStable) {
  // Classic adversarial case: tiny perturbations around a collinear triple.
  const Vec2 a{0.5, 0.5}, b{12.0, 12.0};
  const Vec2 c{24.0, 24.0 + 1e-13};
  EXPECT_GT(Orient2d(a, b, c), 0);
  const Vec2 c2{24.0, 24.0 - 1e-13};
  EXPECT_LT(Orient2d(a, b, c2), 0);
}

TEST(Predicates, InCircleBasic) {
  // CCW unit circle triangle.
  const Vec2 a{1, 0}, b{0, 1}, c{-1, 0};
  EXPECT_GT(InCircle(a, b, c, {0, 0}), 0);
  EXPECT_LT(InCircle(a, b, c, {2, 2}), 0);
  EXPECT_EQ(InCircle(a, b, c, {0, -1}), 0);
}

TEST(Predicates, CircumcenterEquidistant) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Vec2 a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Vec2 b{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    const Vec2 c{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    if (std::abs(Cross(b - a, c - a)) < 1e-3) continue;
    const Vec2 cc = Circumcenter(a, b, c);
    const double ra = Distance(cc, a);
    EXPECT_NEAR(Distance(cc, b), ra, 1e-6 * (1.0 + ra));
    EXPECT_NEAR(Distance(cc, c), ra, 1e-6 * (1.0 + ra));
  }
}

}  // namespace
}  // namespace lbsagg
