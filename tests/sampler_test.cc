#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/mixture_sampler.h"
#include "core/sampler.h"
#include "geometry/topk_region.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

TEST(UniformSampler, RegionProbabilityIsAreaFraction) {
  const UniformSampler sampler(kBox);
  const TopkRegion half = ComputeTopkRegion({25, 50}, {{75, 50}}, kBox, 1);
  EXPECT_NEAR(sampler.RegionProbability(half), 0.5, 1e-9);
  const ConvexPolygon quarter =
      ConvexPolygon::FromBox(Box({0, 0}, {50, 50}));
  EXPECT_NEAR(sampler.RegionProbability(quarter), 0.25, 1e-9);
}

TEST(UniformSampler, SamplesCoverBoxUniformly) {
  const UniformSampler sampler(kBox);
  Rng rng(1);
  int left = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Vec2 p = sampler.Sample(rng);
    EXPECT_TRUE(kBox.Contains(p));
    if (p.x < 50) ++left;
  }
  EXPECT_NEAR(static_cast<double>(left) / n, 0.5, 0.02);
}

CensusGrid SkewedGrid() {
  // 10x1 grid built from a 3:1 left/right point skew (wide enough that the
  // 3x3 blur keeps the skew).
  Rng rng(2);
  std::vector<Vec2> pts;
  for (int i = 0; i < 3000; ++i) pts.push_back({rng.Uniform(0, 50), rng.Uniform(0, 100)});
  for (int i = 0; i < 1000; ++i) pts.push_back({rng.Uniform(50, 100), rng.Uniform(0, 100)});
  return CensusGrid::FromPoints(kBox, 10, 1, pts, 0.0, rng);
}

TEST(CensusSampler, RegionProbabilitiesSumToOne) {
  const CensusGrid grid = SkewedGrid();
  const CensusSampler sampler(&grid);
  const ConvexPolygon whole = ConvexPolygon::FromBox(kBox);
  EXPECT_NEAR(sampler.RegionProbability(whole), 1.0, 1e-9);
}

TEST(CensusSampler, ProbabilityMatchesGridWeights) {
  const CensusGrid grid = SkewedGrid();
  const CensusSampler sampler(&grid);
  const ConvexPolygon left = ConvexPolygon::FromBox(Box({0, 0}, {50, 100}));
  const ConvexPolygon right = ConvexPolygon::FromBox(Box({50, 0}, {100, 100}));
  const double pl = sampler.RegionProbability(left);
  const double pr = sampler.RegionProbability(right);
  EXPECT_NEAR(pl + pr, 1.0, 1e-9);
  // The integration must agree with the grid's own cell weights exactly.
  double left_weight = 0.0;
  for (int ix = 0; ix < 5; ++ix) left_weight += grid.CellWeight(ix, 0);
  EXPECT_NEAR(pl, left_weight / grid.TotalWeight(), 1e-9);
  EXPECT_GT(pl, 2.0 * pr);  // left half was built ~3x denser
}

TEST(CensusSampler, ProbabilityMatchesEmpiricalSampling) {
  const CensusGrid grid = SkewedGrid();
  const CensusSampler sampler(&grid);
  // A region straddling the density step.
  const TopkRegion region =
      ComputeTopkRegion({40, 50}, {{95, 50}, {40, 95}, {5, 5}}, kBox, 2);
  const double p = sampler.RegionProbability(region);
  Rng rng(3);
  int hits = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    if (region.Contains(sampler.Sample(rng), 1e-9)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(CensusSampler, PieceClippingAgainstManyCells) {
  // Fine grid: exact integration must still equal the area-weighted sum.
  CensusGrid grid(kBox, 20, 20);  // uniform density 1
  const CensusSampler sampler(&grid);
  const TopkRegion region = ComputeTopkRegion({30, 30}, {{70, 70}}, kBox, 1);
  EXPECT_NEAR(sampler.RegionProbability(region), region.area / kBox.Area(),
              1e-9);
}

TEST(CensusSampler, SampleFromRegionRespectsConditionalDensity) {
  const CensusGrid grid = SkewedGrid();
  const CensusSampler sampler(&grid);
  // Region: the middle band x ∈ [25, 75] (covers both density cells).
  const ConvexPolygon band = ConvexPolygon::FromBox(Box({25, 0}, {75, 100}));
  TopkRegion region;
  region.pieces.push_back(band);
  region.area = band.Area();
  Rng rng(5);
  int left = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const Vec2 p = sampler.SampleFromRegion(region, rng);
    EXPECT_TRUE(band.Contains(p, 1e-9));
    if (p.x < 50.0) ++left;
  }
  // The empirical split must match the exact conditional probability.
  const ConvexPolygon left_band = ConvexPolygon::FromBox(Box({25, 0}, {50, 100}));
  const double expected = sampler.RegionProbability(left_band) /
                          sampler.RegionProbability(band);
  EXPECT_NEAR(static_cast<double>(left) / n, expected, 0.02);
}

TEST(MixtureSampler, ProbabilitiesAreConvexCombination) {
  const CensusGrid grid = SkewedGrid();
  const UniformSampler uniform(kBox);
  const CensusSampler census(&grid);
  const MixtureSampler mixture(&uniform, &census, 0.25);
  const ConvexPolygon left = ConvexPolygon::FromBox(Box({0, 0}, {50, 100}));
  EXPECT_NEAR(mixture.RegionProbability(left),
              0.25 * uniform.RegionProbability(left) +
                  0.75 * census.RegionProbability(left),
              1e-12);
  const ConvexPolygon whole = ConvexPolygon::FromBox(kBox);
  EXPECT_NEAR(mixture.RegionProbability(whole), 1.0, 1e-9);
}

TEST(MixtureSampler, EmpiricalMatchesExactProbability) {
  const CensusGrid grid = SkewedGrid();
  const UniformSampler uniform(kBox);
  const CensusSampler census(&grid);
  const MixtureSampler mixture(&uniform, &census, 0.3);
  const TopkRegion region = ComputeTopkRegion({30, 50}, {{80, 50}}, kBox, 1);
  const double p = mixture.RegionProbability(region);
  Rng rng(11);
  int hits = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    if (region.Contains(mixture.Sample(rng), 1e-9)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(MixtureSampler, SampleFromRegionConditionalDensity) {
  const CensusGrid grid = SkewedGrid();
  const UniformSampler uniform(kBox);
  const CensusSampler census(&grid);
  const MixtureSampler mixture(&uniform, &census, 0.5);
  const ConvexPolygon band = ConvexPolygon::FromBox(Box({25, 0}, {75, 100}));
  TopkRegion region;
  region.pieces.push_back(band);
  region.area = band.Area();
  const ConvexPolygon left_band =
      ConvexPolygon::FromBox(Box({25, 0}, {50, 100}));
  const double expected = mixture.RegionProbability(left_band) /
                          mixture.RegionProbability(band);
  Rng rng(13);
  int left = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const Vec2 p = mixture.SampleFromRegion(region, rng);
    EXPECT_TRUE(band.Contains(p, 1e-9));
    if (p.x < 50.0) ++left;
  }
  EXPECT_NEAR(static_cast<double>(left) / n, expected, 0.02);
}

TEST(UniformSampler, SampleFromRegionUniform) {
  const UniformSampler sampler(kBox);
  const TopkRegion region = ComputeTopkRegion({50, 50}, {{90, 50}}, kBox, 1);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(region.Contains(sampler.SampleFromRegion(region, rng), 1e-9));
  }
}

}  // namespace
}  // namespace lbsagg
