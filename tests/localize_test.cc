#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/localize.h"
#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

struct Fixture {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<LbsServer> server;
  std::unique_ptr<LnrClient> client;

  explicit Fixture(std::vector<Vec2> points, double obfuscation = 0.0) {
    dataset = std::make_unique<Dataset>(kBox, Schema());
    for (const Vec2& p : points) dataset->Add(p, {});
    ServerOptions opts;
    opts.max_k = 1;
    opts.obfuscation_radius = obfuscation;
    server = std::make_unique<LbsServer>(dataset.get(), opts);
    client = std::make_unique<LnrClient>(server.get(), ClientOptions{.k = 1});
  }
};

TEST(Localize, RecoversInteriorTuplePosition) {
  // A tuple surrounded by four others: its cell is interior with 4 real
  // vertices — the reflection construction applies cleanly.
  Fixture f({{50, 50}, {80, 52}, {49, 81}, {18, 48}, {52, 19}});
  Localizer localizer(f.client.get());
  const auto pos = localizer.Locate(0, {50, 50.5});
  ASSERT_TRUE(pos.has_value());
  EXPECT_NEAR(Distance(*pos, {50, 50}), 0.0, 0.05);
}

TEST(Localize, RandomInteriorTuplesWithinTolerance) {
  Rng rng(801);
  std::vector<Vec2> pts;
  for (int i = 0; i < 60; ++i) pts.push_back(kBox.SamplePoint(rng));
  Fixture f(pts);
  Localizer localizer(f.client.get());
  int attempted = 0, good = 0;
  for (int id = 0; id < 60 && attempted < 12; ++id) {
    // Only interior tuples (cells away from the box) are cleanly localizable.
    if (!kBox.ContainsInterior(pts[id], 15.0)) continue;
    ++attempted;
    const auto pos = localizer.Locate(id, pts[id]);
    if (!pos.has_value()) continue;
    if (Distance(*pos, pts[id]) < 0.2) ++good;
  }
  EXPECT_GE(attempted, 5);
  // The paper reports >80% within tight bounds; allow some failures from
  // box-adjacent cells.
  EXPECT_GE(good * 10, attempted * 6);
}

TEST(Localize, PrecisionImprovesWithTighterDelta) {
  Fixture f({{50, 50}, {76, 55}, {45, 78}, {22, 44}, {55, 24}});
  LocalizeOptions coarse;
  coarse.cell.search.delta_fraction = 1e-5;
  coarse.cell.search.delta_prime_fraction = 1e-3;
  LocalizeOptions fine;
  fine.cell.search.delta_fraction = 1e-10;
  fine.cell.search.delta_prime_fraction = 1e-6;

  Localizer coarse_loc(f.client.get(), coarse);
  Localizer fine_loc(f.client.get(), fine);
  const auto p_coarse = coarse_loc.Locate(0, {50, 50});
  const auto p_fine = fine_loc.Locate(0, {50, 50});
  ASSERT_TRUE(p_coarse.has_value());
  ASSERT_TRUE(p_fine.has_value());
  EXPECT_LT(Distance(*p_fine, {50, 50}), Distance(*p_coarse, {50, 50}) + 1e-6);
  EXPECT_LT(Distance(*p_fine, {50, 50}), 0.01);
}

TEST(Localize, ObfuscationLimitsAccuracy) {
  // WeChat-style obfuscation: localization recovers the *effective*
  // position, so the error vs the true position is dominated by the
  // obfuscation radius (Figure 21's WeChat curve).
  std::vector<Vec2> pts = {{50, 50}, {80, 52}, {49, 81}, {18, 48}, {52, 19}};
  Fixture f(pts, /*obfuscation=*/1.5);
  Localizer localizer(f.client.get());
  // Query at the effective position so the tuple is top-1 there.
  const Vec2 q0 = f.server->EffectivePosition(0);
  const auto pos = localizer.Locate(0, q0);
  ASSERT_TRUE(pos.has_value());
  // Close to the effective position...
  EXPECT_LT(Distance(*pos, f.server->EffectivePosition(0)), 0.1);
  // ...but the true-position error is on the order of the obfuscation.
  EXPECT_LE(Distance(*pos, pts[0]), 1.6);
}

TEST(Localize, FailsGracefullyWhenCellHasNoRealVertices) {
  // Two tuples: each cell has only box corners + one bisector — fewer than
  // two bisector-bisector vertices, so localization must decline.
  Fixture f({{30, 50}, {70, 50}});
  Localizer localizer(f.client.get());
  EXPECT_FALSE(localizer.Locate(0, {30, 50}).has_value());
}

}  // namespace
}  // namespace lbsagg
