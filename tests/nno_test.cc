#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/nno_baseline.h"
#include "lbs/client.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

TEST(Nno, RoughlyConvergesOnCount) {
  UsaOptions uopts;
  uopts.num_pois = 800;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  NnoOptions opts;
  opts.seed = 21;
  NnoEstimator est(&client, AggregateSpec::Count(), opts);
  for (int i = 0; i < 600; ++i) est.Step();
  // The baseline carries the inherent E[1/p̂] ≥ 1/p bias the paper
  // criticizes — on a small clustered dataset it lands within a factor of
  // ~2, typically above the truth.
  EXPECT_GT(est.Estimate(), 0.5 * 800.0);
  EXPECT_LT(est.Estimate(), 2.5 * 800.0);
}

TEST(Nno, CostsManyMoreQueriesPerSampleThanLrAgg) {
  UsaOptions uopts;
  uopts.num_pois = 800;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  NnoEstimator est(&client, AggregateSpec::Count(), {});
  for (int i = 0; i < 20; ++i) est.Step();
  // Each sample needs ring growth + area probes.
  EXPECT_GT(client.queries_used(), 20u * 10u);
}

TEST(Nno, EmptyResultsUnderMaxRadius) {
  UsaOptions uopts;
  uopts.num_pois = 100;
  const UsaScenario usa = BuildUsaScenario(uopts);
  ServerOptions sopts;
  sopts.max_k = 3;
  sopts.max_radius = 50.0;
  LbsServer server(usa.dataset.get(), sopts);
  LrClient client(&server, {.k = 3});
  NnoEstimator est(&client, AggregateSpec::Count(), {});
  for (int i = 0; i < 50; ++i) est.Step();  // must not crash or loop
  EXPECT_GE(est.Estimate(), 0.0);
}

TEST(Nno, TraceGrows) {
  UsaOptions uopts;
  uopts.num_pois = 300;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  NnoEstimator est(&client, AggregateSpec::Count(), {});
  for (int i = 0; i < 10; ++i) est.Step();
  EXPECT_EQ(est.trace().size(), 10u);
  EXPECT_EQ(est.rounds(), 10u);
}

}  // namespace
}  // namespace lbsagg
