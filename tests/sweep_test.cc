// Parameterized correctness sweeps: the LR and LNR cell machinery against
// the ground-truth oracle across dataset sizes and h values, and the
// confidence-based stopping rule of the runner.

#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/ground_truth.h"
#include "core/history.h"
#include "core/lnr_cell.h"
#include "core/lr_agg.h"
#include "core/lr_cell.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/rng.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

std::unique_ptr<Dataset> RandomDataset(int n, uint64_t seed) {
  auto d = std::make_unique<Dataset>(kBox, Schema());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) d->Add(kBox.SamplePoint(rng), {});
  return d;
}

// --- LR exact cells across (n, h) -------------------------------------------

class LrCellSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LrCellSweep, ExactCellMatchesOracle) {
  const auto [n, h] = GetParam();
  const std::unique_ptr<Dataset> dataset = RandomDataset(n, 1234 + n);
  LbsServer server(dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  GroundTruthOracle oracle(dataset->Positions(), kBox);
  History history;
  UniformSampler sampler(kBox);
  LrCellOptions opts;
  opts.monte_carlo = false;
  LrCellComputer computer(&client, &history, &sampler, opts);

  Rng rng(9 + h);
  for (int trial = 0; trial < 4; ++trial) {
    const int id = static_cast<int>(rng.UniformInt(n));
    const TopkRegion cell =
        computer.ComputeExactCell(id, dataset->tuple(id).pos, h);
    EXPECT_NEAR(cell.area, oracle.TopkCellArea(id, h), 1e-6 * kBox.Area())
        << "n=" << n << " h=" << h << " id=" << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndH, LrCellSweep,
    ::testing::Combine(::testing::Values(60, 200, 500),
                       ::testing::Values(1, 2, 3, 5)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_h" +
             std::to_string(std::get<1>(info.param));
    });

// --- LNR top-1 cells across n ------------------------------------------------

class LnrCellSweep : public ::testing::TestWithParam<int> {};

TEST_P(LnrCellSweep, InferredCellMatchesOracle) {
  const int n = GetParam();
  const std::unique_ptr<Dataset> dataset = RandomDataset(n, 4321 + n);
  LbsServer server(dataset.get(), {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  GroundTruthOracle oracle(dataset->Positions(), kBox);
  LnrCellComputer computer(&client);

  Rng rng(17);
  for (int trial = 0; trial < 4; ++trial) {
    const int id = static_cast<int>(rng.UniformInt(n));
    const auto cell = computer.ComputeTop1Cell(id, dataset->tuple(id).pos);
    ASSERT_TRUE(cell.has_value());
    const double truth = oracle.TopkCellArea(id, 1);
    EXPECT_NEAR(cell->area, truth, 0.02 * truth + 1e-4 * kBox.Area())
        << "n=" << n << " id=" << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LnrCellSweep,
                         ::testing::Values(30, 100, 300),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// --- Confidence-based stopping ------------------------------------------------

TEST(RunUntilConfidence, StopsOnceTargetReached) {
  const UsaScenario usa = BuildUsaScenario({.num_pois = 1000});
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  CensusSampler sampler(&usa.census);
  LrClient client(&server, {.k = 5});
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {});
  const RunResult run =
      RunUntilConfidence(MakeHandle(&est), /*target_fraction=*/0.2,
                         /*budget=*/50000);
  // Stopped by confidence, well before the budget.
  EXPECT_LT(run.queries, 50000u);
  EXPECT_LE(est.ConfidenceHalfWidth(), 0.2 * run.final_estimate + 1e-9);
  EXPECT_GE(est.rounds(), 30u);
}

TEST(RunUntilConfidence, BudgetStillBounds) {
  const UsaScenario usa = BuildUsaScenario({.num_pois = 1000});
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());
  LrClient client(&server, {.k = 5});
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {});
  // An unreachable 0.1% CI: the budget must end the run instead.
  const RunResult run =
      RunUntilConfidence(MakeHandle(&est), 0.001, /*budget=*/2000);
  EXPECT_GE(run.queries, 2000u);
  EXPECT_LT(run.queries, 3000u);
}

TEST(RunUntilConfidence, RequiresConfidenceCapableHandle) {
  EstimatorHandle handle;
  handle.step = [] {};
  handle.estimate = [] { return 1.0; };
  handle.queries_used = [] { return uint64_t{0}; };
  EXPECT_DEATH(RunUntilConfidence(handle, 0.1, 100),
               "confidence intervals");
}

}  // namespace
}  // namespace lbsagg
