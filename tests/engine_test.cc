// The estimation engine (DESIGN.md §4.9): acquisition → evidence →
// aggregation. These tests pin the layer contracts — the shared-evidence
// AVG == SUM/COUNT identity, per-resolver unbiasedness, the evidence
// store's append/replay/snapshot protocol, seed determinism, and the
// adapter/engine equivalence that keeps the monolith-era API bit-identical.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/lnr_agg.h"
#include "core/lr_agg.h"
#include "core/nno_baseline.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "engine/engine.h"
#include "engine/lnr_resolver.h"
#include "engine/lr_resolver.h"
#include "engine/nno_resolver.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/stats.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

UsaScenario SmallUsa(int n = 800, uint64_t seed = 2015) {
  UsaOptions opts;
  opts.num_pois = n;
  opts.seed = seed;
  return BuildUsaScenario(opts);
}

// --- Shared-evidence identities ---------------------------------------------

// COUNT, SUM and AVG registered over the same condition fold the same
// observation stream, so AVG = SUM/COUNT holds *by construction*: the AVG
// consumer's numerator/denominator means are exactly the SUM/COUNT
// consumers' numerator means. EXPECT_DOUBLE_EQ, not EXPECT_NEAR.
TEST(EstimationEngine, AvgEqualsSumOverCountOnSharedEvidence) {
  const UsaScenario usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  UniformSampler sampler(usa.dataset->box());
  const int rating = usa.columns.rating;
  const ReturnedTuplePredicate is_restaurant =
      ColumnEquals(usa.columns.category, "restaurant");

  engine::LrCellResolver resolver(&client, &sampler, {.seed = 7});
  engine::EstimationEngine eng(&resolver);
  auto* count = eng.AddAggregate(
      AggregateSpec::CountWhere(is_restaurant, "COUNT(restaurants)"));
  auto* sum = eng.AddAggregate(
      AggregateSpec::SumWhere(rating, is_restaurant, "SUM(rating)"));
  auto* avg = eng.AddAggregate(
      AggregateSpec::AvgWhere(rating, is_restaurant, "AVG(rating)"));

  for (int i = 0; i < 120; ++i) eng.Step();

  ASSERT_GT(count->Estimate(), 0.0);
  EXPECT_DOUBLE_EQ(avg->NumeratorMean(), sum->NumeratorMean());
  EXPECT_DOUBLE_EQ(avg->DenominatorMean(), count->NumeratorMean());
  EXPECT_DOUBLE_EQ(avg->Estimate(), sum->Estimate() / count->Estimate());

  // One budget, three traces: every consumer saw every round.
  EXPECT_EQ(count->trace().size(), 120u);
  EXPECT_EQ(sum->trace().size(), 120u);
  EXPECT_EQ(avg->trace().size(), 120u);
  EXPECT_EQ(eng.evidence().num_rounds(), 120u);
}

// The same identity through the kProbability (LNR) weight form.
TEST(EstimationEngine, AvgIdentityHoldsOnRankOnlyInterface) {
  const UsaScenario usa = SmallUsa(300);
  LbsServer server(usa.dataset.get(), {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  UniformSampler sampler(usa.dataset->box());
  const int rating = usa.columns.rating;
  const ReturnedTuplePredicate is_restaurant =
      ColumnEquals(usa.columns.category, "restaurant");

  engine::LnrCellResolver resolver(&client, &sampler, {.seed = 5});
  engine::EstimationEngine eng(&resolver);
  auto* count = eng.AddAggregate(
      AggregateSpec::CountWhere(is_restaurant, "COUNT(restaurants)"));
  auto* sum = eng.AddAggregate(
      AggregateSpec::SumWhere(rating, is_restaurant, "SUM(rating)"));
  auto* avg = eng.AddAggregate(
      AggregateSpec::AvgWhere(rating, is_restaurant, "AVG(rating)"));

  for (int i = 0; i < 40; ++i) eng.Step();

  ASSERT_GT(count->Estimate(), 0.0);
  EXPECT_DOUBLE_EQ(avg->Estimate(), sum->Estimate() / count->Estimate());
}

// --- Replay / late registration ---------------------------------------------

// A consumer registered mid-run replays the append-only log, so it ends up
// bit-identical to one registered before round 0 — provided its demand is
// covered by the earlier aggregates' (here: same condition).
TEST(EstimationEngine, LateAggregateReplaysToIdenticalState) {
  const UsaScenario usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());
  const int rating = usa.columns.rating;

  auto run = [&](bool late) {
    LrClient client(&server, {.k = 5});
    engine::LrCellResolver resolver(&client, &sampler, {.seed = 11});
    engine::EstimationEngine eng(&resolver);
    auto* avg = eng.AddAggregate(AggregateSpec::Avg(rating, "AVG(rating)"));
    engine::AggregateQuery* sum = nullptr;
    if (!late) {
      sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
    }
    for (int i = 0; i < 30; ++i) eng.Step();
    if (late) {
      sum = eng.AddAggregate(AggregateSpec::Sum(rating, "SUM(rating)"));
    }
    for (int i = 0; i < 30; ++i) eng.Step();
    (void)avg;
    return sum->trace();
  };

  const std::vector<TracePoint> early = run(false);
  const std::vector<TracePoint> late = run(true);
  ASSERT_EQ(early.size(), late.size());
  for (size_t i = 0; i < early.size(); ++i) {
    EXPECT_EQ(early[i].queries, late[i].queries) << i;
    EXPECT_EQ(early[i].estimate, late[i].estimate) << i;
  }
}

// --- Adapter equivalence ----------------------------------------------------

// The LrAggEstimator adapter and an engine-native single-aggregate run are
// the same computation: identical traces, estimates, and query counts.
TEST(EstimationEngine, AdapterMatchesEngineNativeRun) {
  const UsaScenario usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");

  LrClient adapter_client(&server, {.k = 5});
  LrAggEstimator adapter(&adapter_client, &sampler, spec, {.seed = 13});
  for (int i = 0; i < 80; ++i) adapter.Step();

  LrClient native_client(&server, {.k = 5});
  engine::LrCellResolver resolver(&native_client, &sampler, {.seed = 13});
  engine::EstimationEngine eng(&resolver);
  auto* query = eng.AddAggregate(spec);
  for (int i = 0; i < 80; ++i) eng.Step();

  EXPECT_EQ(adapter.queries_used(), eng.queries_used());
  EXPECT_EQ(adapter.Estimate(), query->Estimate());
  ASSERT_EQ(adapter.trace().size(), query->trace().size());
  for (size_t i = 0; i < query->trace().size(); ++i) {
    EXPECT_EQ(adapter.trace()[i].queries, query->trace()[i].queries);
    EXPECT_EQ(adapter.trace()[i].estimate, query->trace()[i].estimate);
  }
}

// --- Unbiasedness smoke, one per resolver -----------------------------------

TEST(EstimationEngine, LrResolverUnbiasedSmoke) {
  const UsaScenario usa = SmallUsa(600);
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  UniformSampler sampler(usa.dataset->box());
  RunningStats means;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    LrClient client(&server, {.k = 3});
    engine::LrCellResolver resolver(&client, &sampler, {.seed = seed});
    engine::EstimationEngine eng(&resolver);
    auto* count = eng.AddAggregate(AggregateSpec::Count());
    for (int i = 0; i < 60; ++i) eng.Step();
    means.Add(count->Estimate());
  }
  EXPECT_NEAR(means.mean(), 600.0, 3.0 * means.StandardError() + 20.0);
}

TEST(EstimationEngine, LnrResolverUnbiasedSmoke) {
  const UsaScenario usa = SmallUsa(300);
  LbsServer server(usa.dataset.get(), {.max_k = 1});
  UniformSampler sampler(usa.dataset->box());
  RunningStats means;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    LnrClient client(&server, {.k = 1});
    engine::LnrCellResolver resolver(&client, &sampler, {.seed = seed});
    engine::EstimationEngine eng(&resolver);
    auto* count = eng.AddAggregate(AggregateSpec::Count());
    for (int i = 0; i < 40; ++i) eng.Step();
    means.Add(count->Estimate());
  }
  // LNR carries the Theorem-2 tolerance bias on top of sampling noise.
  EXPECT_NEAR(means.mean(), 300.0, 3.0 * means.StandardError() + 30.0);
}

TEST(EstimationEngine, NnoResolverSmoke) {
  // The probe baseline is biased by design (E[1/p̂] != 1/p) — smoke-check
  // it lands in a broad band around the truth, as the paper's Figure 12
  // shows it does.
  const UsaScenario usa = SmallUsa(600);
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  RunningStats means;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    LrClient client(&server, {.k = 3});
    engine::NnoProbeResolver resolver(&client, {.seed = seed});
    engine::EstimationEngine eng(&resolver);
    auto* count = eng.AddAggregate(AggregateSpec::Count());
    for (int i = 0; i < 40; ++i) eng.Step();
    means.Add(count->Estimate());
  }
  EXPECT_GT(means.mean(), 0.5 * 600.0);
  EXPECT_LT(means.mean(), 2.5 * 600.0);
}

// --- Evidence store contract ------------------------------------------------

TEST(EvidenceStore, SnapshotsAreCumulativePerRound) {
  engine::EvidenceStore store;
  store.BeginRound({0.0, 0.0});
  engine::Observation obs;
  obs.tuple_id = 1;
  obs.weight = 2.0;
  store.Append(obs);
  store.EndRound(10);
  store.BeginRound({1.0, 1.0});
  store.EndRound(15);
  store.BeginRound({2.0, 2.0});
  obs.tuple_id = 2;
  store.Append(obs);
  obs.tuple_id = 3;
  store.Append(obs);
  store.EndRound(31);

  EXPECT_EQ(store.num_rounds(), 3u);
  EXPECT_EQ(store.num_observations(), 3u);

  const engine::EvidenceSnapshot s0 = store.SnapshotAt(0);
  EXPECT_EQ(s0.rounds, 1u);
  EXPECT_EQ(s0.observations, 1u);
  EXPECT_EQ(s0.queries, 10u);
  const engine::EvidenceSnapshot s1 = store.SnapshotAt(1);
  EXPECT_EQ(s1.rounds, 2u);
  EXPECT_EQ(s1.observations, 1u);
  EXPECT_EQ(s1.queries, 15u);
  const engine::EvidenceSnapshot s2 = store.SnapshotAt(2);
  EXPECT_EQ(s2.rounds, 3u);
  EXPECT_EQ(s2.observations, 3u);
  EXPECT_EQ(s2.queries, 31u);

  const engine::EvidenceSnapshot latest = store.Snapshot();
  EXPECT_EQ(latest.rounds, s2.rounds);
  EXPECT_EQ(latest.observations, s2.observations);
  EXPECT_EQ(latest.queries, s2.queries);

  EXPECT_EQ(store.ToJson(),
            "{\"rounds\":3,\"observations\":3,\"queries\":31}");

  // The middle round is empty; its slice is null with zero length.
  EXPECT_EQ(store.observations(store.round(1)), nullptr);
  EXPECT_EQ(store.round(2).num_observations, 2u);
  EXPECT_EQ(store.observations(store.round(2))[0].tuple_id, 2);
  EXPECT_EQ(store.observations(store.round(2))[1].tuple_id, 3);
}

// Bit-exact fingerprint of a store's full contents.
uint64_t FingerprintStore(const engine::EvidenceStore& store) {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  auto mix_double = [&](uint64_t h, double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    return mix(h, bits);
  };
  uint64_t h = 0;
  for (size_t r = 0; r < store.num_rounds(); ++r) {
    const engine::EvidenceRound& round = store.round(r);
    h = mix(h, round.queries_after);
    h = mix_double(h, round.sample_point.x);
    h = mix_double(h, round.sample_point.y);
    const engine::Observation* obs = store.observations(round);
    for (size_t i = 0; i < round.num_observations; ++i) {
      h = mix(h, static_cast<uint64_t>(obs[i].tuple_id));
      h = mix(h, static_cast<uint64_t>(obs[i].rank));
      h = mix(h, static_cast<uint64_t>(obs[i].h));
      h = mix(h, static_cast<uint64_t>(obs[i].weight_form));
      h = mix_double(h, obs[i].weight);
      h = mix(h, obs[i].cost);
      if (obs[i].has_location) {
        h = mix_double(h, obs[i].location.x);
        h = mix_double(h, obs[i].location.y);
      }
    }
  }
  return h;
}

uint64_t EvidenceFingerprintForSeed(uint64_t seed) {
  UsaOptions opts;
  opts.num_pois = 400;
  static const UsaScenario* usa = new UsaScenario(BuildUsaScenario(opts));
  static LbsServer* server = new LbsServer(usa->dataset.get(), {.max_k = 3});
  static const UniformSampler* sampler =
      new UniformSampler(usa->dataset->box());
  LrClient client(server, {.k = 3});
  engine::LrCellResolver resolver(&client, sampler, {.seed = seed});
  engine::EstimationEngine eng(&resolver);
  eng.AddAggregate(AggregateSpec::Count());
  for (int i = 0; i < 50; ++i) eng.Step();
  return FingerprintStore(eng.evidence());
}

TEST(EvidenceStore, DeterministicAcrossRepeatedSeeds) {
  EXPECT_EQ(EvidenceFingerprintForSeed(42), EvidenceFingerprintForSeed(42));
  EXPECT_EQ(EvidenceFingerprintForSeed(43), EvidenceFingerprintForSeed(43));
  // Different seeds must actually change the evidence, or the equalities
  // above prove nothing.
  EXPECT_NE(EvidenceFingerprintForSeed(42), EvidenceFingerprintForSeed(43));
}

// --- Engine-native sweep path -----------------------------------------------

TEST(EstimationEngine, RunEngineWithBudgetSharesOneBudget) {
  const UsaScenario usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());
  const int rating = usa.columns.rating;
  const ReturnedTuplePredicate is_restaurant =
      ColumnEquals(usa.columns.category, "restaurant");

  LrClient client(&server, {.k = 5});
  engine::LrCellResolver resolver(&client, &sampler, {.seed = 21});
  engine::EstimationEngine eng(&resolver);
  eng.AddAggregate(
      AggregateSpec::CountWhere(is_restaurant, "COUNT(restaurants)"));
  eng.AddAggregate(AggregateSpec::SumWhere(rating, is_restaurant, "SUM"));
  eng.AddAggregate(AggregateSpec::AvgWhere(rating, is_restaurant, "AVG"));

  const uint64_t budget = 500;
  const std::vector<RunResult> results = RunEngineWithBudget(&eng, budget);
  ASSERT_EQ(results.size(), 3u);
  // All three answers came from the same (soft-bounded) budget.
  for (const RunResult& r : results) {
    EXPECT_EQ(r.queries, eng.queries_used());
    EXPECT_EQ(r.trace.size(), eng.evidence().num_rounds());
    EXPECT_GT(r.trace.size(), 0u);
  }
  EXPECT_GE(eng.queries_used(), budget);

  // AVG = SUM/COUNT across the returned results too.
  EXPECT_DOUBLE_EQ(results[2].final_estimate,
                   results[1].final_estimate / results[0].final_estimate);
}

// diagnostics_json surfaces the resolver + evidence snapshot (embedded into
// run reports as raw JSON).
TEST(EstimationEngine, DiagnosticsJsonCoversLayers) {
  const UsaScenario usa = SmallUsa(300);
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  UniformSampler sampler(usa.dataset->box());
  LrClient client(&server, {.k = 3});
  engine::LrCellResolver resolver(&client, &sampler, {.seed = 3});
  engine::EstimationEngine eng(&resolver);
  eng.AddAggregate(AggregateSpec::Count());
  for (int i = 0; i < 5; ++i) eng.Step();

  const std::string json = eng.diagnostics_json();
  EXPECT_NE(json.find("\"resolver\":"), std::string::npos);
  EXPECT_NE(json.find("\"lr\""), std::string::npos);
  EXPECT_NE(json.find("\"evidence\":"), std::string::npos);
  EXPECT_NE(json.find("\"aggregates\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rounds\":5"), std::string::npos);
}

// MakeHandle binds diagnostics_json via `requires`, so RunReport embeds
// per-estimator diagnostics with no estimator-specific branches.
TEST(EstimationEngine, MakeHandleBindsDiagnosticsJson) {
  const UsaScenario usa = SmallUsa(300);
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  UniformSampler sampler(usa.dataset->box());
  LrClient client(&server, {.k = 3});
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {.seed = 9});
  const EstimatorHandle handle = MakeHandle(&est);
  ASSERT_NE(handle.diagnostics_json, nullptr);
  est.Step();
  EXPECT_NE(handle.diagnostics_json().find("\"resolver\":\"lr\""),
            std::string::npos);

  obs::MetricsRegistry registry;
  const RunResult result = RunWithBudget(handle, 50);
  const obs::RunReport report =
      BuildRunReport("lr", result, handle, &registry);
  EXPECT_NE(report.ToJson().find("\"diagnostics\":"), std::string::npos);
}

}  // namespace
}  // namespace lbsagg
