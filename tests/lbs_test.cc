#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "lbs/trilateration.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

Schema MakeSchema() {
  Schema s;
  s.AddColumn("name", AttrType::kString);
  s.AddColumn("score", AttrType::kDouble);
  s.AddColumn("flag", AttrType::kBool);
  return s;
}

Dataset MakeDataset(int n, uint64_t seed) {
  Dataset d(kBox, MakeSchema());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    d.Add(kBox.SamplePoint(rng),
          {std::string(i % 3 == 0 ? "starbucks" : "local"),
           rng.Uniform(1.0, 5.0), rng.Bernoulli(0.5)});
  }
  return d;
}

TEST(Schema, ColumnLookup) {
  const Schema s = MakeSchema();
  EXPECT_EQ(s.num_columns(), 3);
  EXPECT_EQ(s.Require("score"), 1);
  EXPECT_FALSE(s.Find("missing").has_value());
  EXPECT_TRUE(s.type(2) == AttrType::kBool);
}

TEST(Schema, DuplicateColumnRejected) {
  Schema s;
  s.AddColumn("a", AttrType::kDouble);
  EXPECT_DEATH(s.AddColumn("a", AttrType::kBool), "duplicate column");
}

TEST(Dataset, TypeMismatchRejected) {
  Dataset d(kBox, MakeSchema());
  EXPECT_DEATH(d.Add({1, 1}, {2.0, std::string("x"), true}), "type mismatch");
}

TEST(Dataset, GroundTruthAggregates) {
  Dataset d(kBox, MakeSchema());
  d.Add({1, 1}, {std::string("a"), 2.0, true});
  d.Add({2, 2}, {std::string("b"), 3.0, false});
  d.Add({3, 3}, {std::string("a"), 5.0, true});
  EXPECT_DOUBLE_EQ(d.GroundTruthCount(), 3.0);
  const TupleFilter is_a = [](const Tuple& t) {
    return std::get<std::string>(t.values[0]) == "a";
  };
  EXPECT_DOUBLE_EQ(d.GroundTruthCount(is_a), 2.0);
  EXPECT_DOUBLE_EQ(
      d.GroundTruthSum(is_a,
                       [](const Tuple& t) { return std::get<double>(t.values[1]); }),
      7.0);
}

TEST(Dataset, JitterRemovesDuplicates) {
  Dataset d(kBox, MakeSchema());
  for (int i = 0; i < 5; ++i) {
    d.Add({50, 50}, {std::string("x"), 1.0, false});
  }
  Rng rng(1);
  const int moved = d.JitterDuplicates(rng, 1e-6);
  EXPECT_GE(moved, 4);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = i + 1; j < d.size(); ++j) {
      EXPECT_GT(Distance(d.tuple(i).pos, d.tuple(j).pos), 0.0);
    }
  }
}

TEST(Dataset, SubsampleKeepsRoughFraction) {
  const Dataset d = MakeDataset(2000, 11);
  Rng rng(13);
  const Dataset half = d.Subsample(0.5, rng);
  EXPECT_NEAR(static_cast<double>(half.size()), 1000.0, 100.0);
  EXPECT_EQ(half.tuple(0).id, 0);  // ids reassigned contiguously
}

TEST(Server, Top1IsNearestTuple) {
  const Dataset d = MakeDataset(100, 17);
  const LbsServer server(&d, {.max_k = 5});
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    const auto hits = server.Query(q, 1);
    ASSERT_EQ(hits.size(), 1u);
    for (size_t i = 0; i < d.size(); ++i) {
      EXPECT_LE(hits[0].distance, Distance(q, d.tuple(i).pos) + 1e-12);
    }
  }
}

TEST(Server, RespectsMaxK) {
  const Dataset d = MakeDataset(100, 23);
  const LbsServer server(&d, {.max_k = 3});
  EXPECT_EQ(server.Query({50, 50}, 10).size(), 3u);
}

TEST(Server, MaxRadiusCanReturnEmpty) {
  Dataset d(kBox, MakeSchema());
  d.Add({10, 10}, {std::string("x"), 1.0, false});
  d.Add({12, 10}, {std::string("y"), 1.0, false});
  ServerOptions opts;
  opts.max_radius = 5.0;
  const LbsServer server(&d, opts);
  EXPECT_EQ(server.Query({90, 90}, 2).size(), 0u);
  EXPECT_EQ(server.Query({11, 10}, 2).size(), 2u);
}

TEST(Server, PassThroughFilterRestrictsResults) {
  const Dataset d = MakeDataset(300, 29);
  const LbsServer server(&d, {.max_k = 10});
  const TupleFilter starbucks = [](const Tuple& t) {
    return std::get<std::string>(t.values[0]) == "starbucks";
  };
  const auto hits = server.Query({50, 50}, 10, starbucks);
  EXPECT_EQ(hits.size(), 10u);
  for (const ServerHit& h : hits) {
    EXPECT_EQ(std::get<std::string>(d.tuple(h.tuple_id).values[0]),
              "starbucks");
  }
}

TEST(Server, ObfuscationMovesPositionsDeterministically) {
  const Dataset d = MakeDataset(50, 31);
  ServerOptions opts;
  opts.obfuscation_radius = 2.0;
  const LbsServer s1(&d, opts);
  const LbsServer s2(&d, opts);
  int moved = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    const int id = static_cast<int>(i);
    EXPECT_EQ(s1.EffectivePosition(id), s2.EffectivePosition(id));
    const double shift = Distance(s1.EffectivePosition(id), d.tuple(id).pos);
    EXPECT_LE(shift, 2.0 + 1e-9);
    if (shift > 0) ++moved;
  }
  EXPECT_EQ(moved, 50);
}

TEST(Server, ProminenceCanOutrankDistance) {
  Dataset d(kBox, MakeSchema());
  d.Add({50, 50}, {std::string("near"), 0.0, false});   // score 0
  d.Add({52, 50}, {std::string("famous"), 10.0, false});  // score 10
  ServerOptions opts;
  opts.ranking = RankingMode::kProminence;
  opts.prominence_column = "score";
  opts.prominence_weight = 1.0;
  opts.max_radius = 100.0;
  const LbsServer server(&d, opts);
  const auto hits = server.Query({50.5, 50}, 2);
  ASSERT_EQ(hits.size(), 2u);
  // famous: dist 1.5 - 10 = -8.5 beats near: 0.5 - 0 = 0.5.
  EXPECT_EQ(hits[0].tuple_id, 1);
}

TEST(Server, GridBackendMatchesKdTreeBackend) {
  const Dataset d = MakeDataset(400, 59);
  ServerOptions kd_opts;
  kd_opts.max_k = 5;
  ServerOptions grid_opts = kd_opts;
  grid_opts.index_backend = IndexBackend::kGrid;
  const LbsServer kd(&d, kd_opts);
  const LbsServer grid(&d, grid_opts);
  Rng rng(61);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    const auto a = kd.Query(q, 5);
    const auto b = grid.Query(q, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].tuple_id, b[i].tuple_id);
    }
  }
}

TEST(Client, QueryCountingAndBudget) {
  const Dataset d = MakeDataset(100, 37);
  const LbsServer server(&d, {.max_k = 5});
  LrClient client(&server, {.k = 3, .budget = 10});
  EXPECT_TRUE(client.HasBudget(10));
  for (int i = 0; i < 10; ++i) client.Query({50, 50});
  EXPECT_EQ(client.queries_used(), 10u);
  EXPECT_FALSE(client.HasBudget());
  client.ResetQueryCount();
  EXPECT_TRUE(client.HasBudget());
}

TEST(Client, QueryLogRecordsLocationsWhenEnabled) {
  const Dataset d = MakeDataset(50, 97);
  const LbsServer server(&d, {.max_k = 3});
  LrClient client(&server, {.k = 3});
  client.Query({10, 20});
  EXPECT_TRUE(client.query_log().empty());  // off by default
  client.EnableQueryLog();
  client.Query({30, 40});
  client.Query({50, 60});
  ASSERT_EQ(client.query_log().size(), 2u);
  EXPECT_EQ(client.query_log()[0], Vec2(30, 40));
  EXPECT_EQ(client.query_log()[1], Vec2(50, 60));
}

TEST(Client, LrReturnsLocationsLnrDoesNot) {
  const Dataset d = MakeDataset(100, 41);
  const LbsServer server(&d, {.max_k = 5});
  LrClient lr(&server, {.k = 3});
  LnrClient lnr(&server, {.k = 3});
  const auto lr_items = lr.Query({20, 30});
  const auto lnr_ids = lnr.Query({20, 30});
  ASSERT_EQ(lr_items.size(), 3u);
  ASSERT_EQ(lnr_ids.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(lr_items[i].id, lnr_ids[i]);  // same ranking
    EXPECT_EQ(lr_items[i].location, d.tuple(lr_items[i].id).pos);
  }
}

TEST(Client, KClampedToServerMax) {
  const Dataset d = MakeDataset(100, 43);
  const LbsServer server(&d, {.max_k = 2});
  LrClient client(&server, {.k = 50});
  EXPECT_EQ(client.k(), 2);
  EXPECT_EQ(client.Query({10, 10}).size(), 2u);
}

TEST(Client, PassThroughFilterOnClient) {
  const Dataset d = MakeDataset(300, 47);
  const LbsServer server(&d, {.max_k = 5});
  LnrClient client(&server, {.k = 5});
  const int name_col = client.schema().Require("name");
  client.SetPassThroughFilter([](const Tuple& t) {
    return std::get<std::string>(t.values[0]) == "starbucks";
  });
  for (int id : client.Query({40, 60})) {
    EXPECT_EQ(std::get<std::string>(client.Attribute(id, name_col)),
              "starbucks");
  }
}

TEST(Client, AttributeAccessors) {
  const Dataset d = MakeDataset(10, 53);
  const LbsServer server(&d, {.max_k = 1});
  LrClient client(&server, {.k = 1});
  const int score = client.schema().Require("score");
  EXPECT_GT(client.NumericAttribute(0, score), 0.0);
  EXPECT_DEATH(client.NumericAttribute(0, client.schema().Require("name")),
               "not numeric");
}

TEST(Trilateration, ExactRecovery) {
  const Vec2 target{37.0, 59.0};
  const Vec2 centers[3] = {{0, 0}, {100, 0}, {0, 100}};
  const double dists[3] = {Distance(centers[0], target),
                           Distance(centers[1], target),
                           Distance(centers[2], target)};
  const auto p = Trilaterate(centers, dists);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, target.x, 1e-9);
  EXPECT_NEAR(p->y, target.y, 1e-9);
}

TEST(Trilateration, CollinearCentersRejected) {
  const Vec2 centers[3] = {{0, 0}, {1, 1}, {2, 2}};
  const double dists[3] = {1, 1, 1};
  EXPECT_FALSE(Trilaterate(centers, dists).has_value());
}

TEST(TrilaterationClient, RecoversAllReturnedLocations) {
  const Dataset d = MakeDataset(200, 71);
  const LbsServer server(&d, {.max_k = 10});
  TrilaterationClient client(&server, {.k = 5});
  Rng rng(73);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    for (const LrClient::Item& item : client.Query(q)) {
      EXPECT_NEAR(Distance(item.location, d.tuple(item.id).pos), 0.0, 1e-6)
          << item.id;
    }
  }
  EXPECT_GT(client.inferred_positions(), 20u);
}

TEST(TrilaterationClient, CachesPositionsAcrossQueries) {
  const Dataset d = MakeDataset(50, 79);
  const LbsServer server(&d, {.max_k = 5});
  TrilaterationClient client(&server, {.k = 3});
  client.Query({50, 50});
  const uint64_t first = client.queries_used();
  EXPECT_GT(first, 1u);  // probes beyond the main query
  client.Query({50, 50});
  // Same tuples: only the main query is spent the second time.
  EXPECT_EQ(client.queries_used(), first + 1);
}

TEST(TrilaterationClient, BehavesLikeLrClientThroughBasePointer) {
  const Dataset d = MakeDataset(100, 83);
  const LbsServer server(&d, {.max_k = 5});
  TrilaterationClient tri(&server, {.k = 3});
  LrClient* as_lr = &tri;
  const auto items = as_lr->Query({25, 75});
  ASSERT_FALSE(items.empty());
  LrClient plain(&server, {.k = 3});
  const auto expected = plain.Query({25, 75});
  ASSERT_EQ(items.size(), expected.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].id, expected[i].id);
    EXPECT_NEAR(Distance(items[i].location, expected[i].location), 0.0, 1e-6);
  }
}

TEST(Client, MaxRadiusAccessorReflectsServer) {
  const Dataset d = MakeDataset(20, 89);
  ServerOptions sopts;
  sopts.max_radius = 42.0;
  const LbsServer server(&d, sopts);
  LrClient client(&server, {.k = 1});
  EXPECT_DOUBLE_EQ(client.max_radius(), 42.0);
  const LbsServer unlimited(&d, {});
  LrClient client2(&unlimited, {.k = 1});
  EXPECT_TRUE(std::isinf(client2.max_radius()));
}

TEST(Trilateration, LocateThroughDistanceClient) {
  const Dataset d = MakeDataset(200, 61);
  const LbsServer server(&d, {.max_k = 10});
  DistanceClient client(&server, {.k = 10});
  Rng rng(67);
  int located = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    const auto items = client.Query(q);
    ASSERT_FALSE(items.empty());
    const int id = items.front().id;
    const auto pos = LocateByTrilateration(client, id, q);
    if (!pos.has_value()) continue;
    ++located;
    EXPECT_NEAR(Distance(*pos, d.tuple(id).pos), 0.0, 1e-6);
  }
  EXPECT_GE(located, 20);  // §2.1: 3 queries suffice nearly always
}

TEST(ClientMemo, RepeatQueryCostsNothingAndMatches) {
  const Dataset d = MakeDataset(200, 9);
  const LbsServer server(&d, {.max_k = 5});
  LrClient client(&server, {.k = 5, .memoize_queries = true});

  const Vec2 q{31.5, 62.5};
  const auto first = client.Query(q);
  EXPECT_EQ(client.queries_used(), 1u);
  EXPECT_EQ(client.memo_hits(), 0u);

  const auto second = client.Query(q);
  EXPECT_EQ(client.queries_used(), 1u);  // memo hit: zero interface cost
  EXPECT_EQ(client.memo_hits(), 1u);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].id, first[i].id);
    EXPECT_EQ(second[i].distance, first[i].distance);
  }

  // A genuinely different location is a miss.
  client.Query({80.0, 12.0});
  EXPECT_EQ(client.queries_used(), 2u);
  EXPECT_EQ(client.memo_hits(), 1u);
}

TEST(ClientMemo, HitLeavesNoQueryLogEntry) {
  const Dataset d = MakeDataset(200, 9);
  const LbsServer server(&d, {.max_k = 5});
  LrClient client(&server, {.k = 5, .memoize_queries = true});
  client.EnableQueryLog();
  client.Query({10, 10});
  client.Query({10, 10});
  EXPECT_EQ(client.query_log().size(), 1u);
}

TEST(ClientMemo, FilterChangeInvalidates) {
  const Dataset d = MakeDataset(200, 9);
  const LbsServer server(&d, {.max_k = 5});
  LrClient client(&server, {.k = 5, .memoize_queries = true});

  const Vec2 q{31.5, 62.5};
  client.Query(q);
  client.SetPassThroughFilter([](const Tuple& t) {
    return std::get<std::string>(t.values[0]) == "starbucks";
  });
  const auto filtered = client.Query(q);  // must NOT be the memoized answer
  EXPECT_EQ(client.queries_used(), 2u);
  EXPECT_EQ(client.memo_hits(), 0u);
  for (const auto& item : filtered) {
    EXPECT_EQ(std::get<std::string>(d.tuple(item.id).values[0]), "starbucks");
  }
}

TEST(ClientMemo, ResetQueryCountClearsAllCounters) {
  const Dataset d = MakeDataset(200, 9);
  const LbsServer server(&d, {.max_k = 5});
  LrClient client(&server, {.k = 5, .memoize_queries = true});
  client.EnableQueryLog();

  client.Query({10, 10});
  client.Query({10, 10});
  ASSERT_EQ(client.queries_used(), 1u);
  ASSERT_EQ(client.memo_hits(), 1u);
  ASSERT_EQ(client.query_log().size(), 1u);

  // A reset client must report internally consistent statistics: all three
  // counters back to zero together (memo_hits once trailed behind — a reset
  // client could report more hits than queries issued).
  client.ResetQueryCount();
  EXPECT_EQ(client.queries_used(), 0u);
  EXPECT_EQ(client.memo_hits(), 0u);
  EXPECT_EQ(client.query_log().size(), 0u);

  // The memo *contents* survive the reset (the service is static, so the
  // cached answers stay valid): a repeat is still free, and the post-reset
  // counters account for it from zero.
  client.Query({10, 10});
  EXPECT_EQ(client.queries_used(), 0u);
  EXPECT_EQ(client.memo_hits(), 1u);
}

TEST(ClientMemo, OffByDefault) {
  const Dataset d = MakeDataset(200, 9);
  const LbsServer server(&d, {.max_k = 5});
  LrClient client(&server, {.k = 5});
  client.Query({10, 10});
  client.Query({10, 10});
  EXPECT_EQ(client.queries_used(), 2u);
  EXPECT_EQ(client.memo_hits(), 0u);
}

TEST(Client, DistanceRankedReflectsRankingMode) {
  const Dataset d = MakeDataset(50, 9);
  const LbsServer plain(&d, {.max_k = 5});
  LrClient a(&plain, {.k = 5});
  EXPECT_TRUE(a.distance_ranked());

  ServerOptions prominent;
  prominent.max_k = 5;
  prominent.max_radius = 50.0;  // prominence ranking requires finite d_max
  prominent.ranking = RankingMode::kProminence;
  prominent.prominence_column = "score";
  prominent.prominence_weight = 10.0;
  const LbsServer ranked(&d, prominent);
  LrClient b(&ranked, {.k = 5});
  EXPECT_FALSE(b.distance_ranked());
}

}  // namespace
}  // namespace lbsagg
