// Fortune's sweep line vs the incremental (Bowyer–Watson) Delaunay backend:
// two independent implementations must produce the same neighbor structure,
// and hence identical Voronoi cells.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/delaunay.h"
#include "geometry/fortune.h"
#include "geometry/line.h"
#include "geometry/polygon.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

// Voronoi cell areas from a neighbor structure.
double CellArea(const std::vector<Vec2>& pts, int i,
                const std::vector<int>& neighbors) {
  ConvexPolygon cell = ConvexPolygon::FromBox(kBox);
  for (int j : neighbors) {
    cell = cell.Clip(HalfPlane::Closer(pts[i], pts[j]));
  }
  return cell.Area();
}

TEST(Fortune, TwoSites) {
  const FortuneSweep sweep({{20, 30}, {70, 60}});
  EXPECT_EQ(sweep.Neighbors(0), std::vector<int>{1});
  EXPECT_EQ(sweep.Neighbors(1), std::vector<int>{0});
}

TEST(Fortune, TriangleHasAllEdges) {
  const FortuneSweep sweep({{10, 10}, {90, 20}, {50, 80}});
  EXPECT_EQ(sweep.Neighbors(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(sweep.Neighbors(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(sweep.Neighbors(2), (std::vector<int>{0, 1}));
  EXPECT_EQ(sweep.Triangles().size(), 1u);
}

class FortuneVsDelaunay : public ::testing::TestWithParam<int> {};

TEST_P(FortuneVsDelaunay, SameNeighborSets) {
  const int n = GetParam();
  const std::vector<Vec2> pts = RandomPoints(n, 5000 + n);
  const FortuneSweep sweep(pts);
  const Delaunay delaunay(pts);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(sweep.Neighbors(i), delaunay.Neighbors(i)) << "site " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FortuneVsDelaunay,
                         ::testing::Values(5, 20, 100, 500),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Fortune, CellsPartitionTheBox) {
  const std::vector<Vec2> pts = RandomPoints(80, 5555);
  const FortuneSweep sweep(pts);
  double total = 0.0;
  for (int i = 0; i < 80; ++i) {
    total += CellArea(pts, i, sweep.Neighbors(i));
  }
  EXPECT_NEAR(total, kBox.Area(), 1e-6 * kBox.Area());
}

TEST(Fortune, DuplicateSitesRejected) {
  EXPECT_DEATH(FortuneSweep({{1, 1}, {2, 2}, {1, 1}}), "duplicate site");
}

TEST(Fortune, JitteredGridSurvives) {
  // A grid has many near-cocircular quadruples. The sweep uses plain double
  // circumcenters (unlike the extended-precision incircle of the
  // Bowyer–Watson backend), so the jitter here is what real data provides;
  // adversarially tiny jitter can flip event ordering — which is exactly
  // why delaunay.h remains the production backend.
  Rng rng(5557);
  std::vector<Vec2> pts;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      pts.push_back({i * 12.0 + rng.Uniform(-1e-3, 1e-3),
                     j * 12.0 + rng.Uniform(-1e-3, 1e-3)});
    }
  }
  const FortuneSweep sweep(pts);
  const Delaunay delaunay(pts);
  int mismatches = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (sweep.Neighbors(static_cast<int>(i)) !=
        delaunay.Neighbors(static_cast<int>(i))) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0);
}

}  // namespace
}  // namespace lbsagg
