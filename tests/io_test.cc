// Tests for the adoption surface: the command-line flag parser and CSV
// dataset persistence used by tools/lbsagg_cli.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lbs/dataset_io.h"
#include "util/flags.h"
#include "util/rng.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

// --- FlagParser -------------------------------------------------------------

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddString("name", "default", "a string");
  flags.AddInt("count", 7, "an int");
  flags.AddDouble("ratio", 0.5, "a double");
  flags.AddBool("verbose", false, "a bool");
  return flags;
}

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(FlagParser, DefaultsWhenUnset) {
  FlagParser flags = MakeParser();
  const auto argv = Argv({});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParser, EqualsAndSpaceSyntax) {
  FlagParser flags = MakeParser();
  const auto argv =
      Argv({"--name=abc", "--count", "42", "--ratio=1.25", "--verbose"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 1.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParser, PositionalArgumentsCollected) {
  FlagParser flags = MakeParser();
  const auto argv = Argv({"input.csv", "--count=3", "more"});
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.csv", "more"}));
}

TEST(FlagParser, RejectsUnknownFlag) {
  FlagParser flags = MakeParser();
  const auto argv = Argv({"--bogus=1"});
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(flags.error().find("bogus"), std::string::npos);
}

TEST(FlagParser, RejectsMalformedValues) {
  {
    FlagParser flags = MakeParser();
    const auto argv = Argv({"--count=abc"});
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  }
  {
    FlagParser flags = MakeParser();
    const auto argv = Argv({"--ratio=1.2.3"});
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  }
  {
    FlagParser flags = MakeParser();
    const auto argv = Argv({"--verbose=maybe"});
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  }
  {
    FlagParser flags = MakeParser();
    const auto argv = Argv({"--name"});  // missing value
    EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  }
}

TEST(FlagParser, HelpTextListsFlags) {
  const FlagParser flags = MakeParser();
  const std::string help = flags.HelpText("prog");
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("default: 7"), std::string::npos);
}

// --- Dataset CSV ------------------------------------------------------------

Dataset SmallDataset() {
  Schema schema;
  schema.AddColumn("name", AttrType::kString);
  schema.AddColumn("score", AttrType::kDouble);
  schema.AddColumn("flag", AttrType::kBool);
  Dataset d(Box({0, 0}, {10, 10}), schema);
  d.Add({1.5, 2.25}, {std::string("alpha"), 3.125, true});
  d.Add({7.0, 8.5}, {std::string("beta"), -0.5, false});
  return d;
}

TEST(DatasetCsv, RoundTripPreservesEverything) {
  const Dataset original = SmallDataset();
  std::stringstream buffer;
  WriteDatasetCsv(original, buffer);
  std::string error;
  const auto loaded = ReadDatasetCsv(buffer, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->box().lo, original.box().lo);
  EXPECT_EQ(loaded->box().hi, original.box().hi);
  EXPECT_EQ(loaded->schema().num_columns(), 3);
  EXPECT_EQ(loaded->schema().Require("score"), 1);
  for (size_t i = 0; i < original.size(); ++i) {
    const Tuple& a = original.tuple(static_cast<int>(i));
    const Tuple& b = loaded->tuple(static_cast<int>(i));
    EXPECT_EQ(a.pos, b.pos);
    EXPECT_EQ(a.values, b.values);
  }
}

TEST(DatasetCsv, RoundTripPreservesDoublePrecision) {
  Schema schema;
  schema.AddColumn("v", AttrType::kDouble);
  Dataset d(Box({0, 0}, {1, 1}), schema);
  const double value = 0.1234567890123456789;
  d.Add({0.3333333333333333, 0.9999999999999999}, {value});
  std::stringstream buffer;
  WriteDatasetCsv(d, buffer);
  const auto loaded = ReadDatasetCsv(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->tuple(0).pos.x, 0.3333333333333333);
  EXPECT_DOUBLE_EQ(std::get<double>(loaded->tuple(0).values[0]), value);
}

TEST(DatasetCsv, LargeScenarioRoundTrip) {
  UsaOptions options;
  options.num_pois = 500;
  const UsaScenario usa = BuildUsaScenario(options);
  std::stringstream buffer;
  WriteDatasetCsv(*usa.dataset, buffer);
  const auto loaded = ReadDatasetCsv(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 500u);
  EXPECT_DOUBLE_EQ(loaded->GroundTruthCount(),
                   usa.dataset->GroundTruthCount());
  EXPECT_DOUBLE_EQ(
      loaded->GroundTruthCount(CategoryIs(usa.columns, "school")),
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "school")));
}

TEST(DatasetCsv, RejectsMalformedInputs) {
  auto expect_fail = [](const std::string& text, const char* what) {
    std::stringstream buffer(text);
    std::string error;
    EXPECT_FALSE(ReadDatasetCsv(buffer, &error).has_value()) << what;
    EXPECT_FALSE(error.empty()) << what;
  };
  expect_fail("x,y\n1,2\n", "missing box line");
  expect_fail("# box 0 0 10\nx,y\n", "short box line");
  expect_fail("# box 0 0 10 10\ny,x\n", "wrong leading columns");
  expect_fail("# box 0 0 10 10\nx,y,score\n", "column without type");
  expect_fail("# box 0 0 10 10\nx,y,score:float\n", "unknown type");
  expect_fail("# box 0 0 10 10\nx,y,s:double\n1,2\n", "short row");
  expect_fail("# box 0 0 10 10\nx,y,s:double\n1,2,abc\n", "bad double cell");
  expect_fail("# box 0 0 10 10\nx,y,b:bool\n1,2,yes\n", "bad bool cell");
  expect_fail("# box 0 0 10 10\nx,y\noops,2\n", "bad coordinate");
}

TEST(DatasetCsv, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(LoadDatasetCsv("/nonexistent/nope.csv", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace lbsagg
