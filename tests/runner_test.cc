#include <gtest/gtest.h>

#include "core/runner.h"

namespace lbsagg {
namespace {

// A scripted fake estimator: each step costs 10 queries and moves the
// estimate along a fixed schedule.
struct FakeEstimator {
  std::vector<double> schedule;
  size_t i = 0;
  uint64_t queries = 0;
  double current = 0.0;

  void Step() {
    queries += 10;
    if (i < schedule.size()) current = schedule[i++];
  }
  double Estimate() const { return current; }
  uint64_t queries_used() const { return queries; }
};

EstimatorHandle Handle(FakeEstimator* e) {
  return {[e] { e->Step(); }, [e] { return e->Estimate(); },
          [e] { return e->queries_used(); }};
}

TEST(Runner, RunWithBudgetStopsAtBudget) {
  FakeEstimator fake{{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
  const RunResult r = RunWithBudget(Handle(&fake), 45);
  // Steps at 10,20,30,40,50: the 5th step starts while under budget.
  EXPECT_EQ(r.queries, 50u);
  EXPECT_EQ(r.trace.size(), 5u);
  EXPECT_DOUBLE_EQ(r.final_estimate, 5.0);
}

TEST(Runner, RunWithBudgetRespectsMaxRounds) {
  FakeEstimator fake{{1, 2, 3}};
  const RunResult r = RunWithBudget(Handle(&fake), 1000000, 3);
  EXPECT_EQ(r.trace.size(), 3u);
}

TEST(Runner, EstimateAtCostIsStepFunction) {
  const std::vector<TracePoint> trace = {{10, 100.0}, {20, 110.0}, {35, 95.0}};
  EXPECT_DOUBLE_EQ(EstimateAtCost(trace, 5), 0.0);
  EXPECT_DOUBLE_EQ(EstimateAtCost(trace, 10), 100.0);
  EXPECT_DOUBLE_EQ(EstimateAtCost(trace, 19), 100.0);
  EXPECT_DOUBLE_EQ(EstimateAtCost(trace, 34), 110.0);
  EXPECT_DOUBLE_EQ(EstimateAtCost(trace, 1000), 95.0);
}

TEST(Runner, ErrorCurveAveragesRuns) {
  RunResult a, b;
  a.trace = {{10, 90.0}, {20, 100.0}};
  a.queries = 20;
  b.trace = {{10, 130.0}, {20, 100.0}};
  b.queries = 20;
  const ErrorCurve curve = ComputeErrorCurve({a, b}, 100.0, 2);
  ASSERT_EQ(curve.checkpoints.size(), 2u);
  EXPECT_EQ(curve.checkpoints[0], 10u);
  EXPECT_EQ(curve.checkpoints[1], 20u);
  EXPECT_NEAR(curve.mean_rel_error[0], (0.1 + 0.3) / 2.0, 1e-12);
  EXPECT_NEAR(curve.mean_rel_error[1], 0.0, 1e-12);
}

TEST(Runner, QueryCostForErrorInterpolates) {
  ErrorCurve curve;
  curve.checkpoints = {100, 200, 300};
  curve.mean_rel_error = {0.4, 0.2, 0.1};
  EXPECT_NEAR(QueryCostForError(curve, 0.3), 150.0, 1e-9);
  EXPECT_NEAR(QueryCostForError(curve, 0.4), 100.0, 1e-9);
  EXPECT_NEAR(QueryCostForError(curve, 0.05), 300.0, 1e-9);  // never reached
}

TEST(Runner, QueryCostForErrorNonMonotoneCurve) {
  ErrorCurve curve;
  curve.checkpoints = {100, 200, 300};
  curve.mean_rel_error = {0.1, 0.3, 0.05};
  // Target hit immediately at the first checkpoint.
  EXPECT_NEAR(QueryCostForError(curve, 0.2), 100.0, 1e-9);
}

}  // namespace
}  // namespace lbsagg
