// The transport determinism contract: same seed + same policy config ⇒
// bit-identical outcome sequence, result pages, and metrics — whether the
// queries run synchronously, through an inline dispatcher, or across 1..8
// dispatcher worker threads, and across independent reruns.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/nno_baseline.h"
#include "core/runner.h"
#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "transport/async_dispatcher.h"
#include "transport/simulated_transport.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

Dataset MakeDataset(int n, uint64_t seed) {
  Schema schema;
  schema.AddColumn("score", AttrType::kDouble);
  Dataset d(kBox, schema);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    d.Add(kBox.SamplePoint(rng), {rng.Uniform(1.0, 5.0)});
  }
  return d;
}

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

SimulatedTransportOptions FlakyOptions() {
  SimulatedTransportOptions topts;
  topts.latency.kind = LatencyOptions::Kind::kLognormal;
  topts.rate_limit = {.capacity = 50.0, .refill_per_sec = 200.0};
  topts.faults.transient_error_rate = 0.15;
  topts.faults.timeout_rate = 0.05;
  topts.faults.truncate_rate = 0.10;
  topts.retry.max_attempts = 3;
  topts.seed = 1234;
  return topts;
}

void ExpectRepliesEqual(const std::vector<TransportReply>& a,
                        const std::vector<TransportReply>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << "reply " << i;
    EXPECT_EQ(a[i].attempts, b[i].attempts) << "reply " << i;
    EXPECT_EQ(a[i].latency_ms, b[i].latency_ms) << "reply " << i;
    ASSERT_EQ(a[i].hits.size(), b[i].hits.size()) << "reply " << i;
    for (size_t j = 0; j < a[i].hits.size(); ++j) {
      EXPECT_EQ(a[i].hits[j].tuple_id, b[i].hits[j].tuple_id);
      EXPECT_EQ(a[i].hits[j].distance, b[i].hits[j].distance);
    }
  }
}

TEST(TransportDeterminism, SameSeedSameSequenceAcrossWorkerCounts) {
  const Dataset dataset = MakeDataset(300, 1);
  const LbsServer server(&dataset, {.max_k = 10});
  const std::vector<Vec2> points = RandomPoints(200, 2);

  // Reference: synchronous, no dispatcher at all.
  SimulatedTransport reference(&server, FlakyOptions());
  std::vector<TransportReply> expected;
  expected.reserve(points.size());
  for (const Vec2& q : points) expected.push_back(reference.Query(q, 5, {}));
  const TransportMetrics expected_metrics = reference.Metrics();

  for (unsigned workers : {0u, 1u, 2u, 4u, 8u}) {
    SimulatedTransport transport(&server, FlakyOptions());
    AsyncDispatcher dispatcher(
        &transport, {.num_workers = workers, .queue_capacity = 16});
    const std::vector<TransportReply> replies =
        dispatcher.QueryBatch(points, 5);
    ExpectRepliesEqual(expected, replies);
    EXPECT_EQ(transport.Metrics(), expected_metrics)
        << "metrics diverged at " << workers << " workers";
  }
}

TEST(TransportDeterminism, MetricsIdenticalAcrossReruns) {
  const Dataset dataset = MakeDataset(300, 3);
  const LbsServer server(&dataset, {.max_k = 10});
  const std::vector<Vec2> points = RandomPoints(500, 4);

  auto run = [&] {
    SimulatedTransport transport(&server, FlakyOptions());
    AsyncDispatcher dispatcher(&transport,
                               {.num_workers = 4, .queue_capacity = 32});
    dispatcher.QueryBatch(points, 5);
    return transport.Metrics();
  };
  const TransportMetrics first = run();
  const TransportMetrics second = run();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.ToJson(), second.ToJson());
}

// End to end: a full estimator whose probe batches cross the dispatcher
// produces the same estimates, query counts, and transport metrics for any
// worker count.
TEST(TransportDeterminism, EstimatorTraceIdenticalAcrossWorkerCounts) {
  const Dataset dataset = MakeDataset(400, 5);
  const LbsServer server(&dataset, {.max_k = 10});

  auto run = [&](unsigned workers) {
    SimulatedTransport transport(&server, FlakyOptions());
    std::unique_ptr<AsyncDispatcher> dispatcher;
    if (workers > 0) {
      dispatcher = std::make_unique<AsyncDispatcher>(
          &transport, DispatcherOptions{workers, 16});
    }
    LrClient client(&server, {.k = 5, .budget = 1500}, &transport,
                    dispatcher.get());
    NnoEstimator estimator(&client, AggregateSpec::Count(), {.seed = 42});
    const RunResult result = RunWithBudget(MakeHandle(&estimator), 1500);
    return std::make_pair(result, transport.Metrics());
  };

  const auto [reference, reference_metrics] = run(0);
  EXPECT_GT(reference.trace.size(), 1u);
  for (unsigned workers : {1u, 4u, 8u}) {
    const auto [result, metrics] = run(workers);
    EXPECT_EQ(result.final_estimate, reference.final_estimate);
    EXPECT_EQ(result.queries, reference.queries);
    ASSERT_EQ(result.trace.size(), reference.trace.size());
    for (size_t i = 0; i < result.trace.size(); ++i) {
      EXPECT_EQ(result.trace[i].queries, reference.trace[i].queries);
      EXPECT_EQ(result.trace[i].estimate, reference.trace[i].estimate);
    }
    EXPECT_EQ(metrics, reference_metrics)
        << "metrics diverged at " << workers << " workers";
  }
}

// The batch path and the one-at-a-time path are the same wire: identical
// pages, accounting, and metrics.
TEST(TransportDeterminism, BatchMatchesSequentialQueries) {
  const Dataset dataset = MakeDataset(300, 6);
  const LbsServer server(&dataset, {.max_k = 10});
  const std::vector<Vec2> points = RandomPoints(100, 7);

  SimulatedTransport seq_transport(&server, FlakyOptions());
  LrClient seq_client(&server, {.k = 5}, &seq_transport);
  std::vector<std::vector<LrClient::Item>> sequential;
  sequential.reserve(points.size());
  for (const Vec2& q : points) sequential.push_back(seq_client.Query(q));

  SimulatedTransport batch_transport(&server, FlakyOptions());
  AsyncDispatcher dispatcher(&batch_transport,
                             {.num_workers = 4, .queue_capacity = 16});
  LrClient batch_client(&server, {.k = 5}, &batch_transport, &dispatcher);
  const std::vector<std::vector<LrClient::Item>> batched =
      batch_client.QueryBatch(points);

  ASSERT_EQ(sequential.size(), batched.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential[i].size(), batched[i].size());
    for (size_t j = 0; j < sequential[i].size(); ++j) {
      EXPECT_EQ(sequential[i][j].id, batched[i][j].id);
      EXPECT_EQ(sequential[i][j].distance, batched[i][j].distance);
    }
  }
  EXPECT_EQ(seq_client.queries_used(), batch_client.queries_used());
  EXPECT_EQ(seq_transport.Metrics(), batch_transport.Metrics());
}

}  // namespace
}  // namespace lbsagg
