#include <gtest/gtest.h>

#include <memory>

#include "core/aggregate.h"
#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

Schema MakeSchema() {
  Schema s;
  s.AddColumn("name", AttrType::kString);
  s.AddColumn("value", AttrType::kDouble);
  s.AddColumn("flag", AttrType::kBool);
  return s;
}

// A tiny 3-tuple world with one client, shared by the cases below.
struct World {
  Dataset dataset{kBox, MakeSchema()};
  std::unique_ptr<LbsServer> server;
  std::unique_ptr<LrClient> client;

  World() {
    dataset.Add({10, 10}, {std::string("a"), 5.0, true});
    dataset.Add({20, 20}, {std::string("b"), 7.0, false});
    dataset.Add({30, 30}, {std::string("a"), 9.0, true});
    server = std::make_unique<LbsServer>(&dataset, ServerOptions{.max_k = 3});
    client = std::make_unique<LrClient>(server.get(), ClientOptions{.k = 3});
  }
};

TEST(AggregateSpec, CountNumeratorIsIndicator) {
  World w;
  const AggregateSpec count = AggregateSpec::Count();
  EXPECT_DOUBLE_EQ(count.NumeratorValue(*w.client, 0), 1.0);
  EXPECT_DOUBLE_EQ(count.DenominatorValue(*w.client, 0), 1.0);
  EXPECT_EQ(count.kind, AggregateSpec::Kind::kCount);
}

TEST(AggregateSpec, SumReadsColumn) {
  World w;
  const AggregateSpec sum = AggregateSpec::Sum(1, "SUM(value)");
  EXPECT_DOUBLE_EQ(sum.NumeratorValue(*w.client, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum.NumeratorValue(*w.client, 2), 9.0);
}

TEST(AggregateSpec, ConditionGatesBothSides) {
  World w;
  const AggregateSpec spec = AggregateSpec::SumWhere(
      1, ColumnEquals(0, "a"), "SUM(value) WHERE name=a");
  EXPECT_DOUBLE_EQ(spec.NumeratorValue(*w.client, 0), 5.0);
  EXPECT_DOUBLE_EQ(spec.NumeratorValue(*w.client, 1), 0.0);  // name == "b"
  EXPECT_DOUBLE_EQ(spec.DenominatorValue(*w.client, 1), 0.0);
  EXPECT_TRUE(spec.Passes(*w.client, 0));
  EXPECT_FALSE(spec.Passes(*w.client, 1));
}

TEST(AggregateSpec, AvgUsesUnitDenominator) {
  World w;
  const AggregateSpec avg = AggregateSpec::Avg(1, "AVG(value)");
  EXPECT_EQ(avg.kind, AggregateSpec::Kind::kAvg);
  EXPECT_DOUBLE_EQ(avg.NumeratorValue(*w.client, 1), 7.0);
  EXPECT_DOUBLE_EQ(avg.DenominatorValue(*w.client, 1), 1.0);
}

TEST(AggregateSpec, SumWithoutColumnDies) {
  World w;
  AggregateSpec bad;
  bad.kind = AggregateSpec::Kind::kSum;
  EXPECT_DEATH(bad.NumeratorValue(*w.client, 0), "value column");
}

TEST(Predicates, ColumnEqualsOnStrings) {
  World w;
  const ReturnedTuplePredicate pred = ColumnEquals(0, "a");
  EXPECT_TRUE(pred(*w.client, 0));
  EXPECT_FALSE(pred(*w.client, 1));
  // Type-mismatched column: no match rather than a crash.
  EXPECT_FALSE(ColumnEquals(1, "a")(*w.client, 0));
}

TEST(Predicates, ColumnIsTrue) {
  World w;
  const ReturnedTuplePredicate pred = ColumnIsTrue(2);
  EXPECT_TRUE(pred(*w.client, 0));
  EXPECT_FALSE(pred(*w.client, 1));
  EXPECT_FALSE(ColumnIsTrue(0)(*w.client, 0));  // not a bool column
}

TEST(Predicates, ColumnAtLeast) {
  World w;
  EXPECT_TRUE(ColumnAtLeast(1, 7.0)(*w.client, 1));
  EXPECT_FALSE(ColumnAtLeast(1, 7.1)(*w.client, 1));
}

TEST(Predicates, AndCombinator) {
  World w;
  const ReturnedTuplePredicate both =
      And(ColumnEquals(0, "a"), ColumnAtLeast(1, 6.0));
  EXPECT_FALSE(both(*w.client, 0));  // "a" but value 5
  EXPECT_FALSE(both(*w.client, 1));  // value 7 but "b"
  EXPECT_TRUE(both(*w.client, 2));   // "a" and 9
}

TEST(AggregateSpec, PositionConditionDefaultsToNull) {
  const AggregateSpec spec = AggregateSpec::Count();
  EXPECT_FALSE(static_cast<bool>(spec.position_condition));
}

}  // namespace
}  // namespace lbsagg
