#include <gtest/gtest.h>

#include "core/history.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

TEST(History, RecordIsIdempotent) {
  History h;
  h.Record(7, {1, 2});
  h.Record(7, {1, 2});
  h.Record(7, {9, 9});  // static service: first position wins
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.Known(7));
  EXPECT_FALSE(h.Known(8));
  EXPECT_EQ(h.Position(7), Vec2(1, 2));
}

TEST(History, OtherPositionsExcludesRequestedId) {
  History h;
  h.Record(1, {10, 10});
  h.Record(2, {20, 20});
  h.Record(3, {30, 30});
  const auto others = h.OtherPositions(2);
  EXPECT_EQ(others.size(), 2u);
  for (const Vec2& p : others) EXPECT_NE(p, Vec2(20, 20));
  EXPECT_EQ(h.OtherPositions(-1).size(), 3u);
}

TEST(History, NearestOtherPositionsOrdersByDistance) {
  History h;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    h.Record(i, kBox.SamplePoint(rng));
  }
  const Vec2 probe{50, 50};
  const auto nearest = h.NearestOtherPositions(probe, -1, 10);
  ASSERT_EQ(nearest.size(), 10u);
  for (size_t i = 1; i < nearest.size(); ++i) {
    EXPECT_LE(Distance(probe, nearest[i - 1]), Distance(probe, nearest[i]));
  }
  // No position in the full set beats the worst of the returned ones.
  const double worst = Distance(probe, nearest.back());
  int closer = 0;
  for (const Vec2& p : h.OtherPositions(-1)) {
    if (Distance(probe, p) < worst) ++closer;
  }
  EXPECT_LE(closer, 10);
}

TEST(History, NearestOtherPositionsLimitLargerThanSize) {
  History h;
  h.Record(1, {10, 10});
  h.Record(2, {20, 20});
  EXPECT_EQ(h.NearestOtherPositions({0, 0}, -1, 50).size(), 2u);
  EXPECT_EQ(h.NearestOtherPositions({0, 0}, 1, 50).size(), 1u);
}

TEST(History, UpperBoundCellAreaShrinksWithKnowledge) {
  // λ_h from history bounds the true cell from above and tightens as more
  // tuples are recorded (§3.2.3).
  History h;
  const Vec2 focal{50, 50};
  EXPECT_DOUBLE_EQ(h.UpperBoundCellArea(0, focal, kBox, 1), kBox.Area());
  h.Record(1, {70, 50});
  const double one = h.UpperBoundCellArea(0, focal, kBox, 1);
  EXPECT_LT(one, kBox.Area());
  h.Record(2, {50, 70});
  h.Record(3, {30, 50});
  h.Record(4, {50, 30});
  const double many = h.UpperBoundCellArea(0, focal, kBox, 1);
  EXPECT_LT(many, one);
  // λ is non-decreasing in h.
  EXPECT_LE(many, h.UpperBoundCellArea(0, focal, kBox, 2) + 1e-9);
}

TEST(History, UpperBoundRespectsConstraintCap) {
  History h;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) h.Record(i, kBox.SamplePoint(rng));
  // Fewer constraints → looser (but still valid) bound.
  const double loose = h.UpperBoundCellArea(999, {50, 50}, kBox, 1, 4);
  const double tight = h.UpperBoundCellArea(999, {50, 50}, kBox, 1, 64);
  EXPECT_GE(loose, tight - 1e-9);
}

}  // namespace
}  // namespace lbsagg
