#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/ground_truth.h"
#include "core/lnr_cell.h"
#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

struct Fixture {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<LbsServer> server;
  std::unique_ptr<LnrClient> client;
  std::unique_ptr<GroundTruthOracle> oracle;

  Fixture(std::vector<Vec2> points, int k = 1) {
    dataset = std::make_unique<Dataset>(kBox, Schema());
    for (const Vec2& p : points) dataset->Add(p, {});
    server = std::make_unique<LbsServer>(dataset.get(),
                                         ServerOptions{.max_k = k});
    client = std::make_unique<LnrClient>(server.get(), ClientOptions{.k = k});
    oracle = std::make_unique<GroundTruthOracle>(dataset->Positions(), kBox);
  }
};

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

TEST(LnrCell, TwoTupleCellIsHalfBox) {
  Fixture f({{30, 50}, {70, 50}});
  LnrCellComputer computer(f.client.get());
  const auto cell = computer.ComputeTop1Cell(0, {30, 50});
  ASSERT_TRUE(cell.has_value());
  EXPECT_TRUE(cell->converged);
  EXPECT_NEAR(cell->area, kBox.Area() / 2.0, 1e-3 * kBox.Area());
}

TEST(LnrCell, WrongTupleAtQ0Rejected) {
  Fixture f({{30, 50}, {70, 50}});
  LnrCellComputer computer(f.client.get());
  EXPECT_FALSE(computer.ComputeTop1Cell(1, {30, 50}).has_value());
}

TEST(LnrCell, Top1CellMatchesOracleOnRandomData) {
  const auto pts = RandomPoints(40, 701);
  Fixture f(pts);
  LnrCellComputer computer(f.client.get());
  int checked = 0;
  for (int id : {0, 9, 21, 33}) {
    const auto cell = computer.ComputeTop1Cell(id, pts[id]);
    ASSERT_TRUE(cell.has_value()) << id;
    const double truth = f.oracle->TopkCellArea(id, 1);
    EXPECT_NEAR(cell->area, truth, 0.02 * truth + 1e-4 * kBox.Area()) << id;
    ++checked;
  }
  EXPECT_EQ(checked, 4);
}

TEST(LnrCell, CellAreaRatioObeysCorollary2) {
  // Corollary 2: ((d-ε)/d)² ≤ |V'|/|V| where d is the nearest-neighbor
  // distance and ε the maximum edge error. With our δ' the ratio must be
  // within a tight band around 1.
  const auto pts = RandomPoints(25, 703);
  Fixture f(pts);
  LnrCellOptions opts;
  opts.search.delta_fraction = 1e-9;
  opts.search.delta_prime_fraction = 1e-6;
  LnrCellComputer computer(f.client.get(), opts);
  for (int id : {2, 11, 17}) {
    const auto cell = computer.ComputeTop1Cell(id, pts[id]);
    ASSERT_TRUE(cell.has_value());
    const double truth = f.oracle->TopkCellArea(id, 1);
    const double ratio = cell->area / truth;
    EXPECT_GT(ratio, 0.99) << id;
    EXPECT_LT(ratio, 1.01) << id;
  }
}

TEST(LnrCell, EdgesCarryNeighborIdentity) {
  Fixture f({{50, 50}, {80, 50}, {50, 80}, {20, 50}, {50, 20}});
  LnrCellComputer computer(f.client.get());
  const auto cell = computer.ComputeTop1Cell(0, {50, 50});
  ASSERT_TRUE(cell.has_value());
  std::vector<int> neighbors;
  for (const LnrEdgeInfo& e : cell->edges) {
    if (!e.is_box_edge) neighbors.push_back(e.neighbor_id);
  }
  std::sort(neighbors.begin(), neighbors.end());
  EXPECT_EQ(neighbors, (std::vector<int>{1, 2, 3, 4}));
}

TEST(LnrCell, CellTouchingBoxBoundary) {
  Fixture f({{5, 5}, {60, 60}});
  LnrCellComputer computer(f.client.get());
  const auto cell = computer.ComputeTop1Cell(0, {5, 5});
  ASSERT_TRUE(cell.has_value());
  const double truth = f.oracle->TopkCellArea(0, 1);
  EXPECT_NEAR(cell->area, truth, 0.01 * truth);
}

TEST(LnrCell, QueryCostScalesWithEdgesNotDatabase) {
  // Doubling the database barely changes the cell cost of a fixed tuple in
  // a stable neighborhood — the O(m log 1/ε) claim.
  Rng rng(707);
  std::vector<Vec2> base = RandomPoints(50, 709);
  base.push_back({50, 50});
  Fixture small(base);
  const int id_small = 50;

  std::vector<Vec2> big = base;
  // Add points far from (50,50)'s neighborhood.
  for (int i = 0; i < 400; ++i) {
    Vec2 p = kBox.SamplePoint(rng);
    while (Distance(p, {50, 50}) < 25.0) p = kBox.SamplePoint(rng);
    big.push_back(p);
  }
  Fixture large(big);

  LnrCellComputer c_small(small.client.get());
  LnrCellComputer c_large(large.client.get());
  const uint64_t b1 = small.client->queries_used();
  ASSERT_TRUE(c_small.ComputeTop1Cell(id_small, {50, 50}).has_value());
  const uint64_t cost_small = small.client->queries_used() - b1;
  const uint64_t b2 = large.client->queries_used();
  ASSERT_TRUE(c_large.ComputeTop1Cell(id_small, {50, 50}).has_value());
  const uint64_t cost_large = large.client->queries_used() - b2;
  EXPECT_LT(cost_large, 3 * cost_small + 200);
}

TEST(LnrCell, CoverageDiscDetectedFromChords) {
  // §5.3 over a rank-only interface: the tuple's position is unknown, but
  // three chord crossings pin down the d_max circle and the inferred cell
  // is clipped by it.
  Rng rng(721);
  std::vector<Vec2> pts;
  for (int i = 0; i < 40; ++i) pts.push_back(kBox.SamplePoint(rng));
  Dataset dataset(kBox, Schema());
  for (const Vec2& p : pts) dataset.Add(p, {});
  ServerOptions sopts;
  sopts.max_k = 1;
  sopts.max_radius = 8.0;
  LbsServer server(&dataset, sopts);
  LnrClient client(&server, {.k = 1});
  GroundTruthOracle oracle(pts, kBox);
  LnrCellComputer computer(&client);

  int checked = 0;
  for (int id = 0; id < 40 && checked < 3; ++id) {
    // Pick tuples whose unrestricted cell pokes beyond the disc, so chords
    // actually matter.
    const TopkRegion full = oracle.TopkCell(id, 1);
    double max_d = 0.0;
    for (const ConvexPolygon& piece : full.pieces) {
      max_d = std::max(max_d, piece.MaxDistanceFrom(pts[id]));
    }
    if (max_d < 10.0) continue;
    ++checked;

    const auto cell = computer.ComputeTop1Cell(id, pts[id]);
    ASSERT_TRUE(cell.has_value()) << id;
    const ConvexPolygon disc = InscribedCirclePolygon(pts[id], 8.0);
    double truth = 0.0;
    for (ConvexPolygon piece : full.pieces) {
      for (size_t e = 0; e < disc.size() && !piece.IsEmpty(); ++e) {
        const Vec2& a = disc.vertices()[e];
        const Vec2& b = disc.vertices()[(e + 1) % disc.size()];
        piece = piece.Clip(HalfPlane(Line::Through(b, a)));
      }
      truth += piece.Area();
    }
    EXPECT_NEAR(cell->area, truth, 0.05 * truth) << id;
  }
  EXPECT_EQ(checked, 3);
}

TEST(LnrCell, TopkCellOfTwoTuplesIsWholeBox) {
  Fixture f({{30, 50}, {70, 50}}, /*k=*/2);
  LnrCellComputer computer(f.client.get());
  const auto cell = computer.ComputeTopkCell(0, {30, 50});
  ASSERT_TRUE(cell.has_value());
  EXPECT_NEAR(cell->area, kBox.Area(), 0.01 * kBox.Area());
}

TEST(LnrCell, TopkCellMatchesOracle) {
  const auto pts = RandomPoints(20, 711);
  Fixture f(pts, /*k=*/2);
  LnrCellComputer computer(f.client.get());
  for (int id : {4, 13}) {
    const auto cell = computer.ComputeTopkCell(id, pts[id]);
    ASSERT_TRUE(cell.has_value()) << id;
    const double truth = f.oracle->TopkCellArea(id, 2);
    EXPECT_NEAR(cell->area, truth, 0.05 * truth + 1e-3 * kBox.Area()) << id;
  }
}

TEST(LnrCell, TopkCellK3MatchesOracle) {
  const auto pts = RandomPoints(16, 713);
  Fixture f(pts, /*k=*/3);
  LnrCellComputer computer(f.client.get());
  for (int id : {2, 9}) {
    const auto cell = computer.ComputeTopkCell(id, pts[id]);
    ASSERT_TRUE(cell.has_value()) << id;
    const double truth = f.oracle->TopkCellArea(id, 3);
    EXPECT_NEAR(cell->area, truth, 0.05 * truth + 1e-3 * kBox.Area()) << id;
  }
}

TEST(LnrCell, ConcaveTopkCellRecovered) {
  // The Figure 1 / Figure 9 situation: ring + off-center tuple gives a
  // concave top-2 cell; the level-set reconstruction must capture the
  // notch instead of settling on a convex sub-region.
  std::vector<Vec2> pts;
  const Vec2 center{50, 50};
  for (int i = 0; i < 5; ++i) {
    const double a = 2 * M_PI * i / 5;
    pts.push_back(center + Vec2{std::cos(a), std::sin(a)} * 20.0);
  }
  pts.push_back(center + Vec2{25.0, 3.0});  // focal tuple, id 5
  Fixture f(pts, /*k=*/2);
  LnrCellComputer computer(f.client.get());
  const auto cell = computer.ComputeTopkCell(5, pts[5]);
  ASSERT_TRUE(cell.has_value());
  const double truth = f.oracle->TopkCellArea(5, 2);
  EXPECT_NEAR(cell->area, truth, 0.05 * truth);
}

}  // namespace
}  // namespace lbsagg
