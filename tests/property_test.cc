// Cross-cutting properties and failure injection over the full stack:
// invariants that hold across modules (partition properties of inferred
// cells, determinism, confidence-interval behaviour, degenerate datasets,
// obfuscated and budget-limited services).

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/ground_truth.h"
#include "core/history.h"
#include "core/lnr_cell.h"
#include "core/localize.h"
#include "core/lr_agg.h"
#include "core/lr_cell.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

Dataset UniformDataset(int n, uint64_t seed) {
  Dataset d(kBox, Schema());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) d.Add(kBox.SamplePoint(rng), {});
  return d;
}

TEST(Property, LnrInferredTopkCellsPartitionKTimesBox) {
  // Σ_t |inferred V_k(t)| = k · |B| — the §2.2 partition identity must
  // survive the whole rank-only inference pipeline, not just the geometry.
  Dataset d = UniformDataset(8, 901);
  LbsServer server(&d, {.max_k = 2});
  LnrClient client(&server, {.k = 2});
  LnrCellOptions copts;
  copts.interior_quiet_rounds = 4;  // pay extra probes for a tight identity
  LnrCellComputer computer(&client, copts);
  double total = 0.0;
  for (int id = 0; id < 8; ++id) {
    const auto cell = computer.ComputeTopkCell(id, d.tuple(id).pos);
    ASSERT_TRUE(cell.has_value()) << id;
    total += cell->area;
  }
  EXPECT_NEAR(total, 2.0 * kBox.Area(), 0.01 * kBox.Area());
}

TEST(Property, LnrInferredTop1CellsPartitionBox) {
  Dataset d = UniformDataset(12, 907);
  LbsServer server(&d, {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  LnrCellComputer computer(&client);
  double total = 0.0;
  for (int id = 0; id < 12; ++id) {
    const auto cell = computer.ComputeTop1Cell(id, d.tuple(id).pos);
    ASSERT_TRUE(cell.has_value()) << id;
    total += cell->area;
  }
  EXPECT_NEAR(total, kBox.Area(), 0.005 * kBox.Area());
}

TEST(Property, EstimatorsAreDeterministicPerSeed) {
  const UsaScenario usa = BuildUsaScenario({.num_pois = 500});
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  UniformSampler sampler(usa.dataset->box());
  double first = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    LrClient client(&server, {.k = 3});
    LrAggOptions opts;
    opts.seed = 777;
    LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    for (int i = 0; i < 40; ++i) est.Step();
    if (rep == 0) {
      first = est.Estimate();
    } else {
      EXPECT_DOUBLE_EQ(est.Estimate(), first);
    }
  }
}

TEST(Property, ConfidenceIntervalsCoverTruth) {
  // §2.3: the normal-approximation CI from the sample variance (Bessel)
  // should cover the truth for most runs on a well-behaved (uniform)
  // dataset.
  Dataset d = UniformDataset(400, 911);
  LbsServer server(&d, {.max_k = 3});
  UniformSampler sampler(kBox);
  int covered = 0;
  const int runs = 20;
  for (int r = 0; r < runs; ++r) {
    LrClient client(&server, {.k = 3});
    LrAggOptions opts;
    opts.seed = 1000 + r;
    LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    for (int i = 0; i < 120; ++i) est.Step();
    const double half = est.ConfidenceHalfWidth();
    if (std::abs(est.Estimate() - 400.0) <= half) ++covered;
  }
  // Nominal 95%; allow CLT slack on 120-sample runs.
  EXPECT_GE(covered, 14);
}

TEST(Property, LrAggUnbiasedOnObfuscatedService) {
  // Location obfuscation moves positions but not tuples: COUNT(*) over the
  // effective dataset equals COUNT(*) over the true dataset, and the LR
  // machinery must keep working on the obfuscated geometry.
  const UsaScenario usa = BuildUsaScenario({.num_pois = 600});
  ServerOptions sopts;
  sopts.max_k = 3;
  sopts.obfuscation_radius = 3.0;
  LbsServer server(usa.dataset.get(), sopts);
  CensusSampler sampler(&usa.census);
  double total = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    LrClient client(&server, {.k = 3});
    LrAggOptions opts;
    opts.seed = seed;
    LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    for (int i = 0; i < 150; ++i) est.Step();
    total += est.Estimate();
  }
  EXPECT_NEAR(total / 3.0, 600.0, 0.25 * 600.0);
}

TEST(Property, CollinearTuplesHandled) {
  // Degenerate layout: all tuples on one line. Cells are slabs; both the
  // LR loop and the oracle must agree.
  Dataset d(kBox, Schema());
  for (int i = 0; i < 10; ++i) d.Add({5.0 + 10.0 * i, 50.0}, {});
  LbsServer server(&d, {.max_k = 2});
  LrClient client(&server, {.k = 2});
  GroundTruthOracle oracle(d.Positions(), kBox);
  History history;
  UniformSampler sampler(kBox);
  LrCellOptions opts;
  opts.monte_carlo = false;
  LrCellComputer computer(&client, &history, &sampler, opts);
  for (int id : {0, 4, 9}) {
    const TopkRegion cell = computer.ComputeExactCell(id, d.tuple(id).pos, 1);
    EXPECT_NEAR(cell.area, oracle.TopkCellArea(id, 1), 1e-6 * kBox.Area());
  }
}

TEST(Property, NearCocircularGridHandled) {
  // A jittered grid has many near-cocircular quadruples — the classic
  // robustness trap for incremental Voronoi code.
  Dataset d(kBox, Schema());
  Rng rng(919);
  for (int i = 1; i <= 9; ++i) {
    for (int j = 1; j <= 9; ++j) {
      d.Add({i * 10.0 + rng.Uniform(-1e-6, 1e-6),
             j * 10.0 + rng.Uniform(-1e-6, 1e-6)},
            {});
    }
  }
  LbsServer server(&d, {.max_k = 3});
  LrClient client(&server, {.k = 3});
  GroundTruthOracle oracle(d.Positions(), kBox);
  History history;
  UniformSampler sampler(kBox);
  LrCellOptions opts;
  opts.monte_carlo = false;
  LrCellComputer computer(&client, &history, &sampler, opts);
  for (int id : {0, 40, 80}) {
    const TopkRegion cell = computer.ComputeExactCell(id, d.tuple(id).pos, 2);
    EXPECT_NEAR(cell.area, oracle.TopkCellArea(id, 2), 1e-5 * kBox.Area());
  }
}

TEST(Property, RunnerStopsPromptlyOnBudget) {
  const UsaScenario usa = BuildUsaScenario({.num_pois = 400});
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  UniformSampler sampler(usa.dataset->box());
  LrClient client(&server, {.k = 3, .budget = 500});
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {});
  const RunResult run = RunWithBudget(MakeHandle(&est), 500);
  EXPECT_GE(run.queries, 500u);
  EXPECT_LT(run.queries, 1500u);  // at most one sample of overshoot
  // The estimator object stays usable after the budget trips.
  est.Step();
  EXPECT_GT(est.queries_used(), run.queries);
}

TEST(Property, LocalizeWithPrecomputedCellSavesQueries) {
  Dataset d(kBox, Schema());
  d.Add({50, 50}, {});
  d.Add({80, 52}, {});
  d.Add({49, 81}, {});
  d.Add({18, 48}, {});
  d.Add({52, 19}, {});
  LbsServer server(&d, {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  LnrCellComputer computer(&client);
  const auto cell = computer.ComputeTop1Cell(0, {50, 50});
  ASSERT_TRUE(cell.has_value());

  Localizer localizer(&client);
  const uint64_t before = client.queries_used();
  const auto with_cell = localizer.LocateWithCell(0, *cell);
  const uint64_t reuse_cost = client.queries_used() - before;
  ASSERT_TRUE(with_cell.has_value());

  const uint64_t before_full = client.queries_used();
  const auto full = localizer.Locate(0, {50, 50});
  const uint64_t full_cost = client.queries_used() - before_full;
  ASSERT_TRUE(full.has_value());
  EXPECT_LT(reuse_cost, full_cost);
  EXPECT_NEAR(Distance(*with_cell, *full), 0.0, 1e-6);
}

TEST(Property, TrilaterationOnObfuscatedServiceRecoversEffectivePositions) {
  Dataset d = UniformDataset(100, 929);
  ServerOptions sopts;
  sopts.max_k = 5;
  sopts.obfuscation_radius = 2.0;
  LbsServer server(&d, sopts);
  TrilaterationClient client(&server, {.k = 3});
  Rng rng(931);
  for (int trial = 0; trial < 20; ++trial) {
    for (const LrClient::Item& item : client.Query(kBox.SamplePoint(rng))) {
      // The service reports distances to *effective* positions, so that is
      // what trilateration recovers — exactly like a real obfuscated app.
      EXPECT_NEAR(
          Distance(item.location, server.EffectivePosition(item.id)), 0.0,
          1e-6);
    }
  }
}

}  // namespace
}  // namespace lbsagg
