#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"
#include "util/svg.h"
#include "util/table.h"

namespace lbsagg {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRejectionIsUnbiased) {
  Rng rng(13);
  std::map<uint64_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(3)];
  for (const auto& [value, count] : counts) {
    EXPECT_LT(value, 3u);
    EXPECT_NEAR(static_cast<double>(count) / n, 1.0 / 3.0, 0.02);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.SampleVariance(), 1.0, 0.05);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.SampleVariance(), 0.0);
  EXPECT_EQ(s.StandardError(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with Bessel: Σ(x-5)² / 7 = 32/7.
  EXPECT_NEAR(s.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(29);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.SampleVariance(), all.SampleVariance(), 1e-9);
}

TEST(RunningStats, MergeIsAssociative) {
  // (a ∪ b) ∪ c and a ∪ (b ∪ c) must agree — run reports merge per-family
  // accumulators in whatever order the sweeps complete.
  Rng rng(41);
  RunningStats a, b, c;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Normal(-1.0, 4.0);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(x);
  }

  RunningStats left = a;   // (a ∪ b) ∪ c
  left.Merge(b);
  left.Merge(c);
  RunningStats bc = b;     // a ∪ (b ∪ c)
  bc.Merge(c);
  RunningStats right = a;
  right.Merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.SampleVariance(), right.SampleVariance(), 1e-12);
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
}

TEST(RunningStats, ToJsonCarriesEveryField) {
  RunningStats s;
  for (double x : {2.0, 4.0, 6.0}) s.Add(x);
  const std::string json = s.ToJson();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":4"), std::string::npos);
  EXPECT_NE(json.find("\"stddev\":2"), std::string::npos);
  EXPECT_NE(json.find("\"se\":"), std::string::npos);
  EXPECT_NE(json.find("\"ci95_half_width\":"), std::string::npos);
  EXPECT_NE(json.find("\"min\":2"), std::string::npos);
  EXPECT_NE(json.find("\"max\":6"), std::string::npos);

  // Empty stats serialize with zeros, not NaNs — the report must stay
  // valid JSON whatever the run produced.
  EXPECT_EQ(RunningStats().ToJson().find("nan"), std::string::npos);
}

TEST(RunningStats, ConfidenceHalfWidthShrinks) {
  Rng rng(31);
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.Add(rng.Normal());
  const double hw100 = s.ConfidenceHalfWidth();
  for (int i = 0; i < 9900; ++i) s.Add(rng.Normal());
  EXPECT_LT(s.ConfidenceHalfWidth(), hw100 / 5.0);
}

TEST(Summary, PercentilesOfKnownSample) {
  std::vector<double> values;
  for (int i = 1; i <= 101; ++i) values.push_back(i);
  const Summary s = Summarize(values);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
}

TEST(Summary, EmptyInput) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(-50.0, -100.0), 0.5);
}

TEST(Stats, DecomposeErrorBiasAndVariance) {
  const std::vector<double> runs = {9.0, 11.0, 9.0, 11.0};
  const ErrorDecomposition d = DecomposeError(runs, 10.0);
  EXPECT_NEAR(d.bias, 0.0, 1e-12);
  EXPECT_NEAR(d.variance, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(d.mse, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(d.mean_rel_error, 0.1, 1e-12);
}

TEST(Svg, DocumentStructureAndElements) {
  SvgCanvas canvas(Box({0, 0}, {100, 50}), 200.0);
  canvas.AddPolygon(ConvexPolygon::FromBox(Box({10, 10}, {20, 20})), "red",
                    "black", 2.0, 0.5);
  canvas.AddPoint({50, 25}, 3.0, "blue");
  canvas.AddSegment({0, 0}, {100, 50}, "green");
  canvas.AddText({5, 45}, "label");
  const std::string svg = canvas.ToString();
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("width=\"200\""), std::string::npos);
  EXPECT_NE(svg.find("height=\"100\""), std::string::npos);  // aspect kept
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
  EXPECT_NE(svg.find(">label</text>"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, CoordinateMappingFlipsY) {
  SvgCanvas canvas(Box({0, 0}, {10, 10}), 100.0);
  // World (0, 10) = top-left → pixel y = 0; the point element must carry
  // cy="0".
  canvas.AddPoint({0, 10}, 1.0, "black");
  EXPECT_NE(canvas.ToString().find("cx=\"0\" cy=\"0\""),
            std::string::npos);
}

TEST(Svg, HeatColorEndpoints) {
  EXPECT_EQ(SvgCanvas::HeatColor(0.0), "#fff5c8");
  EXPECT_EQ(SvgCanvas::HeatColor(1.0), "#960a14");
  // Clamps out-of-range inputs.
  EXPECT_EQ(SvgCanvas::HeatColor(-3.0), SvgCanvas::HeatColor(0.0));
  EXPECT_EQ(SvgCanvas::HeatColor(9.0), SvgCanvas::HeatColor(1.0));
}

TEST(Check, PassingConditionsAreSilent) {
  LBSAGG_CHECK(true);
  LBSAGG_CHECK_EQ(1, 1);
  LBSAGG_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(Check, FailureAbortsWithMessage) {
  EXPECT_DEATH(LBSAGG_CHECK(false) << "context " << 42, "context 42");
  EXPECT_DEATH(LBSAGG_CHECK_EQ(1, 2), "LBSAGG_CHECK failed");
}

TEST(Table, RendersAlignedMarkdown) {
  Table t({"name", "value"});
  t.AddRow({"alpha", Table::Num(1.5, 2)});
  t.AddRow({"b", Table::Int(42)});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1.50  |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 42    |"), std::string::npos);
}

}  // namespace
}  // namespace lbsagg
