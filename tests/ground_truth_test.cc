#include <vector>

#include <gtest/gtest.h>

#include "core/ground_truth.h"
#include "geometry/voronoi_diagram.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

TEST(GroundTruth, MatchesVoronoiDiagramForTop1) {
  const auto pts = RandomPoints(200, 401);
  const GroundTruthOracle oracle(pts, kBox);
  const VoronoiDiagram vd = VoronoiDiagram::Build(pts, kBox);
  for (int i = 0; i < 200; i += 7) {
    EXPECT_NEAR(oracle.TopkCellArea(i, 1), vd.Cell(i).Area(),
                1e-7 * kBox.Area())
        << i;
  }
}

TEST(GroundTruth, MatchesUnprunedComputation) {
  const auto pts = RandomPoints(60, 403);
  const GroundTruthOracle oracle(pts, kBox);
  for (int h : {1, 2, 3}) {
    for (int i = 0; i < 60; i += 11) {
      std::vector<Vec2> others;
      for (int j = 0; j < 60; ++j) {
        if (j != i) others.push_back(pts[j]);
      }
      const TopkRegion direct = ComputeTopkRegion(pts[i], others, kBox, h);
      EXPECT_NEAR(oracle.TopkCellArea(i, h), direct.area,
                  1e-7 * kBox.Area())
          << "i=" << i << " h=" << h;
    }
  }
}

TEST(GroundTruth, TopkAreasSumToKTimesBox) {
  const auto pts = RandomPoints(40, 407);
  const GroundTruthOracle oracle(pts, kBox);
  for (int h : {1, 2}) {
    double total = 0.0;
    for (int i = 0; i < 40; ++i) total += oracle.TopkCellArea(i, h);
    EXPECT_NEAR(total, h * kBox.Area(), 1e-5 * kBox.Area());
  }
}

TEST(GroundTruth, InclusionProbabilityNormalized) {
  const auto pts = RandomPoints(30, 409);
  const GroundTruthOracle oracle(pts, kBox);
  double total = 0.0;
  for (int i = 0; i < 30; ++i) {
    total += oracle.UniformInclusionProbability(i, 1);
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(GroundTruth, ClusteredPointsStressCertifiedPruning) {
  // Two dense clusters + sparse outliers: cells span 5 orders of magnitude,
  // so the pruning radius must adapt per tuple.
  Rng rng(411);
  std::vector<Vec2> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.Uniform(10, 11), rng.Uniform(10, 11)});
  }
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.Uniform(80, 81), rng.Uniform(80, 81)});
  }
  pts.push_back({50, 95});
  const GroundTruthOracle oracle(pts, kBox);
  const VoronoiDiagram vd = VoronoiDiagram::Build(pts, kBox);
  double total = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    const double area = oracle.TopkCellArea(static_cast<int>(i), 1);
    EXPECT_NEAR(area, vd.Cell(i).Area(), 1e-6 * kBox.Area()) << i;
    total += area;
  }
  EXPECT_NEAR(total, kBox.Area(), 1e-5 * kBox.Area());
}

}  // namespace
}  // namespace lbsagg
