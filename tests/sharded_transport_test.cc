// ShardedTransport: scatter-gather over per-shard lanes. Pins (1) clean
// lanes are invisible — replies bit-identical to the monolithic server for
// every shard and worker count; (2) a hot shard whose retries succeed
// still merges bit-identically (the retry path changes cost, never
// content); (3) an exhausted lane budget surfaces as a *typed* error with
// an empty page, never a silently truncated top-k; (4) per-lane metrics
// and the obs counters account truthfully.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/nno_baseline.h"
#include "core/runner.h"
#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "lbs/sharded_server.h"
#include "obs/metrics.h"
#include "transport/async_dispatcher.h"
#include "transport/sharded_transport.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {800, 500});

Schema MakeSchema() {
  Schema s;
  s.AddColumn("category", AttrType::kString);
  return s;
}

Dataset MakeDataset(int n, uint64_t seed) {
  Dataset d(kBox, MakeSchema());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    d.Add(kBox.SamplePoint(rng),
          {std::string(i % 3 == 0 ? "restaurant" : "other")});
  }
  return d;
}

std::vector<Vec2> MakeQueries(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> queries;
  for (int i = 0; i < n; ++i) queries.push_back(kBox.SamplePoint(rng));
  return queries;
}

void ExpectHitsEqual(const std::vector<ServerHit>& a,
                     const std::vector<ServerHit>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple_id, b[i].tuple_id) << what << " rank " << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << what << " rank " << i;
  }
}

TEST(ShardedTransport, CleanLanesBitIdenticalToMonolithEveryShardCount) {
  const Dataset d = MakeDataset(1200, 5);
  const LbsServer mono(&d, {});
  const std::vector<Vec2> queries = MakeQueries(100, 9);
  for (int shards : {1, 4, 16}) {
    const ShardedLbsServer server(&d, {.num_shards = shards});
    ShardedTransportOptions topts;
    topts.rate_limit = {.capacity = 4.0, .refill_per_sec = 100.0};
    ShardedTransport transport(&server, topts);
    for (const Vec2& q : queries) {
      const TransportReply reply = transport.Query(q, 5, nullptr);
      EXPECT_EQ(reply.outcome, TransportOutcome::kOk);
      EXPECT_EQ(reply.attempts, 1);
      ExpectHitsEqual(reply.hits, mono.Query(q, 5), "clean lanes");
    }
    const TransportMetrics m = transport.Metrics();
    EXPECT_EQ(m.requests, queries.size());
    EXPECT_EQ(m.attempts, queries.size());  // critical path: 1 per query
  }
}

TEST(ShardedTransport, DispatcherWorkerCountInvariant) {
  const Dataset d = MakeDataset(1000, 7);
  const ShardedLbsServer server(&d, {.num_shards = 4});
  const std::vector<Vec2> queries = MakeQueries(200, 11);

  auto run = [&](unsigned workers) {
    ShardedTransportOptions topts;
    topts.faults.transient_error_rate = 0.1;
    topts.faults.truncate_rate = 0.05;
    topts.retry.max_attempts = 4;
    ShardedTransport transport(&server, topts);
    AsyncDispatcher dispatcher(&transport, {workers, 64});
    const std::vector<TransportReply> replies =
        dispatcher.QueryBatch(queries, 5, nullptr);
    return std::make_pair(replies, transport.Metrics());
  };
  const auto [replies1, metrics1] = run(1);
  const auto [replies8, metrics8] = run(8);
  ASSERT_EQ(replies1.size(), replies8.size());
  for (size_t i = 0; i < replies1.size(); ++i) {
    EXPECT_EQ(replies1[i].outcome, replies8[i].outcome);
    EXPECT_EQ(replies1[i].attempts, replies8[i].attempts);
    EXPECT_EQ(replies1[i].latency_ms, replies8[i].latency_ms);
    ExpectHitsEqual(replies1[i].hits, replies8[i].hits, "workers");
  }
  EXPECT_EQ(metrics1, metrics8);
}

TEST(ShardedTransport, HotShardRetriesKeepMergedResultBitIdentical) {
  const Dataset d = MakeDataset(1200, 13);
  const LbsServer mono(&d, {});
  const ShardedLbsServer server(&d, {.num_shards = 4});

  // Shard 2 runs hot with retryable faults, but enough attempts remain
  // that every sub-request eventually succeeds with very high probability;
  // queries whose retries all land deliver bit-identical merges.
  ShardedTransportOptions topts;
  topts.shard_faults.resize(4);
  topts.shard_faults[2].transient_error_rate = 0.5;
  topts.retry.max_attempts = 12;
  ShardedTransport transport(&server, topts);

  int delivered = 0;
  int retried = 0;
  for (const Vec2& q : MakeQueries(150, 17)) {
    const TransportReply reply = transport.Query(q, 5, nullptr);
    if (reply.outcome != TransportOutcome::kOk) continue;  // astronomically rare
    ++delivered;
    if (reply.attempts > 1) ++retried;
    ExpectHitsEqual(reply.hits, mono.Query(q, 5), "hot shard");
  }
  EXPECT_GE(delivered, 145);  // p(12 consecutive failures) = 0.5^12 per query
  EXPECT_GT(retried, 0);      // the hot lane actually exercised the retry path

  // The cost of the hot shard is visible exactly where it should be: lane 2
  // spent retries, the clean lanes spent none, and the client-facing
  // aggregate charged the critical path (max attempts over lanes).
  EXPECT_GT(transport.ShardMetrics(2).retries, 0u);
  EXPECT_EQ(transport.ShardMetrics(0).retries, 0u);
  EXPECT_EQ(transport.ShardMetrics(1).retries, 0u);
  EXPECT_EQ(transport.ShardMetrics(3).retries, 0u);
  EXPECT_GT(transport.Metrics().attempts, transport.Metrics().requests);
}

TEST(ShardedTransport, ExhaustedLaneBudgetSurfacesTypedErrorNotTruncation) {
  const Dataset d = MakeDataset(800, 19);
  const LbsServer mono(&d, {});
  const ShardedLbsServer server(&d, {.num_shards = 4});

  // Shard 1 always fails; a tiny per-lane retry budget is spent within a
  // few queries, after which its sub-requests fail fast as kFatal.
  ShardedTransportOptions topts;
  topts.shard_faults.resize(4);
  topts.shard_faults[1].transient_error_rate = 1.0;
  topts.retry.max_attempts = 3;
  topts.retry.retry_budget = 4;
  ShardedTransport transport(&server, topts);

  int fatal = 0;
  for (const Vec2& q : MakeQueries(60, 23)) {
    const TransportReply reply = transport.Query(q, 5, nullptr);
    if (Delivered(reply.outcome)) {
      // Only queries that never needed the dead shard deliver — and their
      // merge is the full monolithic answer, not a 3-shard subset.
      ExpectHitsEqual(reply.hits, mono.Query(q, 5), "delivered");
    } else {
      // The partial failure is typed and the page empty: estimators see
      // "no answer", never a silently truncated top-k.
      EXPECT_TRUE(reply.outcome == TransportOutcome::kTransientError ||
                  reply.outcome == TransportOutcome::kFatal);
      EXPECT_TRUE(reply.hits.empty());
      if (reply.outcome == TransportOutcome::kFatal) ++fatal;
    }
  }
  EXPECT_GT(fatal, 0) << "retry budget exhaustion never surfaced";
  EXPECT_GT(transport.Metrics().outcomes[static_cast<int>(
                TransportOutcome::kFatal)],
            0u);
}

TEST(ShardedTransport, EstimatorOverHotShardMatchesCleanEstimate) {
  const Dataset d = MakeDataset(1000, 29);
  const ShardedLbsServer server(&d, {.num_shards = 4});
  // Metadata server for the client: same options, brute backend (zero
  // build cost; never searched — all queries route through the transport).
  const LbsServer meta(&d, {.index_backend = IndexBackend::kBruteForce});
  const AggregateSpec spec = AggregateSpec::Count();

  auto estimate = [&](double hot_rate) {
    ShardedTransportOptions topts;
    topts.shard_faults.resize(4);
    topts.shard_faults[3].transient_error_rate = hot_rate;
    topts.retry.max_attempts = 16;  // retries always recover eventually
    ShardedTransport transport(&server, topts);
    LrClient client(&meta, {.k = 5, .budget = 400}, &transport);
    NnoEstimator est(&client, spec, {.seed = 99});
    return RunWithBudget(MakeHandle(&est), 400);
  };
  const RunResult clean = estimate(0.0);
  const RunResult hot = estimate(0.45);
  // Every logical answer is identical once retries succeed, so each
  // *round* produces the same estimate; the flaky run just pays more
  // attempts per round and therefore completes fewer rounds per budget.
  ASSERT_GT(clean.trace.size(), 0u);
  ASSERT_GT(hot.trace.size(), 0u);
  EXPECT_LE(hot.trace.size(), clean.trace.size());
  for (size_t i = 0; i < hot.trace.size(); ++i) {
    EXPECT_EQ(hot.trace[i].estimate, clean.trace[i].estimate)
        << "round " << i;
  }
}

TEST(ShardedTransport, PerShardCountersLandOnTheMetricPlane) {
  const Dataset d = MakeDataset(600, 31);
  const ShardedLbsServer server(&d, {.num_shards = 3});
  obs::MetricsRegistry registry;
  ShardedTransportOptions topts;
  topts.registry = &registry;
  ShardedTransport transport(&server, topts);
  for (const Vec2& q : MakeQueries(20, 37)) {
    (void)transport.Query(q, 5, nullptr);
  }
  const obs::MetricsSnapshot snap = registry.Snapshot();
  uint64_t sharded_requests = 0;
  uint64_t lane_attempts = 0;
  int lane_counters = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "transport.sharded.requests") sharded_requests = c.value;
    if (c.name == obs::ShardMetricName("transport", 0, "attempts") ||
        c.name == obs::ShardMetricName("transport", 1, "attempts") ||
        c.name == obs::ShardMetricName("transport", 2, "attempts")) {
      ++lane_counters;
      lane_attempts += c.value;
    }
  }
  EXPECT_EQ(sharded_requests, 20u);
  EXPECT_EQ(lane_counters, 3);
  // Clean lanes, infinite radius: every query fans out to all 3 shards.
  EXPECT_EQ(lane_attempts, 60u);
}

TEST(ShardedTransport, CoverageRadiusPrunesFanOut) {
  const Dataset d = MakeDataset(1200, 41);
  ServerOptions sopts;
  sopts.max_radius = 40.0;  // small coverage disc in an 800x500 box
  const ShardedLbsServer server(
      &d, {.num_shards = 16, .partition = ShardPartition::kSpatial,
           .server = sopts});
  obs::MetricsRegistry registry;
  ShardedTransportOptions topts;
  topts.registry = &registry;
  ShardedTransport transport(&server, topts);
  const std::vector<Vec2> queries = MakeQueries(50, 43);
  for (const Vec2& q : queries) (void)transport.Query(q, 5, nullptr);
  uint64_t fanout = 0;
  for (const auto& c : registry.Snapshot().counters) {
    if (c.name == "transport.sharded.fanout") fanout = c.value;
  }
  // Spatial shards + small d_max: the scatter targets a handful of shards,
  // not all 16 — this is what lets per-lane quota scale with the fleet.
  EXPECT_GT(fanout, 0u);
  EXPECT_LT(fanout, queries.size() * 8);
  // Pruned scatter still answers exactly like the monolith.
  const LbsServer mono(&d, sopts);
  for (const Vec2& q : queries) {
    ExpectHitsEqual(transport.Query(q, 5, nullptr).hits, mono.Query(q, 5),
                    "pruned scatter");
  }
}

}  // namespace
}  // namespace lbsagg
