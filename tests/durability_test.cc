// Crash-recovery matrix for the durable evidence log (DESIGN.md §4.14). The
// contract under test: a run killed at ANY byte boundary of its WAL and
// resumed — same process or a fresh one — finishes with bit-identical
// estimates, traces, and query counts to the uninterrupted run. The matrix
// crosses kill points (mid-record, mid-round, between a checkpoint and the
// tail, torn last record, even mid-header) with every resolver family, and
// the fig12 regression fingerprint is pinned straight through a
// crash+resume. The two-process half runs a real fork + SIGKILL (gated off
// under TSAN, which does not survive forked children).

#include "engine/log/durable_log.h"

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "engine/engine.h"
#include "engine/lnr_resolver.h"
#include "engine/lr_resolver.h"
#include "engine/nno_resolver.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "service/service.h"
#include "workload/scenarios.h"

#if defined(__SANITIZE_THREAD__)
#define LBSAGG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LBSAGG_TSAN 1
#endif
#endif

namespace lbsagg {
namespace engine {
namespace {

namespace fs = std::filesystem;

const UsaScenario& SmallUsa() {
  static const UsaScenario usa = BuildUsaScenario({.num_pois = 800});
  return usa;
}

std::string TestDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("durability_test_" + name);
  fs::remove_all(dir);
  return dir.string();
}

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

enum class Family { kLr, kLnr, kNno };

// The estimator stack of one run, built identically for the original run
// and every resume — the bit-identity contract requires it.
struct Stack {
  std::unique_ptr<LbsClient> client;
  std::unique_ptr<CellResolver> resolver;
  std::unique_ptr<EstimationEngine> engine;
  AggregateQuery* query = nullptr;
};

Stack BuildStack(Family family, const LbsServer& server,
                 const QuerySampler* sampler, uint64_t seed, uint64_t budget,
                 const AggregateSpec& spec) {
  Stack stack;
  switch (family) {
    case Family::kLr: {
      auto client = std::make_unique<LrClient>(
          &server, ClientOptions{.k = 5, .budget = budget});
      LrAggOptions opts;
      opts.seed = seed;
      stack.resolver =
          std::make_unique<LrCellResolver>(client.get(), sampler, opts);
      stack.client = std::move(client);
      break;
    }
    case Family::kLnr: {
      auto client = std::make_unique<LnrClient>(
          &server, ClientOptions{.k = 5, .budget = budget});
      LnrAggOptions opts;
      opts.seed = seed;
      stack.resolver =
          std::make_unique<LnrCellResolver>(client.get(), sampler, opts);
      stack.client = std::move(client);
      break;
    }
    case Family::kNno: {
      auto client = std::make_unique<LrClient>(
          &server, ClientOptions{.k = 5, .budget = budget});
      NnoOptions opts;
      opts.seed = seed;
      stack.resolver =
          std::make_unique<NnoProbeResolver>(client.get(), opts);
      stack.client = std::move(client);
      break;
    }
  }
  stack.engine = std::make_unique<EstimationEngine>(stack.resolver.get());
  stack.query = stack.engine->AddAggregate(spec);
  return stack;
}

struct RunOutcome {
  double estimate = 0.0;
  uint64_t fingerprint = 0;
  uint64_t queries = 0;
  size_t rounds = 0;
};

RunOutcome Outcome(const Stack& stack) {
  RunOutcome outcome;
  outcome.estimate = stack.query->Estimate();
  outcome.fingerprint = TraceFingerprint(stack.query->trace());
  outcome.queries = stack.engine->queries_used();
  outcome.rounds = stack.engine->evidence().num_rounds();
  return outcome;
}

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b,
                       const std::string& label) {
  EXPECT_TRUE(SameBits(a.estimate, b.estimate))
      << label << ": " << a.estimate << " vs " << b.estimate;
  EXPECT_EQ(a.fingerprint, b.fingerprint) << label;
  EXPECT_EQ(a.queries, b.queries) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
}

// Runs a fresh durable run to completion in `dir` and returns its outcome.
RunOutcome RunDurably(Family family, const std::string& dir, uint64_t seed,
                      uint64_t budget, uint64_t checkpoint_every,
                      const AggregateSpec& spec) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());
  Stack stack = BuildStack(family, server, &sampler, seed, budget, spec);
  DurableLogOptions options;
  options.dir = dir;
  options.checkpoint_every_rounds = checkpoint_every;
  DurableEvidenceLog wal(options, stack.engine.get(), stack.client.get());
  EXPECT_TRUE(wal.ok()) << wal.error();
  RunEngineWithBudget(stack.engine.get(), &wal, budget);
  return Outcome(stack);
}

// Recovers `dir`, rebuilds the identical stack, and finishes the run.
// `error_out` non-null captures a refusal instead of failing the test.
RunOutcome ResumeAndFinish(Family family, const std::string& dir,
                           uint64_t seed, uint64_t budget,
                           uint64_t checkpoint_every, const AggregateSpec& spec,
                           std::string* error_out = nullptr) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());
  Stack stack = BuildStack(family, server, &sampler, seed, budget, spec);

  RecoveredRun rec = RecoverDurableRun(dir);
  std::string error = rec.error;
  if (error.empty()) {
    stack.engine->RestoreEvidence(rec.evidence);
    error = ApplyCheckpoint(rec, stack.engine.get(), stack.client.get());
  }
  if (!error.empty()) {
    if (error_out != nullptr) {
      *error_out = error;
      return RunOutcome{};
    }
    ADD_FAILURE() << "resume failed: " << error;
    return RunOutcome{};
  }

  DurableLogOptions options;
  options.dir = dir;
  options.checkpoint_every_rounds = checkpoint_every;
  DurableEvidenceLog wal(options, stack.engine.get(), stack.client.get());
  EXPECT_TRUE(wal.ok()) << wal.error();
  RunEngineWithBudget(stack.engine.get(), &wal, budget);
  return Outcome(stack);
}

void CopyWalDir(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

// --- Kill-point matrix ------------------------------------------------------

// Simulates a SIGKILL at byte `cut` of the (single-segment) WAL: everything
// the crashed process wrote past the cut never reached disk, while every
// checkpoint file survives — recovery must discard the ones the truncated
// log no longer covers.
void TruncateSegment(const std::string& dir, uint64_t cut) {
  const fs::path segment = fs::path(dir) / WalSegmentName(0);
  ASSERT_TRUE(fs::exists(segment));
  if (fs::file_size(segment) > cut) fs::resize_file(segment, cut);
}

// `budget` is per-family: a round costs ~10 interface queries for LR, ~40
// for NNO, and several hundred for LNR's binary searches, and the matrix
// wants a two-digit round count from each.
void RunKillPointMatrix(Family family, const char* name, uint64_t budget) {
  const AggregateSpec spec = AggregateSpec::Count();
  const uint64_t seed = 11, every = 4;
  const std::string oracle_dir = TestDir(std::string(name) + "_oracle");
  const RunOutcome oracle =
      RunDurably(family, oracle_dir, seed, budget, every, spec);
  ASSERT_GT(oracle.rounds, 8u);

  const fs::path segment = fs::path(oracle_dir) / WalSegmentName(0);
  ASSERT_TRUE(fs::exists(segment));
  const uint64_t full = fs::file_size(segment);
  const std::string cut_dir = TestDir(std::string(name) + "_cut");

  // Byte cuts: a coarse sweep (prime stride so cuts land mid-record and
  // mid-round) plus the exact commit boundaries and their neighbours (the
  // "torn last record" and "between checkpoint and tail" points).
  std::vector<uint64_t> cuts;
  for (uint64_t cut = 0; cut < full; cut += 131) cuts.push_back(cut);
  const WalReadResult read = ReadWal(oracle_dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  for (size_t r = 0; r < read.round_offsets.size(); r += 5) {
    const uint64_t boundary = read.round_offsets[r].second;
    cuts.push_back(boundary);
    if (boundary > 0) cuts.push_back(boundary - 1);
    cuts.push_back(boundary + 1);
  }

  for (const uint64_t cut : cuts) {
    CopyWalDir(oracle_dir, cut_dir);
    TruncateSegment(cut_dir, cut);
    const RunOutcome resumed =
        ResumeAndFinish(family, cut_dir, seed, budget, every, spec);
    ExpectSameOutcome(resumed, oracle,
                      std::string(name) + " cut=" + std::to_string(cut));
    // The resumed directory is clean: recovery truncated the torn tail and
    // the resumed writer extended a committed prefix.
    const WalReadResult after = ReadWal(cut_dir);
    EXPECT_TRUE(after.error.empty()) << after.error;
    EXPECT_EQ(after.torn_bytes, 0u) << "cut=" << cut;
    EXPECT_EQ(after.evidence.NumRounds(), oracle.rounds) << "cut=" << cut;
  }
}

TEST(DurabilityMatrix, LrResumesBitIdenticallyFromEveryKillPoint) {
  RunKillPointMatrix(Family::kLr, "lr", 300);
}

TEST(DurabilityMatrix, LnrResumesBitIdenticallyFromEveryKillPoint) {
  RunKillPointMatrix(Family::kLnr, "lnr", 6000);
}

TEST(DurabilityMatrix, NnoResumesBitIdenticallyFromEveryKillPoint) {
  RunKillPointMatrix(Family::kNno, "nno", 600);
}

// Clean-shutdown handoff inside one process: run half the budget, Close,
// tear the stack down, rebuild, resume to the full budget.
TEST(Durability, CleanHandoffAcrossStacksMatchesUninterruptedRun) {
  const AggregateSpec spec = AggregateSpec::Count();
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());

  // Uninterrupted oracle (no WAL attached: attaching one must not perturb).
  Stack oracle_stack =
      BuildStack(Family::kLr, server, &sampler, 3, 400, spec);
  RunEngineWithBudget(oracle_stack.engine.get(), 400);
  const RunOutcome oracle = Outcome(oracle_stack);

  const std::string dir = TestDir("handoff");
  {
    Stack stack = BuildStack(Family::kLr, server, &sampler, 3, 400, spec);
    DurableLogOptions options;
    options.dir = dir;
    options.checkpoint_every_rounds = 8;
    DurableEvidenceLog wal(options, stack.engine.get(), stack.client.get());
    // Half the run: stop after 15 rounds, Close (final checkpoint).
    RunEngineWithBudget(stack.engine.get(), &wal, 400, /*max_rounds=*/15);
    EXPECT_TRUE(wal.ok()) << wal.error();
    EXPECT_EQ(stack.engine->evidence().num_rounds(), 15u);
  }
  const RunOutcome resumed =
      ResumeAndFinish(Family::kLr, dir, 3, 400, 8, spec);
  ExpectSameOutcome(resumed, oracle, "clean handoff");
}

// --- Refusals ---------------------------------------------------------------

TEST(Durability, ResumeRefusesAWarmQueryMemo) {
  const AggregateSpec spec = AggregateSpec::Count();
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());
  Stack stack = BuildStack(Family::kLr, server, &sampler, 1, 100, spec);

  RecoveredRun rec;  // fabricated: a checkpoint taken with a warm memo
  rec.found_checkpoint = true;
  rec.checkpoint.round = 0;
  rec.checkpoint.memo_hash = 7;
  rec.checkpoint.resolver_name = stack.resolver->name();
  const std::string error =
      ApplyCheckpoint(rec, stack.engine.get(), stack.client.get());
  EXPECT_NE(error.find("memo"), std::string::npos) << error;
}

TEST(Durability, ResumeRefusesAggregateAndFamilyMismatches) {
  const AggregateSpec spec = AggregateSpec::Count();
  const std::string dir = TestDir("mismatch");
  RunDurably(Family::kLr, dir, 5, 200, 8, spec);

  // Wrong family: the checkpoint names the lr resolver.
  std::string error;
  ResumeAndFinish(Family::kNno, dir, 5, 200, 8, spec, &error);
  EXPECT_FALSE(error.empty());

  // Wrong aggregate set: same family, different spec name.
  const std::string dir2 = TestDir("mismatch2");
  RunDurably(Family::kLr, dir2, 5, 200, 8, spec);
  error.clear();
  ResumeAndFinish(Family::kLr, dir2, 5, 200, 8,
                  AggregateSpec::Sum(SmallUsa().columns.rating, "SUM(rating)"),
                  &error);
  EXPECT_FALSE(error.empty());
}

// --- fig12 regression fingerprint through crash + resume --------------------

// The monolith-era bit pattern (engine_regression_test.cc) must survive the
// full durability cycle: each of the three fixed-seed runs is written to a
// WAL, "killed" by truncating the log at an arbitrary byte, resumed in a
// fresh stack, and the resumed traces fold to the same fingerprint.
TEST(DurabilityRegression, Fig12FingerprintSurvivesCrashAndResume) {
  UsaOptions uopts;
  uopts.num_pois = 6000;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  CensusSampler sampler(&usa.census);
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");

  uint64_t hash = 0;
  for (uint64_t seed = 42; seed < 45; ++seed) {
    const std::string dir = TestDir("fig12_" + std::to_string(seed));
    {
      Stack stack = BuildStack(Family::kLr, server, &sampler, seed, 4000, spec);
      DurableLogOptions options;
      options.dir = dir;
      options.checkpoint_every_rounds = 32;
      DurableEvidenceLog wal(options, stack.engine.get(), stack.client.get());
      RunEngineWithBudget(stack.engine.get(), &wal, 4000);
    }
    // Kill at an arbitrary mid-record byte (~60% in, varied per seed).
    const fs::path segment = fs::path(dir) / WalSegmentName(0);
    ASSERT_TRUE(fs::exists(segment));
    const uint64_t cut = fs::file_size(segment) * 3 / 5 + 7 * seed;
    fs::resize_file(segment, cut);

    Stack stack = BuildStack(Family::kLr, server, &sampler, seed, 4000, spec);
    RecoveredRun rec = RecoverDurableRun(dir);
    ASSERT_TRUE(rec.error.empty()) << rec.error;
    EXPECT_GT(rec.torn_bytes, 0u);
    stack.engine->RestoreEvidence(rec.evidence);
    ASSERT_EQ(ApplyCheckpoint(rec, stack.engine.get(), stack.client.get()),
              "");
    DurableLogOptions options;
    options.dir = dir;
    options.checkpoint_every_rounds = 32;
    DurableEvidenceLog wal(options, stack.engine.get(), stack.client.get());
    RunEngineWithBudget(stack.engine.get(), &wal, 4000);

    for (const TracePoint& tp : stack.query->trace()) {
      uint64_t bits;
      std::memcpy(&bits, &tp.estimate, sizeof bits);
      hash = MixHash(hash, tp.queries);
      hash = MixHash(hash, bits);
    }
  }
  // The constant from engine_regression_test.cc — the adapter, the engine,
  // and now the crash+resume path all reproduce the monolith bit pattern.
  EXPECT_EQ(hash, 0x8e13737b33817270ull);
}

// --- Two-process handoff (real fork + SIGKILL) ------------------------------

#if !defined(LBSAGG_TSAN)
TEST(DurabilityTwoProcess, SigkilledChildResumesBitIdenticallyInParent) {
  const AggregateSpec spec = AggregateSpec::Count();
  const uint64_t budget = 300, seed = 21, every = 4;
  const std::string dir = TestDir("fork");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: run the first 12 rounds durably, then die mid-flight with no
    // Close, no destructors — the genuine article.
    const UsaScenario& usa = SmallUsa();
    LbsServer server(usa.dataset.get(), {.max_k = 5});
    UniformSampler sampler(usa.dataset->box());
    Stack stack = BuildStack(Family::kLr, server, &sampler, seed, budget, spec);
    DurableLogOptions options;
    options.dir = dir;
    options.checkpoint_every_rounds = every;
    DurableEvidenceLog wal(options, stack.engine.get(), stack.client.get());
    if (!wal.ok()) _exit(3);
    for (int i = 0; i < 12; ++i) {
      stack.engine->Step();
      wal.MaybeCheckpoint();
    }
    std::raise(SIGKILL);
    _exit(4);  // unreachable
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << status;
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Parent: the WAL the child left behind resumes to the oracle outcome.
  const std::string oracle_dir = TestDir("fork_oracle");
  const RunOutcome oracle =
      RunDurably(Family::kLr, oracle_dir, seed, budget, every, spec);
  const RunOutcome resumed =
      ResumeAndFinish(Family::kLr, dir, seed, budget, every, spec);
  ExpectSameOutcome(resumed, oracle, "two-process handoff");
}
#endif  // !LBSAGG_TSAN

// --- Service kill-and-reattach ----------------------------------------------

TEST(DurabilityService, SessionResumesViaResumeFrom) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  service::SessionSpec base;
  base.family = service::EstimatorFamily::kLr;
  base.budget = 300;
  base.seed = 17;
  base.checkpoint_every_rounds = 4;

  // Uninterrupted oracle session (no WAL).
  std::vector<RunResult> oracle;
  {
    service::EstimationService svc({{.meta = &server}});
    const service::SessionId id = svc.Submit(base);
    svc.RunUntilIdle();
    const service::SessionStatus status = svc.Poll(id);
    ASSERT_EQ(status.state, service::SessionState::kCompleted);
    oracle = status.results;
  }

  // "Interrupted" session: the round cap stops it mid-budget; its durable
  // log closes at the cap with a final checkpoint (service kill-and-
  // reattach; the arbitrary-kill-point matrix above covers hard kills).
  const std::string dir = TestDir("service");
  {
    service::EstimationService svc({{.meta = &server}});
    service::SessionSpec spec = base;
    spec.wal_dir = dir;
    spec.max_rounds = 10;
    const service::SessionId id = svc.Submit(spec);
    svc.RunUntilIdle();
    const service::SessionStatus status = svc.Poll(id);
    ASSERT_EQ(status.state, service::SessionState::kCompleted);
    ASSERT_EQ(status.rounds, 10u);
  }

  // Reattach in a brand-new service instance (the "new process").
  {
    service::EstimationService svc({{.meta = &server}});
    service::SessionSpec spec = base;
    spec.resume_from = dir;
    const service::SessionId id = svc.Submit(spec);
    svc.RunUntilIdle();
    const service::SessionStatus status = svc.Poll(id);
    ASSERT_EQ(status.state, service::SessionState::kCompleted)
        << status.detail;
    ASSERT_EQ(status.results.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_EQ(status.results[i].queries, oracle[i].queries);
      EXPECT_TRUE(SameBits(status.results[i].final_estimate,
                           oracle[i].final_estimate));
      ASSERT_EQ(status.results[i].trace.size(), oracle[i].trace.size());
      for (size_t j = 0; j < oracle[i].trace.size(); ++j) {
        EXPECT_EQ(status.results[i].trace[j].queries,
                  oracle[i].trace[j].queries);
        EXPECT_TRUE(SameBits(status.results[i].trace[j].estimate,
                             oracle[i].trace[j].estimate));
      }
    }
  }
}

TEST(DurabilityService, ResumeWithWrongFamilyIsRejected) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  const std::string dir = TestDir("service_mismatch");

  service::EstimationService svc({{.meta = &server}});
  service::SessionSpec spec;
  spec.family = service::EstimatorFamily::kLr;
  spec.budget = 200;
  spec.seed = 9;
  spec.wal_dir = dir;
  spec.max_rounds = 6;
  const service::SessionId first = svc.Submit(spec);
  svc.RunUntilIdle();
  ASSERT_EQ(svc.Poll(first).state, service::SessionState::kCompleted);

  service::SessionSpec wrong = spec;
  wrong.wal_dir.clear();
  wrong.resume_from = dir;
  wrong.family = service::EstimatorFamily::kNno;
  const service::SessionId second = svc.Submit(wrong);
  svc.RunUntilIdle();
  const service::SessionStatus status = svc.Poll(second);
  EXPECT_EQ(status.state, service::SessionState::kRejected);
  EXPECT_NE(status.detail.find("resume failed"), std::string::npos)
      << status.detail;
  EXPECT_TRUE(status.results.empty());
}

TEST(DurabilityService, AttachingAWalDoesNotPerturbTheSession) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  service::SessionSpec spec;
  spec.family = service::EstimatorFamily::kNno;
  spec.budget = 150;
  spec.seed = 13;

  service::EstimationService svc({{.meta = &server}});
  const service::SessionId plain = svc.Submit(spec);
  spec.wal_dir = TestDir("service_observer");
  spec.checkpoint_every_rounds = 4;
  const service::SessionId logged = svc.Submit(spec);
  svc.RunUntilIdle();

  const service::SessionStatus a = svc.Poll(plain);
  const service::SessionStatus b = svc.Poll(logged);
  ASSERT_EQ(a.state, service::SessionState::kCompleted);
  ASSERT_EQ(b.state, service::SessionState::kCompleted);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_TRUE(SameBits(a.results[i].final_estimate,
                         b.results[i].final_estimate));
    EXPECT_EQ(a.results[i].queries, b.results[i].queries);
  }
  // And the logged session's directory verifies clean.
  const WalReadResult read = ReadWal(spec.wal_dir);
  EXPECT_TRUE(read.error.empty()) << read.error;
  EXPECT_EQ(read.torn_bytes, 0u);
  EXPECT_GT(read.evidence.NumRounds(), 0u);
}

}  // namespace
}  // namespace engine
}  // namespace lbsagg
