// LearnedIndex-specific invariants, beyond the 4-way interface equivalence
// in spatial_equivalence_test.cc: Morton key monotonicity (the covering
// property every search relies on), the epsilon bound of the PLA model,
// segment scaling, larger-scale randomized agreement with the oracle on
// clustered (skewed) data, and the opt-in work counters.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "obs/obs.h"
#include "spatial/brute_force.h"
#include "spatial/learned_index.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {1000, 1000});

std::vector<Vec2> UniformPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

// Zipf-ish city clusters: heavy spatial skew, the regime where curve order
// and block bounding boxes earn their keep (and where a uniform grid
// degrades).
std::vector<Vec2> ClusteredPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> centers;
  for (int c = 0; c < 12; ++c) centers.push_back(kBox.SamplePoint(rng));
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Vec2& c = centers[i % 3 == 0 ? rng.UniformInt(12) : 0];
    const double spread = 5.0 + 20.0 * rng.Uniform01();
    pts.push_back(kBox.Clamp(c + Vec2{rng.Uniform(-spread, spread),
                                      rng.Uniform(-spread, spread)}));
  }
  return pts;
}

TEST(LearnedIndex, MortonKeyMonotonePerCoordinate) {
  const auto pts = UniformPoints(500, 5);
  const LearnedIndex index(pts);
  Rng rng(6);
  for (int trial = 0; trial < 2000; ++trial) {
    const Vec2 a = kBox.SamplePoint(rng);
    // Move up-right: the key must not decrease (monotone per coordinate is
    // what bounds a box's keys by its corners' keys).
    const Vec2 b{a.x + rng.Uniform(0.0, 100.0), a.y};
    const Vec2 c{a.x, a.y + rng.Uniform(0.0, 100.0)};
    EXPECT_LE(index.MortonKey(a), index.MortonKey(b));
    EXPECT_LE(index.MortonKey(a), index.MortonKey(c));
  }
}

TEST(LearnedIndex, ModelStaysWithinEpsilon) {
  for (const uint64_t seed : {1u, 2u}) {
    for (const int n : {100, 5000, 50000}) {
      const LearnedIndex uniform(UniformPoints(n, seed));
      // The shrinking cone guarantees ±epsilon at fit time; the audit pass
      // allows a small FP slack at the cone edges but nothing material.
      EXPECT_LE(uniform.max_model_error(), LearnedIndex::kEpsilon + 1)
          << "uniform n=" << n;
      const LearnedIndex skewed(ClusteredPoints(n, seed));
      EXPECT_LE(skewed.max_model_error(), LearnedIndex::kEpsilon + 1)
          << "clustered n=" << n;
      // The model must actually compress: a segment covers at least epsilon
      // ranks on average (far more in practice), so segments ≪ points.
      EXPECT_LE(skewed.segments(),
                static_cast<size_t>(n) / LearnedIndex::kEpsilon + 2)
          << "clustered n=" << n;
    }
  }
}

TEST(LearnedIndex, AgreesWithOracleOnSkewedData) {
  const int n = 20000;
  const auto pts = ClusteredPoints(n, 11);
  const LearnedIndex learned(pts);
  const BruteForceIndex brute(pts);
  Rng rng(12);
  for (int trial = 0; trial < 60; ++trial) {
    Vec2 q = kBox.SamplePoint(rng);
    if (trial % 2 == 1) q = pts[rng.UniformInt(static_cast<uint64_t>(n))];
    for (const int k : {1, 10, 50}) {
      const auto got = learned.Nearest(q, k);
      const auto want = brute.Nearest(q, k);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].index, want[i].index) << "k=" << k << " rank " << i;
        EXPECT_EQ(got[i].distance, want[i].distance);
      }
    }
    const auto got_r = learned.WithinRadius(q, 25.0);
    const auto want_r = brute.WithinRadius(q, 25.0);
    ASSERT_EQ(got_r.size(), want_r.size());
  }
}

TEST(LearnedIndex, EmptyAndTinyInputs) {
  const LearnedIndex empty(std::vector<Vec2>{});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.Nearest({1, 2}, 5).empty());
  EXPECT_TRUE(empty.WithinRadius({1, 2}, 10.0).empty());

  const LearnedIndex one(std::vector<Vec2>{{3, 4}});
  EXPECT_EQ(one.size(), 1u);
  const auto got = one.Nearest({0, 0}, 3);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].index, 0);
  EXPECT_EQ(got[0].distance, 5.0);
  EXPECT_EQ(one.Nearest({0, 0}, 0).size(), 0u);

  // Collinear points on one axis: Morton keys degenerate to one coordinate.
  std::vector<Vec2> line;
  for (int i = 0; i < 200; ++i) line.push_back({static_cast<double>(i), 7.0});
  const LearnedIndex li(line);
  const BruteForceIndex bf(line);
  for (const double x : {0.0, 17.3, 199.0, 500.0}) {
    const auto a = li.Nearest({x, 7.0}, 5);
    const auto b = bf.Nearest({x, 7.0}, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

#ifndef LBSAGG_OBS_DISABLED
uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& sample : snapshot.counters) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

TEST(LearnedIndex, PublishesWorkCountersWhenEnabled) {
  obs::MetricsRegistry registry;
  LearnedIndex index(UniformPoints(5000, 21));
  // Without EnableStats nothing is published.
  (void)index.Nearest({500, 500}, 10);
  EXPECT_TRUE(registry.Snapshot().counters.empty());

  index.EnableStats(&registry);
  (void)index.Nearest({500, 500}, 10);
  (void)index.WithinRadius({500, 500}, 50.0);
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "spatial.learned.searches"), 2u);
  EXPECT_GT(CounterValue(snapshot, "spatial.learned.blocks_scanned"), 0u);
  EXPECT_GT(CounterValue(snapshot, "spatial.learned.points_tested"), 0u);
}
#endif

}  // namespace
}  // namespace lbsagg
