// Unit tests of the durable evidence log's storage layer (engine/log/):
// segment/record format round-trips, the writer's fsync/rotate discipline,
// torn-tail detection and truncation, deterministic failure injection, the
// checkpoint file format, and the store→WAL→store round-trip that pins WAL
// framing to the in-memory evidence protocol — empty rounds and zero-round
// logs included, mirroring EvidenceStore::ToJson's edge-case contract.

#include "engine/log/wal.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/evidence_store.h"
#include "engine/log/checkpoint.h"
#include "engine/log/wal_format.h"

namespace lbsagg {
namespace engine {
namespace {

namespace fs = std::filesystem;

// Fresh directory per test; gtest's TempDir is shared across the binary.
std::string TestDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("wal_test_" + name);
  fs::remove_all(dir);
  return dir.string();
}

Observation MakeObs(int tuple_id, double weight) {
  Observation obs;
  obs.tuple_id = tuple_id;
  obs.rank = tuple_id % 3;
  obs.h = 1 + tuple_id % 5;
  obs.has_location = tuple_id % 2 == 0;
  obs.location = {0.25 * tuple_id, -1.5 * tuple_id};
  obs.weight_form =
      tuple_id % 2 == 0 ? WeightForm::kInverseProbability : WeightForm::kProbability;
  obs.weight = weight;
  obs.exact = tuple_id % 3 == 0;
  obs.cost = 2 * static_cast<uint64_t>(tuple_id) + 1;
  return obs;
}

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

void ExpectSameObservation(const Observation& a, const Observation& b) {
  EXPECT_EQ(a.tuple_id, b.tuple_id);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.h, b.h);
  EXPECT_EQ(a.has_location, b.has_location);
  EXPECT_TRUE(SameBits(a.location.x, b.location.x));
  EXPECT_TRUE(SameBits(a.location.y, b.location.y));
  EXPECT_EQ(a.weight_form, b.weight_form);
  EXPECT_TRUE(SameBits(a.weight, b.weight));
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.cost, b.cost);
}

// Writes `rounds` rounds; round r carries r % 3 observations, so round 0 is
// the empty-round edge case (BeginRound immediately followed by EndRound).
void WriteRounds(WalWriter* writer, uint64_t rounds, uint64_t first = 0) {
  for (uint64_t r = first; r < first + rounds; ++r) {
    writer->AppendBeginRound(r, {1.0 + 0.5 * r, -2.0 * r});
    EvidenceRound round;
    round.round = r;
    round.sample_point = {1.0 + 0.5 * r, -2.0 * r};
    round.queries_after = 10 * (r + 1);
    round.num_observations = r % 3;
    for (uint64_t i = 0; i < round.num_observations; ++i) {
      writer->AppendObservation(
          MakeObs(static_cast<int>(10 * r + i), 0.1 * r + i + 0.5));
    }
    writer->AppendEndRound(round);
  }
}

// --- Format round-trips -----------------------------------------------------

TEST(WalFormat, SegmentAndCheckpointNamesRoundTrip) {
  EXPECT_EQ(WalSegmentName(0), "wal-0000000000000000.wal");
  EXPECT_EQ(WalSegmentName(0x1a2b), "wal-0000000000001a2b.wal");
  uint64_t round = 0;
  EXPECT_TRUE(ParseWalSegmentName("wal-0000000000001a2b.wal", &round));
  EXPECT_EQ(round, 0x1a2bu);
  EXPECT_FALSE(ParseWalSegmentName("wal-123.wal", &round));
  EXPECT_FALSE(ParseWalSegmentName("ckpt-0000000000000000.ckpt", &round));

  EXPECT_EQ(CheckpointName(64), "ckpt-0000000000000040.ckpt");
  EXPECT_TRUE(ParseCheckpointName("ckpt-0000000000000040.ckpt", &round));
  EXPECT_EQ(round, 64u);
  EXPECT_FALSE(ParseCheckpointName("wal-0000000000000040.wal", &round));
}

TEST(WalFormat, HeaderRoundTripsAndRejectsCorruption) {
  const std::string header = EncodeWalHeader(1234);
  ASSERT_EQ(header.size(), kWalHeaderBytes);
  uint64_t start = 0;
  EXPECT_TRUE(DecodeWalHeader(header, &start));
  EXPECT_EQ(start, 1234u);

  for (size_t i = 0; i < header.size(); ++i) {
    std::string bad = header;
    bad[i] ^= 0x40;
    EXPECT_FALSE(DecodeWalHeader(bad, &start)) << "flipped byte " << i;
  }
  EXPECT_FALSE(DecodeWalHeader(header.substr(0, kWalHeaderBytes - 1), &start));
}

TEST(WalFormat, ObservationPayloadRoundTripsBitIdentically) {
  Observation in = MakeObs(7, 0.1 + 0.2);  // 0.30000000000000004: ulp matters
  std::string payload;
  EncodeObservation(in, &payload);
  BinaryReader r(payload.data() + 1, payload.size() - 1);
  Observation out;
  ASSERT_TRUE(DecodeObservation(&r, &out));
  ExpectSameObservation(in, out);
}

// --- Writer / reader --------------------------------------------------------

TEST(WalWriterReader, RoundTripPreservesEveryField) {
  const std::string dir = TestDir("roundtrip");
  {
    WalWriter writer(dir, {}, 0);
    WriteRounds(&writer, 7);
    writer.Close();
    ASSERT_TRUE(writer.ok()) << writer.error();
    EXPECT_EQ(writer.stats().records, 7u + (0 + 1 + 2) * 2 + 7u);
  }

  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  EXPECT_EQ(read.torn_bytes, 0u);
  EXPECT_FALSE(read.torn_round);
  ASSERT_EQ(read.evidence.NumRounds(), 7u);
  for (uint64_t r = 0; r < 7; ++r) {
    const EvidenceRound& round = read.evidence.Round(r);
    EXPECT_EQ(round.round, r);
    EXPECT_TRUE(SameBits(round.sample_point.x, 1.0 + 0.5 * r));
    EXPECT_EQ(round.queries_after, 10 * (r + 1));
    ASSERT_EQ(round.num_observations, r % 3);
    const Observation* obs = read.evidence.Observations(round);
    for (uint64_t i = 0; i < round.num_observations; ++i) {
      ExpectSameObservation(obs[i],
                            MakeObs(static_cast<int>(10 * r + i),
                                    0.1 * r + i + 0.5));
    }
  }
}

TEST(WalWriterReader, MissingAndEmptyDirectoriesReadAsZeroRounds) {
  const WalReadResult missing = ReadWal(TestDir("missing"));
  EXPECT_TRUE(missing.error.empty()) << missing.error;
  EXPECT_EQ(missing.evidence.NumRounds(), 0u);
  EXPECT_EQ(missing.segments.size(), 0u);

  // A writer that only ever wrote the segment header: still a clean log.
  const std::string dir = TestDir("headeronly");
  {
    WalWriter writer(dir, {}, 0);
    writer.Close();
    ASSERT_TRUE(writer.ok()) << writer.error();
  }
  const WalReadResult read = ReadWal(dir);
  EXPECT_TRUE(read.error.empty()) << read.error;
  EXPECT_EQ(read.evidence.NumRounds(), 0u);
  EXPECT_EQ(read.torn_bytes, 0u);
  ASSERT_EQ(read.segments.size(), 1u);
  EXPECT_EQ(read.segments[0].file_bytes, kWalHeaderBytes);
}

TEST(WalWriterReader, RotationKeepsRoundsWithinSegments) {
  const std::string dir = TestDir("rotate");
  WalWriterOptions options;
  options.segment_bytes = 256;  // force several rotations
  {
    WalWriter writer(dir, options, 0);
    WriteRounds(&writer, 24);
    writer.Close();
    ASSERT_TRUE(writer.ok()) << writer.error();
    EXPECT_GT(writer.stats().rotations, 1u);
  }
  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  EXPECT_EQ(read.evidence.NumRounds(), 24u);
  EXPECT_EQ(read.torn_bytes, 0u);
  ASSERT_GT(read.segments.size(), 2u);
  EXPECT_EQ(read.valid_segments, read.segments.size());
  // Rotation happens only at a BeginRound boundary, so each segment's file
  // name / header advertises exactly the round its first record carries.
  uint64_t expect_start = 0;
  for (size_t i = 0; i < read.segments.size(); ++i) {
    EXPECT_EQ(read.segments[i].start_round, expect_start);
    size_t rounds_in_segment = 0;
    for (const auto& [seg, offset] : read.round_offsets) {
      if (seg == i) ++rounds_in_segment;
    }
    expect_start += rounds_in_segment;
  }
  EXPECT_EQ(expect_start, 24u);
}

TEST(WalWriterReader, AppendsAcrossWriterInstances) {
  const std::string dir = TestDir("reopen");
  {
    WalWriter writer(dir, {}, 0);
    WriteRounds(&writer, 5);
    writer.Close();
    ASSERT_TRUE(writer.ok()) << writer.error();
  }
  {
    WalWriter writer(dir, {}, 5);
    WriteRounds(&writer, 4, /*first=*/5);
    writer.Close();
    ASSERT_TRUE(writer.ok()) << writer.error();
  }
  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  EXPECT_EQ(read.evidence.NumRounds(), 9u);
  EXPECT_EQ(read.torn_bytes, 0u);
  EXPECT_EQ(read.segments.size(), 1u);
}

// --- Torn tails and truncation ----------------------------------------------

TEST(WalRecovery, EveryBytePrefixYieldsACommittedPrefix) {
  const std::string dir = TestDir("prefix");
  {
    WalWriter writer(dir, {}, 0);
    WriteRounds(&writer, 6);
    writer.Close();
    ASSERT_TRUE(writer.ok()) << writer.error();
  }
  const fs::path segment = fs::path(dir) / WalSegmentName(0);
  const uint64_t full = fs::file_size(segment);
  const WalReadResult oracle = ReadWal(dir);
  ASSERT_EQ(oracle.evidence.NumRounds(), 6u);

  const std::string cut_dir = TestDir("prefix_cut");
  for (uint64_t cut = 0; cut <= full; ++cut) {
    fs::remove_all(cut_dir);
    fs::create_directories(cut_dir);
    fs::copy_file(segment, fs::path(cut_dir) / WalSegmentName(0));
    fs::resize_file(fs::path(cut_dir) / WalSegmentName(0), cut);

    const WalReadResult read = ReadWal(cut_dir);
    ASSERT_TRUE(read.error.empty()) << "cut=" << cut << ": " << read.error;
    // The committed prefix is exactly the oracle's first NumRounds() rounds.
    ASSERT_LE(read.evidence.NumRounds(), 6u) << "cut=" << cut;
    for (size_t r = 0; r < read.evidence.NumRounds(); ++r) {
      EXPECT_EQ(read.evidence.Round(r).queries_after,
                oracle.evidence.Round(r).queries_after)
          << "cut=" << cut;
    }
    if (cut < full) {
      // Everything validly read plus the torn remainder accounts for every
      // byte of the prefix (header bytes only exist once the header fits).
      const uint64_t usable =
          read.segments.empty() ? 0 : read.segments[0].valid_bytes;
      EXPECT_EQ(usable + read.torn_bytes, read.segments.empty() ? 0 : cut)
          << "cut=" << cut;
    } else {
      EXPECT_EQ(read.torn_bytes, 0u);
    }
  }
}

TEST(WalRecovery, CorruptMidFileLatchesEverythingAfterAsTorn) {
  const std::string dir = TestDir("midflip");
  {
    WalWriter writer(dir, {}, 0);
    WriteRounds(&writer, 6);
    writer.Close();
  }
  const fs::path segment = fs::path(dir) / WalSegmentName(0);
  // Flip one byte a third of the way into the records.
  const uint64_t size = fs::file_size(segment);
  const uint64_t victim = kWalHeaderBytes + (size - kWalHeaderBytes) / 3;
  {
    std::fstream f(segment, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(victim));
    char c = 0;
    f.read(&c, 1);
    c ^= 0x20;
    f.seekp(static_cast<std::streamoff>(victim));
    f.write(&c, 1);
  }
  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  EXPECT_LT(read.evidence.NumRounds(), 6u);
  EXPECT_GT(read.torn_bytes, 0u);
  const uint64_t usable = read.segments[0].valid_bytes;
  EXPECT_EQ(usable + read.torn_bytes, size);
}

TEST(WalRecovery, TruncateWalCutsToExactRoundBoundary) {
  const std::string dir = TestDir("truncate");
  {
    WalWriter writer(dir, {.segment_bytes = 256}, 0);
    WriteRounds(&writer, 24);
    writer.Close();
  }
  std::string error;
  ASSERT_TRUE(TruncateWal(dir, 10, &error)) << error;
  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  EXPECT_EQ(read.evidence.NumRounds(), 10u);
  EXPECT_EQ(read.torn_bytes, 0u);
  for (uint64_t r = 0; r < 10; ++r) {
    EXPECT_EQ(read.evidence.Round(r).queries_after, 10 * (r + 1));
  }
  // A writer reopened after truncation appends round 10 cleanly.
  {
    WalWriter writer(dir, {}, 10);
    WriteRounds(&writer, 1, /*first=*/10);
    writer.Close();
    ASSERT_TRUE(writer.ok()) << writer.error();
  }
  EXPECT_EQ(ReadWal(dir).evidence.NumRounds(), 11u);

  // Truncating past the committed count is an error, not silent data loss.
  EXPECT_FALSE(TruncateWal(dir, 99, &error));
  EXPECT_FALSE(error.empty());

  // Truncating to zero rounds leaves a recoverable empty log.
  ASSERT_TRUE(TruncateWal(dir, 0, &error)) << error;
  EXPECT_EQ(ReadWal(dir).evidence.NumRounds(), 0u);
}

// --- Failure injection ------------------------------------------------------

TEST(WalFailpoints, DropAfterBytesLeavesATornTailRecoveryTruncates) {
  const std::string dir = TestDir("dropbytes");
  WalWriterOptions options;
  options.failpoint.drop_after_bytes = 300;
  {
    WalWriter writer(dir, options, 0);
    WriteRounds(&writer, 10);
    // No Close: the crash this failpoint models never gets one. The fd is
    // closed by the destructor without another checkpointable sync.
  }
  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  EXPECT_LT(read.evidence.NumRounds(), 10u);
  EXPECT_GT(read.torn_bytes, 0u);
  const uint64_t committed = read.evidence.NumRounds();

  std::string error;
  ASSERT_TRUE(TruncateWal(dir, committed, &error)) << error;
  const WalReadResult clean = ReadWal(dir);
  EXPECT_EQ(clean.evidence.NumRounds(), committed);
  EXPECT_EQ(clean.torn_bytes, 0u);
}

TEST(WalFailpoints, FsyncFailureDropsUnsyncedBytesAndLatchesTheWriter) {
  const std::string dir = TestDir("failfsync");
  WalWriterOptions options;
  options.failpoint.fail_fsync_at = 3;  // two rounds commit, the third dies
  WalWriter writer(dir, options, 0);
  WriteRounds(&writer, 6);
  EXPECT_FALSE(writer.ok());
  EXPECT_NE(writer.error().find("fsync"), std::string::npos) << writer.error();
  writer.Close();  // no-op after the latch

  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  // Exactly the rounds covered by the two successful fsyncs survive.
  EXPECT_EQ(read.evidence.NumRounds(), 2u);
  EXPECT_EQ(read.torn_bytes, 0u);
}

// --- Checkpoint files -------------------------------------------------------

CheckpointData MakeCheckpoint(uint64_t round) {
  CheckpointData data;
  data.round = round;
  data.observations = 3 * round;
  data.queries_used = 17 * round + 1;
  data.memo_hash = 0;
  data.resolver_name = "lr";
  data.resolver_state = std::string("rng\x00state", 9);
  data.aggregates.push_back({"COUNT(*)", 0xabcdef1234567890ull, 41.5});
  data.aggregates.push_back({"SUM(rating)", 0x1111222233334444ull, -0.125});
  return data;
}

TEST(Checkpoint, EncodeDecodeRoundTripsAndRejectsDamage) {
  const CheckpointData in = MakeCheckpoint(12);
  const std::string bytes = EncodeCheckpoint(in);

  CheckpointData out;
  ASSERT_TRUE(DecodeCheckpoint(bytes, &out));
  EXPECT_EQ(out.round, in.round);
  EXPECT_EQ(out.observations, in.observations);
  EXPECT_EQ(out.queries_used, in.queries_used);
  EXPECT_EQ(out.resolver_name, in.resolver_name);
  EXPECT_EQ(out.resolver_state, in.resolver_state);
  ASSERT_EQ(out.aggregates.size(), 2u);
  EXPECT_EQ(out.aggregates[0].name, "COUNT(*)");
  EXPECT_EQ(out.aggregates[0].trace_hash, 0xabcdef1234567890ull);
  EXPECT_TRUE(SameBits(out.aggregates[1].estimate, -0.125));

  EXPECT_FALSE(DecodeCheckpoint(bytes.substr(0, bytes.size() - 1), &out));
  EXPECT_FALSE(DecodeCheckpoint(bytes + "x", &out));  // trailing garbage
  std::string bad = bytes;
  bad[bytes.size() / 2] ^= 0x01;
  EXPECT_FALSE(DecodeCheckpoint(bad, &out));
}

TEST(Checkpoint, ScanOrdersByRoundAndFlagsCorruptFiles) {
  const std::string dir = TestDir("ckptscan");
  fs::create_directories(dir);
  std::string error;
  ASSERT_TRUE(WriteCheckpointFile(dir, MakeCheckpoint(64), &error)) << error;
  ASSERT_TRUE(WriteCheckpointFile(dir, MakeCheckpoint(0), &error)) << error;
  ASSERT_TRUE(WriteCheckpointFile(dir, MakeCheckpoint(128), &error)) << error;
  {
    std::ofstream bad(fs::path(dir) / CheckpointName(32), std::ios::binary);
    bad << "LBSCKPT1 this is not a checkpoint";
  }

  const std::vector<CheckpointScanEntry> scan = ScanCheckpoints(dir);
  ASSERT_EQ(scan.size(), 4u);
  EXPECT_EQ(scan[0].round, 0u);
  EXPECT_TRUE(scan[0].valid);
  EXPECT_EQ(scan[1].round, 32u);
  EXPECT_FALSE(scan[1].valid);
  EXPECT_EQ(scan[2].round, 64u);
  EXPECT_TRUE(scan[2].valid);
  EXPECT_EQ(scan[3].round, 128u);
  EXPECT_TRUE(scan[3].valid);
  EXPECT_EQ(scan[2].data.queries_used, 17u * 64 + 1);
}

TEST(Checkpoint, TraceFingerprintMatchesTheRegressionMixer) {
  std::vector<TracePoint> trace = {{10, 1.5}, {20, 2.5}};
  uint64_t expect = MixHash(0, trace.size());
  for (const TracePoint& tp : trace) {
    uint64_t bits;
    std::memcpy(&bits, &tp.estimate, sizeof bits);
    expect = MixHash(expect, tp.queries);
    expect = MixHash(expect, bits);
  }
  EXPECT_EQ(TraceFingerprint(trace), expect);
  EXPECT_NE(TraceFingerprint(trace), TraceFingerprint({{10, 1.5}}));
}

// --- Store ↔ WAL parity -----------------------------------------------------

// Forwards the evidence protocol into a WalWriter — the storage half of
// DurableEvidenceLog, without needing an engine/client stack.
class WriterSink : public EvidenceSink {
 public:
  explicit WriterSink(WalWriter* writer) : writer_(writer) {}
  void OnBeginRound(uint64_t round, const Vec2& sample_point) override {
    writer_->AppendBeginRound(round, sample_point);
  }
  void OnAppend(uint64_t round, const Observation& observation) override {
    (void)round;
    writer_->AppendObservation(observation);
  }
  void OnEndRound(const EvidenceRound& round) override {
    writer_->AppendEndRound(round);
  }

 private:
  WalWriter* writer_;
};

TEST(WalStoreParity, StoreThroughWalBackToStoreIsLossless) {
  const std::string dir = TestDir("parity");
  EvidenceStore original;
  {
    WalWriter writer(dir, {}, 0);
    WriterSink sink(&writer);
    original.set_sink(&sink);

    // Round 0: two observations. Round 1: EMPTY (BeginRound straight to
    // EndRound — a sample point that resolved no tuples). Round 2: one.
    original.BeginRound({0.5, 0.25});
    original.Append(MakeObs(1, 3.5));
    original.Append(MakeObs(2, 4.5));
    original.EndRound(9);
    original.BeginRound({-1.0, 2.0});
    original.EndRound(13);
    original.BeginRound({7.0, -3.0});
    original.Append(MakeObs(3, 5.5));
    original.EndRound(21);

    original.set_sink(nullptr);
    writer.Close();
    ASSERT_TRUE(writer.ok()) << writer.error();
  }

  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  EvidenceStore replayed;
  replayed.RestoreFrom(read.evidence);

  ASSERT_EQ(replayed.num_rounds(), original.num_rounds());
  ASSERT_EQ(replayed.num_observations(), original.num_observations());
  for (size_t r = 0; r < original.num_rounds(); ++r) {
    const EvidenceRound& a = original.round(r);
    const EvidenceRound& b = replayed.round(r);
    EXPECT_EQ(a.round, b.round);
    EXPECT_TRUE(SameBits(a.sample_point.x, b.sample_point.x));
    EXPECT_TRUE(SameBits(a.sample_point.y, b.sample_point.y));
    EXPECT_EQ(a.queries_after, b.queries_after);
    EXPECT_EQ(a.first_observation, b.first_observation);
    ASSERT_EQ(a.num_observations, b.num_observations);
    for (size_t i = 0; i < a.num_observations; ++i) {
      ExpectSameObservation(original.observations(a)[i],
                            replayed.observations(b)[i]);
    }
  }
  // The JSON view agrees too — the framing audit at the serialization edge.
  EXPECT_EQ(replayed.ToJson(), original.ToJson());
  EXPECT_EQ(original.ToJson(),
            "{\"rounds\":3,\"observations\":3,\"queries\":21}");
}

// The satellite regression pair: zero-round stores and empty rounds
// serialize losslessly and identically through both representations.
TEST(WalStoreParity, ZeroRoundAndEmptyRoundFramingIsPreserved) {
  EvidenceStore empty;
  EXPECT_EQ(empty.ToJson(),
            "{\"rounds\":0,\"observations\":0,\"queries\":0}");

  const std::string dir = TestDir("emptyrounds");
  EvidenceStore original;
  {
    WalWriter writer(dir, {}, 0);
    WriterSink sink(&writer);
    original.set_sink(&sink);
    // Nothing but empty rounds: rounds advance, observations stay 0.
    original.BeginRound({1.0, 1.0});
    original.EndRound(4);
    original.BeginRound({2.0, 2.0});
    original.EndRound(8);
    original.set_sink(nullptr);
    writer.Close();
  }
  EXPECT_EQ(original.ToJson(),
            "{\"rounds\":2,\"observations\":0,\"queries\":8}");

  const WalReadResult read = ReadWal(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  ASSERT_EQ(read.evidence.NumRounds(), 2u);
  EXPECT_EQ(read.evidence.Round(0).num_observations, 0u);
  EXPECT_EQ(read.evidence.Observations(read.evidence.Round(0)), nullptr);

  EvidenceStore replayed;
  replayed.RestoreFrom(read.evidence);
  EXPECT_EQ(replayed.ToJson(), original.ToJson());
  EXPECT_EQ(replayed.round(1).queries_after, 8u);
}

}  // namespace
}  // namespace engine
}  // namespace lbsagg
