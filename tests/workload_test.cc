#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "workload/attribute_models.h"
#include "workload/census.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

TEST(Generators, UniformPointsCoverTheBox) {
  const Box box({0, 0}, {10, 10});
  Rng rng(1);
  const auto pts = GenerateUniform(4000, box, rng);
  ASSERT_EQ(pts.size(), 4000u);
  int quadrant[4] = {0, 0, 0, 0};
  for (const Vec2& p : pts) {
    EXPECT_TRUE(box.Contains(p));
    quadrant[(p.x > 5) + 2 * (p.y > 5)]++;
  }
  for (int q : quadrant) EXPECT_NEAR(q, 1000, 150);
}

TEST(Generators, ClusteredPointsConcentrateAroundCenters) {
  const Box box({0, 0}, {100, 100});
  Rng rng(2);
  const std::vector<ClusterSpec> clusters = {{{25, 25}, 2.0, 1.0}};
  const auto pts = GenerateClustered(2000, box, clusters, 0.0, rng);
  int near = 0;
  for (const Vec2& p : pts) {
    if (Distance(p, {25, 25}) < 8.0) ++near;
  }
  EXPECT_GT(near, 1900);
}

TEST(Generators, RuralFractionProducesOutliers) {
  const Box box({0, 0}, {100, 100});
  Rng rng(3);
  const std::vector<ClusterSpec> clusters = {{{25, 25}, 1.0, 1.0}};
  const auto pts = GenerateClustered(2000, box, clusters, 0.3, rng);
  int far = 0;
  for (const Vec2& p : pts) {
    if (Distance(p, {25, 25}) > 20.0) ++far;
  }
  // ~30% rural, most of which is far from the single city.
  EXPECT_NEAR(static_cast<double>(far) / pts.size(), 0.28, 0.05);
}

TEST(Generators, ZipfClustersAreSkewed) {
  const Box box({0, 0}, {100, 100});
  Rng rng(4);
  const auto clusters = MakeZipfClusters(20, box, 1.0, 3.0, rng);
  ASSERT_EQ(clusters.size(), 20u);
  EXPECT_NEAR(clusters[0].weight / clusters[9].weight, 10.0, 1e-9);
  for (const ClusterSpec& c : clusters) EXPECT_TRUE(box.Contains(c.center));
}

TEST(Census, UniformGridPdfIntegratesToOne) {
  const Box box({0, 0}, {10, 20});
  const CensusGrid grid(box, 4, 8);
  EXPECT_NEAR(grid.TotalWeight(), box.Area(), 1e-9);
  EXPECT_NEAR(grid.Pdf({5, 5}) * box.Area(), 1.0, 1e-9);
}

TEST(Census, FromPointsTracksDensity) {
  const Box box({0, 0}, {100, 100});
  Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back({rng.Uniform(0, 30), rng.Uniform(0, 30)});  // corner blob
  }
  const CensusGrid grid = CensusGrid::FromPoints(box, 10, 10, pts, 0.1, rng);
  EXPECT_GT(grid.DensityAt({10, 10}), 5.0 * grid.DensityAt({90, 90}));
  // Densities stay strictly positive everywhere (§5.2 requirement).
  for (int ix = 0; ix < 10; ++ix) {
    for (int iy = 0; iy < 10; ++iy) {
      EXPECT_GT(grid.CellDensity(ix, iy), 0.0);
    }
  }
}

TEST(Census, SampleFollowsDensity) {
  const Box box({0, 0}, {100, 100});
  Rng rng(6);
  std::vector<Vec2> pts;
  for (int i = 0; i < 5000; ++i) {
    pts.push_back({rng.Uniform(0, 50), rng.Uniform(0, 100)});  // left half
  }
  const CensusGrid grid = CensusGrid::FromPoints(box, 10, 10, pts, 0.0, rng);
  int left = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (grid.Sample(rng).x < 50.0) ++left;
  }
  EXPECT_GT(static_cast<double>(left) / n, 0.75);
}

TEST(Census, CellBoxTiling) {
  const Box box({0, 0}, {30, 20});
  const CensusGrid grid(box, 3, 2);
  double total = 0.0;
  for (int ix = 0; ix < 3; ++ix) {
    for (int iy = 0; iy < 2; ++iy) total += grid.CellBox(ix, iy).Area();
  }
  EXPECT_NEAR(total, box.Area(), 1e-9);
  EXPECT_NEAR(grid.CellBox(2, 1).hi.x, 30.0, 1e-12);
  EXPECT_NEAR(grid.CellBox(2, 1).hi.y, 20.0, 1e-12);
}

TEST(AttributeModels, RatingsBounded) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double r = SampleRating(rng);
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 5.0);
  }
}

TEST(AttributeModels, EnrollmentHeavyTailed) {
  Rng rng(8);
  double max_seen = 0.0, sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double e = SampleEnrollment(rng);
    EXPECT_GE(e, 1.0);
    max_seen = std::max(max_seen, e);
    sum += e;
  }
  EXPECT_GT(max_seen, 5.0 * (sum / n));  // tail reaches well past the mean
}

TEST(AttributeModels, GenderFractionRespected) {
  Rng rng(9);
  int male = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (SampleGender(0.671, rng) == "M") ++male;
  }
  EXPECT_NEAR(static_cast<double>(male) / n, 0.671, 0.01);
}

TEST(Scenarios, UsaScenarioShapes) {
  UsaOptions opts;
  opts.num_pois = 2000;
  const UsaScenario usa = BuildUsaScenario(opts);
  EXPECT_EQ(usa.dataset->size(), 2000u);

  const double restaurants =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "restaurant"));
  const double schools =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "school"));
  EXPECT_NEAR(restaurants / 2000.0, 0.50, 0.05);
  EXPECT_NEAR(schools / 2000.0, 0.22, 0.05);

  const double starbucks =
      usa.dataset->GroundTruthCount(NameIs(usa.columns, "Starbucks"));
  EXPECT_GT(starbucks, 10);
  EXPECT_LT(starbucks, restaurants);

  // Schools have enrollments, restaurants do not.
  const int enr = usa.columns.enrollment;
  for (const Tuple& t : usa.dataset->tuples()) {
    const bool is_school =
        std::get<std::string>(t.values[usa.columns.category]) == "school";
    const double e = std::get<double>(t.values[enr]);
    if (is_school) {
      EXPECT_GE(e, 1.0);
    } else {
      EXPECT_EQ(e, 0.0);
    }
  }
}

TEST(Scenarios, UsaScenarioIsDeterministicPerSeed) {
  UsaOptions opts;
  opts.num_pois = 300;
  const UsaScenario a = BuildUsaScenario(opts);
  const UsaScenario b = BuildUsaScenario(opts);
  ASSERT_EQ(a.dataset->size(), b.dataset->size());
  for (size_t i = 0; i < a.dataset->size(); ++i) {
    EXPECT_EQ(a.dataset->tuple(i).pos, b.dataset->tuple(i).pos);
  }
}

TEST(Scenarios, ChinaScenarioGenderRatio) {
  ChinaOptions opts;
  opts.num_users = 5000;
  opts.male_fraction = 0.671;
  const ChinaScenario china = BuildChinaScenario(opts);
  const double male =
      china.dataset->GroundTruthCount(GenderIs(china.columns, "M"));
  EXPECT_NEAR(male / 5000.0, 0.671, 0.02);
}

TEST(Scenarios, GeneralPositionAfterJitter) {
  UsaOptions opts;
  opts.num_pois = 1000;
  const UsaScenario usa = BuildUsaScenario(opts);
  // The dataset was jittered: no exact duplicates remain (clusters make raw
  // collisions plausible otherwise).
  const auto pts = usa.dataset->Positions();
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < std::min(pts.size(), i + 50); ++j) {
      EXPECT_FALSE(pts[i] == pts[j]);
    }
  }
}

}  // namespace
}  // namespace lbsagg
