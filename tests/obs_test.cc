// Behavior of the observability plane (DESIGN.md §4.8): registry
// create-or-get semantics, the snapshot-then-reset accounting-period
// contract under concurrent increments (run under TSAN by tools/check.sh),
// the client's atomic stats drain with batches in flight on a dispatcher,
// the tracer's Chrome trace_event serialization, and RunReport assembly.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "transport/async_dispatcher.h"
#include "transport/metrics.h"
#include "transport/simulated_transport.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lbsagg {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------------------
// MetricsRegistry cells

TEST(MetricsRegistry, CreateOrGetReturnsStableCells) {
  MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("layer.component.metric");
  obs::Counter* b = registry.GetCounter("layer.component.metric");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_NE(registry.GetCounter("layer.component.other"), a);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("h", {1.0, 10.0, 100.0});
  // A second registration with different bounds returns the existing cell
  // unchanged: bounds are part of the cell's identity.
  obs::Histogram* again = registry.GetHistogram("h", {5.0});
  EXPECT_EQ(h, again);
  EXPECT_EQ(again->bounds().size(), 3u);

  h->Observe(0.5);    // bucket 0 (<= 1)
  h->Observe(10.0);   // bucket 1 (<= 10, inclusive upper bound)
  h->Observe(1e6);    // overflow bucket
  const std::vector<uint64_t> buckets = h->BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 10.0 + 1e6);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndComparable) {
  MetricsRegistry registry;
  registry.GetCounter("b.second")->Add(2);
  registry.GetCounter("a.first")->Add(1);
  registry.GetGauge("g.level")->Set(3.5);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "b.second");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.5);

  // Snapshot() copies; the cells keep counting and two identical states
  // compare equal.
  EXPECT_EQ(snap, registry.Snapshot());
  registry.GetCounter("a.first")->Add(1);
  EXPECT_NE(snap, registry.Snapshot());
}

TEST(MetricsRegistry, RefsThroughNullRegistryLandOnDefault) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "instrumentation compiled out";
  const std::string name = "obs_test.unique.default_counter";
  const obs::CounterRef ref = obs::GetCounter(nullptr, name);
  const uint64_t before = MetricsRegistry::Default().GetCounter(name)->Value();
  ref.Add(5);
  EXPECT_EQ(MetricsRegistry::Default().GetCounter(name)->Value(), before + 5);
}

// The accounting-period contract: concurrent increments race a
// snapshot-then-reset loop, and every increment lands in exactly one
// period. This is the TSAN regression test for the metric plane.
TEST(MetricsRegistry, SnapshotAndResetPreservesTotalsUnderConcurrency) {
  MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("contended.counter");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;

  std::atomic<bool> done{false};
  uint64_t drained = 0;
  std::thread reaper([&] {
    while (!done.load(std::memory_order_acquire)) {
      drained += registry.SnapshotAndReset().counters[0].value;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Add(1);
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reaper.join();

  drained += registry.SnapshotAndReset().counters[0].value;
  EXPECT_EQ(drained, kThreads * kPerThread);
  EXPECT_EQ(counter->Value(), 0u);
}

// ---------------------------------------------------------------------------
// Client stats drain under a dispatcher

Dataset MakeDataset(int n, uint64_t seed) {
  const Box box({0, 0}, {100, 100});
  Schema schema;
  schema.AddColumn("score", AttrType::kDouble);
  Dataset d(box, schema);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    d.Add(box.SamplePoint(rng), {rng.Uniform(1.0, 5.0)});
  }
  return d;
}

// SnapshotAndResetStats races QueryBatch() calls running on dispatcher
// workers; the drained periods plus the live remainder must add up to the
// exact total charged. Run under TSAN by tools/check.sh.
TEST(ClientStats, SnapshotAndResetAtomicUnderDispatcher) {
  const Dataset dataset = MakeDataset(300, 1);
  const LbsServer server(&dataset, {.max_k = 5});
  SimulatedTransport transport(&server, {.seed = 99});
  AsyncDispatcher dispatcher(&transport, {.num_workers = 4});
  LrClient client(&server, {.k = 3}, &transport, &dispatcher);

  constexpr int kBatches = 40;
  constexpr int kBatchSize = 16;
  std::atomic<bool> done{false};
  ClientStats drained;
  std::thread reaper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const ClientStats period = client.SnapshotAndResetStats();
      drained.queries += period.queries;
      drained.memo_hits += period.memo_hits;
    }
  });

  Rng rng(7);
  const Box box({0, 0}, {100, 100});
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Vec2> batch;
    for (int i = 0; i < kBatchSize; ++i) batch.push_back(box.SamplePoint(rng));
    (void)client.QueryBatch(batch);
  }
  done.store(true, std::memory_order_release);
  reaper.join();

  const ClientStats rest = client.SnapshotAndResetStats();
  const uint64_t total = drained.queries + rest.queries;
  // Every batch slot charges at least one attempt; retries may add more.
  EXPECT_GE(total, static_cast<uint64_t>(kBatches * kBatchSize));
  EXPECT_EQ(total, transport.Metrics().attempts);
  EXPECT_EQ(client.queries_used(), 0u);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, ScopedSpansSerializeToChromeTraceJson) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "instrumentation compiled out";
  obs::Tracer tracer;
  {
    obs::ScopedSpan outer(&tracer, "estimator.round", "estimator");
    obs::ScopedSpan inner(&tracer, "client.query", "client");
  }
  tracer.AddComplete("transport.attempt", "transport", /*ts_us=*/1000.0,
                     /*dur_us=*/250.0);
  EXPECT_EQ(tracer.event_count(), 3u);

  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"estimator.round\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"transport.attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250"), std::string::npos);
}

TEST(Tracer, NullTracerSpansAreNoOps) {
  // Must not crash or allocate; the hot paths run this on every round.
  for (int i = 0; i < 100; ++i) {
    obs::ScopedSpan span(nullptr, "estimator.round");
  }
}

TEST(Tracer, VirtualClockDrivesTimestamps) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "instrumentation compiled out";
  double now_us = 500.0;
  obs::FunctionTraceClock clock([&now_us] { return now_us; });
  obs::Tracer tracer(&clock);
  {
    obs::ScopedSpan span(&tracer, "estimator.round", "estimator");
    now_us = 900.0;
  }
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"ts\":500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":400"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RunReport

TEST(RunReport, MergesMetaStatsSnapshotAndSections) {
  MetricsRegistry registry;
  registry.GetCounter("client.queries")->Add(42);
  registry.GetGauge("transport.latency_mean_ms")->Set(80.5);

  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0}) stats.Add(v);

  obs::RunReport report;
  report.SetMeta("estimator", "lr");
  report.SetMetaNum("budget", 4000);
  report.AddStats("running_estimate", stats);
  report.SetSnapshot(registry.Snapshot());
  report.AddJsonSection("transport", "{\"requests\": 7}");

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"estimator\": \"lr\""), std::string::npos);
  EXPECT_NE(json.find("\"budget\": 4000"), std::string::npos);
  EXPECT_NE(json.find("\"running_estimate\""), std::string::npos);
  EXPECT_NE(json.find("\"client.queries\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"requests\": 7"), std::string::npos);

  EXPECT_EQ(report.snapshot().counters.size(), 1u);
  EXPECT_FALSE(report.ToTable().ToString().empty());
}

// Meta strings route through JsonWriter::AppendEscaped, so a value carrying
// quotes, backslashes, or newlines stays parseable instead of corrupting
// the report.
TEST(RunReport, EscapesMetaStringsAndKeys) {
  obs::RunReport report;
  report.SetMeta("dataset", "usa \"6k\"\npath\\to\\file");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"usa \\\"6k\\\"\\npath\\\\to\\\\file\""),
            std::string::npos);
  // The raw forms must not appear: embedded newlines or bare quotes would
  // break any consumer that actually parses the report.
  EXPECT_EQ(json.find("\"6k\"\n"), std::string::npos);
}

// PublishTransportMetrics bridges the transport's own struct onto the
// metric plane: counts as counters, levels as gauges.
TEST(RunReport, TransportMetricsBridgeOntoRegistry) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "instrumentation compiled out";
  TransportMetrics metrics;
  metrics.requests = 10;
  metrics.attempts = 13;
  metrics.retries = 3;

  MetricsRegistry registry;
  PublishTransportMetrics(metrics, &registry);
  EXPECT_EQ(registry.GetCounter("transport.requests")->Value(), 10u);
  EXPECT_EQ(registry.GetCounter("transport.attempts")->Value(), 13u);
  EXPECT_EQ(registry.GetCounter("transport.retries")->Value(), 3u);
}

}  // namespace
}  // namespace lbsagg
