// §5.4 extension: 3-D geometry substrate and the 3-D LR estimator.

#include <vector>

#include <gtest/gtest.h>

#include "core/lr3_agg.h"
#include "geometry3d/polytope3.h"
#include "lbs3/lbs3.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lbsagg {
namespace {

const Box3 kBox({0, 0, 0}, {100, 100, 100});

TEST(Polytope3, BoxHasEightVertices) {
  const auto vertices = EnumeratePolytopeVertices(BoxHalfspaces(kBox));
  EXPECT_EQ(vertices.size(), 8u);
  for (const Vec3& v : vertices) EXPECT_TRUE(kBox.Contains(v));
}

TEST(Polytope3, CornerTetrahedron) {
  // x + y + z <= 30 keeps only the tetrahedron at the origin corner.
  std::vector<Halfspace3> planes = BoxHalfspaces(kBox);
  planes.push_back({{1, 1, 1}, 30.0});
  const auto tetra = EnumeratePolytopeVertices(planes);
  EXPECT_EQ(tetra.size(), 4u);
}

TEST(Polytope3, CornerCutProducesTriangle) {
  // x + y + z >= 30 removes the origin corner and adds a triangular face:
  // 8 - 1 + 3 = 10 vertices.
  std::vector<Halfspace3> planes = BoxHalfspaces(kBox);
  planes.push_back({{-1, -1, -1}, -30.0});
  const auto vertices = EnumeratePolytopeVertices(planes);
  EXPECT_EQ(vertices.size(), 10u);
}

TEST(Polytope3, EmptyPolytopeHasNoVertices) {
  std::vector<Halfspace3> planes = BoxHalfspaces(kBox);
  planes.push_back({{1, 0, 0}, -1.0});  // x <= -1: contradicts x >= 0
  EXPECT_TRUE(EnumeratePolytopeVertices(planes).empty());
}

TEST(Polytope3, BisectorPlaneSeparates) {
  const Vec3 a{10, 10, 10}, b{50, 70, 30};
  const Halfspace3 h = Halfspace3::Closer(a, b);
  EXPECT_TRUE(h.Contains(a));
  EXPECT_FALSE(h.Contains(b));
  EXPECT_NEAR(h.Side(Midpoint(a, b)), 0.0, 1e-9);
}

TEST(Polytope3, ContainsMatchesHalfspaceTests) {
  Rng rng(1);
  std::vector<Halfspace3> planes = BoxHalfspaces(kBox);
  const Vec3 focal{50, 50, 50};
  for (int i = 0; i < 12; ++i) {
    planes.push_back(Halfspace3::Closer(focal, kBox.SamplePoint(rng)));
  }
  const auto vertices = EnumeratePolytopeVertices(planes);
  ASSERT_FALSE(vertices.empty());
  // Every enumerated vertex satisfies all halfspaces; the focal point is
  // strictly inside.
  for (const Vec3& v : vertices) {
    EXPECT_TRUE(PolytopeContains(planes, v, 1e-6));
  }
  EXPECT_TRUE(PolytopeContains(planes, focal));
}

TEST(Polytope3, VertexEnumerationMatchesMonteCarloVolume) {
  // The polytope described by the planes must enclose exactly the region
  // the membership test accepts: compare a vertex-bbox MC volume against a
  // whole-box MC volume.
  Rng rng(3);
  std::vector<Halfspace3> planes = BoxHalfspaces(kBox);
  const Vec3 focal{40, 60, 50};
  for (int i = 0; i < 8; ++i) {
    planes.push_back(Halfspace3::Closer(focal, kBox.SamplePoint(rng)));
  }
  const auto vertices = EnumeratePolytopeVertices(planes);
  ASSERT_GE(vertices.size(), 4u);
  const Box3 bbox = BoundingBox3(vertices);
  int inside_bbox = 0, inside_box = 0;
  const int n = 200000;
  Rng r2(5);
  for (int i = 0; i < n; ++i) {
    if (PolytopeContains(planes, bbox.SamplePoint(r2))) ++inside_bbox;
    if (PolytopeContains(planes, kBox.SamplePoint(r2))) ++inside_box;
  }
  const double vol_from_bbox = bbox.Volume() * inside_bbox / n;
  const double vol_from_box = kBox.Volume() * inside_box / n;
  EXPECT_NEAR(vol_from_bbox, vol_from_box, 0.05 * vol_from_box);
}

Dataset3 RandomDataset3(int n, uint64_t seed) {
  Dataset3 d(kBox);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) d.Add(kBox.SamplePoint(rng));
  return d;
}

TEST(Lr3Client, ReturnsNearestSorted) {
  const Dataset3 d = RandomDataset3(200, 7);
  Lr3Client client(&d, 5);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 q = kBox.SamplePoint(rng);
    const auto items = client.Query(q);
    ASSERT_EQ(items.size(), 5u);
    for (size_t i = 1; i < items.size(); ++i) {
      EXPECT_LE(items[i - 1].distance, items[i].distance);
    }
    for (size_t j = 0; j < d.size(); ++j) {
      EXPECT_LE(items[0].distance,
                Distance(q, d.position(static_cast<int>(j))) + 1e-12);
    }
  }
  EXPECT_EQ(client.queries_used(), 20u);
}

TEST(Lr3Agg, InverseProbabilityIsUnbiased) {
  // E[InverseProbability(t)] = vol(B)/vol(cell) for a known configuration.
  Dataset3 d(kBox);
  d.Add({25, 50, 50});
  d.Add({75, 50, 50});  // bisector x = 50: each cell is half the box
  Lr3Client client(&d, 2);
  Lr3AggEstimator est(&client);
  RunningStats stats;
  for (int i = 0; i < 200; ++i) {
    stats.Add(est.InverseProbability(0, {25, 50, 50}));
  }
  EXPECT_NEAR(stats.mean(), 2.0, 0.2);  // 1/p = 2
}

TEST(Lr3Agg, CountConvergesInThreeDimensions) {
  const Dataset3 d = RandomDataset3(60, 13);
  Lr3Client client(&d, 3);
  Lr3AggEstimator est(&client);
  for (int i = 0; i < 150; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), 60.0, 0.25 * 60.0);
}

TEST(Lr3Agg, UnbiasedAcrossSeeds) {
  const Dataset3 d = RandomDataset3(40, 17);
  RunningStats means;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Lr3Client client(&d, 3);
    Lr3AggOptions opts;
    opts.seed = seed;
    Lr3AggEstimator est(&client, opts);
    for (int i = 0; i < 60; ++i) est.Step();
    means.Add(est.Estimate());
  }
  EXPECT_NEAR(means.mean(), 40.0, 3.0 * means.StandardError() + 2.0);
}

TEST(Lr3Agg, SumAggregateOverValues) {
  Dataset3 d(kBox);
  Rng rng(19);
  double truth = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double value = rng.Uniform(1.0, 3.0);
    d.Add(kBox.SamplePoint(rng), value);
    truth += value;
  }
  Lr3Client client(&d, 3);
  Lr3AggEstimator est(&client);
  for (int i = 0; i < 150; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), truth, 0.25 * truth);
}

}  // namespace
}  // namespace lbsagg
