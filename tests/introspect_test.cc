// Tests of the live introspection plane (DESIGN.md §4.13): flight-recorder
// publish/drain (including TSAN-raced against concurrent producers and the
// service scheduler), time-series sampler window arithmetic on a virtual
// clock, statusz / Prometheus rendering, tracer open-span lifecycle (the
// Cancel / deadline / teardown truncation regression), the SLO watchdog's
// typed verdicts, and the determinism contract: estimates and the legacy
// fig12 trace fingerprint stay bit-identical with the whole plane attached.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/lr_agg.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/server.h"
#include "obs/introspect/flight_recorder.h"
#include "obs/introspect/prometheus.h"
#include "obs/introspect/sampler.h"
#include "obs/introspect/statusz.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/introspect.h"
#include "service/service.h"
#include "service/watchdog.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace service {
namespace {

using obs::introspect::FlightRecord;
using obs::introspect::FlightRecorder;
using obs::introspect::QuantileFromBuckets;
using obs::introspect::TimeSeriesSampler;

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

const UsaScenario& SmallUsa() {
  static const UsaScenario usa = BuildUsaScenario({.num_pois = 1200});
  return usa;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// --- Flight recorder --------------------------------------------------------

FlightRecord MakeRecord(uint64_t a) {
  FlightRecord r;
  r.kind = FlightRecord::Kind::kEvent;
  r.SetName("test.event");
  r.a = a;
  return r;
}

TEST(FlightRecorder, PublishThenDrainRoundTrips) {
  FlightRecorder recorder(8);
  EXPECT_EQ(recorder.capacity(), 8u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(recorder.TryPublish(MakeRecord(i)));
  }
  EXPECT_EQ(recorder.published(), 5u);
  EXPECT_EQ(recorder.dropped(), 0u);

  std::vector<FlightRecord> out;
  EXPECT_EQ(recorder.Drain(&out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].a, i);  // ring order: oldest first
    EXPECT_STREQ(out[i].name, "test.event");
  }
  EXPECT_EQ(recorder.drained(), 5u);
  // Empty now.
  EXPECT_EQ(recorder.Drain(&out), 0u);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 8u);  // minimum
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(64).capacity(), 64u);
}

TEST(FlightRecorder, FullRingDropsNewestAndCounts) {
  FlightRecorder recorder(8);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(recorder.TryPublish(MakeRecord(i)));
  }
  // Ring full: the next publishes drop (never block, never overwrite).
  EXPECT_FALSE(recorder.TryPublish(MakeRecord(100)));
  EXPECT_FALSE(recorder.TryPublish(MakeRecord(101)));
  EXPECT_EQ(recorder.published(), 8u);
  EXPECT_EQ(recorder.dropped(), 2u);

  std::vector<FlightRecord> out;
  EXPECT_EQ(recorder.Drain(&out), 8u);
  EXPECT_EQ(out.front().a, 0u);  // the oldest survived, the newest dropped
  EXPECT_EQ(out.back().a, 7u);

  // Drained slots are reusable.
  EXPECT_TRUE(recorder.TryPublish(MakeRecord(200)));
  const std::string stats = recorder.StatsJson();
  EXPECT_NE(stats.find("\"capacity\":8"), std::string::npos);
  EXPECT_NE(stats.find("\"dropped\":2"), std::string::npos);
}

TEST(FlightRecorder, NameTruncatesSafely) {
  FlightRecord r;
  r.SetName("a.very.long.span.name.that.exceeds.the.fixed.record.capacity");
  EXPECT_EQ(std::strlen(r.name), FlightRecord::kNameCapacity - 1);
  const std::string json = FlightRecordJson(r);
  EXPECT_NE(json.find("\"kind\":\"span\""), std::string::npos);
}

TEST(FlightRecorder, ConcurrentPublishersAndDrainerAccountExactly) {
  FlightRecorder recorder(256);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> drained_total{0};
  std::thread drainer([&] {
    std::vector<FlightRecord> out;
    while (!stop.load(std::memory_order_acquire)) {
      out.clear();
      drained_total.fetch_add(recorder.Drain(&out),
                              std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&recorder, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        recorder.TryPublish(MakeRecord(static_cast<uint64_t>(p) * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  drainer.join();

  std::vector<FlightRecord> tail;
  drained_total.fetch_add(recorder.Drain(&tail), std::memory_order_relaxed);

  // Exact accounting once producers quiesce: every attempted publish either
  // landed (and was eventually drained) or was counted as a drop.
  EXPECT_EQ(recorder.published(), drained_total.load());
  EXPECT_EQ(recorder.published() + recorder.dropped(),
            kProducers * kPerProducer);
}

// --- Quantiles from fixed buckets -------------------------------------------

TEST(QuantileFromBuckets, EmptyWindowIsZero) {
  EXPECT_EQ(QuantileFromBuckets({1.0, 2.0}, {0, 0, 0}, 0.5), 0.0);
}

TEST(QuantileFromBuckets, InterpolatesInsideBucket) {
  // 10 observations all in (1, 2]: p50 = 1 + 0.5 * (2-1) = 1.5.
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<uint64_t> buckets = {0, 10, 0, 0};
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 1.0), 2.0);
}

TEST(QuantileFromBuckets, SpansBucketsCumulatively) {
  // 50 in (0,1], 50 in (1,2]: p25 = 0.5, p75 = 1.5.
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<uint64_t> buckets = {50, 50, 0};
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.75), 1.5);
}

TEST(QuantileFromBuckets, OverflowBucketClampsToLastBound) {
  // Everything past the last bound: no upper edge, clamp.
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<uint64_t> buckets = {0, 0, 7};
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets(bounds, buckets, 0.99), 2.0);
}

// --- Time-series sampler ----------------------------------------------------

TEST(TimeSeriesSampler, DiffsCountersIntoWindowsOnVirtualClock) {
  obs::MetricsRegistry registry;
  obs::Counter* queries = registry.GetCounter("client.queries");
  obs::Gauge* depth = registry.GetGauge("service.scheduler.queued");

  double clock = 0.0;
  TimeSeriesSampler sampler(
      {.registry = &registry, .clock_ms = [&clock] { return clock; },
       .period_ms = 10.0, .max_windows = 4});

  sampler.Tick();  // baseline at t=0, no window yet
  EXPECT_EQ(sampler.num_windows(), 0u);

  queries->Add(25);
  depth->Set(3.0);
  clock = 10.0;
  EXPECT_TRUE(sampler.MaybeTick());
  ASSERT_EQ(sampler.num_windows(), 1u);
  const auto& w = sampler.windows().back();
  EXPECT_DOUBLE_EQ(w.t0_ms, 0.0);
  EXPECT_DOUBLE_EQ(w.t1_ms, 10.0);
  ASSERT_EQ(w.counters.size(), 1u);
  EXPECT_EQ(w.counters[0].first, "client.queries");
  EXPECT_EQ(w.counters[0].second, 25u);  // the delta, not the total
  ASSERT_EQ(w.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(w.gauges[0].second, 3.0);

  // Second window sees only its own increments.
  queries->Add(5);
  clock = 20.0;
  EXPECT_TRUE(sampler.MaybeTick());
  EXPECT_EQ(sampler.windows().back().counters[0].second, 5u);

  // A quiet window drops the zero-delta counter entirely.
  clock = 30.0;
  EXPECT_TRUE(sampler.MaybeTick());
  EXPECT_TRUE(sampler.windows().back().counters.empty());
}

TEST(TimeSeriesSampler, MaybeTickHonorsPeriod) {
  obs::MetricsRegistry registry;
  double clock = 0.0;
  TimeSeriesSampler sampler(
      {.registry = &registry, .clock_ms = [&clock] { return clock; },
       .period_ms = 100.0});
  sampler.Tick();  // baseline
  clock = 50.0;
  EXPECT_FALSE(sampler.MaybeTick());  // period not elapsed
  clock = 99.9;
  EXPECT_FALSE(sampler.MaybeTick());
  clock = 100.0;
  EXPECT_TRUE(sampler.MaybeTick());
  EXPECT_EQ(sampler.windows_cut(), 1u);
}

TEST(TimeSeriesSampler, SlidingRingEvictsOldestWindows) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("x");
  double clock = 0.0;
  TimeSeriesSampler sampler(
      {.registry = &registry, .clock_ms = [&clock] { return clock; },
       .period_ms = 1.0, .max_windows = 3});
  sampler.Tick();
  for (int i = 0; i < 6; ++i) {
    c->Add(1);
    clock += 1.0;
    sampler.Tick();
  }
  EXPECT_EQ(sampler.num_windows(), 3u);   // ring capped
  EXPECT_EQ(sampler.windows_cut(), 6u);   // lifetime count keeps going
  EXPECT_DOUBLE_EQ(sampler.windows().front().t0_ms, 3.0);  // oldest evicted
}

TEST(TimeSeriesSampler, HistogramWindowsCarryPerWindowQuantiles) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("transport.latency", {1.0, 2.0, 4.0});
  double clock = 0.0;
  TimeSeriesSampler sampler(
      {.registry = &registry, .clock_ms = [&clock] { return clock; },
       .period_ms = 1.0});
  sampler.Tick();

  // First window: 10 observations in (1,2].
  for (int i = 0; i < 10; ++i) h->Observe(1.5);
  clock = 1.0;
  sampler.Tick();
  ASSERT_EQ(sampler.windows().back().histograms.size(), 1u);
  const auto& hw1 = sampler.windows().back().histograms[0].second;
  EXPECT_EQ(hw1.count, 10u);
  EXPECT_DOUBLE_EQ(hw1.p50, 1.5);

  // Second window: 10 observations in (2,4] — the per-window p50 moves even
  // though the cumulative histogram still remembers the first batch.
  for (int i = 0; i < 10; ++i) h->Observe(3.0);
  clock = 2.0;
  sampler.Tick();
  const auto& hw2 = sampler.windows().back().histograms[0].second;
  EXPECT_EQ(hw2.count, 10u);
  EXPECT_DOUBLE_EQ(hw2.p50, 3.0);

  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"transport.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// --- Prometheus export ------------------------------------------------------

TEST(Prometheus, SanitizesMetricNames) {
  using obs::introspect::PrometheusName;
  EXPECT_EQ(PrometheusName("client.queries"), "lbsagg_client_queries");
  EXPECT_EQ(PrometheusName("transport.shard03.attempts", "x"),
            "x_transport_shard03_attempts");
  EXPECT_EQ(PrometheusName("weird-name!", ""), "weird_name_");
}

TEST(Prometheus, ExportsCountersGaugesAndCumulativeHistograms) {
  obs::MetricsRegistry registry;
  registry.GetCounter("client.queries")->Add(42);
  registry.GetGauge("service.scheduler.active")->Set(7.0);
  obs::Histogram* h = registry.GetHistogram("lat", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(9.0);

  const std::string text =
      obs::introspect::ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE lbsagg_client_queries counter\n"
                      "lbsagg_client_queries 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lbsagg_service_scheduler_active gauge\n"
                      "lbsagg_service_scheduler_active 7\n"),
            std::string::npos);
  // Buckets are cumulative: le="2" includes the le="1" observation.
  EXPECT_NE(text.find("lbsagg_lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lbsagg_lat_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lbsagg_lat_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lbsagg_lat_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("lbsagg_lat_count 3\n"), std::string::npos);
}

// --- Statusz builder --------------------------------------------------------

TEST(Statusz, RendersMetaMetricsAndSections) {
  obs::introspect::Statusz status;
  status.SetMeta("mode", "test");
  status.SetMetaNum("active", 3);
  obs::MetricsRegistry registry;
  registry.GetCounter("c")->Add(1);
  status.SetSnapshot(registry.Snapshot());
  status.AddJsonSection("custom", "{\"x\":1}");

  const std::string json = status.ToJson();
  EXPECT_NE(json.find("\"statusz_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\"active\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"custom\": {\"x\":1}"), std::string::npos);

  const std::string text = status.ToText();
  EXPECT_NE(text.find("mode: test"), std::string::npos);
  EXPECT_NE(text.find("--- custom ---"), std::string::npos);
}

// --- Tracer open-span lifecycle ---------------------------------------------

TEST(TracerOpenSpans, CloseEmitsCompleteEvent) {
  obs::Tracer tracer;
  const uint64_t ticket = tracer.OpenSpan("work", "cat", 100.0);
  EXPECT_EQ(tracer.open_span_count(), 1u);
  EXPECT_EQ(tracer.event_count(), 0u);  // nothing emitted while open
  EXPECT_TRUE(tracer.CloseSpan(ticket, 250.0));
  EXPECT_EQ(tracer.open_span_count(), 0u);
  EXPECT_EQ(tracer.event_count(), 1u);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":150"), std::string::npos);
  // A ticket resolves exactly once.
  EXPECT_FALSE(tracer.CloseSpan(ticket, 300.0));
}

TEST(TracerOpenSpans, TruncatedCloseMarksCategory) {
  obs::Tracer tracer;
  const uint64_t ticket = tracer.OpenSpan("work", "cat", 0.0);
  EXPECT_TRUE(tracer.CloseSpanTruncated(ticket, 10.0));
  EXPECT_NE(tracer.ToChromeTraceJson().find("\"cat\":\"cat.truncated\""),
            std::string::npos);
}

TEST(TracerOpenSpans, DropEmitsNothing) {
  obs::Tracer tracer;
  const uint64_t ticket = tracer.OpenSpan("work", "cat", 0.0);
  EXPECT_TRUE(tracer.DropSpan(ticket));
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_FALSE(tracer.DropSpan(ticket));
}

TEST(TracerOpenSpans, FlushTruncatesEverythingOpen) {
  obs::Tracer tracer;
  tracer.OpenSpan("a", "cat", 0.0);
  tracer.OpenSpan("b", "cat", 5.0);
  EXPECT_EQ(tracer.FlushOpenSpans(20.0), 2u);
  EXPECT_EQ(tracer.open_span_count(), 0u);
  EXPECT_EQ(tracer.event_count(), 2u);
}

TEST(Tracer, MirrorsCompletedSpansIntoFlightRecorder) {
  FlightRecorder recorder(64);
  obs::Tracer tracer;
  tracer.SetFlightRecorder(&recorder);
  tracer.AddComplete("span.x", "cat", 10.0, 5.0);
  { obs::ScopedSpan span(&tracer, "span.y"); }
  EXPECT_EQ(recorder.published(), 2u);
  std::vector<FlightRecord> out;
  recorder.Drain(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_STREQ(out[0].name, "span.x");
  EXPECT_EQ(out[0].kind, FlightRecord::Kind::kSpan);
  EXPECT_DOUBLE_EQ(out[0].ts_us, 10.0);
  EXPECT_DOUBLE_EQ(out[0].dur_us, 5.0);
  EXPECT_STREQ(out[1].name, "span.y");
}

// --- Service span lifecycle regression --------------------------------------

TEST(ServiceSpans, CancelAndDeadlineEmitTruncatedSpans) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  obs::Tracer tracer;
  ServiceOptions sopts;
  sopts.tracer = &tracer;
  EstimationService svc({{.meta = &server}}, sopts);

  SessionSpec spec;
  spec.family = EstimatorFamily::kNno;
  spec.budget = 5000;
  spec.seed = 3;

  // Cancelled mid-run.
  const SessionId cancelled = svc.Submit(spec);
  svc.RunSlice();
  ASSERT_TRUE(svc.Cancel(cancelled));

  // Deadline exceeded while running.
  SessionSpec dspec = spec;
  dspec.deadline_ms = 2;  // fallback clock: one ms per slice
  const SessionId dead = svc.Submit(dspec);
  svc.RunUntilIdle();
  EXPECT_EQ(svc.Poll(dead).state, SessionState::kDeadlineExceeded);

  // Completed normally.
  SessionSpec cspec = spec;
  cspec.budget = 60;
  const SessionId done = svc.Submit(cspec);
  svc.RunUntilIdle();
  EXPECT_EQ(svc.Poll(done).state, SessionState::kCompleted);

  EXPECT_EQ(tracer.open_span_count(), 0u);  // nothing leaked open
  const std::string json = tracer.ToChromeTraceJson();
  // Cancel + deadline spans survive as truncated; the completed session's
  // span keeps the plain category. (The trace also carries client/estimator
  // spans — count categories, not totals.)
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"service.truncated\",\"ph\""),
            2u);
  EXPECT_EQ(CountOccurrences(json, "\"cat\":\"service\",\"ph\""), 1u);
}

TEST(ServiceSpans, RejectedSessionEmitsNoSpan) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  obs::Tracer tracer;
  ServiceOptions sopts;
  sopts.tracer = &tracer;
  EstimationService svc({{.meta = &server}}, sopts);

  SessionSpec bad;
  bad.budget = 0;  // invalid: rejected at Submit
  const SessionId id = svc.Submit(bad);
  EXPECT_EQ(svc.Poll(id).state, SessionState::kRejected);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

TEST(ServiceSpans, TeardownFlushesLiveSessionsAsTruncated) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  obs::Tracer tracer;
  {
    ServiceOptions sopts;
    sopts.tracer = &tracer;
    EstimationService svc({{.meta = &server}}, sopts);
    SessionSpec spec;
    spec.family = EstimatorFamily::kNno;
    spec.budget = 5000;
    spec.seed = 3;
    svc.Submit(spec);
    svc.RunSlice();  // running, far from done
    // The service dies with the session still live.
  }
  EXPECT_EQ(CountOccurrences(tracer.ToChromeTraceJson(),
                             "\"cat\":\"service.truncated\",\"ph\""),
            1u);
  EXPECT_EQ(tracer.open_span_count(), 0u);
}

// --- Service events into the flight recorder --------------------------------

TEST(ServiceRecorder, LifecycleEventsRecordedWithoutAnyTrigger) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  FlightRecorder recorder(1024);
  ServiceOptions sopts;
  sopts.recorder = &recorder;
  EstimationService svc({{.meta = &server}}, sopts);

  SessionSpec spec;
  spec.family = EstimatorFamily::kNno;
  spec.budget = 60;
  spec.seed = 3;
  const SessionId id = svc.Submit(spec);
  svc.RunUntilIdle();
  EXPECT_EQ(svc.Poll(id).state, SessionState::kCompleted);

  std::vector<FlightRecord> out;
  recorder.Drain(&out);
  ASSERT_GE(out.size(), 3u);
  EXPECT_STREQ(out.front().name, "submitted");
  EXPECT_EQ(out.front().a, id);
  bool saw_started = false, saw_progress = false, saw_finished = false;
  for (const FlightRecord& r : out) {
    EXPECT_EQ(r.kind, FlightRecord::Kind::kEvent);
    if (std::strcmp(r.name, "started") == 0) saw_started = true;
    if (std::strcmp(r.name, "progress") == 0) saw_progress = true;
    if (std::strcmp(r.name, "finished") == 0) saw_finished = true;
  }
  EXPECT_TRUE(saw_started);
  EXPECT_TRUE(saw_progress);
  EXPECT_TRUE(saw_finished);
}

// --- Convergence telemetry and statusz ---------------------------------------

TEST(Introspection, SessionsReportBudgetBurnDownAndTrajectory) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});

  SessionSpec spec;
  spec.family = EstimatorFamily::kLr;
  spec.budget = 400;
  spec.seed = 11;
  spec.deadline_ms = 1e6;
  const SessionId id = svc.Submit(spec);
  for (int i = 0; i < 8; ++i) svc.RunSlice();

  const std::vector<SessionIntrospection> rows = svc.IntrospectSessions();
  ASSERT_EQ(rows.size(), 1u);
  const SessionIntrospection& row = rows[0];
  EXPECT_EQ(row.id, id);
  EXPECT_EQ(row.state, SessionState::kRunning);
  EXPECT_EQ(row.budget, 400u);
  EXPECT_GT(row.queries_used, 0u);
  EXPECT_LT(row.queries_used, 400u);  // mid-flight
  EXPECT_TRUE(row.has_deadline);
  EXPECT_GT(row.deadline_slack_ms, 0.0);
  ASSERT_EQ(row.aggregates.size(), 1u);
  const AggregateIntrospection& agg = row.aggregates[0];
  EXPECT_EQ(agg.trajectory.size(), row.rounds);
  for (size_t i = 1; i < agg.trajectory.size(); ++i) {
    EXPECT_GE(agg.trajectory[i].queries, agg.trajectory[i - 1].queries);
  }
  // The trajectory's tail is the live estimate.
  EXPECT_TRUE(SameBits(agg.trajectory.back().estimate, agg.estimate));

  svc.RunUntilIdle();
  const std::vector<SessionIntrospection> done = svc.IntrospectSessions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].state, SessionState::kCompleted);
  EXPECT_GE(done[0].queries_used, 400u);
}

TEST(Introspection, StatuszSnapshotsTheWholeStack) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  obs::MetricsRegistry registry;
  FlightRecorder recorder(256);
  ServiceOptions sopts;
  sopts.registry = &registry;
  sopts.recorder = &recorder;
  EstimationService svc({{.meta = &server}}, sopts);

  double clock = 0.0;
  TimeSeriesSampler sampler(
      {.registry = &registry, .clock_ms = [&clock] { return clock; },
       .period_ms = 1.0});
  sampler.Tick();

  SessionSpec spec;
  spec.family = EstimatorFamily::kNno;
  spec.budget = 60;
  spec.seed = 3;
  spec.principal = "tenant-a";
  svc.Submit(spec);
  while (svc.RunSlice()) {
    clock += 1.0;
    sampler.MaybeTick();
  }

  service::ServiceIntrospector intro({.service = &svc, .sampler = &sampler,
                                      .recorder = &recorder,
                                      .registry = &registry});
  const std::string json = intro.BuildStatusz().ToJson();
  EXPECT_NE(json.find("\"service\""), std::string::npos);
  EXPECT_NE(json.find("\"sessions\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant-a\""), std::string::npos);
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(json.find("\"trajectory\""), std::string::npos);
  EXPECT_NE(json.find("service.sessions.submitted"), std::string::npos);

  const std::string prom = intro.PrometheusText();
  EXPECT_NE(prom.find("lbsagg_service_sessions_submitted 1"),
            std::string::npos);
}

// --- SLO watchdog ------------------------------------------------------------

TEST(SloWatchdog, FiresDeadlineAtRiskOnceWhenSlackRunsOut) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});
  SloWatchdog watchdog(&svc, {.deadline_slack_warn_ms = 0.0});

  int at_risk = 0;
  svc.triggers().Add(SessionEventKind::kDeadlineAtRisk,
                     [&at_risk](const SessionEvent& e) {
                       EXPECT_EQ(e.kind, SessionEventKind::kDeadlineAtRisk);
                       ++at_risk;
                     });

  SessionSpec spec;
  spec.family = EstimatorFamily::kNno;
  spec.budget = 5000;
  spec.seed = 3;
  spec.deadline_ms = 4;  // fallback clock: slack gone after 4 slices
  svc.Submit(spec);
  for (int i = 0; i < 4 && svc.RunSlice(); ++i) watchdog.Check();
  // Slack is now <= 0 while the session still runs.
  watchdog.Check();
  watchdog.Check();  // verdicts fire once, not per scan
  EXPECT_EQ(at_risk, 1);
  EXPECT_EQ(watchdog.deadline_fired(), 1u);
  svc.RunUntilIdle();
}

TEST(SloWatchdog, FiresSloStalledWhenHalfWidthStopsDropping) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});
  // An impossible slope target: any real session "stalls" immediately once
  // the observation window has enough charged queries.
  SloWatchdog watchdog(
      &svc, {.min_halfwidth_drop_per_query = 1e9,
             .min_queries_between_checks = 16});

  int stalled = 0;
  svc.triggers().Add(SessionEventKind::kSloStalled,
                     [&stalled](const SessionEvent& e) {
                       EXPECT_EQ(e.kind, SessionEventKind::kSloStalled);
                       ++stalled;
                     });

  SessionSpec spec;
  spec.family = EstimatorFamily::kLr;
  spec.budget = 300;
  spec.seed = 11;
  svc.Submit(spec);
  while (svc.RunSlice()) watchdog.Check();
  EXPECT_EQ(stalled, 1);
  EXPECT_EQ(watchdog.stalled_fired(), 1u);
}

// --- Determinism: the plane observes, never perturbs -------------------------

TEST(IntrospectionDeterminism, EstimatesBitIdenticalWithPlaneAttached) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  SessionSpec spec;
  spec.family = EstimatorFamily::kLr;
  spec.budget = 300;
  spec.seed = 11;

  // Bare run.
  std::vector<double> bare;
  {
    EstimationService svc({{.meta = &server}});
    const SessionId id = svc.Submit(spec);
    svc.RunUntilIdle();
    bare = svc.Poll(id).estimates;
  }

  // Same run with recorder + sampler + tracer + watchdog all live.
  std::vector<double> observed;
  {
    obs::MetricsRegistry registry;
    FlightRecorder recorder(512);
    obs::Tracer tracer;
    tracer.SetFlightRecorder(&recorder);
    ServiceOptions sopts;
    sopts.registry = &registry;
    sopts.recorder = &recorder;
    sopts.tracer = &tracer;
    EstimationService svc({{.meta = &server}}, sopts);
    SloWatchdog watchdog(&svc);
    double clock = 0.0;
    TimeSeriesSampler sampler(
        {.registry = &registry, .clock_ms = [&clock] { return clock; },
         .period_ms = 2.0});
    sampler.Tick();
    const SessionId id = svc.Submit(spec);
    while (svc.RunSlice()) {
      clock += 1.0;
      sampler.MaybeTick();
      watchdog.Check();
      svc.IntrospectSessions();  // statusz mid-run must not perturb
    }
    observed = svc.Poll(id).estimates;
    EXPECT_GT(recorder.published(), 0u);
    EXPECT_GT(sampler.windows_cut(), 0u);
  }

  ASSERT_EQ(bare.size(), observed.size());
  for (size_t i = 0; i < bare.size(); ++i) {
    EXPECT_TRUE(SameBits(bare[i], observed[i]));
  }
}

// --- TSAN race: drain vs scheduler vs dispatcher workers ---------------------

TEST(IntrospectionRaces, DrainRacesSubmitPollCancelAndTriggers) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  obs::MetricsRegistry registry;
  FlightRecorder recorder(512);
  obs::Tracer tracer;
  tracer.SetFlightRecorder(&recorder);
  ServiceOptions sopts;
  sopts.registry = &registry;
  sopts.recorder = &recorder;
  sopts.tracer = &tracer;
  sopts.dispatcher_workers = 4;  // workers emit transport spans concurrently
  EstimationService svc({{.meta = &server}}, sopts);

  // Re-entrant trigger: a finishing session submits a follow-up from inside
  // the fire, while every event also lands in the recorder.
  int resubmits = 0;
  svc.triggers().Add(SessionEventKind::kFinished,
                     [&svc, &resubmits](const SessionEvent&) {
                       if (resubmits >= 3) return;
                       ++resubmits;
                       SessionSpec follow;
                       follow.family = EstimatorFamily::kNno;
                       follow.budget = 40;
                       follow.seed = 7;
                       svc.Submit(follow);
                     });

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> drained_total{0};
  std::thread drainer([&] {
    std::vector<FlightRecord> out;
    while (!stop.load(std::memory_order_acquire)) {
      out.clear();
      drained_total.fetch_add(recorder.Drain(&out),
                              std::memory_order_relaxed);
    }
  });

  std::vector<SessionId> ids;
  for (int i = 0; i < 6; ++i) {
    SessionSpec spec;
    spec.family = EstimatorFamily::kNno;
    spec.budget = 60;
    spec.seed = 3 + static_cast<uint64_t>(i);
    ids.push_back(svc.Submit(spec));
  }
  int slices = 0;
  while (svc.RunSlice()) {
    ++slices;
    for (const SessionId id : ids) svc.Poll(id);
    if (slices == 10) svc.Cancel(ids[0]);
  }

  stop.store(true, std::memory_order_release);
  drainer.join();
  std::vector<FlightRecord> tail;
  drained_total.fetch_add(recorder.Drain(&tail), std::memory_order_relaxed);
  EXPECT_EQ(recorder.published(), drained_total.load());
  EXPECT_EQ(resubmits, 3);
  EXPECT_EQ(svc.queued() + svc.active(), 0u);
}

// --- The fig12 fingerprint with the plane attached ---------------------------

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// The exact legacy computation engine_regression_test pins, re-run with the
// flight recorder, sampler, tracer, and metric plane all attached: the
// introspection plane must not move a single bit of the trace.
TEST(IntrospectionDeterminism, LegacyFig12FingerprintSurvivesThePlane) {
  UsaOptions uopts;
  uopts.num_pois = 6000;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  CensusSampler sampler(&usa.census);
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");

  obs::MetricsRegistry registry;
  FlightRecorder recorder(4096);
  obs::Tracer tracer;
  tracer.SetFlightRecorder(&recorder);
  double clock = 0.0;
  TimeSeriesSampler series(
      {.registry = &registry, .clock_ms = [&clock] { return clock; },
       .period_ms = 50.0});
  series.Tick();

  uint64_t hash = 0;
  for (uint64_t seed = 42; seed < 45; ++seed) {
    LrClient client(&server, {.k = 5, .budget = 4000, .registry = &registry,
                              .tracer = &tracer});
    LrAggOptions opts;
    opts.seed = seed;
    opts.registry = &registry;
    opts.tracer = &tracer;
    LrAggEstimator est(&client, &sampler, spec, opts);
    const EstimatorHandle handle = MakeHandle(&est);
    // RunWithBudget's exact loop, with the sampler ticking live inside it.
    RunResult r;
    while (handle.queries_used() < 4000) {
      handle.step();
      r.trace.push_back({handle.queries_used(), handle.estimate()});
      clock += 1.0;
      series.MaybeTick();
    }
    for (const TracePoint& tp : r.trace) {
      uint64_t bits;
      std::memcpy(&bits, &tp.estimate, sizeof bits);
      hash = Mix(hash, tp.queries);
      hash = Mix(hash, bits);
    }
  }
#ifndef LBSAGG_OBS_DISABLED
  EXPECT_GT(recorder.published(), 0u);
  EXPECT_GT(series.windows_cut(), 0u);
#endif
  EXPECT_EQ(hash, 0x8e13737b33817270ull);
}

}  // namespace
}  // namespace service
}  // namespace lbsagg
