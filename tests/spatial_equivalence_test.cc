// Randomized 3-way equivalence: KdTree, GridIndex, and BruteForceIndex must
// return *bit-identical* results — same indices, same exact distance
// doubles — for Nearest, NearestFiltered, and WithinRadius. The candidate
// ordering contract in spatial_index.h (rank by exact (squared distance,
// index)) makes this well-defined even under distance ties, which the
// duplicate-point cases below force. The LBS server relies on this to make
// the index backend invisible through the interface; every kd-tree search
// specialization (k == 1, sorted-insertion small k, buffered large k) is
// covered by the k values used here.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "spatial/brute_force.h"
#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {1000, 1000});

std::vector<Vec2> RandomPointsWithDuplicates(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    // ~20% duplicates of an earlier point: forces exact distance ties so
    // the (distance, index) tie-break order is actually exercised.
    if (i > 0 && rng.Uniform01() < 0.2) {
      pts.push_back(pts[rng.UniformInt(static_cast<uint64_t>(i))]);
    } else {
      pts.push_back(kBox.SamplePoint(rng));
    }
  }
  return pts;
}

void ExpectIdentical(const std::vector<Neighbor>& a,
                     const std::vector<Neighbor>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << label << " rank " << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a[i].distance, b[i].distance) << label << " rank " << i;
  }
}

// WithinRadius is unsorted by contract; compare as sorted sets.
void ExpectSameSet(std::vector<Neighbor> a, std::vector<Neighbor> b,
                   const char* label) {
  const auto by_index = [](const Neighbor& x, const Neighbor& y) {
    return x.index < y.index;
  };
  std::sort(a.begin(), a.end(), by_index);
  std::sort(b.begin(), b.end(), by_index);
  ExpectIdentical(a, b, label);
}

// The k values cover all three KdTree search paths: the k == 1 register
// path, the sorted-insertion path (2 <= k <= leaf size 16), and the
// buffered-compaction path (k > 16), plus k > n truncation.
const int kTestKs[] = {1, 2, 7, 16, 17, 50, 400};

TEST(SpatialEquivalence, ThreeWayRandomized) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    const int n = 50 + static_cast<int>(seed) * 71;
    const auto pts = RandomPointsWithDuplicates(n, seed);
    const KdTree kd(pts);
    const GridIndex grid(pts, kBox);
    const BruteForceIndex brute(pts);
    ASSERT_EQ(kd.size(), pts.size());

    Rng rng(100 + seed);
    for (int trial = 0; trial < 40; ++trial) {
      // Mix of uniform queries and queries at (or near) data points, where
      // zero distances and ties concentrate.
      Vec2 q = kBox.SamplePoint(rng);
      if (trial % 3 == 1) q = pts[rng.UniformInt(static_cast<uint64_t>(n))];
      if (trial % 3 == 2) q = pts[rng.UniformInt(static_cast<uint64_t>(n))] + Vec2{1e-7, -1e-7};

      for (const int k : kTestKs) {
        const auto want = brute.Nearest(q, k);
        ExpectIdentical(kd.Nearest(q, k), want, "kd Nearest");
        ExpectIdentical(grid.Nearest(q, k), want, "grid Nearest");
      }

      const IndexFilter filter = [](int id) { return (id & 3) != 0; };
      for (const int k : {1, 7, 30}) {
        const auto want = brute.NearestFiltered(q, k, filter);
        ExpectIdentical(kd.NearestFiltered(q, k, filter), want,
                        "kd NearestFiltered");
        ExpectIdentical(grid.NearestFiltered(q, k, filter), want,
                        "grid NearestFiltered");
      }

      // Null filter must behave exactly like Nearest.
      ExpectIdentical(kd.NearestFiltered(q, 9, nullptr), brute.Nearest(q, 9),
                      "kd null filter");

      for (const double radius : {0.0, 15.0, 120.0, 2000.0}) {
        const auto want = brute.WithinRadius(q, radius);
        ExpectSameSet(kd.WithinRadius(q, radius), want, "kd WithinRadius");
        ExpectSameSet(grid.WithinRadius(q, radius), want,
                      "grid WithinRadius");
      }
    }
  }
}

TEST(SpatialEquivalence, AllPointsCoincident) {
  const std::vector<Vec2> pts(37, Vec2{500, 500});
  const KdTree kd(pts);
  const BruteForceIndex brute(pts);
  for (const int k : kTestKs) {
    // Every distance ties; order must fall back to index order identically.
    const auto got = kd.Nearest({400, 400}, k);
    const auto want = brute.Nearest({400, 400}, k);
    ExpectIdentical(got, want, "coincident Nearest");
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].index, static_cast<int>(i));
    }
  }
}

}  // namespace
}  // namespace lbsagg
