// Randomized 4-way equivalence: KdTree, GridIndex, LearnedIndex, and
// BruteForceIndex must return *bit-identical* results — same indices, same
// exact distance doubles — for Nearest, NearestFiltered, and WithinRadius.
// The candidate ordering contract in spatial_index.h (rank by the exact
// (squared distance, index) total order) makes this well-defined even under
// distance ties, which the duplicate-point cases below force; the total
// order is additionally asserted directly on every Nearest result, so a
// backend cannot pass by agreeing with an unordered oracle. The LBS server
// relies on this to make the index backend invisible through the interface;
// every kd-tree search specialization (k == 1, sorted-insertion small k,
// buffered large k) and every learned-index phase (seed scan, ball cover,
// block pruning) is covered by the k values used here.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "spatial/backend.h"
#include "spatial/brute_force.h"
#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "spatial/learned_index.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {1000, 1000});

std::vector<Vec2> RandomPointsWithDuplicates(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    // ~20% duplicates of an earlier point: forces exact distance ties so
    // the (distance, index) tie-break order is actually exercised.
    if (i > 0 && rng.Uniform01() < 0.2) {
      pts.push_back(pts[rng.UniformInt(static_cast<uint64_t>(i))]);
    } else {
      pts.push_back(kBox.SamplePoint(rng));
    }
  }
  return pts;
}

// Asserts the documented result contract of SpatialIndex::Nearest /
// NearestFiltered: ascending (distance, index) — i.e. equidistant neighbors
// ordered by ascending point id, identically on every backend.
void ExpectTotalOrder(const std::vector<Neighbor>& r, const char* label) {
  for (size_t i = 1; i < r.size(); ++i) {
    const bool ordered =
        r[i - 1].distance < r[i].distance ||
        (r[i - 1].distance == r[i].distance && r[i - 1].index < r[i].index);
    EXPECT_TRUE(ordered) << label << ": rank " << i - 1 << " (d="
                         << r[i - 1].distance << ", id=" << r[i - 1].index
                         << ") vs rank " << i << " (d=" << r[i].distance
                         << ", id=" << r[i].index << ")";
  }
}

void ExpectIdentical(const std::vector<Neighbor>& a,
                     const std::vector<Neighbor>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << label << " rank " << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a[i].distance, b[i].distance) << label << " rank " << i;
  }
  ExpectTotalOrder(a, label);
}

// WithinRadius is unsorted by contract; compare as sorted sets.
void ExpectSameSet(std::vector<Neighbor> a, std::vector<Neighbor> b,
                   const char* label) {
  const auto by_index = [](const Neighbor& x, const Neighbor& y) {
    return x.index < y.index;
  };
  std::sort(a.begin(), a.end(), by_index);
  std::sort(b.begin(), b.end(), by_index);
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << label << " rank " << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << label << " rank " << i;
  }
}

// The k values cover all three KdTree search paths (the k == 1 register
// path, sorted insertion for 2 <= k <= leaf size 16, buffered compaction
// beyond) and stress the learned index's seed-scan/ball-cover split, plus
// k > n truncation.
const int kTestKs[] = {1, 2, 7, 16, 17, 50, 400};

TEST(SpatialEquivalence, FourWayRandomized) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    const int n = 50 + static_cast<int>(seed) * 71;
    const auto pts = RandomPointsWithDuplicates(n, seed);
    const KdTree kd(pts);
    const GridIndex grid(pts, kBox);
    const LearnedIndex learned(pts);
    const BruteForceIndex brute(pts);
    ASSERT_EQ(kd.size(), pts.size());
    ASSERT_EQ(learned.size(), pts.size());

    Rng rng(100 + seed);
    for (int trial = 0; trial < 40; ++trial) {
      // Mix of uniform queries and queries at (or near) data points, where
      // zero distances and ties concentrate.
      Vec2 q = kBox.SamplePoint(rng);
      if (trial % 3 == 1) q = pts[rng.UniformInt(static_cast<uint64_t>(n))];
      if (trial % 3 == 2) q = pts[rng.UniformInt(static_cast<uint64_t>(n))] + Vec2{1e-7, -1e-7};

      for (const int k : kTestKs) {
        const auto want = brute.Nearest(q, k);
        ExpectTotalOrder(want, "brute Nearest");
        ExpectIdentical(kd.Nearest(q, k), want, "kd Nearest");
        ExpectIdentical(grid.Nearest(q, k), want, "grid Nearest");
        ExpectIdentical(learned.Nearest(q, k), want, "learned Nearest");
      }

      const IndexFilter filter = [](int id) { return (id & 3) != 0; };
      for (const int k : {1, 7, 30}) {
        const auto want = brute.NearestFiltered(q, k, filter);
        ExpectIdentical(kd.NearestFiltered(q, k, filter), want,
                        "kd NearestFiltered");
        ExpectIdentical(grid.NearestFiltered(q, k, filter), want,
                        "grid NearestFiltered");
        ExpectIdentical(learned.NearestFiltered(q, k, filter), want,
                        "learned NearestFiltered");
      }

      // Sparse-accepting filters: few tuples pass, so filtered searches
      // must keep expanding well past the seed leaves/blocks (and, at 1/64,
      // often exhaust the index without filling k).
      for (const int modulus : {16, 64}) {
        const IndexFilter sparse = [modulus](int id) {
          return id % modulus == 1;
        };
        for (const int k : {1, 5}) {
          const auto want = brute.NearestFiltered(q, k, sparse);
          ExpectIdentical(kd.NearestFiltered(q, k, sparse), want,
                          "kd sparse filter");
          ExpectIdentical(grid.NearestFiltered(q, k, sparse), want,
                          "grid sparse filter");
          ExpectIdentical(learned.NearestFiltered(q, k, sparse), want,
                          "learned sparse filter");
        }
      }

      // Null filter must behave exactly like Nearest.
      ExpectIdentical(kd.NearestFiltered(q, 9, nullptr), brute.Nearest(q, 9),
                      "kd null filter");
      ExpectIdentical(learned.NearestFiltered(q, 9, nullptr),
                      brute.Nearest(q, 9), "learned null filter");

      for (const double radius : {0.0, 15.0, 120.0, 2000.0}) {
        const auto want = brute.WithinRadius(q, radius);
        ExpectSameSet(kd.WithinRadius(q, radius), want, "kd WithinRadius");
        ExpectSameSet(grid.WithinRadius(q, radius), want,
                      "grid WithinRadius");
        ExpectSameSet(learned.WithinRadius(q, radius), want,
                      "learned WithinRadius");
      }
    }
  }
}

TEST(SpatialEquivalence, AllPointsCoincident) {
  const std::vector<Vec2> pts(37, Vec2{500, 500});
  const KdTree kd(pts);
  const LearnedIndex learned(pts);
  const BruteForceIndex brute(pts);
  for (const int k : kTestKs) {
    // Every distance ties; order must fall back to index order identically.
    const auto want = brute.Nearest({400, 400}, k);
    for (const auto* index :
         std::initializer_list<const SpatialIndex*>{&kd, &learned}) {
      const auto got = index->Nearest({400, 400}, k);
      ExpectIdentical(got, want, "coincident Nearest");
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].index, static_cast<int>(i));
      }
    }
  }
}

// WithinRadius is boundary-inclusive: points at *exactly* `radius` must be
// returned by every backend. Axis-aligned offsets keep the squared distance
// arithmetic exact, so "exactly" means bit-exactly, not approximately.
TEST(SpatialEquivalence, WithinRadiusBoundaryInclusive) {
  const Vec2 q{512, 512};
  const double radius = 32.0;  // power of two: q ± radius is exact
  std::vector<Vec2> pts = {
      {q.x + radius, q.y},  // exactly at radius, +x
      {q.x - radius, q.y},  // exactly at radius, -x
      {q.x, q.y + radius},  // exactly at radius, +y
      {q.x, q.y - radius},  // exactly at radius, -y
      q,                    // distance 0
      {q.x + radius + 1e-9, q.y},  // just outside
      {q.x + radius - 1e-9, q.y},  // just inside
      {q.x + 900, q.y + 900},      // far away
  };
  Rng rng(9);
  for (int i = 0; i < 40; ++i) pts.push_back(kBox.SamplePoint(rng));

  const KdTree kd(pts);
  const GridIndex grid(pts, kBox);
  const LearnedIndex learned(pts);
  const BruteForceIndex brute(pts);

  const auto want = brute.WithinRadius(q, radius);
  // The oracle itself must include the four boundary points and the center.
  std::vector<int> got_ids;
  for (const Neighbor& nb : want) got_ids.push_back(nb.index);
  std::sort(got_ids.begin(), got_ids.end());
  for (int id : {0, 1, 2, 3, 4}) {
    EXPECT_TRUE(std::binary_search(got_ids.begin(), got_ids.end(), id))
        << "boundary point " << id << " missing from the oracle";
  }
  EXPECT_FALSE(std::binary_search(got_ids.begin(), got_ids.end(), 5));

  ExpectSameSet(kd.WithinRadius(q, radius), want, "kd boundary");
  ExpectSameSet(grid.WithinRadius(q, radius), want, "grid boundary");
  ExpectSameSet(learned.WithinRadius(q, radius), want, "learned boundary");

  // Nearest at k = count-of-ties must break the 4-way distance tie by id on
  // every backend.
  for (const int k : {4, 5, 6}) {
    const auto tie_want = brute.Nearest(q, k);
    ExpectIdentical(kd.Nearest(q, k), tie_want, "kd boundary tie");
    ExpectIdentical(grid.Nearest(q, k), tie_want, "grid boundary tie");
    ExpectIdentical(learned.Nearest(q, k), tie_want, "learned boundary tie");
  }
}

// The factory covers the same four backends behind the enum used by
// ServerOptions; spot-check each against the oracle through the interface.
TEST(SpatialEquivalence, FactoryBackendsAgree) {
  const auto pts = RandomPointsWithDuplicates(300, 77);
  const BruteForceIndex brute(pts);
  Rng rng(78);
  for (const SpatialBackend backend :
       {SpatialBackend::kKdTree, SpatialBackend::kGrid,
        SpatialBackend::kBruteForce, SpatialBackend::kLearned}) {
    const auto index = MakeSpatialIndex(backend, pts, kBox);
    ASSERT_NE(index, nullptr);
    ASSERT_EQ(index->size(), pts.size());
    for (int trial = 0; trial < 10; ++trial) {
      const Vec2 q = kBox.SamplePoint(rng);
      ExpectIdentical(index->Nearest(q, 8), brute.Nearest(q, 8),
                      SpatialBackendName(backend));
    }
    // Round-trip of the name <-> enum mapping the CLI and examples use.
    EXPECT_EQ(ParseSpatialBackend(SpatialBackendName(backend)), backend);
  }
  EXPECT_EQ(ParseSpatialBackend("noSuchBackend"), std::nullopt);
}

}  // namespace
}  // namespace lbsagg
