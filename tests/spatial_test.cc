#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "spatial/brute_force.h"
#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {1000, 1000});

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

TEST(KdTree, EmptyTreeReturnsNothing) {
  const KdTree tree(std::vector<Vec2>{});
  EXPECT_TRUE(tree.Nearest({0, 0}, 3).empty());
}

TEST(KdTree, SinglePoint) {
  const KdTree tree({{5, 5}});
  const auto r = tree.Nearest({0, 0}, 3);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].index, 0);
  EXPECT_NEAR(r[0].distance, std::sqrt(50.0), 1e-12);
}

TEST(KdTree, ResultsSortedByDistance) {
  const auto pts = RandomPoints(200, 301);
  const KdTree tree(pts);
  Rng rng(303);
  for (int trial = 0; trial < 50; ++trial) {
    const auto r = tree.Nearest(kBox.SamplePoint(rng), 10);
    ASSERT_EQ(r.size(), 10u);
    for (size_t i = 1; i < r.size(); ++i) {
      EXPECT_LE(r[i - 1].distance, r[i].distance);
    }
  }
}

// Property sweep: k-d tree ≡ brute force for many k values.
class KdTreeEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KdTreeEquivalenceTest, MatchesBruteForce) {
  const int k = GetParam();
  const auto pts = RandomPoints(300, 307);
  const KdTree tree(pts);
  const BruteForceIndex brute(pts);
  Rng rng(311);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    const auto a = tree.Nearest(q, k);
    const auto b = brute.Nearest(q, k);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index) << "k=" << k << " i=" << i;
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, KdTreeEquivalenceTest,
                         ::testing::Values(1, 2, 5, 10, 50, 301));

TEST(KdTree, FilteredSearchMatchesBruteForce) {
  const auto pts = RandomPoints(300, 313);
  const KdTree tree(pts);
  const BruteForceIndex brute(pts);
  const IndexFilter odd_only = [](int i) { return i % 2 == 1; };
  Rng rng(317);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    const auto a = tree.NearestFiltered(q, 7, odd_only);
    const auto b = brute.NearestFiltered(q, 7, odd_only);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_EQ(a[i].index % 2, 1);
    }
  }
}

TEST(KdTree, FilterRejectingEverythingGivesEmpty) {
  const auto pts = RandomPoints(50, 319);
  const KdTree tree(pts);
  EXPECT_TRUE(
      tree.NearestFiltered({1, 1}, 5, [](int) { return false; }).empty());
}

TEST(KdTree, WithinRadiusMatchesLinearScan) {
  const auto pts = RandomPoints(400, 323);
  const KdTree tree(pts);
  Rng rng(327);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    const double radius = rng.Uniform(10.0, 200.0);
    auto got = tree.WithinRadius(q, radius);
    std::vector<int> got_ids;
    for (const Neighbor& n : got) {
      got_ids.push_back(n.index);
      EXPECT_LE(n.distance, radius);
    }
    std::sort(got_ids.begin(), got_ids.end());
    std::vector<int> want_ids;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (Distance(q, pts[i]) <= radius) {
        want_ids.push_back(static_cast<int>(i));
      }
    }
    EXPECT_EQ(got_ids, want_ids);
  }
}

TEST(KdTree, KLargerThanDatasetReturnsAll) {
  const auto pts = RandomPoints(10, 331);
  const KdTree tree(pts);
  const auto r = tree.Nearest({500, 500}, 100);
  EXPECT_EQ(r.size(), 10u);
}

TEST(KdTree, DuplicateCoordinatesHandled) {
  // Points with identical x (stresses the splitting logic).
  std::vector<Vec2> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({5.0, static_cast<double>(i)});
  const KdTree tree(pts);
  const auto r = tree.Nearest({5.0, 10.2}, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].index, 10);
}

// The grid index must agree with brute force for all k, including the
// skewed layouts that stress its expanding-ring termination rule.
class GridEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(GridEquivalenceTest, MatchesBruteForce) {
  const int k = GetParam();
  const auto pts = RandomPoints(300, 401);
  const GridIndex grid(pts, kBox);
  const BruteForceIndex brute(pts);
  Rng rng(403);
  for (int trial = 0; trial < 150; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    const auto a = grid.Nearest(q, k);
    const auto b = brute.Nearest(q, k);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, GridEquivalenceTest,
                         ::testing::Values(1, 3, 10, 50));

TEST(GridIndex, SkewedClusterStillCorrect) {
  // All points in one corner cell: rings must expand far enough for distant
  // queries.
  std::vector<Vec2> pts;
  Rng rng(407);
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const GridIndex grid(pts, kBox);
  const BruteForceIndex brute(pts);
  const Vec2 far_query{990, 990};
  const auto a = grid.Nearest(far_query, 5);
  const auto b = brute.Nearest(far_query, 5);
  ASSERT_EQ(a.size(), 5u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].index, b[i].index);
}

TEST(GridIndex, FilteredSearchMatchesBruteForce) {
  const auto pts = RandomPoints(200, 409);
  const GridIndex grid(pts, kBox);
  const BruteForceIndex brute(pts);
  const IndexFilter thirds = [](int i) { return i % 3 == 0; };
  Rng rng(411);
  for (int trial = 0; trial < 60; ++trial) {
    const Vec2 q = kBox.SamplePoint(rng);
    const auto a = grid.NearestFiltered(q, 4, thirds);
    const auto b = brute.NearestFiltered(q, 4, thirds);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].index, b[i].index);
  }
}

TEST(GridIndex, EmptyAndTinyInputs) {
  const GridIndex empty({}, kBox);
  EXPECT_TRUE(empty.Nearest({1, 1}, 3).empty());
  const GridIndex one({{5, 5}}, kBox);
  const auto r = one.Nearest({900, 900}, 2);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].index, 0);
}

TEST(BruteForce, TieBreakByIndex) {
  // Two equidistant points: the smaller index wins, deterministically.
  const BruteForceIndex idx({{0, 1}, {0, -1}});
  const auto r = idx.Nearest({0, 0}, 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].index, 0);
}

TEST(KdTree, TieBreakMatchesBruteForce) {
  // Symmetric grid makes exact ties; both indexes must break them the same
  // way (by index) so the simulated LBS is deterministic.
  std::vector<Vec2> pts;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) pts.push_back({i * 2.0, j * 2.0});
  }
  const KdTree tree(pts);
  const BruteForceIndex brute(pts);
  const Vec2 q{3.0, 3.0};  // equidistant from 4 grid points
  const auto a = tree.Nearest(q, 4);
  const auto b = brute.Nearest(q, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].index, b[i].index);
}

}  // namespace
}  // namespace lbsagg
