#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/ground_truth.h"
#include "core/history.h"
#include "core/lr_cell.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

struct Fixture {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<LbsServer> server;
  std::unique_ptr<LrClient> client;
  std::unique_ptr<GroundTruthOracle> oracle;
  std::unique_ptr<UniformSampler> sampler;

  explicit Fixture(int n, uint64_t seed, int k = 5) {
    Rng rng(seed);
    dataset = std::make_unique<Dataset>(kBox, Schema());
    for (int i = 0; i < n; ++i) dataset->Add(kBox.SamplePoint(rng), {});
    server = std::make_unique<LbsServer>(dataset.get(),
                                         ServerOptions{.max_k = k});
    client = std::make_unique<LrClient>(server.get(), ClientOptions{.k = k});
    oracle = std::make_unique<GroundTruthOracle>(dataset->Positions(), kBox);
    sampler = std::make_unique<UniformSampler>(kBox);
  }
};

TEST(LrCell, ExactTop1CellMatchesOracle) {
  Fixture f(150, 501);
  History history;
  LrCellComputer computer(f.client.get(), &history, f.sampler.get());
  for (int id : {0, 17, 42, 99, 149}) {
    const TopkRegion cell =
        computer.ComputeExactCell(id, f.dataset->tuple(id).pos, 1);
    EXPECT_NEAR(cell.area, f.oracle->TopkCellArea(id, 1), 1e-6 * kBox.Area())
        << id;
  }
}

TEST(LrCell, ExactTopHCellsMatchOracle) {
  Fixture f(120, 503);
  History history;
  LrCellComputer computer(f.client.get(), &history, f.sampler.get());
  for (int h : {2, 3, 5}) {
    for (int id : {3, 55, 110}) {
      const TopkRegion cell =
          computer.ComputeExactCell(id, f.dataset->tuple(id).pos, h);
      EXPECT_NEAR(cell.area, f.oracle->TopkCellArea(id, h),
                  1e-6 * kBox.Area())
          << "id=" << id << " h=" << h;
    }
  }
}

TEST(LrCell, BaselineWithoutAnyOptimization) {
  // Algorithm 1: no fast-init, no history, no Monte Carlo.
  Fixture f(100, 507);
  History history;
  LrCellOptions opts;
  opts.fast_init = false;
  opts.use_history = false;
  opts.monte_carlo = false;
  LrCellComputer computer(f.client.get(), &history, f.sampler.get(), opts);
  const TopkRegion cell =
      computer.ComputeExactCell(20, f.dataset->tuple(20).pos, 1);
  EXPECT_NEAR(cell.area, f.oracle->TopkCellArea(20, 1), 1e-6 * kBox.Area());
}

TEST(LrCell, FastInitSavesQueriesOnClusteredData) {
  // Dense data: the fake box around t immediately finds the real neighbors
  // instead of walking in from the region corners.
  Fixture with(2000, 509);
  Fixture without(2000, 509);
  History h1, h2;
  LrCellOptions fast;
  fast.fast_init = true;
  fast.use_history = false;
  fast.monte_carlo = false;
  LrCellOptions slow = fast;
  slow.fast_init = false;

  uint64_t fast_total = 0, slow_total = 0;
  for (int id : {5, 100, 700, 1500}) {
    {
      LrCellComputer c(with.client.get(), &h1, with.sampler.get(), fast);
      const uint64_t before = with.client->queries_used();
      c.ComputeExactCell(id, with.dataset->tuple(id).pos, 1);
      fast_total += with.client->queries_used() - before;
      h1 = History();  // isolate samples
    }
    {
      LrCellComputer c(without.client.get(), &h2, without.sampler.get(), slow);
      const uint64_t before = without.client->queries_used();
      c.ComputeExactCell(id, without.dataset->tuple(id).pos, 1);
      slow_total += without.client->queries_used() - before;
      h2 = History();
    }
  }
  EXPECT_LT(fast_total, slow_total);
}

TEST(LrCell, HistorySeedingReducesQueries) {
  // Computing a cell with a populated history must cost fewer queries than
  // computing the same cell cold, and still be exact.
  Fixture f(500, 511);
  History shared;
  LrCellOptions opts;
  opts.monte_carlo = false;
  LrCellComputer computer(f.client.get(), &shared, f.sampler.get(), opts);

  // Populate history around tuple 50.
  computer.ComputeExactCell(50, f.dataset->tuple(50).pos, 1);
  const auto near = f.client->Query(f.dataset->tuple(50).pos);
  const int neighbor = near.size() > 1 ? near[1].id : 0;

  // Warm: shared history. Cold: fresh history, fresh computer.
  const uint64_t q1 = f.client->queries_used();
  const TopkRegion warm_cell =
      computer.ComputeExactCell(neighbor, f.dataset->tuple(neighbor).pos, 1);
  const uint64_t warm_cost = f.client->queries_used() - q1;

  History fresh;
  LrCellComputer cold_computer(f.client.get(), &fresh, f.sampler.get(), opts);
  const uint64_t q2 = f.client->queries_used();
  cold_computer.ComputeExactCell(neighbor, f.dataset->tuple(neighbor).pos, 1);
  const uint64_t cold_cost = f.client->queries_used() - q2;

  EXPECT_LT(warm_cost, cold_cost);
  EXPECT_NEAR(warm_cell.area, f.oracle->TopkCellArea(neighbor, 1),
              1e-6 * kBox.Area());
}

TEST(LrCell, MonteCarloIsUnbiased) {
  // E[inv_probability] over many randomized runs must equal 1/p even when
  // the cell refinement stops early (aggressive threshold forces MC).
  Fixture f(80, 513);
  const int id = 37;
  const double p = f.oracle->UniformInclusionProbability(id, 1);
  LrCellOptions opts;
  opts.monte_carlo = true;
  opts.mc_shrink_threshold = 0.9;  // stop as soon as permitted
  opts.mc_min_rounds = 1;
  Rng rng(515);
  double sum = 0.0;
  const int runs = 600;
  for (int r = 0; r < runs; ++r) {
    History history;  // fresh history so every run is identically distributed
    LrCellComputer computer(f.client.get(), &history, f.sampler.get(), opts);
    const LrCellComputer::Result res = computer.ComputeInverseProbability(
        id, f.dataset->tuple(id).pos, 1, rng);
    sum += res.inv_probability;
  }
  const double mean = sum / runs;
  EXPECT_NEAR(mean * p, 1.0, 0.15);  // within ~3 sigma for 600 runs
}

TEST(LrCell, ExactModeInverseProbability) {
  Fixture f(100, 517);
  History history;
  LrCellOptions opts;
  opts.monte_carlo = false;
  LrCellComputer computer(f.client.get(), &history, f.sampler.get(), opts);
  Rng rng(519);
  const LrCellComputer::Result res = computer.ComputeInverseProbability(
      12, f.dataset->tuple(12).pos, 1, rng);
  EXPECT_TRUE(res.exact);
  EXPECT_NEAR(res.inv_probability,
              1.0 / f.oracle->UniformInclusionProbability(12, 1),
              1e-6 * res.inv_probability);
}

TEST(LrCell, WorksUnderPassThroughFilter) {
  // With a pass-through condition the cell is over the filtered dataset.
  Rng rng(521);
  Schema schema;
  schema.AddColumn("flag", AttrType::kBool);
  Dataset dataset(kBox, schema);
  std::vector<Vec2> flagged;
  for (int i = 0; i < 200; ++i) {
    const Vec2 p = kBox.SamplePoint(rng);
    const bool flag = i % 2 == 0;
    dataset.Add(p, {flag});
    if (flag) flagged.push_back(p);
  }
  LbsServer server(&dataset, {.max_k = 5});
  LrClient client(&server, {.k = 5});
  client.SetPassThroughFilter(
      [](const Tuple& t) { return std::get<bool>(t.values[0]); });
  GroundTruthOracle filtered_oracle(flagged, kBox);

  History history;
  UniformSampler sampler(kBox);
  LrCellOptions opts;
  opts.monte_carlo = false;
  LrCellComputer computer(&client, &history, &sampler, opts);
  // Tuple 10 is flagged (even id) and is the 6th flagged point.
  const TopkRegion cell =
      computer.ComputeExactCell(10, dataset.tuple(10).pos, 1);
  EXPECT_NEAR(cell.area, filtered_oracle.TopkCellArea(5, 1),
              1e-6 * kBox.Area());
}

TEST(LrCell, CoverageRadiusClipsTheCell) {
  // §5.3: under a d_max coverage limit, the inclusion region is the cell
  // intersected with the d_max disc around the tuple.
  Rng rng(523);
  Dataset dataset(kBox, Schema());
  for (int i = 0; i < 60; ++i) dataset.Add(kBox.SamplePoint(rng), {});
  ServerOptions sopts;
  sopts.max_k = 3;
  sopts.max_radius = 9.0;
  LbsServer server(&dataset, sopts);
  LrClient client(&server, {.k = 3});
  GroundTruthOracle oracle(dataset.Positions(), kBox);
  History history;
  UniformSampler sampler(kBox);
  LrCellOptions opts;
  opts.monte_carlo = false;
  LrCellComputer computer(&client, &history, &sampler, opts);

  for (int id : {4, 21, 48}) {
    const Vec2 pos = dataset.tuple(id).pos;
    const TopkRegion cell = computer.ComputeExactCell(id, pos, 1);
    // Truth: clip the unrestricted cell by the disc polygon.
    const TopkRegion full = oracle.TopkCell(id, 1);
    const ConvexPolygon disc = InscribedCirclePolygon(pos, 9.0);
    double truth = 0.0;
    for (ConvexPolygon piece : full.pieces) {
      for (size_t e = 0; e < disc.size() && !piece.IsEmpty(); ++e) {
        const Vec2& a = disc.vertices()[e];
        const Vec2& b = disc.vertices()[(e + 1) % disc.size()];
        piece = piece.Clip(HalfPlane(Line::Through(b, a)));
      }
      truth += piece.Area();
    }
    EXPECT_NEAR(cell.area, truth, 2e-3 * truth + 1e-6) << id;
  }
}

TEST(LrCell, TupleOnBoxCornerRegion) {
  // A tuple whose cell touches the box corner exercises box-edge vertices.
  Dataset dataset(kBox, Schema());
  dataset.Add({2, 2}, {});
  dataset.Add({50, 50}, {});
  dataset.Add({90, 20}, {});
  dataset.Add({20, 90}, {});
  LbsServer server(&dataset, {.max_k = 2});
  LrClient client(&server, {.k = 2});
  GroundTruthOracle oracle(dataset.Positions(), kBox);
  History history;
  UniformSampler sampler(kBox);
  LrCellOptions opts;
  opts.monte_carlo = false;
  LrCellComputer computer(&client, &history, &sampler, opts);
  const TopkRegion cell = computer.ComputeExactCell(0, {2, 2}, 1);
  EXPECT_NEAR(cell.area, oracle.TopkCellArea(0, 1), 1e-6 * kBox.Area());
}

}  // namespace
}  // namespace lbsagg
