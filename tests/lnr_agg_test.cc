#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/lnr_agg.h"
#include "lbs/client.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

ChinaScenario SmallChina(int n = 800, double male = 0.671) {
  ChinaOptions opts;
  opts.num_users = n;
  opts.male_fraction = male;
  return BuildChinaScenario(opts);
}

TEST(LnrAgg, CountConvergesWithSmallBias) {
  // Census-weighted sampling (§5.2) tames the heavy tail of uniform
  // sampling over clustered users, so a single run converges tightly.
  const ChinaScenario china = SmallChina();
  LbsServer server(china.dataset.get(), {.max_k = 1});
  CensusSampler sampler(&china.census);
  // Average a few independent runs: even weighted sampling keeps a heavy
  // tail from the rural users.
  double total = 0.0;
  for (uint64_t seed = 71; seed < 74; ++seed) {
    LnrClient client(&server, {.k = 1});
    LnrAggOptions opts;
    opts.seed = seed;
    LnrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    for (int i = 0; i < 150; ++i) est.Step();
    total += est.Estimate();
  }
  EXPECT_NEAR(total / 3.0, 800.0, 0.2 * 800.0);
}

TEST(LnrAgg, GenderRatioEstimation) {
  const ChinaScenario china = SmallChina(800, 0.671);
  const double males =
      china.dataset->GroundTruthCount(GenderIs(china.columns, "M"));
  LbsServer server(china.dataset.get(), {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  CensusSampler sampler(&china.census);
  const int gender_col = client.schema().Require("gender");
  LnrAggOptions opts;
  opts.seed = 73;
  LnrAggEstimator est(
      &client, &sampler,
      AggregateSpec::CountWhere(ColumnEquals(gender_col, "M"), "COUNT(male)"),
      opts);
  for (int i = 0; i < 250; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), males, 0.25 * males);
}

TEST(LnrAgg, AvgViaRatioOfMeans) {
  // AVG over an attribute: male share as AVG(indicator).
  const ChinaScenario china = SmallChina(800, 0.671);
  LbsServer server(china.dataset.get(), {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  CensusSampler sampler(&china.census);
  const int gender_col = client.schema().Require("gender");
  AggregateSpec male_count =
      AggregateSpec::CountWhere(ColumnEquals(gender_col, "M"), "COUNT(male)");
  LnrAggOptions opts;
  opts.seed = 79;
  LnrAggEstimator male_est(&client, &sampler, male_count, opts);
  LnrClient client2(&server, {.k = 1});
  LnrAggEstimator all_est(&client2, &sampler, AggregateSpec::Count(), opts);
  for (int i = 0; i < 200; ++i) {
    male_est.Step();
    all_est.Step();
  }
  const double ratio = male_est.Estimate() / all_est.Estimate();
  EXPECT_NEAR(ratio, 0.671, 0.12);
}

TEST(LnrAgg, TopkCellsModeConverges) {
  const ChinaScenario china = SmallChina(400);
  LbsServer server(china.dataset.get(), {.max_k = 2});
  LnrClient client(&server, {.k = 2});
  CensusSampler sampler(&china.census);
  LnrAggOptions opts;
  opts.use_topk_cells = true;
  opts.seed = 83;
  LnrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  for (int i = 0; i < 80; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), 400.0, 0.3 * 400.0);
}

TEST(LnrAgg, EmptyResultsUnderMaxRadius) {
  const ChinaScenario china = SmallChina(300);
  ServerOptions sopts;
  sopts.max_k = 1;
  sopts.max_radius = 150.0;  // Weibo-style coverage limit
  LbsServer server(china.dataset.get(), sopts);
  UniformSampler sampler(china.dataset->box());
  double total = 0.0;
  for (uint64_t seed = 89; seed < 92; ++seed) {
    LnrClient client(&server, {.k = 1});
    LnrAggOptions opts;
    opts.seed = seed;
    LnrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    for (int i = 0; i < 150; ++i) est.Step();
    total += est.Estimate();
  }
  // Still a valid estimate (empty answers contribute zero, Σp < 1; the
  // coverage disc is recovered from three chord crossings).
  EXPECT_NEAR(total / 3.0, 300.0, 0.4 * 300.0);
}

TEST(LnrAgg, PositionConditionViaLocalization) {
  // §4.3 in service of §2.3: a location-based selection condition over an
  // LNR service forces per-tuple localization before the condition can be
  // evaluated.
  const ChinaScenario china = SmallChina(120);
  const Box& box = china.dataset->box();
  const Box west(box.lo, {box.lo.x + box.width() / 2.0, box.hi.y});
  double truth = 0.0;
  for (const Tuple& t : china.dataset->tuples()) {
    if (west.Contains(t.pos)) truth += 1.0;
  }
  LbsServer server(china.dataset.get(), {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  CensusSampler sampler(&china.census);
  AggregateSpec spec = AggregateSpec::Count();
  spec.position_condition = [west](const Vec2& p) {
    return west.Contains(p);
  };
  LnrAggOptions opts;
  opts.seed = 97;
  LnrAggEstimator est(&client, &sampler, spec, opts);
  for (int i = 0; i < 120; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), truth, 0.35 * truth);
}

TEST(LnrAgg, DiagnosticsTrackCacheHits) {
  // Tiny dataset: tuples repeat quickly, so the cache must get hits.
  const ChinaScenario china = SmallChina(60);
  LbsServer server(china.dataset.get(), {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  CensusSampler sampler(&china.census);
  LnrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {});
  for (int i = 0; i < 120; ++i) est.Step();
  const LnrAggDiagnostics& d = est.diagnostics();
  EXPECT_EQ(d.rounds, 120u);
  EXPECT_GT(d.cache_hits, 0u);
  EXPECT_LE(d.cells_inferred, 60u);
  EXPECT_LE(d.cells_inferred + d.cache_hits, 120u);
}

TEST(LnrAgg, TraceTracksQueries) {
  const ChinaScenario china = SmallChina(200);
  LbsServer server(china.dataset.get(), {.max_k = 1});
  LnrClient client(&server, {.k = 1});
  UniformSampler sampler(china.dataset->box());
  LnrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {});
  for (int i = 0; i < 20; ++i) est.Step();
  ASSERT_EQ(est.trace().size(), 20u);
  EXPECT_EQ(est.trace().back().queries, client.queries_used());
}

}  // namespace
}  // namespace lbsagg
