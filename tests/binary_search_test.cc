#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/binary_search.h"
#include "core/ground_truth.h"
#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

struct Fixture {
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<LbsServer> server;
  std::unique_ptr<LnrClient> client;

  Fixture(std::vector<Vec2> points, int k = 1) {
    dataset = std::make_unique<Dataset>(kBox, Schema());
    for (const Vec2& p : points) dataset->Add(p, {});
    server = std::make_unique<LbsServer>(dataset.get(),
                                         ServerOptions{.max_k = k});
    client = std::make_unique<LnrClient>(server.get(), ClientOptions{.k = k});
  }
};

TEST(BinarySearch, FindsExactBisectorBetweenTwoTuples) {
  Fixture f({{30, 50}, {70, 50}});
  LnrEdgeFinder finder(f.client.get(), {}, CellMembership::kTop1);
  const auto e = finder.FindEdgeOnRay(0, {30, 50}, {31, 50});
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->is_box_edge);
  EXPECT_EQ(e->neighbor_id, 1);
  // The true bisector is x = 50.
  EXPECT_NEAR(e->edge.DistanceTo({50, 0}), 0.0, 1e-3);
  EXPECT_NEAR(e->edge.DistanceTo({50, 100}), 0.0, 1e-3);
  EXPECT_LT(e->edge.Side({30, 50}), 0.0);
  EXPECT_GT(e->edge.Side({70, 50}), 0.0);
}

TEST(BinarySearch, EdgeErrorWithinTheorem3Bound) {
  Rng rng(601);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec2 a = kBox.SamplePoint(rng);
    Vec2 b = kBox.SamplePoint(rng);
    if (Distance(a, b) < 20.0) {
      b = kBox.Clamp(a + Normalized(b - a + Vec2{1e-3, 0}) * 30.0);
    }
    Fixture f({a, b});
    BinarySearchOptions opts;
    opts.delta_fraction = 1e-9;
    opts.delta_prime_fraction = 1e-5;
    LnrEdgeFinder finder(f.client.get(), opts, CellMembership::kTop1);
    // Shoot toward b so the ray crosses the real bisector.
    const auto e = finder.FindEdgeOnRay(0, a, b);
    ASSERT_TRUE(e.has_value());
    if (e->is_box_edge) continue;
    const Line truth = Line::Bisector(a, b);
    // Compare the two lines where the estimate crossed: the midpoint of the
    // witnesses must lie ~on the true bisector.
    const Vec2 mid = Midpoint(e->near_witness, e->far_witness);
    EXPECT_LT(truth.DistanceTo(mid), 1e-5 * Distance(kBox.lo, kBox.hi));
    // Direction error: within a few δ'/r radians.
    const double angle_err =
        std::abs(std::remainder(e->edge.Angle() - truth.Angle(), M_PI));
    EXPECT_LT(angle_err, 0.05);
  }
}

TEST(BinarySearch, BoxEdgeDetectedWhenCellReachesBoundary) {
  Fixture f({{10, 50}, {90, 50}});
  LnrEdgeFinder finder(f.client.get(), {}, CellMembership::kTop1);
  // Ray pointing left from tuple 0 hits the box, not a bisector.
  const auto e = finder.FindEdgeOnRay(0, {10, 50}, {9, 50});
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->is_box_edge);
  EXPECT_EQ(e->neighbor_id, -1);
  EXPECT_LT(e->edge.Side({10, 50}), 0.0);
}

TEST(BinarySearch, NonMemberStartReturnsNullopt) {
  Fixture f({{30, 50}, {70, 50}});
  LnrEdgeFinder finder(f.client.get(), {}, CellMembership::kTop1);
  // Tuple 0 is not the top-1 at (70,50).
  EXPECT_FALSE(finder.FindEdgeOnRay(0, {70, 50}, {71, 50}).has_value());
}

TEST(BinarySearch, TopKMembershipFindsTopKCellEdge) {
  // Three collinear tuples, k=2: the top-2 cell of tuple 0 extends past
  // tuple 1's bisector, ending where 0 drops to rank 3.
  Fixture f({{20, 50}, {50, 50}, {80, 50}}, /*k=*/2);
  LnrEdgeFinder finder(f.client.get(), {}, CellMembership::kTopK);
  const auto e = finder.FindEdgeOnRay(0, {20, 50}, {21, 50});
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->is_box_edge);
  // Top-2 membership of tuple 0 ends at the bisector of (0, 2): x = 50 is
  // bisector(0,1) where 0 is still rank 2; x = 65 is where 2 displaces it...
  // rank of 0 at x: #closer among {1,2}. At x=58: d0=38, d1=8, d2=22 → rank
  // 2 (both closer? d1=8<38 yes, d2=22<38 yes) → rank 3. Recompute: the
  // drop-out point is where the 2nd of {1,2} passes 0: min over x of
  // max(d1,d2) < d0 — i.e. bisector(0,2) at x=50 for d2... d2(x)=|80-x|,
  // d0(x)=x-20. |80-x| = x-20 → x=50. And d1: |50-x| = x-20 → x=35.
  // So 0 leaves the top-2 when BOTH are closer: x > max(35, 50) = 50.
  EXPECT_NEAR(e->edge.DistanceTo({50, 50}), 0.0, 1e-3);
  EXPECT_EQ(e->neighbor_id, 2);
}

TEST(BinarySearch, FlipOnSegmentGenericPredicate) {
  Fixture f({{30, 50}, {70, 50}}, /*k=*/1);
  LnrEdgeFinder finder(f.client.get(), {}, CellMembership::kTop1);
  const auto flip = finder.FindFlipOnSegment(
      [](const std::vector<int>& ids) {
        return !ids.empty() && ids.front() == 0;
      },
      {30, 50}, {70, 50});
  ASSERT_TRUE(flip.has_value());
  EXPECT_NEAR(flip->midpoint.x, 50.0, 1e-3);
  ASSERT_FALSE(flip->far_ids.empty());
  EXPECT_EQ(flip->far_ids.front(), 1);
}

TEST(BinarySearch, FlipRejectsNonStraddlingSegment) {
  Fixture f({{30, 50}, {70, 50}});
  LnrEdgeFinder finder(f.client.get(), {}, CellMembership::kTop1);
  const auto flip = finder.FindFlipOnSegment(
      [](const std::vector<int>& ids) {
        return !ids.empty() && ids.front() == 0;
      },
      {10, 50}, {40, 50});  // both sides return tuple 0
  EXPECT_FALSE(flip.has_value());
}

TEST(BinarySearch, FindBoundaryLineRecoversBisector) {
  Fixture f({{30, 40}, {70, 60}});
  LnrEdgeFinder finder(f.client.get(), {}, CellMembership::kTop1);
  const auto pred = [](const std::vector<int>& ids) {
    return !ids.empty() && ids.front() == 0;
  };
  const auto line = finder.FindBoundaryLine(pred, {30, 40}, {70, 60}, 5.0);
  ASSERT_TRUE(line.has_value());
  const Line truth = Line::Bisector({30, 40}, {70, 60});
  const double angle_err =
      std::abs(std::remainder(line->Angle() - truth.Angle(), M_PI));
  EXPECT_LT(angle_err, 1e-5);
  EXPECT_LT(truth.DistanceTo(line->Project({50, 50})), 1e-5);
}

TEST(BinarySearch, FindBoundaryLineValidatorRejects) {
  Fixture f({{30, 50}, {70, 50}});
  LnrEdgeFinder finder(f.client.get(), {}, CellMembership::kTop1);
  const auto pred = [](const std::vector<int>& ids) {
    return !ids.empty() && ids.front() == 0;
  };
  const auto always_reject = [](const FlipPoint&) { return false; };
  EXPECT_FALSE(finder
                   .FindBoundaryLine(pred, {30, 50}, {70, 50}, 5.0,
                                     always_reject)
                   .has_value());
}

TEST(BinarySearch, FindBoundaryLineShrinksOnCurvedBoundary) {
  // Boundary = a d_max circle: the certification must shrink the window
  // until the sagitta fits, producing a near-tangent line.
  Fixture single({{50, 50}});
  // Rebuild with a coverage radius so membership ends at a circle.
  Dataset d(kBox, Schema());
  d.Add({50, 50}, {});
  d.Add({52, 50}, {});
  ServerOptions sopts;
  sopts.max_k = 1;
  sopts.max_radius = 10.0;
  LbsServer server(&d, sopts);
  LnrClient client(&server, {.k = 1});
  LnrEdgeFinder finder(&client, {}, CellMembership::kTop1);
  const auto member = [](const std::vector<int>& ids) {
    return !ids.empty() && ids.front() == 0;
  };
  // Straight up from the tuple: membership ends at the circle y = 60.
  const auto line = finder.FindBoundaryLine(member, {50, 50}, {50, 80}, 8.0);
  ASSERT_TRUE(line.has_value());
  // The tangent at (50, 60) is horizontal.
  const double angle = line->Angle();
  EXPECT_LT(std::min(angle, M_PI - angle), 0.05);
  EXPECT_NEAR(line->Project({50, 55}).y, 60.0, 0.05);
}

TEST(BinarySearch, QueryCostLogarithmicInPrecision) {
  Fixture f({{30, 50}, {70, 50}});
  BinarySearchOptions coarse;
  coarse.delta_fraction = 1e-3;
  BinarySearchOptions fine;
  fine.delta_fraction = 1e-9;
  uint64_t cost_coarse, cost_fine;
  {
    LnrEdgeFinder finder(f.client.get(), coarse, CellMembership::kTop1);
    const uint64_t before = f.client->queries_used();
    finder.FindEdgeOnRay(0, {30, 50}, {31, 50});
    cost_coarse = f.client->queries_used() - before;
  }
  {
    LnrEdgeFinder finder(f.client.get(), fine, CellMembership::kTop1);
    const uint64_t before = f.client->queries_used();
    finder.FindEdgeOnRay(0, {30, 50}, {31, 50});
    cost_fine = f.client->queries_used() - before;
  }
  // 1e6x more precision costs only ~3x log2(1e6) ≈ 60 extra queries.
  EXPECT_LT(cost_fine, cost_coarse + 100);
  EXPECT_GT(cost_fine, cost_coarse);
}

}  // namespace
}  // namespace lbsagg
