// Adapter-vs-legacy regression: the pre-engine estimator monoliths produced
// a fixed bit pattern for a fixed-seed end-to-end run, captured here as a
// trace fingerprint. The thin adapters over the engine must reproduce it
// exactly — same rng draw order, same query order, same FP accumulation
// order, down to the last ulp.

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/lr_agg.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// The exact computation of the pre-refactor baseline harness: three
// fixed-seed LR runs over the 6000-POI USA scenario with the census
// sampler, each trace folded (queries, estimate-bits) into one hash.
TEST(EngineRegression, LegacyTraceFingerprintIsBitIdentical) {
  UsaOptions uopts;
  uopts.num_pois = 6000;
  const UsaScenario usa = BuildUsaScenario(uopts);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  CensusSampler sampler(&usa.census);
  const AggregateSpec spec = AggregateSpec::CountWhere(
      ColumnEquals(usa.columns.category, "restaurant"), "COUNT(restaurants)");

  uint64_t hash = 0;
  for (uint64_t seed = 42; seed < 45; ++seed) {
    LrClient client(&server, {.k = 5, .budget = 4000});
    LrAggOptions opts;
    opts.seed = seed;
    LrAggEstimator est(&client, &sampler, spec, opts);
    const RunResult r = RunWithBudget(MakeHandle(&est), 4000);
    for (const TracePoint& tp : r.trace) {
      uint64_t bits;
      std::memcpy(&bits, &tp.estimate, sizeof bits);
      hash = Mix(hash, tp.queries);
      hash = Mix(hash, bits);
    }
  }
  // Captured from the monolith estimators at the commit before the engine
  // split. Any change here means the refactor altered observable behavior.
  EXPECT_EQ(hash, 0x8e13737b33817270ull);
}

}  // namespace
}  // namespace lbsagg
