#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/lr_agg.h"
#include "core/runner.h"
#include "lbs/client.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace {

UsaScenario SmallUsa(int n = 1200, uint64_t seed = 2015) {
  UsaOptions opts;
  opts.num_pois = n;
  opts.seed = seed;
  return BuildUsaScenario(opts);
}

TEST(LrAgg, CountConvergesToGroundTruth) {
  // Uniform sampling over clustered data is heavy-tailed (rural cells are
  // enormous — Figure 11), so a single-run check needs a generous band; the
  // tight accuracy checks live in UnbiasedAcrossRuns and the weighted test.
  const UsaScenario usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  UniformSampler sampler(usa.dataset->box());
  LrAggOptions opts;
  opts.seed = 99;
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  for (int i = 0; i < 600; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), 1200.0, 0.5 * 1200.0);
}

TEST(LrAgg, UnbiasedAcrossRuns) {
  // The mean of many short independent runs must land on the ground truth
  // (each run's estimate is exactly unbiased, so the run-mean concentrates).
  const UsaScenario usa = SmallUsa(600);
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  UniformSampler sampler(usa.dataset->box());
  RunningStats means;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    LrClient client(&server, {.k = 3});
    LrAggOptions opts;
    opts.seed = seed;
    LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    for (int i = 0; i < 60; ++i) est.Step();
    means.Add(est.Estimate());
  }
  EXPECT_NEAR(means.mean(), 600.0, 3.0 * means.StandardError() + 15.0);
}

TEST(LrAgg, CountWithPassThroughCondition) {
  const UsaScenario usa = SmallUsa();
  const double truth =
      usa.dataset->GroundTruthCount(CategoryIs(usa.columns, "school"));
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  client.SetPassThroughFilter(CategoryIs(usa.columns, "school"));
  UniformSampler sampler(usa.dataset->box());
  LrAggOptions opts;
  opts.seed = 101;
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  for (int i = 0; i < 300; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), truth, 0.2 * truth);
}

TEST(LrAgg, CountWithPostProcessedCondition) {
  const UsaScenario usa = SmallUsa();
  const double truth = usa.dataset->GroundTruthCount(OpenSunday(usa.columns));
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  UniformSampler sampler(usa.dataset->box());
  LrAggOptions opts;
  opts.seed = 103;
  LrAggEstimator est(
      &client, &sampler,
      AggregateSpec::CountWhere(ColumnIsTrue(usa.columns.open_sunday),
                                "COUNT(open_sunday)"),
      opts);
  for (int i = 0; i < 400; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), truth, 0.2 * truth);
}

TEST(LrAgg, SumAggregate) {
  const UsaScenario usa = SmallUsa();
  const int enr = usa.columns.enrollment;
  const double truth = usa.dataset->GroundTruthSum(
      nullptr, [enr](const Tuple& t) { return std::get<double>(t.values[enr]); });
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  CensusSampler sampler(&usa.census);
  // SUM over a log-normal attribute is heavy-tailed; average a few seeds
  // under weighted sampling (the unbiasedness itself is covered by the
  // multi-run mean tests).
  double total = 0.0;
  for (uint64_t seed = 107; seed < 110; ++seed) {
    LrClient client(&server, {.k = 5});
    LrAggOptions opts;
    opts.seed = seed;
    LrAggEstimator est(&client, &sampler,
                       AggregateSpec::Sum(enr, "SUM(enrollment)"), opts);
    for (int i = 0; i < 300; ++i) est.Step();
    total += est.Estimate();
  }
  EXPECT_NEAR(total / 3.0, truth, 0.3 * truth);
}

TEST(LrAgg, AvgAggregateAsRatio) {
  const UsaScenario usa = SmallUsa();
  const int rating = usa.columns.rating;
  const TupleFilter is_restaurant = CategoryIs(usa.columns, "restaurant");
  const double sum = usa.dataset->GroundTruthSum(
      is_restaurant,
      [rating](const Tuple& t) { return std::get<double>(t.values[rating]); });
  const double count = usa.dataset->GroundTruthCount(is_restaurant);
  const double truth = sum / count;

  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  client.SetPassThroughFilter(is_restaurant);
  UniformSampler sampler(usa.dataset->box());
  LrAggOptions opts;
  opts.seed = 109;
  LrAggEstimator est(&client, &sampler,
                     AggregateSpec::Avg(rating, "AVG(rating)"), opts);
  for (int i = 0; i < 150; ++i) est.Step();
  // Ratio estimators converge fast: ratings are in [1,5].
  EXPECT_NEAR(est.Estimate(), truth, 0.08 * truth);
}

TEST(LrAgg, WeightedSamplingStaysUnbiased) {
  // §5.2: estimates stay unbiased under census-weighted sampling even
  // though the census only loosely tracks the tuples.
  const UsaScenario usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  CensusSampler sampler(&usa.census);
  LrAggOptions opts;
  opts.seed = 113;
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  for (int i = 0; i < 300; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), 1200.0, 0.15 * 1200.0);
}

TEST(LrAgg, MaxRadiusEmptyResultsHandled) {
  // A tight coverage radius makes most random queries return empty; the
  // estimator must stay unbiased (empty => 0 contribution, p(t) sums < 1).
  UsaOptions uopts;
  uopts.num_pois = 400;
  const UsaScenario usa = BuildUsaScenario(uopts);
  ServerOptions sopts;
  sopts.max_k = 3;
  sopts.max_radius = 120.0;
  LbsServer server(usa.dataset.get(), sopts);
  LrClient client(&server, {.k = 3});
  UniformSampler sampler(usa.dataset->box());
  LrAggOptions opts;
  opts.seed = 127;
  // Monte Carlo's cover-circle argument assumes untruncated results near
  // the cell; keep exact mode under dmax.
  opts.cell.monte_carlo = false;
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  for (int i = 0; i < 500; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), 400.0, 0.25 * 400.0);
}

TEST(LrAgg, AdaptiveHUsesMoreOfTheResult) {
  const UsaScenario usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  UniformSampler sampler(usa.dataset->box());

  LrClient fixed_client(&server, {.k = 5});
  LrAggOptions fixed;
  fixed.adaptive_h = false;
  fixed.fixed_h = 1;
  fixed.seed = 131;
  LrAggEstimator fixed_est(&fixed_client, &sampler, AggregateSpec::Count(),
                           fixed);

  LrClient adaptive_client(&server, {.k = 5});
  LrAggOptions adaptive;
  adaptive.adaptive_h = true;
  adaptive.seed = 131;
  LrAggEstimator adaptive_est(&adaptive_client, &sampler,
                              AggregateSpec::Count(), adaptive);

  for (int i = 0; i < 120; ++i) {
    fixed_est.Step();
    adaptive_est.Step();
  }
  // Both must be in the right ballpark; adaptive must actually run.
  EXPECT_NEAR(fixed_est.Estimate(), 1200.0, 0.35 * 1200.0);
  EXPECT_NEAR(adaptive_est.Estimate(), 1200.0, 0.35 * 1200.0);
}

TEST(LrAgg, UnbiasedUnderProminenceRanking) {
  // §5.3: with "prominence" ranking the nearest tuple can be outranked by a
  // popular one; the estimator re-sorts by the returned distances, so the
  // estimate stays correct as long as the nearest neighbor is in the top-k.
  const UsaScenario usa = SmallUsa(800);
  ServerOptions sopts;
  sopts.max_k = 5;
  sopts.ranking = RankingMode::kProminence;
  sopts.prominence_column = "popularity";
  sopts.prominence_weight = 60.0;  // strong: reorders most answers
  sopts.max_radius = 600.0;
  LbsServer server(usa.dataset.get(), sopts);
  CensusSampler sampler(&usa.census);
  double total = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    LrClient client(&server, {.k = 5});
    LrAggOptions opts;
    opts.seed = seed;
    opts.adaptive_h = false;
    opts.fixed_h = 1;
    opts.cell.monte_carlo = false;  // exact cells under the coverage radius
    LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
    for (int i = 0; i < 200; ++i) est.Step();
    total += est.Estimate();
  }
  EXPECT_NEAR(total / 3.0, 800.0, 0.25 * 800.0);
}

TEST(LrAgg, WorksOverTrilaterationClient) {
  // A Skout/Momo-class service (ids + distances only) estimated with the
  // full LR pipeline through the trilaterating client.
  const UsaScenario usa = SmallUsa(600);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  CensusSampler sampler(&usa.census);
  TrilaterationClient client(&server, {.k = 5});
  LrAggOptions opts;
  opts.seed = 17;
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), opts);
  for (int i = 0; i < 200; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), 600.0, 0.25 * 600.0);
}

TEST(LrAgg, TraceIsMonotoneInQueries) {
  const UsaScenario usa = SmallUsa(500);
  LbsServer server(usa.dataset.get(), {.max_k = 3});
  LrClient client(&server, {.k = 3});
  UniformSampler sampler(usa.dataset->box());
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {});
  for (int i = 0; i < 50; ++i) est.Step();
  const auto& trace = est.trace();
  ASSERT_EQ(trace.size(), 50u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].queries, trace[i - 1].queries);
  }
}

TEST(LrAgg, DiagnosticsAccount) {
  const UsaScenario usa = SmallUsa(500);
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  CensusSampler sampler(&usa.census);
  LrAggEstimator est(&client, &sampler, AggregateSpec::Count(), {});
  for (int i = 0; i < 50; ++i) est.Step();
  const LrAggDiagnostics& d = est.diagnostics();
  EXPECT_EQ(d.rounds, 50u);
  EXPECT_GT(d.cells_exact + d.cells_monte_carlo, 0u);
  EXPECT_LE(d.cell_queries, client.queries_used());
  size_t h_total = 0;
  for (size_t h : d.h_used) h_total += h;
  EXPECT_EQ(h_total, d.cells_exact + d.cells_monte_carlo);
}

TEST(LrAgg, PositionConditionRestrictsRegion) {
  const UsaScenario usa = SmallUsa();
  const Box west({0, 0}, {2200, 2600});
  double truth = 0.0;
  for (const Tuple& t : usa.dataset->tuples()) {
    if (west.Contains(t.pos)) truth += 1.0;
  }
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  LrClient client(&server, {.k = 5});
  UniformSampler sampler(usa.dataset->box());
  AggregateSpec spec = AggregateSpec::Count();
  spec.position_condition = [west](const Vec2& p) {
    return west.Contains(p);
  };
  LrAggOptions opts;
  opts.seed = 137;
  LrAggEstimator est(&client, &sampler, spec, opts);
  for (int i = 0; i < 400; ++i) est.Step();
  EXPECT_NEAR(est.Estimate(), truth, 0.2 * truth);
}

}  // namespace
}  // namespace lbsagg
