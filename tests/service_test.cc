// Unit tests of the estimation service (service/): session lifecycle,
// admission control, cross-session dedup, deadlines, cancellation, and the
// event/trigger registry. The load-scale and worker-count determinism
// contracts live in sweep_determinism_test.cc; this file pins the per-call
// semantics.

#include "service/service.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "engine/engine.h"
#include "lbs/server.h"
#include "service/admission.h"
#include "service/dedup.h"
#include "service/event.h"
#include "transport/simulated_transport.h"
#include "workload/scenarios.h"

namespace lbsagg {
namespace service {
namespace {

const UsaScenario& SmallUsa() {
  static const UsaScenario usa = BuildUsaScenario({.num_pois = 1200});
  return usa;
}

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

// The solo oracle: the session's engine stack run alone against the server,
// no service, no dedup — what the spec's results must be bit-identical to.
std::vector<RunResult> RunSolo(const LbsServer& server, const SessionSpec& spec,
                               size_t max_rounds = 1u << 20) {
  ClientOptions copts;
  copts.k = spec.k;
  copts.budget = spec.budget;
  copts.memoize_queries = spec.memoize_queries;

  UniformSampler uniform(server.dataset().box());
  const QuerySampler* sampler =
      spec.sampler != nullptr ? spec.sampler : &uniform;

  std::unique_ptr<LbsClient> client;
  std::unique_ptr<engine::CellResolver> resolver;
  switch (spec.family) {
    case EstimatorFamily::kLr: {
      auto lr = std::make_unique<LrClient>(&server, copts);
      LrAggOptions opts = spec.lr;
      opts.seed = spec.seed;
      resolver = std::make_unique<engine::LrCellResolver>(lr.get(), sampler, opts);
      client = std::move(lr);
      break;
    }
    case EstimatorFamily::kLnr: {
      auto lnr = std::make_unique<LnrClient>(&server, copts);
      LnrAggOptions opts = spec.lnr;
      opts.seed = spec.seed;
      resolver =
          std::make_unique<engine::LnrCellResolver>(lnr.get(), sampler, opts);
      client = std::move(lnr);
      break;
    }
    case EstimatorFamily::kNno: {
      auto lr = std::make_unique<LrClient>(&server, copts);
      NnoOptions opts = spec.nno;
      opts.seed = spec.seed;
      resolver = std::make_unique<engine::NnoProbeResolver>(lr.get(), opts);
      client = std::move(lr);
      break;
    }
  }
  engine::EstimationEngine eng(resolver.get());
  if (spec.aggregates.empty()) {
    eng.AddAggregate(AggregateSpec::Count());
  } else {
    for (const AggregateSpec& agg : spec.aggregates) eng.AddAggregate(agg);
  }
  return RunEngineWithBudget(&eng, spec.budget, max_rounds);
}

void ExpectBitIdentical(const std::vector<RunResult>& a,
                        const std::vector<RunResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].queries, b[i].queries);
    EXPECT_TRUE(SameBits(a[i].final_estimate, b[i].final_estimate));
    ASSERT_EQ(a[i].trace.size(), b[i].trace.size());
    for (size_t j = 0; j < a[i].trace.size(); ++j) {
      EXPECT_EQ(a[i].trace[j].queries, b[i].trace[j].queries);
      EXPECT_TRUE(SameBits(a[i].trace[j].estimate, b[i].trace[j].estimate));
    }
  }
}

// --- Lifecycle --------------------------------------------------------------

TEST(ServiceLifecycle, SubmitRunPollCompletes) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});

  SessionSpec spec;
  spec.family = EstimatorFamily::kNno;
  spec.budget = 120;
  spec.seed = 9;
  const SessionId id = svc.Submit(spec);
  ASSERT_NE(id, kInvalidSessionId);
  EXPECT_EQ(svc.Poll(id).state, SessionState::kQueued);

  svc.RunUntilIdle();

  const SessionStatus done = svc.Poll(id);
  EXPECT_EQ(done.state, SessionState::kCompleted);
  EXPECT_GE(done.queries_used, spec.budget);
  ASSERT_EQ(done.results.size(), 1u);
  EXPECT_GT(done.results[0].trace.size(), 0u);
  EXPECT_GT(done.results[0].final_estimate, 0.0);
  EXPECT_EQ(done.rounds, done.results[0].trace.size());
  EXPECT_GE(done.end_ms, done.start_ms);
  EXPECT_EQ(svc.completed(), 1u);
}

TEST(ServiceLifecycle, PollUnknownSession) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});
  const SessionStatus missing = svc.Poll(12345);
  EXPECT_EQ(missing.id, kInvalidSessionId);
  EXPECT_EQ(missing.detail, "unknown session");
}

TEST(ServiceLifecycle, InvalidSpecsAreRejectedTyped) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});

  SessionSpec zero_budget;
  zero_budget.budget = 0;
  EXPECT_EQ(svc.Poll(svc.Submit(zero_budget)).state, SessionState::kRejected);

  SessionSpec bad_backend;
  bad_backend.backend = 7;
  const SessionStatus status = svc.Poll(svc.Submit(bad_backend));
  EXPECT_EQ(status.state, SessionState::kRejected);
  EXPECT_EQ(status.detail, "unknown backend");
  EXPECT_EQ(svc.rejected(), 2u);
}

TEST(ServiceLifecycle, MultiAggregateSessionSharesOneBudget) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});

  SessionSpec spec;
  spec.family = EstimatorFamily::kLr;
  spec.budget = 250;
  spec.seed = 4;
  spec.aggregates = {
      AggregateSpec::Count(),
      AggregateSpec::Sum(usa.columns.rating, "SUM(rating)"),
      AggregateSpec::Avg(usa.columns.rating, "AVG(rating)"),
  };
  const SessionId id = svc.Submit(spec);
  svc.RunUntilIdle();

  const SessionStatus done = svc.Poll(id);
  ASSERT_EQ(done.results.size(), 3u);
  // All three aggregates report the same (single) query budget.
  EXPECT_EQ(done.results[0].queries, done.results[2].queries);
  ExpectBitIdentical(done.results, RunSolo(server, spec));
}

TEST(ServiceLifecycle, ForgetDropsTerminalSessionsOnly) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});

  SessionSpec spec;
  spec.budget = 500;
  const SessionId id = svc.Submit(spec);
  EXPECT_FALSE(svc.Forget(id));  // still queued
  ASSERT_TRUE(svc.RunSlice());
  EXPECT_FALSE(svc.Forget(id));  // running
  svc.RunUntilIdle();

  EXPECT_TRUE(svc.Forget(id));
  EXPECT_FALSE(svc.Forget(id));  // gone
  EXPECT_EQ(svc.Poll(id).id, kInvalidSessionId);
  EXPECT_EQ(svc.completed(), 1u);  // tallies survive the record
}

// --- Solo equality & cross-session dedup ------------------------------------

TEST(ServiceDedup, ConcurrentSessionsMatchSoloRunsAndSaveQueries) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  ServiceOptions options;
  options.admission.max_active = 4;
  options.slice_rounds = 1;  // interleave sessions round by round
  EstimationService svc({{.meta = &server}}, options);

  // Two identical NNO sessions (same seed → same query stream: the dedup
  // best case) plus an LR session sharing the same hot region.
  std::vector<SessionSpec> specs(3);
  specs[0].family = EstimatorFamily::kNno;
  specs[0].budget = 150;
  specs[0].seed = 11;
  specs[1] = specs[0];
  specs[2].family = EstimatorFamily::kLr;
  specs[2].budget = 150;
  specs[2].seed = 11;

  std::vector<SessionId> ids;
  for (const SessionSpec& spec : specs) ids.push_back(svc.Submit(spec));
  svc.RunUntilIdle();

  uint64_t session_hits = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const SessionStatus done = svc.Poll(ids[i]);
    ASSERT_EQ(done.state, SessionState::kCompleted);
    // Mirror charging: the session's entire result set is bit-identical to
    // running it alone, dedup notwithstanding.
    ExpectBitIdentical(done.results, RunSolo(server, specs[i]));
    session_hits += done.dedup_hits;
  }

  ASSERT_NE(svc.dedup(), nullptr);
  const DedupStats stats = svc.dedup()->Stats();
  // The twin session's queries are all registry hits.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.saved_attempts, stats.hits);
  EXPECT_EQ(session_hits, stats.hits);
  EXPECT_EQ(stats.lookups, stats.hits + stats.entries);
}

TEST(ServiceDedup, DisabledDedupStillMatchesSolo) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  ServiceOptions options;
  options.dedup = false;
  options.admission.max_active = 2;
  EstimationService svc({{.meta = &server}}, options);
  EXPECT_EQ(svc.dedup(), nullptr);

  SessionSpec spec;
  spec.family = EstimatorFamily::kNno;
  spec.budget = 100;
  spec.seed = 3;
  const SessionId a = svc.Submit(spec);
  const SessionId b = svc.Submit(spec);
  svc.RunUntilIdle();
  ExpectBitIdentical(svc.Poll(a).results, RunSolo(server, spec));
  ExpectBitIdentical(svc.Poll(b).results, RunSolo(server, spec));
  EXPECT_EQ(svc.Poll(a).dedup_hits, 0u);
}

TEST(ServiceDedup, SecondBackendHasItsOwnRegistry) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server_a(usa.dataset.get(), {.max_k = 5});
  LbsServer server_b(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server_a}, {.meta = &server_b}});

  SessionSpec spec;
  spec.family = EstimatorFamily::kNno;
  spec.budget = 80;
  spec.seed = 5;
  svc.Submit(spec);
  spec.backend = 1;
  const SessionId on_b = svc.Submit(spec);
  svc.RunUntilIdle();

  EXPECT_EQ(svc.Poll(on_b).state, SessionState::kCompleted);
  ASSERT_EQ(svc.num_backends(), 2u);
  // Same query streams, different registries: no cross-backend sharing.
  EXPECT_EQ(svc.dedup(0)->Stats().hits, 0u);
  EXPECT_EQ(svc.dedup(1)->Stats().hits, 0u);
  EXPECT_GT(svc.dedup(1)->Stats().entries, 0u);
}

// A DedupTransport over a counting inner transport: hits never reach the
// backend, and in-flight followers get the owner's page.
class CountingTransport final : public LbsTransport {
 public:
  explicit CountingTransport(const LbsServer* server) : server_(server) {}

  TransportPlan Prepare(const Vec2&, int) override {
    ++prepares;
    TransportPlan plan;
    plan.ticket = next_ticket_++;
    return plan;
  }
  TransportReply Fulfill(const TransportPlan&, const Vec2& q, int k,
                         const TupleFilter& filter) const override {
    ++fulfills;
    return {server_->Query(q, k, filter), TransportOutcome::kOk, 1, 0.0};
  }

  int prepares = 0;
  mutable int fulfills = 0;

 private:
  const LbsServer* server_;
  uint64_t next_ticket_ = 0;
};

TEST(ServiceDedup, TransportUnitMirrorCharging) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  CountingTransport inner(&server);
  QueryDedupRegistry registry;
  DedupTransport wire(&inner, &registry);

  const Vec2 q{1000.0, 800.0};
  const TransportReply first = wire.Query(q, 3, nullptr);
  const TransportReply second = wire.Query(q, 3, nullptr);
  EXPECT_EQ(inner.prepares, 1);
  EXPECT_EQ(inner.fulfills, 1);
  EXPECT_EQ(first.attempts, 1);
  EXPECT_EQ(second.attempts, 1);
  ASSERT_EQ(first.hits.size(), second.hits.size());
  for (size_t i = 0; i < first.hits.size(); ++i) {
    EXPECT_EQ(first.hits[i].tuple_id, second.hits[i].tuple_id);
  }

  // A different k is a different question.
  (void)wire.Query(q, 5, nullptr);
  EXPECT_EQ(inner.prepares, 2);

  const DedupStats stats = registry.Stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.saved_attempts, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

// --- Admission control ------------------------------------------------------

TEST(ServiceAdmission, QueueOverflowShedsTyped) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  ServiceOptions options;
  options.admission.queue_capacity = 2;
  options.admission.max_active = 1;
  EstimationService svc({{.meta = &server}}, options);

  SessionSpec spec;
  spec.budget = 40;
  const SessionId a = svc.Submit(spec);
  const SessionId b = svc.Submit(spec);
  const SessionId c = svc.Submit(spec);  // over capacity
  EXPECT_EQ(svc.Poll(a).state, SessionState::kQueued);
  EXPECT_EQ(svc.Poll(b).state, SessionState::kQueued);
  const SessionStatus shed = svc.Poll(c);
  EXPECT_EQ(shed.state, SessionState::kRejected);
  EXPECT_EQ(shed.detail, "admission queue full");
  EXPECT_EQ(svc.rejected(), 1u);

  svc.RunUntilIdle();
  EXPECT_EQ(svc.Poll(a).state, SessionState::kCompleted);
  EXPECT_EQ(svc.Poll(b).state, SessionState::kCompleted);
  EXPECT_EQ(svc.Poll(c).state, SessionState::kRejected);
}

TEST(ServiceAdmission, FifoStartsInArrivalOrder) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  ServiceOptions options;
  options.admission.max_active = 1;
  EstimationService svc({{.meta = &server}}, options);

  std::vector<SessionId> started;
  svc.triggers().Add(SessionEventKind::kStarted,
                     [&](const SessionEvent& e) { started.push_back(e.id); });

  SessionSpec spec;
  spec.budget = 30;
  std::vector<SessionId> ids;
  for (int i = 0; i < 3; ++i) {
    spec.seed = static_cast<uint64_t>(i + 1);
    ids.push_back(svc.Submit(spec));
  }
  svc.RunUntilIdle();
  EXPECT_EQ(started, ids);
}

TEST(ServiceAdmission, FairShareInterleavesPrincipals) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  ServiceOptions options;
  options.admission.policy = AdmissionPolicy::kFairShare;
  options.admission.max_active = 1;
  EstimationService svc({{.meta = &server}}, options);

  std::vector<std::string> started;
  svc.triggers().Add(SessionEventKind::kStarted, [&](const SessionEvent& e) {
    started.push_back(e.principal);
  });

  SessionSpec spec;
  spec.budget = 30;
  spec.principal = "heavy";
  svc.Submit(spec);
  svc.Submit(spec);
  svc.Submit(spec);
  spec.principal = "light";
  svc.Submit(spec);

  svc.RunUntilIdle();
  // The light principal is served after one heavy session, not after three.
  const std::vector<std::string> want = {"heavy", "light", "heavy", "heavy"};
  EXPECT_EQ(started, want);
}

TEST(ServiceAdmission, FairShareQueueUnit) {
  AdmissionQueue queue({.policy = AdmissionPolicy::kFairShare,
                        .queue_capacity = 8,
                        .max_active = 1});
  EXPECT_TRUE(queue.TryEnqueue(1, "a"));
  EXPECT_TRUE(queue.TryEnqueue(2, "a"));
  EXPECT_TRUE(queue.TryEnqueue(3, "b"));
  EXPECT_TRUE(queue.TryEnqueue(4, "c"));
  EXPECT_TRUE(queue.Remove(2));
  EXPECT_FALSE(queue.Remove(2));
  EXPECT_EQ(queue.PopNext(), 1u);
  EXPECT_EQ(queue.PopNext(), 3u);
  EXPECT_EQ(queue.PopNext(), 4u);
  EXPECT_EQ(queue.PopNext(), kInvalidSessionId);
  EXPECT_TRUE(queue.empty());
}

// --- Cancel & deadlines -----------------------------------------------------

TEST(ServiceCancel, QueuedAndRunningSessions) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});

  ServiceOptions options;
  options.admission.max_active = 1;
  EstimationService svc({{.meta = &server}}, options);

  SessionSpec spec;
  spec.budget = 500;
  const SessionId running = svc.Submit(spec);
  const SessionId queued = svc.Submit(spec);

  // A few slices: the first session is mid-run, the second still queued.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(svc.RunSlice());
  ASSERT_EQ(svc.Poll(running).state, SessionState::kRunning);
  ASSERT_EQ(svc.Poll(queued).state, SessionState::kQueued);

  EXPECT_TRUE(svc.Cancel(queued));
  const SessionStatus q = svc.Poll(queued);
  EXPECT_EQ(q.state, SessionState::kCancelled);
  EXPECT_TRUE(q.results.empty());

  EXPECT_TRUE(svc.Cancel(running));
  const SessionStatus r = svc.Poll(running);
  EXPECT_EQ(r.state, SessionState::kCancelled);
  ASSERT_EQ(r.results.size(), 1u);
  EXPECT_GT(r.results[0].trace.size(), 0u);  // partial results survive

  EXPECT_FALSE(svc.Cancel(running));  // already terminal
  EXPECT_FALSE(svc.Cancel(999));      // unknown
  EXPECT_FALSE(svc.RunSlice());       // nothing left
  EXPECT_EQ(svc.cancelled(), 2u);
}

TEST(ServiceDeadline, VirtualClockDeadlineYieldsPartialResults) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  SimulatedTransportOptions topts;
  topts.latency.fixed_ms = 10.0;  // every backend query costs 10 virtual ms
  SimulatedTransport wire(&server, topts);

  ServiceOptions options;
  options.clock_ms = [&wire] { return wire.VirtualNowMs(); };
  EstimationService svc({{.meta = &server, .wire = &wire}}, options);

  SessionSpec spec;
  spec.family = EstimatorFamily::kNno;
  spec.budget = 100000;  // deadline, not budget, ends this session
  spec.deadline_ms = 400;
  const SessionId id = svc.Submit(spec);
  svc.RunUntilIdle();

  const SessionStatus done = svc.Poll(id);
  EXPECT_EQ(done.state, SessionState::kDeadlineExceeded);
  ASSERT_EQ(done.results.size(), 1u);
  EXPECT_GT(done.results[0].trace.size(), 0u);
  EXPECT_LT(done.queries_used, spec.budget);
  EXPECT_GT(done.latency_ms, spec.deadline_ms);
  EXPECT_EQ(svc.deadline_exceeded(), 1u);
}

TEST(ServiceDeadline, QueuedSessionCanExpireBeforeStarting) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  SimulatedTransportOptions topts;
  topts.latency.fixed_ms = 10.0;
  SimulatedTransport wire(&server, topts);

  ServiceOptions options;
  options.clock_ms = [&wire] { return wire.VirtualNowMs(); };
  options.admission.max_active = 1;
  EstimationService svc({{.meta = &server, .wire = &wire}}, options);

  SessionSpec head;
  head.family = EstimatorFamily::kNno;
  head.budget = 200;
  const SessionId first = svc.Submit(head);

  SessionSpec tail = head;
  tail.deadline_ms = 50;  // the head session alone takes far longer
  const SessionId starved = svc.Submit(tail);

  svc.RunUntilIdle();
  EXPECT_EQ(svc.Poll(first).state, SessionState::kCompleted);
  const SessionStatus expired = svc.Poll(starved);
  EXPECT_EQ(expired.state, SessionState::kDeadlineExceeded);
  EXPECT_TRUE(expired.results.empty());  // never ran
  EXPECT_EQ(expired.start_ms, -1);
}

// --- Events -----------------------------------------------------------------

TEST(ServiceEvents, LifecycleFiresInOrder) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});

  std::vector<SessionEventKind> kinds;
  svc.triggers().AddAll(
      [&](const SessionEvent& e) { kinds.push_back(e.kind); });

  SessionSpec spec;
  spec.budget = 30;
  const SessionId id = svc.Submit(spec);
  svc.RunUntilIdle();

  ASSERT_GE(kinds.size(), 4u);
  EXPECT_EQ(kinds.front(), SessionEventKind::kSubmitted);
  EXPECT_EQ(kinds[1], SessionEventKind::kStarted);
  EXPECT_EQ(kinds[kinds.size() - 2], SessionEventKind::kProgress);
  EXPECT_EQ(kinds.back(), SessionEventKind::kFinished);

  const SessionStatus done = svc.Poll(id);
  EXPECT_EQ(done.state, SessionState::kCompleted);
  // One progress event per scheduler slice; slice_rounds=1 → one per round.
  EXPECT_EQ(kinds.size() - 3, done.rounds);
}

TEST(ServiceEvents, FinishedTriggerSeesFinalCounts) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});

  SessionEvent finished;
  svc.triggers().Add(SessionEventKind::kFinished,
                     [&](const SessionEvent& e) { finished = e; });

  SessionSpec spec;
  spec.budget = 50;
  spec.principal = "tenant-7";
  const SessionId id = svc.Submit(spec);
  svc.RunUntilIdle();

  const SessionStatus done = svc.Poll(id);
  EXPECT_EQ(finished.id, id);
  EXPECT_EQ(finished.state, SessionState::kCompleted);
  EXPECT_EQ(finished.principal, "tenant-7");
  EXPECT_EQ(finished.queries_used, done.queries_used);
  EXPECT_EQ(finished.rounds, done.rounds);
}

TEST(ServiceEvents, RejectionFiresRejectedEvent) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  ServiceOptions options;
  options.admission.queue_capacity = 0;
  EstimationService svc({{.meta = &server}}, options);

  int rejected = 0;
  svc.triggers().Add(SessionEventKind::kRejected,
                     [&](const SessionEvent&) { ++rejected; });
  SessionSpec spec;
  spec.budget = 10;
  svc.Submit(spec);
  EXPECT_EQ(rejected, 1);
}

TEST(TriggerRegistry, RemoveAndReentrantMutation) {
  TriggerRegistry registry;
  std::vector<int> fired;

  const auto h1 = registry.Add(SessionEventKind::kProgress,
                               [&](const SessionEvent&) { fired.push_back(1); });
  TriggerRegistry::Handle h2 = TriggerRegistry::kInvalidHandle;
  h2 = registry.Add(SessionEventKind::kProgress, [&](const SessionEvent&) {
    fired.push_back(2);
    registry.Remove(h2);  // self-removal mid-fire
  });
  registry.AddAll([&](const SessionEvent&) { fired.push_back(3); });
  EXPECT_EQ(registry.size(), 3u);

  SessionEvent progress;
  progress.kind = SessionEventKind::kProgress;
  registry.Fire(progress);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));

  registry.Fire(progress);  // h2 gone now
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 1, 3}));
  EXPECT_EQ(registry.size(), 2u);

  EXPECT_TRUE(registry.Remove(h1));
  EXPECT_FALSE(registry.Remove(h1));

  SessionEvent finished;
  finished.kind = SessionEventKind::kFinished;
  registry.Fire(finished);  // only the AddAll trigger matches
  EXPECT_EQ(fired.back(), 3);
}

// --- Diagnostics ------------------------------------------------------------

TEST(ServiceDiagnostics, JsonCarriesTalliesAndDedup) {
  const UsaScenario& usa = SmallUsa();
  LbsServer server(usa.dataset.get(), {.max_k = 5});
  EstimationService svc({{.meta = &server}});

  SessionSpec spec;
  spec.budget = 30;
  svc.Submit(spec);
  svc.Submit(spec);
  svc.RunUntilIdle();

  const std::string json = svc.diagnostics_json();
  EXPECT_NE(json.find("\"submitted\":2"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"fifo\""), std::string::npos);
  EXPECT_NE(json.find("\"saved_queries\""), std::string::npos);
}

}  // namespace
}  // namespace service
}  // namespace lbsagg
