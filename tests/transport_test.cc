// Behavior of the transport layer: the zero-overhead direct wire, the
// simulated policy pipeline (latency, token bucket, fault injection,
// retries), per-attempt budget accounting (§2.1), and metrics.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/runner.h"
#include "lbs/client.h"
#include "lbs/dataset.h"
#include "lbs/server.h"
#include "transport/metrics.h"
#include "transport/policies.h"
#include "transport/simulated_transport.h"
#include "util/rng.h"

namespace lbsagg {
namespace {

const Box kBox({0, 0}, {100, 100});

Dataset MakeDataset(int n, uint64_t seed) {
  Schema schema;
  schema.AddColumn("score", AttrType::kDouble);
  Dataset d(kBox, schema);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    d.Add(kBox.SamplePoint(rng), {rng.Uniform(1.0, 5.0)});
  }
  return d;
}

std::vector<Vec2> RandomPoints(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) pts.push_back(kBox.SamplePoint(rng));
  return pts;
}

// ---------------------------------------------------------------------------
// DirectTransport

TEST(DirectTransport, MatchesServerExactly) {
  const Dataset dataset = MakeDataset(200, 1);
  const LbsServer server(&dataset, {.max_k = 10});
  DirectTransport transport(&server);
  for (const Vec2& q : RandomPoints(50, 2)) {
    const TransportReply reply = transport.Query(q, 5, nullptr);
    EXPECT_EQ(reply.outcome, TransportOutcome::kOk);
    EXPECT_EQ(reply.attempts, 1);
    EXPECT_EQ(reply.latency_ms, 0.0);
    const std::vector<ServerHit> direct = server.Query(q, 5, nullptr);
    ASSERT_EQ(reply.hits.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(reply.hits[i].tuple_id, direct[i].tuple_id);
      EXPECT_EQ(reply.hits[i].distance, direct[i].distance);
    }
  }
}

TEST(DirectTransport, ClientTraceIdenticalToNullWire) {
  const Dataset dataset = MakeDataset(300, 3);
  const LbsServer server(&dataset, {.max_k = 10});
  DirectTransport transport(&server);

  LrClient bare(&server, {.k = 5});
  LrClient wired(&server, {.k = 5}, &transport);
  bare.EnableQueryLog();
  wired.EnableQueryLog();
  for (const Vec2& q : RandomPoints(100, 4)) {
    const auto a = bare.Query(q);
    const auto b = wired.Query(q);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
  EXPECT_EQ(bare.queries_used(), wired.queries_used());
  EXPECT_EQ(bare.query_log().size(), wired.query_log().size());
}

// ---------------------------------------------------------------------------
// Policies

TEST(TokenBucket, RefillsAtConfiguredRate) {
  TokenBucket bucket({.capacity = 2.0, .refill_per_sec = 10.0});  // 100 ms
  EXPECT_EQ(bucket.AcquireAt(0.0), 0.0);   // burst token 1
  EXPECT_EQ(bucket.AcquireAt(0.0), 0.0);   // burst token 2
  EXPECT_EQ(bucket.AcquireAt(0.0), 100.0);  // empty: wait one refill
  EXPECT_EQ(bucket.AcquireAt(0.0), 200.0);  // queued behind the previous
  EXPECT_EQ(bucket.AcquireAt(500.0), 500.0);  // refilled by then
}

TEST(TokenBucket, DisabledPassesThrough) {
  TokenBucket bucket({.capacity = 0.0, .refill_per_sec = 1.0});
  EXPECT_FALSE(bucket.enabled());
  EXPECT_EQ(bucket.AcquireAt(42.0), 42.0);
}

TEST(FaultInjector, DrawsArePureFunctions) {
  const FaultOptions opts{.transient_error_rate = 0.3,
                          .timeout_rate = 0.2,
                          .truncate_rate = 0.1};
  const FaultInjector a(opts, 99);
  const FaultInjector b(opts, 99);
  int faults = 0;
  for (uint64_t ticket = 0; ticket < 500; ++ticket) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const AttemptFault fa = a.Draw(ticket, attempt);
      const AttemptFault fb = b.Draw(ticket, attempt);
      EXPECT_EQ(fa.kind, fb.kind);
      EXPECT_EQ(fa.truncate_u, fb.truncate_u);
      if (fa.kind != AttemptFault::Kind::kNone) ++faults;
    }
  }
  // ~60% fault rate over 1500 draws.
  EXPECT_GT(faults, 700);
  EXPECT_LT(faults, 1100);
}

TEST(LatencyModel, LognormalIsDeterministicAndClamped) {
  LatencyOptions opts;
  opts.kind = LatencyOptions::Kind::kLognormal;
  opts.lognormal_median_ms = 50.0;
  opts.min_ms = 5.0;
  const LatencyModel model(opts);
  double total = 0.0;
  for (uint64_t ticket = 0; ticket < 1000; ++ticket) {
    const double ms = model.Sample(7, ticket, 1);
    EXPECT_EQ(ms, model.Sample(7, ticket, 1));
    EXPECT_GE(ms, 5.0);
    total += ms;
  }
  // Lognormal mean = median * exp(sigma^2/2) ≈ 57 ms; generous bounds.
  EXPECT_GT(total / 1000, 30.0);
  EXPECT_LT(total / 1000, 120.0);
}

// ---------------------------------------------------------------------------
// SimulatedTransport

TEST(SimulatedTransport, CleanNetworkBehavesLikeDirect) {
  const Dataset dataset = MakeDataset(200, 5);
  const LbsServer server(&dataset, {.max_k = 10});
  SimulatedTransport transport(&server, {});  // no faults, no rate limit
  for (const Vec2& q : RandomPoints(30, 6)) {
    const TransportReply reply = transport.Query(q, 5, nullptr);
    EXPECT_EQ(reply.outcome, TransportOutcome::kOk);
    EXPECT_EQ(reply.attempts, 1);
    EXPECT_GT(reply.latency_ms, 0.0);  // latency is simulated even when clean
    const std::vector<ServerHit> direct = server.Query(q, 5, nullptr);
    ASSERT_EQ(reply.hits.size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(reply.hits[i].tuple_id, direct[i].tuple_id);
    }
  }
  const TransportMetrics m = transport.Metrics();
  EXPECT_EQ(m.requests, 30u);
  EXPECT_EQ(m.attempts, 30u);
  EXPECT_EQ(m.retries, 0u);
  EXPECT_EQ(m.outcomes[static_cast<int>(TransportOutcome::kOk)], 30u);
}

TEST(SimulatedTransport, AlwaysFailingGivesUpAfterMaxAttempts) {
  const Dataset dataset = MakeDataset(50, 7);
  const LbsServer server(&dataset, {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.faults.transient_error_rate = 1.0;
  topts.retry.max_attempts = 3;
  SimulatedTransport transport(&server, topts);

  const TransportReply reply = transport.Query(kBox.Center(), 5, nullptr);
  EXPECT_EQ(reply.outcome, TransportOutcome::kTransientError);
  EXPECT_EQ(reply.attempts, 3);
  EXPECT_TRUE(reply.hits.empty());  // undelivered → empty page
  EXPECT_FALSE(Delivered(reply.outcome));

  const TransportMetrics m = transport.Metrics();
  EXPECT_EQ(m.requests, 1u);
  EXPECT_EQ(m.attempts, 3u);
  EXPECT_EQ(m.retries, 2u);
  EXPECT_EQ(m.attempt_transient_errors, 3u);
}

TEST(SimulatedTransport, RetryBudgetFailsFastOnceSpent) {
  const Dataset dataset = MakeDataset(50, 8);
  const LbsServer server(&dataset, {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.faults.timeout_rate = 1.0;
  topts.retry.max_attempts = 4;
  topts.retry.retry_budget = 5;
  SimulatedTransport transport(&server, topts);

  // First queries burn the retry budget (3 retries each)...
  const TransportReply first = transport.Query(kBox.Center(), 5, nullptr);
  EXPECT_EQ(first.attempts, 4);
  EXPECT_EQ(first.outcome, TransportOutcome::kTimeout);
  const TransportReply second = transport.Query(kBox.Center(), 5, nullptr);
  EXPECT_EQ(second.attempts, 3);  // budget ran out mid-query
  EXPECT_EQ(second.outcome, TransportOutcome::kFatal);
  // ...after which failing queries are abandoned on their first attempt.
  const TransportReply third = transport.Query(kBox.Center(), 5, nullptr);
  EXPECT_EQ(third.attempts, 1);
  EXPECT_EQ(third.outcome, TransportOutcome::kFatal);
}

TEST(SimulatedTransport, TruncatedPageKeepsStrictPrefix) {
  const Dataset dataset = MakeDataset(200, 9);
  const LbsServer server(&dataset, {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.faults.truncate_rate = 1.0;
  SimulatedTransport transport(&server, topts);

  for (const Vec2& q : RandomPoints(20, 10)) {
    const std::vector<ServerHit> full = server.Query(q, 5, nullptr);
    const TransportReply reply = transport.Query(q, 5, nullptr);
    EXPECT_EQ(reply.outcome, TransportOutcome::kTruncated);
    EXPECT_EQ(reply.attempts, 1);  // truncation is not retried
    ASSERT_LT(reply.hits.size(), full.size());
    for (size_t i = 0; i < reply.hits.size(); ++i) {
      EXPECT_EQ(reply.hits[i].tuple_id, full[i].tuple_id);  // prefix
    }
  }
}

TEST(SimulatedTransport, TokenBucketThrottlesAndAdvancesVirtualClock) {
  const Dataset dataset = MakeDataset(50, 11);
  const LbsServer server(&dataset, {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.rate_limit = {.capacity = 2.0, .refill_per_sec = 10.0};
  topts.latency.fixed_ms = 1.0;
  topts.latency.min_ms = 1.0;
  SimulatedTransport transport(&server, topts);

  for (int i = 0; i < 20; ++i) transport.Query(kBox.Center(), 5, nullptr);
  const TransportMetrics m = transport.Metrics();
  EXPECT_GT(m.throttle_events, 0u);
  EXPECT_GT(m.throttle_wait_ms, 0.0);
  // 20 attempts through a 10/s bucket with burst 2: >= ~1.5 s of quota time.
  EXPECT_GT(transport.VirtualNowMs(), 1500.0);
}

// ---------------------------------------------------------------------------
// §2.1 accounting: every interface attempt charges the client's budget.

TEST(TransportAccounting, ClientChargesOncePerAttempt) {
  const Dataset dataset = MakeDataset(200, 12);
  const LbsServer server(&dataset, {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.faults.transient_error_rate = 0.4;
  topts.retry.max_attempts = 4;
  SimulatedTransport transport(&server, topts);

  LrClient client(&server, {.k = 5}, &transport);
  for (const Vec2& q : RandomPoints(100, 13)) client.Query(q);

  const TransportMetrics m = transport.Metrics();
  EXPECT_EQ(m.requests, 100u);
  EXPECT_GT(m.attempts, m.requests);  // faults at 40% must retry sometimes
  EXPECT_EQ(client.queries_used(), m.attempts);
}

TEST(TransportAccounting, RunWithBudgetMetersAttempts) {
  const Dataset dataset = MakeDataset(200, 14);
  const LbsServer server(&dataset, {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.faults.transient_error_rate = 0.5;
  topts.retry.max_attempts = 4;
  SimulatedTransport transport(&server, topts);

  constexpr uint64_t kBudget = 60;
  LrClient client(&server, {.k = 5, .budget = kBudget}, &transport);
  const std::vector<Vec2> points = RandomPoints(1000, 15);
  size_t next = 0;
  // A fixed probe schedule standing in for an estimator: one query per
  // round, so the budget must trip on attempts, not logical queries.
  EstimatorHandle handle{
      [&] { client.Query(points[next++]); },
      [] { return 0.0; },
      [&] { return client.queries_used(); },
      nullptr,
  };
  const RunResult result = RunWithBudget(handle, kBudget);

  const TransportMetrics m = transport.Metrics();
  EXPECT_EQ(result.queries, m.attempts);
  EXPECT_LT(m.requests, m.attempts);
  // Soft budget: the final round may overshoot by at most one query's
  // attempts; earlier rounds stay under.
  EXPECT_GE(result.queries, kBudget);
  EXPECT_LT(result.queries,
            kBudget + static_cast<uint64_t>(topts.retry.max_attempts));
  // Fewer logical rounds than the budget: retries ate part of it.
  EXPECT_LT(result.trace.size(), static_cast<size_t>(kBudget));
}

// ---------------------------------------------------------------------------
// Metrics

TEST(TransportMetrics, JsonAndTableRender) {
  const Dataset dataset = MakeDataset(100, 16);
  const LbsServer server(&dataset, {.max_k = 10});
  SimulatedTransportOptions topts;
  topts.faults.transient_error_rate = 0.2;
  topts.faults.truncate_rate = 0.1;
  SimulatedTransport transport(&server, topts);
  for (const Vec2& q : RandomPoints(50, 17)) transport.Query(q, 5, nullptr);

  const TransportMetrics m = transport.Metrics();
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"requests\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"transient_error\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);

  uint64_t histogram_total = 0;
  for (uint64_t c : m.attempts_histogram) histogram_total += c;
  EXPECT_EQ(histogram_total, m.requests);
  EXPECT_EQ(m.latency.count(), m.requests);

  uint64_t outcome_total = 0;
  for (int i = 0; i < kNumTransportOutcomes; ++i) {
    outcome_total += m.outcomes[i];
  }
  EXPECT_EQ(outcome_total, m.requests);

  const std::string table = m.ToTable().ToString();
  EXPECT_NE(table.find("outcome.ok"), std::string::npos);
}

TEST(TransportMetrics, MergeAddsEverything) {
  TransportMetrics a;
  a.requests = 2;
  a.attempts = 3;
  a.RecordAttemptsForRequest(1);
  a.RecordAttemptsForRequest(2);
  a.latency.Add(10.0);
  TransportMetrics b;
  b.requests = 1;
  b.attempts = 4;
  b.RecordAttemptsForRequest(4);
  b.latency.Add(2000.0);

  a.Merge(b);
  EXPECT_EQ(a.requests, 3u);
  EXPECT_EQ(a.attempts, 7u);
  ASSERT_EQ(a.attempts_histogram.size(), 4u);
  EXPECT_EQ(a.attempts_histogram[0], 1u);
  EXPECT_EQ(a.attempts_histogram[3], 1u);
  EXPECT_EQ(a.latency.count(), 2u);
}

}  // namespace
}  // namespace lbsagg
