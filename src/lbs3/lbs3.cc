#include "lbs3/lbs3.h"

#include <algorithm>

#include "util/check.h"

namespace lbsagg {

std::vector<Lr3Client::Item> Lr3Client::Query(const Vec3& q) {
  ++queries_used_;
  std::vector<Item> all;
  all.reserve(dataset_->size());
  for (size_t i = 0; i < dataset_->size(); ++i) {
    const Vec3& p = dataset_->position(static_cast<int>(i));
    all.push_back({static_cast<int>(i), p, Distance(q, p)});
  }
  const size_t keep = std::min<size_t>(k_, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const Item& a, const Item& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.id < b.id);
                    });
  all.resize(keep);
  return all;
}

}  // namespace lbsagg
