#ifndef LBSAGG_LBS3_LBS3_H_
#define LBSAGG_LBS3_LBS3_H_

// Minimal 3-D LBS simulation for the §5.4 extension: a hidden set of 3-D
// points behind a location-returned kNN interface. Attributes are reduced
// to an optional per-tuple numeric value so SUM/COUNT aggregates work; the
// full typed-attribute machinery of lbs/ stays 2-D.

#include <cstdint>
#include <vector>

#include "geometry3d/vec3.h"

namespace lbsagg {

// The hidden 3-D database.
class Dataset3 {
 public:
  explicit Dataset3(const Box3& box) : box_(box) {}

  int Add(const Vec3& pos, double value = 1.0) {
    positions_.push_back(pos);
    values_.push_back(value);
    return static_cast<int>(positions_.size()) - 1;
  }

  const Box3& box() const { return box_; }
  size_t size() const { return positions_.size(); }
  const Vec3& position(int id) const { return positions_[id]; }
  double value(int id) const { return values_[id]; }
  const std::vector<Vec3>& positions() const { return positions_; }

  double GroundTruthSum() const {
    double total = 0.0;
    for (double v : values_) total += v;
    return total;
  }

 private:
  Box3 box_;
  std::vector<Vec3> positions_;
  std::vector<double> values_;
};

// The restricted 3-D LR interface: ranked nearest tuples with positions,
// plus the usual query accounting. Brute-force kNN — the simulator answers
// in microseconds at the scales the extension is exercised at.
class Lr3Client {
 public:
  struct Item {
    int id = -1;
    Vec3 position;
    double distance = 0.0;
  };

  // `dataset` must outlive the client.
  Lr3Client(const Dataset3* dataset, int k, uint64_t budget = 0)
      : dataset_(dataset), k_(k), budget_(budget) {}

  // Top-k nearest tuples, nearest first.
  std::vector<Item> Query(const Vec3& q);

  // The tuple's aggregate value (a returned attribute).
  double Value(int id) const { return dataset_->value(id); }

  int k() const { return k_; }
  const Box3& region() const { return dataset_->box(); }
  uint64_t queries_used() const { return queries_used_; }
  bool HasBudget(uint64_t upcoming = 1) const {
    return budget_ == 0 || queries_used_ + upcoming <= budget_;
  }
  uint64_t budget() const { return budget_; }

 private:
  const Dataset3* dataset_;
  int k_;
  uint64_t budget_;
  uint64_t queries_used_ = 0;
};

}  // namespace lbsagg

#endif  // LBSAGG_LBS3_LBS3_H_
