#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace lbsagg {

void FlagParser::Add(const std::string& name, Type type, std::string value,
                     std::string help) {
  LBSAGG_CHECK(flags_.find(name) == flags_.end())
      << "duplicate flag " << name;
  flags_[name] = {type, std::move(value), std::move(help)};
}

void FlagParser::AddString(const std::string& name, std::string default_value,
                           std::string help) {
  Add(name, Type::kString, std::move(default_value), std::move(help));
}

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        std::string help) {
  Add(name, Type::kInt, std::to_string(default_value), std::move(help));
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           std::string help) {
  std::ostringstream os;
  os << default_value;
  Add(name, Type::kDouble, os.str(), std::move(help));
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         std::string help) {
  Add(name, Type::kBool, default_value ? "true" : "false", std::move(help));
}

bool FlagParser::SetValue(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    error_ = "unknown flag --" + name;
    return false;
  }
  Flag& flag = it->second;
  char* end = nullptr;
  switch (flag.type) {
    case Type::kString:
      break;
    case Type::kInt:
      std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') {
        error_ = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    case Type::kDouble:
      std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0') {
        error_ = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    case Type::kBool:
      if (value != "true" && value != "false") {
        error_ = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
  }
  flag.value = value;
  return true;
}

bool FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      if (!SetValue(arg.substr(0, eq), arg.substr(eq + 1))) return false;
      continue;
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + arg;
      return false;
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      error_ = "flag --" + arg + " is missing its value";
      return false;
    }
    if (!SetValue(arg, argv[++i])) return false;
  }
  return true;
}

std::string FlagParser::GetString(const std::string& name) const {
  const auto it = flags_.find(name);
  LBSAGG_CHECK(it != flags_.end()) << "unregistered flag " << name;
  return it->second.value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  const auto it = flags_.find(name);
  LBSAGG_CHECK(it != flags_.end() && it->second.type == Type::kInt);
  return std::strtoll(it->second.value.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  const auto it = flags_.find(name);
  LBSAGG_CHECK(it != flags_.end() && it->second.type == Type::kDouble);
  return std::strtod(it->second.value.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  const auto it = flags_.find(name);
  LBSAGG_CHECK(it != flags_.end() && it->second.type == Type::kBool);
  return it->second.value == "true";
}

std::string FlagParser::HelpText(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace lbsagg
