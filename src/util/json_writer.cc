#include "util/json_writer.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace lbsagg {

void JsonWriter::AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Frame& frame = stack_.back();
  LBSAGG_CHECK(frame.scope == Scope::kArray)
      << "object member emitted without a Key()";
  if (frame.has_items) out_ += ',';
  frame.has_items = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({Scope::kObject});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  LBSAGG_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject);
  LBSAGG_CHECK(!pending_key_) << "EndObject with a dangling Key()";
  stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({Scope::kArray});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  LBSAGG_CHECK(!stack_.empty() && stack_.back().scope == Scope::kArray);
  stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  LBSAGG_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject)
      << "Key() outside an object";
  LBSAGG_CHECK(!pending_key_) << "two Key() calls in a row";
  if (stack_.back().has_items) out_ += ',';
  stack_.back().has_items = true;
  out_ += '"';
  AppendEscaped(&out_, key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeValue();
  out_ += '"';
  AppendEscaped(&out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  // Matches the legacy emitters' `ostream << double` (6 significant digits),
  // so swapping them for the writer is byte-identical output.
  std::ostringstream os;
  os << v;
  out_ += os.str();
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::ValueNull() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_.append(json.data(), json.size());
  return *this;
}

}  // namespace lbsagg
