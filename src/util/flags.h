#ifndef LBSAGG_UTIL_FLAGS_H_
#define LBSAGG_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lbsagg {

// Minimal command-line flag parser for the tools/ binaries. Flags are
// `--name=value` or `--name value`; `--name` alone sets a bool flag to
// true. Unknown flags are an error; positional arguments are collected.
class FlagParser {
 public:
  // Registration (call before Parse). `help` is shown by PrintHelp().
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddInt(const std::string& name, int64_t default_value,
              std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  // Parses argv. Returns false (and fills error()) on unknown flags or
  // malformed values.
  bool Parse(int argc, const char* const* argv);

  const std::string& error() const { return error_; }
  const std::vector<std::string>& positional() const { return positional_; }

  // Accessors; check-fail on unregistered names or type mismatches.
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Usage text: one line per flag with default and help.
  std::string HelpText(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string value;  // canonical textual value
    std::string help;
  };

  void Add(const std::string& name, Type type, std::string value,
           std::string help);
  bool SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace lbsagg

#endif  // LBSAGG_UTIL_FLAGS_H_
