#ifndef LBSAGG_UTIL_JSON_WRITER_H_
#define LBSAGG_UTIL_JSON_WRITER_H_

// One small JSON emitter for every ad-hoc serializer in the tree. Before
// this existed, EvidenceStore::ToJson, the engine/resolver diagnostics, the
// run-report assembly, and the WAL inspector each concatenated strings by
// hand and were one missed comma away from diverging; they all route
// through this writer now.
//
// The writer is strictly append-only and comma-managing: Key()/Value()
// calls emit separators automatically based on a small nesting stack.
// Numbers print exactly like the legacy emitters did (integers via the
// stream insertion of the integral type, doubles via
// obs-report-compatible shortest round-trip formatting), so swapping a
// hand-built emitter for JsonWriter is byte-identical output.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lbsagg {

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object member key; must be followed by exactly one value (or container).
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint32_t v) { return Value(static_cast<uint64_t>(v)); }
  JsonWriter& Value(int32_t v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& ValueNull();

  // Splices a pre-serialized JSON value (e.g. a nested diagnostics_json()).
  // The caller owns its validity; the writer only manages the separators.
  JsonWriter& RawValue(std::string_view json);

  // Shorthand for Key(k).Value(v).
  template <typename T>
  JsonWriter& KV(std::string_view key, T&& v) {
    Key(key);
    return Value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  // JSON string escaping (quotes not included) — shared with callers that
  // still assemble fragments by hand.
  static void AppendEscaped(std::string* out, std::string_view s);

 private:
  void BeforeValue();

  enum class Scope : uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    bool has_items = false;
  };

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace lbsagg

#endif  // LBSAGG_UTIL_JSON_WRITER_H_
