#ifndef LBSAGG_UTIL_STATS_H_
#define LBSAGG_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lbsagg {

// Numerically stable running mean/variance accumulator (Welford).
//
// Used by the estimators to aggregate per-sample Horvitz–Thompson values and
// report the running estimate plus a confidence interval based on the sample
// variance with Bessel's correction (§2.3 of the paper).
class RunningStats {
 public:
  RunningStats() = default;

  // Adds one observation.
  void Add(double x);

  // Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return mean_; }

  // Sample variance with Bessel's correction; 0 when count < 2.
  double SampleVariance() const;

  // Standard error of the mean: sqrt(sample variance / n).
  double StandardError() const;

  // Half-width of a normal-approximation confidence interval around the
  // mean, e.g. z = 1.96 for 95%.
  double ConfidenceHalfWidth(double z = 1.96) const;

  double min() const { return min_; }
  double max() const { return max_; }

  // One-line JSON object: `{"count":..,"mean":..,"stddev":..,"se":..,
  // "ci95_half_width":..,"min":..,"max":..}`. Consumed by obs::RunReport;
  // values use the default ostream double formatting.
  std::string ToJson() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Descriptive statistics of a fixed sample. Percentile uses linear
// interpolation between order statistics.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (Bessel)
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

// Computes the summary of `values` (which it copies and sorts).
Summary Summarize(std::vector<double> values);

// Relative error |estimate - truth| / |truth|. Returns |estimate| when truth
// is zero and estimate is not (an infinite relative error capped for
// reporting would be meaningless; callers avoid zero ground truths).
double RelativeError(double estimate, double truth);

// Mean squared error decomposition helper: MSE = bias^2 + variance. `runs`
// holds one final estimate per independent run.
struct ErrorDecomposition {
  double bias = 0.0;       // mean(runs) - truth
  double variance = 0.0;   // sample variance of runs
  double mse = 0.0;        // bias^2 + variance
  double mean_rel_error = 0.0;  // mean over runs of |run - truth| / truth
};
ErrorDecomposition DecomposeError(const std::vector<double>& runs,
                                  double truth);

}  // namespace lbsagg

#endif  // LBSAGG_UTIL_STATS_H_
