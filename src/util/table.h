#ifndef LBSAGG_UTIL_TABLE_H_
#define LBSAGG_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace lbsagg {

// Minimal fixed-width text table used by the benchmark harness to print the
// paper's tables and figure series in a uniform, diff-friendly format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; the number of cells must match the header count.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);
  static std::string Int(long long value);

  // Renders the table with aligned columns.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lbsagg

#endif  // LBSAGG_UTIL_TABLE_H_
