#include "util/svg.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace lbsagg {

SvgCanvas::SvgCanvas(const Box& world, double width_px)
    : world_(world), width_px_(width_px) {
  LBSAGG_CHECK_GT(width_px, 0.0);
  LBSAGG_CHECK_GT(world.width(), 0.0);
  LBSAGG_CHECK_GT(world.height(), 0.0);
  height_px_ = width_px * world.height() / world.width();
}

Vec2 SvgCanvas::ToPixels(const Vec2& world) const {
  const double x = (world.x - world_.lo.x) / world_.width() * width_px_;
  const double y =
      (1.0 - (world.y - world_.lo.y) / world_.height()) * height_px_;
  return {x, y};
}

void SvgCanvas::AddPolygon(const ConvexPolygon& polygon,
                           const std::string& fill, const std::string& stroke,
                           double stroke_width, double fill_opacity) {
  if (polygon.IsEmpty()) return;
  std::ostringstream os;
  os << "<polygon points=\"";
  for (const Vec2& v : polygon.vertices()) {
    const Vec2 p = ToPixels(v);
    os << p.x << "," << p.y << " ";
  }
  os << "\" fill=\"" << fill << "\" fill-opacity=\"" << fill_opacity
     << "\" stroke=\"" << stroke << "\" stroke-width=\"" << stroke_width
     << "\"/>\n";
  body_ += os.str();
}

void SvgCanvas::AddPoint(const Vec2& position, double radius_px,
                         const std::string& fill) {
  const Vec2 p = ToPixels(position);
  std::ostringstream os;
  os << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\"" << radius_px
     << "\" fill=\"" << fill << "\"/>\n";
  body_ += os.str();
}

void SvgCanvas::AddSegment(const Vec2& a, const Vec2& b,
                           const std::string& stroke, double stroke_width) {
  const Vec2 pa = ToPixels(a);
  const Vec2 pb = ToPixels(b);
  std::ostringstream os;
  os << "<line x1=\"" << pa.x << "\" y1=\"" << pa.y << "\" x2=\"" << pb.x
     << "\" y2=\"" << pb.y << "\" stroke=\"" << stroke << "\" stroke-width=\""
     << stroke_width << "\"/>\n";
  body_ += os.str();
}

void SvgCanvas::AddText(const Vec2& position, const std::string& text,
                        double size_px, const std::string& fill) {
  const Vec2 p = ToPixels(position);
  std::ostringstream os;
  os << "<text x=\"" << p.x << "\" y=\"" << p.y << "\" font-size=\"" << size_px
     << "\" fill=\"" << fill << "\" font-family=\"sans-serif\">" << text
     << "</text>\n";
  body_ += os.str();
}

std::string SvgCanvas::ToString() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_
     << "\" height=\"" << height_px_ << "\" viewBox=\"0 0 " << width_px_ << " "
     << height_px_ << "\">\n";
  os << body_;
  os << "</svg>\n";
  return os.str();
}

bool SvgCanvas::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToString();
  return static_cast<bool>(out);
}

std::string SvgCanvas::HeatColor(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Light yellow (255, 245, 200) → dark red (150, 10, 20).
  const int r = static_cast<int>(255 + t * (150 - 255));
  const int g = static_cast<int>(245 + t * (10 - 245));
  const int b = static_cast<int>(200 + t * (20 - 200));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

}  // namespace lbsagg
