#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace lbsagg {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StandardError() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(SampleVariance() / static_cast<double>(count_));
}

double RunningStats::ConfidenceHalfWidth(double z) const {
  return z * StandardError();
}

std::string RunningStats::ToJson() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"mean\":" << mean_
     << ",\"stddev\":" << std::sqrt(SampleVariance())
     << ",\"se\":" << StandardError()
     << ",\"ci95_half_width\":" << ConfidenceHalfWidth()
     << ",\"min\":" << min_ << ",\"max\":" << max_ << "}";
  return os.str();
}

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  LBSAGG_CHECK(!sorted.empty());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  RunningStats acc;
  for (double v : values) acc.Add(v);
  s.count = values.size();
  s.mean = acc.mean();
  s.stddev = std::sqrt(acc.SampleVariance());
  s.min = values.front();
  s.p25 = Percentile(values, 0.25);
  s.median = Percentile(values, 0.50);
  s.p75 = Percentile(values, 0.75);
  s.p95 = Percentile(values, 0.95);
  s.max = values.back();
  return s;
}

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) return std::abs(estimate);
  return std::abs(estimate - truth) / std::abs(truth);
}

ErrorDecomposition DecomposeError(const std::vector<double>& runs,
                                  double truth) {
  ErrorDecomposition d;
  if (runs.empty()) return d;
  RunningStats acc;
  double rel = 0.0;
  for (double r : runs) {
    acc.Add(r);
    rel += RelativeError(r, truth);
  }
  d.bias = acc.mean() - truth;
  d.variance = acc.SampleVariance();
  d.mse = d.bias * d.bias + d.variance;
  d.mean_rel_error = rel / static_cast<double>(runs.size());
  return d;
}

}  // namespace lbsagg
