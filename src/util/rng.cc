#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace lbsagg {

namespace {

// SplitMix64, used only for seeding the main engine.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(&sm);
}

// xoshiro256** step.
uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  LBSAGG_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformInt(uint64_t n) {
  LBSAGG_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = max() - max() % n;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return v % n;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller.
  double u1 = Uniform01();
  while (u1 <= 0.0) u1 = Uniform01();
  const double u2 = Uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    LBSAGG_CHECK_GE(w, 0.0);
    total += w;
  }
  LBSAGG_CHECK_GT(total, 0.0) << "Categorical needs a positive weight";
  double u = Uniform01() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  // Floating-point slop: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace lbsagg
