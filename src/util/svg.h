#ifndef LBSAGG_UTIL_SVG_H_
#define LBSAGG_UTIL_SVG_H_

#include <string>

#include "geometry/box.h"
#include "geometry/polygon.h"
#include "geometry/vec2.h"

namespace lbsagg {

// Minimal SVG writer used to render Voronoi decompositions (the paper's
// Figure 11 is literally a picture of one) and other diagnostics. World
// coordinates are mapped from a Box to an SVG viewport with y flipped
// (SVG y grows downward).
class SvgCanvas {
 public:
  // Canvas over the world box, `width_px` pixels wide (height follows the
  // box aspect ratio).
  SvgCanvas(const Box& world, double width_px = 1200.0);

  // A filled polygon with stroke. Colors are SVG color strings.
  void AddPolygon(const ConvexPolygon& polygon, const std::string& fill,
                  const std::string& stroke, double stroke_width = 1.0,
                  double fill_opacity = 1.0);

  // A dot at a world position.
  void AddPoint(const Vec2& position, double radius_px,
                const std::string& fill);

  // A line segment.
  void AddSegment(const Vec2& a, const Vec2& b, const std::string& stroke,
                  double stroke_width = 1.0);

  // Text label at a world position.
  void AddText(const Vec2& position, const std::string& text,
               double size_px = 14.0, const std::string& fill = "black");

  // Full document.
  std::string ToString() const;

  // Writes the document; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

  // A simple sequential colormap (t in [0,1] → light yellow → dark red),
  // for area-coded cell fills.
  static std::string HeatColor(double t);

 private:
  Vec2 ToPixels(const Vec2& world) const;

  Box world_;
  double width_px_;
  double height_px_;
  std::string body_;
};

}  // namespace lbsagg

#endif  // LBSAGG_UTIL_SVG_H_
