#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace lbsagg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LBSAGG_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  LBSAGG_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace lbsagg
