#ifndef LBSAGG_UTIL_RNG_H_
#define LBSAGG_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace lbsagg {

// Deterministic random number generator used everywhere in the library.
//
// All randomized components (workload generators, samplers, estimators,
// Monte-Carlo steps) receive an Rng explicitly so that every experiment is
// reproducible from a single seed. The engine is a 64-bit SplitMix/xoshiro
// combination: fast, high quality, and — unlike std::mt19937 — cheap to fork
// into independent streams.
class Rng {
 public:
  // Seeds the generator. Two generators with different seeds produce
  // independent-looking streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform01();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Standard normal variate (Box–Muller with caching).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Bernoulli(p) draw.
  bool Bernoulli(double p) { return Uniform01() < p; }

  // Samples an index from the (unnormalized, non-negative) weights.
  // Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  // Forks an independent generator; deterministic given the current state.
  Rng Fork();

  // Serialized generator state for checkpoint/restore: the four xoshiro
  // words plus the Box–Muller cache. RestoreState makes this generator
  // produce the exact stream the saved one would have — the primitive the
  // durable log's bit-identical resume rests on.
  struct State {
    uint64_t words[4] = {};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State SaveState() const;
  void RestoreState(const State& state);

  // Adapter so Rng can be used with <random> distributions if ever needed.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }
  uint64_t operator()() { return Next(); }

 private:
  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lbsagg

#endif  // LBSAGG_UTIL_RNG_H_
