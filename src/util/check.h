#ifndef LBSAGG_UTIL_CHECK_H_
#define LBSAGG_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace lbsagg {
namespace internal_check {

// Aborts the process with a diagnostic message. Out-of-line so the fast path
// of LBSAGG_CHECK stays small.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

// Stream-style message collector for LBSAGG_CHECK(...) << "context".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace lbsagg

// Always-on invariant check. Unlike assert(), it survives NDEBUG builds:
// the library's correctness arguments (Theorem 1 loop termination, estimator
// bookkeeping) rely on these invariants, and silent corruption of a sampling
// estimate is worse than a crash.
#define LBSAGG_CHECK(condition)                                         \
  while (!(condition))                                                  \
  ::lbsagg::internal_check::CheckMessageBuilder(__FILE__, __LINE__,     \
                                                #condition)

#define LBSAGG_CHECK_OP(a, op, b) LBSAGG_CHECK((a)op(b))
#define LBSAGG_CHECK_EQ(a, b) LBSAGG_CHECK_OP(a, ==, b)
#define LBSAGG_CHECK_NE(a, b) LBSAGG_CHECK_OP(a, !=, b)
#define LBSAGG_CHECK_LT(a, b) LBSAGG_CHECK_OP(a, <, b)
#define LBSAGG_CHECK_LE(a, b) LBSAGG_CHECK_OP(a, <=, b)
#define LBSAGG_CHECK_GT(a, b) LBSAGG_CHECK_OP(a, >, b)
#define LBSAGG_CHECK_GE(a, b) LBSAGG_CHECK_OP(a, >=, b)

#endif  // LBSAGG_UTIL_CHECK_H_
