#ifndef LBSAGG_UTIL_BINARY_IO_H_
#define LBSAGG_UTIL_BINARY_IO_H_

// Little-endian binary encode/decode helpers plus CRC-32, shared by the
// durable-log subsystem (engine/log/): WAL record payloads, checkpoint
// blobs, and the resolvers' opaque SaveState/RestoreState blobs all use the
// same framing primitives so the on-disk formats cannot drift apart.
//
// Doubles are serialized as their IEEE-754 bit pattern (a u64), never
// through text: the durability contract is *bit-identical* resume, and a
// decimal round-trip would lose the last ulp the engine's traces are pinned
// on.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace lbsagg {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
// Table-driven, built once on first use.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  static const auto table = [] {
    struct Table {
      uint32_t entries[256];
    } t;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t.entries[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

// Appends fixed-width little-endian values to a std::string buffer.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutLe(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutLe(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutLe(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutLe(&v, sizeof(v)); }

  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  // Length-prefixed byte string (u32 length).
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  void PutLe(const void* v, size_t size) {
    // The library only targets little-endian hosts (every platform the
    // benchmarks run on); memcpy keeps the write alignment-safe.
    out_->append(reinterpret_cast<const char*>(v), size);
  }

  std::string* out_;
};

// Reads fixed-width little-endian values from a byte range. Never throws:
// every getter reports success, and a short read latches ok() == false so a
// decode loop can bail once at the end (torn WAL tails and truncated
// checkpoint blobs are expected inputs, not programming errors).
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t size)
      : p_(static_cast<const char*>(data)), end_(p_ + size) {}
  explicit BinaryReader(std::string_view bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  bool GetU8(uint8_t* v) { return GetLe(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetLe(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetLe(v, sizeof(*v)); }
  bool GetI32(int32_t* v) { return GetLe(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetLe(v, sizeof(*v)); }

  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t size;
    if (!GetU32(&size)) return false;
    if (remaining() < size) {
      ok_ = false;
      return false;
    }
    s->assign(p_, size);
    p_ += size;
    return true;
  }

 private:
  bool GetLe(void* v, size_t size) {
    if (!ok_ || remaining() < size) {
      ok_ = false;
      return false;
    }
    std::memcpy(v, p_, size);
    p_ += size;
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

}  // namespace lbsagg

#endif  // LBSAGG_UTIL_BINARY_IO_H_
