#ifndef LBSAGG_LBS_CLIENT_H_
#define LBSAGG_LBS_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geometry/loc_key.h"
#include "lbs/server.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "transport/transport.h"

namespace lbsagg {

// Client-side configuration.
struct ClientOptions {
  // Number of results requested per query (clamped to the server's max_k).
  int k = 1;

  // Query budget; 0 = unlimited. The budget is *soft*: a query issued while
  // over budget still succeeds (a cell computation mid-flight may finish),
  // but estimators consult HasBudget() before starting new work, which is
  // how the paper's fixed-budget experiments operate.
  //
  // Retry accounting (§2.1): the budget counts *interface attempts*, not
  // logical queries. Through a fault-injecting transport a retried query
  // charges once per attempt — the service's rate limiter meters attempts,
  // so a flaky network genuinely buys fewer logical answers per budget
  // (runner.h documents the interaction with RunWithBudget).
  uint64_t budget = 0;

  // Cross-round query memo: remember every (quantized location → answer)
  // pair and answer repeats client-side at zero interface cost. The service
  // is static, so a repeated query is pure waste — the refinement loops
  // deduplicate within one cell computation already, but neighboring cells
  // and Monte-Carlo rounds re-probe the same vertices. Off by default
  // because two locations closer than ~1e-9 of the region scale share a
  // memo slot, so counted-query traces differ from the memo-less run.
  bool memoize_queries = false;

  // Metric plane for the client.* counters (queries, memo_hits); null lands
  // on the process-wide obs::MetricsRegistry::Default(). Determinism tests
  // inject a fresh registry per run and compare snapshots.
  obs::MetricsRegistry* registry = nullptr;

  // When set, every counted query emits a "client.query" span (nested
  // between the estimator's round span and the transport's attempt spans).
  // Null = no tracing, no overhead beyond one pointer test.
  obs::Tracer* tracer = nullptr;
};

// Atomically drained per-client accounting (see SnapshotAndResetStats).
struct ClientStats {
  uint64_t queries = 0;    // interface attempts charged (§2.1 cost)
  uint64_t memo_hits = 0;  // queries answered client-side at zero cost
};

// Base of the restricted public interfaces. Owns query accounting — the
// paper's No. 1 performance metric (§2.1) is the number of interface calls,
// and every Query() on any derived client increments the counter exactly
// once.
class LbsClient {
 public:
  // `server` must outlive the client. Queries go straight to the server —
  // the zero-overhead in-process wire, equivalent to a DirectTransport.
  LbsClient(const LbsServer* server, ClientOptions options);

  // Routes every query through `transport` (latency, rate limits, faults,
  // retries — see transport/simulated_transport.h). Each *interface
  // attempt* the transport makes counts against the query budget. An
  // optional `batch` executor (an AsyncDispatcher over the same transport)
  // pipelines QueryBatch() calls across worker threads; without one,
  // batches run sequentially with identical results. All three pointers
  // must outlive the client.
  LbsClient(const LbsServer* server, ClientOptions options,
            LbsTransport* transport, BatchExecutor* batch = nullptr);

  virtual ~LbsClient() = default;

  int k() const { return k_; }
  uint64_t queries_used() const {
    return queries_used_.load(std::memory_order_relaxed);
  }

  // Atomically drains the query and memo-hit counters (each via one
  // exchange) and returns the drained values: every increment lands in
  // exactly one accounting period even while a batch is in flight on an
  // AsyncDispatcher — the snapshot-then-reset contract the racy
  // field-by-field reset could not give (pinned under TSAN by obs_test.cc).
  ClientStats SnapshotAndResetStats() {
    ClientStats stats;
    stats.queries = queries_used_.exchange(0, std::memory_order_relaxed);
    stats.memo_hits = memo_hits_.exchange(0, std::memory_order_relaxed);
    return stats;
  }

  // Resets every per-run statistic — the query counter, the memo-hit
  // counter, and the query log — so a reused client reports internally
  // consistent numbers (memo_hits() can never exceed the queries the
  // current accounting period has seen). The memo *contents* survive: the
  // service is static, so cached answers stay valid across runs. The
  // counter drain is atomic (SnapshotAndResetStats); clearing the query
  // log still requires no batch in flight.
  void ResetQueryCount() {
    (void)SnapshotAndResetStats();
    query_log_.clear();
  }

  // Checkpoint-restore hook (engine/log/): pins the attempt counter to a
  // value recovered from a durable checkpoint, so a resumed run's budget
  // arithmetic — HasBudget() gates, queries_after round boundaries, soft
  // overrun — continues exactly where the interrupted process stopped.
  // Requires no batch in flight.
  void RestoreQueryCount(uint64_t queries) {
    queries_used_.store(queries, std::memory_order_relaxed);
  }

  // Order-independent hash of the cross-round memo's key set (0 when the
  // memo is off or empty). Checkpoints record it so recovery can detect the
  // case it cannot replay: memo contents die with the process, and a resumed
  // run whose memo state differs would answer repeat queries differently
  // than the interrupted run — see DurableLog's resume gate.
  uint64_t MemoStateHash() const;

  // True if `upcoming` more queries fit in the budget (always true when the
  // budget is unlimited).
  bool HasBudget(uint64_t upcoming = 1) const;
  uint64_t budget() const { return options_.budget; }

  // Appends a pass-through selection condition to every future query
  // (§5.1, e.g. NAME = 'Starbucks' on Google Places). Pass nullptr to clear.
  // Invalidates the query memo: the same location now has a new answer.
  void SetPassThroughFilter(TupleFilter filter);

  // True when the service ranks by plain ascending distance, i.e. results
  // arrive already in the nearest-neighbor order the Theorem-1 rank tests
  // need and clients may skip their re-sort.
  bool distance_ranked() const {
    return server_->options().ranking == RankingMode::kDistance;
  }

  // Number of queries answered from the memo (always 0 unless
  // ClientOptions::memoize_queries).
  uint64_t memo_hits() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }

  // Attribute access for tuples the service returned: both LR and LNR
  // interfaces return non-location attributes (name, rating, gender, …).
  const Schema& schema() const { return server_->dataset().schema(); }
  AttrValue Attribute(int id, int col) const;
  double NumericAttribute(int id, int col) const;

  // Bounding region of the service (public knowledge: the area of interest).
  const Box& region() const { return server_->dataset().box(); }

  // Maximum coverage radius d_max — a documented interface restriction
  // (§5.3: Google Maps 50 km, Weibo 11 km), hence public knowledge the
  // estimation algorithms may use. Infinity when unrestricted.
  double max_radius() const { return server_->options().max_radius; }

  // Diagnostics: record every query location (off by default; the log can
  // grow large). Used by the visualization example to show where an
  // estimator actually spends its budget.
  void EnableQueryLog() { log_queries_ = true; }
  const std::vector<Vec2>& query_log() const { return query_log_; }

 protected:
  // Issues one counted query (through the transport when one is attached;
  // the cost charged is the transport's attempt count).
  std::vector<ServerHit> RawQuery(const Vec2& q);

  // Issues `points.size()` independent counted queries and returns the
  // result pages in submission order. With an attached BatchExecutor the
  // backend work is pipelined across its workers; either way the pages,
  // accounting, and query log are identical to issuing the points through
  // RawQuery one at a time (transport metrics included — see the
  // determinism contract in transport/simulated_transport.h).
  std::vector<std::vector<ServerHit>> RawQueryBatch(
      const std::vector<Vec2>& points);

  // Counted query behind the cross-round memo: a memo hit costs zero
  // interface queries and leaves no query-log entry. Identical to RawQuery
  // unless ClientOptions::memoize_queries.
  const std::vector<ServerHit>& MemoQuery(const Vec2& q);

  // Batch variant of MemoQuery: answers memoized points client-side,
  // dispatches only the misses (deduplicated within the batch, like the
  // sequential path would), and returns pages by value in point order.
  std::vector<std::vector<ServerHit>> MemoQueryBatch(
      const std::vector<Vec2>& points);

  const LbsServer* server_;

 private:
  // Charges `attempts` interface attempts for one counted query at `q`.
  void ChargeQuery(const Vec2& q, uint64_t attempts) {
    queries_used_.fetch_add(attempts, std::memory_order_relaxed);
    queries_counter_.Add(attempts);
    if (log_queries_) query_log_.push_back(q);
  }

  void CountMemoHit() {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    memo_hits_counter_.Add(1);
  }

  ClientOptions options_;
  LbsTransport* transport_ = nullptr;  // null = direct in-process wire
  BatchExecutor* batch_ = nullptr;
  int k_;
  TupleFilter filter_;
  std::atomic<uint64_t> queries_used_{0};
  bool log_queries_ = false;
  std::vector<Vec2> query_log_;
  obs::CounterRef queries_counter_;
  obs::CounterRef memo_hits_counter_;
  obs::Tracer* tracer_ = nullptr;

  // Cross-round memo (see ClientOptions::memoize_queries).
  double memo_grid_ = 0.0;
  std::atomic<uint64_t> memo_hits_{0};
  std::unordered_map<LocKey, std::vector<ServerHit>, LocKeyHash> memo_;
  std::vector<ServerHit> memo_scratch_;  // MemoQuery result when memo is off
};

// Location-Returned LBS interface (Google Maps): ranked ids + precise
// locations + distances.
class LrClient : public LbsClient {
 public:
  struct Item {
    int id = -1;
    Vec2 location;
    double distance = 0.0;
  };

  using LbsClient::LbsClient;

  // Top-k nearest tuples with locations, nearest first. Virtual so that
  // derived clients can synthesize the same contract from poorer
  // interfaces (see TrilaterationClient).
  virtual std::vector<Item> Query(const Vec2& q);

  // Batch variant for *independent* probes (Monte-Carlo membership tests,
  // ring scans): same pages, accounting, and memo behavior as calling
  // Query() point by point, but pipelined through the client's
  // BatchExecutor when one is attached.
  virtual std::vector<std::vector<Item>> QueryBatch(
      const std::vector<Vec2>& points);
};

// LR-by-trilateration (§2.1): services like Skout and Momo return ranked
// ids and precise *distances* but no coordinates. Three queries recover
// each tuple's location exactly, after which every LR algorithm applies
// unchanged — this client performs the recovery transparently (caching each
// tuple's inferred position, since the service is static).
class TrilaterationClient : public LrClient {
 public:
  using LrClient::LrClient;

  // Same contract as LrClient::Query, but every location is *inferred* by
  // trilateration rather than returned by the service. Tuples whose
  // location cannot be pinned down (they fall out of the top-k at every
  // probe offset) are dropped from the result.
  std::vector<Item> Query(const Vec2& q) override;

  // Trilateration probes are sequential by nature (each result steers the
  // next offset), so the batch contract degrades to a point-by-point loop.
  std::vector<std::vector<Item>> QueryBatch(
      const std::vector<Vec2>& points) override;

  // Number of tuples whose positions have been inferred so far.
  size_t inferred_positions() const { return position_cache_.size(); }

 private:
  // Distance to `id` at probe location `p`, if the service still ranks it.
  std::optional<double> ProbeDistance(const Vec2& p, int id);

  std::unordered_map<int, Vec2> position_cache_;
};

// Location-Not-Returned LBS interface (WeChat, Sina Weibo): a ranked list
// of tuple ids only.
class LnrClient : public LbsClient {
 public:
  using LbsClient::LbsClient;

  // Ranked ids of the top-k nearest tuples.
  std::vector<int> Query(const Vec2& q);

  // Convenience for the binary-search primitives: whether `id` appears in
  // the result at `q`. Costs one query.
  bool Returns(const Vec2& q, int id);

  // Convenience: the top-1 id at `q`, or -1 when the result is empty
  // (max_radius). Costs one query.
  int Top1(const Vec2& q);
};

// Distance-returning variant (Skout, Momo): ranked ids + precise distances
// but no coordinates. §2.1 classifies these as LR-LBS because trilateration
// recovers locations with 3 queries — see lbs/trilateration.h.
class DistanceClient : public LbsClient {
 public:
  struct Item {
    int id = -1;
    double distance = 0.0;
  };

  using LbsClient::LbsClient;

  std::vector<Item> Query(const Vec2& q);
};

}  // namespace lbsagg

#endif  // LBSAGG_LBS_CLIENT_H_
