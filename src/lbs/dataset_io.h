#ifndef LBSAGG_LBS_DATASET_IO_H_
#define LBSAGG_LBS_DATASET_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "lbs/dataset.h"

namespace lbsagg {

// CSV persistence for datasets, so the CLI tool (tools/lbsagg_cli) can run
// the estimators against user-provided point sets.
//
// Format: the first line is a header
//     x,y,<name>:<type>,...        with type ∈ {double, string, bool}
// followed by one row per tuple. String values must not contain commas.
// The bounding region is written as a leading comment line
//     # box <lo.x> <lo.y> <hi.x> <hi.y>

// Writes the dataset. Returns false on I/O failure.
bool SaveDatasetCsv(const Dataset& dataset, const std::string& path);
void WriteDatasetCsv(const Dataset& dataset, std::ostream& out);

// Reads a dataset; nullopt on malformed input (an explanation is written to
// `error` when non-null).
std::optional<Dataset> LoadDatasetCsv(const std::string& path,
                                      std::string* error = nullptr);
std::optional<Dataset> ReadDatasetCsv(std::istream& in,
                                      std::string* error = nullptr);

}  // namespace lbsagg

#endif  // LBSAGG_LBS_DATASET_IO_H_
