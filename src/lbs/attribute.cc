#include "lbs/attribute.h"

#include "util/check.h"

namespace lbsagg {

AttrType TypeOf(const AttrValue& value) {
  if (std::holds_alternative<double>(value)) return AttrType::kDouble;
  if (std::holds_alternative<std::string>(value)) return AttrType::kString;
  return AttrType::kBool;
}

std::string ToString(const AttrValue& value) {
  if (const double* d = std::get_if<double>(&value)) {
    return std::to_string(*d);
  }
  if (const std::string* s = std::get_if<std::string>(&value)) return *s;
  return std::get<bool>(value) ? "true" : "false";
}

int Schema::AddColumn(const std::string& name, AttrType type) {
  LBSAGG_CHECK(!Find(name).has_value()) << "duplicate column " << name;
  columns_.push_back({name, type});
  return static_cast<int>(columns_.size()) - 1;
}

std::optional<int> Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

int Schema::Require(const std::string& name) const {
  const std::optional<int> col = Find(name);
  LBSAGG_CHECK(col.has_value()) << "missing column " << name;
  return *col;
}

const std::string& Schema::name(int col) const {
  LBSAGG_CHECK_GE(col, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(col), columns_.size());
  return columns_[col].name;
}

AttrType Schema::type(int col) const {
  LBSAGG_CHECK_GE(col, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(col), columns_.size());
  return columns_[col].type;
}

}  // namespace lbsagg
