#ifndef LBSAGG_LBS_DATASET_H_
#define LBSAGG_LBS_DATASET_H_

#include <functional>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "geometry/vec2.h"
#include "lbs/attribute.h"
#include "util/rng.h"

namespace lbsagg {

// One database tuple: a location plus attribute values aligned with the
// dataset schema. The id equals the tuple's index in the dataset and is what
// LNR interfaces expose instead of the location.
struct Tuple {
  int id = -1;
  Vec2 pos;
  std::vector<AttrValue> values;
};

// Predicate over a tuple — the selection condition `Cond` of §2.3. The
// library supports any condition evaluable on a single tuple.
using TupleFilter = std::function<bool(const Tuple&)>;

// The hidden database D: tuples with locations inside a bounding region.
// Only the LbsServer sees a Dataset directly; estimation algorithms go
// through the restricted client interfaces.
class Dataset {
 public:
  // Creates an empty dataset over the region `box` with the given schema.
  Dataset(Box box, Schema schema);

  // Appends a tuple at `pos` with values matching the schema (count and
  // types are checked). Returns the assigned id.
  int Add(const Vec2& pos, std::vector<AttrValue> values);

  const Box& box() const { return box_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  const Tuple& tuple(int id) const;
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // Positions of all tuples, in id order.
  std::vector<Vec2> Positions() const;

  // Enforces general position (§2.2): any tuples sharing a location are
  // jittered apart by up to `eps`. Returns the number of moved tuples.
  int JitterDuplicates(Rng& rng, double eps);

  // Ground-truth aggregate: sum over tuples passing `cond` (null = all) of
  // `value(t)`. COUNT uses value ≡ 1.
  double GroundTruthSum(const TupleFilter& cond,
                        const std::function<double(const Tuple&)>& value) const;

  // Ground-truth COUNT of tuples passing `cond` (null = all).
  double GroundTruthCount(const TupleFilter& cond = nullptr) const;

  // New dataset holding a uniform random subset with `fraction` of the
  // tuples (ids re-assigned). Used by the Figure-18 database-size sweep.
  Dataset Subsample(double fraction, Rng& rng) const;

 private:
  Box box_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace lbsagg

#endif  // LBSAGG_LBS_DATASET_H_
