#ifndef LBSAGG_LBS_ATTRIBUTE_H_
#define LBSAGG_LBS_ATTRIBUTE_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace lbsagg {

// Type of a tuple attribute column.
enum class AttrType {
  kDouble,
  kString,
  kBool,
};

// One attribute value. LBS tuples carry non-location attributes — POI name,
// review rating, school enrollment, user gender — that aggregates are
// evaluated over and selection conditions filter on (§2.1, §2.3).
using AttrValue = std::variant<double, std::string, bool>;

// Returns the AttrType tag of a value.
AttrType TypeOf(const AttrValue& value);

// Human-readable rendering (for examples and debugging).
std::string ToString(const AttrValue& value);

// Column layout shared by all tuples of a dataset. Columns are added once
// at dataset construction; lookups by name are used at experiment-definition
// time only (hot paths use the integer column id).
class Schema {
 public:
  // Adds a column and returns its id. Duplicate names are rejected.
  int AddColumn(const std::string& name, AttrType type);

  // Column id for `name`, or nullopt.
  std::optional<int> Find(const std::string& name) const;

  // Column id for `name`; check-fails when absent.
  int Require(const std::string& name) const;

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const std::string& name(int col) const;
  AttrType type(int col) const;

 private:
  struct Column {
    std::string name;
    AttrType type;
  };
  std::vector<Column> columns_;
};

}  // namespace lbsagg

#endif  // LBSAGG_LBS_ATTRIBUTE_H_
