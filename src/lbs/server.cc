#include "lbs/server.h"

#include <algorithm>
#include <cmath>

#include "spatial/backend.h"
#include "util/check.h"
#include "util/rng.h"

namespace lbsagg {

std::vector<Vec2> ComputeEffectivePositions(const Dataset& dataset,
                                            const ServerOptions& options) {
  std::vector<Vec2> positions = dataset.Positions();
  if (options.obfuscation_radius <= 0.0) return positions;
  for (size_t i = 0; i < positions.size(); ++i) {
    // Deterministic per-tuple noise so repeated queries are consistent, as
    // they are on the real services.
    Rng rng(options.obfuscation_seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    const double angle = rng.Uniform(0.0, 2.0 * M_PI);
    const double radius = options.obfuscation_radius * std::sqrt(rng.Uniform01());
    positions[i] += Vec2{std::cos(angle), std::sin(angle)} * radius;
    positions[i] = dataset.box().Clamp(positions[i]);
  }
  return positions;
}

LbsServer::LbsServer(const Dataset* dataset, ServerOptions options)
    : dataset_(dataset),
      options_(options),
      effective_pos_(ComputeEffectivePositions(*dataset, options)) {
  LBSAGG_CHECK_GE(options_.max_k, 1);
  index_ = MakeSpatialIndex(options_.index_backend, effective_pos_,
                            dataset->box(), options_.stats_registry);
  if (options_.ranking == RankingMode::kProminence) {
    LBSAGG_CHECK(std::isfinite(options_.max_radius))
        << "prominence ranking requires a finite max_radius";
    const int col = dataset_->schema().Require(options_.prominence_column);
    LBSAGG_CHECK(dataset_->schema().type(col) == AttrType::kDouble);
    prominence_.reserve(dataset_->size());
    for (const Tuple& t : dataset_->tuples()) {
      prominence_.push_back(std::get<double>(t.values[col]));
    }
  }
}

std::vector<ServerHit> LbsServer::Query(const Vec2& q, int k,
                                        const TupleFilter& filter) const {
  LBSAGG_CHECK_GE(k, 1);
  k = std::min(k, options_.max_k);

  IndexFilter index_filter;
  if (filter) {
    index_filter = [this, &filter](int id) {
      return filter(dataset_->tuple(id));
    };
  }

  std::vector<Neighbor> candidates;
  if (options_.ranking == RankingMode::kProminence) {
    // Gather everything inside the coverage radius, score, and re-rank.
    candidates = index_->WithinRadius(q, options_.max_radius);
    if (index_filter) {
      std::erase_if(candidates,
                    [&](const Neighbor& n) { return !index_filter(n.index); });
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](const Neighbor& a, const Neighbor& b) {
                const double sa =
                    a.distance - options_.prominence_weight * prominence_[a.index];
                const double sb =
                    b.distance - options_.prominence_weight * prominence_[b.index];
                return sa < sb || (sa == sb && a.index < b.index);
              });
    if (candidates.size() > static_cast<size_t>(k)) candidates.resize(k);
  } else {
    candidates = index_->NearestFiltered(q, k, index_filter);
    while (!candidates.empty() &&
           candidates.back().distance > options_.max_radius) {
      candidates.pop_back();
    }
  }

  std::vector<ServerHit> hits;
  hits.reserve(candidates.size());
  for (const Neighbor& n : candidates) hits.push_back({n.index, n.distance});
  return hits;
}

const Vec2& LbsServer::EffectivePosition(int id) const {
  LBSAGG_CHECK_GE(id, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(id), effective_pos_.size());
  return effective_pos_[id];
}

}  // namespace lbsagg
