#ifndef LBSAGG_LBS_SERVER_H_
#define LBSAGG_LBS_SERVER_H_

#include <limits>
#include <string>
#include <vector>

#include <memory>

#include "lbs/dataset.h"
#include "spatial/backend.h"
#include "spatial/spatial_index.h"

namespace lbsagg {

// How the server ranks candidate tuples (§5.3).
enum class RankingMode {
  // Ascending Euclidean distance — the model used by most of the paper.
  kDistance,
  // "Prominence": score = distance − prominence_weight · static_score, so a
  // popular tuple can outrank a closer one (Google Places' default mode).
  kProminence,
};

// Spatial index backend of the simulated service — invisible through the
// interface (all backends return bit-identical results; see
// spatial/backend.h for the selection trade-offs).
using IndexBackend = SpatialBackend;

// Server-side configuration mirroring the real-world interface constraints
// catalogued in §2.1 and §5.3.
struct ServerOptions {
  // Interface top-k restriction: the largest k a client may request.
  int max_k = 10;

  // Maximum coverage radius d_max; tuples farther than this from the query
  // location are never returned (Google Maps: 50 km, Weibo: 11 km).
  double max_radius = std::numeric_limits<double>::infinity();

  RankingMode ranking = RankingMode::kDistance;

  // Name of the double column holding the static score for kProminence.
  std::string prominence_column = {};
  double prominence_weight = 0.0;

  // Location obfuscation (WeChat-style, §6.3 "Localization Accuracy"): each
  // tuple's position is replaced, deterministically per tuple, by a point
  // uniform in a disc of this radius around the true position. Ranking and
  // returned locations use the obfuscated positions.
  double obfuscation_radius = 0.0;
  uint64_t obfuscation_seed = 0x0bf5ca7ed;

  IndexBackend index_backend = IndexBackend::kKdTree;

  // When set, the spatial index publishes its per-search work counters
  // (spatial.kdtree.* / spatial.learned.*) to this registry. Opt-in —
  // unlike the client and
  // estimator layers there is no null-means-default fallback, because the
  // index search is the hottest loop in the system and only runs that emit
  // run reports should pay the per-search counter flush. Pass
  // &obs::MetricsRegistry::Default() to land on the process-wide plane.
  obs::MetricsRegistry* stats_registry = nullptr;
};

// One ranked hit; `distance` is measured to the tuple's effective
// (possibly obfuscated) position.
struct ServerHit {
  int tuple_id = -1;
  double distance = 0.0;
};

// Effective (possibly obfuscated) tuple positions in id order — the exact
// per-tuple deterministic noise LbsServer applies, exposed so sharded
// front-ends (lbs/sharded_server.h) rank against identical positions.
std::vector<Vec2> ComputeEffectivePositions(const Dataset& dataset,
                                            const ServerOptions& options);

// The LBS backend: full access to the dataset plus a spatial index. Client
// classes (lbs/client.h) wrap it with the restricted public interfaces that
// the estimation algorithms are allowed to use.
class LbsServer {
 public:
  // `dataset` must outlive the server.
  LbsServer(const Dataset* dataset, ServerOptions options = {});

  // Answers a kNN query at `q` for min(k, max_k) tuples, honoring
  // max_radius and the optional pass-through selection condition.
  std::vector<ServerHit> Query(const Vec2& q, int k,
                               const TupleFilter& filter = nullptr) const;

  const Dataset& dataset() const { return *dataset_; }
  const ServerOptions& options() const { return options_; }

  // Effective (obfuscated) position of a tuple; equals the true position
  // when obfuscation_radius == 0.
  const Vec2& EffectivePosition(int id) const;

 private:
  const Dataset* dataset_;
  ServerOptions options_;
  std::vector<Vec2> effective_pos_;
  std::vector<double> prominence_;  // empty unless kProminence
  std::unique_ptr<SpatialIndex> index_;
};

}  // namespace lbsagg

#endif  // LBSAGG_LBS_SERVER_H_
