#include "lbs/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace lbsagg {

Dataset::Dataset(Box box, Schema schema)
    : box_(box), schema_(std::move(schema)) {}

int Dataset::Add(const Vec2& pos, std::vector<AttrValue> values) {
  LBSAGG_CHECK_EQ(static_cast<int>(values.size()), schema_.num_columns());
  for (size_t c = 0; c < values.size(); ++c) {
    LBSAGG_CHECK(TypeOf(values[c]) == schema_.type(static_cast<int>(c)))
        << "type mismatch in column " << schema_.name(static_cast<int>(c));
  }
  Tuple t;
  t.id = static_cast<int>(tuples_.size());
  t.pos = pos;
  t.values = std::move(values);
  tuples_.push_back(std::move(t));
  return tuples_.back().id;
}

const Tuple& Dataset::tuple(int id) const {
  LBSAGG_CHECK_GE(id, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(id), tuples_.size());
  return tuples_[id];
}

std::vector<Vec2> Dataset::Positions() const {
  std::vector<Vec2> out;
  out.reserve(tuples_.size());
  for (const Tuple& t : tuples_) out.push_back(t.pos);
  return out;
}

int Dataset::JitterDuplicates(Rng& rng, double eps) {
  LBSAGG_CHECK_GT(eps, 0.0);
  struct Key {
    int64_t x, y;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<int64_t>()(k.x * 1000003 ^ k.y);
    }
  };
  int moved = 0;
  std::unordered_map<Key, int, KeyHash> seen;
  for (Tuple& t : tuples_) {
    while (true) {
      const Key key{static_cast<int64_t>(std::llround(t.pos.x / eps)),
                    static_cast<int64_t>(std::llround(t.pos.y / eps))};
      auto [it, inserted] = seen.emplace(key, t.id);
      if (inserted) break;
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      t.pos = box_.Clamp(t.pos + Vec2{std::cos(angle), std::sin(angle)} *
                                     (eps * (2.0 + rng.Uniform01())));
      ++moved;
    }
  }
  return moved;
}

double Dataset::GroundTruthSum(
    const TupleFilter& cond,
    const std::function<double(const Tuple&)>& value) const {
  LBSAGG_CHECK(value != nullptr);
  double total = 0.0;
  for (const Tuple& t : tuples_) {
    if (cond && !cond(t)) continue;
    total += value(t);
  }
  return total;
}

double Dataset::GroundTruthCount(const TupleFilter& cond) const {
  return GroundTruthSum(cond, [](const Tuple&) { return 1.0; });
}

Dataset Dataset::Subsample(double fraction, Rng& rng) const {
  LBSAGG_CHECK_GT(fraction, 0.0);
  LBSAGG_CHECK_LE(fraction, 1.0);
  Dataset out(box_, schema_);
  for (const Tuple& t : tuples_) {
    if (rng.Bernoulli(fraction)) out.Add(t.pos, t.values);
  }
  return out;
}

}  // namespace lbsagg
