#include "lbs/dataset_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace lbsagg {

namespace {

std::string TypeName(AttrType type) {
  switch (type) {
    case AttrType::kDouble:
      return "double";
    case AttrType::kString:
      return "string";
    case AttrType::kBool:
      return "bool";
  }
  return "unknown";
}

std::optional<AttrType> ParseTypeName(const std::string& name) {
  if (name == "double") return AttrType::kDouble;
  if (name == "string") return AttrType::kString;
  if (name == "bool") return AttrType::kBool;
  return std::nullopt;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

void WriteDatasetCsv(const Dataset& dataset, std::ostream& out) {
  const Box& box = dataset.box();
  out.precision(17);
  out << "# box " << box.lo.x << " " << box.lo.y << " " << box.hi.x << " "
      << box.hi.y << "\n";
  out << "x,y";
  const Schema& schema = dataset.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    out << "," << schema.name(c) << ":" << TypeName(schema.type(c));
  }
  out << "\n";
  for (const Tuple& t : dataset.tuples()) {
    out << t.pos.x << "," << t.pos.y;
    for (const AttrValue& v : t.values) {
      out << ",";
      if (const double* d = std::get_if<double>(&v)) {
        out << *d;  // full precision via the stream, not ToString's 6 digits
      } else {
        out << ToString(v);
      }
    }
    out << "\n";
  }
}

bool SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteDatasetCsv(dataset, out);
  return static_cast<bool>(out);
}

std::optional<Dataset> ReadDatasetCsv(std::istream& in, std::string* error) {
  std::string line;

  // Box comment.
  if (!std::getline(in, line) || line.rfind("# box ", 0) != 0) {
    Fail(error, "missing '# box lo.x lo.y hi.x hi.y' header line");
    return std::nullopt;
  }
  std::istringstream box_stream(line.substr(6));
  Vec2 lo, hi;
  if (!(box_stream >> lo.x >> lo.y >> hi.x >> hi.y) || lo.x > hi.x ||
      lo.y > hi.y) {
    Fail(error, "malformed box line: " + line);
    return std::nullopt;
  }

  // Column header.
  if (!std::getline(in, line)) {
    Fail(error, "missing column header");
    return std::nullopt;
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 2 || header[0] != "x" || header[1] != "y") {
    Fail(error, "header must start with x,y");
    return std::nullopt;
  }
  Schema schema;
  for (size_t c = 2; c < header.size(); ++c) {
    const size_t colon = header[c].find(':');
    if (colon == std::string::npos) {
      Fail(error, "column '" + header[c] + "' lacks a :type suffix");
      return std::nullopt;
    }
    const std::optional<AttrType> type =
        ParseTypeName(header[c].substr(colon + 1));
    if (!type.has_value()) {
      Fail(error, "unknown type in column '" + header[c] + "'");
      return std::nullopt;
    }
    schema.AddColumn(header[c].substr(0, colon), *type);
  }

  Dataset dataset(Box(lo, hi), schema);
  int row = 0;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != header.size()) {
      Fail(error, "row " + std::to_string(row) + " has " +
                      std::to_string(cells.size()) + " cells, expected " +
                      std::to_string(header.size()));
      return std::nullopt;
    }
    Vec2 pos;
    char* end = nullptr;
    pos.x = std::strtod(cells[0].c_str(), &end);
    if (*end != '\0') {
      Fail(error, "row " + std::to_string(row) + ": bad x '" + cells[0] + "'");
      return std::nullopt;
    }
    pos.y = std::strtod(cells[1].c_str(), &end);
    if (*end != '\0') {
      Fail(error, "row " + std::to_string(row) + ": bad y '" + cells[1] + "'");
      return std::nullopt;
    }
    std::vector<AttrValue> values;
    values.reserve(header.size() - 2);
    for (size_t c = 2; c < cells.size(); ++c) {
      const AttrType type = schema.type(static_cast<int>(c) - 2);
      switch (type) {
        case AttrType::kDouble: {
          const double v = std::strtod(cells[c].c_str(), &end);
          if (cells[c].empty() || *end != '\0') {
            Fail(error, "row " + std::to_string(row) + ": bad double '" +
                            cells[c] + "'");
            return std::nullopt;
          }
          values.emplace_back(v);
          break;
        }
        case AttrType::kString:
          values.emplace_back(cells[c]);
          break;
        case AttrType::kBool:
          if (cells[c] != "true" && cells[c] != "false") {
            Fail(error, "row " + std::to_string(row) + ": bad bool '" +
                            cells[c] + "'");
            return std::nullopt;
          }
          values.emplace_back(cells[c] == "true");
          break;
      }
    }
    dataset.Add(pos, std::move(values));
  }
  return dataset;
}

std::optional<Dataset> LoadDatasetCsv(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return ReadDatasetCsv(in, error);
}

}  // namespace lbsagg
