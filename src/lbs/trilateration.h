#ifndef LBSAGG_LBS_TRILATERATION_H_
#define LBSAGG_LBS_TRILATERATION_H_

#include <optional>

#include "geometry/vec2.h"
#include "lbs/client.h"

namespace lbsagg {

// Solves for the point p with |p − q_i| = d_i, i = 0..2, by linearizing the
// circle equations. Returns nullopt when the query points are (nearly)
// collinear. The distances may be slightly inconsistent (noise); the
// least-constraint linear solution is returned.
std::optional<Vec2> Trilaterate(const Vec2 centers[3], const double dists[3]);

// Recovers the location of tuple `id` through a distance-returning LBS
// (§2.1: "one can infer the precise location of a tuple with just 3
// queries"). `q0` must be a location where the service returns `id`.
// Issues up to a handful of queries (3 in the common case: q0 plus two
// probes placed so the tuple stays within range). Returns nullopt when the
// tuple could not be kept inside the top-k of the probe queries.
std::optional<Vec2> LocateByTrilateration(DistanceClient& client, int id,
                                          const Vec2& q0);

}  // namespace lbsagg

#endif  // LBSAGG_LBS_TRILATERATION_H_
