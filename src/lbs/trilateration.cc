#include "lbs/trilateration.h"

#include <cmath>

namespace lbsagg {

std::optional<Vec2> Trilaterate(const Vec2 centers[3], const double dists[3]) {
  // Subtracting the circle equation at centers[0] from the other two gives
  // two linear equations A p = b.
  const Vec2 r1 = centers[1] - centers[0];
  const Vec2 r2 = centers[2] - centers[0];
  const double det = 2.0 * Cross(r1, r2);
  const double scale =
      std::max({1.0, SquaredNorm(r1), SquaredNorm(r2)});
  if (std::abs(det) < 1e-12 * scale) return std::nullopt;

  const double b1 = SquaredNorm(centers[1]) - SquaredNorm(centers[0]) +
                    dists[0] * dists[0] - dists[1] * dists[1];
  const double b2 = SquaredNorm(centers[2]) - SquaredNorm(centers[0]) +
                    dists[0] * dists[0] - dists[2] * dists[2];
  // Solve [2 r1; 2 r2] p = [b1; b2] by Cramer's rule.
  const double x = (b1 * (2.0 * r2.y) - b2 * (2.0 * r1.y)) / (2.0 * det);
  const double y = ((2.0 * r1.x) * b2 - (2.0 * r2.x) * b1) / (2.0 * det);
  return Vec2{x, y};
}

namespace {

// Distance to `id` in a query result, or nullopt when not returned.
std::optional<double> DistanceToId(const std::vector<DistanceClient::Item>& r,
                                   int id) {
  for (const auto& item : r) {
    if (item.id == id) return item.distance;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Vec2> LocateByTrilateration(DistanceClient& client, int id,
                                          const Vec2& q0) {
  const std::optional<double> d0 = DistanceToId(client.Query(q0), id);
  if (!d0.has_value()) return std::nullopt;
  if (*d0 == 0.0) return q0;

  // Probe two perpendicular offsets. If the tuple drops out of the top-k at
  // a probe (other tuples crowd it out), shrink the offset and retry.
  double h = 0.5 * *d0;
  for (int attempt = 0; attempt < 6; ++attempt, h *= 0.5) {
    const Vec2 q1 = q0 + Vec2{h, 0.0};
    const std::optional<double> d1 = DistanceToId(client.Query(q1), id);
    if (!d1.has_value()) continue;
    const Vec2 q2 = q0 + Vec2{0.0, h};
    const std::optional<double> d2 = DistanceToId(client.Query(q2), id);
    if (!d2.has_value()) continue;
    const Vec2 centers[3] = {q0, q1, q2};
    const double dists[3] = {*d0, *d1, *d2};
    if (std::optional<Vec2> p = Trilaterate(centers, dists)) return p;
  }
  return std::nullopt;
}

}  // namespace lbsagg
