#include "lbs/client.h"

#include <algorithm>

#include "lbs/trilateration.h"
#include "util/check.h"

namespace lbsagg {

LbsClient::LbsClient(const LbsServer* server, ClientOptions options)
    : server_(server),
      options_(options),
      k_(std::min(options.k, server->options().max_k)),
      queries_counter_(obs::GetCounter(options.registry, "client.queries")),
      memo_hits_counter_(
          obs::GetCounter(options.registry, "client.memo_hits")),
      tracer_(options.tracer) {
  LBSAGG_CHECK_GE(options.k, 1);
}

LbsClient::LbsClient(const LbsServer* server, ClientOptions options,
                     LbsTransport* transport, BatchExecutor* batch)
    : LbsClient(server, options) {
  transport_ = transport;
  batch_ = batch;
}

bool LbsClient::HasBudget(uint64_t upcoming) const {
  if (options_.budget == 0) return true;
  return queries_used() + upcoming <= options_.budget;
}

uint64_t LbsClient::MemoStateHash() const {
  // Commutative combine (sum of per-key mixes) so the unordered_map's
  // iteration order — which varies across processes — cannot change the
  // hash. 0 iff the memo is empty.
  uint64_t hash = 0;
  LocKeyHash key_hash;
  for (const auto& [key, hits] : memo_) {
    hash += SplitMix64(static_cast<uint64_t>(key_hash(key)) ^
                       (0x9e3779b97f4a7c15ull + hits.size()));
  }
  return hash;
}

void LbsClient::SetPassThroughFilter(TupleFilter filter) {
  filter_ = std::move(filter);
  memo_.clear();
}

AttrValue LbsClient::Attribute(int id, int col) const {
  const Tuple& t = server_->dataset().tuple(id);
  LBSAGG_CHECK_GE(col, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(col), t.values.size());
  return t.values[col];
}

double LbsClient::NumericAttribute(int id, int col) const {
  const AttrValue v = Attribute(id, col);
  const double* d = std::get_if<double>(&v);
  LBSAGG_CHECK(d != nullptr) << "column " << schema().name(col)
                             << " is not numeric";
  return *d;
}

std::vector<ServerHit> LbsClient::RawQuery(const Vec2& q) {
  obs::ScopedSpan span(tracer_, "client.query", "client");
  if (transport_ == nullptr) {  // zero-overhead direct wire
    ChargeQuery(q, 1);
    return server_->Query(q, k_, filter_);
  }
  TransportReply reply = transport_->Query(q, k_, filter_);
  ChargeQuery(q, static_cast<uint64_t>(reply.attempts));
  return std::move(reply.hits);
}

std::vector<std::vector<ServerHit>> LbsClient::RawQueryBatch(
    const std::vector<Vec2>& points) {
  std::vector<std::vector<ServerHit>> pages(points.size());
  if (transport_ != nullptr && batch_ != nullptr) {
    obs::ScopedSpan span(tracer_, "client.query_batch", "client");
    std::vector<TransportReply> replies =
        batch_->QueryBatch(points, k_, filter_);
    for (size_t i = 0; i < points.size(); ++i) {
      ChargeQuery(points[i], static_cast<uint64_t>(replies[i].attempts));
      pages[i] = std::move(replies[i].hits);
    }
    return pages;
  }
  for (size_t i = 0; i < points.size(); ++i) pages[i] = RawQuery(points[i]);
  return pages;
}

std::vector<std::vector<ServerHit>> LbsClient::MemoQueryBatch(
    const std::vector<Vec2>& points) {
  if (!options_.memoize_queries) return RawQueryBatch(points);
  if (memo_grid_ == 0.0) memo_grid_ = LocKeyGrid(region());

  // Resolve memo hits up front and deduplicate misses within the batch, so
  // the accounting matches the sequential MemoQuery loop exactly.
  std::vector<std::vector<ServerHit>> pages(points.size());
  std::vector<Vec2> misses;
  std::vector<LocKey> miss_keys;
  std::unordered_map<LocKey, size_t, LocKeyHash> miss_index;
  struct Pending {
    size_t point_index;
    size_t miss_index;
  };
  std::vector<Pending> pending;
  for (size_t i = 0; i < points.size(); ++i) {
    const LocKey key = MakeLocKey(points[i], memo_grid_);
    if (auto it = memo_.find(key); it != memo_.end()) {
      CountMemoHit();
      pages[i] = it->second;
      continue;
    }
    auto [slot, inserted] = miss_index.try_emplace(key, misses.size());
    if (inserted) {
      misses.push_back(points[i]);
      miss_keys.push_back(key);
    } else {
      CountMemoHit();  // duplicate within the batch: the first fetch answers it
    }
    pending.push_back({i, slot->second});
  }

  const std::vector<std::vector<ServerHit>> fetched = RawQueryBatch(misses);
  for (size_t m = 0; m < misses.size(); ++m) {
    memo_[miss_keys[m]] = fetched[m];
  }
  for (const Pending& p : pending) pages[p.point_index] = fetched[p.miss_index];
  return pages;
}

const std::vector<ServerHit>& LbsClient::MemoQuery(const Vec2& q) {
  if (!options_.memoize_queries) {
    memo_scratch_ = RawQuery(q);
    return memo_scratch_;
  }
  if (memo_grid_ == 0.0) memo_grid_ = LocKeyGrid(region());
  const LocKey key = MakeLocKey(q, memo_grid_);
  auto [it, inserted] = memo_.try_emplace(key);
  if (inserted) {
    it->second = RawQuery(q);
  } else {
    CountMemoHit();
  }
  return it->second;
}

std::vector<LrClient::Item> LrClient::Query(const Vec2& q) {
  const std::vector<ServerHit>& hits = MemoQuery(q);
  std::vector<Item> items;
  items.reserve(hits.size());
  for (const ServerHit& h : hits) {
    items.push_back({h.tuple_id, server_->EffectivePosition(h.tuple_id),
                     h.distance});
  }
  return items;
}

std::vector<std::vector<LrClient::Item>> LrClient::QueryBatch(
    const std::vector<Vec2>& points) {
  const std::vector<std::vector<ServerHit>> pages = MemoQueryBatch(points);
  std::vector<std::vector<Item>> results(pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    results[i].reserve(pages[i].size());
    for (const ServerHit& h : pages[i]) {
      results[i].push_back(
          {h.tuple_id, server_->EffectivePosition(h.tuple_id), h.distance});
    }
  }
  return results;
}

std::vector<int> LnrClient::Query(const Vec2& q) {
  const std::vector<ServerHit>& hits = MemoQuery(q);
  std::vector<int> ids;
  ids.reserve(hits.size());
  for (const ServerHit& h : hits) ids.push_back(h.tuple_id);
  return ids;
}

bool LnrClient::Returns(const Vec2& q, int id) {
  const std::vector<int> ids = Query(q);
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

int LnrClient::Top1(const Vec2& q) {
  const std::vector<int> ids = Query(q);
  return ids.empty() ? -1 : ids.front();
}

std::optional<double> TrilaterationClient::ProbeDistance(const Vec2& p,
                                                         int id) {
  for (const ServerHit& hit : RawQuery(p)) {
    if (hit.tuple_id == id) return hit.distance;
  }
  return std::nullopt;
}

std::vector<LrClient::Item> TrilaterationClient::Query(const Vec2& q) {
  const std::vector<ServerHit> hits = RawQuery(q);
  std::vector<Item> items;
  items.reserve(hits.size());
  for (const ServerHit& h : hits) {
    auto cached = position_cache_.find(h.tuple_id);
    if (cached == position_cache_.end()) {
      // Recover the position from the distances at q and two perpendicular
      // probe offsets (§2.1 trilateration); shrink the offset if the tuple
      // drops out of the top-k at a probe.
      std::optional<Vec2> position;
      double offset = std::max(0.5 * h.distance, 1e-9);
      for (int attempt = 0; attempt < 6 && !position.has_value();
           ++attempt, offset *= 0.5) {
        const Vec2 q1 = q + Vec2{offset, 0.0};
        const std::optional<double> d1 = ProbeDistance(q1, h.tuple_id);
        if (!d1.has_value()) continue;
        const Vec2 q2 = q + Vec2{0.0, offset};
        const std::optional<double> d2 = ProbeDistance(q2, h.tuple_id);
        if (!d2.has_value()) continue;
        const Vec2 centers[3] = {q, q1, q2};
        const double dists[3] = {h.distance, *d1, *d2};
        position = Trilaterate(centers, dists);
      }
      if (h.distance == 0.0) position = q;
      if (!position.has_value()) continue;  // could not pin down: drop
      cached = position_cache_.emplace(h.tuple_id, *position).first;
    }
    items.push_back({h.tuple_id, cached->second, h.distance});
  }
  return items;
}

std::vector<std::vector<LrClient::Item>> TrilaterationClient::QueryBatch(
    const std::vector<Vec2>& points) {
  std::vector<std::vector<Item>> results;
  results.reserve(points.size());
  for (const Vec2& p : points) results.push_back(Query(p));
  return results;
}

std::vector<DistanceClient::Item> DistanceClient::Query(const Vec2& q) {
  const std::vector<ServerHit> hits = RawQuery(q);
  std::vector<Item> items;
  items.reserve(hits.size());
  for (const ServerHit& h : hits) items.push_back({h.tuple_id, h.distance});
  return items;
}

}  // namespace lbsagg
