#ifndef LBSAGG_LBS_SHARDED_SERVER_H_
#define LBSAGG_LBS_SHARDED_SERVER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "lbs/server.h"

namespace lbsagg {

// How tuples are assigned to shards. Both partitioners are pure functions
// of (dataset, options), so a sharded deployment is reproducible from its
// configuration alone.
enum class ShardPartition {
  // Morton-order range partition: tuples sorted by the Z-curve key of their
  // effective position, cut into num_shards near-equal contiguous runs.
  // Shards are spatially coherent, which is what makes coverage-radius
  // shard pruning (ReachableShards) effective.
  kSpatial,
  // Seeded hash of the tuple id: shards are unbiased samples of the whole
  // region (every shard's bounding box ≈ the full box, so no pruning).
  kHash,
};

struct ShardedServerOptions {
  int num_shards = 4;
  ShardPartition partition = ShardPartition::kSpatial;

  // Salt for kHash assignment (kSpatial is deterministic without it).
  uint64_t partition_seed = 0x51a2d;

  // Worker threads for the parallel per-shard index build;
  // 0 = hardware concurrency.
  unsigned build_threads = 0;

  // Interface constraints every shard enforces (max_k, max_radius, ranking,
  // obfuscation, index backend) — identical to the monolithic server's.
  ServerOptions server = {};
};

// Construction cost breakdown, for bench/fig18_sharded.cc. The serial
// partition prefix plus the *longest* shard build is the critical path: the
// wall time an N-core machine pays when every shard builds concurrently.
struct ShardBuildStats {
  double wall_ms = 0.0;       // partition + build, end to end, on this host
  double partition_ms = 0.0;  // serial prefix (partition + point scatter)
  std::vector<double> shard_build_ms;

  double critical_path_ms() const {
    double worst = 0.0;
    for (double ms : shard_build_ms) worst = std::max(worst, ms);
    return partition_ms + worst;
  }
};

// One merge-fold candidate. `d2` is the exact squared distance
// dx*dx + dy*dy — the builds use no FP-contraction flags, so the value is
// the same IEEE double in every translation unit, and ordering by it
// reproduces the SpatialIndex (squared distance, index) contract exactly.
// Sorting by `distance` instead would be wrong: two distinct d2 can round
// to the same sqrt, and the id tie-break would then disagree with the
// index's d2 order.
struct ShardCandidate {
  double d2 = 0.0;
  double distance = 0.0;  // sqrt(d2), what the ServerHit carries
  int id = -1;            // global tuple id
};

// The pure deterministic merge fold: top-k of `candidates` under the total
// order (d2, id). Input order is irrelevant — any permutation (shard
// arrival order, worker interleaving) folds to the same output.
std::vector<ServerHit> FoldTopK(std::vector<ShardCandidate> candidates, int k);

// A horizontally partitioned LbsServer: N shards, each owning a disjoint
// slice of the dataset behind its own SpatialIndex (built in parallel at
// construction). Queries scatter to the reachable shards and gather through
// the (d2, id) fold, so every answer is bit-identical to the monolithic
// LbsServer over the same dataset and options — the shard count is
// invisible through the interface, exactly like the index backend
// (sharded_server_test.cc asserts this for every mode).
//
// Thread-safety: construction is internally parallel; afterwards the object
// is immutable and every method is const and safe to call concurrently.
class ShardedLbsServer {
 public:
  // `dataset` must outlive the server.
  ShardedLbsServer(const Dataset* dataset, ShardedServerOptions options = {});

  // Scatter-gather kNN, bit-identical to LbsServer::Query. Shards whose
  // bounding box is provably outside max_radius — or farther than the
  // current k-th candidate once k are held — are pruned; pruning never
  // changes the answer, only the work.
  std::vector<ServerHit> Query(const Vec2& q, int k,
                               const TupleFilter& filter = nullptr) const;

  // Scatter-gather range query: all tuples within `radius` (inclusive),
  // sorted by the canonical (d2, id) order.
  std::vector<ServerHit> WithinRadius(const Vec2& q, double radius) const;

  // The per-shard endpoint the sharded transport fans out to: this shard's
  // top-k page (global tuple ids, clamped to max_k, radius-trimmed; under
  // kProminence, scored and re-ranked shard-locally). Merging every
  // reachable shard's page with MergeShardPages reproduces Query exactly.
  std::vector<ServerHit> QueryShard(int shard, const Vec2& q, int k,
                                    const TupleFilter& filter = nullptr) const;

  // Gathers per-shard pages into the final top-k: the (d2, id) fold under
  // kDistance, the (score, id) re-rank under kProminence. Pure and
  // deterministic — page order and page-internal order are irrelevant.
  std::vector<ServerHit> MergeShardPages(
      const Vec2& q, const std::vector<std::vector<ServerHit>>& pages,
      int k) const;

  // Shards that could contribute to any query at `q` under the coverage
  // radius: mind2(q, shard bbox) <= max_radius^2, ascending shard id, empty
  // shards skipped. With an infinite max_radius this is every non-empty
  // shard. Pure geometry — the sharded transport uses it to decide the
  // scatter fan-out before any backend work runs.
  std::vector<int> ReachableShards(const Vec2& q) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int shard_of(int tuple_id) const;
  // Global tuple ids owned by `shard`, ascending.
  const std::vector<int>& shard_ids(int shard) const;

  const Dataset& dataset() const { return *dataset_; }
  const ShardedServerOptions& options() const { return options_; }
  const ShardBuildStats& build_stats() const { return build_stats_; }

  // Effective (obfuscated) position of a tuple; identical to the monolithic
  // LbsServer's for the same ServerOptions.
  const Vec2& EffectivePosition(int id) const;

 private:
  struct Shard {
    std::vector<int> ids;  // ascending global ids
    std::unique_ptr<SpatialIndex> index;
    Box bbox;  // of the shard's effective positions; valid iff !ids.empty()
  };

  // Squared distance from q to shard's bbox (0 inside); +inf when empty.
  double ShardMinDist2(const Shard& shard, const Vec2& q) const;
  void AppendShardCandidates(int shard, const Vec2& q, int k,
                             const TupleFilter& filter,
                             std::vector<ShardCandidate>* out) const;

  const Dataset* dataset_;
  ShardedServerOptions options_;
  std::vector<Vec2> effective_pos_;  // global, id order
  std::vector<double> prominence_;   // empty unless kProminence
  std::vector<int> shard_of_;        // tuple id -> shard
  std::vector<Shard> shards_;
  ShardBuildStats build_stats_;
};

}  // namespace lbsagg

#endif  // LBSAGG_LBS_SHARDED_SERVER_H_
