#include "lbs/sharded_server.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "geometry/loc_key.h"
#include "spatial/backend.h"
#include "util/check.h"

namespace lbsagg {

namespace {

// 16-bit Z-curve interleave for the spatial partitioner. Partition-grade
// resolution only — shard membership just needs spatial coherence, not the
// full-precision curve the learned index uses.
uint32_t SpreadBits16(uint32_t v) {
  v &= 0xffffu;
  v = (v | (v << 8)) & 0x00ff00ffu;
  v = (v | (v << 4)) & 0x0f0f0f0fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

uint32_t Quantize16(double v, double lo, double span) {
  if (!(span > 0.0)) return 0;
  const double t = std::clamp((v - lo) / span, 0.0, 1.0);
  return static_cast<uint32_t>(t * 65535.0 + 0.5);
}

uint32_t MortonKey(const Vec2& p, const Box& box) {
  return SpreadBits16(Quantize16(p.x, box.lo.x, box.width())) |
         (SpreadBits16(Quantize16(p.y, box.lo.y, box.height())) << 1);
}

void SortTruncate(std::vector<ShardCandidate>* candidates, int k) {
  std::sort(candidates->begin(), candidates->end(),
            [](const ShardCandidate& a, const ShardCandidate& b) {
              return a.d2 < b.d2 || (a.d2 == b.d2 && a.id < b.id);
            });
  if (candidates->size() > static_cast<size_t>(k)) candidates->resize(k);
}

std::vector<ServerHit> ToHits(const std::vector<ShardCandidate>& candidates) {
  std::vector<ServerHit> hits;
  hits.reserve(candidates.size());
  for (const ShardCandidate& c : candidates)
    hits.push_back({c.id, c.distance});
  return hits;
}

double SquaredDistanceTo(const Vec2& q, const Vec2& p) {
  const double dx = p.x - q.x;
  const double dy = p.y - q.y;
  return dx * dx + dy * dy;
}

}  // namespace

std::vector<ServerHit> FoldTopK(std::vector<ShardCandidate> candidates,
                                int k) {
  LBSAGG_CHECK_GE(k, 1);
  SortTruncate(&candidates, k);
  return ToHits(candidates);
}

ShardedLbsServer::ShardedLbsServer(const Dataset* dataset,
                                   ShardedServerOptions options)
    : dataset_(dataset), options_(std::move(options)) {
  LBSAGG_CHECK(dataset_ != nullptr);
  LBSAGG_CHECK_GE(options_.num_shards, 1);
  LBSAGG_CHECK_GE(options_.server.max_k, 1);

  const auto t0 = std::chrono::steady_clock::now();
  effective_pos_ = ComputeEffectivePositions(*dataset_, options_.server);
  const int n = static_cast<int>(dataset_->size());
  const int num_shards = options_.num_shards;
  shard_of_.assign(n, 0);
  shards_.resize(num_shards);

  if (num_shards == 1) {
    shards_[0].ids.resize(n);
    std::iota(shards_[0].ids.begin(), shards_[0].ids.end(), 0);
  } else if (options_.partition == ShardPartition::kHash) {
    for (int id = 0; id < n; ++id) {
      shard_of_[id] = static_cast<int>(
          SplitMix64(options_.partition_seed ^
                     (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(id) + 1))) %
          static_cast<uint64_t>(num_shards));
    }
    // Iterating ids in order keeps each shard's id list ascending.
    for (int id = 0; id < n; ++id) shards_[shard_of_[id]].ids.push_back(id);
  } else {
    // Z-order range partition by sampled splitters: each shard owns one
    // contiguous Morton-key range, chosen from the key quantiles of a
    // deterministic stride sample. O(n) assignment instead of an O(n log n)
    // full sort — the partition is off the build's critical path even at
    // 10^8 tuples (bench/fig18_sharded.cc) — at the cost of shard sizes
    // being only approximately equal (splitter-grade, not exact cuts).
    std::vector<uint32_t> key(n);
    for (int id = 0; id < n; ++id) {
      key[id] = MortonKey(effective_pos_[id], dataset_->box());
    }
    const int stride = std::max(1, n / 65536);
    std::vector<uint32_t> sample;
    sample.reserve(static_cast<size_t>(n / stride) + 1);
    for (int id = 0; id < n; id += stride) sample.push_back(key[id]);
    std::sort(sample.begin(), sample.end());
    std::vector<uint32_t> splitters;  // shard s owns keys < splitters[s]
    splitters.reserve(num_shards - 1);
    for (int s = 1; s < num_shards; ++s) {
      splitters.push_back(sample[sample.size() * s / num_shards]);
    }
    for (int id = 0; id < n; ++id) {
      shard_of_[id] = static_cast<int>(
          std::upper_bound(splitters.begin(), splitters.end(), key[id]) -
          splitters.begin());
    }
    // Ascending global ids per shard, so the shard index's local-position
    // tie-break equals the global (d2, id) tie order.
    for (int id = 0; id < n; ++id) shards_[shard_of_[id]].ids.push_back(id);
  }

  std::vector<std::vector<Vec2>> shard_points(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    auto& points = shard_points[s];
    points.reserve(shards_[s].ids.size());
    for (int id : shards_[s].ids) points.push_back(effective_pos_[id]);
    if (!points.empty()) {
      Box bbox(points[0], points[0]);
      for (const Vec2& p : points) bbox = bbox.Including(p);
      shards_[s].bbox = bbox;
    }
  }
  build_stats_.partition_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  auto indexes = MakeSpatialIndexes(
      options_.server.index_backend, shard_points, dataset_->box(),
      options_.build_threads, options_.server.stats_registry,
      &build_stats_.shard_build_ms);
  for (int s = 0; s < num_shards; ++s) {
    shards_[s].index = std::move(indexes[s]);
  }
  build_stats_.wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  if (options_.server.ranking == RankingMode::kProminence) {
    LBSAGG_CHECK(std::isfinite(options_.server.max_radius))
        << "prominence ranking requires a finite max_radius";
    const int col =
        dataset_->schema().Require(options_.server.prominence_column);
    LBSAGG_CHECK(dataset_->schema().type(col) == AttrType::kDouble);
    prominence_.reserve(dataset_->size());
    for (const Tuple& t : dataset_->tuples()) {
      prominence_.push_back(std::get<double>(t.values[col]));
    }
  }
}

double ShardedLbsServer::ShardMinDist2(const Shard& shard,
                                       const Vec2& q) const {
  if (shard.ids.empty()) return std::numeric_limits<double>::infinity();
  const Box& b = shard.bbox;
  const double dx = std::max({b.lo.x - q.x, 0.0, q.x - b.hi.x});
  const double dy = std::max({b.lo.y - q.y, 0.0, q.y - b.hi.y});
  return dx * dx + dy * dy;
}

std::vector<int> ShardedLbsServer::ReachableShards(const Vec2& q) const {
  // Distance-domain test: every point p in the shard satisfies
  // d2(q, p) >= mind2 under monotone IEEE rounding, and sqrt(x*x) == x
  // exactly, so sqrt(mind2) > max_radius proves the shard can contribute
  // nothing whether the caller compares distances (the kNN radius trim) or
  // squared distances (the range-query inclusion test).
  const double r = options_.server.max_radius;
  std::vector<int> reachable;
  reachable.reserve(shards_.size());
  for (int s = 0; s < num_shards(); ++s) {
    if (shards_[s].ids.empty()) continue;
    if (std::sqrt(ShardMinDist2(shards_[s], q)) > r) continue;
    reachable.push_back(s);
  }
  return reachable;
}

void ShardedLbsServer::AppendShardCandidates(
    int shard, const Vec2& q, int k, const TupleFilter& filter,
    std::vector<ShardCandidate>* out) const {
  const Shard& sh = shards_[shard];
  IndexFilter index_filter;
  if (filter) {
    index_filter = [this, &sh, &filter](int local) {
      return filter(dataset_->tuple(sh.ids[local]));
    };
  }
  for (const Neighbor& n : sh.index->NearestFiltered(q, k, index_filter)) {
    if (n.distance > options_.server.max_radius) break;  // sorted ascending
    const int id = sh.ids[n.index];
    out->push_back({SquaredDistanceTo(q, effective_pos_[id]), n.distance, id});
  }
}

std::vector<ServerHit> ShardedLbsServer::Query(const Vec2& q, int k,
                                               const TupleFilter& filter) const {
  LBSAGG_CHECK_GE(k, 1);
  k = std::min(k, options_.server.max_k);

  if (options_.server.ranking == RankingMode::kProminence) {
    std::vector<std::vector<ServerHit>> pages;
    for (int s : ReachableShards(q)) {
      pages.push_back(QueryShard(s, q, k, filter));
    }
    return MergeShardPages(q, pages, k);
  }

  // Probe shards in ascending bbox distance; once k candidates are held, a
  // shard whose bbox lies strictly beyond the k-th candidate's d2 — and
  // every later shard, since the order is by bbox distance — can only
  // produce strictly worse (d2, id) keys, so pruning never changes the
  // fold's output, only the work.
  std::vector<std::pair<double, int>> order;  // (mind2, shard)
  order.reserve(shards_.size());
  for (int s : ReachableShards(q)) {
    order.push_back({ShardMinDist2(shards_[s], q), s});
  }
  std::sort(order.begin(), order.end());

  std::vector<ShardCandidate> candidates;
  for (const auto& [mind2, s] : order) {
    if (candidates.size() == static_cast<size_t>(k) &&
        mind2 > candidates.back().d2) {
      break;
    }
    AppendShardCandidates(s, q, k, filter, &candidates);
    SortTruncate(&candidates, k);
  }
  return ToHits(candidates);
}

std::vector<ServerHit> ShardedLbsServer::WithinRadius(const Vec2& q,
                                                      double radius) const {
  LBSAGG_CHECK_GE(radius, 0.0);
  std::vector<ShardCandidate> candidates;
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& sh = shards_[s];
    if (sh.ids.empty()) continue;
    if (std::sqrt(ShardMinDist2(sh, q)) > radius) continue;
    for (const Neighbor& n : sh.index->WithinRadius(q, radius)) {
      const int id = sh.ids[n.index];
      candidates.push_back(
          {SquaredDistanceTo(q, effective_pos_[id]), n.distance, id});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ShardCandidate& a, const ShardCandidate& b) {
              return a.d2 < b.d2 || (a.d2 == b.d2 && a.id < b.id);
            });
  return ToHits(candidates);
}

std::vector<ServerHit> ShardedLbsServer::QueryShard(
    int shard, const Vec2& q, int k, const TupleFilter& filter) const {
  LBSAGG_CHECK_GE(shard, 0);
  LBSAGG_CHECK_LT(shard, num_shards());
  LBSAGG_CHECK_GE(k, 1);
  k = std::min(k, options_.server.max_k);
  const Shard& sh = shards_[shard];
  std::vector<ServerHit> hits;
  if (sh.ids.empty()) return hits;

  if (options_.server.ranking == RankingMode::kProminence) {
    // Shard-local mirror of the monolithic prominence path: everything in
    // coverage, filtered, scored, re-ranked by (score, global id). The
    // shard's top-k page is enough for an exact global merge: any global
    // winner ranks at least as high within its own shard.
    std::vector<Neighbor> in_range =
        sh.index->WithinRadius(q, options_.server.max_radius);
    std::vector<std::pair<double, ShardCandidate>> scored;  // (score, cand)
    scored.reserve(in_range.size());
    for (const Neighbor& n : in_range) {
      const int id = sh.ids[n.index];
      if (filter && !filter(dataset_->tuple(id))) continue;
      const double score =
          n.distance - options_.server.prominence_weight * prominence_[id];
      scored.push_back({score, {0.0, n.distance, id}});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                return a.first < b.first ||
                       (a.first == b.first && a.second.id < b.second.id);
              });
    if (scored.size() > static_cast<size_t>(k)) scored.resize(k);
    hits.reserve(scored.size());
    for (const auto& entry : scored) {
      hits.push_back({entry.second.id, entry.second.distance});
    }
    return hits;
  }

  std::vector<ShardCandidate> candidates;
  AppendShardCandidates(shard, q, k, filter, &candidates);
  return ToHits(candidates);
}

std::vector<ServerHit> ShardedLbsServer::MergeShardPages(
    const Vec2& q, const std::vector<std::vector<ServerHit>>& pages,
    int k) const {
  LBSAGG_CHECK_GE(k, 1);
  k = std::min(k, options_.server.max_k);

  if (options_.server.ranking == RankingMode::kProminence) {
    struct Scored {
      double score;
      int id;
      double distance;
    };
    std::vector<Scored> scored;
    for (const auto& page : pages) {
      for (const ServerHit& h : page) {
        scored.push_back(
            {h.distance - options_.server.prominence_weight *
                              prominence_[h.tuple_id],
             h.tuple_id, h.distance});
      }
    }
    std::sort(scored.begin(), scored.end(), [](const Scored& a,
                                               const Scored& b) {
      return a.score < b.score || (a.score == b.score && a.id < b.id);
    });
    if (scored.size() > static_cast<size_t>(k)) scored.resize(k);
    std::vector<ServerHit> hits;
    hits.reserve(scored.size());
    for (const Scored& s : scored) hits.push_back({s.id, s.distance});
    return hits;
  }

  std::vector<ShardCandidate> candidates;
  for (const auto& page : pages) {
    for (const ServerHit& h : page) {
      candidates.push_back({SquaredDistanceTo(q, effective_pos_[h.tuple_id]),
                            h.distance, h.tuple_id});
    }
  }
  SortTruncate(&candidates, k);
  return ToHits(candidates);
}

int ShardedLbsServer::shard_of(int tuple_id) const {
  LBSAGG_CHECK_GE(tuple_id, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(tuple_id), shard_of_.size());
  return shard_of_[tuple_id];
}

const std::vector<int>& ShardedLbsServer::shard_ids(int shard) const {
  LBSAGG_CHECK_GE(shard, 0);
  LBSAGG_CHECK_LT(shard, num_shards());
  return shards_[shard].ids;
}

const Vec2& ShardedLbsServer::EffectivePosition(int id) const {
  LBSAGG_CHECK_GE(id, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(id), effective_pos_.size());
  return effective_pos_[id];
}

}  // namespace lbsagg
