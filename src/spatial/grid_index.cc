#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"

namespace lbsagg {

GridIndex::GridIndex(std::vector<Vec2> points, const Box& box,
                     int cells_per_axis)
    : points_(std::move(points)), box_(box) {
  const int n = static_cast<int>(points_.size());
  const int per_axis =
      cells_per_axis > 0
          ? cells_per_axis
          : std::max(1, static_cast<int>(std::sqrt(static_cast<double>(
                            std::max(n, 1)))));
  nx_ = per_axis;
  ny_ = per_axis;
  buckets_.resize(static_cast<size_t>(nx_) * ny_);
  for (int i = 0; i < n; ++i) {
    buckets_[CellY(points_[i].y) * nx_ + CellX(points_[i].x)].push_back(i);
  }
}

int GridIndex::CellX(double x) const {
  const double w = box_.width();
  if (w <= 0) return 0;
  return std::clamp(static_cast<int>((x - box_.lo.x) / w * nx_), 0, nx_ - 1);
}

int GridIndex::CellY(double y) const {
  const double h = box_.height();
  if (h <= 0) return 0;
  return std::clamp(static_cast<int>((y - box_.lo.y) / h * ny_), 0, ny_ - 1);
}

std::vector<Neighbor> GridIndex::Nearest(const Vec2& q, int k) const {
  return NearestFiltered(q, k, nullptr);
}

std::vector<Neighbor> GridIndex::NearestFiltered(
    const Vec2& q, int k, const IndexFilter& filter) const {
  if (k <= 0 || points_.empty()) return {};

  // Candidates keyed by squared distance — the shared candidate order of
  // every SpatialIndex implementation (see spatial_index.h).
  struct Candidate {
    double d2;
    int index;
  };
  auto cmp = [](const Candidate& a, const Candidate& b) {
    return a.d2 < b.d2 || (a.d2 == b.d2 && a.index < b.index);
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(cmp)> heap(
      cmp);

  const int qx = CellX(q.x);
  const int qy = CellY(q.y);
  const double cell_w = box_.width() / nx_;
  const double cell_h = box_.height() / ny_;
  const double cell_min = std::min(cell_w > 0 ? cell_w : 1e300,
                                   cell_h > 0 ? cell_h : 1e300);
  const int max_ring = std::max(nx_, ny_);

  for (int ring = 0; ring <= max_ring; ++ring) {
    // Stop once the heap is full and no point in this ring (or beyond) can
    // beat the current k-th: every cell at ring distance r is at least
    // (r-1) * cell_min away from q.
    if (heap.size() == static_cast<size_t>(k)) {
      const double bound = static_cast<double>(ring - 1) * cell_min;
      if (bound > 0 && bound * bound > heap.top().d2) break;
    }
    for (int cy = qy - ring; cy <= qy + ring; ++cy) {
      if (cy < 0 || cy >= ny_) continue;
      for (int cx = qx - ring; cx <= qx + ring; ++cx) {
        if (cx < 0 || cx >= nx_) continue;
        // Only the ring border (interior was handled by smaller rings).
        if (std::max(std::abs(cx - qx), std::abs(cy - qy)) != ring) continue;
        for (int index : Bucket(cx, cy)) {
          if (filter && !filter(index)) continue;
          const Candidate candidate{SquaredDistance(q, points_[index]), index};
          if (heap.size() < static_cast<size_t>(k)) {
            heap.push(candidate);
          } else if (cmp(candidate, heap.top())) {
            heap.pop();
            heap.push(candidate);
          }
        }
      }
    }
  }

  std::vector<Neighbor> result(heap.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = {heap.top().index, std::sqrt(heap.top().d2)};
    heap.pop();
  }
  return result;
}

std::vector<Neighbor> GridIndex::WithinRadius(const Vec2& q,
                                              double radius) const {
  LBSAGG_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> result;
  if (points_.empty()) return result;
  const double r2 = radius * radius;
  const int cx_lo = CellX(q.x - radius);
  const int cx_hi = CellX(q.x + radius);
  const int cy_lo = CellY(q.y - radius);
  const int cy_hi = CellY(q.y + radius);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      for (int index : Bucket(cx, cy)) {
        const double d2 = SquaredDistance(q, points_[index]);
        if (d2 <= r2) result.push_back({index, std::sqrt(d2)});
      }
    }
  }
  return result;
}

}  // namespace lbsagg
