#ifndef LBSAGG_SPATIAL_BACKEND_H_
#define LBSAGG_SPATIAL_BACKEND_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "spatial/spatial_index.h"

namespace lbsagg {

namespace obs {
class MetricsRegistry;
}  // namespace obs

// The selectable SpatialIndex implementations. All four return bit-identical
// results through the SpatialIndex interface (spatial_equivalence_test.cc),
// so the choice is purely a build-time/query-time trade-off:
//   kKdTree     — flat preorder k-d tree; the default, fastest at mid scale.
//   kGrid       — uniform grid; competitive on uniformly dense data.
//   kBruteForce — O(n) scan; the test oracle, fine for tiny datasets.
//   kLearned    — Morton-ordered learned index (PGM-style PLA over the
//                 curve) with SoA blocks and batched distance kernels;
//                 overtakes the k-d tree at ~10^6 points (DESIGN.md §4.10).
enum class SpatialBackend {
  kKdTree,
  kGrid,
  kBruteForce,
  kLearned,
};

// Canonical lowercase name ("kdtree" | "grid" | "brute" | "learned").
const char* SpatialBackendName(SpatialBackend backend);

// Parses a canonical name; nullopt for anything else.
std::optional<SpatialBackend> ParseSpatialBackend(const std::string& name);

// All selectable backend names, comma-separated, for usage/help strings.
const char* SpatialBackendChoices();

// Builds the chosen index over `points`. `box` is the dataset's bounding
// region (the grid backend buckets over it; the others derive their own
// bounds). When `stats_registry` is non-null the backends that publish
// per-search work counters (kdtree, learned) start publishing to it.
std::unique_ptr<SpatialIndex> MakeSpatialIndex(
    SpatialBackend backend, const std::vector<Vec2>& points, const Box& box,
    obs::MetricsRegistry* stats_registry = nullptr);

// Parallel multi-index build: one index per entry of `shard_points`, shard
// builds distributed over up to `threads` worker threads (0 = the hardware
// concurrency). Each index is a pure function of its own point array, so
// the result is identical for any thread count; only the wall time changes.
// When `build_ms` is non-null it receives one per-shard build duration per
// entry (the max entry is the build's critical path — what an N-core
// machine pays for the whole fleet). Empty point arrays yield null index
// slots rather than empty indexes. Used by ShardedLbsServer
// (lbs/sharded_server.h) and benchmarked in bench/fig18_sharded.cc.
std::vector<std::unique_ptr<SpatialIndex>> MakeSpatialIndexes(
    SpatialBackend backend, const std::vector<std::vector<Vec2>>& shard_points,
    const Box& box, unsigned threads = 0,
    obs::MetricsRegistry* stats_registry = nullptr,
    std::vector<double>* build_ms = nullptr);

}  // namespace lbsagg

#endif  // LBSAGG_SPATIAL_BACKEND_H_
