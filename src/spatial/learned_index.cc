#include "spatial/learned_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <type_traits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "util/check.h"

namespace lbsagg {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Spreads the 32 bits of v into the even bit positions of a 64-bit word.
inline uint64_t SpreadBits(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

// Morton (Z-order) key: x bits on even positions, y bits on odd. The key is
// f(x) + g(y) with f, g strictly monotone over disjoint bit positions, so it
// is monotone in each coordinate separately — which makes
// [morton(box.lo), morton(box.hi)] a superset of the keys inside any
// axis-aligned box, the covering property every search below relies on.
inline uint64_t MortonOf(uint32_t x, uint32_t y) {
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

// Quantizes a coordinate onto the 32-bit grid: floor((v − lo) · scale),
// clamped. Subtraction and multiplication round monotonically and floor is
// monotone, so quantization preserves coordinate order.
inline uint32_t Quantize(double v, double lo, double scale) {
  const double t = (v - lo) * scale;
  if (t <= 0.0) return 0;
  if (t >= 4294967295.0) return 0xFFFFFFFFu;
  return static_cast<uint32_t>(t);
}

// Decomposes the Morton cover of the quantized box [cx_lo, cx_hi] ×
// [cy_lo, cy_hi] into at most four disjoint key intervals, written to
// iv[i] = {first key, last key} in ascending key order; returns the count.
//
// The naive cover [morton(lo), morton(hi)] explodes whenever the box
// crosses a high Z boundary — the corner-to-corner interval then spans a
// huge run of dead key space. Instead, pick the cell level L with 2^L
// larger than the box span on both axes: the box then crosses at most one
// level-L boundary per axis, so it lies inside at most four aligned
// level-L cells — and an aligned power-of-two cell is exactly one
// contiguous Z interval [base, base + 4^L − 1]. Total slop is bounded by
// the four cells' area instead of the corner interval's unbounded run.
struct ZInterval {
  uint64_t lo = 0;  // first key of the interval
  uint64_t hi = 0;  // last key (inclusive)
};

int ZCoverIntervals(uint32_t cx_lo, uint32_t cy_lo, uint32_t cx_hi,
                    uint32_t cy_hi, ZInterval iv[4]) {
  const int lvl = std::max(std::bit_width(cx_hi - cx_lo),
                           std::bit_width(cy_hi - cy_lo));
  int niv = 0;
  if (lvl >= 32) {  // box spans over half the grid: one full-range interval
    iv[niv++] = {0, ~0ull};
  } else {
    const uint32_t mask = ~0u << lvl;
    const uint64_t len = (uint64_t{1} << (2 * lvl)) - 1;
    const uint32_t xs2[2] = {cx_lo, cx_hi};
    const uint32_t ys2[2] = {cy_lo, cy_hi};
    const int nx = ((cx_lo ^ cx_hi) >> lvl) != 0 ? 2 : 1;
    const int ny = ((cy_lo ^ cy_hi) >> lvl) != 0 ? 2 : 1;
    for (int ix = 0; ix < nx; ++ix) {
      for (int iy = 0; iy < ny; ++iy) {
        // Aligned base keeps the low 2·lvl key bits zero, so base + len is
        // the cell's last key and cannot overflow.
        const uint64_t base = MortonOf(xs2[ix] & mask, ys2[iy] & mask);
        iv[niv++] = {base, base + len};
      }
    }
    // The 2x2 cells' Z order depends on which coordinate bit differs;
    // order the (at most four) intervals by key.
    std::sort(iv, iv + niv,
              [](const ZInterval& a, const ZInterval& e) { return a.lo < e.lo; });
  }
  return niv;
}

// Candidate under the shared (squared distance, index) total order of
// spatial_index.h.
struct Candidate {
  double d2;
  int32_t index;
};

inline bool Better(const Candidate& a, const Candidate& b) {
  return a.d2 < b.d2 || (a.d2 == b.d2 && a.index < b.index);
}

// The k best candidates under Better. Point ids are unique so no two
// candidates compare equal; a candidate tying the current worst on
// (d2, index) with a larger index is dropped — the same tie-break every
// other backend applies. Storage is inline for k <= kInline, so the query
// path allocates nothing; the ~2k pushes per query stay cheap two ways:
// small k keeps the array sorted with short backwards shift-inserts
// (exactly where upper_bound would land each candidate), larger k keeps a
// max-heap — worst at the root, O(log k) replacement — and Finalize sorts
// once at the end. Either way the surviving set and its final (d2, index)
// order are identical.
struct TopK {
  static constexpr int kInline = 64;
  static constexpr int kMaxSorted = 64;

  explicit TopK(int k) : k_(k), heap_mode_(k > kMaxSorted) {
    if (k > kInline) {
      spill_.resize(static_cast<size_t>(k));
      data = spill_.data();
    } else {
      data = inline_;
    }
  }

  bool full() const { return sz == k_; }

  void Push(double d2, int32_t id) {
    const Candidate c{d2, id};
    if (sz < k_) {
      data[sz++] = c;
      if (!heap_mode_) {
        int i = sz - 1;
        while (i > 0 && Better(c, data[i - 1])) {
          data[i] = data[i - 1];
          --i;
        }
        data[i] = c;
      } else if (sz == k_) {
        std::make_heap(data, data + k_, Better);
      }
      if (sz == k_) worst2 = heap_mode_ ? data[0].d2 : data[k_ - 1].d2;
      return;
    }
    if (heap_mode_) {
      if (!Better(c, data[0])) return;
      // Replace-top: drop the root (the worst) and sift c down in one
      // pass — half the compares of pop_heap + push_heap.
      int i = 0;
      for (;;) {
        int child = 2 * i + 1;
        if (child >= k_) break;
        if (child + 1 < k_ && Better(data[child], data[child + 1])) ++child;
        if (!Better(c, data[child])) break;
        data[i] = data[child];
        i = child;
      }
      data[i] = c;
      worst2 = data[0].d2;
    } else {
      if (!Better(c, data[k_ - 1])) return;
      int i = k_ - 1;
      while (i > 0 && Better(c, data[i - 1])) {
        data[i] = data[i - 1];
        --i;
      }
      data[i] = c;
      worst2 = data[k_ - 1].d2;
    }
  }

  // Restores the sorted (d2, index) order heap mode deferred. Must run
  // before the results are read out; sorted mode is already in order.
  void Finalize() {
    if (heap_mode_) std::sort(data, data + sz, Better);
  }

  Candidate* data;
  int sz = 0;
  double worst2 = kInf;
  int k_;
  bool heap_mode_;
  Candidate inline_[kInline];
  std::vector<Candidate> spill_;
};

// ---------------------------------------------------------------------------
// Batched distance-and-screen kernel: one pass over a block's SoA
// coordinates computing every squared distance AND the bitmask of lanes
// with d2 <= bound (bit j = point j). Folding the screen into the kernel
// removes the branchy per-point compare from the scan loop — after the
// top-k fills, almost every block yields an empty or near-empty mask, so
// the caller touches only the few surviving lanes. The portable loop
// autovectorizes under the baseline ISA; on x86-64 an AVX2 clone (function-
// multiversioning attribute, no -mavx2 needed at configure time) using
// explicit compare+movemask is selected once at startup by a runtime CPUID
// check. No FMA: fusing dx·dx + dy·dy would change roundings and break the
// bit-identical cross-backend contract. A bound of +inf passes every lane.

uint64_t BatchD2ScreenPortable(const double* xs, const double* ys, int n,
                               double qx, double qy, double bound,
                               double* out) {
  uint64_t mask = 0;
  for (int j = 0; j < n; ++j) {
    const double dx = xs[j] - qx;
    const double dy = ys[j] - qy;
    out[j] = dx * dx + dy * dy;
    mask |= static_cast<uint64_t>(out[j] <= bound) << j;
  }
  return mask;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LBSAGG_LEARNED_SIMD_DISPATCH 1
__attribute__((target("avx2"))) uint64_t BatchD2ScreenAvx2(
    const double* xs, const double* ys, int n, double qx, double qy,
    double bound, double* out) {
  uint64_t mask = 0;
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  const __m256d vb = _mm256_set1_pd(bound);
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + j), vqx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + j), vqy);
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(out + j, d2);
    mask |= static_cast<uint64_t>(
                _mm256_movemask_pd(_mm256_cmp_pd(d2, vb, _CMP_LE_OQ)))
            << j;
  }
  for (; j < n; ++j) {
    const double dx = xs[j] - qx;
    const double dy = ys[j] - qy;
    out[j] = dx * dx + dy * dy;
    mask |= static_cast<uint64_t>(out[j] <= bound) << j;
  }
  return mask;
}
#endif

using BatchD2Fn = uint64_t (*)(const double*, const double*, int, double,
                               double, double, double*);

BatchD2Fn ResolveBatchD2() {
#ifdef LBSAGG_LEARNED_SIMD_DISPATCH
  if (__builtin_cpu_supports("avx2")) return BatchD2ScreenAvx2;
#endif
  return BatchD2ScreenPortable;
}

const BatchD2Fn kBatchD2 = ResolveBatchD2();

#ifdef LBSAGG_LEARNED_SIMD_DISPATCH
// Writes the indices of the m = min(k, n) smallest entries of d2s[0..n) to
// out, in exact ascending (d2, index) order, and returns m. Branchless
// selection: the block's distances live in ymm registers and each pick is
// a fixed min-reduce + compare + single-lane knockout — no data-dependent
// branches, unlike an insertion loop, whose mispredicted shifts dominate
// the seeding scan's cost. Ties pick the lowest lane first (countr_zero),
// which is exactly the Better tie-break. Requires n <= kBlockSize.
__attribute__((target("avx2"))) int SelectSmallestAvx2(const double* d2s,
                                                       int n, int k,
                                                       int* out) {
  constexpr int kMaxLanes = LearnedIndex::kBlockSize;
  alignas(32) double buf[kMaxLanes];
  const int nv = (n + 3) / 4;
  int j = 0;
  for (; j < n; ++j) buf[j] = d2s[j];
  for (; j < nv * 4; ++j) buf[j] = kInf;
  __m256d v[kMaxLanes / 4];
  for (int i = 0; i < nv; ++i) v[i] = _mm256_load_pd(buf + 4 * i);
  const __m256d vinf = _mm256_set1_pd(kInf);
  // blendv keys off the sign bit; an all-ones lane selects vinf.
  alignas(32) static const uint64_t kLaneMask[4][4] = {
      {~0ull, 0, 0, 0}, {0, ~0ull, 0, 0}, {0, 0, ~0ull, 0}, {0, 0, 0, ~0ull}};
  const int m = k < n ? k : n;
  for (int pick = 0; pick < m; ++pick) {
    __m256d acc = v[0];
    for (int i = 1; i < nv; ++i) acc = _mm256_min_pd(acc, v[i]);
    const __m256d t1 = _mm256_min_pd(acc, _mm256_permute2f128_pd(acc, acc, 1));
    const __m256d vmin = _mm256_min_pd(t1, _mm256_permute_pd(t1, 0x5));
    uint64_t em = 0;
    for (int i = 0; i < nv; ++i) {
      em |= static_cast<uint64_t>(
                _mm256_movemask_pd(_mm256_cmp_pd(v[i], vmin, _CMP_EQ_OQ)))
            << (4 * i);
    }
    const int lane = std::countr_zero(em);
    v[lane >> 2] = _mm256_blendv_pd(
        v[lane >> 2], vinf,
        _mm256_load_pd(reinterpret_cast<const double*>(kLaneMask[lane & 3])));
    out[pick] = lane;
  }
  return m;
}
#endif

using SelectFn = int (*)(const double*, int, int, int*);

SelectFn ResolveSelect() {
#ifdef LBSAGG_LEARNED_SIMD_DISPATCH
  if (__builtin_cpu_supports("avx2")) return SelectSmallestAvx2;
#endif
  return nullptr;
}

// Non-null when an AVX2 seeding selection is available; the scalar seeding
// loop stays as the portable path (and the filtered path, which must apply
// the accept test before any selection could discard points).
const SelectFn kSelectSmallest = ResolveSelect();

// Tag for the unfiltered accept path: lets the scan statically pick the
// branchless seeding selection, which is only sound when every point is
// acceptable (selecting k-of-block then filtering could starve the top-k).
struct AcceptAll {
  constexpr bool operator()(int) const { return true; }
};

}  // namespace

LearnedIndex::LearnedIndex(const std::vector<Vec2>& points) {
  n_ = points.size();
  if (n_ == 0) return;

  double min_x = points[0].x, max_x = min_x;
  double min_y = points[0].y, max_y = min_y;
  for (const Vec2& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  x0_ = min_x;
  y0_ = min_y;
  sx_ = max_x > min_x ? 4294967295.0 / (max_x - min_x) : 0.0;
  sy_ = max_y > min_y ? 4294967295.0 / (max_y - min_y) : 0.0;

  std::vector<uint64_t> key_of(n_);
  for (size_t i = 0; i < n_; ++i) key_of[i] = MortonKey(points[i]);

  // Space-filling-curve order with ids breaking key ties, so the storage
  // order — hence every scan — is deterministic.
  std::vector<int32_t> order(n_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return key_of[a] < key_of[b] || (key_of[a] == key_of[b] && a < b);
  });

  keys_.resize(n_);
  xs_.resize(n_);
  ys_.resize(n_);
  ids_.resize(n_);
  for (size_t i = 0; i < n_; ++i) {
    const int32_t id = order[i];
    keys_[i] = key_of[id];
    xs_[i] = points[id].x;
    ys_[i] = points[id].y;
    ids_[i] = id;
  }

  const size_t blocks = (n_ + kBlockSize - 1) / kBlockSize;
  block_first_key_.resize(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    block_first_key_[b] = keys_[b * kBlockSize];
  }
  block_xlo_.resize(blocks);
  block_xhi_.resize(blocks);
  block_ylo_.resize(blocks);
  block_yhi_.resize(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t lo = b * kBlockSize;
    const size_t hi = std::min(n_, lo + kBlockSize);
    double xlo = xs_[lo], xhi = xlo, ylo = ys_[lo], yhi = ylo;
    for (size_t i = lo + 1; i < hi; ++i) {
      xlo = std::min(xlo, xs_[i]);
      xhi = std::max(xhi, xs_[i]);
      ylo = std::min(ylo, ys_[i]);
      yhi = std::max(yhi, ys_[i]);
    }
    block_xlo_[b] = xlo;
    block_xhi_[b] = xhi;
    block_ylo_[b] = ylo;
    block_yhi_[b] = yhi;
  }

  const size_t supers = (blocks + kSuperSize - 1) / kSuperSize;
  super_xlo_.resize(supers);
  super_xhi_.resize(supers);
  super_ylo_.resize(supers);
  super_yhi_.resize(supers);
  for (size_t s = 0; s < supers; ++s) {
    const size_t lo = s * kSuperSize;
    const size_t hi = std::min(blocks, lo + kSuperSize);
    double xlo = block_xlo_[lo], xhi = block_xhi_[lo];
    double ylo = block_ylo_[lo], yhi = block_yhi_[lo];
    for (size_t b = lo + 1; b < hi; ++b) {
      xlo = std::min(xlo, block_xlo_[b]);
      xhi = std::max(xhi, block_xhi_[b]);
      ylo = std::min(ylo, block_ylo_[b]);
      yhi = std::max(yhi, block_yhi_[b]);
    }
    super_xlo_[s] = xlo;
    super_xhi_[s] = xhi;
    super_ylo_[s] = ylo;
    super_yhi_[s] = yhi;
  }

  BuildModel();

  // The searches only ever consult the block-granular directory; the full
  // key column was only needed to fit and audit the model.
  keys_.clear();
  keys_.shrink_to_fit();
}

uint64_t LearnedIndex::MortonKey(const Vec2& p) const {
  return MortonOf(Quantize(p.x, x0_, sx_), Quantize(p.y, y0_, sy_));
}

void LearnedIndex::EnableStats(obs::MetricsRegistry* registry) {
#ifndef LBSAGG_OBS_DISABLED
  searches_ = obs::GetCounter(registry, "spatial.learned.searches");
  blocks_scanned_ =
      obs::GetCounter(registry, "spatial.learned.blocks_scanned");
  points_tested_ = obs::GetCounter(registry, "spatial.learned.points_tested");
  stats_enabled_ = true;
#else
  (void)registry;
#endif
}

void LearnedIndex::BuildModel() {
  // Shrinking-cone PLA fit of rank(key): the segment keeps the interval of
  // slopes that predict every covered point within ±kEpsilon ranks; when a
  // point empties the interval, the segment closes and a new one starts
  // there. long double keeps 64-bit key differences exact in the slope
  // bounds on x86.
  constexpr long double kNoCeiling = std::numeric_limits<long double>::max();
  segments_.clear();
  size_t seg_start = 0;
  long double slope_lo = 0.0L;
  long double slope_hi = kNoCeiling;

  const auto close_segment = [&] {
    Segment s;
    s.first_key = keys_[seg_start];
    s.first_rank = static_cast<uint32_t>(seg_start);
    s.slope = slope_hi == kNoCeiling
                  ? 0.0
                  : static_cast<double>((slope_lo + slope_hi) / 2.0L);
    segments_.push_back(s);
  };

  for (size_t i = seg_start + 1; i < n_; ++i) {
    const uint64_t dk = keys_[i] - keys_[seg_start];
    const long double dy = static_cast<long double>(i - seg_start);
    bool fits;
    if (dk == 0) {
      // Duplicate keys: the line passes through the segment origin, so only
      // the rank gap itself is constrained.
      fits = dy <= static_cast<long double>(kEpsilon);
    } else {
      const long double x = static_cast<long double>(dk);
      const long double lo = (dy - kEpsilon) / x;
      const long double hi = (dy + kEpsilon) / x;
      const long double nlo = std::max(slope_lo, lo);
      const long double nhi = std::min(slope_hi, hi);
      fits = nlo <= nhi;
      if (fits) {
        slope_lo = nlo;
        slope_hi = nhi;
      }
    }
    if (!fits) {
      close_segment();
      seg_start = i;
      slope_lo = 0.0L;
      slope_hi = kNoCeiling;
    }
  }
  close_segment();

  // Root directory: pick enough prefix bits that buckets hold ~1 segment
  // each (capped at 2^16 entries = 256 KiB), then record where each
  // bucket's segments start. Keys with top bits p can only be covered by a
  // segment in [root_[p], root_[p+1]) or the last one before the bucket.
  int bits = 0;
  while ((size_t{1} << bits) < segments_.size() && bits < 16) ++bits;
  root_shift_ = 64 - bits;
  const size_t buckets = size_t{1} << bits;
  root_.assign(buckets + 1, static_cast<uint32_t>(segments_.size()));
  size_t si = 0;
  for (size_t p = 0; p < buckets; ++p) {
    const uint64_t boundary =
        bits == 0 ? 0 : static_cast<uint64_t>(p) << root_shift_;
    while (si < segments_.size() && segments_[si].first_key < boundary) ++si;
    root_[p] = static_cast<uint32_t>(si);
  }

  // Audit pass: record the worst prediction error the finished model makes,
  // resolving segments exactly as Rank() does. Lookups gallop from the
  // prediction, so a larger-than-epsilon error (FP rounding at the cone
  // edges, duplicate-key splits) costs time, never correctness.
  max_model_error_ = 0;
  size_t s = 0;
  for (size_t i = 0; i < n_; ++i) {
    while (s + 1 < segments_.size() && segments_[s + 1].first_key <= keys_[i]) {
      ++s;
    }
    const Segment& seg = segments_[s];
    double pred = static_cast<double>(seg.first_rank) +
                  seg.slope * static_cast<double>(keys_[i] - seg.first_key);
    pred = std::clamp(pred, 0.0, static_cast<double>(n_ - 1));
    const double err = std::abs(pred - static_cast<double>(i));
    max_model_error_ = std::max(
        max_model_error_, static_cast<int>(std::min(err, 1e9)));
  }
}

size_t LearnedIndex::PredictRank(uint64_t key) const {
  // Covering segment: the last one with first_key <= key. Everything before
  // the key's root bucket starts below the key, everything after starts
  // above it, so the search stays inside [root_[p], root_[p+1]) — the
  // bucket just narrows the same global upper_bound.
  const size_t bucket = root_shift_ >= 64 ? 0 : key >> root_shift_;
  const auto it = std::upper_bound(segments_.begin() + root_[bucket],
                                   segments_.begin() + root_[bucket + 1], key,
                                   [](uint64_t k, const Segment& s) {
                                     return k < s.first_key;
                                   });
  if (it == segments_.begin()) return 0;
  const Segment& s = *(it - 1);
  const double p = static_cast<double>(s.first_rank) +
                   s.slope * static_cast<double>(key - s.first_key);
  return p <= 0.0
             ? 0
             : static_cast<size_t>(std::min(p, static_cast<double>(n_ - 1)));
}

size_t LearnedIndex::UpperBoundBlock(uint64_t key, size_t seed) const {
  // The seed is any nearby block — the caller's predicted query block, or
  // the result of the previous corner lookup (ball corners land blocks
  // apart). Galloping from it establishes a correct bracket wherever it
  // lands, over the block-granular key directory (8 bytes per 64 points;
  // the probes share cache lines when the seed is close), never keys_[].
  const size_t nb = block_first_key_.size();
  size_t lo = std::min(seed, nb - 1);
  size_t hi = lo + 1;
  size_t step = 1;
  while (lo > 0 && block_first_key_[lo] > key) {
    lo = lo > step ? lo - step : 0;
    step <<= 1;
  }
  step = 1;
  while (hi < nb && block_first_key_[hi - 1] <= key) {
    hi = std::min(nb, hi + step);
    step <<= 1;
  }
  return static_cast<size_t>(
      std::upper_bound(block_first_key_.begin() + lo,
                       block_first_key_.begin() + hi, key) -
      block_first_key_.begin());
}

template <typename Accept>
void LearnedIndex::SearchKnn(const Vec2& q, int k, const Accept& accept,
                             std::vector<Neighbor>& out) const {
  const size_t nb = (n_ + kBlockSize - 1) / kBlockSize;
  // Pull the block's coordinate lines toward the core before they are
  // needed; at large n every block scan is DRAM-bound, so issuing the
  // fetches early (and for several blocks at once, below) overlaps the
  // misses instead of paying them serially.
  const auto prefetch_block = [&](size_t b) {
    const size_t start = b * kBlockSize;
    const char* px = reinterpret_cast<const char*>(xs_.data() + start);
    const char* py = reinterpret_cast<const char*>(ys_.data() + start);
    for (size_t off = 0; off < kBlockSize * sizeof(double); off += 64) {
      __builtin_prefetch(px + off);
      __builtin_prefetch(py + off);
    }
  };

  // Phase 1 seed blocks: the predicted curve block and both curve
  // neighbors. Prefetching all three up front overlaps their DRAM fetches
  // with each other (and with the result-heap setup below) — the neighbors
  // are almost always inside the candidate ball's cover anyway, so this
  // moves work the cover scan would do serially into the overlap window,
  // and tightens worst2 before the cover corners are computed.
  const size_t b0 = std::min(PredictRank(MortonKey(q)) / kBlockSize, nb - 1);
  const size_t p1_lo = b0 > 0 ? b0 - 1 : b0;
  const size_t p1_hi = b0 + 1 < nb ? b0 + 1 : b0;
  for (size_t b = p1_lo; b <= p1_hi; ++b) prefetch_block(b);
  // The seed block's ids are read for every push; start their lines too.
  for (size_t off = 0; off < kBlockSize * sizeof(int32_t); off += 64) {
    __builtin_prefetch(
        reinterpret_cast<const char*>(ids_.data() + b0 * kBlockSize) + off);
  }
  // Pre-size the result now so its allocation overlaps the fetches in
  // flight instead of trailing the search; the final resize only shrinks.
  out.reserve(static_cast<size_t>(k));

  TopK top(k);
  SearchTally tally;

  const auto scan_block = [&](size_t b) {
    const size_t start = b * kBlockSize;
    const int count = static_cast<int>(std::min<size_t>(kBlockSize, n_ - start));
    double d2s[kBlockSize];
    uint64_t mask = kBatchD2(xs_.data() + start, ys_.data() + start, count,
                             q.x, q.y, top.worst2, d2s);
    tally.Block(count);
    if (!top.full()) {
      // Seeding: the mask was computed against a stale (possibly infinite)
      // worst2 and would pass every lane, so the block is re-screened here.
      if constexpr (std::is_same_v<Accept, AcceptAll>) {
        if (kSelectSmallest != nullptr) {
          // Unfiltered: branchless-select the k smallest lanes, then push
          // them in ascending order — every insert is an append, and the
          // first lane past the (shrinking) bound ends the block. A point
          // outside its block's k smallest can never make the final top-k,
          // so discarding the rest is exact — except at the cutoff value:
          // the selection breaks d2 ties by lane, but the result contract
          // breaks them by point id, and ids are not in lane order. Lanes
          // strictly below the cutoff are safe (every tie of theirs was
          // also selected); lanes equal to the m-th pick's d2 are re-fed
          // through Push, whose (d2, id) compare applies the exact
          // tie-break. With distinct distances the extra pass re-pushes
          // only the last pick's value and costs one compare per lane.
          int sel[kBlockSize];
          const int m = kSelectSmallest(d2s, count, k, sel);
          const double cutoff = d2s[sel[m - 1]];
          for (int t = 0; t < m; ++t) {
            const int j = sel[t];
            if (d2s[j] >= cutoff || d2s[j] > top.worst2) break;
            top.Push(d2s[j], ids_[start + j]);
          }
          for (int j = 0; j < count; ++j) {
            if (d2s[j] == cutoff) top.Push(d2s[j], ids_[start + j]);
          }
          return;
        }
      }
      // Filtered or portable: scalar loop re-screening each point against
      // the bound as it shrinks push by push (the accept test must run
      // before any selection could discard points).
      for (int j = 0; j < count; ++j) {
        if (d2s[j] > top.worst2) continue;
        const int32_t id = ids_[start + j];
        if (!accept(id)) continue;
        top.Push(d2s[j], id);
      }
      return;
    }
    // Steady state: only the surviving lanes — nearly always none. Push
    // re-screens against the shrinking worst2, so a stale bit costs a
    // compare, never a wrong result.
    while (mask != 0) {
      const int j = std::countr_zero(mask);
      mask &= mask - 1;
      const int32_t id = ids_[start + j];
      if (!accept(id)) continue;
      top.Push(d2s[j], id);
    }
  };

  // Exact lower bound on any in-block d2 from the block bounding box; each
  // axis gap is a rounded-down true difference and fl is monotone, so the
  // pruning test can never discard a block holding a true candidate.
  const auto block_min_d2 = [&](size_t b) {
    const double ox =
        std::max({0.0, block_xlo_[b] - q.x, q.x - block_xhi_[b]});
    const double oy =
        std::max({0.0, block_ylo_[b] - q.y, q.y - block_yhi_[b]});
    return ox * ox + oy * oy;
  };

  // Phase 1: scan blocks outward from the predicted seed block — adjacent
  // curve ranges — until k candidates bound the ball. The raw prediction is
  // enough of a seed: phase 2 restores correctness no matter where it lands.
  size_t lo_b = b0, hi_b = b0;  // inclusive scanned block range
  scan_block(b0);  // first: tightens worst2 before the neighbors screen
  // The neighbors scan eagerly (their lines are in flight) unless the
  // bound b0 just established already rules them out; a skipped neighbor
  // is re-screened by the cover scan, which prunes it again. Deferring
  // them to the cover pool instead measures worse — even with the tight
  // aligned-cell cover: the ball radius they tighten here would otherwise
  // size the cover, and a looser ball survives containment more often.
  if (p1_lo < b0 && !(top.full() && block_min_d2(p1_lo) > top.worst2)) {
    scan_block(p1_lo);
    lo_b = p1_lo;
  }
  if (p1_hi > b0 && !(top.full() && block_min_d2(p1_hi) > top.worst2)) {
    scan_block(p1_hi);
    hi_b = p1_hi;
  }
  bool go_left = true;
  while (!top.full() && (lo_b > 0 || hi_b + 1 < nb)) {
    if ((go_left && lo_b > 0) || hi_b + 1 >= nb) {
      scan_block(--lo_b);
    } else {
      scan_block(++hi_b);
    }
    go_left = !go_left;
  }

  // Phase 2: cover the candidate ball. Every point with d2 <= worst2 lies
  // in the box q ± r, whose corners are widened by one ulp so
  // sqrt/subtraction rounding cannot shave the boundary. The box's Morton
  // keys are covered by at most four aligned-cell intervals
  // (ZCoverIntervals); each interval maps to a block range — the first
  // block that can hold a key >= iv.lo is the one before upper_bound(iv.lo)
  // (every later block starts above it), and blocks from upper_bound(iv.hi)
  // on start above iv.hi, so they cannot intersect. worst2 keeps shrinking
  // as the scan proceeds, which only tightens the in-block screen — the
  // cover stays a superset.
  //
  // An interval already inside the contiguous phase-1 range [lo_b, hi_b] is
  // dropped outright: every key below block lo_b's first key is in an
  // earlier block, every key from block hi_b+1's first key on is in a later
  // one. A tight ball from a well-predicted seed lands all four intervals
  // there for most queries, ending the search for two compares per
  // interval. The lower test is strict because a run of equal keys can
  // straddle the lo_b boundary (iv.lo == first key leaves the earlier
  // duplicates uncovered).
  size_t ranges[4][2];
  int nranges = 0;
  if (!top.full()) {
    ranges[nranges][0] = 0;
    ranges[nranges][1] = nb;
    ++nranges;
  } else {
    const double r = std::nextafter(std::sqrt(top.worst2), kInf);
    const Vec2 lo_corner{std::nextafter(q.x - r, -kInf),
                         std::nextafter(q.y - r, -kInf)};
    const Vec2 hi_corner{std::nextafter(q.x + r, kInf),
                         std::nextafter(q.y + r, kInf)};
    ZInterval iv[4];
    const int niv = ZCoverIntervals(Quantize(lo_corner.x, x0_, sx_),
                                    Quantize(lo_corner.y, y0_, sy_),
                                    Quantize(hi_corner.x, x0_, sx_),
                                    Quantize(hi_corner.y, y0_, sy_), iv);
    size_t hint = b0;  // gallop seed chains through the sorted intervals
    for (int i = 0; i < niv; ++i) {
      if ((lo_b == 0 || block_first_key_[lo_b] < iv[i].lo) &&
          (hi_b + 1 >= nb || iv[i].hi < block_first_key_[hi_b + 1])) {
        continue;
      }
      const size_t ub = UpperBoundBlock(iv[i].lo, hint);
      const size_t lo = ub == 0 ? 0 : ub - 1;
      const size_t hi = UpperBoundBlock(iv[i].hi, ub);
      hint = hi;
      // Intervals are sorted, and key→block is monotone, so ranges arrive
      // sorted too; merge overlap so no block is ever scanned twice.
      if (nranges > 0 && lo <= ranges[nranges - 1][1]) {
        ranges[nranges - 1][1] = std::max(ranges[nranges - 1][1], hi);
      } else {
        ranges[nranges][0] = lo;
        ranges[nranges][1] = hi;
        ++nranges;
      }
    }
  }
  // Exact lower bound on any in-superblock d2, same argument as
  // block_min_d2: every block box lies inside its superblock box, so a
  // superblock that fails the screen cannot hold a candidate in any of its
  // kSuperSize blocks — one test discards 4096 points of the cover.
  const auto super_min_d2 = [&](size_t s) {
    const double ox =
        std::max({0.0, super_xlo_[s] - q.x, q.x - super_xhi_[s]});
    const double oy =
        std::max({0.0, super_ylo_[s] - q.y, q.y - super_yhi_[s]});
    return ox * ox + oy * oy;
  };

  // Surviving blocks are collected — each one's lines prefetched on
  // discovery, so the DRAM misses of consecutive candidates overlap — and
  // then drained nearest-first: scanning the block with the smallest
  // distance bound first shrinks worst2 the way a kd-tree's best-first
  // descent does, which empties the later blocks' masks and lets the drain
  // stop outright at the first block whose bound exceeds worst2.
  struct BlockCand {
    double min_d2;
    size_t b;
  };
  BlockCand cand[kSuperSize];
  int ncand = 0;
  const auto drain = [&] {
    std::sort(cand, cand + ncand, [](const BlockCand& a, const BlockCand& e) {
      return a.min_d2 < e.min_d2 || (a.min_d2 == e.min_d2 && a.b < e.b);
    });
    for (int i = 0; i < ncand; ++i) {
      if (top.full() && cand[i].min_d2 > top.worst2) break;
      scan_block(cand[i].b);
    }
    ncand = 0;
  };
  for (int ri = 0; ri < nranges; ++ri) {
    for (size_t b = ranges[ri][0]; b < ranges[ri][1];) {
      const size_t sb = b / kSuperSize;
      const size_t sb_end = std::min(ranges[ri][1], (sb + 1) * kSuperSize);
      if (top.full() && super_min_d2(sb) > top.worst2) {
        b = sb_end;
        continue;
      }
      for (; b < sb_end; ++b) {
        if (b >= lo_b && b <= hi_b) continue;  // phase 1 covered it
        const double bd2 = block_min_d2(b);
        if (top.full() && bd2 > top.worst2) continue;
        prefetch_block(b);
        cand[ncand++] = {bd2, b};
        if (ncand == static_cast<int>(kSuperSize)) drain();
      }
    }
  }
  drain();
  FlushTally(tally);

  top.Finalize();
  out.resize(static_cast<size_t>(top.sz));
  for (int i = 0; i < top.sz; ++i) {
    out[i] = {top.data[i].index, std::sqrt(top.data[i].d2)};
  }
}

std::vector<Neighbor> LearnedIndex::Nearest(const Vec2& q, int k) const {
  std::vector<Neighbor> out;
  if (k <= 0 || n_ == 0) return out;
  SearchKnn(q, k, AcceptAll{}, out);
  return out;
}

std::vector<Neighbor> LearnedIndex::NearestFiltered(
    const Vec2& q, int k, const IndexFilter& filter) const {
  std::vector<Neighbor> out;
  if (k <= 0 || n_ == 0) return out;
  if (filter) {
    SearchKnn(q, k, [&filter](int index) { return filter(index); }, out);
  } else {
    SearchKnn(q, k, AcceptAll{}, out);
  }
  return out;
}

std::vector<Neighbor> LearnedIndex::WithinRadius(const Vec2& q,
                                                 double radius) const {
  LBSAGG_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> result;
  if (n_ == 0) return result;
  SearchTally tally;
  const double r2 = radius * radius;

  // Same block-granular ball cover as the kNN phase 2, for the fixed
  // radius. The corners are widened by one ulp so a point at exactly
  // `radius` (whose d2 <= r2 screen below is exact) can never fall outside
  // the key range.
  const Vec2 lo_corner{std::nextafter(q.x - radius, -kInf),
                       std::nextafter(q.y - radius, -kInf)};
  const Vec2 hi_corner{std::nextafter(q.x + radius, kInf),
                       std::nextafter(q.y + radius, kInf)};
  const size_t nblocks = block_first_key_.size();
  const size_t seed =
      std::min(PredictRank(MortonKey(q)) / kBlockSize, nblocks - 1);
  // Same aligned-cell cover as SearchKnn's phase 2: at most four tight key
  // intervals instead of one corner-to-corner interval, merged into sorted
  // disjoint block ranges so no block is scanned twice.
  ZInterval iv[4];
  const int niv = ZCoverIntervals(Quantize(lo_corner.x, x0_, sx_),
                                  Quantize(lo_corner.y, y0_, sy_),
                                  Quantize(hi_corner.x, x0_, sx_),
                                  Quantize(hi_corner.y, y0_, sy_), iv);
  size_t ranges[4][2];
  int nranges = 0;
  size_t hint = seed;
  for (int i = 0; i < niv; ++i) {
    const size_t ub = UpperBoundBlock(iv[i].lo, hint);
    const size_t lo = ub == 0 ? 0 : ub - 1;
    const size_t hi = UpperBoundBlock(iv[i].hi, ub);
    hint = hi;
    if (nranges > 0 && lo <= ranges[nranges - 1][1]) {
      ranges[nranges - 1][1] = std::max(ranges[nranges - 1][1], hi);
    } else {
      ranges[nranges][0] = lo;
      ranges[nranges][1] = hi;
      ++nranges;
    }
  }
  double d2s[kBlockSize];
  for (int ri = 0; ri < nranges; ++ri) {
    const size_t cb_lo = ranges[ri][0];
    const size_t cb_hi = ranges[ri][1];
    for (size_t b = cb_lo; b < cb_hi; ++b) {
      if (b % kSuperSize == 0 && b + kSuperSize <= cb_hi) {
        // Two-level prune: drop the whole superblock when its box misses the
        // ball (see super_min_d2 in SearchKnn for the containment argument).
        const size_t s = b / kSuperSize;
        const double sox =
            std::max({0.0, super_xlo_[s] - q.x, q.x - super_xhi_[s]});
        const double soy =
            std::max({0.0, super_ylo_[s] - q.y, q.y - super_yhi_[s]});
        if (sox * sox + soy * soy > r2) {
          b += kSuperSize - 1;
          continue;
        }
      }
      const double ox =
          std::max({0.0, block_xlo_[b] - q.x, q.x - block_xhi_[b]});
      const double oy =
          std::max({0.0, block_ylo_[b] - q.y, q.y - block_yhi_[b]});
      if (ox * ox + oy * oy > r2) continue;
      const size_t start = b * kBlockSize;
      const int count = static_cast<int>(std::min<size_t>(kBlockSize, n_ - start));
      uint64_t mask = kBatchD2(xs_.data() + start, ys_.data() + start, count,
                               q.x, q.y, r2, d2s);
      tally.Block(count);
      while (mask != 0) {
        const int j = std::countr_zero(mask);
        mask &= mask - 1;
        result.push_back({ids_[start + j], std::sqrt(d2s[j])});
      }
    }
  }
  FlushTally(tally);
  return result;
}

}  // namespace lbsagg
