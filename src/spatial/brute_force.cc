#include "spatial/brute_force.h"

#include <algorithm>
#include <cmath>

namespace lbsagg {

BruteForceIndex::BruteForceIndex(std::vector<Vec2> points)
    : points_(std::move(points)) {}

std::vector<Neighbor> BruteForceIndex::Nearest(const Vec2& q, int k) const {
  return NearestFiltered(q, k, nullptr);
}

std::vector<Neighbor> BruteForceIndex::NearestFiltered(
    const Vec2& q, int k, const IndexFilter& filter) const {
  std::vector<Neighbor> all;
  all.reserve(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    if (filter && !filter(static_cast<int>(i))) continue;
    all.push_back({static_cast<int>(i), Distance(q, points_[i])});
  }
  const size_t keep = std::min<size_t>(k < 0 ? 0 : k, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.index < b.index);
                    });
  all.resize(keep);
  return all;
}

std::vector<Neighbor> BruteForceIndex::WithinRadius(const Vec2& q,
                                                    double radius) const {
  std::vector<Neighbor> result;
  for (size_t i = 0; i < points_.size(); ++i) {
    const double d = Distance(q, points_[i]);
    if (d <= radius) result.push_back({static_cast<int>(i), d});
  }
  return result;
}

}  // namespace lbsagg
