#include "spatial/brute_force.h"

#include <algorithm>
#include <cmath>

namespace lbsagg {

namespace {

// One scan candidate keyed by squared distance — the shared candidate order
// of every SpatialIndex implementation (see spatial_index.h).
struct Candidate {
  double d2;
  int index;
};

inline bool Better(const Candidate& a, const Candidate& b) {
  return a.d2 < b.d2 || (a.d2 == b.d2 && a.index < b.index);
}

}  // namespace

BruteForceIndex::BruteForceIndex(std::vector<Vec2> points)
    : points_(std::move(points)) {}

std::vector<Neighbor> BruteForceIndex::Nearest(const Vec2& q, int k) const {
  return NearestFiltered(q, k, nullptr);
}

std::vector<Neighbor> BruteForceIndex::NearestFiltered(
    const Vec2& q, int k, const IndexFilter& filter) const {
  std::vector<Candidate> all;
  all.reserve(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    if (filter && !filter(static_cast<int>(i))) continue;
    all.push_back({SquaredDistance(q, points_[i]), static_cast<int>(i)});
  }
  const size_t keep = std::min<size_t>(k < 0 ? 0 : k, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(), Better);
  std::vector<Neighbor> result(keep);
  for (size_t i = 0; i < keep; ++i) {
    result[i] = {all[i].index, std::sqrt(all[i].d2)};
  }
  return result;
}

std::vector<Neighbor> BruteForceIndex::WithinRadius(const Vec2& q,
                                                    double radius) const {
  const double r2 = radius * radius;
  std::vector<Neighbor> result;
  for (size_t i = 0; i < points_.size(); ++i) {
    const double d2 = SquaredDistance(q, points_[i]);
    if (d2 <= r2) result.push_back({static_cast<int>(i), std::sqrt(d2)});
  }
  return result;
}

}  // namespace lbsagg
