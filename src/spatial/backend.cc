#include "spatial/backend.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "spatial/brute_force.h"
#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "spatial/learned_index.h"

namespace lbsagg {

const char* SpatialBackendName(SpatialBackend backend) {
  switch (backend) {
    case SpatialBackend::kKdTree:
      return "kdtree";
    case SpatialBackend::kGrid:
      return "grid";
    case SpatialBackend::kBruteForce:
      return "brute";
    case SpatialBackend::kLearned:
      return "learned";
  }
  return "unknown";
}

std::optional<SpatialBackend> ParseSpatialBackend(const std::string& name) {
  if (name == "kdtree") return SpatialBackend::kKdTree;
  if (name == "grid") return SpatialBackend::kGrid;
  if (name == "brute") return SpatialBackend::kBruteForce;
  if (name == "learned") return SpatialBackend::kLearned;
  return std::nullopt;
}

const char* SpatialBackendChoices() { return "kdtree | grid | brute | learned"; }

std::unique_ptr<SpatialIndex> MakeSpatialIndex(
    SpatialBackend backend, const std::vector<Vec2>& points, const Box& box,
    obs::MetricsRegistry* stats_registry) {
  switch (backend) {
    case SpatialBackend::kKdTree: {
      auto tree = std::make_unique<KdTree>(points);
      if (stats_registry != nullptr) tree->EnableStats(stats_registry);
      return tree;
    }
    case SpatialBackend::kGrid:
      return std::make_unique<GridIndex>(points, box);
    case SpatialBackend::kBruteForce:
      return std::make_unique<BruteForceIndex>(points);
    case SpatialBackend::kLearned: {
      auto learned = std::make_unique<LearnedIndex>(points);
      if (stats_registry != nullptr) learned->EnableStats(stats_registry);
      return learned;
    }
  }
  return nullptr;
}

std::vector<std::unique_ptr<SpatialIndex>> MakeSpatialIndexes(
    SpatialBackend backend, const std::vector<std::vector<Vec2>>& shard_points,
    const Box& box, unsigned threads, obs::MetricsRegistry* stats_registry,
    std::vector<double>* build_ms) {
  const size_t shards = shard_points.size();
  std::vector<std::unique_ptr<SpatialIndex>> indexes(shards);
  if (build_ms != nullptr) build_ms->assign(shards, 0.0);
  if (shards == 0) return indexes;

  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::max<unsigned>(
      1, static_cast<unsigned>(std::min<size_t>(threads, shards)));

  // Work-stealing over an atomic shard counter: a thread that lands a big
  // shard stops claiming, so the schedule adapts to skewed partitions.
  std::atomic<size_t> next{0};
  auto build_range = [&] {
    for (size_t shard = next.fetch_add(1); shard < shards;
         shard = next.fetch_add(1)) {
      if (shard_points[shard].empty()) continue;  // null index for the slot
      const auto start = std::chrono::steady_clock::now();
      indexes[shard] =
          MakeSpatialIndex(backend, shard_points[shard], box, stats_registry);
      if (build_ms != nullptr) {
        (*build_ms)[shard] =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
      }
    }
  };

  if (threads == 1) {
    build_range();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(build_range);
    for (std::thread& t : pool) t.join();
  }
  return indexes;
}

}  // namespace lbsagg
