#include "spatial/backend.h"

#include "spatial/brute_force.h"
#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "spatial/learned_index.h"

namespace lbsagg {

const char* SpatialBackendName(SpatialBackend backend) {
  switch (backend) {
    case SpatialBackend::kKdTree:
      return "kdtree";
    case SpatialBackend::kGrid:
      return "grid";
    case SpatialBackend::kBruteForce:
      return "brute";
    case SpatialBackend::kLearned:
      return "learned";
  }
  return "unknown";
}

std::optional<SpatialBackend> ParseSpatialBackend(const std::string& name) {
  if (name == "kdtree") return SpatialBackend::kKdTree;
  if (name == "grid") return SpatialBackend::kGrid;
  if (name == "brute") return SpatialBackend::kBruteForce;
  if (name == "learned") return SpatialBackend::kLearned;
  return std::nullopt;
}

const char* SpatialBackendChoices() { return "kdtree | grid | brute | learned"; }

std::unique_ptr<SpatialIndex> MakeSpatialIndex(
    SpatialBackend backend, const std::vector<Vec2>& points, const Box& box,
    obs::MetricsRegistry* stats_registry) {
  switch (backend) {
    case SpatialBackend::kKdTree: {
      auto tree = std::make_unique<KdTree>(points);
      if (stats_registry != nullptr) tree->EnableStats(stats_registry);
      return tree;
    }
    case SpatialBackend::kGrid:
      return std::make_unique<GridIndex>(points, box);
    case SpatialBackend::kBruteForce:
      return std::make_unique<BruteForceIndex>(points);
    case SpatialBackend::kLearned: {
      auto learned = std::make_unique<LearnedIndex>(points);
      if (stats_registry != nullptr) learned->EnableStats(stats_registry);
      return learned;
    }
  }
  return nullptr;
}

}  // namespace lbsagg
