#ifndef LBSAGG_SPATIAL_SPATIAL_INDEX_H_
#define LBSAGG_SPATIAL_SPATIAL_INDEX_H_

#include <functional>
#include <vector>

#include "geometry/vec2.h"

namespace lbsagg {

// One kNN search result: the index of the point in the indexed set and its
// distance to the query location.
//
// Candidate ordering contract: every implementation ranks candidates by the
// total order (squared distance, index) — squared distances are exact
// products of coordinate differences, so the order is identical across
// implementations regardless of traversal — and `distance` is the sqrt of
// that squared distance. In particular, equidistant neighbors are returned
// in ascending point-id order: ties are broken by index, deterministically,
// on every backend. The kNN result of any two implementations over the
// same point set is therefore bit-identical (spatial_equivalence_test.cc
// enforces this — including the tie order directly, via ExpectTotalOrder —
// and the LBS server relies on it to make the index backend invisible
// through the interface).
struct Neighbor {
  int index = -1;
  double distance = 0.0;
};

// Accepts or rejects a candidate point index during a filtered search. Used
// by the LBS server to implement "pass-through" selection conditions (§5.1):
// e.g. Google Places restricting results to NAME = 'Starbucks'.
using IndexFilter = std::function<bool(int)>;

// Abstract kNN index over a fixed set of 2-D points. Implementations:
// KdTree (production) and BruteForceIndex (test oracle).
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  // Number of indexed points.
  virtual size_t size() const = 0;

  // The k nearest points to q, sorted by ascending distance. Returns fewer
  // than k when the index holds fewer points.
  virtual std::vector<Neighbor> Nearest(const Vec2& q, int k) const = 0;

  // The k nearest points accepted by `filter`. A null filter accepts all.
  virtual std::vector<Neighbor> NearestFiltered(
      const Vec2& q, int k, const IndexFilter& filter) const = 0;

  // All points within `radius` of q (inclusive), unsorted.
  virtual std::vector<Neighbor> WithinRadius(const Vec2& q,
                                             double radius) const = 0;
};

}  // namespace lbsagg

#endif  // LBSAGG_SPATIAL_SPATIAL_INDEX_H_
