#ifndef LBSAGG_SPATIAL_BRUTE_FORCE_H_
#define LBSAGG_SPATIAL_BRUTE_FORCE_H_

#include <vector>

#include "spatial/spatial_index.h"

namespace lbsagg {

// O(n) linear-scan kNN. Reference oracle for KdTree tests and fine for tiny
// datasets.
class BruteForceIndex : public SpatialIndex {
 public:
  explicit BruteForceIndex(std::vector<Vec2> points);

  size_t size() const override { return points_.size(); }
  std::vector<Neighbor> Nearest(const Vec2& q, int k) const override;
  std::vector<Neighbor> NearestFiltered(const Vec2& q, int k,
                                        const IndexFilter& filter) const
      override;
  std::vector<Neighbor> WithinRadius(const Vec2& q,
                                     double radius) const override;

 private:
  std::vector<Vec2> points_;
};

}  // namespace lbsagg

#endif  // LBSAGG_SPATIAL_BRUTE_FORCE_H_
