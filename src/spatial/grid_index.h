#ifndef LBSAGG_SPATIAL_GRID_INDEX_H_
#define LBSAGG_SPATIAL_GRID_INDEX_H_

#include <vector>

#include "geometry/box.h"
#include "spatial/spatial_index.h"

namespace lbsagg {

// Uniform-grid kNN index: buckets over a fixed box, searched in expanding
// rings around the query cell. An alternative backend to KdTree — typically
// faster on uniformly dense data, slower on heavily skewed data — and a
// second, independently implemented oracle for the index tests.
class GridIndex : public SpatialIndex {
 public:
  // Builds the grid over `box` (points outside are clamped into border
  // cells). `cells_per_axis` <= 0 picks ~sqrt(n) cells per axis.
  GridIndex(std::vector<Vec2> points, const Box& box, int cells_per_axis = 0);

  size_t size() const override { return points_.size(); }
  std::vector<Neighbor> Nearest(const Vec2& q, int k) const override;
  std::vector<Neighbor> NearestFiltered(const Vec2& q, int k,
                                        const IndexFilter& filter) const
      override;
  std::vector<Neighbor> WithinRadius(const Vec2& q,
                                     double radius) const override;

 private:
  int CellX(double x) const;
  int CellY(double y) const;
  const std::vector<int>& Bucket(int cx, int cy) const {
    return buckets_[cy * nx_ + cx];
  }

  std::vector<Vec2> points_;
  Box box_;
  int nx_ = 1;
  int ny_ = 1;
  std::vector<std::vector<int>> buckets_;
};

}  // namespace lbsagg

#endif  // LBSAGG_SPATIAL_GRID_INDEX_H_
