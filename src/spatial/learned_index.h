#ifndef LBSAGG_SPATIAL_LEARNED_INDEX_H_
#define LBSAGG_SPATIAL_LEARNED_INDEX_H_

#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "spatial/spatial_index.h"

namespace lbsagg {

// Learned spatial index: a PGM-style epsilon-bounded piecewise-linear model
// over Morton (Z-order) keys in place of a tree (DESIGN.md §4.10). The
// dataset is static per run, so the index is bulk-load only.
//
// Layout: points are sorted by (Morton key, id) and stored as
// structure-of-arrays — `xs_[]` / `ys_[]` / `ids_[]` plus the sorted
// `keys_[]` — in fixed blocks of kBlockSize points. Each block keeps its
// bounding box in four parallel arrays, so a range scan skips a far block
// with four compares and scans a near block with one batched, vectorizable
// distance-and-screen pass (an AVX2 variant of the kernel — no FMA, whose
// fused roundings would break bit-identity with the other backends — is
// compiled behind a function-multiversioning attribute and picked once at
// runtime; the portable loop autovectorizes with the baseline ISA).
//
// The model: segments of an epsilon-bounded piecewise-linear fit of the
// (key → rank) function, built in one pass with the shrinking-cone
// algorithm (exemplar: PGM / tarantool's GeometricBlock, SNIPPETS.md §3).
// Lookups predict a position from the covering segment and finish with a
// galloping search from the prediction over the block-granular key
// directory (block_first_key_), so they stay correct even if a prediction
// strays beyond kEpsilon — the bound only sets the expected O(log kEpsilon)
// finish — and never touch the full key column, which is discarded after
// the build.
//
// Queries answer from curve ranges: a kNN search predicts the query's rank,
// scans blocks outward until k candidates bound the ball, then covers the
// ball's remaining keys with at most four aligned Z-cell intervals (Morton
// keys are monotone per coordinate, and an aligned power-of-two cell is one
// contiguous key run — see ZCoverIntervals in the .cc) pruned by bounding
// box and drained nearest-first. WithinRadius covers its ball the same way.
// Results rank by the exact (squared distance, index) total order of
// spatial_index.h, bit-identical to KdTree/GridIndex/BruteForceIndex
// (spatial_equivalence_test.cc pins all four).
class LearnedIndex : public SpatialIndex {
 public:
  // Target PLA prediction error (in ranks). A segment ends when the
  // shrinking cone can no longer keep every covered key within this bound.
  // Tight on purpose: at 8 the prediction lands inside the seed block's
  // immediate neighborhood essentially always, which is what lets the kNN
  // search trust its first three block scans to bound the ball; the extra
  // segments (~n/100) cost only build time and a few hundred KB, and
  // lookups stay O(1) through the root directory.
  static constexpr int kEpsilon = 8;
  // SoA leaf block: one batched distance pass per block. 32 points = two
  // 256-byte coordinate runs, four cache lines each.
  static constexpr int kBlockSize = 32;
  // Blocks per superblock. A ball's Morton cover can span many more blocks
  // than intersect the ball (even aligned Z cells overshoot the box they
  // cover); the superblock bounding boxes let the cover scan discard 64
  // blocks — 2048 points — with four compares.
  static constexpr int kSuperSize = 64;

  // Builds the index over `points` in O(n log n) (the Morton sort).
  explicit LearnedIndex(const std::vector<Vec2>& points);

  size_t size() const override { return n_; }
  std::vector<Neighbor> Nearest(const Vec2& q, int k) const override;
  std::vector<Neighbor> NearestFiltered(const Vec2& q, int k,
                                        const IndexFilter& filter) const
      override;
  std::vector<Neighbor> WithinRadius(const Vec2& q,
                                     double radius) const override;

  // Diagnostics: number of PLA segments, and the largest |predicted rank −
  // true rank| observed while fitting (≤ kEpsilon unless FP rounding in the
  // cone slopes leaked — lookups stay correct either way).
  size_t segments() const { return segments_.size(); }
  int max_model_error() const { return max_model_error_; }

  // Morton key of p under this index's quantization grid (exposed for
  // tests: key order is what the storage is sorted by).
  uint64_t MortonKey(const Vec2& p) const;

  // Starts publishing per-search work counters (spatial.learned.searches /
  // blocks_scanned / points_tested) to `registry` (null = the process-wide
  // default). Opt-in for the same reason as KdTree::EnableStats: the search
  // sits on the hottest loop. Not thread-safe against in-flight searches.
  void EnableStats(obs::MetricsRegistry* registry);

 private:
  // One epsilon-bounded linear segment: predicted rank for `key` ≥
  // `first_key` is first_rank + slope · (key − first_key) until the next
  // segment's first_key takes over.
  struct Segment {
    uint64_t first_key = 0;
    uint32_t first_rank = 0;
    double slope = 0.0;
  };

  struct SearchTally {
#ifndef LBSAGG_OBS_DISABLED
    uint32_t blocks = 0;
    uint32_t points = 0;
    void Block(int count) {
      ++blocks;
      points += static_cast<uint32_t>(count);
    }
#else
    void Block(int) {}
#endif
  };

  void FlushTally(const SearchTally& tally) const {
#ifndef LBSAGG_OBS_DISABLED
    if (!stats_enabled_) return;
    searches_.Add(1);
    blocks_scanned_.Add(tally.blocks);
    points_tested_.Add(tally.points);
#else
    (void)tally;
#endif
  }

  void BuildModel();

  // Model-predicted rank of `key` (clamped to [0, n_-1]). Only ever used as
  // a search seed — correctness never depends on its accuracy.
  size_t PredictRank(uint64_t key) const;

  // First block whose first key exceeds `key` (0..num blocks), i.e. the
  // upper_bound over block_first_key_. Gallops to a bracket from `seed` (a
  // nearby block hint — any value is correct), so it touches only the small
  // per-block key array — never the full keys_[] — on the query hot path.
  size_t UpperBoundBlock(uint64_t key, size_t seed) const;

  template <typename Accept>
  void SearchKnn(const Vec2& q, int k, const Accept& accept,
                 std::vector<Neighbor>& out) const;

  size_t n_ = 0;
  // Quantization: cell = floor((coord − lo) · scale), 32 bits per axis.
  double x0_ = 0.0, y0_ = 0.0;
  double sx_ = 0.0, sy_ = 0.0;

  // Morton-sorted SoA point storage + per-block bounding boxes.
  // block_first_key_[b] = keys_[b * kBlockSize]: the block-granular key
  // directory the searches bound their covers with (keys_ itself is only
  // read at build time).
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> block_first_key_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<int32_t> ids_;
  std::vector<double> block_xlo_, block_xhi_, block_ylo_, block_yhi_;
  // Bounding boxes of kSuperSize-block groups (the two-level prune).
  std::vector<double> super_xlo_, super_xhi_, super_ylo_, super_yhi_;

  std::vector<Segment> segments_;
  // Root directory over the segments: root_[p] = index of the first segment
  // whose first_key >= (p << root_shift_), plus a trailing sentinel of
  // segments_.size(). A lookup lands in its key's bucket with one warm
  // probe and binary-searches the handful of segments there, instead of a
  // cold log2(|segments|) descent over the whole (megabyte-scale) array.
  std::vector<uint32_t> root_;
  int root_shift_ = 64;
  int max_model_error_ = 0;

  bool stats_enabled_ = false;
  obs::CounterRef searches_;
  obs::CounterRef blocks_scanned_;
  obs::CounterRef points_tested_;
};

}  // namespace lbsagg

#endif  // LBSAGG_SPATIAL_LEARNED_INDEX_H_
