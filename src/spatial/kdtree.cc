#include "spatial/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "util/check.h"

namespace lbsagg {

KdTree::KdTree(std::vector<Vec2> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<int> indices(points_.size());
  std::iota(indices.begin(), indices.end(), 0);
  nodes_.reserve(points_.size());
  root_ = Build(indices, 0, static_cast<int>(indices.size()), 0);
}

int KdTree::Build(std::vector<int>& indices, int lo, int hi, int depth) {
  if (lo >= hi) return -1;
  const int axis = depth % 2;
  const int mid = (lo + hi) / 2;
  std::nth_element(indices.begin() + lo, indices.begin() + mid,
                   indices.begin() + hi, [&](int a, int b) {
                     return axis == 0 ? points_[a].x < points_[b].x
                                      : points_[a].y < points_[b].y;
                   });
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].point = indices[mid];
  nodes_[node_index].axis = axis;
  const int left = Build(indices, lo, mid, depth + 1);
  const int right = Build(indices, mid + 1, hi, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

template <typename Visit>
void KdTree::Search(int node, const Vec2& q, double& worst,
                    Visit&& visit) const {
  if (node < 0) return;
  const Node& n = nodes_[node];
  const Vec2& p = points_[n.point];
  visit(n.point, Distance(q, p));
  const double diff = n.axis == 0 ? q.x - p.x : q.y - p.y;
  const int near = diff <= 0 ? n.left : n.right;
  const int far = diff <= 0 ? n.right : n.left;
  Search(near, q, worst, visit);
  if (std::abs(diff) <= worst) Search(far, q, worst, visit);
}

std::vector<Neighbor> KdTree::Nearest(const Vec2& q, int k) const {
  return NearestFiltered(q, k, nullptr);
}

std::vector<Neighbor> KdTree::NearestFiltered(const Vec2& q, int k,
                                              const IndexFilter& filter) const {
  if (k <= 0 || root_ < 0) return {};
  // Bounded max-heap of the best k accepted candidates.
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.index < b.index);
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(cmp)> heap(cmp);
  double worst = std::numeric_limits<double>::infinity();
  Search(root_, q, worst, [&](int index, double dist) {
    if (filter && !filter(index)) return;
    if (heap.size() < static_cast<size_t>(k)) {
      heap.push({index, dist});
    } else if (cmp({index, dist}, heap.top())) {
      heap.pop();
      heap.push({index, dist});
    }
    if (heap.size() == static_cast<size_t>(k)) worst = heap.top().distance;
  });
  std::vector<Neighbor> result(heap.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = heap.top();
    heap.pop();
  }
  return result;
}

std::vector<Neighbor> KdTree::WithinRadius(const Vec2& q, double radius) const {
  LBSAGG_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> result;
  double worst = radius;
  Search(root_, q, worst, [&](int index, double dist) {
    if (dist <= radius) result.push_back({index, dist});
  });
  return result;
}

}  // namespace lbsagg
