#include "spatial/kdtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace lbsagg {

namespace {

// Heap candidate. `d2` is the squared distance: the shared candidate order
// of all SpatialIndex implementations is (squared distance, index) — see
// spatial_index.h — and sqrt is taken only for the candidates that survive.
struct Candidate {
  double d2;
  int32_t index;
};

inline bool Better(const Candidate& a, const Candidate& b) {
  return a.d2 < b.d2 || (a.d2 == b.d2 && a.index < b.index);
}

// Search stack entry: a pending subtree plus the per-axis offsets from the
// query to the subtree's region (0 when the query is inside its slab) and
// their squared sum. The offsets are exact coordinate differences and every
// point p inside satisfies |q.x - p.x| >= ox, |q.y - p.y| >= oy in exact
// double comparisons; x >= y implies fl(x*x) >= fl(y*y) and fl(a+b) is
// monotone for non-negative operands, so `bound2` never exceeds the d2 the
// leaf scan would compute — the pruning test `bound2 > worst2` can never
// discard a candidate the heap would accept, and results stay bit-exact.
struct PendingNode {
  int32_t node;
  double bound2;
  double ox;
  double oy;
};

// Balanced median splits with kLeafSize buckets keep the depth at
// ceil(log2(n / kLeafSize)) + 1, far below this for any addressable n.
constexpr int kMaxStack = 64;

// Reads point id j from a leaf block whose id section starts at `ids`
// (int32s packed into the doubles that follow the y coordinates). memcpy
// keeps the type-punned load aliasing-safe; it compiles to one 4-byte load.
inline int32_t LoadId(const double* ids, int j) {
  int32_t v;
  std::memcpy(&v, reinterpret_cast<const char*>(ids) + 4 * j, 4);
  return v;
}

}  // namespace

KdTree::KdTree(std::vector<Vec2> points) {
  const int n = static_cast<int>(points.size());
  size_ = static_cast<size_t>(n);
  if (n == 0) return;
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  nodes_.reserve(static_cast<size_t>(2 * n) / kLeafSize + 2);
  Build(order, points, 0, n, 1);
  // The search stack holds at most one pending far-subtree per level plus
  // the root entry.
  LBSAGG_CHECK_LT(depth_ + 1, kMaxStack);
  // Lay out one interleaved block per leaf: count xs, count ys, then count
  // int32 ids packed into ceil(count/2) doubles, the whole block rounded up
  // to a whole number of cache lines so every bucket scan is one contiguous
  // run the hardware prefetcher streams.
  size_t total = 0;
  for (Node& nd : nodes_) {
    if (!(nd.tag & kLeafBit)) continue;
    const int count = static_cast<int>(nd.tag & ~kLeafBit);
    const size_t doubles = 2 * count + (count + 1) / 2;
    total += (doubles + 7) & ~size_t{7};
  }
  blob_.assign(total, 0.0);
  size_t off = 0;
  for (Node& nd : nodes_) {
    if (!(nd.tag & kLeafBit)) continue;
    const int lo = nd.right;  // first slot in `order` (set by Build)
    const int count = static_cast<int>(nd.tag & ~kLeafBit);
    nd.right = static_cast<int32_t>(off);
    double* xb = blob_.data() + off;
    double* yb = xb + count;
    for (int j = 0; j < count; ++j) {
      xb[j] = points[order[lo + j]].x;
      yb[j] = points[order[lo + j]].y;
      const int32_t id = order[lo + j];
      std::memcpy(reinterpret_cast<char*>(yb + count) + 4 * j, &id, 4);
    }
    const size_t doubles = 2 * count + (count + 1) / 2;
    off += (doubles + 7) & ~size_t{7};
  }
}

void KdTree::EnableStats(obs::MetricsRegistry* registry) {
#ifndef LBSAGG_OBS_DISABLED
  searches_ = obs::GetCounter(registry, "spatial.kdtree.searches");
  nodes_visited_ = obs::GetCounter(registry, "spatial.kdtree.nodes_visited");
  leaves_scanned_ =
      obs::GetCounter(registry, "spatial.kdtree.leaves_scanned");
  points_tested_ = obs::GetCounter(registry, "spatial.kdtree.points_tested");
  stats_enabled_ = true;
#else
  (void)registry;
#endif
}

int KdTree::Build(std::vector<int>& order, const std::vector<Vec2>& input,
                  int lo, int hi, int depth) {
  const int me = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  depth_ = std::max(depth_, depth);
  if (hi - lo <= kLeafSize) {
    nodes_[me].right = lo;
    nodes_[me].tag = kLeafBit | static_cast<uint32_t>(hi - lo);
    return me;
  }
  // Split the wider extent of the bucket's bounding box: on skewed data this
  // keeps cells close to square, which is what makes the axis-gap pruning
  // bound tight.
  double min_x = input[order[lo]].x, max_x = min_x;
  double min_y = input[order[lo]].y, max_y = min_y;
  for (int i = lo + 1; i < hi; ++i) {
    const Vec2& p = input[order[i]];
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const int axis = (max_x - min_x) >= (max_y - min_y) ? 0 : 1;
  const int mid = lo + (hi - lo) / 2;
  std::nth_element(order.begin() + lo, order.begin() + mid, order.begin() + hi,
                   [&](int a, int b) {
                     return axis == 0 ? input[a].x < input[b].x
                                      : input[a].y < input[b].y;
                   });
  // Left = [lo, mid) holds coords <= split, right = [mid, hi) coords >=
  // split (the median itself goes right); both sides are non-empty because
  // hi - lo > kLeafSize.
  nodes_[me].split = axis == 0 ? input[order[mid]].x : input[order[mid]].y;
  nodes_[me].tag = static_cast<uint32_t>(axis);
  Build(order, input, lo, mid, depth + 1);
  nodes_[me].right = Build(order, input, mid, hi, depth + 1);
  return me;
}

template <typename Accept>
void KdTree::SearchKnnSmall(const Vec2& q, int k, const Accept& accept,
                            std::vector<Neighbor>& out) const {
  // Small-k variant (k <= kLeafSize): the best k candidates live in a
  // sorted array maintained by insertion — a few compares and a short
  // memmove per improving candidate. The screen is exact at every step
  // (d2 of the current k-th best), so pruning is as tight as possible and
  // the final result needs no sort.
  Candidate best[kLeafSize];
  int m = 0;
  double worst2 = std::numeric_limits<double>::infinity();

  double d2s[kLeafSize];
  SearchTally tally;
  PendingNode stack[kMaxStack];
  int sp = 0;
  stack[sp++] = {0, 0.0, 0.0, 0.0};
  while (sp > 0) {
    const PendingNode top = stack[--sp];
    if (top.bound2 > worst2) continue;
    int32_t node = top.node;
    double ox = top.ox, oy = top.oy;
    while (!(nodes_[node].tag & kLeafBit)) {
      tally.Node();
      const Node& nd = nodes_[node];
      const double diff = (nd.tag == 0 ? q.x : q.y) - nd.split;
      const int32_t near = diff <= 0 ? node + 1 : nd.right;
      const int32_t far = diff <= 0 ? nd.right : node + 1;
      const double fox = nd.tag == 0 ? std::abs(diff) : ox;
      const double foy = nd.tag == 0 ? oy : std::abs(diff);
      const double fbound2 = fox * fox + foy * foy;
      if (fbound2 <= worst2) {
        stack[sp++] = {far, fbound2, fox, foy};
        __builtin_prefetch(&nodes_[far]);
      }
      node = near;
    }
    const Node& leaf = nodes_[node];
    const double* xb = blob_.data() + leaf.right;
    const int count = static_cast<int>(leaf.tag & ~kLeafBit);
    const double* yb = xb + count;
    const double* ib = yb + count;
    tally.Leaf(count);
    for (int j = 0; j < count; ++j) {
      const double dx = xb[j] - q.x;
      const double dy = yb[j] - q.y;
      d2s[j] = dx * dx + dy * dy;
    }
    for (int j = 0; j < count; ++j) {
      if (d2s[j] > worst2) continue;
      const int32_t id = LoadId(ib, j);
      if (!accept(id)) continue;
      const Candidate c{d2s[j], id};
      // Insert into the sorted prefix; when full, the last element falls
      // off. A candidate tying the current worst on (d2, index) lands at
      // pos == m and is dropped, matching the heap path's tie-break.
      int pos = m;
      while (pos > 0 && Better(c, best[pos - 1])) --pos;
      if (m < k) {
        ++m;
      } else if (pos == m) {
        continue;
      }
      for (int s = m - 1; s > pos; --s) best[s] = best[s - 1];
      best[pos] = c;
      if (m == k) worst2 = best[m - 1].d2;
    }
  }
  FlushTally(tally);

  out.resize(m);
  for (int i = 0; i < m; ++i) {
    out[i] = {best[i].index, std::sqrt(best[i].d2)};
  }
}

template <typename Accept>
void KdTree::SearchKnn(const Vec2& q, int k, const Accept& accept,
                       std::vector<Neighbor>& out) const {
  // Candidates are appended to a buffer guarded by a lazy screen `worst2`
  // (the k-th best d2 seen so far, +inf until k have been seen). When the
  // buffer reaches 2k entries an nth_element compaction keeps the k best
  // under the (d2, index) order and tightens the screen — O(1) amortized
  // per candidate, no per-candidate heap sifts. A dropped candidate is
  // worse than k candidates that stay, so it can never re-enter the final
  // top k: the result is exactly the k best, as with a strict heap.
  // The buffer lives on the stack for any k an LBS interface allows; an
  // oversized k falls back to one scratch allocation.
  const int cap = 2 * k;
  Candidate inline_buf[512];
  std::vector<Candidate> spill;
  Candidate* buf = inline_buf;
  if (cap > 512) {
    spill.resize(cap);
    buf = spill.data();
  }
  int m = 0;
  double worst2 = std::numeric_limits<double>::infinity();
  const auto compact = [&] {
    std::nth_element(buf, buf + k - 1, buf + m, Better);
    m = k;
    worst2 = buf[k - 1].d2;
  };

  double d2s[kLeafSize];
  SearchTally tally;
  PendingNode stack[kMaxStack];
  int sp = 0;
  stack[sp++] = {0, 0.0, 0.0, 0.0};
  while (sp > 0) {
    const PendingNode top = stack[--sp];
    if (top.bound2 > worst2) continue;
    int32_t node = top.node;
    double ox = top.ox, oy = top.oy;
    // Descend to the leaf on the query's side, deferring far subtrees.
    while (!(nodes_[node].tag & kLeafBit)) {
      tally.Node();
      const Node& nd = nodes_[node];
      const double diff = (nd.tag == 0 ? q.x : q.y) - nd.split;
      const int32_t near = diff <= 0 ? node + 1 : nd.right;
      const int32_t far = diff <= 0 ? nd.right : node + 1;
      // Crossing to the far child replaces that axis' offset with the gap
      // to the split plane (regions nest, so it can only grow).
      const double fox = nd.tag == 0 ? std::abs(diff) : ox;
      const double foy = nd.tag == 0 ? oy : std::abs(diff);
      const double fbound2 = fox * fox + foy * foy;
      if (fbound2 <= worst2) {
        stack[sp++] = {far, fbound2, fox, foy};
        __builtin_prefetch(&nodes_[far]);
      }
      node = near;
    }
    const Node& leaf = nodes_[node];
    const double* xb = blob_.data() + leaf.right;
    const int count = static_cast<int>(leaf.tag & ~kLeafBit);
    const double* yb = xb + count;
    const double* ib = yb + count;
    tally.Leaf(count);
    // Branch-free distance pass over the bucket (vectorizable), then the
    // scalar heap pass over the few that can matter.
    for (int j = 0; j < count; ++j) {
      const double dx = xb[j] - q.x;
      const double dy = yb[j] - q.y;
      d2s[j] = dx * dx + dy * dy;
    }
    for (int j = 0; j < count; ++j) {
      if (d2s[j] > worst2) continue;
      const int32_t id = LoadId(ib, j);
      if (!accept(id)) continue;
      buf[m++] = {d2s[j], id};
      if (m == cap) compact();
    }
    // Eager first compaction: until k candidates have been seen the screen
    // is +inf and nothing prunes, so tighten it at the first opportunity —
    // typically right after the query's home leaf.
    if (worst2 == std::numeric_limits<double>::infinity() && m >= k) compact();
  }
  FlushTally(tally);

  if (m > k) compact();
  std::sort(buf, buf + m, Better);
  out.resize(m);
  for (int i = 0; i < m; ++i) {
    out[i] = {buf[i].index, std::sqrt(buf[i].d2)};
  }
}

template <typename Accept>
void KdTree::SearchNn(const Vec2& q, const Accept& accept,
                      std::vector<Neighbor>& out) const {
  double best2 = std::numeric_limits<double>::infinity();
  int32_t best = -1;
  double d2s[kLeafSize];
  SearchTally tally;
  PendingNode stack[kMaxStack];
  int sp = 0;
  stack[sp++] = {0, 0.0, 0.0, 0.0};
  while (sp > 0) {
    const PendingNode top = stack[--sp];
    if (top.bound2 > best2) continue;
    int32_t node = top.node;
    double ox = top.ox, oy = top.oy;
    while (!(nodes_[node].tag & kLeafBit)) {
      tally.Node();
      const Node& nd = nodes_[node];
      const double diff = (nd.tag == 0 ? q.x : q.y) - nd.split;
      const int32_t near = diff <= 0 ? node + 1 : nd.right;
      const int32_t far = diff <= 0 ? nd.right : node + 1;
      const double fox = nd.tag == 0 ? std::abs(diff) : ox;
      const double foy = nd.tag == 0 ? oy : std::abs(diff);
      const double fbound2 = fox * fox + foy * foy;
      if (fbound2 <= best2) {
        stack[sp++] = {far, fbound2, fox, foy};
        __builtin_prefetch(&nodes_[far]);
      }
      node = near;
    }
    const Node& leaf = nodes_[node];
    const double* xb = blob_.data() + leaf.right;
    const int count = static_cast<int>(leaf.tag & ~kLeafBit);
    const double* yb = xb + count;
    const double* ib = yb + count;
    tally.Leaf(count);
    for (int j = 0; j < count; ++j) {
      const double dx = xb[j] - q.x;
      const double dy = yb[j] - q.y;
      d2s[j] = dx * dx + dy * dy;
    }
    for (int j = 0; j < count; ++j) {
      if (d2s[j] > best2) continue;
      const int32_t id = LoadId(ib, j);
      // Same (d2, index) order as the heap path: strict improvement, or a
      // tie on d2 won by the smaller index.
      if (d2s[j] == best2 && id >= best) continue;
      if (!accept(id)) continue;
      best2 = d2s[j];
      best = id;
    }
  }
  FlushTally(tally);
  if (best >= 0) out.push_back({best, std::sqrt(best2)});
}

std::vector<Neighbor> KdTree::Nearest(const Vec2& q, int k) const {
  std::vector<Neighbor> out;
  if (k <= 0 || nodes_.empty()) return out;
  if (k == 1) {
    SearchNn(q, [](int) { return true; }, out);
  } else if (k <= kLeafSize) {
    SearchKnnSmall(q, k, [](int) { return true; }, out);
  } else {
    SearchKnn(q, k, [](int) { return true; }, out);
  }
  return out;
}

std::vector<Neighbor> KdTree::NearestFiltered(const Vec2& q, int k,
                                              const IndexFilter& filter) const {
  std::vector<Neighbor> out;
  if (k <= 0 || nodes_.empty()) return out;
  if (filter) {
    const auto accept = [&filter](int index) { return filter(index); };
    if (k == 1) {
      SearchNn(q, accept, out);
    } else if (k <= kLeafSize) {
      SearchKnnSmall(q, k, accept, out);
    } else {
      SearchKnn(q, k, accept, out);
    }
  } else {
    const auto accept = [](int) { return true; };
    if (k == 1) {
      SearchNn(q, accept, out);
    } else if (k <= kLeafSize) {
      SearchKnnSmall(q, k, accept, out);
    } else {
      SearchKnn(q, k, accept, out);
    }
  }
  return out;
}

std::vector<Neighbor> KdTree::WithinRadius(const Vec2& q, double radius) const {
  LBSAGG_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> result;
  if (nodes_.empty()) return result;
  const double r2 = radius * radius;
  double d2s[kLeafSize];
  SearchTally tally;
  PendingNode stack[kMaxStack];
  int sp = 0;
  stack[sp++] = {0, 0.0, 0.0, 0.0};
  while (sp > 0) {
    const PendingNode top = stack[--sp];
    if (top.bound2 > r2) continue;
    int32_t node = top.node;
    double ox = top.ox, oy = top.oy;
    while (!(nodes_[node].tag & kLeafBit)) {
      tally.Node();
      const Node& nd = nodes_[node];
      const double diff = (nd.tag == 0 ? q.x : q.y) - nd.split;
      const int32_t near = diff <= 0 ? node + 1 : nd.right;
      const int32_t far = diff <= 0 ? nd.right : node + 1;
      const double fox = nd.tag == 0 ? std::abs(diff) : ox;
      const double foy = nd.tag == 0 ? oy : std::abs(diff);
      const double fbound2 = fox * fox + foy * foy;
      if (fbound2 <= r2) {
        stack[sp++] = {far, fbound2, fox, foy};
        __builtin_prefetch(&nodes_[far]);
      }
      node = near;
    }
    const Node& leaf = nodes_[node];
    const double* xb = blob_.data() + leaf.right;
    const int count = static_cast<int>(leaf.tag & ~kLeafBit);
    const double* yb = xb + count;
    const double* ib = yb + count;
    tally.Leaf(count);
    for (int j = 0; j < count; ++j) {
      const double dx = xb[j] - q.x;
      const double dy = yb[j] - q.y;
      d2s[j] = dx * dx + dy * dy;
    }
    for (int j = 0; j < count; ++j) {
      if (d2s[j] <= r2) {
        result.push_back({LoadId(ib, j), std::sqrt(d2s[j])});
      }
    }
  }
  FlushTally(tally);
  return result;
}

}  // namespace lbsagg
