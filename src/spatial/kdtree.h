#ifndef LBSAGG_SPATIAL_KDTREE_H_
#define LBSAGG_SPATIAL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "spatial/spatial_index.h"

namespace lbsagg {

// 2-D k-d tree with median splits. This is the spatial index behind the
// simulated LBS server: every kNN query the estimators issue is answered by
// this structure, so it must be fast (the paper's Google Maps experiments
// issue tens of thousands of queries per run; our benchmarks issue
// millions).
//
// Layout (DESIGN.md "Hot path & complexity"): the tree is immutable after
// construction and stored as a flat preorder node array — a node's left
// child is the next array slot, so the near-side descent that dominates
// every search walks contiguous memory. Each leaf owns one contiguous
// 64-byte-aligned block holding its points' x coordinates, y coordinates,
// and original indices back to back, so a bucket scan touches a single
// short run of cache lines the hardware prefetcher streams. Searches are
// iterative (explicit stack, bounded by the balanced depth) and keep the k
// best candidates in a bounded max-heap in a stack buffer: no allocation
// happens per query beyond the result vector the interface returns.
//
// Results are exactly the k smallest under the (distance, index) total
// order, bit-identical to BruteForceIndex / GridIndex.
class KdTree : public SpatialIndex {
 public:
  // Builds the tree over `points` in O(n log n).
  explicit KdTree(std::vector<Vec2> points);

  size_t size() const override { return size_; }
  std::vector<Neighbor> Nearest(const Vec2& q, int k) const override;
  std::vector<Neighbor> NearestFiltered(const Vec2& q, int k,
                                        const IndexFilter& filter) const
      override;

  std::vector<Neighbor> WithinRadius(const Vec2& q,
                                     double radius) const override;

  // Maximum root-to-leaf depth (diagnostics; bounds the search stack).
  int depth() const { return depth_; }

  // Starts publishing per-search work counters (spatial.kdtree.searches /
  // nodes_visited / leaves_scanned / points_tested) to `registry` (null =
  // the process-wide default). Unlike the other layers this is opt-in, not
  // on-by-default: the tree sits on the single hottest loop, so searches
  // tally locally in registers and flush once per search — and only flush
  // at all after EnableStats. LbsServer forwards ServerOptions::
  // stats_registry here. Not thread-safe against in-flight searches; call
  // before sharing the tree.
  void EnableStats(obs::MetricsRegistry* registry);

 private:
  static constexpr int kLeafSize = 16;
  static constexpr uint32_t kLeafBit = 0x80000000u;

  // 16 bytes. Internal node: `split` is the splitting coordinate on axis
  // `tag` (0 = x, 1 = y); the left child ([coords <= split]) is the next
  // node in the array, the right child ([coords >= split]) is `right`.
  // Leaf node: tag = kLeafBit | count, `right` = the leaf's block offset
  // into `blob_` (in doubles): count x coords, then count y coords, then
  // count int32 ids packed into the following doubles.
  struct Node {
    double split = 0.0;
    int32_t right = -1;
    uint32_t tag = 0;
  };

  int Build(std::vector<int>& order, const std::vector<Vec2>& input, int lo,
            int hi, int depth);

  // Per-search tally kept in locals (registers) and flushed to the metric
  // plane once per search; compiles to nothing under LBSAGG_OBS_DISABLED.
  struct SearchTally {
#ifndef LBSAGG_OBS_DISABLED
    uint32_t nodes = 0;
    uint32_t leaves = 0;
    uint32_t points = 0;
    void Node() { ++nodes; }
    void Leaf(int count) {
      ++leaves;
      points += static_cast<uint32_t>(count);
    }
#else
    void Node() {}
    void Leaf(int) {}
#endif
  };

  void FlushTally(const SearchTally& tally) const {
#ifndef LBSAGG_OBS_DISABLED
    if (!stats_enabled_) return;
    searches_.Add(1);
    nodes_visited_.Add(tally.nodes);
    leaves_scanned_.Add(tally.leaves);
    points_tested_.Add(tally.points);
#else
    (void)tally;
#endif
  }

  template <typename Accept>
  void SearchKnn(const Vec2& q, int k, const Accept& accept,
                 std::vector<Neighbor>& out) const;

  // 2 <= k <= kLeafSize specialization: sorted insertion array, exact
  // screen, no final sort.
  template <typename Accept>
  void SearchKnnSmall(const Vec2& q, int k, const Accept& accept,
                      std::vector<Neighbor>& out) const;

  // k == 1 specialization: the single best candidate is tracked in two
  // registers instead of a heap.
  template <typename Accept>
  void SearchNn(const Vec2& q, const Accept& accept,
                std::vector<Neighbor>& out) const;

  // Per-leaf interleaved point blocks (see Node); blocks start on 64-byte
  // boundaries so each bucket scan is one contiguous run of cache lines.
  std::vector<double> blob_;
  std::vector<Node> nodes_;
  size_t size_ = 0;
  int depth_ = 0;

  bool stats_enabled_ = false;
  obs::CounterRef searches_;
  obs::CounterRef nodes_visited_;
  obs::CounterRef leaves_scanned_;
  obs::CounterRef points_tested_;
};

}  // namespace lbsagg

#endif  // LBSAGG_SPATIAL_KDTREE_H_
