#ifndef LBSAGG_SPATIAL_KDTREE_H_
#define LBSAGG_SPATIAL_KDTREE_H_

#include <vector>

#include "spatial/spatial_index.h"

namespace lbsagg {

// 2-D k-d tree with median splits. This is the spatial index behind the
// simulated LBS server: every kNN query the estimators issue is answered by
// this structure, so it must be fast (the paper's Google Maps experiments
// issue tens of thousands of queries per run; our benchmarks issue
// millions).
//
// The tree is immutable after construction; nodes are stored in a flat array
// in depth-first order for cache-friendly traversal.
class KdTree : public SpatialIndex {
 public:
  // Builds the tree over `points` in O(n log n).
  explicit KdTree(std::vector<Vec2> points);

  size_t size() const override { return points_.size(); }
  std::vector<Neighbor> Nearest(const Vec2& q, int k) const override;
  std::vector<Neighbor> NearestFiltered(const Vec2& q, int k,
                                        const IndexFilter& filter) const
      override;

  std::vector<Neighbor> WithinRadius(const Vec2& q,
                                     double radius) const override;

 private:
  struct Node {
    int point = -1;    // index into points_
    int left = -1;     // child node indices, -1 = leaf side empty
    int right = -1;
    int axis = 0;      // 0 = x, 1 = y
  };

  int Build(std::vector<int>& indices, int lo, int hi, int depth);

  template <typename Visit>
  void Search(int node, const Vec2& q, double& worst, Visit&& visit) const;

  std::vector<Vec2> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace lbsagg

#endif  // LBSAGG_SPATIAL_KDTREE_H_
