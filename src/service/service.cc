#include "service/service.h"

#include <algorithm>
#include <utility>

#include "engine/log/durable_log.h"
#include "util/check.h"
#include "util/json_writer.h"

namespace lbsagg {
namespace service {

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kCompleted:
      return "completed";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kRejected:
      return "rejected";
    case SessionState::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

const char* EstimatorFamilyName(EstimatorFamily family) {
  switch (family) {
    case EstimatorFamily::kLr:
      return "lr";
    case EstimatorFamily::kLnr:
      return "lnr";
    case EstimatorFamily::kNno:
      return "nno";
  }
  return "unknown";
}

// The per-session engine stack, built at activation and torn down at
// finalization, so only the active set pays for live engines.
struct EstimationService::ActiveRun {
  std::unique_ptr<LbsClient> client;
  std::unique_ptr<engine::CellResolver> resolver;
  std::unique_ptr<engine::EstimationEngine> engine;
  std::vector<engine::AggregateQuery*> aggregates;
  // Durable evidence log (spec.wal_dir); declared last so it detaches from
  // the engine and closes before the engine/client it reads are destroyed.
  std::unique_ptr<engine::DurableEvidenceLog> wal;
};

struct EstimationService::Session {
  SessionId id = kInvalidSessionId;
  SessionSpec spec;
  SessionState state = SessionState::kQueued;
  std::string detail;

  double submit_ms = 0;
  double start_ms = -1;
  double end_ms = -1;

  uint64_t dedup_hits = 0;
  size_t rounds = 0;

  // Frozen at finalization (live values come from `run` until then).
  uint64_t queries = 0;
  std::vector<RunResult> results;

  // Open "service.session" span ticket; 0 when no tracer or already
  // resolved (Finalize closes/drops it, the destructor flushes leftovers).
  uint64_t span_ticket = 0;

  std::unique_ptr<ActiveRun> run;
};

// Everything the service owns per backend: the effective wire (direct or
// caller-provided, dedup-wrapped when enabled), its worker pool, and the
// default query sampler.
struct EstimationService::BackendRuntime {
  std::unique_ptr<DirectTransport> direct;
  std::unique_ptr<QueryDedupRegistry> dedup;
  std::unique_ptr<DedupTransport> dedup_wire;
  LbsTransport* wire = nullptr;
  std::unique_ptr<AsyncDispatcher> dispatcher;
  std::unique_ptr<UniformSampler> sampler;
};

EstimationService::EstimationService(std::vector<ServiceBackend> backends,
                                     ServiceOptions options)
    : backends_(std::move(backends)),
      options_(std::move(options)),
      queue_(options_.admission) {
  LBSAGG_CHECK(!backends_.empty());
  LBSAGG_CHECK_GT(options_.slice_rounds, 0u);

  obs::MetricsRegistry* reg = options_.registry;
  submitted_counter_ = obs::GetCounter(reg, "service.sessions.submitted");
  completed_counter_ = obs::GetCounter(reg, "service.sessions.completed");
  rejected_counter_ = obs::GetCounter(reg, "service.sessions.rejected");
  cancelled_counter_ = obs::GetCounter(reg, "service.sessions.cancelled");
  deadline_counter_ = obs::GetCounter(reg, "service.sessions.deadline_exceeded");
  slices_counter_ = obs::GetCounter(reg, "service.scheduler.slices");
  active_gauge_ = obs::GetGauge(reg, "service.scheduler.active");
  queued_gauge_ = obs::GetGauge(reg, "service.scheduler.queued");

  triggers_.SetFlightRecorder(options_.recorder);

  runtimes_.reserve(backends_.size());
  for (ServiceBackend& backend : backends_) {
    LBSAGG_CHECK(backend.meta != nullptr);
    auto rt = std::make_unique<BackendRuntime>();
    LbsTransport* wire = backend.wire;
    if (wire == nullptr) {
      rt->direct = std::make_unique<DirectTransport>(backend.meta);
      wire = rt->direct.get();
    }
    if (options_.dedup) {
      rt->dedup = std::make_unique<QueryDedupRegistry>(reg);
      rt->dedup_wire = std::make_unique<DedupTransport>(wire, rt->dedup.get());
      wire = rt->dedup_wire.get();
    }
    rt->wire = wire;
    DispatcherOptions dopts;
    dopts.num_workers = options_.dispatcher_workers;
    rt->dispatcher = std::make_unique<AsyncDispatcher>(wire, dopts);
    rt->sampler = std::make_unique<UniformSampler>(backend.meta->dataset().box());
    runtimes_.push_back(std::move(rt));
  }
}

EstimationService::~EstimationService() {
  // Sessions still live at teardown have open "service.session" spans;
  // truncate-close them so the trace file records the in-flight work
  // instead of silently dropping it.
  if (options_.tracer != nullptr) {
    const double end_us = NowMs() * 1000.0;
    for (auto& [id, session] : sessions_) {
      if (session->span_ticket != 0) {
        options_.tracer->CloseSpanTruncated(session->span_ticket, end_us);
        session->span_ticket = 0;
      }
    }
  }
}

double EstimationService::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return static_cast<double>(ticks_);
}

const QueryDedupRegistry* EstimationService::dedup(size_t backend) const {
  LBSAGG_CHECK_LT(backend, runtimes_.size());
  return runtimes_[backend]->dedup.get();
}

EstimationService::Session* EstimationService::Find(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const EstimationService::Session* EstimationService::Find(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

SessionId EstimationService::Submit(SessionSpec spec) {
  const SessionId id = next_id_++;
  auto owned = std::make_unique<Session>();
  Session* session = owned.get();
  session->id = id;
  session->spec = std::move(spec);
  session->submit_ms = NowMs();
  if (options_.tracer != nullptr) {
    // The session span opens now and resolves at finalization — Finalize
    // closes it (truncated for Cancel/deadline), drops it for kRejected.
    session->span_ticket = options_.tracer->OpenSpan(
        "service.session", "service", session->submit_ms * 1000.0);
  }
  sessions_.emplace(id, std::move(owned));
  ++submitted_;
  submitted_counter_.Add(1);

  std::string error;
  if (session->spec.budget == 0) {
    error = "budget must be > 0";
  } else if (session->spec.k <= 0) {
    error = "k must be > 0";
  } else if (session->spec.backend >= backends_.size()) {
    error = "unknown backend";
  }
  if (!error.empty()) {
    Finalize(session, SessionState::kRejected, std::move(error));
    return id;
  }
  if (!queue_.TryEnqueue(id, session->spec.principal)) {
    Finalize(session, SessionState::kRejected, "admission queue full");
    return id;
  }
  queued_gauge_.Set(static_cast<double>(queue_.size()));
  FireEvent(SessionEventKind::kSubmitted, *session);
  return id;
}

SessionStatus EstimationService::Poll(SessionId id) const {
  SessionStatus status;
  const Session* session = Find(id);
  if (session == nullptr) {
    status.detail = "unknown session";
    return status;
  }
  status.id = id;
  status.state = session->state;
  status.principal = session->spec.principal;
  status.submit_ms = session->submit_ms;
  status.start_ms = session->start_ms;
  status.end_ms = session->end_ms;
  status.dedup_hits = session->dedup_hits;
  status.rounds = session->rounds;
  status.detail = session->detail;
  if (session->run != nullptr) {
    status.queries_used = session->run->engine->queries_used();
    status.estimates.reserve(session->run->aggregates.size());
    for (const engine::AggregateQuery* agg : session->run->aggregates) {
      status.estimates.push_back(agg->Estimate());
    }
  } else {
    status.queries_used = session->queries;
    status.estimates.reserve(session->results.size());
    for (const RunResult& result : session->results) {
      status.estimates.push_back(result.final_estimate);
    }
    status.results = session->results;
  }
  if (IsTerminal(session->state)) {
    status.latency_ms = session->end_ms - session->submit_ms;
  }
  return status;
}

bool EstimationService::Cancel(SessionId id) {
  Session* session = Find(id);
  if (session == nullptr || IsTerminal(session->state)) return false;
  if (session->state == SessionState::kQueued) {
    queue_.Remove(id);
    queued_gauge_.Set(static_cast<double>(queue_.size()));
  } else {
    RemoveActive(session);
  }
  Finalize(session, SessionState::kCancelled, "cancelled by caller");
  return true;
}

bool EstimationService::Forget(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || !IsTerminal(it->second->state)) return false;
  sessions_.erase(it);
  return true;
}

void EstimationService::Activate(Session* session) {
  BackendRuntime& rt = *runtimes_[session->spec.backend];
  const LbsServer* meta = backends_[session->spec.backend].meta;
  auto run = std::make_unique<ActiveRun>();

  ClientOptions copts;
  copts.k = session->spec.k;
  copts.budget = session->spec.budget;
  copts.memoize_queries = session->spec.memoize_queries;
  copts.registry = options_.registry;
  copts.tracer = options_.tracer;

  const QuerySampler* sampler = session->spec.sampler != nullptr
                                    ? session->spec.sampler
                                    : rt.sampler.get();

  switch (session->spec.family) {
    case EstimatorFamily::kLr: {
      auto client = std::make_unique<LrClient>(meta, copts, rt.wire,
                                               rt.dispatcher.get());
      LrAggOptions opts = session->spec.lr;
      opts.seed = session->spec.seed;
      opts.registry = options_.registry;
      opts.tracer = options_.tracer;
      run->resolver = std::make_unique<engine::LrCellResolver>(client.get(),
                                                               sampler, opts);
      run->client = std::move(client);
      break;
    }
    case EstimatorFamily::kLnr: {
      auto client = std::make_unique<LnrClient>(meta, copts, rt.wire,
                                                rt.dispatcher.get());
      LnrAggOptions opts = session->spec.lnr;
      opts.seed = session->spec.seed;
      opts.registry = options_.registry;
      opts.tracer = options_.tracer;
      run->resolver = std::make_unique<engine::LnrCellResolver>(client.get(),
                                                                sampler, opts);
      run->client = std::move(client);
      break;
    }
    case EstimatorFamily::kNno: {
      auto client = std::make_unique<LrClient>(meta, copts, rt.wire,
                                               rt.dispatcher.get());
      NnoOptions opts = session->spec.nno;
      opts.seed = session->spec.seed;
      opts.registry = options_.registry;
      opts.tracer = options_.tracer;
      run->resolver =
          std::make_unique<engine::NnoProbeResolver>(client.get(), opts);
      run->client = std::move(client);
      break;
    }
  }

  run->engine = std::make_unique<engine::EstimationEngine>(
      run->resolver.get(),
      engine::EngineOptions{options_.registry, options_.tracer});
  if (session->spec.aggregates.empty()) {
    run->aggregates.push_back(run->engine->AddAggregate(AggregateSpec::Count()));
  } else {
    run->aggregates.reserve(session->spec.aggregates.size());
    for (const AggregateSpec& spec : session->spec.aggregates) {
      run->aggregates.push_back(run->engine->AddAggregate(spec));
    }
  }

  // Session persistence (DESIGN.md §4.14). Resume first — recovery and the
  // evidence replay must run against the freshly built stack before any new
  // round — then attach the durable log so every round from here on lands
  // in the WAL. Failures reject the session rather than run it: a resumed
  // run whose state cannot be restored bit-identically must not proceed.
  const std::string wal_dir = !session->spec.resume_from.empty()
                                  ? session->spec.resume_from
                                  : session->spec.wal_dir;
  if (!wal_dir.empty()) {
    if (!session->spec.resume_from.empty()) {
      engine::RecoveredRun rec = engine::RecoverDurableRun(wal_dir);
      std::string error = rec.error;
      if (error.empty()) {
        run->engine->RestoreEvidence(rec.evidence);
        error = engine::ApplyCheckpoint(rec, run->engine.get(),
                                        run->client.get());
      }
      if (!error.empty()) {
        Finalize(session, SessionState::kRejected, "resume failed: " + error);
        return;
      }
      // The round cap continues where the interrupted run stopped, exactly
      // as the uninterrupted run would count it.
      session->rounds = run->engine->evidence().num_rounds();
    }
    engine::DurableLogOptions log_options;
    log_options.dir = wal_dir;
    log_options.checkpoint_every_rounds = session->spec.checkpoint_every_rounds;
    run->wal = std::make_unique<engine::DurableEvidenceLog>(
        log_options, run->engine.get(), run->client.get());
    if (!run->wal->ok()) {
      Finalize(session, SessionState::kRejected,
               "durable log failed: " + run->wal->error());
      return;
    }
  }

  session->run = std::move(run);
  session->state = SessionState::kRunning;
  session->start_ms = NowMs();
  active_.push_back(session);
  active_gauge_.Set(static_cast<double>(active_.size()));
  FireEvent(SessionEventKind::kStarted, *session);
}

void EstimationService::Finalize(Session* session, SessionState state,
                                 std::string detail) {
  LBSAGG_CHECK(IsTerminal(state));
  if (session->run != nullptr) {
    // Final checkpoint + sync before the engine state is frozen: a session
    // finalized at its budget leaves a WAL that recovers to exactly the
    // finalized state (and a cancelled one resumes from where it stopped).
    if (session->run->wal != nullptr) session->run->wal->Close();
    const engine::EstimationEngine& eng = *session->run->engine;
    session->queries = eng.queries_used();
    session->results.reserve(session->run->aggregates.size());
    for (const engine::AggregateQuery* agg : session->run->aggregates) {
      RunResult result;
      result.trace = agg->trace();
      result.final_estimate = agg->Estimate();
      result.queries = eng.queries_used();
      session->results.push_back(std::move(result));
    }
    session->run.reset();
    active_gauge_.Set(static_cast<double>(active_.size()));
  }
  session->state = state;
  session->detail = std::move(detail);
  session->end_ms = NowMs();
  switch (state) {
    case SessionState::kCompleted:
      ++completed_;
      completed_counter_.Add(1);
      break;
    case SessionState::kCancelled:
      ++cancelled_;
      cancelled_counter_.Add(1);
      break;
    case SessionState::kRejected:
      ++rejected_;
      rejected_counter_.Add(1);
      break;
    case SessionState::kDeadlineExceeded:
      ++deadline_exceeded_;
      deadline_counter_.Add(1);
      break;
    default:
      break;
  }
  if (options_.tracer != nullptr && session->span_ticket != 0) {
    const double end_us = session->end_ms * 1000.0;
    if (state == SessionState::kRejected) {
      // Rejected sessions never ran; no span to show.
      options_.tracer->DropSpan(session->span_ticket);
    } else if (state == SessionState::kCompleted) {
      options_.tracer->CloseSpan(session->span_ticket, end_us);
    } else {
      // Cancel / deadline: the span is real work cut short — emit it
      // truncated instead of losing it.
      options_.tracer->CloseSpanTruncated(session->span_ticket, end_us);
    }
    session->span_ticket = 0;
  }
  FireEvent(state == SessionState::kRejected ? SessionEventKind::kRejected
                                             : SessionEventKind::kFinished,
            *session);
}

void EstimationService::RemoveActive(Session* session) {
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i] != session) continue;
    active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
    // Keep the round-robin rotation fair: entries before the cursor shifted
    // left by one.
    if (i < rr_cursor_) --rr_cursor_;
    return;
  }
}

bool EstimationService::PastDeadline(const Session& session) const {
  return session.spec.deadline_ms > 0 &&
         NowMs() - session.submit_ms > session.spec.deadline_ms;
}

void EstimationService::FillActiveSet() {
  while (active_.size() < queue_.options().max_active) {
    const SessionId id = queue_.PopNext();
    if (id == kInvalidSessionId) break;
    Session* session = Find(id);
    LBSAGG_CHECK(session != nullptr);
    if (PastDeadline(*session)) {
      Finalize(session, SessionState::kDeadlineExceeded,
               "deadline exceeded while queued");
      continue;
    }
    Activate(session);
  }
  queued_gauge_.Set(static_cast<double>(queue_.size()));
}

bool EstimationService::RunSlice() {
  FillActiveSet();
  if (active_.empty()) return false;
  ++ticks_;
  slices_counter_.Add(1);

  const size_t idx = rr_cursor_ % active_.size();
  Session* session = active_[idx];
  if (PastDeadline(*session)) {
    RemoveActive(session);
    Finalize(session, SessionState::kDeadlineExceeded, "deadline exceeded");
    return true;
  }

  BackendRuntime& rt = *runtimes_[session->spec.backend];
  const uint64_t budget = session->spec.budget;
  const size_t max_rounds = session->spec.max_rounds != 0
                                ? session->spec.max_rounds
                                : options_.default_max_rounds;
  engine::EstimationEngine* eng = session->run->engine.get();

  if (rt.dedup != nullptr) rt.dedup->SetHitSink(&session->dedup_hits);
  size_t ran = 0;
  // Exactly RunWithBudget's loop condition, time-sliced: the session ends
  // with the same rounds and counted-query trace as running it alone.
  while (ran < options_.slice_rounds && eng->queries_used() < budget &&
         session->rounds < max_rounds) {
    eng->Step();
    ++session->rounds;
    ++ran;
    // Round-aligned checkpoint policy, between steps (post-fold state).
    if (session->run->wal != nullptr) session->run->wal->MaybeCheckpoint();
  }
  if (rt.dedup != nullptr) rt.dedup->SetHitSink(nullptr);

  FireEvent(SessionEventKind::kProgress, *session);
  // A progress trigger may have cancelled this very session.
  if (IsTerminal(session->state)) return true;

  if (eng->queries_used() >= budget || session->rounds >= max_rounds) {
    RemoveActive(session);
    Finalize(session, SessionState::kCompleted, {});
  } else {
    rr_cursor_ = idx + 1;
  }
  return true;
}

void EstimationService::RunUntilIdle() {
  while (RunSlice()) {
  }
}

void EstimationService::FireEvent(SessionEventKind kind,
                                  const Session& session) {
  // A flight recorder alone still wants the event stream; skip the build
  // only when nobody is listening at all.
  if (triggers_.size() == 0 && triggers_.flight_recorder() == nullptr) return;
  SessionEvent event;
  event.kind = kind;
  event.id = session.id;
  event.state = session.state;
  event.principal = session.spec.principal;
  event.queries_used = session.run != nullptr
                           ? session.run->engine->queries_used()
                           : session.queries;
  event.rounds = session.rounds;
  event.now_ms = NowMs();
  triggers_.Fire(event);
}

std::vector<SessionIntrospection> EstimationService::IntrospectSessions()
    const {
  std::vector<SessionIntrospection> rows;
  rows.reserve(sessions_.size());
  const double now_ms = NowMs();
  for (const auto& [id, session] : sessions_) {
    SessionIntrospection row;
    row.id = id;
    row.state = session->state;
    row.principal = session->spec.principal;
    row.family = session->spec.family;
    row.budget = session->spec.budget;
    row.rounds = session->rounds;
    row.dedup_hits = session->dedup_hits;
    row.submit_ms = session->submit_ms;
    row.start_ms = session->start_ms;
    row.end_ms = session->end_ms;
    row.has_deadline = session->spec.deadline_ms > 0;
    row.deadline_ms = session->spec.deadline_ms;
    if (row.has_deadline) {
      row.deadline_slack_ms =
          session->submit_ms + session->spec.deadline_ms - now_ms;
    }
    if (session->run != nullptr) {
      row.queries_used = session->run->engine->queries_used();
      row.aggregates.reserve(session->run->aggregates.size());
      for (const engine::AggregateQuery* agg : session->run->aggregates) {
        AggregateIntrospection view;
        view.name = agg->spec().name;
        view.estimate = agg->Estimate();
        view.half_width = agg->ConfidenceHalfWidth();
        view.trajectory = agg->convergence();
        row.aggregates.push_back(std::move(view));
      }
    } else {
      row.queries_used = session->queries;
      // Terminal (or still-queued) sessions have no live engine; frozen
      // results carry the final estimates but no trajectory.
      row.aggregates.reserve(session->results.size());
      for (size_t i = 0; i < session->results.size(); ++i) {
        AggregateIntrospection view;
        view.name = i < session->spec.aggregates.size()
                        ? session->spec.aggregates[i].name
                        : "COUNT(*)";
        view.estimate = session->results[i].final_estimate;
        row.aggregates.push_back(std::move(view));
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const SessionIntrospection& a, const SessionIntrospection& b) {
              return a.id < b.id;
            });
  return rows;
}

std::string EstimationService::diagnostics_json() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("sessions")
      .BeginObject()
      .KV("submitted", submitted_)
      .KV("completed", completed_)
      .KV("rejected", rejected_)
      .KV("cancelled", cancelled_)
      .KV("deadline_exceeded", deadline_exceeded_)
      .EndObject();
  json.KV("queued", static_cast<uint64_t>(queue_.size()))
      .KV("active", static_cast<uint64_t>(active_.size()))
      .KV("slices", ticks_);
  json.Key("admission")
      .BeginObject()
      .KV("policy", AdmissionPolicyName(queue_.options().policy))
      .KV("queue_capacity",
          static_cast<uint64_t>(queue_.options().queue_capacity))
      .KV("max_active", static_cast<uint64_t>(queue_.options().max_active))
      .EndObject();
  json.KV("dispatcher_workers",
          static_cast<uint64_t>(options_.dispatcher_workers));
  json.Key("dedup").BeginArray();
  for (const std::unique_ptr<BackendRuntime>& rt : runtimes_) {
    if (rt->dedup != nullptr) {
      json.RawValue(rt->dedup->ToJson());
    } else {
      json.ValueNull();
    }
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

}  // namespace service
}  // namespace lbsagg
