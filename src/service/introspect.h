#ifndef LBSAGG_SERVICE_INTROSPECT_H_
#define LBSAGG_SERVICE_INTROSPECT_H_

// Service-side statusz assembly (DESIGN.md §4.13): the glue that turns one
// EstimationService (plus whatever else the host wires in — a sharded
// wire's per-lane metrics, a time-series sampler, a flight recorder) into
// the one-call introspection snapshot. The generic pieces live in
// obs/introspect/ and know nothing about the service; this header is where
// the layering inverts, exactly like TransportMetrics riding RunReport's
// AddJsonSection.
//
//   ServiceIntrospector intro({.service = &svc, .sharded = &wire,
//                              .sampler = &sampler, .recorder = &recorder});
//   std::cout << intro.BuildStatusz().ToJson();      // machine snapshot
//   std::cout << intro.PrometheusText();             // scrape page
//
// Everything here is pure observation: building a snapshot perturbs no
// schedule, estimate, or metric. Under -DLBSAGG_OBS_DISABLED the builders
// degrade to the obs stubs (valid-but-empty JSON), so --statusz flags keep
// working against a disabled build.

#include <string>

#include "obs/introspect/flight_recorder.h"
#include "obs/introspect/sampler.h"
#include "obs/introspect/statusz.h"
#include "service/service.h"
#include "transport/sharded_transport.h"

namespace lbsagg {
namespace service {

// JSON for one IntrospectSessions() row, trajectory included:
// {"id":..,"state":"..","principal":"..","family":"..","budget":..,
//  "queries_used":..,"rounds":..,"dedup_hits":..,"submit_ms":..,
//  "start_ms":..,"end_ms":..,"deadline_ms":..,"deadline_slack_ms":..,
//  "aggregates":[{"name":"..","estimate":..,"half_width":..,
//                 "trajectory":[{"queries":..,"estimate":..,
//                                "half_width":..},...]},...]}
std::string SessionIntrospectionJson(const SessionIntrospection& row);

struct IntrospectorOptions {
  // Required; must outlive the introspector.
  EstimationService* service = nullptr;
  // Optional per-shard lane health ("shards" section).
  const ShardedTransport* sharded = nullptr;
  // Optional sliding-window series ("timeseries" section).
  const obs::introspect::TimeSeriesSampler* sampler = nullptr;
  // Optional recorder tallies ("flight_recorder" section).
  const obs::introspect::FlightRecorder* recorder = nullptr;
  // Metric plane to snapshot; null = MetricsRegistry::Default(). Use the
  // same registry the service was built with.
  obs::MetricsRegistry* registry = nullptr;
};

class ServiceIntrospector {
 public:
  explicit ServiceIntrospector(IntrospectorOptions options);

  // One full statusz: meta (clock, scheduler depths, tallies), the metrics
  // snapshot, and sections "service" (diagnostics), "sessions"
  // (introspection rows), plus "shards" / "timeseries" / "flight_recorder"
  // when wired.
  obs::introspect::Statusz BuildStatusz() const;

  // The Prometheus text-format page over the same registry.
  std::string PrometheusText() const;

 private:
  IntrospectorOptions options_;
};

}  // namespace service
}  // namespace lbsagg

#endif  // LBSAGG_SERVICE_INTROSPECT_H_
