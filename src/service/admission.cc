#include "service/admission.h"

#include <algorithm>

namespace lbsagg {
namespace service {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kFairShare:
      return "fair_share";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(AdmissionOptions options) : options_(options) {}

bool AdmissionQueue::TryEnqueue(SessionId id, const std::string& principal) {
  if (size_ >= options_.queue_capacity) return false;
  if (options_.policy == AdmissionPolicy::kFifo) {
    fifo_.push_back(id);
  } else {
    auto [it, inserted] = principal_index_.emplace(principal, lanes_.size());
    if (inserted) lanes_.emplace_back();
    lanes_[it->second].push_back(id);
  }
  ++size_;
  return true;
}

SessionId AdmissionQueue::PopNext() {
  if (size_ == 0) return kInvalidSessionId;
  if (options_.policy == AdmissionPolicy::kFifo) {
    const SessionId id = fifo_.front();
    fifo_.pop_front();
    --size_;
    return id;
  }
  // Round-robin over the principal ring, skipping drained lanes.
  for (size_t step = 0; step < lanes_.size(); ++step) {
    const size_t lane = (cursor_ + step) % lanes_.size();
    if (lanes_[lane].empty()) continue;
    const SessionId id = lanes_[lane].front();
    lanes_[lane].pop_front();
    --size_;
    cursor_ = (lane + 1) % lanes_.size();
    return id;
  }
  return kInvalidSessionId;  // unreachable while size_ is consistent
}

bool AdmissionQueue::Remove(SessionId id) {
  auto erase_from = [this, id](std::deque<SessionId>& lane) {
    auto it = std::find(lane.begin(), lane.end(), id);
    if (it == lane.end()) return false;
    lane.erase(it);
    --size_;
    return true;
  };
  if (options_.policy == AdmissionPolicy::kFifo) return erase_from(fifo_);
  for (std::deque<SessionId>& lane : lanes_) {
    if (erase_from(lane)) return true;
  }
  return false;
}

}  // namespace service
}  // namespace lbsagg
