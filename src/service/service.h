#ifndef LBSAGG_SERVICE_SERVICE_H_
#define LBSAGG_SERVICE_SERVICE_H_

// Estimation-as-a-service (DESIGN.md §4.12): a long-running host for many
// concurrent estimation sessions over one or several LBS backends.
//
//   EstimationService svc({{.meta = &server, .wire = &sim}}, options);
//   SessionId a = svc.Submit({.family = EstimatorFamily::kLr, ...});
//   SessionId b = svc.Submit({...});
//   svc.RunUntilIdle();
//   SessionStatus done = svc.Poll(a);
//
// Scheduling is cooperative and single-threaded: RunSlice() round-robins
// the active set, giving each session `slice_rounds` engine rounds per turn
// while its soft budget, round cap, and virtual-time deadline allow —
// deterministic by construction. Parallelism lives where it always has in
// this codebase: each backend owns an AsyncDispatcher whose workers fulfill
// the prepared query plans, bit-identical for any worker count (the
// transport contract), so session outcomes and dedup counters are pinned
// across {0,1,4,8}-worker services by sweep_determinism_test.
//
// Cross-session dedup (service/dedup.h) wraps every backend wire: identical
// interface queries from different sessions cost the backend once while each
// session is charged as if it ran alone — estimates stay bit-identical to
// solo runs, and the registry reports the saved backend queries.
//
// Admission control (service/admission.h) bounds the wait queue and sheds
// overflow with kRejected; the active set bounds live engines, so a backlog
// of 10^6 queued sessions is 10^6 specs, not 10^6 engines.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "lbs/client.h"
#include "lbs/server.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "service/admission.h"
#include "service/dedup.h"
#include "service/event.h"
#include "service/session.h"
#include "transport/async_dispatcher.h"
#include "transport/transport.h"

namespace lbsagg {
namespace service {

// One hosted backend: the metadata server (schema, region, attribute reads —
// the PR-7 pattern: it is consulted for public knowledge, while search
// traffic goes down the wire) plus the wire itself. For a sharded backend,
// `meta` is a cheap brute-backend server over the same dataset and `wire` a
// ShardedTransport; for a single server, `wire` may be null and the service
// runs a DirectTransport over `meta`.
struct ServiceBackend {
  const LbsServer* meta = nullptr;
  LbsTransport* wire = nullptr;  // null = direct in-process wire over `meta`
};

struct ServiceOptions {
  AdmissionOptions admission;

  // Workers of each backend's AsyncDispatcher (0 = inline batches). Session
  // outcomes are bit-identical for any value — this is the "scheduler worker
  // count" knob the determinism suite sweeps.
  unsigned dispatcher_workers = 0;

  // Engine rounds a session runs per scheduler turn.
  size_t slice_rounds = 1;

  // Cross-session dedup on/off (on is the point; off is the ablation).
  bool dedup = true;

  // Backstop round cap for sessions with SessionSpec::max_rounds == 0.
  size_t default_max_rounds = 1u << 20;

  // Service clock in ms for deadlines, latency accounting, and
  // service.session spans — bind it to the backend wire's virtual time,
  // e.g. [&sim] { return sim.VirtualNowMs(); }. Null = the scheduler's own
  // tick counter (one ms per slice), which keeps everything deterministic
  // when no simulated wire is present.
  std::function<double()> clock_ms;

  // Metric plane for the service.* counters (and everything the service
  // builds: clients, resolvers, engines); null = Default().
  obs::MetricsRegistry* registry = nullptr;

  // When set, every session opens a "service.session" span at Submit and
  // resolves it at finalization: completed sessions close normally,
  // cancelled / deadline-exceeded sessions close with a ".truncated"
  // category suffix, rejected sessions drop theirs, and sessions still live
  // when the service is destroyed are flushed as truncated — a trace file
  // never silently loses in-flight work (DESIGN.md §4.13).
  obs::Tracer* tracer = nullptr;

  // Live flight recorder (obs/introspect/flight_recorder.h). When set, the
  // trigger registry mirrors every session lifecycle event into it —
  // whether or not any trigger is registered — so a drain always shows the
  // recent event stream. Attach the same recorder to `tracer` via
  // Tracer::SetFlightRecorder to interleave spans with the events. Must
  // outlive the service.
  obs::introspect::FlightRecorder* recorder = nullptr;
};

class EstimationService {
 public:
  // Backends must outlive the service. At least one backend, each with a
  // non-null `meta`.
  explicit EstimationService(std::vector<ServiceBackend> backends,
                             ServiceOptions options = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  // Validates and enqueues a session. Always returns a valid id: a shed or
  // invalid session is immediately terminal with state kRejected (Poll the
  // id for the detail).
  SessionId Submit(SessionSpec spec);

  // Snapshot of one session; unknown ids return id == kInvalidSessionId.
  SessionStatus Poll(SessionId id) const;

  // Queued sessions cancel in place; running sessions finalize immediately
  // with their partial results. False when the session is unknown or
  // already terminal.
  bool Cancel(SessionId id);

  // Drops a *terminal* session's record (results included) so long load
  // runs don't accumulate 10^6 frozen traces — harvest via Poll or a
  // kFinished trigger first, then Forget. Never call it from inside a
  // trigger firing for this very session. False when the session is
  // unknown or still live (tallies are unaffected either way).
  bool Forget(SessionId id);

  // One cooperative scheduler turn: tops up the active set from the queue,
  // then runs one session's slice. Returns false when nothing is left to do.
  bool RunSlice();

  // Drives RunSlice() until every submitted session is terminal.
  void RunUntilIdle();

  // Session lifecycle callbacks, fired synchronously from the scheduler.
  TriggerRegistry& triggers() { return triggers_; }

  // The backend's dedup registry; null when ServiceOptions::dedup is off.
  const QueryDedupRegistry* dedup(size_t backend = 0) const;

  double NowMs() const;
  size_t num_backends() const { return backends_.size(); }
  size_t queued() const { return queue_.size(); }
  size_t active() const { return active_.size(); }

  // Lifetime tallies (mirrored by the service.sessions.* counters).
  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t cancelled() const { return cancelled_; }
  uint64_t deadline_exceeded() const { return deadline_exceeded_; }

  // The "service" run-report section: session tallies, scheduler state,
  // admission config, and per-backend dedup stats.
  std::string diagnostics_json() const;

  // Statusz rows for every session the service still remembers, id-sorted:
  // state, budget burn-down, deadline slack at NowMs(), and per-aggregate
  // convergence trajectories (live engines read through; terminal sessions
  // report their frozen results without trajectories). Pure observation —
  // calling it perturbs no schedule, estimate, or counter.
  std::vector<SessionIntrospection> IntrospectSessions() const;

 private:
  struct ActiveRun;
  struct Session;
  struct BackendRuntime;

  Session* Find(SessionId id);
  const Session* Find(SessionId id) const;
  void Activate(Session* session);
  void Finalize(Session* session, SessionState state, std::string detail);
  void RemoveActive(Session* session);
  void FillActiveSet();
  bool PastDeadline(const Session& session) const;
  void FireEvent(SessionEventKind kind, const Session& session);

  std::vector<ServiceBackend> backends_;
  ServiceOptions options_;
  std::vector<std::unique_ptr<BackendRuntime>> runtimes_;

  AdmissionQueue queue_;
  TriggerRegistry triggers_;
  std::unordered_map<SessionId, std::unique_ptr<Session>> sessions_;
  std::vector<Session*> active_;
  size_t rr_cursor_ = 0;
  SessionId next_id_ = 1;
  uint64_t ticks_ = 0;  // slices run; the fallback clock

  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t deadline_exceeded_ = 0;

  obs::CounterRef submitted_counter_;
  obs::CounterRef completed_counter_;
  obs::CounterRef rejected_counter_;
  obs::CounterRef cancelled_counter_;
  obs::CounterRef deadline_counter_;
  obs::CounterRef slices_counter_;
  obs::GaugeRef active_gauge_;
  obs::GaugeRef queued_gauge_;
};

}  // namespace service
}  // namespace lbsagg

#endif  // LBSAGG_SERVICE_SERVICE_H_
