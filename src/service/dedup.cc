#include "service/dedup.h"

#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace lbsagg {
namespace service {

QueryDedupRegistry::QueryDedupRegistry(obs::MetricsRegistry* registry)
    : hits_counter_(obs::GetCounter(registry, "service.dedup.hits")),
      saved_counter_(
          obs::GetCounter(registry, "service.dedup.saved_queries")) {}

DedupStats QueryDedupRegistry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {lookups_, hits_, saved_attempts_, entries_.size()};
}

std::string QueryDedupRegistry::ToJson() const {
  const DedupStats stats = Stats();
  std::ostringstream out;
  out << "{\"entries\":" << stats.entries << ",\"lookups\":" << stats.lookups
      << ",\"hits\":" << stats.hits
      << ",\"saved_queries\":" << stats.saved_attempts << "}";
  return out.str();
}

void QueryDedupRegistry::SetHitSink(uint64_t* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  hit_sink_ = sink;
}

DedupTransport::DedupTransport(LbsTransport* inner,
                               QueryDedupRegistry* registry)
    : inner_(inner), registry_(registry) {
  LBSAGG_CHECK(inner != nullptr);
  LBSAGG_CHECK(registry != nullptr);
}

TransportPlan DedupTransport::Prepare(const Vec2& q, int k) {
  QueryDedupRegistry& reg = *registry_;
  std::lock_guard<std::mutex> lock(reg.mu_);
  ++reg.lookups_;
  QueryDedupRegistry::Key key;
  std::memcpy(&key.x_bits, &q.x, sizeof key.x_bits);
  std::memcpy(&key.y_bits, &q.y, sizeof key.y_bits);
  key.k = k;
  const uint64_t ticket = reg.next_ticket_++;

  auto it = reg.entries_.find(key);
  if (it != reg.entries_.end()) {
    // Hit (page cached, or in flight under an earlier owner): mirror the
    // clean wire's charge — one attempt, zero latency — and never touch the
    // inner transport. That is the whole saving.
    ++reg.hits_;
    ++reg.saved_attempts_;
    reg.hits_counter_.Add(1);
    reg.saved_counter_.Add(1);
    if (reg.hit_sink_ != nullptr) ++*reg.hit_sink_;
    reg.pending_[ticket] =
        QueryDedupRegistry::Pending{it->second.get(), /*owner=*/false, {}};
    TransportPlan plan;
    plan.ticket = ticket;
    plan.attempts = 1;
    return plan;
  }

  // Miss: this session owns the real query. The inner Prepare runs under
  // the registry lock so inner submission order equals outer ticket order —
  // the determinism contract composes.
  const TransportPlan inner = inner_->Prepare(q, k);
  QueryDedupRegistry::Pending pending;
  pending.inner_plan = inner;
  pending.owner = true;
  if (inner.outcome == TransportOutcome::kOk) {
    // Only clean full pages are shareable; anything else passes through
    // uncached so a faulty wire degrades to "no dedup", never wrong pages.
    auto entry = std::make_unique<QueryDedupRegistry::Entry>();
    pending.entry = entry.get();
    reg.entries_.emplace(key, std::move(entry));
  }
  reg.pending_[ticket] = std::move(pending);

  TransportPlan plan = inner;
  plan.ticket = ticket;
  return plan;
}

TransportReply DedupTransport::Fulfill(const TransportPlan& plan, const Vec2& q,
                                       int k, const TupleFilter& filter) const {
  QueryDedupRegistry& reg = *registry_;
  std::unique_lock<std::mutex> lock(reg.mu_);
  auto it = reg.pending_.find(plan.ticket);
  LBSAGG_CHECK(it != reg.pending_.end())
      << "Fulfill without (or after) a matching Prepare, ticket "
      << plan.ticket;
  const QueryDedupRegistry::Pending pending = std::move(it->second);
  reg.pending_.erase(it);

  if (pending.owner) {
    lock.unlock();
    // Inner Fulfill is pure and thread-safe; run it outside the lock so
    // other workers' hits and misses proceed.
    TransportReply reply = inner_->Fulfill(pending.inner_plan, q, k, filter);
    if (pending.entry != nullptr) {
      lock.lock();
      pending.entry->hits = reply.hits;
      pending.entry->ready = true;
      reg.ready_cv_.notify_all();
    }
    return reply;
  }

  // Follower: wait for the owner's page. The owner was Prepared (hence
  // dispatched) strictly earlier, so with a FIFO executor it always makes
  // progress ahead of us. Timed re-check rather than a bare wait: glibc
  // < 2.41 condvars can drop a signal under contention (glibc bug 25847),
  // and a dropped ready notification here must cost one tick, not hang the
  // worker forever — the predicate is authoritative.
  QueryDedupRegistry::Entry* entry = pending.entry;
  while (!entry->ready) {
    reg.ready_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
  TransportReply reply;
  reply.hits = entry->hits;
  reply.outcome = TransportOutcome::kOk;
  reply.attempts = 1;
  reply.latency_ms = 0.0;
  return reply;
}

}  // namespace service
}  // namespace lbsagg
