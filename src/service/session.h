#ifndef LBSAGG_SERVICE_SESSION_H_
#define LBSAGG_SERVICE_SESSION_H_

// Session types of the estimation service (DESIGN.md §4.12): what a caller
// submits (SessionSpec), the typed lifecycle states, and what Poll() returns.
// A session is one estimation run — one resolver family, one seed, one
// budget — hosted by the EstimationService scheduler alongside many others.

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/runner.h"
#include "core/sampler.h"
#include "engine/aggregate_query.h"
#include "engine/lnr_resolver.h"
#include "engine/lr_resolver.h"
#include "engine/nno_resolver.h"

namespace lbsagg {
namespace service {

// Lifecycle: kQueued → kRunning → {kCompleted, kCancelled, kDeadlineExceeded},
// with kRejected (admission shed) and kCancelled also reachable straight from
// the queue. Terminal states never transition again.
enum class SessionState : uint8_t {
  kQueued = 0,
  kRunning,
  kCompleted,
  kCancelled,
  kRejected,
  kDeadlineExceeded,
};
inline constexpr int kNumSessionStates = 6;

const char* SessionStateName(SessionState state);

inline bool IsTerminal(SessionState state) {
  return state != SessionState::kQueued && state != SessionState::kRunning;
}

// Which acquisition-layer resolver drives the session (engine/ carries the
// per-family determinism guarantees; the service only schedules them).
enum class EstimatorFamily : uint8_t { kLr = 0, kLnr, kNno };

const char* EstimatorFamilyName(EstimatorFamily family);

using SessionId = uint64_t;
inline constexpr SessionId kInvalidSessionId = 0;

// One submitted estimation session. The spec is self-contained: the service
// builds the client / resolver / engine stack lazily when the session is
// admitted to the active set, so a deep backlog of queued sessions costs a
// spec each, not an engine each.
struct SessionSpec {
  // Admission principal for fair-share scheduling (tenant / user id).
  std::string principal = "anonymous";

  EstimatorFamily family = EstimatorFamily::kNno;

  // Aggregates folded from the session's shared evidence stream; empty means
  // COUNT(*). All of them ride the one interface-query budget below.
  std::vector<AggregateSpec> aggregates;

  // Page size requested per interface query (clamped to the backend max_k).
  int k = 5;

  // Soft interface-attempt budget, exactly RunWithBudget's semantics: the
  // engine steps while queries_used < budget, so mid-round work may overrun
  // like every fixed-budget experiment in the paper. Must be > 0.
  uint64_t budget = 200;

  // Hard cap on sampling rounds (0 = service default). The budget is the
  // intended stop; the round cap is a backstop for free backends.
  size_t max_rounds = 0;

  // Virtual-time deadline in ms, measured from Submit() on the service
  // clock; 0 = none. Queue wait counts against it. A session past its
  // deadline finishes kDeadlineExceeded with whatever partial results its
  // aggregates have folded so far.
  double deadline_ms = 0;

  // Session randomness: seeds the resolver's rng (overrides the family
  // option struct's seed field).
  uint64_t seed = 1;

  // Index into the service's backend list.
  size_t backend = 0;

  // Query-location sampler; null = uniform over the backend's region. Must
  // outlive the session when set.
  const QuerySampler* sampler = nullptr;

  // Per-session cross-round client memo (ClientOptions::memoize_queries).
  // Off by default: memo hits change the counted-query trace, which breaks
  // the runs-alone bit-identity contract the service tests pin.
  bool memoize_queries = false;

  // Durable evidence log (engine/log/, DESIGN.md §4.14). When non-empty the
  // session's engine mirrors every committed round into a WAL under this
  // directory and writes round-aligned checkpoints, so a killed process can
  // be resumed. The directory is the session's persistence handle — it must
  // not be shared between concurrent sessions.
  std::string wal_dir;

  // Resume handle: the wal_dir of an interrupted session. When non-empty,
  // activation recovers the directory (torn tail truncated, newest valid
  // checkpoint applied), replays the evidence, and continues the run
  // bit-identically — the remaining rounds, final estimates, and trace are
  // those of an uninterrupted run. Logging continues into the same
  // directory. The spec must otherwise match the interrupted session's
  // (family, seed, k, aggregates, budget); mismatches and non-resumable
  // runs (warm query memo) finish kRejected with the reason in `detail`.
  // wal_dir may be left empty — resume_from names the directory.
  std::string resume_from;

  // Checkpoint cadence in committed rounds (0 = only at finalization). The
  // WAL makes evidence durable every round regardless; this only bounds how
  // many rounds recovery re-executes.
  uint64_t checkpoint_every_rounds = 64;

  // Family-specific tuning. The seed / registry / tracer members inside are
  // ignored — the service substitutes spec.seed and its own obs plane.
  LrAggOptions lr;
  LnrAggOptions lnr;
  NnoOptions nno;
};

// Snapshot of one session, returned by EstimationService::Poll(). For a
// running session the progress fields read the live engine; for a terminal
// session they are frozen at finalization.
struct SessionStatus {
  SessionId id = kInvalidSessionId;
  SessionState state = SessionState::kQueued;
  std::string principal;

  // Interface attempts charged to this session so far (§2.1 cost).
  uint64_t queries_used = 0;
  // Sampling rounds committed.
  size_t rounds = 0;
  // Current estimate per aggregate (empty until the session first runs).
  std::vector<double> estimates;

  // Queries this session was charged for but the backend never saw because
  // the cross-session dedup registry answered them (see service/dedup.h).
  uint64_t dedup_hits = 0;

  // Final per-aggregate results, filled when the session is terminal
  // (partial for kCancelled / kDeadlineExceeded, empty for kRejected).
  std::vector<RunResult> results;

  // Service-clock timeline in ms: submit always set; start < 0 until the
  // session first runs; end < 0 until terminal.
  double submit_ms = 0;
  double start_ms = -1;
  double end_ms = -1;
  // end - submit once terminal (the p50/p99 latency the bench reports).
  double latency_ms = 0;

  // Human-readable detail for kRejected (shed reason) and Poll misses.
  std::string detail;
};

// Live convergence view of one aggregate inside a session (DESIGN.md §4.13):
// where its estimate stands and how its CI half-width has moved per
// interface query charged. `trajectory` mirrors the aggregate's
// per-round ConvergencePoints (engine/aggregate_query.h) — the curve the
// SLO watchdog differentiates to decide whether the evidence stream is
// still buying error reduction.
struct AggregateIntrospection {
  std::string name;
  double estimate = 0.0;
  double half_width = 0.0;
  std::vector<engine::ConvergencePoint> trajectory;
};

// One row of EstimationService::IntrospectSessions(): the statusz view of a
// session — lifecycle, budget burn-down, deadline slack, dedup savings, and
// per-aggregate convergence. All values are copies taken at the call.
struct SessionIntrospection {
  SessionId id = kInvalidSessionId;
  SessionState state = SessionState::kQueued;
  std::string principal;
  EstimatorFamily family = EstimatorFamily::kNno;

  uint64_t budget = 0;
  uint64_t queries_used = 0;
  size_t rounds = 0;
  uint64_t dedup_hits = 0;

  // Service-clock timeline (ms): submit always set; start/end < 0 until
  // the session runs / terminates.
  double submit_ms = 0;
  double start_ms = -1;
  double end_ms = -1;

  // Deadline accounting: slack = submit_ms + deadline_ms - now (only
  // meaningful when has_deadline; negative = already past it).
  bool has_deadline = false;
  double deadline_ms = 0;
  double deadline_slack_ms = 0;

  // Empty until the session has an engine (queued / rejected sessions).
  std::vector<AggregateIntrospection> aggregates;
};

}  // namespace service
}  // namespace lbsagg

#endif  // LBSAGG_SERVICE_SESSION_H_
