#include "service/watchdog.h"

#include <utility>

#include "util/check.h"

namespace lbsagg {
namespace service {

namespace {

// The session-level half-width is the worst aggregate's: that is the CI the
// budget is still being spent to shrink.
double WorstHalfWidth(const SessionIntrospection& row) {
  double worst = 0.0;
  for (const AggregateIntrospection& agg : row.aggregates) {
    if (agg.half_width > worst) worst = agg.half_width;
  }
  return worst;
}

}  // namespace

SloWatchdog::SloWatchdog(EstimationService* service, SloWatchdogOptions options)
    : service_(service), options_(options) {
  LBSAGG_CHECK(service_ != nullptr);
}

size_t SloWatchdog::Check() {
  size_t fired = 0;
  const double now_ms = service_->NowMs();
  for (const SessionIntrospection& row : service_->IntrospectSessions()) {
    if (IsTerminal(row.state)) {
      baselines_.erase(row.id);
      continue;
    }
    if (row.state != SessionState::kRunning) continue;

    SessionEvent event;
    event.id = row.id;
    event.state = row.state;
    event.principal = row.principal;
    event.queries_used = row.queries_used;
    event.rounds = row.rounds;
    event.now_ms = now_ms;

    auto [it, fresh] = baselines_.try_emplace(row.id);
    Baseline& base = it->second;
    const double half_width = WorstHalfWidth(row);
    if (fresh || (base.half_width == 0.0 && half_width > 0.0)) {
      // First sight — or the CI just became meaningful (it is degenerate
      // below two rounds): (re)prime the slope baseline here.
      base.queries = row.queries_used;
      base.half_width = half_width;
    }

    if (row.has_deadline && !base.deadline_fired &&
        row.deadline_slack_ms <= options_.deadline_slack_warn_ms) {
      base.deadline_fired = true;
      ++deadline_fired_;
      ++fired;
      event.kind = SessionEventKind::kDeadlineAtRisk;
      service_->triggers().Fire(event);
    }

    // Error-per-budget slope across the window since the last baseline. A
    // meaningful verdict needs a positive starting half-width (the CI is
    // degenerate below 2 rounds) and enough charged queries for a slope.
    if (!fresh && !base.stalled_fired && base.half_width > 0.0 &&
        row.queries_used >= base.queries + options_.min_queries_between_checks) {
      const double dq =
          static_cast<double>(row.queries_used - base.queries);
      const double drop = base.half_width - half_width;
      if (drop / dq < options_.min_halfwidth_drop_per_query) {
        base.stalled_fired = true;
        ++stalled_fired_;
        ++fired;
        event.kind = SessionEventKind::kSloStalled;
        service_->triggers().Fire(event);
      } else {
        // Still converging: slide the baseline to the current point.
        base.queries = row.queries_used;
        base.half_width = half_width;
      }
    }
  }
  return fired;
}

}  // namespace service
}  // namespace lbsagg
