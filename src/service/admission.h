#ifndef LBSAGG_SERVICE_ADMISSION_H_
#define LBSAGG_SERVICE_ADMISSION_H_

// Admission control for the estimation service (DESIGN.md §4.12): a bounded
// wait queue in front of the active set. Overflow is shed with a typed
// kRejected outcome instead of queueing without bound — the service's
// visible backpressure. Two dequeue policies:
//
//   kFifo       strict arrival order.
//   kFairShare  one FIFO lane per principal, drained round-robin in
//               first-appearance order — a principal submitting 10^5
//               sessions delays a one-session principal by at most one
//               active-set admission, not by the whole backlog.
//
// Single-threaded like the scheduler that owns it; determinism is arrival
// order + a cursor, nothing else.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/session.h"

namespace lbsagg {
namespace service {

enum class AdmissionPolicy : uint8_t { kFifo = 0, kFairShare };

const char* AdmissionPolicyName(AdmissionPolicy policy);

struct AdmissionOptions {
  AdmissionPolicy policy = AdmissionPolicy::kFifo;

  // Waiting sessions beyond the active set; an enqueue past this sheds the
  // session (kRejected). 0 = reject whenever the active set is full.
  size_t queue_capacity = 1024;

  // Sessions concurrently admitted to the cooperative scheduler. Bounds the
  // live engines (memory) — queued sessions are just specs.
  size_t max_active = 8;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options);

  const AdmissionOptions& options() const { return options_; }

  // False = queue full, shed the session.
  bool TryEnqueue(SessionId id, const std::string& principal);

  // Next session under the policy; kInvalidSessionId when empty.
  SessionId PopNext();

  // Cancel support: drop a queued session wherever it sits. False when the
  // id is not queued.
  bool Remove(SessionId id);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  AdmissionOptions options_;
  size_t size_ = 0;

  // kFifo lane.
  std::deque<SessionId> fifo_;

  // kFairShare lanes, ring-ordered by first appearance. Principals persist
  // for the queue's lifetime (empty lanes are skipped, not erased) so the
  // cursor arithmetic stays trivially deterministic.
  std::unordered_map<std::string, size_t> principal_index_;
  std::vector<std::deque<SessionId>> lanes_;
  size_t cursor_ = 0;
};

}  // namespace service
}  // namespace lbsagg

#endif  // LBSAGG_SERVICE_ADMISSION_H_
