#ifndef LBSAGG_SERVICE_DEDUP_H_
#define LBSAGG_SERVICE_DEDUP_H_

// Cross-session interface-query dedup (DESIGN.md §4.12). Sessions hosted by
// the EstimationService probe overlapping hot regions, so identical
// (location, k) interface queries recur across sessions — twin sessions
// replaying a seed, dashboards re-polling a region, coordinated sweeps. The
// service wraps
// each backend wire in a DedupTransport sharing one QueryDedupRegistry: the
// first session to ask a question owns the real backend query; every later
// session gets the cached page without the backend (or its rate limiter)
// ever seeing the repeat.
//
// Charging is *mirrored*: a dedup hit still charges the asking session one
// interface attempt — exactly what a clean wire would have charged it — so
// each session's counted-query trace, budget loop, and estimates stay
// bit-identical to running that session alone. The saving is real but
// backend-side: fewer inner Prepare/Fulfill calls, fewer rate-limiter
// tokens, and the registry counts them as saved_attempts ("queries saved by
// dedup" in BENCH_service.json).
//
// Determinism and single-flight: the hit/miss/owner decision is made in
// Prepare(), which the transport contract already serializes in submission
// order — so the decision stream is a pure function of the query sequence,
// never of worker timing. An in-flight entry's followers block in Fulfill()
// on a condvar until the owner publishes the page. Deadlock-free under the
// AsyncDispatcher because its queue is FIFO and an owner is always submitted
// (hence dequeued) before any of its followers.
//
// Scope of the bit-identity guarantee: pages are shareable only when the
// owner's plan is clean (kOk). Truncated or undelivered plans bypass the
// registry entirely, so a faulty wire degrades to no dedup rather than to
// wrong sharing; the solo-equality contract is stated for clean wires
// (rate limiting and latency only move virtual time, never pages).
//
// All sessions sharing a registry must use the same pass-through filter
// (the service layer sets none): the key cannot see the filter, which is
// only available at Fulfill time.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "geometry/loc_key.h"
#include "obs/obs.h"
#include "transport/transport.h"

namespace lbsagg {
namespace service {

struct DedupStats {
  uint64_t lookups = 0;         // Prepare() calls routed through the registry
  uint64_t hits = 0;            // answered (or to be answered) from the cache
  uint64_t saved_attempts = 0;  // interface attempts the backend never saw
  size_t entries = 0;           // cached pages (incl. in-flight)
};

// The shared cross-session cache. One per backend; shared by every
// DedupTransport the service creates over that backend's wire.
class QueryDedupRegistry {
 public:
  // Keys are the *exact* bit patterns of (x, y, k): only truly identical
  // interface queries share a page. No quantization — two nearby-but-
  // distinct probe points can have different kNN pages, and handing one the
  // other's page would silently corrupt the borrowing session's estimate
  // (the client memo quantizes because it re-asks for its *own* points; a
  // cross-session cache never may). `registry` feeds the
  // service.dedup.{hits,saved_queries} counters; null = Default().
  explicit QueryDedupRegistry(obs::MetricsRegistry* registry = nullptr);

  DedupStats Stats() const;

  // {"entries":N,"lookups":L,"hits":H,"saved_queries":S}
  std::string ToJson() const;

  // Per-session hit attribution: when set, every Prepare() hit increments
  // `*sink`. The cooperative scheduler points this at the running session's
  // counter for the duration of its slice (single Prepare stream, so no
  // races). Pass nullptr to detach.
  void SetHitSink(uint64_t* sink);

 private:
  friend class DedupTransport;

  struct Key {
    uint64_t x_bits = 0;  // exact IEEE-754 bit patterns, not quantized cells
    uint64_t y_bits = 0;
    int k = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      auto fold = [](uint64_t h, uint64_t v) {
        h ^= SplitMix64(v) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        return h;
      };
      uint64_t h = fold(0, key.x_bits);
      h = fold(h, key.y_bits);
      return static_cast<size_t>(fold(h, static_cast<uint64_t>(key.k)));
    }
  };
  struct Entry {
    bool ready = false;
    std::vector<ServerHit> hits;
  };
  // The Prepare()-time decision for one outer ticket, consumed by Fulfill().
  struct Pending {
    Entry* entry = nullptr;  // null: uncacheable plan, plain pass-through
    bool owner = false;
    TransportPlan inner_plan;
  };

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::unordered_map<Key, std::unique_ptr<Entry>, KeyHash> entries_;
  std::unordered_map<uint64_t, Pending> pending_;
  uint64_t next_ticket_ = 1;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
  uint64_t saved_attempts_ = 0;
  uint64_t* hit_sink_ = nullptr;
  obs::CounterRef hits_counter_;
  obs::CounterRef saved_counter_;
};

// The wire wrapper. Stateless itself — every decision lives in the shared
// registry — so the service can hand each client its own DedupTransport or
// share one; both are equivalent.
class DedupTransport final : public LbsTransport {
 public:
  // Both pointers must outlive the transport. `inner` is the real wire
  // (DirectTransport, SimulatedTransport, ShardedTransport, ...).
  DedupTransport(LbsTransport* inner, QueryDedupRegistry* registry);

  // Serialized in submission order (transport contract): decides hit /
  // owner / pass-through and, for misses, runs the inner Prepare under the
  // same critical section so inner tickets follow outer submission order.
  TransportPlan Prepare(const Vec2& q, int k) override;

  // Thread-safe. Owners run the inner Fulfill and publish the page;
  // followers wait for it; pass-throughs just delegate.
  TransportReply Fulfill(const TransportPlan& plan, const Vec2& q, int k,
                         const TupleFilter& filter) const override;

  const QueryDedupRegistry* registry() const { return registry_; }

 private:
  LbsTransport* inner_;
  QueryDedupRegistry* registry_;
};

}  // namespace service
}  // namespace lbsagg

#endif  // LBSAGG_SERVICE_DEDUP_H_
