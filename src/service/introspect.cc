#include "service/introspect.h"

#include <sstream>
#include <utility>

#include "obs/introspect/prometheus.h"
#include "util/check.h"

namespace lbsagg {
namespace service {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string SessionIntrospectionJson(const SessionIntrospection& row) {
  std::ostringstream os;
  os << "{\"id\":" << row.id << ",\"state\":\"" << SessionStateName(row.state)
     << "\",\"principal\":\"" << row.principal << "\",\"family\":\""
     << EstimatorFamilyName(row.family) << "\",\"budget\":" << row.budget
     << ",\"queries_used\":" << row.queries_used << ",\"rounds\":" << row.rounds
     << ",\"dedup_hits\":" << row.dedup_hits
     << ",\"submit_ms\":" << FormatDouble(row.submit_ms)
     << ",\"start_ms\":" << FormatDouble(row.start_ms)
     << ",\"end_ms\":" << FormatDouble(row.end_ms);
  if (row.has_deadline) {
    os << ",\"deadline_ms\":" << FormatDouble(row.deadline_ms)
       << ",\"deadline_slack_ms\":" << FormatDouble(row.deadline_slack_ms);
  }
  os << ",\"aggregates\":[";
  for (size_t i = 0; i < row.aggregates.size(); ++i) {
    const AggregateIntrospection& agg = row.aggregates[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"" << agg.name
       << "\",\"estimate\":" << FormatDouble(agg.estimate)
       << ",\"half_width\":" << FormatDouble(agg.half_width)
       << ",\"trajectory\":[";
    for (size_t j = 0; j < agg.trajectory.size(); ++j) {
      const engine::ConvergencePoint& p = agg.trajectory[j];
      if (j > 0) os << ",";
      os << "{\"queries\":" << p.queries
         << ",\"estimate\":" << FormatDouble(p.estimate)
         << ",\"half_width\":" << FormatDouble(p.half_width) << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

ServiceIntrospector::ServiceIntrospector(IntrospectorOptions options)
    : options_(std::move(options)) {
  LBSAGG_CHECK(options_.service != nullptr);
  if (options_.registry == nullptr) {
    options_.registry = &obs::MetricsRegistry::Default();
  }
}

obs::introspect::Statusz ServiceIntrospector::BuildStatusz() const {
  obs::introspect::Statusz status;
#ifndef LBSAGG_OBS_DISABLED
  const EstimationService& svc = *options_.service;
  status.SetMetaNum("now_ms", svc.NowMs());
  status.SetMetaNum("queued", static_cast<double>(svc.queued()));
  status.SetMetaNum("active", static_cast<double>(svc.active()));
  status.SetMetaNum("submitted", static_cast<double>(svc.submitted()));
  status.SetMetaNum("completed", static_cast<double>(svc.completed()));
  status.SetMetaNum("rejected", static_cast<double>(svc.rejected()));
  status.SetMetaNum("backends", static_cast<double>(svc.num_backends()));
  status.SetSnapshot(options_.registry->Snapshot());

  // Scheduler / admission / dedup view (the run-report "service" section).
  status.AddJsonSection("service", svc.diagnostics_json());

  // Per-session burn-down and convergence trajectories.
  {
    std::ostringstream os;
    os << "[";
    bool first = true;
    for (const SessionIntrospection& row : svc.IntrospectSessions()) {
      if (!first) os << ",";
      first = false;
      os << SessionIntrospectionJson(row);
    }
    os << "]";
    status.AddJsonSection("sessions", os.str());
  }

  if (options_.sharded != nullptr) {
    std::ostringstream os;
    os << "{\"num_shards\":" << options_.sharded->num_shards()
       << ",\"virtual_now_ms\":"
       << FormatDouble(options_.sharded->VirtualNowMs())
       << ",\"aggregate\":" << options_.sharded->Metrics().ToJson()
       << ",\"lanes\":[";
    for (int shard = 0; shard < options_.sharded->num_shards(); ++shard) {
      if (shard > 0) os << ",";
      os << options_.sharded->ShardMetrics(shard).ToJson();
    }
    os << "]}";
    status.AddJsonSection("shards", os.str());
  }
  if (options_.sampler != nullptr) {
    status.AddJsonSection("timeseries", options_.sampler->ToJson());
  }
  if (options_.recorder != nullptr) {
    status.AddJsonSection("flight_recorder", options_.recorder->StatsJson());
  }
#endif  // LBSAGG_OBS_DISABLED
  return status;
}

std::string ServiceIntrospector::PrometheusText() const {
  return obs::introspect::ToPrometheusText(options_.registry->Snapshot());
}

}  // namespace service
}  // namespace lbsagg
