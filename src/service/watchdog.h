#ifndef LBSAGG_SERVICE_WATCHDOG_H_
#define LBSAGG_SERVICE_WATCHDOG_H_

// SLO watchdog (DESIGN.md §4.13): turns the convergence telemetry into
// actionable typed triggers. Check() scans IntrospectSessions() and fires
// the service's existing TriggerRegistry —
//
//   kSloStalled      the session's CI half-width stopped shrinking per
//                    interface query spent (error-per-budget slope below
//                    `min_halfwidth_drop_per_query` across a window of at
//                    least `min_queries_between_checks` charged queries);
//   kDeadlineAtRisk  the session's deadline slack went at-or-below
//                    `deadline_slack_warn_ms` while it still runs.
//
// Each verdict fires at most once per session (the operator acts on it;
// repeating it every slice is noise). The watchdog never touches the
// schedule itself — it is the paper's "is this evidence stream still worth
// paying for?" question (arXiv:1602.03730 asks the same before clustering)
// wired to the trigger plane, and what a trigger does about it (Cancel,
// rebudget, alert) is the caller's policy.
//
// Single-threaded like the scheduler; drive it from the same loop that
// calls RunSlice(). Under -DLBSAGG_OBS_DISABLED the trajectories it reads
// are empty, so kSloStalled can never fire; kDeadlineAtRisk still works
// (deadline slack is scheduler state, not telemetry).

#include <cstdint>
#include <unordered_map>

#include "service/service.h"

namespace lbsagg {
namespace service {

struct SloWatchdogOptions {
  // A session whose best aggregate shed less than this much half-width per
  // interface query across the observation window is stalled.
  double min_halfwidth_drop_per_query = 1e-9;
  // Queries a session must charge between verdicts — the slope needs a
  // baseline before it means anything.
  uint64_t min_queries_between_checks = 16;
  // Fire kDeadlineAtRisk when a running session's slack is <= this (ms).
  double deadline_slack_warn_ms = 0.0;
};

class SloWatchdog {
 public:
  // `service` must outlive the watchdog.
  explicit SloWatchdog(EstimationService* service,
                       SloWatchdogOptions options = {});

  // One scan over the live sessions; fires verdict events through
  // service->triggers() and returns how many were fired.
  size_t Check();

  uint64_t stalled_fired() const { return stalled_fired_; }
  uint64_t deadline_fired() const { return deadline_fired_; }

 private:
  struct Baseline {
    uint64_t queries = 0;
    double half_width = 0.0;
    bool stalled_fired = false;
    bool deadline_fired = false;
  };

  EstimationService* service_;
  SloWatchdogOptions options_;
  std::unordered_map<SessionId, Baseline> baselines_;
  uint64_t stalled_fired_ = 0;
  uint64_t deadline_fired_ = 0;
};

}  // namespace service
}  // namespace lbsagg

#endif  // LBSAGG_SERVICE_WATCHDOG_H_
