#include "service/event.h"

#include <algorithm>

namespace lbsagg {
namespace service {

const char* SessionEventKindName(SessionEventKind kind) {
  switch (kind) {
    case SessionEventKind::kSubmitted:
      return "submitted";
    case SessionEventKind::kRejected:
      return "rejected";
    case SessionEventKind::kStarted:
      return "started";
    case SessionEventKind::kProgress:
      return "progress";
    case SessionEventKind::kFinished:
      return "finished";
    case SessionEventKind::kSloStalled:
      return "slo_stalled";
    case SessionEventKind::kDeadlineAtRisk:
      return "deadline_at_risk";
  }
  return "unknown";
}

TriggerRegistry::Handle TriggerRegistry::Add(SessionEventKind kind,
                                             SessionTrigger fn) {
  const Handle handle = next_handle_++;
  entries_.push_back({handle, static_cast<int>(kind), std::move(fn)});
  return handle;
}

TriggerRegistry::Handle TriggerRegistry::AddAll(SessionTrigger fn) {
  const Handle handle = next_handle_++;
  entries_.push_back({handle, -1, std::move(fn)});
  return handle;
}

bool TriggerRegistry::Remove(Handle handle) {
  for (Entry& entry : entries_) {
    if (entry.handle != handle || entry.fn == nullptr) continue;
    // Tombstone rather than erase: a Fire() may be iterating this vector.
    entry.fn = nullptr;
    dirty_ = true;
    if (firing_depth_ == 0) Compact();
    return true;
  }
  return false;
}

void TriggerRegistry::Fire(const SessionEvent& event) {
  if (recorder_ != nullptr) {
    obs::introspect::FlightRecord record;
    record.kind = obs::introspect::FlightRecord::Kind::kEvent;
    record.SetName(SessionEventKindName(event.kind));
    record.ts_us = event.now_ms * 1000.0;
    record.a = event.id;
    record.b = event.queries_used;
    recorder_->TryPublish(record);
  }
  ++firing_depth_;
  // Index loop: a trigger may Add() (appends, seen by this very fire — the
  // registration-order contract) or Remove() (tombstones, skipped below).
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (entry.fn == nullptr) continue;
    if (entry.kind >= 0 && entry.kind != static_cast<int>(event.kind)) continue;
    entry.fn(event);
  }
  if (--firing_depth_ == 0 && dirty_) Compact();
}

size_t TriggerRegistry::size() const {
  size_t n = 0;
  for (const Entry& entry : entries_) {
    if (entry.fn != nullptr) ++n;
  }
  return n;
}

void TriggerRegistry::Compact() {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [](const Entry& e) { return e.fn == nullptr; }),
                 entries_.end());
  dirty_ = false;
}

}  // namespace service
}  // namespace lbsagg
