#ifndef LBSAGG_SERVICE_EVENT_H_
#define LBSAGG_SERVICE_EVENT_H_

// Event/trigger registry for session lifecycle callbacks (DESIGN.md §4.12).
// Callers register triggers against an event kind (or all kinds) and the
// service fires them synchronously from its cooperative scheduler, in
// registration order — the deterministic analogue of an event loop's
// on-complete hooks. Triggers may Poll() or Submit() reentrantly; they may
// also remove triggers (including themselves) while a Fire is in progress.

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/introspect/flight_recorder.h"
#include "service/session.h"

namespace lbsagg {
namespace service {

enum class SessionEventKind : uint8_t {
  kSubmitted = 0,  // Submit() accepted the spec into the queue
  kRejected,       // admission shed the session (state kRejected)
  kStarted,        // session admitted to the active set and built its engine
  kProgress,       // one scheduler slice ran for the session
  kFinished,       // session reached any terminal state except kRejected
  // SLO watchdog verdicts (service/watchdog.h): the session's CI half-width
  // stopped shrinking per budget spent / its deadline slack went negative
  // while it still runs. Fired by SloWatchdog::Check, not the scheduler.
  kSloStalled,
  kDeadlineAtRisk,
};
inline constexpr int kNumSessionEventKinds = 7;

const char* SessionEventKindName(SessionEventKind kind);

// Snapshot passed to triggers. Values are copies — the trigger may outlive
// the scheduler step that produced them.
struct SessionEvent {
  SessionEventKind kind = SessionEventKind::kSubmitted;
  SessionId id = kInvalidSessionId;
  SessionState state = SessionState::kQueued;
  std::string principal;
  uint64_t queries_used = 0;
  size_t rounds = 0;
  // Service clock at fire time (ms).
  double now_ms = 0;
};

using SessionTrigger = std::function<void(const SessionEvent&)>;

// Ordered trigger list, single-threaded like the scheduler that drives it.
// Removal during Fire() is safe: entries are tombstoned while any fire is on
// the stack and compacted afterwards, so iteration never skips or repeats a
// live trigger.
class TriggerRegistry {
 public:
  using Handle = uint64_t;
  inline static constexpr Handle kInvalidHandle = 0;

  // Registers `fn` for one event kind. Returns a handle for Remove().
  Handle Add(SessionEventKind kind, SessionTrigger fn);

  // Registers `fn` for every event kind.
  Handle AddAll(SessionTrigger fn);

  // Unregisters; returns false when the handle is unknown (or already
  // removed). Safe to call from inside a trigger.
  bool Remove(Handle handle);

  // Runs every matching trigger in registration order.
  void Fire(const SessionEvent& event);

  // Live (non-tombstoned) triggers.
  size_t size() const;

  // Mirrors every subsequently fired event into `recorder` as a kEvent
  // flight record (name = kind name, a = session id, b = queries_used; null
  // detaches). Publishing happens whether or not any trigger matches, so
  // the recorder sees the full lifecycle stream.
  void SetFlightRecorder(obs::introspect::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  obs::introspect::FlightRecorder* flight_recorder() const {
    return recorder_;
  }

 private:
  struct Entry {
    Handle handle = kInvalidHandle;
    int kind = -1;  // -1 = all kinds
    SessionTrigger fn;
  };

  void Compact();

  std::vector<Entry> entries_;
  Handle next_handle_ = 1;
  int firing_depth_ = 0;
  bool dirty_ = false;  // tombstones awaiting compaction
  obs::introspect::FlightRecorder* recorder_ = nullptr;
};

}  // namespace service
}  // namespace lbsagg

#endif  // LBSAGG_SERVICE_EVENT_H_
