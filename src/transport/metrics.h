#ifndef LBSAGG_TRANSPORT_METRICS_H_
#define LBSAGG_TRANSPORT_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "transport/transport.h"
#include "util/table.h"

namespace lbsagg {

namespace obs {
class MetricsRegistry;
}  // namespace obs

// Power-of-two-bucketed latency histogram: bucket i counts samples in
// [2^(i-1), 2^i) ms, bucket 0 counts < 1 ms, the last bucket is unbounded.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 18;  // last bound: 2^16 ms ≈ 65 s

  void Add(double ms);
  uint64_t count() const { return count_; }
  double total_ms() const { return total_ms_; }
  double mean_ms() const { return count_ == 0 ? 0.0 : total_ms_ / count_; }
  // Upper bound of the first bucket whose cumulative share reaches q.
  double QuantileUpperBound(double q) const;
  const uint64_t* buckets() const { return buckets_; }

  // `{"count":..,"mean_ms":..,"p50_le_ms":..,"p99_le_ms":..,"buckets":[..]}`
  std::string ToJson() const;

  void Merge(const LatencyHistogram& other);
  bool operator==(const LatencyHistogram&) const = default;

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  double total_ms_ = 0.0;
};

// Everything a transport observed, in deterministic order of recording.
// Comparable with == so determinism tests can assert bit-equality.
struct TransportMetrics {
  uint64_t requests = 0;  // logical queries
  uint64_t attempts = 0;  // interface attempts (== the §2.1 query cost)
  uint64_t retries = 0;   // attempts - requests, spent on retryable faults

  // Final outcome of each logical query, indexed by TransportOutcome.
  uint64_t outcomes[kNumTransportOutcomes] = {};

  // Attempt-level fault counts (a retried query contributes several).
  uint64_t attempt_transient_errors = 0;
  uint64_t attempt_timeouts = 0;

  // Rate-limiter stalls.
  uint64_t throttle_events = 0;
  double throttle_wait_ms = 0.0;

  // End-to-end simulated latency per logical query (incl. backoff+throttle).
  LatencyHistogram latency;

  // attempts_histogram[i] = logical queries that took exactly i+1 attempts.
  std::vector<uint64_t> attempts_histogram;

  void RecordAttemptsForRequest(int attempts_used);

  // Multi-line pretty-printed JSON document.
  std::string ToJson(int indent = 0) const;
  // Fixed-width text rendering via util/table for human consumption.
  Table ToTable() const;

  void Merge(const TransportMetrics& other);
  bool operator==(const TransportMetrics&) const = default;
};

// Bridges one transport-metrics snapshot into the shared metric plane as
// transport.* counters and gauges (transport.requests, transport.attempts,
// transport.outcome.<name>, transport.latency_mean_ms, …), so run reports
// cover the transport layer without the obs library depending on transport.
// Call once per accounting period with the delta (or the final snapshot);
// counters *add*, gauges overwrite. `registry == nullptr` lands on
// obs::MetricsRegistry::Default().
void PublishTransportMetrics(const TransportMetrics& metrics,
                             obs::MetricsRegistry* registry);

}  // namespace lbsagg

#endif  // LBSAGG_TRANSPORT_METRICS_H_
