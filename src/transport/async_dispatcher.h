#ifndef LBSAGG_TRANSPORT_ASYNC_DISPATCHER_H_
#define LBSAGG_TRANSPORT_ASYNC_DISPATCHER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "transport/transport.h"

namespace lbsagg {

struct DispatcherOptions {
  // Worker threads performing backend fulfillment. 0 = inline mode: the
  // batch executes on the calling thread (handy as a determinism oracle).
  unsigned num_workers = 4;

  // Bounded submission queue; QueryBatch blocks (backpressure) when full.
  size_t queue_capacity = 64;
};

// Worker pool + bounded queue pipelining independent probe queries through
// a transport. Submission order is the determinism anchor: plans are
// Prepared on the submitting thread in batch order (so the transport's
// policy state evolves identically for any worker count), workers only run
// the pure Fulfill step, and replies land in submission-order slots. Hence
// the reply sequence — and the transport's metrics — are bit-identical
// whether a batch runs inline, on 1 worker, or on 8
// (transport_determinism_test.cc).
class AsyncDispatcher final : public BatchExecutor {
 public:
  // `transport` must outlive the dispatcher and keep Fulfill thread-safe.
  explicit AsyncDispatcher(LbsTransport* transport,
                           DispatcherOptions options = {});
  ~AsyncDispatcher() override;

  AsyncDispatcher(const AsyncDispatcher&) = delete;
  AsyncDispatcher& operator=(const AsyncDispatcher&) = delete;

  // Pipelines the whole batch and returns replies in submission order.
  // Thread-safe: concurrent batches interleave in the queue, each batch
  // waits only for its own jobs.
  std::vector<TransportReply> QueryBatch(
      const std::vector<Vec2>& queries, int k,
      const TupleFilter& filter = nullptr) override;

  unsigned num_workers() const { return num_workers_; }

 private:
  struct BatchState;
  struct Job {
    Vec2 q;
    int k = 0;
    const TupleFilter* filter = nullptr;
    TransportPlan plan;
    TransportReply* slot = nullptr;
    BatchState* batch = nullptr;
  };

  void WorkerLoop();
  static void RunJob(LbsTransport* transport, const Job& job);

  LbsTransport* transport_;
  const unsigned num_workers_;
  const size_t queue_capacity_;

  std::mutex mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lbsagg

#endif  // LBSAGG_TRANSPORT_ASYNC_DISPATCHER_H_
