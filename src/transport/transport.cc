#include "transport/transport.h"

namespace lbsagg {

const char* TransportOutcomeName(TransportOutcome outcome) {
  switch (outcome) {
    case TransportOutcome::kOk:
      return "ok";
    case TransportOutcome::kTruncated:
      return "truncated";
    case TransportOutcome::kTransientError:
      return "transient_error";
    case TransportOutcome::kTimeout:
      return "timeout";
    case TransportOutcome::kFatal:
      return "fatal";
  }
  return "unknown";
}

}  // namespace lbsagg
