#include "transport/async_dispatcher.h"

#include <chrono>

#include "util/check.h"

namespace lbsagg {

namespace {
// Every blocking wait in this file is a timed re-check loop, not a bare
// condition_variable::wait: glibc < 2.41 condvars can drop a signal under
// contention (glibc bug 25847 — a waiter "steals" a signal and the undo
// path misses a sleeper), which turned one in ~10^7 batch handshakes into
// a permanent hang on a single-core host. The predicate, not the wakeup,
// is authoritative; a lost signal degrades to one tick of extra latency.
constexpr std::chrono::milliseconds kWaitTick{100};

template <typename Predicate>
void WaitRobust(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                Predicate pred) {
  while (!pred()) cv.wait_for(lock, kWaitTick);
}
}  // namespace

// Completion bookkeeping shared by one QueryBatch call and the workers
// fulfilling its jobs; lives on the caller's stack for the call duration.
struct AsyncDispatcher::BatchState {
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = 0;
};

AsyncDispatcher::AsyncDispatcher(LbsTransport* transport,
                                 DispatcherOptions options)
    : transport_(transport),
      num_workers_(options.num_workers),
      queue_capacity_(options.queue_capacity) {
  LBSAGG_CHECK(transport_ != nullptr);
  LBSAGG_CHECK_GT(queue_capacity_, 0u);
  workers_.reserve(num_workers_);
  for (unsigned i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncDispatcher::~AsyncDispatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void AsyncDispatcher::RunJob(LbsTransport* transport, const Job& job) {
  *job.slot = transport->Fulfill(
      job.plan, job.q, job.k, job.filter ? *job.filter : TupleFilter());
  // Notify while holding the mutex: BatchState lives on the submitter's
  // stack, and the submitter may destroy it the moment it observes
  // remaining == 0 — which it cannot do before this lock is released, i.e.
  // not until notify_one has returned. Signaling after unlock would race
  // the condvar's destruction.
  std::lock_guard<std::mutex> lock(job.batch->mu);
  --job.batch->remaining;
  job.batch->done.notify_one();
}

void AsyncDispatcher::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      WaitRobust(queue_not_empty_, lock,
                 [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_not_full_.notify_one();
    RunJob(transport_, job);
  }
}

std::vector<TransportReply> AsyncDispatcher::QueryBatch(
    const std::vector<Vec2>& queries, int k, const TupleFilter& filter) {
  std::vector<TransportReply> replies(queries.size());
  if (queries.empty()) return replies;

  BatchState batch;
  batch.remaining = queries.size();

  if (num_workers_ == 0) {
    // Inline mode: same Prepare order, fulfillment on the calling thread.
    for (size_t i = 0; i < queries.size(); ++i) {
      Job job{queries[i], k,        filter ? &filter : nullptr,
              transport_->Prepare(queries[i], k), &replies[i], &batch};
      RunJob(transport_, job);
    }
    return replies;
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    // Plans are made on this thread, in submission order — the transport's
    // stateful policy pipeline never sees worker-thread nondeterminism.
    Job job{queries[i], k,        filter ? &filter : nullptr,
            transport_->Prepare(queries[i], k), &replies[i], &batch};
    {
      std::unique_lock<std::mutex> lock(mu_);
      WaitRobust(queue_not_full_, lock,
                 [this] { return queue_.size() < queue_capacity_; });
      queue_.push_back(std::move(job));
    }
    queue_not_empty_.notify_one();
  }

  std::unique_lock<std::mutex> lock(batch.mu);
  WaitRobust(batch.done, lock, [&batch] { return batch.remaining == 0; });
  return replies;
}

}  // namespace lbsagg
