#ifndef LBSAGG_TRANSPORT_SHARDED_TRANSPORT_H_
#define LBSAGG_TRANSPORT_SHARDED_TRANSPORT_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lbs/sharded_server.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "transport/metrics.h"
#include "transport/policies.h"
#include "transport/transport.h"

namespace lbsagg {

struct ShardedTransportOptions {
  LatencyOptions latency;

  // Every shard lane gets its *own* token bucket with these parameters —
  // the "one service, many regions" quota model, where each region meters
  // its own sub-requests. capacity 0 disables rate limiting.
  TokenBucketOptions rate_limit;

  // Default per-lane fault profile; `shard_faults[s]` (when s is in range)
  // overrides it for shard s — how tests force a single shard hot.
  FaultOptions faults;
  std::vector<FaultOptions> shard_faults;

  // Per-lane retry policy; retry_budget is also per lane.
  RetryOptions retry;

  // Virtual-clock model. Default (false) mirrors SimulatedTransport's
  // sequential client: the next logical query departs when the previous one
  // *completes*, so end-to-end latency bounds throughput at every shard
  // count. When true the clock models a pipelined (open-loop) client that
  // keeps every lane's queue full: the next query departs as soon as the
  // rate limiters grant the previous one's final attempt, so sustained
  // throughput is set by the per-lane quotas — the regime where
  // scatter-gather scales with shard count (bench/fig18_sharded.cc).
  // Per-query latency_ms is unchanged; only inter-query spacing differs.
  bool pipelined_clock = false;

  uint64_t seed = 0x5eed;

  // Metric plane for the live counters: transport.sharded.* for the
  // scatter layer plus per-lane transport.shardNN.attempts. Null lands on
  // obs::MetricsRegistry::Default().
  obs::MetricsRegistry* registry = nullptr;

  // When set, each logical query emits one "transport.request" span
  // wrapping per-lane "transport.shard.request" spans and their
  // "transport.attempt" children, stamped with virtual-time endpoints.
  obs::Tracer* tracer = nullptr;
};

// The scatter-gather wire over a ShardedLbsServer: one public kNN endpoint
// backed by N per-shard lanes, each lane owning its own token bucket,
// seeded fault injector, and retry budget (seeds are mixed per shard, so a
// lane's fault stream is independent of its neighbors').
//
// Prepare() is the stateful scatter: it picks the reachable shards for the
// query (pure geometry — ShardedLbsServer::ReachableShards), then runs the
// SimulatedTransport policy pipeline on every targeted lane, all departing
// at the shared virtual now. Sub-requests travel in parallel, so the
// combined plan charges the *critical path*: attempts = max over lanes
// (the §2.1 cost of one logical interface round, identical across shard
// counts when no lane faults), latency = the slowest lane's completion.
// Per-lane metrics keep the true per-lane accounting. Determinism is
// inherited from the PR-3 contract: lanes are processed in ascending shard
// order inside sequential Prepare() calls, and every draw is a pure
// function of (lane seed, ticket, attempt).
//
// Fulfill() is the pure gather: delivered lanes answer their shard page
// (per-lane truncation keeps a strict prefix of that shard's page), and
// the pages fold through ShardedLbsServer::MergeShardPages — the (d2, id)
// merge — so with every lane delivered the reply is bit-identical to the
// unsharded server for any shard count, worker count, and arrival order.
//
// Partial failure is *typed*, never silent: if any targeted lane fails its
// sub-request (kTransientError / kTimeout / kFatal after the lane's
// retries), the logical query carries that lane's outcome — the
// lowest-shard-id failure, deterministically — and an empty page. A merge
// that quietly dropped one shard's candidates would be indistinguishable
// from a sparse region, which is exactly the estimator poison the
// TransportOutcome taxonomy exists to prevent.
class ShardedTransport final : public LbsTransport {
 public:
  // `server` must outlive the transport.
  ShardedTransport(const ShardedLbsServer* server,
                   ShardedTransportOptions options = {});

  // Stateful scatter; serialize calls in submission order.
  TransportPlan Prepare(const Vec2& q, int k) override;

  // Pure gather; thread-safe. Each plan may be fulfilled at most once
  // (AsyncDispatcher and the synchronous Query() path both guarantee it).
  TransportReply Fulfill(const TransportPlan& plan, const Vec2& q, int k,
                         const TupleFilter& filter) const override;

  const ShardedTransportOptions& options() const { return options_; }
  int num_shards() const { return server_->num_shards(); }

  // Client-facing aggregate: one logical query = one request, critical-path
  // attempts, slowest-lane latency.
  TransportMetrics Metrics() const;
  // True per-lane accounting for one shard (every sub-request and retry).
  TransportMetrics ShardMetrics(int shard) const;
  void ResetMetrics();

  // Current virtual time in ms (the slowest lane's frontier).
  double VirtualNowMs() const;

 private:
  struct LanePlan {
    int shard = -1;
    TransportOutcome outcome = TransportOutcome::kOk;
    double truncate_u = 0.0;
  };
  struct Lane {
    explicit Lane(const TokenBucketOptions& bucket_options,
                  const FaultOptions& fault_options, uint64_t lane_seed)
        : bucket(bucket_options),
          faults(fault_options, lane_seed),
          seed(lane_seed) {}
    TokenBucket bucket;
    FaultInjector faults;
    uint64_t seed = 0;
    uint64_t retries_spent = 0;
    TransportMetrics metrics;
    obs::CounterRef attempts_counter;
  };

  // Runs one lane's policy pipeline for `ticket`, departing at `depart_ms`.
  // Returns the lane completion time; fills `plan`, `attempts`, and
  // `dispatch_ms` (when the lane's final attempt entered service — the
  // pipelined clock's frontier).
  double PrepareLane(Lane& lane, uint64_t ticket, double depart_ms,
                     LanePlan* plan, int* attempts, double* dispatch_ms);

  const ShardedLbsServer* server_;
  ShardedTransportOptions options_;
  LatencyModel latency_model_;

  mutable std::mutex mu_;
  std::vector<Lane> lanes_;
  uint64_t next_ticket_ = 0;
  double virtual_now_ms_ = 0.0;
  TransportMetrics metrics_;  // client-facing aggregate
  mutable std::unordered_map<uint64_t, std::vector<LanePlan>> pending_;
  obs::CounterRef requests_counter_;
  obs::CounterRef fanout_counter_;
  obs::CounterRef partial_failure_counter_;
  obs::CounterRef fulfills_counter_;
};

}  // namespace lbsagg

#endif  // LBSAGG_TRANSPORT_SHARDED_TRANSPORT_H_
