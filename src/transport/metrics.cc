#include "transport/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/obs.h"

namespace lbsagg {

namespace {

int BucketIndex(double ms) {
  if (ms < 1.0) return 0;
  const int idx = 1 + static_cast<int>(std::floor(std::log2(ms)));
  return std::min(idx, LatencyHistogram::kBuckets - 1);
}

double BucketUpperMs(int idx) {
  return std::ldexp(1.0, idx);  // bucket i covers [2^(i-1), 2^i)
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void LatencyHistogram::Add(double ms) {
  ++buckets_[BucketIndex(ms)];
  ++count_;
  total_ms_ += ms;
}

double LatencyHistogram::QuantileUpperBound(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) return BucketUpperMs(i);
  }
  return BucketUpperMs(kBuckets - 1);
}

std::string LatencyHistogram::ToJson() const {
  std::ostringstream os;
  os << "{\"count\":" << count_
     << ",\"mean_ms\":" << FormatDouble(mean_ms())
     << ",\"p50_le_ms\":" << FormatDouble(QuantileUpperBound(0.5))
     << ",\"p99_le_ms\":" << FormatDouble(QuantileUpperBound(0.99))
     << ",\"buckets\":[";
  for (int i = 0; i < kBuckets; ++i) {
    if (i > 0) os << ',';
    os << buckets_[i];
  }
  os << "]}";
  return os.str();
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  total_ms_ += other.total_ms_;
}

void TransportMetrics::RecordAttemptsForRequest(int attempts_used) {
  const size_t idx = static_cast<size_t>(attempts_used - 1);
  if (attempts_histogram.size() <= idx) attempts_histogram.resize(idx + 1);
  ++attempts_histogram[idx];
}

std::string TransportMetrics::ToJson(int indent) const {
  const std::string pad(indent, ' ');
  const std::string in(indent + 2, ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << in << "\"requests\": " << requests << ",\n";
  os << in << "\"attempts\": " << attempts << ",\n";
  os << in << "\"retries\": " << retries << ",\n";
  os << in << "\"outcomes\": {";
  for (int i = 0; i < kNumTransportOutcomes; ++i) {
    if (i > 0) os << ", ";
    os << '"' << TransportOutcomeName(static_cast<TransportOutcome>(i))
       << "\": " << outcomes[i];
  }
  os << "},\n";
  os << in << "\"attempt_transient_errors\": " << attempt_transient_errors
     << ",\n";
  os << in << "\"attempt_timeouts\": " << attempt_timeouts << ",\n";
  os << in << "\"throttle_events\": " << throttle_events << ",\n";
  os << in << "\"throttle_wait_ms\": " << FormatDouble(throttle_wait_ms)
     << ",\n";
  os << in << "\"latency_ms\": " << latency.ToJson() << ",\n";
  os << in << "\"attempts_per_request\": [";
  for (size_t i = 0; i < attempts_histogram.size(); ++i) {
    if (i > 0) os << ',';
    os << attempts_histogram[i];
  }
  os << "]\n";
  os << pad << "}";
  return os.str();
}

Table TransportMetrics::ToTable() const {
  Table table({"metric", "value"});
  table.AddRow({"requests", Table::Int(static_cast<long long>(requests))});
  table.AddRow({"attempts", Table::Int(static_cast<long long>(attempts))});
  table.AddRow({"retries", Table::Int(static_cast<long long>(retries))});
  for (int i = 0; i < kNumTransportOutcomes; ++i) {
    table.AddRow({std::string("outcome.") +
                      TransportOutcomeName(static_cast<TransportOutcome>(i)),
                  Table::Int(static_cast<long long>(outcomes[i]))});
  }
  table.AddRow({"attempt_transient_errors",
                Table::Int(static_cast<long long>(attempt_transient_errors))});
  table.AddRow({"attempt_timeouts",
                Table::Int(static_cast<long long>(attempt_timeouts))});
  table.AddRow({"throttle_events",
                Table::Int(static_cast<long long>(throttle_events))});
  table.AddRow({"throttle_wait_ms", Table::Num(throttle_wait_ms, 3)});
  table.AddRow({"latency.mean_ms", Table::Num(latency.mean_ms(), 3)});
  table.AddRow(
      {"latency.p99_le_ms", Table::Num(latency.QuantileUpperBound(0.99), 3)});
  return table;
}

void TransportMetrics::Merge(const TransportMetrics& other) {
  requests += other.requests;
  attempts += other.attempts;
  retries += other.retries;
  for (int i = 0; i < kNumTransportOutcomes; ++i) {
    outcomes[i] += other.outcomes[i];
  }
  attempt_transient_errors += other.attempt_transient_errors;
  attempt_timeouts += other.attempt_timeouts;
  throttle_events += other.throttle_events;
  throttle_wait_ms += other.throttle_wait_ms;
  latency.Merge(other.latency);
  if (attempts_histogram.size() < other.attempts_histogram.size()) {
    attempts_histogram.resize(other.attempts_histogram.size());
  }
  for (size_t i = 0; i < other.attempts_histogram.size(); ++i) {
    attempts_histogram[i] += other.attempts_histogram[i];
  }
}

void PublishTransportMetrics(const TransportMetrics& metrics,
                             obs::MetricsRegistry* registry) {
  obs::GetCounter(registry, "transport.requests").Add(metrics.requests);
  obs::GetCounter(registry, "transport.attempts").Add(metrics.attempts);
  obs::GetCounter(registry, "transport.retries").Add(metrics.retries);
  for (int i = 0; i < kNumTransportOutcomes; ++i) {
    obs::GetCounter(registry,
                    std::string("transport.outcome.") +
                        TransportOutcomeName(static_cast<TransportOutcome>(i)))
        .Add(metrics.outcomes[i]);
  }
  obs::GetCounter(registry, "transport.attempt_transient_errors")
      .Add(metrics.attempt_transient_errors);
  obs::GetCounter(registry, "transport.attempt_timeouts")
      .Add(metrics.attempt_timeouts);
  obs::GetCounter(registry, "transport.throttle_events")
      .Add(metrics.throttle_events);
  obs::GetGauge(registry, "transport.throttle_wait_ms")
      .Set(metrics.throttle_wait_ms);
  obs::GetGauge(registry, "transport.latency_mean_ms")
      .Set(metrics.latency.mean_ms());
  obs::GetGauge(registry, "transport.latency_p50_le_ms")
      .Set(metrics.latency.QuantileUpperBound(0.5));
  obs::GetGauge(registry, "transport.latency_p99_le_ms")
      .Set(metrics.latency.QuantileUpperBound(0.99));
}

}  // namespace lbsagg
