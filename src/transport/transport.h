#ifndef LBSAGG_TRANSPORT_TRANSPORT_H_
#define LBSAGG_TRANSPORT_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "lbs/server.h"

namespace lbsagg {

// Final disposition of one logical query through a transport. The paper's
// cost model (§2.1) counts *interface attempts*; these outcomes classify
// what each logical query ultimately delivered to the client.
enum class TransportOutcome {
  kOk = 0,          // full result page delivered
  kTruncated,       // delivered, but a suffix of the page was lost in transit
  kTransientError,  // gave up after retryable service errors
  kTimeout,         // gave up after deadline misses
  kFatal,           // retry policy out of attempts/budget: nothing delivered
};
inline constexpr int kNumTransportOutcomes = 5;

const char* TransportOutcomeName(TransportOutcome outcome);

// True when the client received an answer page it may act on (possibly
// truncated). Undelivered queries surface to estimators as an empty page —
// indistinguishable from "no tuple within d_max", which keeps every
// estimator running (and is exactly how production crawlers degrade).
inline bool Delivered(TransportOutcome outcome) {
  return outcome == TransportOutcome::kOk ||
         outcome == TransportOutcome::kTruncated;
}

// The fully decided fate of one logical query, fixed *before* the backend
// work runs. SimulatedTransport::Prepare computes plans sequentially in
// submission order (that is the determinism contract: plans depend only on
// the seed and the submission sequence, never on worker-thread timing);
// Fulfill then performs the pure backend lookup on any thread.
struct TransportPlan {
  uint64_t ticket = 0;    // submission sequence number
  int attempts = 1;       // interface attempts consumed (>= 1)
  TransportOutcome outcome = TransportOutcome::kOk;
  double truncate_u = 0;  // kTruncated: uniform deciding how much survives
  double latency_ms = 0;  // simulated latency incl. backoff + throttle waits
};

// One answered logical query.
struct TransportReply {
  std::vector<ServerHit> hits;
  TransportOutcome outcome = TransportOutcome::kOk;
  int attempts = 1;       // what this query cost against the §2.1 budget
  double latency_ms = 0;  // simulated; 0 through DirectTransport
};

// The wire between the restricted client interfaces (lbs/client.h) and the
// service backend. Two-phase: Prepare() runs the (cheap, stateful) policy
// pipeline and must be called in submission order; Fulfill() performs the
// (expensive, stateless) backend work and is safe to call concurrently.
// Query() composes the two for the synchronous path.
class LbsTransport {
 public:
  virtual ~LbsTransport() = default;

  virtual TransportPlan Prepare(const Vec2& q, int k) = 0;
  virtual TransportReply Fulfill(const TransportPlan& plan, const Vec2& q,
                                 int k, const TupleFilter& filter) const = 0;

  TransportReply Query(const Vec2& q, int k, const TupleFilter& filter) {
    return Fulfill(Prepare(q, k), q, k, filter);
  }
};

// Executes a batch of independent logical queries against a transport and
// returns the replies in submission order. Declared here (not in
// async_dispatcher.h) so the client interfaces can accept an executor
// without depending on the threaded implementation; AsyncDispatcher is the
// worker-pool implementation, and clients without one fall back to a
// sequential loop with identical results.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;
  virtual std::vector<TransportReply> QueryBatch(
      const std::vector<Vec2>& queries, int k, const TupleFilter& filter) = 0;
};

// The in-process wire: no latency, no faults, no rate limit, one attempt
// per query. A client over a DirectTransport issues exactly the same
// backend calls, in the same order, with the same accounting as a client
// wired straight to the server — traces are bit-identical.
class DirectTransport final : public LbsTransport {
 public:
  // `server` must outlive the transport.
  explicit DirectTransport(const LbsServer* server) : server_(server) {}

  TransportPlan Prepare(const Vec2&, int) override { return {}; }
  TransportReply Fulfill(const TransportPlan&, const Vec2& q, int k,
                         const TupleFilter& filter) const override {
    return {server_->Query(q, k, filter), TransportOutcome::kOk, 1, 0.0};
  }

 private:
  const LbsServer* server_;
};

}  // namespace lbsagg

#endif  // LBSAGG_TRANSPORT_TRANSPORT_H_
