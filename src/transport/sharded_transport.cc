#include "transport/sharded_transport.h"

#include <algorithm>
#include <utility>

#include "geometry/loc_key.h"  // SplitMix64
#include "util/check.h"

namespace lbsagg {

namespace {

// Severity used to pick the combined outcome when lanes disagree; the
// lowest-shard-id *undelivered* lane wins outright, so this only orders
// delivered outcomes (kTruncated over kOk).
bool WorseThan(TransportOutcome a, TransportOutcome b) {
  return static_cast<int>(a) > static_cast<int>(b);
}

}  // namespace

ShardedTransport::ShardedTransport(const ShardedLbsServer* server,
                                   ShardedTransportOptions options)
    : server_(server),
      options_(std::move(options)),
      latency_model_(options_.latency),
      requests_counter_(
          obs::GetCounter(options_.registry, "transport.sharded.requests")),
      fanout_counter_(
          obs::GetCounter(options_.registry, "transport.sharded.fanout")),
      partial_failure_counter_(obs::GetCounter(
          options_.registry, "transport.sharded.partial_failures")),
      fulfills_counter_(
          obs::GetCounter(options_.registry, "transport.sharded.fulfills")) {
  LBSAGG_CHECK(server_ != nullptr);
  LBSAGG_CHECK_GE(options_.retry.max_attempts, 1);
  const int shards = server_->num_shards();
  lanes_.reserve(shards);
  for (int s = 0; s < shards; ++s) {
    const FaultOptions& faults =
        static_cast<size_t>(s) < options_.shard_faults.size()
            ? options_.shard_faults[s]
            : options_.faults;
    const uint64_t lane_seed =
        SplitMix64(options_.seed ^
                   (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(s) + 1)));
    lanes_.emplace_back(options_.rate_limit, faults, lane_seed);
    lanes_.back().attempts_counter = obs::GetCounter(
        options_.registry, obs::ShardMetricName("transport", s, "attempts"));
  }
}

double ShardedTransport::PrepareLane(Lane& lane, uint64_t ticket,
                                     double depart_ms, LanePlan* plan,
                                     int* attempts, double* dispatch_ms) {
  ++lane.metrics.requests;
  *attempts = 0;
  *dispatch_ms = depart_ms;
  double t = depart_ms;
  for (int attempt = 1;; ++attempt) {
    const double service = lane.bucket.AcquireAt(t);
    if (service > t) {
      ++lane.metrics.throttle_events;
      lane.metrics.throttle_wait_ms += service - t;
      t = service;
    }
    *dispatch_ms = t;
    ++*attempts;
    ++lane.metrics.attempts;
    lane.attempts_counter.Add(1);

    const AttemptFault fault = lane.faults.Draw(ticket, attempt);
    double attempt_ms = latency_model_.Sample(lane.seed, ticket, attempt);
    if (fault.kind == AttemptFault::Kind::kTimeout) {
      attempt_ms = lane.faults.options().timeout_ms;
    }
    if (options_.tracer != nullptr) {
      options_.tracer->AddComplete("transport.attempt", "transport",
                                   t * 1000.0, attempt_ms * 1000.0);
    }
    t += attempt_ms;

    if (fault.kind == AttemptFault::Kind::kNone) {
      plan->outcome = TransportOutcome::kOk;
      break;
    }
    if (fault.kind == AttemptFault::Kind::kTruncated) {
      plan->outcome = TransportOutcome::kTruncated;
      plan->truncate_u = fault.truncate_u;
      break;
    }

    if (fault.kind == AttemptFault::Kind::kTimeout) {
      ++lane.metrics.attempt_timeouts;
    } else {
      ++lane.metrics.attempt_transient_errors;
    }
    if (lane.retries_spent >= options_.retry.retry_budget) {
      plan->outcome = TransportOutcome::kFatal;
      break;
    }
    if (attempt >= options_.retry.max_attempts) {
      plan->outcome = fault.kind == AttemptFault::Kind::kTimeout
                          ? TransportOutcome::kTimeout
                          : TransportOutcome::kTransientError;
      break;
    }
    ++lane.retries_spent;
    ++lane.metrics.retries;
    t += BackoffMs(options_.retry, lane.seed, ticket, attempt);
  }

  if (options_.tracer != nullptr) {
    options_.tracer->AddComplete("transport.shard.request", "transport",
                                 depart_ms * 1000.0,
                                 (t - depart_ms) * 1000.0);
  }
  ++lane.metrics.outcomes[static_cast<int>(plan->outcome)];
  lane.metrics.latency.Add(t - depart_ms);
  lane.metrics.RecordAttemptsForRequest(*attempts);
  return t;
}

TransportPlan ShardedTransport::Prepare(const Vec2& q, int) {
  const std::vector<int> targets = server_->ReachableShards(q);

  std::lock_guard<std::mutex> lock(mu_);
  TransportPlan plan;
  plan.ticket = next_ticket_++;
  ++metrics_.requests;
  requests_counter_.Add(1);
  fanout_counter_.Add(targets.size());

  const double depart = virtual_now_ms_;
  double done = depart;
  double dispatch = depart;
  int max_attempts = 0;
  std::vector<LanePlan> fanout;
  fanout.reserve(targets.size());
  TransportOutcome first_failure = TransportOutcome::kOk;
  TransportOutcome worst_delivered = TransportOutcome::kOk;
  for (int s : targets) {
    LanePlan lane_plan;
    lane_plan.shard = s;
    int attempts = 0;
    double lane_dispatch = depart;
    done = std::max(
        done, PrepareLane(lanes_[s], plan.ticket, depart, &lane_plan,
                          &attempts, &lane_dispatch));
    dispatch = std::max(dispatch, lane_dispatch);
    max_attempts = std::max(max_attempts, attempts);
    if (!Delivered(lane_plan.outcome) &&
        first_failure == TransportOutcome::kOk) {
      first_failure = lane_plan.outcome;
    }
    if (Delivered(lane_plan.outcome) &&
        WorseThan(lane_plan.outcome, worst_delivered)) {
      worst_delivered = lane_plan.outcome;
    }
    fanout.push_back(lane_plan);
  }

  // A query beyond every shard's coverage never leaves the client's NIC in
  // this simulation, but it is still one interface round against the §2.1
  // budget — the monolithic server charges the same query one attempt too.
  plan.attempts = std::max(1, max_attempts);
  plan.outcome = first_failure != TransportOutcome::kOk ? first_failure
                                                        : worst_delivered;
  plan.latency_ms = done - depart;
  // Sequential client: the next query departs when this one completes.
  // Pipelined client: it departs once the limiters grant this one's final
  // attempt — completion latency overlaps the next query's flight.
  virtual_now_ms_ = options_.pipelined_clock ? dispatch : done;
  if (!Delivered(plan.outcome)) partial_failure_counter_.Add(1);

  if (options_.tracer != nullptr) {
    options_.tracer->AddComplete("transport.request", "transport",
                                 depart * 1000.0, plan.latency_ms * 1000.0);
  }
  ++metrics_.outcomes[static_cast<int>(plan.outcome)];
  metrics_.attempts += static_cast<uint64_t>(plan.attempts);
  metrics_.retries += static_cast<uint64_t>(plan.attempts - 1);
  metrics_.latency.Add(plan.latency_ms);
  metrics_.RecordAttemptsForRequest(plan.attempts);

  pending_.emplace(plan.ticket, std::move(fanout));
  return plan;
}

TransportReply ShardedTransport::Fulfill(const TransportPlan& plan,
                                         const Vec2& q, int k,
                                         const TupleFilter& filter) const {
  fulfills_counter_.Add(1);
  std::vector<LanePlan> fanout;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(plan.ticket);
    LBSAGG_CHECK(it != pending_.end())
        << "plan fulfilled twice or never prepared";
    fanout = std::move(it->second);
    pending_.erase(it);
  }

  TransportReply reply;
  reply.outcome = plan.outcome;
  reply.attempts = plan.attempts;
  reply.latency_ms = plan.latency_ms;
  if (!Delivered(plan.outcome)) return reply;  // typed failure, empty page

  std::vector<std::vector<ServerHit>> pages;
  pages.reserve(fanout.size());
  for (const LanePlan& lane_plan : fanout) {
    std::vector<ServerHit> page =
        server_->QueryShard(lane_plan.shard, q, k, filter);
    if (lane_plan.outcome == TransportOutcome::kTruncated && !page.empty()) {
      // Strict prefix of this shard's page, same rule as the monolithic
      // SimulatedTransport: at least 0, at most size-1 hits survive.
      const size_t size = page.size();
      const size_t keep = std::min(
          size - 1, static_cast<size_t>(lane_plan.truncate_u *
                                        static_cast<double>(size)));
      page.resize(keep);
    }
    pages.push_back(std::move(page));
  }
  reply.hits = server_->MergeShardPages(q, pages, k);
  return reply;
}

TransportMetrics ShardedTransport::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

TransportMetrics ShardedTransport::ShardMetrics(int shard) const {
  LBSAGG_CHECK_GE(shard, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(shard), lanes_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_[shard].metrics;
}

void ShardedTransport::ResetMetrics() {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = TransportMetrics{};
  for (Lane& lane : lanes_) lane.metrics = TransportMetrics{};
}

double ShardedTransport::VirtualNowMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_ms_;
}

}  // namespace lbsagg
