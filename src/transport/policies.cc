#include "transport/policies.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lbsagg {

namespace {
// Hash salts keeping the independent draw families independent.
constexpr uint64_t kSaltLatency = 0x1a7e9c5;
constexpr uint64_t kSaltLatencyPhase = 0x1a7e9c6;
constexpr uint64_t kSaltFault = 0xfa017;
constexpr uint64_t kSaltTruncate = 0x7a11;
constexpr uint64_t kSaltJitter = 0x317732;
}  // namespace

double LatencyModel::Sample(uint64_t seed, uint64_t ticket,
                            int attempt) const {
  double ms = options_.fixed_ms;
  if (options_.kind == LatencyOptions::Kind::kLognormal) {
    // Box–Muller from two hashed uniforms; u1 is kept away from 0.
    const double u1 =
        std::max(TicketUniform01(seed, ticket, attempt, kSaltLatency), 1e-12);
    const double u2 = TicketUniform01(seed, ticket, attempt, kSaltLatencyPhase);
    const double normal =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    ms = std::exp(std::log(options_.lognormal_median_ms) +
                  options_.lognormal_sigma * normal);
  }
  return std::max(ms, options_.min_ms);
}

TokenBucket::TokenBucket(TokenBucketOptions options)
    : options_(options), tokens_(options.capacity) {
  if (enabled()) LBSAGG_CHECK_GT(options_.refill_per_sec, 0.0);
}

double TokenBucket::AcquireAt(double now_ms) {
  if (!enabled()) return now_ms;
  const double refill_per_ms = options_.refill_per_sec / 1000.0;
  // Queue behind earlier acquirers; refill for the elapsed virtual time.
  const double at = std::max(now_ms, last_ms_);
  tokens_ = std::min(options_.capacity,
                     tokens_ + (at - last_ms_) * refill_per_ms);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    last_ms_ = at;
    return at;
  }
  const double wait = (1.0 - tokens_) / refill_per_ms;
  tokens_ = 0.0;
  last_ms_ = at + wait;
  return last_ms_;
}

FaultInjector::FaultInjector(FaultOptions options, uint64_t seed)
    : options_(options), seed_(seed) {
  LBSAGG_CHECK_GE(options.transient_error_rate, 0.0);
  LBSAGG_CHECK_GE(options.timeout_rate, 0.0);
  LBSAGG_CHECK_GE(options.truncate_rate, 0.0);
  LBSAGG_CHECK_LE(options.transient_error_rate + options.timeout_rate +
                      options.truncate_rate,
                  1.0);
}

AttemptFault FaultInjector::Draw(uint64_t ticket, int attempt) const {
  const double u = TicketUniform01(seed_, ticket, attempt, kSaltFault);
  AttemptFault fault;
  if (u < options_.timeout_rate) {
    fault.kind = AttemptFault::Kind::kTimeout;
  } else if (u < options_.timeout_rate + options_.transient_error_rate) {
    fault.kind = AttemptFault::Kind::kTransientError;
  } else if (u < options_.timeout_rate + options_.transient_error_rate +
                     options_.truncate_rate) {
    fault.kind = AttemptFault::Kind::kTruncated;
    fault.truncate_u = TicketUniform01(seed_, ticket, attempt, kSaltTruncate);
  }
  return fault;
}

double BackoffMs(const RetryOptions& options, uint64_t seed, uint64_t ticket,
                 int attempt) {
  const double uncapped =
      options.base_backoff_ms * std::ldexp(1.0, std::min(attempt - 1, 30));
  const double capped = std::min(uncapped, options.max_backoff_ms);
  const double u = TicketUniform01(seed, ticket, attempt, kSaltJitter);
  const double factor = 1.0 + options.jitter * (2.0 * u - 1.0);
  return capped * factor;
}

}  // namespace lbsagg
