#ifndef LBSAGG_TRANSPORT_SIMULATED_TRANSPORT_H_
#define LBSAGG_TRANSPORT_SIMULATED_TRANSPORT_H_

#include <cstdint>
#include <mutex>

#include "obs/obs.h"
#include "obs/trace.h"
#include "transport/metrics.h"
#include "transport/policies.h"
#include "transport/transport.h"

namespace lbsagg {

struct SimulatedTransportOptions {
  LatencyOptions latency;
  TokenBucketOptions rate_limit;  // capacity 0 = no rate limiting
  FaultOptions faults;
  RetryOptions retry;
  uint64_t seed = 0x5eed;

  // Metric plane for the live transport.fulfills counter (incremented on the
  // dispatcher's worker threads); null lands on
  // obs::MetricsRegistry::Default(). The aggregate TransportMetrics snapshot
  // is bridged separately via PublishTransportMetrics.
  obs::MetricsRegistry* registry = nullptr;

  // When set, every logical query emits one "transport.request" span with
  // nested "transport.attempt" spans, stamped with the *virtual*-time
  // endpoints computed in Prepare(). Pair with a Tracer bound to a
  // FunctionTraceClock on VirtualNowMs so estimator spans share the
  // timeline (obs/trace.h).
  obs::Tracer* tracer = nullptr;
};

// A simulated network + service quota between the client interfaces and the
// LBS backend. Each logical query runs the policy pipeline:
//
//   for attempt = 1..retry.max_attempts:
//     wait for a rate-limit token        (virtual clock advances)
//     draw the attempt's latency         (fixed or lognormal)
//     draw the attempt's fault           (none / transient / timeout / trunc)
//     retryable fault and retry budget left? back off (capped exp + jitter)
//     else: final outcome
//
// Time is *virtual*: nothing sleeps, the clock models a sequential client
// whose next query departs when the previous one completes. Faults,
// latencies, and jitter are pure functions of (seed, ticket, attempt), and
// tickets are assigned in Prepare() submission order, so the full outcome
// sequence and metrics are bit-identical for any dispatcher thread count
// and across reruns with the same seed (the determinism contract pinned by
// transport_determinism_test.cc).
//
// Undelivered queries (kTransientError / kTimeout after the last attempt,
// or kFatal when the retry budget is spent) surface as an *empty page* —
// estimators keep running, exactly like a crawler treating a dead request
// as "no results here". Every attempt still counts against the client's
// §2.1 query budget.
class SimulatedTransport final : public LbsTransport {
 public:
  // `server` must outlive the transport.
  SimulatedTransport(const LbsServer* server,
                     SimulatedTransportOptions options = {});

  // Stateful policy pipeline; serialize calls in submission order.
  TransportPlan Prepare(const Vec2& q, int k) override;

  // Pure backend work; thread-safe.
  TransportReply Fulfill(const TransportPlan& plan, const Vec2& q, int k,
                         const TupleFilter& filter) const override;

  const SimulatedTransportOptions& options() const { return options_; }

  // Snapshot of the counters (copy, taken under the internal lock).
  TransportMetrics Metrics() const;
  void ResetMetrics();

  // Current virtual time in ms (throttle waits, latencies, backoffs).
  double VirtualNowMs() const;

 private:
  const LbsServer* server_;
  SimulatedTransportOptions options_;
  LatencyModel latency_model_;
  FaultInjector fault_injector_;

  mutable std::mutex mu_;
  TokenBucket bucket_;
  uint64_t next_ticket_ = 0;
  uint64_t retries_spent_ = 0;
  double virtual_now_ms_ = 0.0;
  TransportMetrics metrics_;
  obs::CounterRef fulfills_counter_;
};

}  // namespace lbsagg

#endif  // LBSAGG_TRANSPORT_SIMULATED_TRANSPORT_H_
