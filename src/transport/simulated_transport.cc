#include "transport/simulated_transport.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lbsagg {

SimulatedTransport::SimulatedTransport(const LbsServer* server,
                                       SimulatedTransportOptions options)
    : server_(server),
      options_(options),
      latency_model_(options.latency),
      fault_injector_(options.faults, options.seed),
      bucket_(options.rate_limit),
      fulfills_counter_(
          obs::GetCounter(options.registry, "transport.fulfills")) {
  LBSAGG_CHECK(server_ != nullptr);
  LBSAGG_CHECK_GE(options_.retry.max_attempts, 1);
}

TransportPlan SimulatedTransport::Prepare(const Vec2&, int) {
  std::lock_guard<std::mutex> lock(mu_);
  TransportPlan plan;
  plan.ticket = next_ticket_++;
  plan.attempts = 0;
  ++metrics_.requests;

  double t = virtual_now_ms_;
  for (int attempt = 1;; ++attempt) {
    // One rate-limit token per interface attempt.
    const double service = bucket_.AcquireAt(t);
    if (service > t) {
      ++metrics_.throttle_events;
      metrics_.throttle_wait_ms += service - t;
      t = service;
    }
    ++plan.attempts;
    ++metrics_.attempts;

    const AttemptFault fault = fault_injector_.Draw(plan.ticket, attempt);
    double attempt_ms = latency_model_.Sample(options_.seed, plan.ticket,
                                              attempt);
    if (fault.kind == AttemptFault::Kind::kTimeout) {
      attempt_ms = options_.faults.timeout_ms;
    }
    if (options_.tracer != nullptr) {
      // Attempt endpoints are known exactly in virtual time (1 ms = 1000 ts
      // units): the span starts when the rate limiter releases the attempt.
      options_.tracer->AddComplete("transport.attempt", "transport",
                                   t * 1000.0, attempt_ms * 1000.0);
    }
    t += attempt_ms;

    if (fault.kind == AttemptFault::Kind::kNone) {
      plan.outcome = TransportOutcome::kOk;
      break;
    }
    if (fault.kind == AttemptFault::Kind::kTruncated) {
      // Degraded success: the page arrived minus a suffix. Not retried —
      // the client cannot tell a truncated page from a sparse area.
      plan.outcome = TransportOutcome::kTruncated;
      plan.truncate_u = fault.truncate_u;
      break;
    }

    // Retryable failure.
    if (fault.kind == AttemptFault::Kind::kTimeout) {
      ++metrics_.attempt_timeouts;
    } else {
      ++metrics_.attempt_transient_errors;
    }
    if (retries_spent_ >= options_.retry.retry_budget) {
      plan.outcome = TransportOutcome::kFatal;  // fail fast: budget spent
      break;
    }
    if (attempt >= options_.retry.max_attempts) {
      plan.outcome = fault.kind == AttemptFault::Kind::kTimeout
                         ? TransportOutcome::kTimeout
                         : TransportOutcome::kTransientError;
      break;
    }
    ++retries_spent_;
    ++metrics_.retries;
    t += BackoffMs(options_.retry, options_.seed, plan.ticket, attempt);
  }

  if (options_.tracer != nullptr) {
    options_.tracer->AddComplete("transport.request", "transport",
                                 virtual_now_ms_ * 1000.0,
                                 (t - virtual_now_ms_) * 1000.0);
  }
  plan.latency_ms = t - virtual_now_ms_;
  virtual_now_ms_ = t;  // sequential-client clock: next query departs now

  ++metrics_.outcomes[static_cast<int>(plan.outcome)];
  metrics_.latency.Add(plan.latency_ms);
  metrics_.RecordAttemptsForRequest(plan.attempts);
  return plan;
}

TransportReply SimulatedTransport::Fulfill(const TransportPlan& plan,
                                           const Vec2& q, int k,
                                           const TupleFilter& filter) const {
  fulfills_counter_.Add(1);
  TransportReply reply;
  reply.outcome = plan.outcome;
  reply.attempts = plan.attempts;
  reply.latency_ms = plan.latency_ms;
  if (Delivered(plan.outcome)) {
    reply.hits = server_->Query(q, k, filter);
    if (plan.outcome == TransportOutcome::kTruncated && !reply.hits.empty()) {
      // Keep a strict prefix: at least 0, at most size-1 hits survive.
      const size_t size = reply.hits.size();
      const size_t keep = std::min(
          size - 1,
          static_cast<size_t>(plan.truncate_u * static_cast<double>(size)));
      reply.hits.resize(keep);
    }
  }
  return reply;
}

TransportMetrics SimulatedTransport::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

void SimulatedTransport::ResetMetrics() {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = TransportMetrics{};
}

double SimulatedTransport::VirtualNowMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_ms_;
}

}  // namespace lbsagg
