#ifndef LBSAGG_TRANSPORT_POLICIES_H_
#define LBSAGG_TRANSPORT_POLICIES_H_

// Pluggable policies composed by SimulatedTransport: latency model,
// token-bucket rate limiter, seeded fault injector, and retry policy.
//
// Determinism contract: every random draw is a *pure function* of
// (seed, ticket, attempt, salt) — a hash, not a shared generator stream —
// so a request's fate never depends on how many draws other requests made
// or on which worker thread touched it first. Combined with sequential
// Prepare() ordering this makes the whole simulation bit-reproducible for
// any dispatcher thread count (transport_determinism_test.cc).

#include <cstdint>
#include <limits>

#include "geometry/loc_key.h"  // SplitMix64
#include "transport/transport.h"

namespace lbsagg {

// Uniform in [0, 1), pure function of its arguments.
inline double TicketUniform01(uint64_t seed, uint64_t ticket, int attempt,
                              uint64_t salt) {
  uint64_t h = SplitMix64(seed ^ SplitMix64(salt));
  h = SplitMix64(h ^ ticket);
  h = SplitMix64(h ^ static_cast<uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// ---------------------------------------------------------------------------
// Latency model

struct LatencyOptions {
  enum class Kind { kFixed, kLognormal };
  Kind kind = Kind::kFixed;

  // kFixed: every attempt takes exactly this long.
  double fixed_ms = 50.0;

  // kLognormal: exp(N(log(median_ms), sigma)) — the classic heavy-tailed
  // service-latency shape (median 50 ms, sigma 0.5 puts p99 near 160 ms).
  double lognormal_median_ms = 50.0;
  double lognormal_sigma = 0.5;

  // Floor applied to every sample.
  double min_ms = 1.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyOptions options) : options_(options) {}

  // Simulated duration of one attempt, in ms.
  double Sample(uint64_t seed, uint64_t ticket, int attempt) const;

 private:
  LatencyOptions options_;
};

// ---------------------------------------------------------------------------
// Token-bucket rate limiter (server-side quota, e.g. Google Places QPS)

struct TokenBucketOptions {
  // Burst capacity in requests; 0 disables the limiter.
  double capacity = 0.0;
  // Steady-state refill rate, requests per (simulated) second.
  double refill_per_sec = 10.0;
};

// Deterministic virtual-time token bucket: one token per interface attempt.
// Not thread-safe — SimulatedTransport drives it under its own lock.
class TokenBucket {
 public:
  explicit TokenBucket(TokenBucketOptions options);

  bool enabled() const { return options_.capacity > 0.0; }

  // Takes one token; returns the virtual time (>= now_ms) at which the
  // attempt may proceed. Time never flows backwards: a caller presenting an
  // earlier `now_ms` than a previous caller queues behind it.
  double AcquireAt(double now_ms);

 private:
  TokenBucketOptions options_;
  double tokens_;
  double last_ms_ = 0.0;
};

// ---------------------------------------------------------------------------
// Fault injector

struct FaultOptions {
  // Independent per-attempt probabilities (their sum must be <= 1).
  double transient_error_rate = 0.0;  // HTTP-5xx-style, retryable
  double timeout_rate = 0.0;          // deadline miss, retryable
  double truncate_rate = 0.0;         // page delivered minus a suffix

  // Simulated cost of a timed-out attempt.
  double timeout_ms = 1000.0;
};

// What the injector decided for one interface attempt.
struct AttemptFault {
  enum class Kind { kNone, kTransientError, kTimeout, kTruncated };
  Kind kind = Kind::kNone;
  double truncate_u = 0.0;  // kTruncated: uniform deciding the kept prefix
};

class FaultInjector {
 public:
  FaultInjector(FaultOptions options, uint64_t seed);

  // Pure function of (seed, ticket, attempt).
  AttemptFault Draw(uint64_t ticket, int attempt) const;

  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
  uint64_t seed_;
};

// ---------------------------------------------------------------------------
// Retry policy

struct RetryOptions {
  // Attempts per logical query, including the first; 1 = never retry.
  int max_attempts = 4;

  // Capped exponential backoff: base * 2^(attempt-1), clamped to max, then
  // scaled by a deterministic jitter factor in [1 - jitter, 1 + jitter].
  double base_backoff_ms = 100.0;
  double max_backoff_ms = 2000.0;
  double jitter = 0.5;

  // Total retries allowed across the transport's lifetime (a crawl-level
  // error budget); once spent, failed queries are abandoned after their
  // first attempt. Unlimited by default.
  uint64_t retry_budget = std::numeric_limits<uint64_t>::max();
};

// Retryable faults are re-attempted; anything else is final.
inline bool Retryable(AttemptFault::Kind kind) {
  return kind == AttemptFault::Kind::kTransientError ||
         kind == AttemptFault::Kind::kTimeout;
}

// Backoff before retry number `attempt` (the attempt just failed was
// 1-based `attempt`), with deterministic jitter.
double BackoffMs(const RetryOptions& options, uint64_t seed, uint64_t ticket,
                 int attempt);

}  // namespace lbsagg

#endif  // LBSAGG_TRANSPORT_POLICIES_H_
