#ifndef LBSAGG_GEOMETRY3D_POLYTOPE3_H_
#define LBSAGG_GEOMETRY3D_POLYTOPE3_H_

#include <vector>

#include "geometry3d/vec3.h"

namespace lbsagg {

// Halfspace { p : Dot(normal, p) <= offset } in 3-D. The Voronoi cell of a
// d-dimensional tuple is an intersection of bisector halfspaces, exactly as
// in 2-D (§5.4).
struct Halfspace3 {
  Vec3 normal;
  double offset = 0.0;

  Halfspace3() = default;
  Halfspace3(Vec3 normal_in, double offset_in)
      : normal(normal_in), offset(offset_in) {}

  // Points at least as close to `a` as to `b`.
  static Halfspace3 Closer(const Vec3& a, const Vec3& b) {
    const Vec3 n = b - a;
    return Halfspace3(n, Dot(n, Midpoint(a, b)));
  }

  double Side(const Vec3& p) const { return Dot(normal, p) - offset; }
  bool Contains(const Vec3& p, double eps = 0.0) const {
    return Side(p) <= eps;
  }
};

// The six halfspaces of an axis box.
std::vector<Halfspace3> BoxHalfspaces(const Box3& box);

// True if p satisfies every halfspace (with slack eps scaled per plane).
bool PolytopeContains(const std::vector<Halfspace3>& planes, const Vec3& p,
                      double eps = 1e-9);

// Vertices of the convex polytope ∩ planes, by enumerating plane triples
// (O(m³) — the Theorem-1 loops keep m at a few dozen). Near-duplicate
// vertices are merged. Returns an empty vector for empty or unbounded
// polytopes (callers always include the box halfspaces, so boundedness is
// guaranteed in practice).
std::vector<Vec3> EnumeratePolytopeVertices(
    const std::vector<Halfspace3>& planes);

// Axis-aligned bounding box of a point set. Requires a non-empty set.
Box3 BoundingBox3(const std::vector<Vec3>& points);

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY3D_POLYTOPE3_H_
