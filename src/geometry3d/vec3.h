#ifndef LBSAGG_GEOMETRY3D_VEC3_H_
#define LBSAGG_GEOMETRY3D_VEC3_H_

// 3-D geometry for the §5.4 extension: the paper notes that Theorem 1 and
// the LR machinery apply unchanged to kNN interfaces over d-dimensional
// points with Euclidean ranking. This directory provides the minimal 3-D
// substrate: vectors, axis boxes, halfspaces and convex-polytope vertex
// enumeration.

#include <cmath>
#include <ostream>

#include "util/rng.h"

namespace lbsagg {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_in, double y_in, double z_in)
      : x(x_in), y(y_in), z(z_in) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
  }
};

constexpr double Dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 Cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double SquaredNorm(const Vec3& v) { return Dot(v, v); }
inline double Norm(const Vec3& v) { return std::sqrt(SquaredNorm(v)); }
inline double SquaredDistance(const Vec3& a, const Vec3& b) {
  return SquaredNorm(a - b);
}
inline double Distance(const Vec3& a, const Vec3& b) { return Norm(a - b); }
constexpr Vec3 Midpoint(const Vec3& a, const Vec3& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5, (a.z + b.z) * 0.5};
}

// Axis-aligned 3-D box (the bounded region B of Definition 1 in 3-D).
struct Box3 {
  Vec3 lo;
  Vec3 hi;

  Box3() = default;
  Box3(Vec3 lo_in, Vec3 hi_in) : lo(lo_in), hi(hi_in) {}

  double Volume() const {
    return (hi.x - lo.x) * (hi.y - lo.y) * (hi.z - lo.z);
  }
  bool Contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
  Vec3 SamplePoint(Rng& rng) const {
    return {rng.Uniform(lo.x, hi.x), rng.Uniform(lo.y, hi.y),
            rng.Uniform(lo.z, hi.z)};
  }
};

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY3D_VEC3_H_
