#include "geometry3d/polytope3.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/check.h"

namespace lbsagg {

std::vector<Halfspace3> BoxHalfspaces(const Box3& box) {
  return {
      {{+1, 0, 0}, box.hi.x}, {{-1, 0, 0}, -box.lo.x},
      {{0, +1, 0}, box.hi.y}, {{0, -1, 0}, -box.lo.y},
      {{0, 0, +1}, box.hi.z}, {{0, 0, -1}, -box.lo.z},
  };
}

bool PolytopeContains(const std::vector<Halfspace3>& planes, const Vec3& p,
                      double eps) {
  for (const Halfspace3& h : planes) {
    if (h.Side(p) > eps * std::max(1.0, Norm(h.normal))) return false;
  }
  return true;
}

namespace {

// Solves the 3x3 system n_i · p = o_i by Cramer's rule; nullopt when the
// planes are (nearly) dependent.
std::optional<Vec3> IntersectThree(const Halfspace3& a, const Halfspace3& b,
                                   const Halfspace3& c) {
  const Vec3 bc = Cross(b.normal, c.normal);
  const double det = Dot(a.normal, bc);
  const double scale = Norm(a.normal) * Norm(b.normal) * Norm(c.normal);
  if (std::abs(det) < 1e-12 * std::max(scale, 1e-300)) return std::nullopt;
  const Vec3 ca = Cross(c.normal, a.normal);
  const Vec3 ab = Cross(a.normal, b.normal);
  return (bc * a.offset + ca * b.offset + ab * c.offset) / det;
}

}  // namespace

std::vector<Vec3> EnumeratePolytopeVertices(
    const std::vector<Halfspace3>& planes) {
  std::vector<Vec3> vertices;
  const size_t m = planes.size();
  double scale = 1.0;
  for (const Halfspace3& h : planes) {
    scale = std::max(scale, std::abs(h.offset) / std::max(Norm(h.normal),
                                                          1e-300));
  }
  const double merge_eps = scale * 1e-9;
  const double contain_eps = scale * 1e-9;

  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      for (size_t l = j + 1; l < m; ++l) {
        const std::optional<Vec3> p =
            IntersectThree(planes[i], planes[j], planes[l]);
        if (!p.has_value()) continue;
        if (!PolytopeContains(planes, *p, contain_eps)) continue;
        bool duplicate = false;
        for (const Vec3& v : vertices) {
          if (Distance(v, *p) <= merge_eps) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) vertices.push_back(*p);
      }
    }
  }
  return vertices;
}

Box3 BoundingBox3(const std::vector<Vec3>& points) {
  LBSAGG_CHECK(!points.empty());
  Vec3 lo = points[0], hi = points[0];
  for (const Vec3& p : points) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  return Box3(lo, hi);
}

}  // namespace lbsagg
