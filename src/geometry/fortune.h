#ifndef LBSAGG_GEOMETRY_FORTUNE_H_
#define LBSAGG_GEOMETRY_FORTUNE_H_

#include <array>
#include <vector>

#include "geometry/vec2.h"

namespace lbsagg {

// Fortune's sweep-line algorithm — the alternative Voronoi construction the
// paper names for Leverage-History (§3.2.2, "more sophisticated approaches
// such as Fortune's algorithm [15]").
//
// The sweep emits the *Delaunay* structure: a triangle per circle event and
// an edge per beach-line adjacency, which is everything the library needs
// (Voronoi cells are reconstructed by clipping against the neighbors'
// bisectors, exactly as with the Bowyer–Watson backend). The beach line is
// a plain ordered sequence with linear arc lookup — O(n²) worst case, which
// is fine for the ground-truth/cross-check role this backend plays; the
// incremental Delaunay in geometry/delaunay.h remains the production path.
//
// Precision: the sweep uses double-precision circumcenters and breakpoints
// (no exact-arithmetic fallback), which is exact on the library's test
// workloads up to roughly a thousand sites but can misorder events for
// nearly-cocircular quadruples in very dense clusters beyond that.
class FortuneSweep {
 public:
  // Runs the sweep over distinct points in general position (no two sites
  // on one horizontal line at equal y is handled; exact duplicates are
  // rejected).
  explicit FortuneSweep(const std::vector<Vec2>& points);

  size_t num_points() const { return points_.size(); }

  // Indices of the Delaunay neighbors of point i (sorted, unique).
  const std::vector<int>& Neighbors(int i) const;

  // Triangles recorded at circle events (each is Delaunay; interior
  // triangles only — the convex-hull fan is implied by the edges).
  const std::vector<std::array<int, 3>>& Triangles() const {
    return triangles_;
  }

 private:
  std::vector<Vec2> points_;
  std::vector<std::vector<int>> neighbors_;
  std::vector<std::array<int, 3>> triangles_;
};

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_FORTUNE_H_
