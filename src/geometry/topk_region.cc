#include "geometry/topk_region.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace lbsagg {

namespace {

// Quantized endpoint key used to match shared edges between adjacent pieces.
struct PointKey {
  int64_t x;
  int64_t y;
  bool operator==(const PointKey&) const = default;
};

struct EdgeKey {
  PointKey a;
  PointKey b;
  bool operator==(const EdgeKey&) const = default;
};

struct EdgeKeyHash {
  size_t operator()(const EdgeKey& k) const {
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(static_cast<uint64_t>(k.a.x));
    mix(static_cast<uint64_t>(k.a.y));
    mix(static_cast<uint64_t>(k.b.x));
    mix(static_cast<uint64_t>(k.b.y));
    return static_cast<size_t>(h);
  }
};

struct PointKeyHash {
  size_t operator()(const PointKey& k) const {
    return EdgeKeyHash()(EdgeKey{k, k});
  }
};

PointKey Quantize(const Vec2& p, double grid) {
  return {static_cast<int64_t>(std::llround(p.x / grid)),
          static_cast<int64_t>(std::llround(p.y / grid))};
}

EdgeKey UndirectedKey(const PointKey& a, const PointKey& b) {
  if (a.x < b.x || (a.x == b.x && a.y < b.y)) return {a, b};
  return {b, a};
}

// Applies one oriented line to the piece set: pieces fully on the negative
// side pass through, pieces fully on the positive side gain a closer-count
// (and die at k), straddling pieces split. Returns true if any piece
// changed (split, count bump, or drop) — i.e. if the live bounding box may
// have shrunk.
bool ApplyLine(std::vector<LevelPiece>& pieces, const Line& line, int k,
               double area_eps) {
  std::vector<LevelPiece> next;
  next.reserve(pieces.size() + 4);
  bool changed = false;
  for (LevelPiece& piece : pieces) {
    bool any_neg = false;
    bool any_pos = false;
    for (const Vec2& v : piece.poly.vertices()) {
      const double s = line.Side(v);
      if (s < 0) any_neg = true;
      if (s > 0) any_pos = true;
      if (any_neg && any_pos) break;
    }
    if (!any_pos) {
      next.push_back(std::move(piece));
      continue;
    }
    changed = true;
    if (!any_neg) {
      piece.closer_count += 1;
      if (piece.closer_count < k) next.push_back(std::move(piece));
      continue;
    }
    auto [neg, pos] = piece.poly.Split(line);
    if (!neg.IsEmpty() && neg.Area() > area_eps) {
      next.push_back({std::move(neg), piece.closer_count});
    }
    if (!pos.IsEmpty() && pos.Area() > area_eps &&
        piece.closer_count + 1 < k) {
      next.push_back({std::move(pos), piece.closer_count + 1});
    }
  }
  pieces = std::move(next);
  return changed;
}

Box PiecesBoundingBox(const std::vector<LevelPiece>& pieces) {
  Box box = pieces[0].poly.BoundingBox();
  for (size_t i = 1; i < pieces.size(); ++i) {
    const Box b = pieces[i].poly.BoundingBox();
    box = box.Including(b.lo).Including(b.hi);
  }
  return box;
}

// Margin scale of a domain: the pruning margin (scale * 1e-6) must exceed
// the boundary-extraction probe nudge (region scale * 1e-7, and the region
// is contained in the domain), so a pruned line can never flip an in_region
// probe — see the no-op argument in DESIGN.md "Hot path & complexity".
double DomainScale(const Box& box) {
  return std::max({1.0, std::abs(box.lo.x), std::abs(box.lo.y),
                   std::abs(box.hi.x), std::abs(box.hi.y)});
}

// True when every point within `margin` of `box` lies strictly on the
// negative side of `line`. Side() is linear, so checking the four corners
// against -margin * |normal| suffices. Such a line splits nothing (every
// piece is inside the box) and contributes nothing to any boundary probe
// (probes stay within the nudge < margin of the region), so skipping it
// leaves the result bit-identical.
bool NegativeWithMargin(const Line& line, const Box& box, double margin) {
  const double lim = -margin * Norm(line.normal);
  return line.Side(box.lo) <= lim && line.Side(box.hi) <= lim &&
         line.Side({box.lo.x, box.hi.y}) <= lim &&
         line.Side({box.hi.x, box.lo.y}) <= lim;
}

double FarthestCornerDistance(const Box& box, const Vec2& p) {
  return std::sqrt(std::max(
      {SquaredDistance(p, box.lo), SquaredDistance(p, box.hi),
       SquaredDistance(p, {box.lo.x, box.hi.y}),
       SquaredDistance(p, {box.hi.x, box.lo.y})}));
}

// Assembles a TopkRegion from surviving pieces: area accumulation plus
// boundary extraction against the active line set.
TopkRegion FinalizeRegion(std::vector<LevelPiece> pieces,
                          const std::vector<Line>& lines,
                          const ConvexPolygon& domain, int k) {
  TopkRegion region;
  region.pieces.reserve(pieces.size());
  for (LevelPiece& piece : pieces) {
    region.area += piece.poly.Area();
    region.pieces.push_back(std::move(piece.poly));
  }
  if (region.pieces.empty()) return region;

  // --- Boundary extraction: cancel interior shared edges. ---
  const Box rbox = region.BoundingBox();
  const double scale =
      std::max({1.0, std::abs(rbox.lo.x), std::abs(rbox.lo.y),
                std::abs(rbox.hi.x), std::abs(rbox.hi.y)});
  const double grid = scale * 1e-9;
  const double len_eps = scale * 1e-12;

  struct EdgeRec {
    Segment seg;
    int count = 0;
  };
  std::unordered_map<EdgeKey, EdgeRec, EdgeKeyHash> edges;
  for (const ConvexPolygon& piece : region.pieces) {
    const auto& vs = piece.vertices();
    for (size_t i = 0; i < vs.size(); ++i) {
      const Vec2& a = vs[i];
      const Vec2& b = vs[(i + 1) % vs.size()];
      if (Distance(a, b) <= len_eps) continue;
      const EdgeKey key = UndirectedKey(Quantize(a, grid), Quantize(b, grid));
      auto [it, inserted] = edges.try_emplace(key, EdgeRec{Segment(a, b), 0});
      it->second.count += 1;
    }
  }

  // Robust second filter: an edge is on the boundary iff nudging its
  // midpoint to the two sides gives different membership. This corrects the
  // rare case where adjacent pieces subdivide a shared edge differently and
  // the hash-cancellation leaves both halves behind.
  const double nudge = scale * 1e-7;
  auto in_region = [&](const Vec2& p) {
    if (!domain.Contains(p, 0.0)) return false;
    int count = 0;
    for (const Line& line : lines) {
      if (line.Side(p) > 0 && ++count >= k) return false;
    }
    return true;
  };
  for (auto& [key, rec] : edges) {
    if (rec.count != 1) continue;  // interior (shared) edge
    const Vec2 mid = rec.seg.Midpoint();
    const Vec2 n = Normalized(Perp(rec.seg.b - rec.seg.a));
    const bool side1 = in_region(mid + n * nudge);
    const bool side2 = in_region(mid - n * nudge);
    if (side1 != side2) region.boundary_edges.push_back(rec.seg);
  }

  return region;
}

// Shared pruned clip loop. `half_dists`, when given, holds for each line a
// lower bound on its distance to `focal` (d(t,o)/2 for bisectors) in
// ascending order: once a line's bound exceeds the farthest live corner
// plus the margin, every remaining line is prunable and the loop breaks.
TopkRegion LevelRegionPruned(const std::vector<Line>& lines,
                             const ConvexPolygon& domain, int k,
                             const Vec2* focal,
                             const std::vector<double>* half_dists) {
  LBSAGG_CHECK_GE(k, 1);
  LBSAGG_CHECK(!domain.IsEmpty());

  std::vector<LevelPiece> pieces;
  pieces.push_back({domain, 0});
  const double area_eps = domain.Area() * 1e-14;

  Box bbox = domain.BoundingBox();
  const double margin = DomainScale(bbox) * 1e-6;
  double r_far = focal ? FarthestCornerDistance(bbox, *focal) : 0.0;
  bool dirty = false;

  std::vector<Line> active;
  active.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    if (dirty) {
      bbox = PiecesBoundingBox(pieces);
      if (focal) r_far = FarthestCornerDistance(bbox, *focal);
      dirty = false;
    }
    if (half_dists && (*half_dists)[i] > r_far + margin) break;
    if (NegativeWithMargin(lines[i], bbox, margin)) continue;
    active.push_back(lines[i]);
    if (ApplyLine(pieces, lines[i], k, area_eps)) dirty = true;
    if (pieces.empty()) break;
  }
  return FinalizeRegion(std::move(pieces), active, domain, k);
}

}  // namespace

int RankAt(const Vec2& q, const Vec2& focal, const std::vector<Vec2>& others) {
  const double d2 = SquaredDistance(q, focal);
  int rank = 0;
  for (const Vec2& o : others) {
    if (SquaredDistance(q, o) < d2) ++rank;
  }
  return rank;
}

std::vector<Vec2> TopkRegion::BoundaryVertices() const {
  if (boundary_edges.empty()) return {};
  double scale = 1.0;
  for (const Segment& s : boundary_edges) {
    scale = std::max({scale, std::abs(s.a.x), std::abs(s.a.y),
                      std::abs(s.b.x), std::abs(s.b.y)});
  }
  const double grid = scale * 1e-9;
  std::unordered_set<PointKey, PointKeyHash> seen;
  std::vector<Vec2> vertices;
  for (const Segment& s : boundary_edges) {
    for (const Vec2& p : {s.a, s.b}) {
      if (seen.insert(Quantize(p, grid)).second) vertices.push_back(p);
    }
  }
  return vertices;
}

Vec2 TopkRegion::SamplePoint(Rng& rng) const {
  LBSAGG_CHECK(!pieces.empty());
  std::vector<double> areas(pieces.size());
  for (size_t i = 0; i < pieces.size(); ++i) areas[i] = pieces[i].Area();
  const size_t idx = rng.Categorical(areas);
  return pieces[idx].SamplePoint(rng);
}

bool TopkRegion::Contains(const Vec2& p, double eps) const {
  for (const ConvexPolygon& piece : pieces) {
    if (piece.Contains(p, eps)) return true;
  }
  return false;
}

Box TopkRegion::BoundingBox() const {
  LBSAGG_CHECK(!pieces.empty());
  Box box = pieces[0].BoundingBox();
  for (size_t i = 1; i < pieces.size(); ++i) {
    const Box b = pieces[i].BoundingBox();
    box = box.Including(b.lo).Including(b.hi);
  }
  return box;
}

TopkRegion ComputeLevelRegionFromLines(const std::vector<Line>& lines,
                                       const Box& box, int k) {
  return ComputeLevelRegionFromLines(lines, ConvexPolygon::FromBox(box), k);
}

TopkRegion ComputeLevelRegionFromLines(const std::vector<Line>& lines,
                                       const ConvexPolygon& domain, int k) {
  return LevelRegionPruned(lines, domain, k, /*focal=*/nullptr,
                           /*half_dists=*/nullptr);
}

TopkRegion ComputeLevelRegionFromLinesUnpruned(const std::vector<Line>& lines,
                                               const ConvexPolygon& domain,
                                               int k) {
  LBSAGG_CHECK_GE(k, 1);
  LBSAGG_CHECK(!domain.IsEmpty());

  std::vector<LevelPiece> pieces;
  pieces.push_back({domain, 0});
  const double area_eps = domain.Area() * 1e-14;

  for (const Line& line : lines) {
    ApplyLine(pieces, line, k, area_eps);
    if (pieces.empty()) break;
  }
  return FinalizeRegion(std::move(pieces), lines, domain, k);
}

TopkRegion ComputeTopkRegion(const Vec2& focal,
                             const std::vector<Vec2>& others, const Box& box,
                             int k) {
  return ComputeTopkRegion(focal, others, ConvexPolygon::FromBox(box), k);
}

namespace {

// Bisectors of (focal, others), nearest first, with each line's distance to
// the focal point (half the point distance) alongside. Near bisectors prune
// pieces earliest and keep the live piece count small; the ascending
// half-distances feed the early break in LevelRegionPruned.
void SortedBisectors(const Vec2& focal, const std::vector<Vec2>& others,
                     std::vector<Line>& lines,
                     std::vector<double>& half_dists) {
  std::vector<Vec2> sorted;
  sorted.reserve(others.size());
  for (const Vec2& o : others) {
    if (SquaredDistance(o, focal) > 0.0) sorted.push_back(o);
  }
  std::sort(sorted.begin(), sorted.end(), [&](const Vec2& a, const Vec2& b) {
    return SquaredDistance(a, focal) < SquaredDistance(b, focal);
  });

  lines.reserve(sorted.size());
  half_dists.reserve(sorted.size());
  for (const Vec2& o : sorted) {
    lines.push_back(Line::Bisector(focal, o));  // Side < 0 <=> closer to t
    half_dists.push_back(0.5 * Distance(focal, o));
  }
}

}  // namespace

TopkRegion ComputeTopkRegion(const Vec2& focal,
                             const std::vector<Vec2>& others,
                             const ConvexPolygon& domain, int k) {
  std::vector<Line> lines;
  std::vector<double> half_dists;
  SortedBisectors(focal, others, lines, half_dists);
  return LevelRegionPruned(lines, domain, k, &focal, &half_dists);
}

TopkRegion ComputeTopkRegionUnpruned(const Vec2& focal,
                                     const std::vector<Vec2>& others,
                                     const ConvexPolygon& domain, int k) {
  std::vector<Line> lines;
  std::vector<double> half_dists;
  SortedBisectors(focal, others, lines, half_dists);
  return ComputeLevelRegionFromLinesUnpruned(lines, domain, k);
}

TopkRegionRefiner::TopkRegionRefiner(const ConvexPolygon& domain, int k)
    : k_(k), domain_(domain) {
  LBSAGG_CHECK_GE(k, 1);
  LBSAGG_CHECK(!domain.IsEmpty());
  area_eps_ = domain.Area() * 1e-14;
  bbox_ = domain.BoundingBox();
  margin_ = DomainScale(bbox_) * 1e-6;
  pieces_.push_back({domain, 0});
}

void TopkRegionRefiner::AddLine(const Line& line) {
  if (pieces_.empty()) return;
  if (bbox_dirty_) {
    bbox_ = PiecesBoundingBox(pieces_);
    bbox_dirty_ = false;
  }
  if (NegativeWithMargin(line, bbox_, margin_)) return;
  lines_.push_back(line);
  if (ApplyLine(pieces_, line, k_, area_eps_)) bbox_dirty_ = true;
}

void TopkRegionRefiner::AddPoints(const Vec2& focal,
                                  std::vector<Vec2> new_others) {
  std::sort(new_others.begin(), new_others.end(),
            [&](const Vec2& a, const Vec2& b) {
              return SquaredDistance(a, focal) < SquaredDistance(b, focal);
            });
  for (const Vec2& o : new_others) {
    if (SquaredDistance(o, focal) == 0.0) continue;
    AddLine(Line::Bisector(focal, o));
  }
}

TopkRegion TopkRegionRefiner::Region() const {
  return FinalizeRegion(pieces_, lines_, domain_, k_);
}

ConvexPolygon InscribedCirclePolygon(const Vec2& center, double radius,
                                     int sides) {
  LBSAGG_CHECK_GE(sides, 8);
  LBSAGG_CHECK_GT(radius, 0.0);
  std::vector<Vec2> vertices;
  vertices.reserve(sides);
  for (int i = 0; i < sides; ++i) {
    const double a = 2.0 * M_PI * i / sides;
    vertices.push_back(center + Vec2{std::cos(a), std::sin(a)} * radius);
  }
  return ConvexPolygon(std::move(vertices));
}

}  // namespace lbsagg
