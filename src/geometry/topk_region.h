#ifndef LBSAGG_GEOMETRY_TOPK_REGION_H_
#define LBSAGG_GEOMETRY_TOPK_REGION_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/line.h"
#include "geometry/polygon.h"
#include "geometry/vec2.h"
#include "util/rng.h"

namespace lbsagg {

// The top-k Voronoi cell V_k(t) of a focal point t with respect to a finite
// point set S (§2.2 of the paper): the set of query locations q inside the
// bounding box for which t ranks among the k nearest of S ∪ {t}.
//
// For k = 1 the region is the classic (convex) Voronoi cell. For k > 1 it
// may be concave (Figure 1 in the paper), so it is represented as a set of
// convex pieces that tile it exactly, plus its outer boundary edges.
//
// The pieces arise from the observation that the rank of t at q,
//     rank(q) = #{ s ∈ S : d(q,s) < d(q,t) },
// only depends on which side of each bisector B(t, s) the point q lies
// (DESIGN.md §4.1). The region { rank ≤ k-1 } is computed by recursively
// splitting the box by each bisector and pruning pieces whose
// closer-count reaches k.
struct TopkRegion {
  // Convex pieces tiling the region. For k = 1 there is exactly one piece
  // (or zero if the region is empty, which cannot happen when t is in the
  // box).
  std::vector<ConvexPolygon> pieces;

  // Outer boundary edges (including box edges and hole boundaries), in no
  // particular order. Collinear subdivision points may appear.
  std::vector<Segment> boundary_edges;

  // Total area of the region.
  double area = 0.0;

  bool IsEmpty() const { return pieces.empty(); }

  // Deduplicated endpoints of the boundary edges — the vertices used for the
  // Theorem-1 test loop.
  std::vector<Vec2> BoundaryVertices() const;

  // Uniform random point inside the region.
  Vec2 SamplePoint(Rng& rng) const;

  // Membership test via the pieces.
  bool Contains(const Vec2& p, double eps = 1e-9) const;

  // Tight bounding box of the region. Requires a non-empty region.
  Box BoundingBox() const;
};

// Number of points of `others` strictly closer to q than `focal` is.
int RankAt(const Vec2& q, const Vec2& focal, const std::vector<Vec2>& others);

// One convex piece of a level-region decomposition together with the number
// of lines whose positive side contains it. Internal representation shared
// by the batch computation and TopkRegionRefiner.
struct LevelPiece {
  ConvexPolygon poly;
  int closer_count = 0;
};

// Generalized level-set region over a line arrangement: the set of points of
// `box` lying on the positive side of fewer than k of the oriented `lines`.
//
// ComputeTopkRegion() is the special case where the lines are the bisectors
// B(focal, other) oriented with the focal side negative. The LNR algorithms
// (§4.2) call this directly with bisector lines *inferred* from ranked
// query answers, where the tuple positions themselves are unknown.
TopkRegion ComputeLevelRegionFromLines(const std::vector<Line>& lines,
                                       const Box& box, int k);

// As above, but over an arbitrary convex domain instead of a box. Used when
// the service enforces a maximum coverage radius d_max (§5.3): the inclusion
// region of a tuple is its top-k cell intersected with the d_max disc, which
// callers pass as a fine polygonal approximation.
TopkRegion ComputeLevelRegionFromLines(const std::vector<Line>& lines,
                                       const ConvexPolygon& domain, int k);

// Top-k cell over a convex domain (cell ∩ domain).
TopkRegion ComputeTopkRegion(const Vec2& focal, const std::vector<Vec2>& others,
                             const ConvexPolygon& domain, int k);

// Reference implementations without the spatial line pruning, used by tests
// to pin down that pruning never changes the result (DESIGN.md "Hot path &
// complexity" gives the no-op argument: a line whose negative half-plane
// contains the live bounding box with margin can split nothing and cannot
// flip any boundary probe, so dropping it is exact).
TopkRegion ComputeLevelRegionFromLinesUnpruned(const std::vector<Line>& lines,
                                               const ConvexPolygon& domain,
                                               int k);
TopkRegion ComputeTopkRegionUnpruned(const Vec2& focal,
                                     const std::vector<Vec2>& others,
                                     const ConvexPolygon& domain, int k);

// Incrementally maintains a level region as lines arrive across refinement
// rounds, re-clipping only the surviving pieces instead of recomputing the
// whole arrangement from scratch. Because lines are applied in arrival
// order rather than globally sorted, the piece decomposition (and hence
// boundary subdivision vertices) may differ from a batch recomputation; the
// region itself matches up to floating-point clipping accuracy. Callers
// that need bit-identical query traces must recompute from scratch instead
// (LrCellOptions::incremental_regions gates this).
class TopkRegionRefiner {
 public:
  // Requires k >= 1 and a non-empty convex domain.
  TopkRegionRefiner(const ConvexPolygon& domain, int k);

  // Applies one oriented line ({rank increments on the positive side}).
  // Lines that cannot intersect the live region are dropped (exact, see
  // above).
  void AddLine(const Line& line);

  // Adds the bisectors B(focal, other) for each new point, nearest first.
  // Points coincident with `focal` are ignored.
  void AddPoints(const Vec2& focal, std::vector<Vec2> new_others);

  bool IsEmpty() const { return pieces_.empty(); }
  size_t num_active_lines() const { return lines_.size(); }

  // Finalizes the current state into a region. Boundary extraction runs on
  // every call, so call once per refinement round, not per line.
  TopkRegion Region() const;

 private:
  int k_;
  double area_eps_ = 0.0;
  double margin_ = 0.0;
  ConvexPolygon domain_;
  std::vector<Line> lines_;  // active (non-pruned) lines, arrival order
  std::vector<LevelPiece> pieces_;
  Box bbox_;  // bounding box of `pieces_`, refreshed lazily
  bool bbox_dirty_ = false;
};

// Inscribed regular n-gon of the disc around `center` — the polygonal
// approximation of a d_max disc. The area defect vs the true disc is
// (2π³/3n²)·r², i.e. < 1e-4 relative for n = 256.
ConvexPolygon InscribedCirclePolygon(const Vec2& center, double radius,
                                     int sides = 256);

// Computes V_k(focal) with respect to `others`, clipped to `box`. Points of
// `others` coincident with `focal` are ignored. Requires k >= 1.
//
// The result is exact up to floating-point clipping accuracy. Complexity is
// O(P · m) splits where P is the number of surviving pieces (P = 1 for
// k = 1; small for the k ≤ 10 used by LBS interfaces).
TopkRegion ComputeTopkRegion(const Vec2& focal, const std::vector<Vec2>& others,
                             const Box& box, int k);

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_TOPK_REGION_H_
