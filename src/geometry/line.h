#ifndef LBSAGG_GEOMETRY_LINE_H_
#define LBSAGG_GEOMETRY_LINE_H_

#include <cmath>
#include <limits>
#include <optional>

#include "geometry/box.h"
#include "geometry/vec2.h"

namespace lbsagg {

// Infinite line in implicit form: { p : Dot(normal, p) == offset }.
// `normal` need not be unit length; all predicates are scale-invariant
// except distance helpers, which normalize on demand.
struct Line {
  Vec2 normal;
  double offset = 0.0;

  Line() = default;
  Line(Vec2 normal_in, double offset_in)
      : normal(normal_in), offset(offset_in) {}

  // Line through two distinct points.
  static Line Through(const Vec2& a, const Vec2& b) {
    const Vec2 n = Perp(b - a);
    return Line(n, Dot(n, a));
  }

  // Perpendicular bisector of the segment (a, b): the locus equidistant from
  // a and b. Its normal points from a toward b, so Side(a) < 0 < Side(b).
  static Line Bisector(const Vec2& a, const Vec2& b) {
    const Vec2 n = b - a;
    return Line(n, Dot(n, Midpoint(a, b)));
  }

  // Signed side value: negative on the side the normal points away from,
  // zero on the line, positive on the normal side. Not a distance unless the
  // normal is unit length.
  double Side(const Vec2& p) const { return Dot(normal, p) - offset; }

  // Euclidean distance from p to the line.
  double DistanceTo(const Vec2& p) const {
    return std::abs(Side(p)) / Norm(normal);
  }

  // Orthogonal projection of p onto the line.
  Vec2 Project(const Vec2& p) const {
    return p - normal * (Side(p) / SquaredNorm(normal));
  }

  // Direction of the line (perpendicular to the normal).
  Vec2 Direction() const { return Perp(normal); }

  // Angle of the line's direction in [0, pi).
  double Angle() const {
    const Vec2 d = Direction();
    double a = std::atan2(d.y, d.x);
    if (a < 0) a += M_PI;
    if (a >= M_PI) a -= M_PI;
    return a;
  }

  // Intersection with another line; nullopt if (nearly) parallel.
  std::optional<Vec2> Intersect(const Line& other) const {
    const double det = Cross(normal, other.normal);
    if (std::abs(det) < 1e-30) return std::nullopt;
    // Solve normal·p = offset, other.normal·p = other.offset by Cramer.
    const double x = (offset * other.normal.y - other.offset * normal.y) / det;
    const double y = (normal.x * other.offset - other.normal.x * offset) / det;
    return Vec2{x, y};
  }

  // Reflection of point p across the line.
  Vec2 Reflect(const Vec2& p) const {
    return p - normal * (2.0 * Side(p) / SquaredNorm(normal));
  }
};

// Segment between two points.
struct Segment {
  Vec2 a;
  Vec2 b;

  Segment() = default;
  Segment(Vec2 a_in, Vec2 b_in) : a(a_in), b(b_in) {}

  double Length() const { return Distance(a, b); }
  Vec2 Midpoint() const { return lbsagg::Midpoint(a, b); }
  Vec2 Lerp(double t) const { return a + (b - a) * t; }
};

// Half-line from `origin` in direction `dir` (need not be unit length).
struct Ray {
  Vec2 origin;
  Vec2 dir;

  Ray() = default;
  Ray(Vec2 origin_in, Vec2 dir_in) : origin(origin_in), dir(dir_in) {}

  Vec2 At(double t) const { return origin + dir * t; }

  // Largest t >= 0 such that At(t) stays inside `box`. Requires the origin to
  // be inside the box; returns 0 if the direction immediately exits.
  double ExitParam(const Box& box) const {
    double t_max = std::numeric_limits<double>::infinity();
    auto limit = [&](double o, double d, double lo, double hi) {
      if (d > 0) {
        t_max = std::min(t_max, (hi - o) / d);
      } else if (d < 0) {
        t_max = std::min(t_max, (lo - o) / d);
      }
    };
    limit(origin.x, dir.x, box.lo.x, box.hi.x);
    limit(origin.y, dir.y, box.lo.y, box.hi.y);
    if (!std::isfinite(t_max) || t_max < 0) return 0.0;
    return t_max;
  }
};

// Closed half-plane { p : Side(p) <= 0 }, i.e. the side of `line` the normal
// points away from. Clipping a convex polygon against half-planes is the
// basic operation of all Voronoi computations in the library: the Voronoi
// cell of `t` is the intersection of HalfPlane::Closer(t, t') over the other
// tuples t'.
struct HalfPlane {
  Line line;

  HalfPlane() = default;
  explicit HalfPlane(Line line_in) : line(line_in) {}

  // The half-plane of points at least as close to `a` as to `b`.
  static HalfPlane Closer(const Vec2& a, const Vec2& b) {
    return HalfPlane(Line::Bisector(a, b));
  }

  bool Contains(const Vec2& p, double eps = 0.0) const {
    return line.Side(p) <= eps;
  }
};

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_LINE_H_
