#ifndef LBSAGG_GEOMETRY_LOC_KEY_H_
#define LBSAGG_GEOMETRY_LOC_KEY_H_

#include <cmath>
#include <cstdint>
#include <cstddef>

#include "geometry/box.h"
#include "geometry/vec2.h"

namespace lbsagg {

// Quantized 2-D location key: the identity of a query/vertex location up to
// a grid resolution. Shared by the Voronoi refinement loops (deduplicating
// vertex queries within a cell computation) and the client-side query memo
// (deduplicating identical interface queries across cells and rounds) so
// both agree on what "the same location" means.
struct LocKey {
  int64_t x = 0;
  int64_t y = 0;
  bool operator==(const LocKey&) const = default;
};

// splitmix64 finalizer — full-avalanche 64-bit mix.
inline uint64_t SplitMix64(uint64_t v) {
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

// Hash-combines two 64-bit words through independent splitmix mixes. Unlike
// `x * C ^ y`, every input bit of *both* words avalanches into the result,
// so collinear / axis-aligned key patterns do not collide in buckets.
struct LocKeyHash {
  size_t operator()(const LocKey& k) const {
    const uint64_t hx = SplitMix64(static_cast<uint64_t>(k.x));
    const uint64_t hy = SplitMix64(static_cast<uint64_t>(k.y) ^ 0x6a09e667f3bcc909ull);
    return static_cast<size_t>(hx ^ (hy + 0x9e3779b97f4a7c15ull + (hx << 6) + (hx >> 2)));
  }
};

// Quantizes p onto a grid of pitch `grid`.
inline LocKey MakeLocKey(const Vec2& p, double grid) {
  return {static_cast<int64_t>(std::llround(p.x / grid)),
          static_cast<int64_t>(std::llround(p.y / grid))};
}

// The conventional dedup grid for a service region: ~1e-9 of the coordinate
// scale, the same resolution the refinement loops have always used.
inline double LocKeyGrid(const Box& box, double relative = 1e-9) {
  return std::max({1.0, std::abs(box.hi.x), std::abs(box.hi.y)}) * relative;
}

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_LOC_KEY_H_
