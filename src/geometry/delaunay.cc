#include "geometry/delaunay.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geometry/predicates.h"
#include "util/check.h"
#include "util/rng.h"

namespace lbsagg {

namespace {

// Super-triangle scale relative to the point span. Large enough that the
// synthetic vertices behave like points at infinity for every realistic
// circumcircle.
constexpr double kSuperScale = 1e5;

}  // namespace

Delaunay::Delaunay(const std::vector<Vec2>& points) : points_(points) {
  LBSAGG_CHECK_GE(points_.size(), 3u) << "Delaunay needs at least 3 points";

  // Enclosing super-triangle.
  Vec2 lo = points_[0], hi = points_[0];
  for (const Vec2& p : points_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  const Vec2 center = Midpoint(lo, hi);
  const double span = std::max({hi.x - lo.x, hi.y - lo.y, 1e-9});
  const double r = kSuperScale * span;
  super_[0] = center + Vec2{0.0, 2.0 * r};
  super_[1] = center + Vec2{-1.7320508075688772 * r, -r};
  super_[2] = center + Vec2{1.7320508075688772 * r, -r};

  Tri root;
  root.v[0] = -1;
  root.v[1] = -2;
  root.v[2] = -3;
  root.nbr[0] = root.nbr[1] = root.nbr[2] = -1;
  tris_.push_back(root);

  // Randomized insertion order for expected O(n) cavity sizes.
  std::vector<int> order(points_.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(0x5eedu ^ points_.size());
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.UniformInt(i)]);
  }

  int hint = 0;
  for (int idx : order) Insert(idx, &hint);

  // Build the neighbor lists over real vertices.
  neighbors_.assign(points_.size(), {});
  for (const Tri& t : tris_) {
    if (!t.alive) continue;
    for (int e = 0; e < 3; ++e) {
      const int a = t.v[(e + 1) % 3];
      const int b = t.v[(e + 2) % 3];
      if (a >= 0 && b >= 0) {
        neighbors_[a].push_back(b);
        neighbors_[b].push_back(a);
      }
    }
  }
  for (auto& list : neighbors_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

Vec2 Delaunay::VertexPos(int v) const {
  if (v >= 0) return points_[v];
  return super_[-v - 1];
}

int Delaunay::Locate(const Vec2& p, int hint) const {
  int cur = hint;
  if (cur < 0 || cur >= static_cast<int>(tris_.size()) || !tris_[cur].alive) {
    cur = -1;
    for (size_t i = tris_.size(); i-- > 0;) {
      if (tris_[i].alive) {
        cur = static_cast<int>(i);
        break;
      }
    }
    LBSAGG_CHECK_GE(cur, 0);
  }
  size_t steps = 0;
  const size_t max_steps = 64 + 8 * tris_.size();
  int start_edge = 0;
  while (true) {
    LBSAGG_CHECK_LT(steps++, max_steps) << "point location walk did not halt";
    const Tri& t = tris_[cur];
    int next = -1;
    for (int i = 0; i < 3; ++i) {
      const int e = (i + start_edge) % 3;
      const Vec2 a = VertexPos(t.v[(e + 1) % 3]);
      const Vec2 b = VertexPos(t.v[(e + 2) % 3]);
      if (Orient2d(a, b, p) < 0) {
        next = t.nbr[e];
        break;
      }
    }
    if (next < 0) return cur;
    cur = next;
    start_edge = static_cast<int>(steps % 3);
  }
}

bool Delaunay::InCircumcircle(const Tri& t, const Vec2& p) const {
  return InCircle(VertexPos(t.v[0]), VertexPos(t.v[1]), VertexPos(t.v[2]),
                  p) > 0;
}

void Delaunay::Insert(int point_index, int* hint) {
  const Vec2 p = points_[point_index];
  const int containing = Locate(p, *hint);

  for (int v : tris_[containing].v) {
    if (v >= 0) {
      LBSAGG_CHECK(points_[v] != p)
          << "duplicate point at index " << point_index
          << " — jitter the dataset into general position first";
    }
  }

  // Grow the cavity of triangles whose circumcircle contains p.
  std::vector<int> bad;
  std::vector<int> stack = {containing};
  std::vector<char> in_bad(tris_.size(), 0);
  in_bad[containing] = 1;
  while (!stack.empty()) {
    const int ti = stack.back();
    stack.pop_back();
    bad.push_back(ti);
    for (int e = 0; e < 3; ++e) {
      const int nb = tris_[ti].nbr[e];
      if (nb < 0 || in_bad[nb]) continue;
      if (InCircumcircle(tris_[nb], p)) {
        in_bad[nb] = 1;
        stack.push_back(nb);
      }
    }
  }

  // Collect the boundary edges of the cavity in triangle orientation.
  struct BoundaryEdge {
    int a, b;     // directed edge (CCW along the cavity boundary)
    int outside;  // triangle beyond the edge, or -1
  };
  std::vector<BoundaryEdge> boundary;
  for (int ti : bad) {
    const Tri& t = tris_[ti];
    for (int e = 0; e < 3; ++e) {
      const int nb = t.nbr[e];
      if (nb >= 0 && in_bad[nb]) continue;
      boundary.push_back({t.v[(e + 1) % 3], t.v[(e + 2) % 3], nb});
    }
  }
  LBSAGG_CHECK_GE(boundary.size(), 3u);

  for (int ti : bad) tris_[ti].alive = false;

  // Retriangulate the star of p. Spoke linking: spokes[vertex] remembers the
  // new triangle incident to the directed spoke (p -> vertex).
  struct Spoke {
    int tri = -1;
    int edge = -1;
  };
  std::vector<std::pair<int, Spoke>> open_spokes;  // keyed by far vertex
  auto find_spoke = [&](int v) -> Spoke* {
    for (auto& [key, spoke] : open_spokes) {
      if (key == v && spoke.tri >= 0) return &spoke;
    }
    return nullptr;
  };

  int first_new = -1;
  for (const BoundaryEdge& be : boundary) {
    Tri nt;
    nt.v[0] = point_index;
    nt.v[1] = be.a;
    nt.v[2] = be.b;
    nt.nbr[0] = be.outside;  // across edge (a, b)
    nt.nbr[1] = -1;          // across edge (b, p) — spoke to b
    nt.nbr[2] = -1;          // across edge (p, a) — spoke to a
    const int nt_index = static_cast<int>(tris_.size());
    if (first_new < 0) first_new = nt_index;

    if (be.outside >= 0) {
      Tri& out = tris_[be.outside];
      for (int e = 0; e < 3; ++e) {
        const int oa = out.v[(e + 1) % 3];
        const int ob = out.v[(e + 2) % 3];
        if ((oa == be.b && ob == be.a) || (oa == be.a && ob == be.b)) {
          out.nbr[e] = nt_index;
          break;
        }
      }
    }

    // Link the two spokes with previously created new triangles.
    for (int side = 1; side <= 2; ++side) {
      const int far = (side == 1) ? be.b : be.a;
      if (Spoke* other = find_spoke(far)) {
        nt.nbr[side] = other->tri;
        tris_[other->tri].nbr[other->edge] = nt_index;
        other->tri = -1;  // consumed
      } else {
        open_spokes.push_back({far, Spoke{nt_index, side}});
      }
    }
    tris_.push_back(nt);
  }

  for (const auto& [key, spoke] : open_spokes) {
    LBSAGG_CHECK_EQ(spoke.tri, -1) << "unmatched cavity spoke";
  }
  *hint = first_new;
}

const std::vector<int>& Delaunay::Neighbors(int i) const {
  LBSAGG_CHECK_GE(i, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(i), neighbors_.size());
  return neighbors_[i];
}

std::vector<std::array<int, 3>> Delaunay::Triangles() const {
  std::vector<std::array<int, 3>> out;
  for (const Tri& t : tris_) {
    if (!t.alive) continue;
    if (t.v[0] < 0 || t.v[1] < 0 || t.v[2] < 0) continue;
    out.push_back({t.v[0], t.v[1], t.v[2]});
  }
  return out;
}

}  // namespace lbsagg
