#ifndef LBSAGG_GEOMETRY_CIRCLE_H_
#define LBSAGG_GEOMETRY_CIRCLE_H_

#include <cmath>
#include <vector>

#include "geometry/vec2.h"

namespace lbsagg {

// Circle (disc) with center and radius. Used by the lower-bound region of
// §3.2.4: a confirmed Voronoi vertex v of tuple t certifies that the disc
// C(v, d(v,t)) contains no unseen tuple.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  Circle() = default;
  Circle(Vec2 center_in, double radius_in)
      : center(center_in), radius(radius_in) {}

  bool Contains(const Vec2& p) const {
    return SquaredDistance(center, p) <= radius * radius;
  }

  // True if the disc `inner` lies entirely inside this disc:
  // d(centers) + r_inner <= r_outer.
  bool ContainsDisc(const Circle& inner) const {
    return Distance(center, inner.center) + inner.radius <= radius;
  }

  double Area() const { return M_PI * radius * radius; }
};

// Safe (sufficient, not necessary) test that the disc `probe` is covered by
// the union of `cover`. Returns true only when `probe` fits entirely inside
// a single covering disc. Used for the §3.2.4 lower bound where a false
// negative merely costs one extra query, while a false positive would break
// unbiasedness.
inline bool DiscCoveredBySingle(const Circle& probe,
                                const std::vector<Circle>& cover) {
  for (const Circle& c : cover) {
    if (c.ContainsDisc(probe)) return true;
  }
  return false;
}

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_CIRCLE_H_
