#ifndef LBSAGG_GEOMETRY_POLYGON_H_
#define LBSAGG_GEOMETRY_POLYGON_H_

#include <optional>
#include <vector>

#include "geometry/box.h"
#include "geometry/line.h"
#include "geometry/vec2.h"
#include "util/rng.h"

namespace lbsagg {

// Convex polygon with counter-clockwise vertex order.
//
// This is the representation of (top-1) Voronoi cells and of the convex
// pieces that tile a top-k Voronoi cell. The key operation is Clip(): the
// Voronoi cell of tuple t within point set S is
//     Box → Clip(Closer(t, s1)) → Clip(Closer(t, s2)) → …
// exactly as in Algorithm 3 of the paper ("perpendicular bisector half plane
// approach").
class ConvexPolygon {
 public:
  // Empty polygon.
  ConvexPolygon() = default;

  // Polygon from counter-clockwise vertices. Degenerate inputs (fewer than 3
  // distinct vertices) produce an empty polygon.
  explicit ConvexPolygon(std::vector<Vec2> vertices);

  // The four corners of a box.
  static ConvexPolygon FromBox(const Box& box);

  bool IsEmpty() const { return vertices_.size() < 3; }
  const std::vector<Vec2>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }

  // Signed area is always >= 0 because vertices are CCW.
  double Area() const;

  // Centroid (area-weighted). Requires a non-empty polygon.
  Vec2 Centroid() const;

  // Point-in-polygon test (closed polygon; boundary counts as inside up to
  // `eps` slack in the half-plane side values).
  bool Contains(const Vec2& p, double eps = 1e-9) const;

  // Intersects the polygon with the closed half-plane; returns the clipped
  // polygon (possibly empty). Sutherland–Hodgman against one plane.
  ConvexPolygon Clip(const HalfPlane& hp, double eps = 0.0) const;

  // Splits the polygon by the line into (negative side, positive side),
  // matching HalfPlane semantics: `first` is where Side(p) <= 0. Either part
  // may be empty.
  std::pair<ConvexPolygon, ConvexPolygon> Split(const Line& line,
                                                double eps = 0.0) const;

  // Uniform random point inside the polygon (fan triangulation + warped
  // barycentric sampling). Requires a non-empty polygon.
  Vec2 SamplePoint(Rng& rng) const;

  // Tight axis-aligned bounding box. Requires a non-empty polygon.
  Box BoundingBox() const;

  // Convex hull of arbitrary points (Andrew monotone chain). Collinear
  // points on the hull boundary are dropped.
  static ConvexPolygon ConvexHull(std::vector<Vec2> points);

  // Largest distance from `p` to any vertex; 0 for empty polygons.
  double MaxDistanceFrom(const Vec2& p) const;

  // Removes near-duplicate consecutive vertices (within `eps`). Called by
  // the constructor; exposed for polygons assembled manually.
  void Normalize(double eps = 1e-12);

 private:
  std::vector<Vec2> vertices_;
};

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_POLYGON_H_
