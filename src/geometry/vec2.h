#ifndef LBSAGG_GEOMETRY_VEC2_H_
#define LBSAGG_GEOMETRY_VEC2_H_

#include <cmath>
#include <ostream>

namespace lbsagg {

// 2-D point / vector with double coordinates. This is the coordinate type of
// every location in the library: tuple positions, query points, polygon
// vertices.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  friend constexpr bool operator==(const Vec2& a, const Vec2& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(const Vec2& a, const Vec2& b) {
    return !(a == b);
  }

  friend constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }
  friend std::ostream& operator<<(std::ostream& os, const Vec2& v) {
    return os << "(" << v.x << ", " << v.y << ")";
  }
};

// Dot product.
constexpr double Dot(const Vec2& a, const Vec2& b) {
  return a.x * b.x + a.y * b.y;
}

// 2-D cross product (z-component of the 3-D cross product).
constexpr double Cross(const Vec2& a, const Vec2& b) {
  return a.x * b.y - a.y * b.x;
}

inline double SquaredNorm(const Vec2& v) { return Dot(v, v); }
inline double Norm(const Vec2& v) { return std::sqrt(SquaredNorm(v)); }

inline double SquaredDistance(const Vec2& a, const Vec2& b) {
  return SquaredNorm(a - b);
}
inline double Distance(const Vec2& a, const Vec2& b) { return Norm(a - b); }

// Unit vector in the direction of v. Requires |v| > 0.
inline Vec2 Normalized(const Vec2& v) { return v / Norm(v); }

// v rotated 90° counter-clockwise.
constexpr Vec2 Perp(const Vec2& v) { return {-v.y, v.x}; }

// v rotated by `angle` radians counter-clockwise.
inline Vec2 Rotated(const Vec2& v, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {c * v.x - s * v.y, s * v.x + c * v.y};
}

// Midpoint of the segment (a, b).
constexpr Vec2 Midpoint(const Vec2& a, const Vec2& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_VEC2_H_
