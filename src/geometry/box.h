#ifndef LBSAGG_GEOMETRY_BOX_H_
#define LBSAGG_GEOMETRY_BOX_H_

#include <algorithm>

#include "geometry/vec2.h"
#include "util/check.h"
#include "util/rng.h"

namespace lbsagg {

// Axis-aligned bounding box. The paper's region of interest `B` / `V0` —
// every Voronoi cell is implicitly clipped to a Box so that its area is
// finite (Definition 1).
struct Box {
  Vec2 lo;
  Vec2 hi;

  Box() = default;
  Box(Vec2 lo_in, Vec2 hi_in) : lo(lo_in), hi(hi_in) {
    LBSAGG_CHECK_LE(lo.x, hi.x);
    LBSAGG_CHECK_LE(lo.y, hi.y);
  }

  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
  double Area() const { return width() * height(); }
  double Perimeter() const { return 2.0 * (width() + height()); }
  Vec2 Center() const { return Midpoint(lo, hi); }

  bool Contains(const Vec2& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  // Strict interior test with margin `eps`.
  bool ContainsInterior(const Vec2& p, double eps = 0.0) const {
    return p.x > lo.x + eps && p.x < hi.x - eps && p.y > lo.y + eps &&
           p.y < hi.y - eps;
  }

  // The four corners in counter-clockwise order starting at lo.
  void Corners(Vec2 out[4]) const {
    out[0] = lo;
    out[1] = {hi.x, lo.y};
    out[2] = hi;
    out[3] = {lo.x, hi.y};
  }

  // Grows the box symmetrically by `margin` on every side.
  Box Expanded(double margin) const {
    return Box({lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin});
  }

  // Smallest box containing both this box and `p`.
  Box Including(const Vec2& p) const {
    return Box({std::min(lo.x, p.x), std::min(lo.y, p.y)},
               {std::max(hi.x, p.x), std::max(hi.y, p.y)});
  }

  // Uniform random point inside the box.
  Vec2 SamplePoint(Rng& rng) const {
    return {rng.Uniform(lo.x, hi.x), rng.Uniform(lo.y, hi.y)};
  }

  // Clamps p into the box.
  Vec2 Clamp(const Vec2& p) const {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y)};
  }
};

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_BOX_H_
