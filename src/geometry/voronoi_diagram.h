#ifndef LBSAGG_GEOMETRY_VORONOI_DIAGRAM_H_
#define LBSAGG_GEOMETRY_VORONOI_DIAGRAM_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/polygon.h"
#include "geometry/vec2.h"

namespace lbsagg {

// Which Delaunay construction derives the neighbor sets.
enum class VoronoiBackend {
  kDelaunay,  // incremental Bowyer–Watson (robust; the default)
  kFortune,   // Fortune's sweep line (§3.2.2's named alternative)
};

// Complete (top-1) Voronoi decomposition of a point set, clipped to a box —
// Definition 1 of the paper with the B-bound making every cell finite.
//
// Built from the Delaunay triangulation: the Voronoi cell of point i is the
// box clipped by the bisectors with its Delaunay neighbors, which are
// exactly its Voronoi neighbors. Used for ground truth in tests and for the
// Figure-11 decomposition benchmark.
class VoronoiDiagram {
 public:
  // Computes all cells. Points must be distinct and at least 3.
  static VoronoiDiagram Build(const std::vector<Vec2>& points, const Box& box,
                              VoronoiBackend backend = VoronoiBackend::kDelaunay);

  size_t size() const { return cells_.size(); }
  const ConvexPolygon& Cell(int i) const { return cells_[i]; }
  const std::vector<ConvexPolygon>& cells() const { return cells_; }
  const std::vector<int>& Neighbors(int i) const { return neighbors_[i]; }
  const Box& box() const { return box_; }

  // Sum of all cell areas; equals box.Area() up to clipping error (the cells
  // partition the box — a property test asserts this).
  double TotalArea() const;

 private:
  VoronoiDiagram() = default;

  Box box_;
  std::vector<ConvexPolygon> cells_;
  std::vector<std::vector<int>> neighbors_;
};

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_VORONOI_DIAGRAM_H_
