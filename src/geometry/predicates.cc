#include "geometry/predicates.h"

#include <cmath>

#include "util/check.h"

namespace lbsagg {

namespace {

// Error coefficients follow Shewchuk's analysis of the naive expressions;
// the constants are slightly conservative.
constexpr double kOrientErrBound = 3.3306690738754716e-16;   // ~ 3 ulp
constexpr double kInCircleErrBound = 1.1102230246251565e-14;  // conservative

int SignWithExtended(long double v) {
  if (v > 0) return 1;
  if (v < 0) return -1;
  return 0;
}

}  // namespace

int Orient2d(const Vec2& a, const Vec2& b, const Vec2& c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;
  const double detsum = std::abs(detleft) + std::abs(detright);
  if (std::abs(det) > kOrientErrBound * detsum) return det > 0 ? 1 : -1;

  // Recompute in extended precision.
  const long double ax = a.x, ay = a.y, bx = b.x, by = b.y, cx = c.x, cy = c.y;
  const long double d =
      (ax - cx) * (by - cy) - (ay - cy) * (bx - cx);
  return SignWithExtended(d);
}

int InCircle(const Vec2& a, const Vec2& b, const Vec2& c, const Vec2& d) {
  const double adx = a.x - d.x, ady = a.y - d.y;
  const double bdx = b.x - d.x, bdy = b.y - d.y;
  const double cdx = c.x - d.x, cdy = c.y - d.y;

  const double ad2 = adx * adx + ady * ady;
  const double bd2 = bdx * bdx + bdy * bdy;
  const double cd2 = cdx * cdx + cdy * cdy;

  const double det = adx * (bdy * cd2 - cdy * bd2) -
                     ady * (bdx * cd2 - cdx * bd2) +
                     ad2 * (bdx * cdy - cdx * bdy);

  const double permanent = (std::abs(bdy * cd2) + std::abs(cdy * bd2)) * std::abs(adx) +
                           (std::abs(bdx * cd2) + std::abs(cdx * bd2)) * std::abs(ady) +
                           (std::abs(bdx * cdy) + std::abs(cdx * bdy)) * ad2;
  if (std::abs(det) > kInCircleErrBound * permanent) return det > 0 ? 1 : -1;

  // Extended precision fallback.
  const long double ladx = adx, lady = ady, lbdx = bdx, lbdy = bdy,
                    lcdx = cdx, lcdy = cdy;
  const long double lad2 = ladx * ladx + lady * lady;
  const long double lbd2 = lbdx * lbdx + lbdy * lbdy;
  const long double lcd2 = lcdx * lcdx + lcdy * lcdy;
  const long double ldet = ladx * (lbdy * lcd2 - lcdy * lbd2) -
                           lady * (lbdx * lcd2 - lcdx * lbd2) +
                           lad2 * (lbdx * lcdy - lcdx * lbdy);
  return SignWithExtended(ldet);
}

Vec2 Circumcenter(const Vec2& a, const Vec2& b, const Vec2& c) {
  const long double ax = a.x, ay = a.y;
  const long double bx = b.x - ax, by = b.y - ay;
  const long double cx = c.x - ax, cy = c.y - ay;
  const long double d = 2.0L * (bx * cy - by * cx);
  LBSAGG_CHECK_NE(d, 0.0L) << "Circumcenter of collinear points";
  const long double b2 = bx * bx + by * by;
  const long double c2 = cx * cx + cy * cy;
  const long double ux = (cy * b2 - by * c2) / d;
  const long double uy = (bx * c2 - cx * b2) / d;
  return {static_cast<double>(ux + ax), static_cast<double>(uy + ay)};
}

}  // namespace lbsagg
