#ifndef LBSAGG_GEOMETRY_PREDICATES_H_
#define LBSAGG_GEOMETRY_PREDICATES_H_

#include "geometry/vec2.h"

namespace lbsagg {

// Geometric predicates used by the Delaunay triangulation. They are
// implemented with long double accumulation plus a forward error bound: when
// the double-precision result is safely away from zero it is returned
// directly; otherwise the computation is repeated in extended precision.
// This is not Shewchuk-exact, but combined with the general-position
// jittering applied by the triangulator it is reliable for every workload in
// this repository (the paper likewise assumes general positioning, §2.2).

// Sign of the signed area of triangle (a, b, c): > 0 if counter-clockwise,
// < 0 if clockwise, 0 if collinear (within extended precision).
int Orient2d(const Vec2& a, const Vec2& b, const Vec2& c);

// In-circle test: > 0 if d lies strictly inside the circumcircle of the
// counter-clockwise triangle (a, b, c); < 0 outside; 0 on the circle.
int InCircle(const Vec2& a, const Vec2& b, const Vec2& c, const Vec2& d);

// Circumcenter of triangle (a, b, c). Requires the points to be
// non-collinear.
Vec2 Circumcenter(const Vec2& a, const Vec2& b, const Vec2& c);

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_PREDICATES_H_
