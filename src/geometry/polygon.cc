#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lbsagg {

ConvexPolygon::ConvexPolygon(std::vector<Vec2> vertices)
    : vertices_(std::move(vertices)) {
  Normalize();
}

ConvexPolygon ConvexPolygon::FromBox(const Box& box) {
  Vec2 corners[4];
  box.Corners(corners);
  return ConvexPolygon({corners[0], corners[1], corners[2], corners[3]});
}

void ConvexPolygon::Normalize(double eps) {
  if (vertices_.size() < 3) {
    vertices_.clear();
    return;
  }
  std::vector<Vec2> cleaned;
  cleaned.reserve(vertices_.size());
  for (const Vec2& v : vertices_) {
    if (cleaned.empty() || Distance(cleaned.back(), v) > eps) {
      cleaned.push_back(v);
    }
  }
  while (cleaned.size() >= 2 &&
         Distance(cleaned.front(), cleaned.back()) <= eps) {
    cleaned.pop_back();
  }
  if (cleaned.size() < 3) cleaned.clear();
  vertices_ = std::move(cleaned);
}

double ConvexPolygon::Area() const {
  if (IsEmpty()) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[(i + 1) % vertices_.size()];
    twice += Cross(a, b);
  }
  return 0.5 * std::abs(twice);
}

Vec2 ConvexPolygon::Centroid() const {
  LBSAGG_CHECK(!IsEmpty());
  double twice = 0.0;
  Vec2 acc{0.0, 0.0};
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[(i + 1) % vertices_.size()];
    const double c = Cross(a, b);
    twice += c;
    acc += (a + b) * c;
  }
  if (std::abs(twice) < 1e-300) {
    // Degenerate sliver: fall back to the vertex average.
    Vec2 sum{0.0, 0.0};
    for (const Vec2& v : vertices_) sum += v;
    return sum / static_cast<double>(vertices_.size());
  }
  return acc / (3.0 * twice);
}

bool ConvexPolygon::Contains(const Vec2& p, double eps) const {
  if (IsEmpty()) return false;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Vec2& a = vertices_[i];
    const Vec2& b = vertices_[(i + 1) % vertices_.size()];
    // CCW polygon: interior is to the left of every edge.
    if (Cross(b - a, p - a) < -eps * Distance(a, b)) return false;
  }
  return true;
}

ConvexPolygon ConvexPolygon::Clip(const HalfPlane& hp, double eps) const {
  if (IsEmpty()) return {};
  std::vector<Vec2> out;
  out.reserve(vertices_.size() + 1);
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Vec2& cur = vertices_[i];
    const Vec2& nxt = vertices_[(i + 1) % n];
    const double s_cur = hp.line.Side(cur);
    const double s_nxt = hp.line.Side(nxt);
    const bool in_cur = s_cur <= eps;
    const bool in_nxt = s_nxt <= eps;
    if (in_cur) out.push_back(cur);
    if (in_cur != in_nxt) {
      const double denom = s_cur - s_nxt;
      if (std::abs(denom) > 1e-300) {
        const double t = s_cur / denom;
        out.push_back(cur + (nxt - cur) * t);
      }
    }
  }
  return ConvexPolygon(std::move(out));
}

std::pair<ConvexPolygon, ConvexPolygon> ConvexPolygon::Split(
    const Line& line, double eps) const {
  ConvexPolygon neg = Clip(HalfPlane(line), eps);
  ConvexPolygon pos = Clip(HalfPlane(Line(-line.normal, -line.offset)), eps);
  return {std::move(neg), std::move(pos)};
}

Vec2 ConvexPolygon::SamplePoint(Rng& rng) const {
  LBSAGG_CHECK(!IsEmpty());
  // Fan triangulation from vertex 0; pick a triangle proportional to area.
  const size_t n = vertices_.size();
  std::vector<double> areas(n - 2);
  for (size_t i = 1; i + 1 < n; ++i) {
    areas[i - 1] =
        0.5 * std::abs(Cross(vertices_[i] - vertices_[0],
                             vertices_[i + 1] - vertices_[0]));
  }
  double total = 0.0;
  for (double a : areas) total += a;
  size_t tri = 0;
  if (total > 0.0) {
    tri = rng.Categorical(areas);
  }
  const Vec2& a = vertices_[0];
  const Vec2& b = vertices_[tri + 1];
  const Vec2& c = vertices_[tri + 2];
  double u = rng.Uniform01();
  double v = rng.Uniform01();
  if (u + v > 1.0) {
    u = 1.0 - u;
    v = 1.0 - v;
  }
  return a + (b - a) * u + (c - a) * v;
}

Box ConvexPolygon::BoundingBox() const {
  LBSAGG_CHECK(!IsEmpty());
  Vec2 lo = vertices_[0];
  Vec2 hi = vertices_[0];
  for (const Vec2& v : vertices_) {
    lo.x = std::min(lo.x, v.x);
    lo.y = std::min(lo.y, v.y);
    hi.x = std::max(hi.x, v.x);
    hi.y = std::max(hi.y, v.y);
  }
  return Box(lo, hi);
}

ConvexPolygon ConvexPolygon::ConvexHull(std::vector<Vec2> points) {
  if (points.size() < 3) return {};
  std::sort(points.begin(), points.end(), [](const Vec2& a, const Vec2& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() < 3) return {};
  const size_t n = points.size();
  std::vector<Vec2> hull(2 * n);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && Cross(hull[k - 1] - hull[k - 2],
                           points[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {  // upper hull
    while (k >= lower && Cross(hull[k - 1] - hull[k - 2],
                               points[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  return ConvexPolygon(std::move(hull));
}

double ConvexPolygon::MaxDistanceFrom(const Vec2& p) const {
  double best = 0.0;
  for (const Vec2& v : vertices_) best = std::max(best, Distance(p, v));
  return best;
}

}  // namespace lbsagg
