#ifndef LBSAGG_GEOMETRY_DELAUNAY_H_
#define LBSAGG_GEOMETRY_DELAUNAY_H_

#include <array>
#include <vector>

#include "geometry/vec2.h"

namespace lbsagg {

// Delaunay triangulation via randomized incremental insertion
// (Bowyer–Watson) with walk-based point location.
//
// The library uses it as the ground-truth oracle: the Voronoi neighbors of a
// point are exactly its Delaunay neighbors, so the exact Voronoi cell of
// point i is the bounding box clipped by the bisectors with Neighbors(i)
// only — O(n log n) for a whole decomposition instead of the naive O(n²)
// (Figure 11 needs every cell of a 10⁴-point dataset).
class Delaunay {
 public:
  // Triangulates `points`. Points must be distinct; exact duplicates are
  // rejected with a check failure (the paper's general-position assumption —
  // dataset generators jitter duplicates away before calling this).
  explicit Delaunay(const std::vector<Vec2>& points);

  size_t num_points() const { return points_.size(); }
  const std::vector<Vec2>& points() const { return points_; }

  // Indices of the Delaunay neighbors of point i (unordered).
  const std::vector<int>& Neighbors(int i) const;

  // All finite triangles as triples of point indices (CCW).
  std::vector<std::array<int, 3>> Triangles() const;

 private:
  struct Tri {
    int v[3];    // vertex indices; negative = super-triangle vertex
    int nbr[3];  // nbr[i] is across the edge opposite v[i]; -1 = none
    bool alive = true;
  };

  Vec2 VertexPos(int v) const;
  int Locate(const Vec2& p, int hint) const;
  bool InCircumcircle(const Tri& t, const Vec2& p) const;
  void Insert(int point_index, int* hint);

  std::vector<Vec2> points_;
  Vec2 super_[3];
  std::vector<Tri> tris_;
  std::vector<std::vector<int>> neighbors_;
};

}  // namespace lbsagg

#endif  // LBSAGG_GEOMETRY_DELAUNAY_H_
