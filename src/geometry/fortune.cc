#include "geometry/fortune.h"

#include <algorithm>
#include <cmath>
#include <list>
#include <queue>
#include <set>
#include <unordered_map>

#include "geometry/predicates.h"
#include "util/check.h"

namespace lbsagg {

namespace {

// Parabola of points equidistant from `site` and the horizontal directrix
// y = d (site above the directrix).
double ParabolaY(const Vec2& site, double d, double x) {
  const double dy = site.y - d;
  if (dy <= 0) return site.y;  // degenerate: vertical ray at site.x
  const double dx = x - site.x;
  return dx * dx / (2.0 * dy) + (site.y + d) / 2.0;
}

}  // namespace

FortuneSweep::FortuneSweep(const std::vector<Vec2>& points)
    : points_(points) {
  LBSAGG_CHECK_GE(points_.size(), 2u);

  struct Arc {
    int site;
    uint64_t stamp = 0;  // bumped whenever the arc's circle event dies
  };
  using Beach = std::list<Arc>;
  Beach beach;

  struct Event {
    double y;  // processed in decreasing order
    bool is_site;
    int site = -1;       // site events
    uint64_t stamp = 0;  // circle events: key into the live-event registry
  };
  struct EventLess {
    bool operator()(const Event& a, const Event& b) const {
      if (a.y != b.y) return a.y < b.y;  // max-heap on y
      return a.is_site < b.is_site;     // site events first on ties
    }
  };
  std::priority_queue<Event, std::vector<Event>, EventLess> events;

  double scale = 1.0;
  for (size_t i = 0; i < points_.size(); ++i) {
    scale = std::max({scale, std::abs(points_[i].x), std::abs(points_[i].y)});
    for (size_t j = i + 1; j < points_.size(); ++j) {
      LBSAGG_CHECK(points_[i] != points_[j])
          << "duplicate site at index " << j;
    }
    Event e;
    e.y = points_[i].y;
    e.is_site = true;
    e.site = static_cast<int>(i);
    events.push(e);
  }
  const double eps = scale * 1e-12;

  std::set<std::pair<int, int>> edge_set;
  auto add_edge = [&](int a, int b) {
    if (a == b) return;
    edge_set.insert({std::min(a, b), std::max(a, b)});
  };

  uint64_t stamp_counter = 0;
  // Registry of live circle events: stamp → the arc that would vanish.
  // Events in the queue carry only the stamp, so a stale event can be
  // recognized without touching a possibly-erased iterator.
  std::unordered_map<uint64_t, Beach::iterator> scheduled;
  auto cancel_event = [&](Beach::iterator it) {
    if (it->stamp != 0) {
      scheduled.erase(it->stamp);
      it->stamp = 0;
    }
  };

  // Breakpoint between the left arc of `p` and the right arc of `q` at
  // directrix d: the parabola intersection where the lower envelope hands
  // over from p (left) to q (right) — selected numerically, which is
  // immune to the usual root-choice sign errors.
  auto breakpoint_x = [&](const Vec2& p, const Vec2& q, double d) {
    if (std::abs(p.y - q.y) < eps) return (p.x + q.x) / 2.0;
    if (p.y - d < eps) return p.x;  // p's arc is a vertical sliver
    if (q.y - d < eps) return q.x;
    const double z1 = 2.0 * (p.y - d);
    const double z2 = 2.0 * (q.y - d);
    const double a = 1.0 / z1 - 1.0 / z2;
    const double b = -2.0 * (p.x / z1 - q.x / z2);
    const double c = (p.x * p.x + p.y * p.y - d * d) / z1 -
                     (q.x * q.x + q.y * q.y - d * d) / z2;
    const double disc = std::max(0.0, b * b - 4.0 * a * c);
    const double root = std::sqrt(disc);
    const double x1 = (-b + root) / (2.0 * a);
    const double x2 = (-b - root) / (2.0 * a);
    const double h = std::max(eps * 1e3, 1e-9 * (std::abs(x1) + 1.0));
    for (const double x : {x1, x2}) {
      if (ParabolaY(p, d, x - h) <= ParabolaY(q, d, x - h) + eps &&
          ParabolaY(p, d, x + h) + eps >= ParabolaY(q, d, x + h)) {
        return x;
      }
    }
    return x1;  // degenerate tie: either root works
  };

  // Schedules a circle event for the arc at `it` if its neighbors converge.
  auto check_circle = [&](Beach::iterator it, double sweep_y) {
    if (it == beach.begin()) return;
    const auto prev = std::prev(it);
    const auto next = std::next(it);
    if (next == beach.end()) return;
    const int a = prev->site, b = it->site, c = next->site;
    if (a == b || b == c || a == c) return;
    // Breakpoints converge only for a right turn a → b → c.
    if (Orient2d(points_[a], points_[b], points_[c]) >= 0) return;
    const Vec2 center = Circumcenter(points_[a], points_[b], points_[c]);
    const double radius = Distance(center, points_[b]);
    const double event_y = center.y - radius;
    if (event_y > sweep_y + eps) return;  // already passed
    cancel_event(it);
    it->stamp = ++stamp_counter;
    scheduled.emplace(it->stamp, it);
    Event e;
    e.y = event_y;
    e.is_site = false;
    e.stamp = it->stamp;
    events.push(e);
  };

  while (!events.empty()) {
    const Event e = events.top();
    events.pop();

    if (e.is_site) {
      const int s = e.site;
      const Vec2& sp = points_[s];
      if (beach.empty()) {
        beach.push_back({s});
        continue;
      }
      // Find the arc vertically above the new site: walk the breakpoints
      // until one passes the site's x.
      Beach::iterator above = beach.begin();
      while (std::next(above) != beach.end()) {
        const double bp = breakpoint_x(
            points_[above->site], points_[std::next(above)->site], sp.y);
        if (sp.x <= bp) break;
        ++above;
      }
      // Kill the split arc's circle event and split it in three.
      cancel_event(above);
      const int old_site = above->site;
      // beach: ... [above(old)] ... → ... [old] [s] [old] ...
      const auto right = beach.insert(std::next(above), {old_site});
      beach.insert(right, {s});
      add_edge(s, old_site);
      check_circle(above, sp.y);
      check_circle(right, sp.y);
      continue;
    }

    // Circle event: drop the shrinking arc if the event is still live.
    const auto entry = scheduled.find(e.stamp);
    if (entry == scheduled.end()) continue;  // stale
    Beach::iterator arc = entry->second;
    scheduled.erase(entry);
    arc->stamp = 0;
    LBSAGG_CHECK(arc != beach.begin());
    const auto prev = std::prev(arc);
    const auto next = std::next(arc);
    LBSAGG_CHECK(next != beach.end());
    triangles_.push_back({prev->site, arc->site, next->site});
    add_edge(prev->site, arc->site);
    add_edge(arc->site, next->site);
    add_edge(prev->site, next->site);
    cancel_event(prev);
    cancel_event(next);
    beach.erase(arc);
    check_circle(prev, e.y);
    check_circle(next, e.y);
  }

  neighbors_.assign(points_.size(), {});
  for (const auto& [a, b] : edge_set) {
    neighbors_[a].push_back(b);
    neighbors_[b].push_back(a);
  }
  for (auto& list : neighbors_) std::sort(list.begin(), list.end());
}

const std::vector<int>& FortuneSweep::Neighbors(int i) const {
  LBSAGG_CHECK_GE(i, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(i), neighbors_.size());
  return neighbors_[i];
}

}  // namespace lbsagg
