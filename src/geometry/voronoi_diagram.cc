#include "geometry/voronoi_diagram.h"

#include "geometry/delaunay.h"
#include "geometry/fortune.h"
#include "geometry/line.h"
#include "util/check.h"

namespace lbsagg {

VoronoiDiagram VoronoiDiagram::Build(const std::vector<Vec2>& points,
                                     const Box& box, VoronoiBackend backend) {
  LBSAGG_CHECK_GE(points.size(), 3u);
  std::vector<std::vector<int>> neighbors(points.size());
  if (backend == VoronoiBackend::kDelaunay) {
    const Delaunay delaunay(points);
    for (size_t i = 0; i < points.size(); ++i) {
      neighbors[i] = delaunay.Neighbors(static_cast<int>(i));
    }
  } else {
    const FortuneSweep sweep(points);
    for (size_t i = 0; i < points.size(); ++i) {
      neighbors[i] = sweep.Neighbors(static_cast<int>(i));
    }
  }

  VoronoiDiagram diagram;
  diagram.box_ = box;
  diagram.cells_.reserve(points.size());

  for (size_t i = 0; i < points.size(); ++i) {
    ConvexPolygon cell = ConvexPolygon::FromBox(box);
    for (int j : neighbors[i]) {
      cell = cell.Clip(HalfPlane::Closer(points[i], points[j]));
      if (cell.IsEmpty()) break;
    }
    diagram.cells_.push_back(std::move(cell));
  }
  diagram.neighbors_ = std::move(neighbors);
  return diagram;
}

double VoronoiDiagram::TotalArea() const {
  double total = 0.0;
  for (const ConvexPolygon& cell : cells_) total += cell.Area();
  return total;
}

}  // namespace lbsagg
