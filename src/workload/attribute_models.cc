#include "workload/attribute_models.h"

#include <algorithm>
#include <cmath>

namespace lbsagg {

std::string CategoryName(PoiCategory category) {
  switch (category) {
    case PoiCategory::kRestaurant:
      return "restaurant";
    case PoiCategory::kSchool:
      return "school";
    case PoiCategory::kBank:
      return "bank";
    case PoiCategory::kCafe:
      return "cafe";
  }
  return "unknown";
}

PoiCategory SampleCategory(Rng& rng) {
  const double u = rng.Uniform01();
  if (u < 0.50) return PoiCategory::kRestaurant;
  if (u < 0.72) return PoiCategory::kSchool;
  if (u < 0.85) return PoiCategory::kBank;
  return PoiCategory::kCafe;
}

double SampleRating(Rng& rng) {
  return std::clamp(rng.Normal(3.7, 0.6), 1.0, 5.0);
}

double SampleEnrollment(Rng& rng) {
  return std::round(std::exp(rng.Normal(6.0, 0.8)));
}

std::string SamplePoiName(PoiCategory category, int id, double chain_fraction,
                          Rng& rng) {
  if (category == PoiCategory::kRestaurant && rng.Bernoulli(chain_fraction)) {
    return "Starbucks";
  }
  return CategoryName(category) + "-" + std::to_string(id);
}

double SamplePopularity(Rng& rng) {
  // Pareto-ish: most POIs obscure, a few famous.
  const double u = std::max(1e-6, rng.Uniform01());
  return std::min(1.0, 0.05 / std::pow(u, 0.7));
}

bool SampleOpenSunday(Rng& rng) { return rng.Bernoulli(0.62); }

std::string SampleGender(double male_fraction, Rng& rng) {
  return rng.Bernoulli(male_fraction) ? "M" : "F";
}

}  // namespace lbsagg
