#include "workload/scenarios.h"

#include "util/check.h"
#include "workload/attribute_models.h"
#include "workload/generators.h"

namespace lbsagg {

UsaScenario BuildUsaScenario(const UsaOptions& options) {
  LBSAGG_CHECK_GE(options.num_pois, 10);
  Rng rng(options.seed);
  const Box box({0.0, 0.0}, {4400.0, 2600.0});

  Schema schema;
  UsaColumns cols;
  cols.category = schema.AddColumn("category", AttrType::kString);
  cols.name = schema.AddColumn("name", AttrType::kString);
  cols.rating = schema.AddColumn("rating", AttrType::kDouble);
  cols.enrollment = schema.AddColumn("enrollment", AttrType::kDouble);
  cols.open_sunday = schema.AddColumn("open_sunday", AttrType::kBool);
  cols.popularity = schema.AddColumn("popularity", AttrType::kDouble);

  auto dataset = std::make_unique<Dataset>(box, schema);

  const std::vector<ClusterSpec> cities =
      MakeZipfClusters(options.num_cities, box, options.zipf_s,
                       /*base_sigma=*/45.0, rng);
  const std::vector<Vec2> positions = GenerateClustered(
      options.num_pois, box, cities, options.rural_fraction, rng);

  for (int i = 0; i < options.num_pois; ++i) {
    const PoiCategory category = SampleCategory(rng);
    const bool rated = category == PoiCategory::kRestaurant ||
                       category == PoiCategory::kCafe;
    std::vector<AttrValue> values(6);
    values[cols.category] = CategoryName(category);
    values[cols.name] =
        SamplePoiName(category, i, options.starbucks_fraction, rng);
    values[cols.rating] = rated ? SampleRating(rng) : 0.0;
    values[cols.enrollment] =
        category == PoiCategory::kSchool ? SampleEnrollment(rng) : 0.0;
    values[cols.open_sunday] = SampleOpenSunday(rng);
    values[cols.popularity] = SamplePopularity(rng);
    dataset->Add(positions[i], std::move(values));
  }
  dataset->JitterDuplicates(rng, 1e-7);

  CensusGrid census =
      CensusGrid::FromPoints(box, options.census_nx, options.census_ny,
                             dataset->Positions(), options.census_noise, rng);
  return UsaScenario{std::move(dataset), std::move(census), cols};
}

TupleFilter CategoryIs(const UsaColumns& cols, const std::string& category) {
  const int col = cols.category;
  return [col, category](const Tuple& t) {
    return std::get<std::string>(t.values[col]) == category;
  };
}

TupleFilter NameIs(const UsaColumns& cols, const std::string& name) {
  const int col = cols.name;
  return [col, name](const Tuple& t) {
    return std::get<std::string>(t.values[col]) == name;
  };
}

TupleFilter OpenSunday(const UsaColumns& cols) {
  const int col = cols.open_sunday;
  return [col](const Tuple& t) { return std::get<bool>(t.values[col]); };
}

ChinaScenario BuildChinaScenario(const ChinaOptions& options) {
  LBSAGG_CHECK_GE(options.num_users, 10);
  Rng rng(options.seed);
  const Box box({0.0, 0.0}, {5000.0, 3500.0});

  Schema schema;
  ChinaColumns cols;
  cols.gender = schema.AddColumn("gender", AttrType::kString);
  cols.male_indicator = schema.AddColumn("male", AttrType::kDouble);

  auto dataset = std::make_unique<Dataset>(box, schema);

  const std::vector<ClusterSpec> cities =
      MakeZipfClusters(options.num_cities, box, options.zipf_s,
                       /*base_sigma=*/40.0, rng);
  const std::vector<Vec2> positions = GenerateClustered(
      options.num_users, box, cities, options.rural_fraction, rng);

  for (int i = 0; i < options.num_users; ++i) {
    std::vector<AttrValue> values(2);
    const std::string gender = SampleGender(options.male_fraction, rng);
    values[cols.male_indicator] = gender == "M" ? 1.0 : 0.0;
    values[cols.gender] = gender;
    dataset->Add(positions[i], std::move(values));
  }
  dataset->JitterDuplicates(rng, 1e-7);

  CensusGrid census =
      CensusGrid::FromPoints(box, options.census_nx, options.census_ny,
                             dataset->Positions(), options.census_noise, rng);
  return ChinaScenario{std::move(dataset), std::move(census), cols};
}

TupleFilter GenderIs(const ChinaColumns& cols, const std::string& gender) {
  const int col = cols.gender;
  return [col, gender](const Tuple& t) {
    return std::get<std::string>(t.values[col]) == gender;
  };
}

}  // namespace lbsagg
