#ifndef LBSAGG_WORKLOAD_GENERATORS_H_
#define LBSAGG_WORKLOAD_GENERATORS_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/vec2.h"
#include "util/rng.h"

namespace lbsagg {

// One population cluster ("city"): a 2-D Gaussian blob.
struct ClusterSpec {
  Vec2 center;
  double sigma = 1.0;   // standard deviation of the blob
  double weight = 1.0;  // relative share of points
};

// n points uniform in the box.
std::vector<Vec2> GenerateUniform(int n, const Box& box, Rng& rng);

// n points from a mixture: with probability `rural_fraction` a point is
// uniform in the box ("rural"), otherwise drawn from a cluster chosen
// proportionally to its weight and clamped into the box. This mimics the
// urban/rural density skew of real POI data (OpenStreetMap USA) which gives
// Voronoi cells their enormous size spread (paper Figure 11).
std::vector<Vec2> GenerateClustered(int n, const Box& box,
                                    const std::vector<ClusterSpec>& clusters,
                                    double rural_fraction, Rng& rng);

// `num_clusters` city specs with uniform random centers (kept away from the
// box border by one sigma), Zipf(s) weights — a few huge metros, many small
// towns — and sigmas growing with the weight.
std::vector<ClusterSpec> MakeZipfClusters(int num_clusters, const Box& box,
                                          double zipf_s, double base_sigma,
                                          Rng& rng);

}  // namespace lbsagg

#endif  // LBSAGG_WORKLOAD_GENERATORS_H_
