#include "workload/census.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace lbsagg {

CensusGrid::CensusGrid(const Box& box, int nx, int ny)
    : box_(box), nx_(nx), ny_(ny), density_(nx * ny, 1.0) {
  LBSAGG_CHECK_GE(nx, 1);
  LBSAGG_CHECK_GE(ny, 1);
  RebuildCumulative();
}

CensusGrid CensusGrid::FromPoints(const Box& box, int nx, int ny,
                                  const std::vector<Vec2>& points,
                                  double noise_level, Rng& rng) {
  CensusGrid grid(box, nx, ny);
  std::vector<double> counts(nx * ny, 0.0);
  const double cw = box.width() / nx;
  const double ch = box.height() / ny;
  for (const Vec2& p : points) {
    const int ix = std::clamp(static_cast<int>((p.x - box.lo.x) / cw), 0, nx - 1);
    const int iy = std::clamp(static_cast<int>((p.y - box.lo.y) / ch), 0, ny - 1);
    counts[iy * nx + ix] += 1.0;
  }
  // 3x3 box blur: census tracts smear population relative to POI hot spots.
  std::vector<double> blurred(nx * ny, 0.0);
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      double sum = 0.0;
      int n = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int jx = ix + dx, jy = iy + dy;
          if (jx < 0 || jx >= nx || jy < 0 || jy >= ny) continue;
          sum += counts[jy * nx + jx];
          ++n;
        }
      }
      blurred[iy * nx + ix] = sum / n;
    }
  }
  const double mean =
      std::max(1e-9, std::accumulate(blurred.begin(), blurred.end(), 0.0) /
                         blurred.size());
  for (double& d : blurred) {
    const double noise = 1.0 + noise_level * (2.0 * rng.Uniform01() - 1.0);
    // Positive floor keeps every location reachable (§5.2).
    d = std::max(0.05 * mean, d * noise);
  }
  grid.density_ = std::move(blurred);
  grid.RebuildCumulative();
  return grid;
}

void CensusGrid::RebuildCumulative() {
  cum_weight_.assign(density_.size(), 0.0);
  double acc = 0.0;
  const double cell_area = box_.Area() / (nx_ * ny_);
  for (size_t i = 0; i < density_.size(); ++i) {
    LBSAGG_CHECK_GT(density_[i], 0.0) << "census density must be positive";
    acc += density_[i] * cell_area;
    cum_weight_[i] = acc;
  }
  total_weight_ = acc;
  LBSAGG_CHECK_GT(total_weight_, 0.0);
}

double CensusGrid::DensityAt(const Vec2& p_in) const {
  const Vec2 p = box_.Clamp(p_in);
  const int ix = std::clamp(
      static_cast<int>((p.x - box_.lo.x) / (box_.width() / nx_)), 0, nx_ - 1);
  const int iy = std::clamp(
      static_cast<int>((p.y - box_.lo.y) / (box_.height() / ny_)), 0, ny_ - 1);
  return density_[CellIndex(ix, iy)];
}

double CensusGrid::CellDensity(int ix, int iy) const {
  LBSAGG_CHECK_GE(ix, 0);
  LBSAGG_CHECK_LT(ix, nx_);
  LBSAGG_CHECK_GE(iy, 0);
  LBSAGG_CHECK_LT(iy, ny_);
  return density_[CellIndex(ix, iy)];
}

Box CensusGrid::CellBox(int ix, int iy) const {
  const double cw = box_.width() / nx_;
  const double ch = box_.height() / ny_;
  const Vec2 lo{box_.lo.x + ix * cw, box_.lo.y + iy * ch};
  return Box(lo, lo + Vec2{cw, ch});
}

double CensusGrid::CellWeight(int ix, int iy) const {
  return CellDensity(ix, iy) * box_.Area() / (nx_ * ny_);
}

Vec2 CensusGrid::Sample(Rng& rng) const {
  const double u = rng.Uniform01() * total_weight_;
  const auto it = std::lower_bound(cum_weight_.begin(), cum_weight_.end(), u);
  const int idx = static_cast<int>(std::min<size_t>(
      it - cum_weight_.begin(), cum_weight_.size() - 1));
  const int ix = idx % nx_;
  const int iy = idx / nx_;
  return CellBox(ix, iy).SamplePoint(rng);
}

double CensusGrid::Pdf(const Vec2& p) const {
  return DensityAt(p) / total_weight_;
}

}  // namespace lbsagg
