#include "workload/generators.h"

#include <cmath>

#include "util/check.h"

namespace lbsagg {

std::vector<Vec2> GenerateUniform(int n, const Box& box, Rng& rng) {
  LBSAGG_CHECK_GE(n, 0);
  std::vector<Vec2> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) points.push_back(box.SamplePoint(rng));
  return points;
}

std::vector<Vec2> GenerateClustered(int n, const Box& box,
                                    const std::vector<ClusterSpec>& clusters,
                                    double rural_fraction, Rng& rng) {
  LBSAGG_CHECK_GE(n, 0);
  LBSAGG_CHECK_GE(rural_fraction, 0.0);
  LBSAGG_CHECK_LE(rural_fraction, 1.0);
  LBSAGG_CHECK(!clusters.empty() || rural_fraction == 1.0);

  std::vector<double> weights;
  weights.reserve(clusters.size());
  for (const ClusterSpec& c : clusters) weights.push_back(c.weight);

  std::vector<Vec2> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (rural_fraction >= 1.0 || rng.Bernoulli(rural_fraction)) {
      points.push_back(box.SamplePoint(rng));
      continue;
    }
    const ClusterSpec& c = clusters[rng.Categorical(weights)];
    const Vec2 p = c.center + Vec2{rng.Normal(0.0, c.sigma),
                                   rng.Normal(0.0, c.sigma)};
    points.push_back(box.Clamp(p));
  }
  return points;
}

std::vector<ClusterSpec> MakeZipfClusters(int num_clusters, const Box& box,
                                          double zipf_s, double base_sigma,
                                          Rng& rng) {
  LBSAGG_CHECK_GE(num_clusters, 1);
  LBSAGG_CHECK_GT(base_sigma, 0.0);
  std::vector<ClusterSpec> clusters;
  clusters.reserve(num_clusters);
  for (int i = 0; i < num_clusters; ++i) {
    ClusterSpec c;
    const double margin = base_sigma;
    c.center = {rng.Uniform(box.lo.x + margin, box.hi.x - margin),
                rng.Uniform(box.lo.y + margin, box.hi.y - margin)};
    c.weight = 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
    // Big metros sprawl: sigma grows sub-linearly with weight.
    c.sigma = base_sigma * (0.5 + 1.5 * std::sqrt(c.weight));
    clusters.push_back(c);
  }
  return clusters;
}

}  // namespace lbsagg
