#ifndef LBSAGG_WORKLOAD_ATTRIBUTE_MODELS_H_
#define LBSAGG_WORKLOAD_ATTRIBUTE_MODELS_H_

#include <string>

#include "util/rng.h"

namespace lbsagg {

// Attribute distributions matching the shapes of the paper's enriched
// OpenStreetMap dataset (§6.1): POIs were joined with Google Maps review
// ratings and US Census school enrollments; social-network users carry a
// gender attribute.

// POI categories used by the USA scenario.
enum class PoiCategory {
  kRestaurant,
  kSchool,
  kBank,
  kCafe,
};

// Category name as stored in the dataset's "category" column.
std::string CategoryName(PoiCategory category);

// Draws a category with realistic mix (restaurants dominate).
PoiCategory SampleCategory(Rng& rng);

// Review rating in [1, 5]: clipped normal around 3.7 — bounded, mildly
// left-skewed, like real review scores.
double SampleRating(Rng& rng);

// School enrollment: log-normal (heavy tail — a few huge schools), rounded
// to a whole student count.
double SampleEnrollment(Rng& rng);

// POI display name. Restaurants are a national chain ("Starbucks") with
// probability `chain_fraction`; everything else gets a unique local name.
std::string SamplePoiName(PoiCategory category, int id, double chain_fraction,
                          Rng& rng);

// Popularity score in [0, 1], heavy tailed (used by prominence ranking).
double SamplePopularity(Rng& rng);

// Open-on-Sunday flag (restaurants mostly are).
bool SampleOpenSunday(Rng& rng);

// Gender string "M"/"F" with P(male) = male_fraction. The paper estimated
// 67.1:32.9 on WeChat and 50.4:49.6 on Weibo.
std::string SampleGender(double male_fraction, Rng& rng);

}  // namespace lbsagg

#endif  // LBSAGG_WORKLOAD_ATTRIBUTE_MODELS_H_
