#ifndef LBSAGG_WORKLOAD_CENSUS_H_
#define LBSAGG_WORKLOAD_CENSUS_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/vec2.h"
#include "util/rng.h"

namespace lbsagg {

// Piecewise-constant population density over a grid — the external-knowledge
// source of §5.2 (the paper used US Census data [1]). Densities are
// positive everywhere so every location keeps a positive sampling
// probability, which §5.2 requires for unbiasedness.
class CensusGrid {
 public:
  // Uniform density 1 over the box.
  CensusGrid(const Box& box, int nx, int ny);

  // Builds a density correlated with — but deliberately not identical to —
  // the given point set: per-cell counts, box-blur smoothing, multiplicative
  // noise, and a positive floor. This mirrors how census population tracks
  // POI density without matching it exactly.
  static CensusGrid FromPoints(const Box& box, int nx, int ny,
                               const std::vector<Vec2>& points,
                               double noise_level, Rng& rng);

  const Box& box() const { return box_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }

  // Density of the cell containing p (p is clamped into the box).
  double DensityAt(const Vec2& p) const;

  // Raw cell access.
  double CellDensity(int ix, int iy) const;
  Box CellBox(int ix, int iy) const;
  double CellWeight(int ix, int iy) const;  // density * cell area

  // Σ over cells of density × area, i.e. the normalizer of the sampling pdf.
  double TotalWeight() const { return total_weight_; }

  // Samples a location with pdf proportional to the density.
  Vec2 Sample(Rng& rng) const;

  // The normalized pdf value at p: DensityAt(p) / TotalWeight().
  double Pdf(const Vec2& p) const;

 private:
  Box box_;
  int nx_;
  int ny_;
  std::vector<double> density_;     // row-major, nx_ * ny_
  std::vector<double> cum_weight_;  // cumulative cell weights for sampling
  double total_weight_ = 0.0;

  int CellIndex(int ix, int iy) const { return iy * nx_ + ix; }
  void RebuildCumulative();
};

}  // namespace lbsagg

#endif  // LBSAGG_WORKLOAD_CENSUS_H_
