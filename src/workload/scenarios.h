#ifndef LBSAGG_WORKLOAD_SCENARIOS_H_
#define LBSAGG_WORKLOAD_SCENARIOS_H_

#include <memory>

#include "lbs/dataset.h"
#include "workload/census.h"

namespace lbsagg {

// ---------------------------------------------------------------------------
// USA scenario — stands in for the paper's enriched OpenStreetMap USA
// dataset (§6.1) and the Google Places online experiments (§6.3).
// ---------------------------------------------------------------------------

struct UsaOptions {
  // Total POIs; the paper's dataset has O(10^5) POIs; the default keeps unit
  // tests fast while benchmarks scale it up.
  int num_pois = 20000;
  int num_cities = 60;
  double rural_fraction = 0.12;  // POIs scattered outside cities
  double zipf_s = 1.0;
  double starbucks_fraction = 0.055;  // of restaurants
  uint64_t seed = 2015;
  int census_nx = 40;
  int census_ny = 25;
  double census_noise = 0.3;
};

// Column names of the USA dataset schema.
struct UsaColumns {
  int category;     // string: restaurant / school / bank / cafe
  int name;         // string: "Starbucks" or a unique local name
  int rating;       // double in [1,5] (restaurants & cafes; 0 otherwise)
  int enrollment;   // double (schools; 0 otherwise)
  int open_sunday;  // bool
  int popularity;   // double in [0,1], for prominence ranking
};

struct UsaScenario {
  // The box is a USA-sized plane in kilometres: 4400 x 2600.
  std::unique_ptr<Dataset> dataset;
  CensusGrid census;
  UsaColumns columns;
};

// Builds the full scenario. Duplicate locations are jittered away so the
// dataset is in general position.
UsaScenario BuildUsaScenario(const UsaOptions& options = {});

// Convenience filters over the USA schema.
TupleFilter CategoryIs(const UsaColumns& cols, const std::string& category);
TupleFilter NameIs(const UsaColumns& cols, const std::string& name);
TupleFilter OpenSunday(const UsaColumns& cols);

// ---------------------------------------------------------------------------
// China scenario — stands in for the WeChat / Sina Weibo user databases
// (LNR services) of §6.3.
// ---------------------------------------------------------------------------

struct ChinaOptions {
  int num_users = 20000;
  int num_cities = 50;
  double rural_fraction = 0.08;
  double zipf_s = 1.1;
  double male_fraction = 0.671;  // WeChat-like; use 0.504 for Weibo-like
  uint64_t seed = 88;
  int census_nx = 40;
  int census_ny = 25;
  double census_noise = 0.3;
};

struct ChinaColumns {
  int gender;          // string: "M" / "F"
  int male_indicator;  // double: 1.0 for male, 0.0 for female (lets the
                       // gender share be estimated as AVG(male_indicator))
};

struct ChinaScenario {
  std::unique_ptr<Dataset> dataset;
  CensusGrid census;
  ChinaColumns columns;
};

ChinaScenario BuildChinaScenario(const ChinaOptions& options = {});

// Filter selecting users of the given gender ("M" or "F").
TupleFilter GenderIs(const ChinaColumns& cols, const std::string& gender);

}  // namespace lbsagg

#endif  // LBSAGG_WORKLOAD_SCENARIOS_H_
