#ifndef LBSAGG_OBS_TRACE_H_
#define LBSAGG_OBS_TRACE_H_

// Span tracing serialized as Chrome trace_event JSON ("ph":"X" complete
// events), loadable in Perfetto / chrome://tracing. Spans nest by time
// containment per thread, which is exactly what the estimator call tree
// produces: estimator round → cell computation → kNN query → transport
// attempt (DESIGN.md §4.8 span taxonomy).
//
// The clock is pluggable: SteadyTraceClock for wall time, or a
// FunctionTraceClock bound to SimulatedTransport::VirtualNowMs so the trace
// timeline is the transport's deterministic *virtual* service time. The
// transport additionally emits its per-request spans with explicit virtual
// timestamps (AddComplete), because it knows both endpoints exactly.
//
// Long-lived spans (a hosted session's lifetime) use the open/close API:
// OpenSpan hands back a ticket, CloseSpan emits the complete event,
// CloseSpanTruncated emits it with a ".truncated" category suffix (the
// span's owner died — Cancel, deadline, teardown — but the evidence that it
// ran must survive), DropSpan discards it (the span never really started,
// e.g. a rejected admission). FlushOpenSpans truncate-closes everything
// still open so a trace file never silently loses in-flight work
// (DESIGN.md §4.13).
//
// A Tracer can additionally mirror every completed span into a flight
// recorder (SetFlightRecorder) for live drains; the recorder copy is a
// fixed-size POD publish and never blocks.
//
// Tracing is opt-in per component: a null Tracer* means no spans, and
// ScopedSpan on a null tracer is two predictable branches. Under
// LBSAGG_OBS_DISABLED ScopedSpan compiles out entirely.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/introspect/flight_recorder.h"

namespace lbsagg {
namespace obs {

class TraceClock {
 public:
  virtual ~TraceClock() = default;
  // Microseconds since an arbitrary fixed origin.
  virtual double NowUs() const = 0;
};

// Wall time from std::chrono::steady_clock.
class SteadyTraceClock final : public TraceClock {
 public:
  double NowUs() const override;
};

// Adapts any time source, e.g. [&t] { return t.VirtualNowMs() * 1000.0; }.
class FunctionTraceClock final : public TraceClock {
 public:
  explicit FunctionTraceClock(std::function<double()> now_us)
      : now_us_(std::move(now_us)) {}
  double NowUs() const override { return now_us_(); }

 private:
  std::function<double()> now_us_;
};

struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
};

// Collects complete events; thread-safe (dispatcher workers emit transport
// spans concurrently with the main thread's estimator spans).
class Tracer {
 public:
  // `clock == nullptr` uses an internal steady clock. The clock must
  // outlive the tracer.
  explicit Tracer(const TraceClock* clock = nullptr);

  double NowUs() const { return clock_->NowUs(); }

  // Appends one complete event with explicit timestamps (used by the
  // transport, whose virtual-time endpoints are known exactly).
  void AddComplete(const std::string& name, const std::string& category,
                   double ts_us, double dur_us);

  // Registers a long-lived span starting at `ts_us` and returns its ticket
  // (never 0). The span is emitted only when one of the Close*/Flush calls
  // below resolves the ticket.
  uint64_t OpenSpan(const std::string& name, const std::string& category,
                    double ts_us);
  // Resolves an open ticket into a normal complete event ending at
  // `end_ts_us`. Returns false for an unknown/already-resolved ticket.
  bool CloseSpan(uint64_t ticket, double end_ts_us);
  // Resolves an open ticket into a complete event whose category carries a
  // ".truncated" suffix: the span's owner stopped before a natural close
  // (Cancel, deadline exceeded, process teardown).
  bool CloseSpanTruncated(uint64_t ticket, double end_ts_us);
  // Discards an open ticket without emitting anything (the span turned out
  // not to represent real work, e.g. a rejected admission).
  bool DropSpan(uint64_t ticket);
  // Truncate-closes every open span at `end_ts_us`; returns how many.
  size_t FlushOpenSpans(double end_ts_us);
  size_t open_span_count() const;

  // Mirrors every subsequently completed span into `recorder` (null
  // detaches). The recorder must outlive the tracer or be detached first.
  void SetFlightRecorder(introspect::FlightRecorder* recorder);

  size_t event_count() const;

  // `{"traceEvents":[...],"displayTimeUnit":"ms"}` — the Chrome trace_event
  // array format Perfetto and about:tracing load directly.
  std::string ToChromeTraceJson() const;

 private:
  struct OpenSpanRecord {
    std::string name;
    std::string category;
    double ts_us = 0.0;
  };

  bool ResolveSpan(uint64_t ticket, double end_ts_us, bool truncated);

  SteadyTraceClock default_clock_;
  const TraceClock* clock_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<uint64_t, OpenSpanRecord> open_spans_;
  uint64_t next_ticket_ = 1;
  introspect::FlightRecorder* recorder_ = nullptr;
};

// RAII span: records the clock at construction, appends one complete event
// at destruction. A null tracer makes both ends no-ops.
class ScopedSpan {
 public:
#ifndef LBSAGG_OBS_DISABLED
  ScopedSpan(Tracer* tracer, const char* name, const char* category = "lbsagg")
      : tracer_(tracer), name_(name), category_(category) {
    if (tracer_ != nullptr) start_us_ = tracer_->NowUs();
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->AddComplete(name_, category_, start_us_,
                           tracer_->NowUs() - start_us_);
    }
  }

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
#else
  ScopedSpan(Tracer*, const char*, const char* = "lbsagg") {}
#endif

 public:
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_TRACE_H_
