#include "obs/introspect/flight_recorder.h"

#include <sstream>

namespace lbsagg {
namespace obs {
namespace introspect {

namespace {

std::string EscapeJson(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string FlightRecordJson(const FlightRecord& record) {
  std::ostringstream os;
  os << "{\"kind\":\""
     << (record.kind == FlightRecord::Kind::kSpan ? "span" : "event")
     << "\",\"name\":\"" << EscapeJson(record.name)
     << "\",\"ts_us\":" << FormatDouble(record.ts_us)
     << ",\"dur_us\":" << FormatDouble(record.dur_us) << ",\"a\":" << record.a
     << ",\"b\":" << record.b << "}";
  return os.str();
}

#ifndef LBSAGG_OBS_DISABLED

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) {
  const size_t cap = RoundUpPow2(capacity);
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
  for (size_t i = 0; i < cap; ++i) {
    slots_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

bool FlightRecorder::TryPublish(const FlightRecord& record) {
  size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const size_t seq = slot.sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        slot.record = record;
        slot.sequence.store(pos + 1, std::memory_order_release);
        published_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS failure reloaded `pos`; retry with the fresh claim point.
    } else if (dif < 0) {
      // The slot still holds an unconsumed record a full lap behind: the
      // ring is full. Drop-newest keeps producers wait-free.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

size_t FlightRecorder::Drain(std::vector<FlightRecord>* out) {
  size_t drained = 0;
  size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const size_t seq = slot.sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        out->push_back(slot.record);
        // Hand the slot back to producers one lap ahead.
        slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
        ++drained;
        ++pos;
      }
    } else if (dif < 0) {
      break;  // empty: nothing published past this point yet
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
  if (drained > 0) drained_.fetch_add(drained, std::memory_order_relaxed);
  return drained;
}

std::string FlightRecorder::StatsJson() const {
  std::ostringstream os;
  os << "{\"capacity\":" << capacity() << ",\"published\":" << published()
     << ",\"dropped\":" << dropped() << ",\"drained\":" << drained() << "}";
  return os.str();
}

#endif  // LBSAGG_OBS_DISABLED

}  // namespace introspect
}  // namespace obs
}  // namespace lbsagg
