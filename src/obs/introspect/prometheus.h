#ifndef LBSAGG_OBS_INTROSPECT_PROMETHEUS_H_
#define LBSAGG_OBS_INTROSPECT_PROMETHEUS_H_

// Prometheus text exposition (DESIGN.md §4.13) over a MetricsSnapshot.
// Counters and gauges map 1:1; fixed-bucket histograms are re-emitted as
// the cumulative `le`-labeled series Prometheus expects (per-bucket counts
// summed upward, a `+Inf` bucket, `_sum` and `_count`). Metric names are
// prefixed and sanitized (dots become underscores) so
// `spatial.kdtree.nodes_visited` scrapes as
// `lbsagg_spatial_kdtree_nodes_visited`.
//
// Pure function over a snapshot: scrape cost is one registry Snapshot()
// plus string assembly, never a hot-path cell touch. Under
// -DLBSAGG_OBS_DISABLED the registry produces empty snapshots, so the
// exporter needs no stub of its own — it just emits nothing.

#include <string>

#include "obs/metrics.h"

namespace lbsagg {
namespace obs {
namespace introspect {

// A valid Prometheus metric name from an internal dotted name:
// "<prefix>_<name>" with every character outside [a-zA-Z0-9_:] replaced by
// '_' (empty prefix = no prefix). Exposed for tests.
std::string PrometheusName(const std::string& name,
                           const std::string& prefix = "lbsagg");

// The full text-format page: `# TYPE` comment then samples, snapshot
// (name-sorted) order, trailing newline.
std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             const std::string& prefix = "lbsagg");

}  // namespace introspect
}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_INTROSPECT_PROMETHEUS_H_
