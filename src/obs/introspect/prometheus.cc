#include "obs/introspect/prometheus.h"

#include <sstream>

namespace lbsagg {
namespace obs {
namespace introspect {

namespace {

bool ValidChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string PrometheusName(const std::string& name, const std::string& prefix) {
  std::string out = prefix.empty() ? name : prefix + "_" + name;
  for (char& c : out) {
    if (!ValidChar(c)) c = '_';
  }
  // Metric names must not start with a digit.
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             const std::string& prefix) {
  std::ostringstream os;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name, prefix);
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c.value << "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name, prefix);
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << FormatDouble(g.value) << "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name, prefix);
    os << "# TYPE " << name << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size() && i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      os << name << "_bucket{le=\"" << FormatDouble(h.bounds[i]) << "\"} "
         << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum " << FormatDouble(h.sum) << "\n";
    os << name << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace introspect
}  // namespace obs
}  // namespace lbsagg
