#ifndef LBSAGG_OBS_INTROSPECT_STATUSZ_H_
#define LBSAGG_OBS_INTROSPECT_STATUSZ_H_

// Statusz (DESIGN.md §4.13): the one-call "what is this process doing right
// now" snapshot. A Statusz is assembled fresh per request — meta key/values,
// a live MetricsSnapshot, and raw JSON sections contributed by subsystems
// that own their serialization (the service's session table, shard lane
// health, the sampler's timeseries ring, recorder stats) — then rendered as
// machine JSON (ToJson) or operator text (ToText). Mirrors RunReport's
// AddJsonSection layering so obs never depends on service/transport: the
// service-side ServiceIntrospector (src/service/introspect.h) fills one of
// these in.
//
// Under -DLBSAGG_OBS_DISABLED the builder compiles down to a stub whose
// ToJson returns an empty-object skeleton, so --statusz still prints valid
// JSON from a disabled build.

#include <map>
#include <string>

#include "obs/metrics.h"

namespace lbsagg {
namespace obs {
namespace introspect {

#ifndef LBSAGG_OBS_DISABLED

class Statusz {
 public:
  // String / numeric metadata ("uptime_ms", "sessions_hosted", ...).
  void SetMeta(const std::string& key, const std::string& value);
  void SetMetaNum(const std::string& key, double value);

  // The metric plane right now. Replaces any previous snapshot.
  void SetSnapshot(MetricsSnapshot snapshot);

  // Pre-serialized JSON value mounted at sections.<name>.
  void AddJsonSection(const std::string& name, const std::string& raw_json);

  // {"statusz_version":1,"meta":{...},"metrics":{...},"sections":{...}}
  std::string ToJson(int indent = 0) const;

  // Operator-facing rendering: meta lines, the metrics table, then each
  // section's name with its raw JSON (sections stay JSON — they are
  // machine-shaped; the text view is for orientation, not parsing).
  std::string ToText() const;

 private:
  std::map<std::string, std::string> meta_;
  std::map<std::string, double> meta_num_;
  MetricsSnapshot snapshot_;
  std::map<std::string, std::string> sections_;
};

#else  // LBSAGG_OBS_DISABLED

class Statusz {
 public:
  void SetMeta(const std::string&, const std::string&) {}
  void SetMetaNum(const std::string&, double) {}
  void SetSnapshot(MetricsSnapshot) {}
  void AddJsonSection(const std::string&, const std::string&) {}
  std::string ToJson(int = 0) const {
    return "{\"statusz_version\":1,\"meta\":{},\"metrics\":{},\"sections\":{}"
           "}";
  }
  std::string ToText() const { return "statusz: observability disabled\n"; }
};

#endif  // LBSAGG_OBS_DISABLED

}  // namespace introspect
}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_INTROSPECT_STATUSZ_H_
