#include "obs/introspect/statusz.h"

#ifndef LBSAGG_OBS_DISABLED

#include <sstream>
#include <utility>

namespace lbsagg {
namespace obs {
namespace introspect {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// Same continuation-line trick RunReport uses for nested blobs.
std::string IndentBlob(const std::string& blob, const std::string& pad) {
  std::string out;
  out.reserve(blob.size());
  for (char c : blob) {
    out.push_back(c);
    if (c == '\n') out += pad;
  }
  return out;
}

}  // namespace

void Statusz::SetMeta(const std::string& key, const std::string& value) {
  meta_[key] = value;
}

void Statusz::SetMetaNum(const std::string& key, double value) {
  meta_num_[key] = value;
}

void Statusz::SetSnapshot(MetricsSnapshot snapshot) {
  snapshot_ = std::move(snapshot);
}

void Statusz::AddJsonSection(const std::string& name,
                             const std::string& raw_json) {
  sections_[name] = raw_json;
}

std::string Statusz::ToJson(int indent) const {
  const std::string pad(indent, ' ');
  const std::string in(indent + 2, ' ');
  const std::string in2(indent + 4, ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << in << "\"statusz_version\": 1,\n";

  os << in << "\"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    os << (first ? "\n" : ",\n") << in2 << '"' << key << "\": \"" << value
       << '"';
    first = false;
  }
  for (const auto& [key, value] : meta_num_) {
    os << (first ? "\n" : ",\n") << in2 << '"' << key
       << "\": " << FormatDouble(value);
    first = false;
  }
  os << (first ? "" : "\n" + in) << "},\n";

  os << in << "\"metrics\": " << IndentBlob(snapshot_.ToJson(), in) << ",\n";

  os << in << "\"sections\": {";
  first = true;
  for (const auto& [name, blob] : sections_) {
    os << (first ? "\n" : ",\n") << in2 << '"' << name
       << "\": " << IndentBlob(blob, in2);
    first = false;
  }
  os << (first ? "" : "\n" + in) << "}\n";
  os << pad << "}";
  return os.str();
}

std::string Statusz::ToText() const {
  std::ostringstream os;
  os << "=== statusz ===\n";
  for (const auto& [key, value] : meta_) {
    os << key << ": " << value << "\n";
  }
  for (const auto& [key, value] : meta_num_) {
    os << key << ": " << FormatDouble(value) << "\n";
  }
  os << "\n--- metrics ---\n" << snapshot_.ToTable().ToString();
  for (const auto& [name, blob] : sections_) {
    os << "\n--- " << name << " ---\n" << blob << "\n";
  }
  return os.str();
}

}  // namespace introspect
}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_DISABLED
