#include "obs/introspect/sampler.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace lbsagg {
namespace obs {
namespace introspect {

namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double q) {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Unbounded tail: no upper edge to interpolate toward; clamp to the
      // last finite bound (Prometheus histogram_quantile does the same).
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double hi = bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds[i - 1];
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) return hi;
    const double below = static_cast<double>(cumulative - in_bucket);
    const double frac = (rank - below) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

#ifndef LBSAGG_OBS_DISABLED

TimeSeriesSampler::TimeSeriesSampler(TimeSeriesSamplerOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Default();
  }
  if (!options_.clock_ms) options_.clock_ms = SteadyNowMs;
  if (options_.period_ms <= 0.0) options_.period_ms = 1.0;
  if (options_.max_windows == 0) options_.max_windows = 1;
}

bool TimeSeriesSampler::MaybeTick() {
  const double now = options_.clock_ms();
  if (primed_ && now - last_ms_ < options_.period_ms) return false;
  CutWindow(now);
  return true;
}

void TimeSeriesSampler::Tick() { CutWindow(options_.clock_ms()); }

void TimeSeriesSampler::CutWindow(double now_ms) {
  MetricsSnapshot current = options_.registry->Snapshot();
  if (!primed_) {
    // First sample is the baseline; nothing to diff against yet.
    primed_ = true;
    last_ms_ = now_ms;
    previous_ = std::move(current);
    return;
  }

  SampleWindow window;
  window.t0_ms = last_ms_;
  window.t1_ms = now_ms;

  // Both snapshots are name-sorted, so each diff is a two-pointer merge; a
  // cell absent from the previous snapshot was registered inside the window
  // and diffs against zero.
  {
    size_t p = 0;
    for (const CounterSample& cur : current.counters) {
      while (p < previous_.counters.size() &&
             previous_.counters[p].name < cur.name) {
        ++p;
      }
      uint64_t prev = 0;
      if (p < previous_.counters.size() &&
          previous_.counters[p].name == cur.name) {
        prev = previous_.counters[p].value;
      }
      const uint64_t delta = cur.value >= prev ? cur.value - prev : 0;
      if (delta > 0) window.counters.emplace_back(cur.name, delta);
    }
  }
  // Gauges are levels, not rates: report the value at the window edge.
  for (const GaugeSample& cur : current.gauges) {
    window.gauges.emplace_back(cur.name, cur.value);
  }
  {
    size_t p = 0;
    for (const HistogramSample& cur : current.histograms) {
      while (p < previous_.histograms.size() &&
             previous_.histograms[p].name < cur.name) {
        ++p;
      }
      const HistogramSample* prev = nullptr;
      if (p < previous_.histograms.size() &&
          previous_.histograms[p].name == cur.name) {
        prev = &previous_.histograms[p];
      }
      std::vector<uint64_t> deltas = cur.buckets;
      uint64_t count = cur.count;
      double sum = cur.sum;
      if (prev != nullptr && prev->buckets.size() == deltas.size()) {
        for (size_t i = 0; i < deltas.size(); ++i) {
          deltas[i] -= std::min(prev->buckets[i], deltas[i]);
        }
        count -= std::min(prev->count, count);
        sum -= prev->sum;
      }
      if (count == 0) continue;
      HistogramWindow digest;
      digest.count = count;
      digest.sum = sum;
      digest.p50 = QuantileFromBuckets(cur.bounds, deltas, 0.50);
      digest.p99 = QuantileFromBuckets(cur.bounds, deltas, 0.99);
      window.histograms.emplace_back(cur.name, digest);
    }
  }

  windows_.push_back(std::move(window));
  while (windows_.size() > options_.max_windows) windows_.pop_front();
  ++windows_cut_;
  last_ms_ = now_ms;
  previous_ = std::move(current);
}

std::string TimeSeriesSampler::ToJson() const {
  std::ostringstream os;
  os << "{\"period_ms\":" << FormatDouble(options_.period_ms)
     << ",\"windows_cut\":" << windows_cut_ << ",\"windows\":[";
  bool first_window = true;
  for (const SampleWindow& w : windows_) {
    if (!first_window) os << ",";
    first_window = false;
    os << "{\"t0_ms\":" << FormatDouble(w.t0_ms)
       << ",\"t1_ms\":" << FormatDouble(w.t1_ms) << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, delta] : w.counters) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << delta;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : w.gauges) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << FormatDouble(value);
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : w.histograms) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":{\"count\":" << h.count
         << ",\"sum\":" << FormatDouble(h.sum)
         << ",\"p50\":" << FormatDouble(h.p50)
         << ",\"p99\":" << FormatDouble(h.p99) << "}";
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

#endif  // LBSAGG_OBS_DISABLED

}  // namespace introspect
}  // namespace obs
}  // namespace lbsagg
