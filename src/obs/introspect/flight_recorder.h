#ifndef LBSAGG_OBS_INTROSPECT_FLIGHT_RECORDER_H_
#define LBSAGG_OBS_INTROSPECT_FLIGHT_RECORDER_H_

// Flight recorder (DESIGN.md §4.13): a lock-free fixed-capacity ring buffer
// of the most recent span/event records, drainable at any moment without
// pausing the threads that feed it. The Tracer publishes every completed
// span (Tracer::SetFlightRecorder) and the service's TriggerRegistry
// publishes every session lifecycle event, so a stuck daemon can always
// answer "what were the last few thousand things this process did?" even
// while dispatcher workers keep running.
//
// The ring is a Vyukov bounded MPMC queue: each slot carries its own
// sequence number, producers claim slots with one CAS, consumers drain with
// one CAS per record, and nobody ever blocks. A producer that finds the
// ring full *drops the record and counts the drop* — backpressure on the
// hot path is never acceptable for a diagnostics plane, and an accurate
// drop counter is what makes the drained window honest.
//
// Records are fixed-size PODs (truncated copies of the span name) so a
// publish is one memcpy plus two atomics — no allocation, no locks, safe
// from any thread including dispatcher workers mid-Fulfill.
//
// Under -DLBSAGG_OBS_DISABLED the whole recorder compiles out to an empty
// stub (publishes are no-ops that return false, drains return nothing), so
// call sites build unchanged while the binary carries no introspection
// code.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace lbsagg {
namespace obs {
namespace introspect {

// One captured record. `name` is a NUL-terminated truncated copy — the
// recorder must not chase pointers whose owners may be gone by drain time.
struct FlightRecord {
  enum class Kind : uint8_t { kSpan = 0, kEvent };
  static constexpr size_t kNameCapacity = 40;

  Kind kind = Kind::kSpan;
  char name[kNameCapacity] = {0};
  double ts_us = 0.0;   // span start / event fire time
  double dur_us = 0.0;  // span duration; 0 for events
  uint64_t a = 0;       // payload: session id, ticket, ...
  uint64_t b = 0;       // payload: queries used, shard, ...

  void SetName(const char* s) {
    size_t i = 0;
    for (; s[i] != '\0' && i + 1 < kNameCapacity; ++i) name[i] = s[i];
    name[i] = '\0';
  }
  bool operator==(const FlightRecord&) const = default;
};

// {"kind":"span","name":...,"ts_us":...,"dur_us":...,"a":...,"b":...}
std::string FlightRecordJson(const FlightRecord& record);

#ifndef LBSAGG_OBS_DISABLED

class FlightRecorder {
 public:
  // `capacity` is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Lock-free publish from any thread. Returns false (and counts a drop)
  // when the ring is full — the recorder never blocks a producer.
  bool TryPublish(const FlightRecord& record);

  // Pops every record available right now into `out` (appended in ring
  // order, oldest first) and returns how many were drained. Safe to call
  // concurrently with publishers and with other drainers; each record is
  // delivered to exactly one drainer.
  size_t Drain(std::vector<FlightRecord>* out);

  // Lifetime tallies (relaxed reads; exact once producers quiesce).
  uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t drained() const { return drained_.load(std::memory_order_relaxed); }

  // {"capacity":N,"published":P,"dropped":D,"drained":R}
  std::string StatsJson() const;

 private:
  struct Slot {
    std::atomic<size_t> sequence{0};
    FlightRecord record;
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
  alignas(64) std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> drained_{0};
};

#else  // LBSAGG_OBS_DISABLED

// Stub: same surface, no storage, no atomics. Call sites compile; the
// optimizer deletes the record-building code feeding a stub publish.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t = 4096) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  size_t capacity() const { return 0; }
  bool TryPublish(const FlightRecord&) { return false; }
  size_t Drain(std::vector<FlightRecord>*) { return 0; }
  uint64_t published() const { return 0; }
  uint64_t dropped() const { return 0; }
  uint64_t drained() const { return 0; }
  std::string StatsJson() const {
    return "{\"capacity\":0,\"published\":0,\"dropped\":0,\"drained\":0}";
  }
};

#endif  // LBSAGG_OBS_DISABLED

}  // namespace introspect
}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_INTROSPECT_FLIGHT_RECORDER_H_
