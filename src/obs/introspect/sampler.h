#ifndef LBSAGG_OBS_INTROSPECT_SAMPLER_H_
#define LBSAGG_OBS_INTROSPECT_SAMPLER_H_

// Time-series sampler (DESIGN.md §4.13): periodically snapshots a
// MetricsRegistry and diffs consecutive snapshots into a sliding ring of
// per-period windows — counter deltas (rates), gauge levels, and histogram
// deltas with per-window p50/p99 derived from the fixed bucket bounds. The
// registry's cells keep counting undisturbed: the sampler uses the
// non-draining Snapshot(), so run reports and statusz still see lifetime
// totals.
//
// The clock is pluggable exactly like the Tracer's: bind `clock_ms` to
// SimulatedTransport::VirtualNowMs (or EstimationService::NowMs) and the
// windows are cut on deterministic virtual time; leave it null for a
// steady wall clock. MaybeTick() is designed to sit inside a service drive
// loop (`while (svc.RunSlice()) sampler.MaybeTick();`) — it costs one
// clock read until the period elapses.
//
// Single-threaded by design, like the scheduler that drives it; the
// registry snapshots it takes are themselves thread-safe against concurrent
// increments (the PR-4 accounting contract). Under -DLBSAGG_OBS_DISABLED
// the sampler compiles out to a stub.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace lbsagg {
namespace obs {
namespace introspect {

// Per-window digest of one histogram: how many observations landed in the
// window and where their p50/p99 sit, interpolated inside the fixed
// buckets (Prometheus histogram_quantile arithmetic).
struct HistogramWindow {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  bool operator==(const HistogramWindow&) const = default;
};

// One sampling period. Series are name-sorted (snapshot order), so two
// windows of the same run compare with ==.
struct SampleWindow {
  double t0_ms = 0.0;
  double t1_ms = 0.0;
  std::vector<std::pair<std::string, uint64_t>> counters;  // deltas
  std::vector<std::pair<std::string, double>> gauges;      // levels
  std::vector<std::pair<std::string, HistogramWindow>> histograms;
  bool operator==(const SampleWindow&) const = default;
};

// Quantile q in [0,1] from fixed-bucket counts (`buckets.size() ==
// bounds.size() + 1`, last bucket unbounded), linearly interpolated inside
// the containing bucket; the unbounded tail clamps to the last bound.
// Returns 0 when the window is empty. Exposed for the unit tests.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<uint64_t>& buckets, double q);

struct TimeSeriesSamplerOptions {
  // Registry to sample; null = MetricsRegistry::Default().
  MetricsRegistry* registry = nullptr;
  // Window clock in ms; null = std::chrono::steady_clock.
  std::function<double()> clock_ms;
  // Minimum clock distance between MaybeTick() samples.
  double period_ms = 1000.0;
  // Sliding ring: the newest `max_windows` windows are kept.
  size_t max_windows = 64;
};

#ifndef LBSAGG_OBS_DISABLED

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(TimeSeriesSamplerOptions options = {});

  // Samples if at least period_ms elapsed since the last window boundary
  // (the first call establishes the baseline snapshot without producing a
  // window). Returns true when a window was cut.
  bool MaybeTick();

  // Unconditionally cuts a window at the current clock (first call:
  // baseline only).
  void Tick();

  size_t num_windows() const { return windows_.size(); }
  const std::deque<SampleWindow>& windows() const { return windows_; }
  // Windows ever cut, including ones the sliding ring has evicted.
  uint64_t windows_cut() const { return windows_cut_; }
  double period_ms() const { return options_.period_ms; }

  // The "timeseries" report/statusz section:
  // {"period_ms":..,"windows_cut":..,"windows":[{"t0_ms":..,"t1_ms":..,
  //  "counters":{..},"gauges":{..},"histograms":{"name":{"count":..,
  //  "sum":..,"p50":..,"p99":..}}}]}
  std::string ToJson() const;

 private:
  void CutWindow(double now_ms);

  TimeSeriesSamplerOptions options_;
  bool primed_ = false;
  double last_ms_ = 0.0;
  MetricsSnapshot previous_;
  std::deque<SampleWindow> windows_;
  uint64_t windows_cut_ = 0;
};

#else  // LBSAGG_OBS_DISABLED

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(TimeSeriesSamplerOptions = {}) {}
  bool MaybeTick() { return false; }
  void Tick() {}
  size_t num_windows() const { return 0; }
  const std::deque<SampleWindow>& windows() const {
    static const std::deque<SampleWindow> kEmpty;
    return kEmpty;
  }
  uint64_t windows_cut() const { return 0; }
  double period_ms() const { return 0.0; }
  std::string ToJson() const {
    return "{\"period_ms\":0,\"windows_cut\":0,\"windows\":[]}";
  }
};

#endif  // LBSAGG_OBS_DISABLED

}  // namespace introspect
}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_INTROSPECT_SAMPLER_H_
