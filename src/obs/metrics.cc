#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace lbsagg {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  LBSAGG_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  // lower_bound keeps the documented inclusive-upper-bound contract:
  // an observation equal to bounds[i] lands in bucket i.
  const size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add is not universally lock-free yet; the
  // CAS loop is, and the sum is off every hot path (one Observe per HT
  // contribution / probe search, not per kd-tree node).
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<double> DecadeBounds(double lo, double hi) {
  LBSAGG_CHECK_GT(lo, 0.0);
  std::vector<double> bounds;
  for (double b = lo; b <= hi * (1.0 + 1e-12); b *= 10.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> SmallCountBounds(int hi) {
  std::vector<double> bounds;
  for (int b = 1; b <= hi; b *= 2) bounds.push_back(static_cast<double>(b));
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.push_back({name, cell->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.push_back({name, cell->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    snap.histograms.push_back(
        {name, cell->bounds(), cell->BucketCounts(), cell->count(),
         cell->sum()});
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::SnapshotAndReset() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snap.counters.push_back({name, cell->Drain()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.push_back({name, cell->Drain()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = cell->bounds();
    sample.buckets.resize(sample.bounds.size() + 1);
    for (size_t i = 0; i <= sample.bounds.size(); ++i) {
      sample.buckets[i] =
          cell->buckets_[i].exchange(0, std::memory_order_relaxed);
    }
    sample.count = cell->count_.exchange(0, std::memory_order_relaxed);
    sample.sum = cell->sum_.exchange(0.0, std::memory_order_relaxed);
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsSnapshot::ToJson(int indent) const {
  const std::string pad(indent, ' ');
  const std::string in(indent + 2, ' ');
  const std::string in2(indent + 4, ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << in << "\"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << in2 << '"' << counters[i].name
       << "\": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n" + in) << "},\n";
  os << in << "\"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << in2 << '"' << gauges[i].name
       << "\": " << FormatDouble(gauges[i].value);
  }
  os << (gauges.empty() ? "" : "\n" + in) << "},\n";
  os << in << "\"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    os << (i == 0 ? "\n" : ",\n") << in2 << '"' << h.name
       << "\": {\"count\":" << h.count << ",\"sum\":" << FormatDouble(h.sum)
       << ",\"bounds\":[";
    for (size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) os << ',';
      os << FormatDouble(h.bounds[j]);
    }
    os << "],\"buckets\":[";
    for (size_t j = 0; j < h.buckets.size(); ++j) {
      if (j > 0) os << ',';
      os << h.buckets[j];
    }
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n" + in) << "}\n";
  os << pad << "}";
  return os.str();
}

std::string ShardMetricName(const std::string& prefix, int shard,
                            const std::string& metric) {
  LBSAGG_CHECK_GE(shard, 0);
  std::ostringstream os;
  os << prefix << ".shard" << (shard < 10 ? "0" : "") << shard << '.'
     << metric;
  return os.str();
}

Table MetricsSnapshot::ToTable() const {
  Table table({"metric", "value"});
  for (const CounterSample& c : counters) {
    table.AddRow({c.name, Table::Int(static_cast<long long>(c.value))});
  }
  for (const GaugeSample& g : gauges) {
    table.AddRow({g.name, Table::Num(g.value, 3)});
  }
  for (const HistogramSample& h : histograms) {
    table.AddRow({h.name + ".count",
                  Table::Int(static_cast<long long>(h.count))});
    table.AddRow({h.name + ".mean",
                  Table::Num(h.count == 0 ? 0.0
                                          : h.sum / static_cast<double>(h.count),
                             3)});
  }
  return table;
}

}  // namespace obs
}  // namespace lbsagg
