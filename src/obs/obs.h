#ifndef LBSAGG_OBS_OBS_H_
#define LBSAGG_OBS_OBS_H_

// Hot-path instrumentation handles. Instrumented code never talks to the
// registry directly: it resolves a name to a *Ref once at construction and
// increments through the ref, which is a single relaxed atomic RMW. Passing
// `registry == nullptr` resolves against MetricsRegistry::Default(), which
// is how the "process-wide but explicitly injectable" contract works —
// production code uses the default plane, determinism tests inject fresh
// registries per run and compare snapshots.
//
// Compile-out: configuring with -DLBSAGG_OBS_DISABLED=ON defines
// LBSAGG_OBS_DISABLED, which turns every ref into an empty struct with
// inline no-op members. The local tallies feeding them become dead code the
// optimizer deletes, so the instrumented binary is bit-for-bit free of
// metric work — the baseline the ≤1% overhead gate in tools/check.sh
// compares against.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace lbsagg {
namespace obs {

#ifndef LBSAGG_OBS_DISABLED

inline constexpr bool kObsEnabled = true;

class CounterRef {
 public:
  CounterRef() = default;
  explicit CounterRef(Counter* cell) : cell_(cell) {}
  void Add(uint64_t n = 1) const {
    if (cell_ != nullptr) cell_->Add(n);
  }

 private:
  Counter* cell_ = nullptr;
};

class GaugeRef {
 public:
  GaugeRef() = default;
  explicit GaugeRef(Gauge* cell) : cell_(cell) {}
  void Set(double v) const {
    if (cell_ != nullptr) cell_->Set(v);
  }

 private:
  Gauge* cell_ = nullptr;
};

class HistogramRef {
 public:
  HistogramRef() = default;
  explicit HistogramRef(Histogram* cell) : cell_(cell) {}
  void Observe(double v) const {
    if (cell_ != nullptr) cell_->Observe(v);
  }

 private:
  Histogram* cell_ = nullptr;
};

inline MetricsRegistry& Resolve(MetricsRegistry* registry) {
  return registry != nullptr ? *registry : MetricsRegistry::Default();
}

inline CounterRef GetCounter(MetricsRegistry* registry,
                             const std::string& name) {
  return CounterRef(Resolve(registry).GetCounter(name));
}

inline GaugeRef GetGauge(MetricsRegistry* registry, const std::string& name) {
  return GaugeRef(Resolve(registry).GetGauge(name));
}

inline HistogramRef GetHistogram(MetricsRegistry* registry,
                                 const std::string& name,
                                 std::vector<double> bounds) {
  return HistogramRef(
      Resolve(registry).GetHistogram(name, std::move(bounds)));
}

#else  // LBSAGG_OBS_DISABLED

inline constexpr bool kObsEnabled = false;

struct CounterRef {
  void Add(uint64_t = 1) const {}
};
struct GaugeRef {
  void Set(double) const {}
};
struct HistogramRef {
  void Observe(double) const {}
};

inline CounterRef GetCounter(MetricsRegistry*, const std::string&) {
  return {};
}
inline GaugeRef GetGauge(MetricsRegistry*, const std::string&) { return {}; }
inline HistogramRef GetHistogram(MetricsRegistry*, const std::string&,
                                 std::vector<double>) {
  return {};
}

#endif  // LBSAGG_OBS_DISABLED

}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_OBS_H_
