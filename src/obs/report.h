#ifndef LBSAGG_OBS_REPORT_H_
#define LBSAGG_OBS_REPORT_H_

// RunReport: one JSON/table artifact per run merging everything the layers
// observed — estimator RunningStats (mean/CI), the metric plane's counters,
// gauges and histograms (client queries, kd-tree visits, HT weight
// histogram, ...), and raw JSON sections from subsystems with their own
// serialization (TransportMetrics). Emitted by core/runner's
// BuildRunReport, every bench/fig* target (LBSAGG_RUN_REPORT=path), and
// examples/flaky_service --report. Validated against
// tools/report_schema.json by tools/validate_report.py.

#include <map>
#include <string>

#include "obs/metrics.h"
#include "util/stats.h"
#include "util/table.h"

namespace lbsagg {
namespace obs {

class RunReport {
 public:
  static constexpr int kSchemaVersion = 1;

  // String / numeric key-value metadata ("estimator": "lr", "budget": 4000).
  void SetMeta(const std::string& key, const std::string& value);
  void SetMetaNum(const std::string& key, double value);

  // Named RunningStats block (serialized via RunningStats::ToJson).
  void AddStats(const std::string& name, const RunningStats& stats);

  // The metric plane at end of run. Replaces any previous snapshot.
  void SetSnapshot(MetricsSnapshot snapshot);
  const MetricsSnapshot& snapshot() const { return snapshot_; }

  // Attaches a pre-serialized JSON value under sections.<name>; this is how
  // TransportMetrics rides along without obs depending on transport.
  void AddJsonSection(const std::string& name, const std::string& raw_json);

  std::string ToJson(int indent = 0) const;
  Table ToTable() const;

 private:
  std::map<std::string, std::string> meta_;
  std::map<std::string, double> meta_num_;
  std::map<std::string, RunningStats> stats_;
  MetricsSnapshot snapshot_;
  std::map<std::string, std::string> sections_;
};

}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_REPORT_H_
