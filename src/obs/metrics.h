#ifndef LBSAGG_OBS_METRICS_H_
#define LBSAGG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/table.h"

namespace lbsagg {
namespace obs {

// The process-wide (but explicitly injectable) metric plane. Three cell
// kinds — monotonic counters, last-write gauges, fixed-bucket histograms —
// registered by name in a MetricsRegistry. Cells are pointer-stable for the
// registry's lifetime, so hot paths resolve a name to a cell once (at
// construction) and afterwards pay exactly one relaxed atomic RMW per
// increment; the registry lock guards only name registration and snapshots.
//
// Naming scheme (DESIGN.md §4.8): `<layer>.<component>.<metric>`, e.g.
// `spatial.kdtree.nodes_visited`, `client.queries`, `estimator.lr.rounds`,
// `transport.attempts`.
//
// Accounting-period contract: SnapshotAndReset() drains every cell with an
// atomic exchange, so each concurrent increment lands in exactly one
// accounting period — sum(period snapshots) + live value == total, even
// while dispatcher workers are incrementing (pinned under TSAN by
// obs_test.cc). Cross-*cell* consistency is not promised: an increment
// racing the snapshot may appear one period later than a related cell's.

// Monotonic counter. Increments are relaxed: counters order nothing.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  // Returns the current value and resets to zero in one atomic step.
  uint64_t Drain() { return value_.exchange(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins double (a level, not a rate: virtual clock, queue depth).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  double Drain() { return value_.exchange(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], the
// implicit last bucket is unbounded. Bounds are fixed at registration so
// Observe() is a binary search plus two relaxed RMWs (bucket + count) and a
// CAS loop for the running sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;

 private:
  friend class MetricsRegistry;  // drains cells for SnapshotAndReset

  std::vector<double> bounds_;                   // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Default bounds for the two recurring shapes: Horvitz–Thompson weights
// (decades from 1 to 1e8) and small integer depths/counts (1..64).
std::vector<double> DecadeBounds(double lo, double hi);
std::vector<double> SmallCountBounds(int hi);

// One metric's value at snapshot time. Name-sorted within a snapshot, so
// two snapshots of the same run compare bit-identically with ==.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
  bool operator==(const CounterSample&) const = default;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
  bool operator==(const GaugeSample&) const = default;
};
struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1 (last unbounded)
  uint64_t count = 0;
  double sum = 0.0;
  bool operator==(const HistogramSample&) const = default;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // `{"counters":{...},"gauges":{...},"histograms":{...}}`, keys sorted.
  std::string ToJson(int indent = 0) const;
  // Counters and gauges as a two-column table (histograms summarized).
  Table ToTable() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

// Create-or-get registry of named cells. Thread-safe; returned pointers
// stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` applies on first registration; later calls return the existing
  // histogram unchanged (bounds are part of the cell's identity).
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  // Copies every cell's current value (cells keep counting).
  MetricsSnapshot Snapshot() const;

  // Drains every cell to zero via atomic exchange and returns the drained
  // values: the snapshot-then-reset primitive. Safe against concurrent
  // increments — see the accounting-period contract above.
  MetricsSnapshot SnapshotAndReset();

  // The process-wide registry instrumented code falls back to when no
  // registry is injected.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;  // guards the maps; cell access is lock-free
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Canonical name for a per-shard metric: "<prefix>.shard<NN>.<metric>"
// with a zero-padded shard number, so the name-sorted order inside a
// MetricsSnapshot is also shard order (e.g. "transport.shard03.attempts").
std::string ShardMetricName(const std::string& prefix, int shard,
                            const std::string& metric);

}  // namespace obs
}  // namespace lbsagg

#endif  // LBSAGG_OBS_METRICS_H_
