#include "obs/report.h"

#include <sstream>

#include "util/json_writer.h"

namespace lbsagg {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// Quoted JSON string with real escaping (JsonWriter::AppendEscaped), so a
// meta value carrying a quote, backslash, or newline cannot corrupt the
// report. The pretty-printed layout itself stays hand-assembled.
std::string Quoted(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  JsonWriter::AppendEscaped(&out, s);
  out.push_back('"');
  return out;
}

// Re-indents a pre-serialized JSON blob by prefixing continuation lines;
// keeps nested sections readable without reparsing them.
std::string IndentBlob(const std::string& blob, const std::string& pad) {
  std::string out;
  out.reserve(blob.size());
  for (char c : blob) {
    out.push_back(c);
    if (c == '\n') out += pad;
  }
  return out;
}

}  // namespace

void RunReport::SetMeta(const std::string& key, const std::string& value) {
  meta_[key] = value;
}

void RunReport::SetMetaNum(const std::string& key, double value) {
  meta_num_[key] = value;
}

void RunReport::AddStats(const std::string& name, const RunningStats& stats) {
  stats_[name] = stats;
}

void RunReport::SetSnapshot(MetricsSnapshot snapshot) {
  snapshot_ = std::move(snapshot);
}

void RunReport::AddJsonSection(const std::string& name,
                               const std::string& raw_json) {
  sections_[name] = raw_json;
}

std::string RunReport::ToJson(int indent) const {
  const std::string pad(indent, ' ');
  const std::string in(indent + 2, ' ');
  const std::string in2(indent + 4, ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << in << "\"schema_version\": " << kSchemaVersion << ",\n";

  os << in << "\"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    os << (first ? "\n" : ",\n") << in2 << Quoted(key) << ": "
       << Quoted(value);
    first = false;
  }
  for (const auto& [key, value] : meta_num_) {
    os << (first ? "\n" : ",\n") << in2 << Quoted(key)
       << ": " << FormatDouble(value);
    first = false;
  }
  os << (first ? "" : "\n" + in) << "},\n";

  os << in << "\"stats\": {";
  first = true;
  for (const auto& [name, stats] : stats_) {
    os << (first ? "\n" : ",\n") << in2 << Quoted(name)
       << ": " << stats.ToJson();
    first = false;
  }
  os << (first ? "" : "\n" + in) << "},\n";

  os << in << "\"metrics\": " << IndentBlob(snapshot_.ToJson(), in) << ",\n";

  os << in << "\"sections\": {";
  first = true;
  for (const auto& [name, blob] : sections_) {
    os << (first ? "\n" : ",\n") << in2 << Quoted(name)
       << ": " << IndentBlob(blob, in2);
    first = false;
  }
  os << (first ? "" : "\n" + in) << "}\n";
  os << pad << "}";
  return os.str();
}

Table RunReport::ToTable() const {
  Table table({"key", "value"});
  for (const auto& [key, value] : meta_) table.AddRow({"meta." + key, value});
  for (const auto& [key, value] : meta_num_) {
    table.AddRow({"meta." + key, Table::Num(value, 3)});
  }
  for (const auto& [name, stats] : stats_) {
    table.AddRow({"stats." + name + ".count",
                  Table::Int(static_cast<long long>(stats.count()))});
    table.AddRow({"stats." + name + ".mean", Table::Num(stats.mean(), 3)});
    table.AddRow({"stats." + name + ".ci95",
                  Table::Num(stats.ConfidenceHalfWidth(), 3)});
  }
  for (const obs::CounterSample& c : snapshot_.counters) {
    table.AddRow({c.name, Table::Int(static_cast<long long>(c.value))});
  }
  for (const obs::GaugeSample& g : snapshot_.gauges) {
    table.AddRow({g.name, Table::Num(g.value, 3)});
  }
  for (const obs::HistogramSample& h : snapshot_.histograms) {
    table.AddRow({h.name + ".count",
                  Table::Int(static_cast<long long>(h.count))});
    table.AddRow(
        {h.name + ".mean",
         Table::Num(h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count),
                    3)});
  }
  return table;
}

}  // namespace obs
}  // namespace lbsagg
