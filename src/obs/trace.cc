#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <utility>

namespace lbsagg {
namespace obs {

namespace {

// Small dense thread ids for the "tid" field: Chrome's format wants ints,
// and per-thread lanes are what make same-thread spans nest by containment.
int CurrentTid() {
  static std::atomic<int> next{1};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// Trace names are compile-time literals and metric-style strings; escape
// the JSON specials anyway so a hostile name cannot corrupt the document.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

}  // namespace

double SteadyTraceClock::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Tracer(const TraceClock* clock)
    : clock_(clock != nullptr ? clock : &default_clock_) {}

void Tracer::AddComplete(const std::string& name, const std::string& category,
                         double ts_us, double dur_us) {
  const int tid = CurrentTid();
  introspect::FlightRecorder* recorder;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back({name, category, ts_us, dur_us, tid});
    recorder = recorder_;
  }
  if (recorder != nullptr) {
    introspect::FlightRecord record;
    record.kind = introspect::FlightRecord::Kind::kSpan;
    record.SetName(name.c_str());
    record.ts_us = ts_us;
    record.dur_us = dur_us;
    record.a = static_cast<uint64_t>(tid);
    recorder->TryPublish(record);
  }
}

uint64_t Tracer::OpenSpan(const std::string& name, const std::string& category,
                          double ts_us) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  open_spans_[ticket] = {name, category, ts_us};
  return ticket;
}

bool Tracer::ResolveSpan(uint64_t ticket, double end_ts_us, bool truncated) {
  OpenSpanRecord span;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_spans_.find(ticket);
    if (it == open_spans_.end()) return false;
    span = std::move(it->second);
    open_spans_.erase(it);
  }
  AddComplete(span.name,
              truncated ? span.category + ".truncated" : span.category,
              span.ts_us, end_ts_us - span.ts_us);
  return true;
}

bool Tracer::CloseSpan(uint64_t ticket, double end_ts_us) {
  return ResolveSpan(ticket, end_ts_us, /*truncated=*/false);
}

bool Tracer::CloseSpanTruncated(uint64_t ticket, double end_ts_us) {
  return ResolveSpan(ticket, end_ts_us, /*truncated=*/true);
}

bool Tracer::DropSpan(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  return open_spans_.erase(ticket) > 0;
}

size_t Tracer::FlushOpenSpans(double end_ts_us) {
  std::vector<uint64_t> tickets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tickets.reserve(open_spans_.size());
    for (const auto& [ticket, span] : open_spans_) tickets.push_back(ticket);
  }
  size_t flushed = 0;
  for (uint64_t ticket : tickets) {
    if (ResolveSpan(ticket, end_ts_us, /*truncated=*/true)) ++flushed;
  }
  return flushed;
}

size_t Tracer::open_span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_spans_.size();
}

void Tracer::SetFlightRecorder(introspect::FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  recorder_ = recorder;
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) os << ',';
    os << "\n{\"name\":\"" << EscapeJson(e.name) << "\",\"cat\":\""
       << EscapeJson(e.category) << "\",\"ph\":\"X\",\"ts\":"
       << FormatDouble(e.ts_us) << ",\"dur\":" << FormatDouble(e.dur_us)
       << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

}  // namespace obs
}  // namespace lbsagg
