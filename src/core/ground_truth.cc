#include "core/ground_truth.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lbsagg {

GroundTruthOracle::GroundTruthOracle(std::vector<Vec2> positions,
                                     const Box& box)
    : positions_(std::move(positions)), box_(box), index_(positions_) {
  LBSAGG_CHECK(!positions_.empty());
}

TopkRegion GroundTruthOracle::TopkCell(int id, int h) const {
  LBSAGG_CHECK_GE(id, 0);
  LBSAGG_CHECK_LT(static_cast<size_t>(id), positions_.size());
  LBSAGG_CHECK_GE(h, 1);
  const Vec2& focal = positions_[id];

  // Initial radius: enough to capture h+1 neighbors.
  const std::vector<Neighbor> nearest =
      index_.Nearest(focal, std::min<int>(h + 2, positions_.size()));
  double rho = 1e-9;
  for (const Neighbor& n : nearest) rho = std::max(rho, n.distance);
  rho *= 4.0;
  const double diag = Distance(box_.lo, box_.hi);

  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<Vec2> candidates;
    for (const Neighbor& n : index_.WithinRadius(focal, rho)) {
      if (n.index != id) candidates.push_back(positions_[n.index]);
    }
    TopkRegion region = ComputeTopkRegion(focal, candidates, box_, h);
    LBSAGG_CHECK(!region.IsEmpty());

    // Farthest cell point from the focal tuple: the maximum over all piece
    // vertices (each piece is convex, so its maximum is at a vertex).
    double max_dist = 0.0;
    for (const ConvexPolygon& piece : region.pieces) {
      max_dist = std::max(max_dist, piece.MaxDistanceFrom(focal));
    }
    if (rho >= 2.0 * max_dist || rho >= 2.0 * diag) return region;
    rho = 2.2 * max_dist;
  }
  LBSAGG_CHECK(false) << "certified pruning did not converge";
  return {};
}

double GroundTruthOracle::TopkCellArea(int id, int h) const {
  return TopkCell(id, h).area;
}

double GroundTruthOracle::UniformInclusionProbability(int id, int h) const {
  return TopkCellArea(id, h) / box_.Area();
}

}  // namespace lbsagg
