#include "core/localize.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/binary_search.h"
#include "util/check.h"

namespace lbsagg {

Localizer::Localizer(LnrClient* client, LocalizeOptions options)
    : client_(client), options_(options) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK_GE(options_.probe_points, 6);
}

std::optional<Vec2> Localizer::Locate(int id, const Vec2& q0) {
  LnrCellComputer computer(client_, options_.cell);
  const std::optional<LnrCellResult> cell = computer.ComputeTop1Cell(id, q0);
  if (!cell.has_value()) return std::nullopt;
  return LocateWithCell(id, *cell);
}

std::optional<Vec2> Localizer::RayDirectionAtVertex(
    int id, const LnrCellResult& cell, const Vec2& o, const Line& d1,
    int d1_neighbor, const Line& d3, int d3_neighbor) {
  (void)id;  // kept for symmetry with the paper's notation (t's vertex)
  const Box& box = client_->region();
  const double eta =
      options_.probe_radius_fraction * Distance(box.lo, box.hi);

  // Identify the two neighbor wedges around the vertex by probing a small
  // circle; the expected winners are the known far-side tuples of the two
  // incident edges.
  const int neighbor_a = d1_neighbor;
  const int neighbor_b = d3_neighbor;
  if (neighbor_a < 0 || neighbor_b < 0 || neighbor_a == neighbor_b) {
    return std::nullopt;
  }
  // The probe pair must straddle the t2|t3 wall *directly*: two adjacent
  // circle points with winners (t2, t3), so the segment between them cannot
  // cross the focal tuple's own wedge (which would make the flip search
  // find d1 or d3 instead of d2).
  std::vector<int> winners(options_.probe_points, -2);
  std::vector<Vec2> circle(options_.probe_points);
  for (int i = 0; i < options_.probe_points; ++i) {
    const double angle = 2.0 * M_PI * i / options_.probe_points;
    circle[i] = o + Vec2{std::cos(angle), std::sin(angle)} * eta;
    if (!box.Contains(circle[i])) continue;
    const std::vector<int> ids = client_->Query(circle[i]);
    winners[i] = ids.empty() ? -1 : ids.front();
  }
  std::optional<Vec2> probe_a;  // top-1 == neighbor across d1
  std::optional<Vec2> probe_b;  // top-1 == neighbor across d3
  for (int i = 0; i < options_.probe_points; ++i) {
    const int j = (i + 1) % options_.probe_points;
    if (winners[i] == neighbor_a && winners[j] == neighbor_b) {
      probe_a = circle[i];
      probe_b = circle[j];
      break;
    }
    if (winners[i] == neighbor_b && winners[j] == neighbor_a) {
      probe_a = circle[j];
      probe_b = circle[i];
      break;
    }
  }
  if (!probe_a.has_value() || !probe_b.has_value()) return std::nullopt;

  // One extra binary search (§4.3): d2 = B(t2, t3) crosses (probe_a,
  // probe_b) exactly once; it is the ray from the vertex o that separates
  // the two neighbor cells.
  LnrEdgeFinder finder(client_, options_.cell.search, CellMembership::kTop1);
  const int t2 = neighbor_a;
  const auto is_t2_top = [t2](const std::vector<int>& ids) {
    return !ids.empty() && ids.front() == t2;
  };
  const std::optional<FlipPoint> flip =
      finder.FindFlipOnSegment(is_t2_top, *probe_a, *probe_b);
  if (!flip.has_value()) return std::nullopt;
  if (Distance(flip->midpoint, o) < 1e-12) return std::nullopt;

  // The vertex o carries an O(ε) position error, so a line pinned at o and
  // a point only η away would have direction noise ~ε/η. Instead fix d2 by
  // a second flip point much farther out along the inferred direction; if
  // the t2/t3 wall ends early (another cell intervenes), shrink the
  // baseline until the flip straddles again.
  Line d2 = Line::Through(o, flip->midpoint);
  const Vec2 wall_dir = Normalized(flip->midpoint - o);
  for (double factor = options_.baseline_factor; factor >= 4.0;
       factor *= 0.5) {
    const double r_far = eta * factor;
    const Vec2 far_a = box.Clamp(o + Rotated(wall_dir, +0.3) * r_far);
    const Vec2 far_b = box.Clamp(o + Rotated(wall_dir, -0.3) * r_far);
    std::optional<FlipPoint> far_flip =
        finder.FindFlipOnSegment(is_t2_top, far_a, far_b);
    if (!far_flip.has_value()) {
      far_flip = finder.FindFlipOnSegment(is_t2_top, far_b, far_a);
    }
    if (!far_flip.has_value()) continue;
    // Accept only a flip on the same t2/t3 wall: the near side must be won
    // by t2 (the predicate guarantees it) and the far side by t3.
    if (far_flip->far_ids.empty() ||
        far_flip->far_ids.front() != neighbor_b) {
      continue;
    }
    if (Distance(far_flip->midpoint, flip->midpoint) < 1e-12) continue;
    d2 = Line::Through(flip->midpoint, far_flip->midpoint);
    break;
  }

  // Reflection identity: θ(o→t) = φ(d1) − φ(d2) + φ(d3)  (mod π).
  const double theta = d1.Angle() - d2.Angle() + d3.Angle();
  const Vec2 dir{std::cos(theta), std::sin(theta)};

  // Resolve the mod-π ambiguity: the tuple lies on the cell side of both
  // incident bisectors.
  for (const double sign : {+1.0, -1.0}) {
    const Vec2 p = o + dir * (sign * eta);
    if (d1.Side(p) < 0 && d3.Side(p) < 0 && cell.cell.Contains(p, 1e-6)) {
      return dir * sign;
    }
  }
  // Fall back to the side test alone (the vertex may sit on the box edge
  // where the polygon test is brittle).
  for (const double sign : {+1.0, -1.0}) {
    const Vec2 p = o + dir * (sign * eta);
    if (d1.Side(p) < 0 && d3.Side(p) < 0) return dir * sign;
  }
  return std::nullopt;
}

std::optional<Vec2> Localizer::LocateWithCell(int id,
                                              const LnrCellResult& cell) {
  if (cell.cell.IsEmpty()) return std::nullopt;
  const Box& box = client_->region();
  const double tol = 1e-7 * Distance(box.lo, box.hi);

  // Candidate vertices: intersections of two inferred bisector edges that
  // lie on the cell boundary (box corners carry no reflection information).
  struct Candidate {
    Vec2 vertex;
    const LnrEdgeInfo* e1;
    const LnrEdgeInfo* e2;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < cell.edges.size(); ++i) {
    // Only true bisector edges carry the reflection property; box edges and
    // coverage-limit chords (neighbor < 0) do not.
    if (cell.edges[i].is_box_edge || cell.edges[i].neighbor_id < 0) continue;
    for (size_t j = i + 1; j < cell.edges.size(); ++j) {
      if (cell.edges[j].is_box_edge || cell.edges[j].neighbor_id < 0) continue;
      const std::optional<Vec2> x =
          cell.edges[i].line.Intersect(cell.edges[j].line);
      if (!x.has_value() || !box.Contains(*x)) continue;
      if (!cell.cell.Contains(*x, tol)) continue;
      candidates.push_back({*x, &cell.edges[i], &cell.edges[j]});
    }
  }
  if (candidates.size() < 2) return std::nullopt;

  // Conditioning: the position is the intersection of the two rays, so the
  // pair of vertices should subtend an angle near 90° at the tuple —
  // near-collinear rays (vertices on opposite sides of the cell) amplify
  // the angular noise unboundedly. The tuple is unknown; the cell centroid
  // is an adequate proxy.
  const Vec2 centroid = cell.cell.Centroid();
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      pairs.push_back({i, j});
    }
  }
  auto abs_cos_at_centroid = [&](const std::pair<size_t, size_t>& pr) {
    const Vec2 u = candidates[pr.first].vertex - centroid;
    const Vec2 v = candidates[pr.second].vertex - centroid;
    const double denom = Norm(u) * Norm(v);
    if (denom <= 0.0) return 1.0;
    return std::abs(Dot(u, v)) / denom;
  };
  std::sort(pairs.begin(), pairs.end(),
            [&](const auto& a, const auto& b) {
              return abs_cos_at_centroid(a) < abs_cos_at_centroid(b);
            });
  if (pairs.size() > 6) pairs.resize(6);

  for (const auto& [i, j] : pairs) {
    const Candidate& a = candidates[i];
    const Candidate& b = candidates[j];
    const std::optional<Vec2> dir_a =
        RayDirectionAtVertex(id, cell, a.vertex, a.e1->line,
                             a.e1->neighbor_id, a.e2->line, a.e2->neighbor_id);
    if (!dir_a.has_value()) continue;
    const std::optional<Vec2> dir_b =
        RayDirectionAtVertex(id, cell, b.vertex, b.e1->line,
                             b.e1->neighbor_id, b.e2->line, b.e2->neighbor_id);
    if (!dir_b.has_value()) continue;

    const Line ray_a = Line::Through(a.vertex, a.vertex + *dir_a);
    const Line ray_b = Line::Through(b.vertex, b.vertex + *dir_b);
    const std::optional<Vec2> p = ray_a.Intersect(ray_b);
    if (!p.has_value()) continue;
    // The position must lie forward along both rays.
    if (Dot(*p - a.vertex, *dir_a) <= 0) continue;
    if (Dot(*p - b.vertex, *dir_b) <= 0) continue;
    return p;
  }
  return std::nullopt;
}

}  // namespace lbsagg
