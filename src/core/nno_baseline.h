#ifndef LBSAGG_CORE_NNO_BASELINE_H_
#define LBSAGG_CORE_NNO_BASELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/trace_point.h"
#include "engine/engine.h"
#include "engine/nno_resolver.h"  // NnoOptions, NnoDiagnostics
#include "lbs/client.h"

namespace lbsagg {

// LR-LBS-NNO — the nearest-neighbor-oracle estimator of Dalvi et al. [10],
// the closest prior work (§1.2, §6.1 "Algorithms Evaluated").
//
// Per sample: draw a random location, take the *top-1* tuple t, and estimate
// the area of t's Voronoi cell by Monte-Carlo membership probes inside an
// adaptively grown disc around t. The estimate 1/p̂ is inherently biased
// (E[1/p̂] ≠ 1/p) and each sample costs many queries — the two weaknesses
// LR-LBS-AGG removes.
//
// A thin adapter over the estimation engine (DESIGN.md §4.9): the probing
// lives in engine::NnoProbeResolver, the HT accumulation in a single
// engine::AggregateQuery. Single-aggregate runs are bit-identical to the
// pre-engine monolith.
class NnoEstimator {
 public:
  NnoEstimator(LrClient* client, const AggregateSpec& aggregate,
               NnoOptions options = {});

  // One sampling round.
  void Step() { engine_.Step(); }

  double Estimate() const { return query_->Estimate(); }
  double ConfidenceHalfWidth(double z = 1.96) const {
    return query_->ConfidenceHalfWidth(z);
  }
  size_t rounds() const { return query_->rounds(); }
  uint64_t queries_used() const { return client_->queries_used(); }
  const NnoDiagnostics& diagnostics() const { return resolver_.diagnostics(); }
  const std::vector<TracePoint>& trace() const { return query_->trace(); }

  // Resolver diagnostics as raw JSON, picked up by MakeHandle for run
  // reports.
  std::string diagnostics_json() const { return resolver_.diagnostics_json(); }

 private:
  LrClient* client_;
  engine::NnoProbeResolver resolver_;
  engine::EstimationEngine engine_;
  engine::AggregateQuery* query_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_NNO_BASELINE_H_
