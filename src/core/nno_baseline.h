#ifndef LBSAGG_CORE_NNO_BASELINE_H_
#define LBSAGG_CORE_NNO_BASELINE_H_

#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "core/lr_agg.h"  // TracePoint
#include "core/sampler.h"
#include "lbs/client.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lbsagg {

// Configuration of the prior-work baseline. The knobs mirror the tunable
// parameters of [10]; benchmarks use settings tuned for its best behaviour,
// as the paper's experiments did.
struct NnoOptions {
  // Points probed on each ring while growing the candidate disc.
  int ring_points = 6;
  // Monte-Carlo membership samples used for the area estimate.
  int area_samples = 24;
  // Initial disc radius as a multiple of the query→tuple distance.
  double init_radius_factor = 2.0;
  // Maximum disc doublings.
  int max_growth_rounds = 12;
  uint64_t seed = 7;

  // Metric plane for the estimator.nno.* counters (rounds, growth_rounds,
  // mc_probes, mc_hits); null lands on obs::MetricsRegistry::Default().
  obs::MetricsRegistry* registry = nullptr;

  // When set, each Step() emits an "estimator.round" span with a nested
  // "estimator.cell" span around the cell-area estimate.
  obs::Tracer* tracer = nullptr;
};

// LR-LBS-NNO — the nearest-neighbor-oracle estimator of Dalvi et al. [10],
// the closest prior work (§1.2, §6.1 "Algorithms Evaluated").
//
// Per sample: draw a random location, take the *top-1* tuple t, and estimate
// the area of t's Voronoi cell by Monte-Carlo membership probes inside an
// adaptively grown disc around t. The estimate 1/p̂ is inherently biased
// (E[1/p̂] ≠ 1/p) and each sample costs many queries — the two weaknesses
// LR-LBS-AGG removes.
class NnoEstimator {
 public:
  NnoEstimator(LrClient* client, const AggregateSpec& aggregate,
               NnoOptions options = {});

  // One sampling round.
  void Step();

  double Estimate() const;
  double ConfidenceHalfWidth(double z = 1.96) const {
    return numerator_.ConfidenceHalfWidth(z);
  }
  size_t rounds() const { return numerator_.count(); }
  uint64_t queries_used() const { return client_->queries_used(); }
  const std::vector<TracePoint>& trace() const { return trace_; }

 private:
  // Monte-Carlo estimate of |V(t)| for the tuple at `pos`; consumes queries.
  double EstimateCellArea(int id, const Vec2& pos);

  LrClient* client_;
  AggregateSpec aggregate_;
  NnoOptions options_;
  Rng rng_;
  RunningStats numerator_;
  RunningStats denominator_;
  std::vector<TracePoint> trace_;
  obs::CounterRef rounds_counter_;
  obs::CounterRef growth_rounds_counter_;
  obs::CounterRef mc_probes_counter_;
  obs::CounterRef mc_hits_counter_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_NNO_BASELINE_H_
