#include "core/lr3_agg.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace lbsagg {

Lr3AggEstimator::Lr3AggEstimator(Lr3Client* client, Lr3AggOptions options)
    : client_(client), options_(options), rng_(options.seed) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK_GE(options_.refine_rounds, 1);
}

double Lr3AggEstimator::InverseProbability(int id, const Vec3& pos) {
  const Box3& box = client_->region();
  std::vector<Halfspace3> planes = BoxHalfspaces(box);
  std::unordered_set<int> known = {id};

  // Quantized keys of already-queried vertices.
  struct Key {
    int64_t x, y, z;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<int64_t>()(k.x * 0x9e3779b97f4a7c15ll ^ (k.y << 20) ^
                                  k.z);
    }
  };
  const double grid =
      1e-9 * std::max({1.0, std::abs(box.hi.x), std::abs(box.hi.y),
                       std::abs(box.hi.z)});
  std::unordered_set<Key, KeyHash> queried;
  auto key_of = [&](const Vec3& p) {
    return Key{static_cast<int64_t>(std::llround(p.x / grid)),
               static_cast<int64_t>(std::llround(p.y / grid)),
               static_cast<int64_t>(std::llround(p.z / grid))};
  };

  // Theorem-1 refinement: query cell-from-subset vertices; every returned
  // unseen tuple adds a bisector plane.
  bool exact = false;
  for (int round = 0; round < options_.refine_rounds; ++round) {
    std::vector<Vec3> vertices = EnumeratePolytopeVertices(planes);
    LBSAGG_CHECK(!vertices.empty()) << "cell polytope degenerate";
    // Nearest candidate vertices first: they expose the tuples that shape
    // the cell with the fewest queries.
    std::sort(vertices.begin(), vertices.end(),
              [&](const Vec3& a, const Vec3& b) {
                return SquaredDistance(a, pos) < SquaredDistance(b, pos);
              });
    bool new_tuple = false;
    int queries_this_round = 0;
    for (const Vec3& v : vertices) {
      if (queries_this_round >= options_.max_vertex_queries_per_round) break;
      if (!queried.insert(key_of(v)).second) continue;
      ++queries_this_round;
      for (const Lr3Client::Item& item : client_->Query(v)) {
        if (known.insert(item.id).second) {
          planes.push_back(Halfspace3::Closer(pos, item.position));
          new_tuple = true;
        }
      }
    }
    if (!new_tuple && queries_this_round == 0) {
      exact = true;  // every vertex already queried, none exposed a tuple
      break;
    }
    if (!new_tuple) {
      exact = true;  // Theorem 1: the polytope is the true cell
      break;
    }
  }

  // §3.2.4 Monte-Carlo trials from the vertex bounding box, whose volume is
  // known exactly. E[#trials] = vol(bbox)/vol(cell).
  const std::vector<Vec3> vertices = EnumeratePolytopeVertices(planes);
  LBSAGG_CHECK(!vertices.empty());
  const Box3 bbox = BoundingBox3(vertices);
  const double bbox_volume = bbox.Volume();
  LBSAGG_CHECK_GT(bbox_volume, 0.0);

  auto one_trial_run = [&]() {
    int trials = 0;
    while (true) {
      ++trials;
      LBSAGG_CHECK_LE(trials, 1000000);
      const Vec3 x = bbox.SamplePoint(rng_);
      if (!PolytopeContains(planes, x)) continue;  // certainly outside
      if (exact) break;  // the polytope IS the cell: free hit
      const std::vector<Lr3Client::Item> items = client_->Query(x);
      if (!items.empty() && items.front().id == id) break;
      for (const Lr3Client::Item& item : items) {
        // Opportunistic refinement costs nothing extra.
        if (known.insert(item.id).second) {
          planes.push_back(Halfspace3::Closer(pos, item.position));
        }
      }
    }
    return trials;
  };

  double mean_trials = 0.0;
  // When the cell is exact, trials are query-free: average many for a lower
  // variance (still unbiased — each r is an independent geometric draw).
  const int repeats = exact ? 64 : 1;
  for (int rep = 0; rep < repeats; ++rep) {
    mean_trials += static_cast<double>(one_trial_run()) / repeats;
  }
  return mean_trials * client_->region().Volume() / bbox_volume;
}

void Lr3AggEstimator::Step() {
  const Vec3 q = client_->region().SamplePoint(rng_);
  const std::vector<Lr3Client::Item> items = client_->Query(q);
  double contribution = 0.0;
  if (!items.empty()) {
    const Lr3Client::Item& top = items.front();
    contribution =
        client_->Value(top.id) * InverseProbability(top.id, top.position);
  }
  stats_.Add(contribution);
  trace_.push_back({client_->queries_used(), Estimate()});
}

}  // namespace lbsagg
