#ifndef LBSAGG_CORE_LR3_AGG_H_
#define LBSAGG_CORE_LR3_AGG_H_

// §5.4: the LR machinery in three dimensions. Theorem 1 carries over
// verbatim — the Voronoi cell of a tuple computed from a subset of tuples
// contains the true cell, and any strict container has a vertex exposing an
// unseen tuple — with bisector *planes* instead of lines and polytope
// vertex enumeration instead of polygon clipping.
//
// The one piece that does NOT carry over cheaply is exact polytope volume.
// It is not needed: the §3.2.4 Monte-Carlo trial estimator only requires
// (a) a region that provably contains the cell and has a known volume — the
// axis bounding box of the cell's vertices — and (b) a membership test.
// Trials drawn uniformly from that box give E[#trials] = vol(box)/vol(cell),
// keeping the Horvitz–Thompson estimate exactly unbiased without ever
// computing vol(cell).

#include <cstdint>
#include <vector>

#include "core/trace_point.h"
#include "geometry3d/polytope3.h"
#include "lbs3/lbs3.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lbsagg {

struct Lr3AggOptions {
  // Theorem-1 refinement rounds before switching to Monte-Carlo trials
  // (3-D cells have many vertices; a couple of rounds tighten the polytope
  // enough that trials mostly hit).
  int refine_rounds = 3;
  // Safety cap on the vertices queried per round (cells of m constraints
  // have O(m³) candidate vertices; querying the nearest suffices to expose
  // unseen tuples quickly).
  int max_vertex_queries_per_round = 48;
  uint64_t seed = 11;
};

// COUNT/SUM estimation over a 3-D location-returned kNN interface.
class Lr3AggEstimator {
 public:
  // `client` must outlive the estimator. SUM uses the per-tuple values of
  // the dataset; pass value ≡ 1 tuples for COUNT.
  Lr3AggEstimator(Lr3Client* client, Lr3AggOptions options = {});

  // One sampling round (top-1 tuple of a uniform random location).
  void Step();

  double Estimate() const {
    return stats_.count() == 0 ? 0.0 : stats_.mean();
  }
  double ConfidenceHalfWidth(double z = 1.96) const {
    return stats_.ConfidenceHalfWidth(z);
  }
  size_t rounds() const { return stats_.count(); }
  uint64_t queries_used() const { return client_->queries_used(); }
  const std::vector<TracePoint>& trace() const { return trace_; }

  // Exposed for tests: unbiased multiplier with E[...] = 1/p(t) for the
  // top-1 cell of tuple `id`.
  double InverseProbability(int id, const Vec3& pos);

 private:
  Lr3Client* client_;
  Lr3AggOptions options_;
  Rng rng_;
  RunningStats stats_;
  std::vector<TracePoint> trace_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_LR3_AGG_H_
