#ifndef LBSAGG_CORE_LR_CELL_H_
#define LBSAGG_CORE_LR_CELL_H_

#include <cstdint>

#include "core/history.h"
#include "core/sampler.h"
#include "geometry/topk_region.h"
#include "lbs/client.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace lbsagg {

// Configuration of the Voronoi-cell computation over an LR interface. Each
// flag corresponds to one §3.2 error-reduction technique, so the Figure-20
// ablation can switch them on one at a time.
struct LrCellOptions {
  // §3.2.1 Fast-Init (Algorithm 2): start from four fake tuples forming a
  // small box around t instead of the whole region.
  bool fast_init = true;

  // Half-width of the fake box as a fraction of the box diagonal, used when
  // no history is available to guess the local tuple spacing.
  double fast_init_fraction = 0.01;

  // §3.2.2 Leverage-History (Algorithm 3): seed D' with the nearest
  // previously observed tuples.
  bool use_history = true;
  size_t history_neighbors = 32;

  // §3.2.4 Monte-Carlo upper/lower bounds: stop refining the cell once the
  // bounding polygon is tight and finish with unbiased geometric trials.
  bool monte_carlo = true;
  // Switch to Monte Carlo when a refinement round shrinks the region area
  // by less than this fraction.
  double mc_shrink_threshold = 0.05;
  int mc_min_rounds = 2;

  // Incremental region refinement: keep a TopkRegionRefiner alive across
  // rounds and clip only the bisectors of tuples discovered since the last
  // round, instead of recomputing the whole arrangement from every known
  // tuple each round. Turns the per-round cost from O(total bisectors) into
  // O(new bisectors). The resulting cell matches the from-scratch cell up
  // to floating-point clipping accuracy, but its boundary subdivision (and
  // hence the vertex query order) can differ, so traces are not
  // bit-identical to the default path — off by default.
  bool incremental_regions = false;

  // Safety cap on refinement rounds (never reached in practice).
  int max_rounds = 256;

  // Metric plane for the estimator.lr_cell.* counters (refine_rounds,
  // mc_trials, queries); null lands on obs::MetricsRegistry::Default().
  // Estimators propagate their own registry here when this is unset.
  obs::MetricsRegistry* registry = nullptr;
};

// Computes (top-h) Voronoi cells of returned tuples through a
// location-returned interface, either exactly (Theorem 1 / Algorithm 1) or
// as an unbiased Monte-Carlo estimate of the inverse inclusion probability
// (§3.2.4).
class LrCellComputer {
 public:
  // All pointers must outlive the computer. `history` may be shared across
  // samples and estimators; every tuple location the computer observes is
  // recorded there.
  LrCellComputer(LrClient* client, History* history,
                 const QuerySampler* sampler, LrCellOptions options = {});

  struct Result {
    // Unbiased multiplier with E[inv_probability] = 1 / p(t), where
    // p(t) = ∫_{V_h(t)} f — the Horvitz–Thompson weight of the sample.
    double inv_probability = 0.0;
    // True when the cell was pinned down exactly (no Monte-Carlo step).
    bool exact = true;
    // Area of the final region: the cell itself when exact, otherwise the
    // bounding region V' the trials were drawn from.
    double region_area = 0.0;
    uint64_t queries = 0;
    int rounds = 0;
    int mc_trials = 0;
  };

  // Computes the inverse inclusion probability of tuple `id` located at
  // `pos` for the top-h cell. Requires 1 <= h <= client k (the confirmation
  // queries must be able to see the tuple at rank h).
  Result ComputeInverseProbability(int id, const Vec2& pos, int h, Rng& rng);

  // Runs the Theorem-1 loop to exact convergence and returns the cell.
  // Ignores the monte_carlo option.
  TopkRegion ComputeExactCell(int id, const Vec2& pos, int h);

  const LrCellOptions& options() const { return options_; }

 private:
  struct LoopOutcome {
    TopkRegion region;
    bool exact = false;
    uint64_t queries = 0;
    int rounds = 0;
    // Vertices where the tuple was confirmed within top-h (inside the cell)
    // and within top-k (usable for the circle lower bound).
    std::vector<Vec2> confirmed_in_cell;
    std::vector<Vec2> confirmed_cover;
  };

  // The shared Theorem-1 refinement loop. If `allow_early_stop`, returns a
  // non-exact outcome once the region stops shrinking fast.
  LoopOutcome RefineCell(int id, const Vec2& pos, int h, bool allow_early_stop);

  LrClient* client_;
  History* history_;
  const QuerySampler* sampler_;
  LrCellOptions options_;
  obs::CounterRef refine_rounds_counter_;
  obs::CounterRef mc_trials_counter_;
  obs::CounterRef queries_counter_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_LR_CELL_H_
