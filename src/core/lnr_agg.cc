#include "core/lnr_agg.h"

#include "util/check.h"

namespace lbsagg {

namespace {

// One observability pointer instruments the whole stack: the estimator's
// registry flows into the cell computer (and from there into the binary
// searches) unless the caller pinned a different plane there explicitly.
LnrCellOptions PropagateRegistry(LnrCellOptions cell,
                                 obs::MetricsRegistry* registry) {
  if (cell.registry == nullptr) cell.registry = registry;
  return cell;
}

}  // namespace

LnrAggEstimator::LnrAggEstimator(LnrClient* client,
                                 const QuerySampler* sampler,
                                 const AggregateSpec& aggregate,
                                 LnrAggOptions options)
    : client_(client),
      sampler_(sampler),
      aggregate_(aggregate),
      options_(options),
      cell_computer_(client, PropagateRegistry(options.cell, options.registry)),
      localizer_(client, options.localize),
      rng_(options.seed),
      rounds_counter_(
          obs::GetCounter(options.registry, "estimator.lnr.rounds")),
      cells_inferred_counter_(
          obs::GetCounter(options.registry, "estimator.lnr.cells_inferred")),
      cache_hits_counter_(
          obs::GetCounter(options.registry, "estimator.lnr.cache_hits")),
      ht_weight_hist_(obs::GetHistogram(options.registry,
                                        "estimator.lnr.ht_weight",
                                        obs::DecadeBounds(1.0, 1e9))),
      tracer_(options.tracer) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK(sampler_ != nullptr);
}

void LnrAggEstimator::AccumulateTuple(int id, const Vec2& q0,
                                      double probability, double* numerator,
                                      double* denominator) {
  LBSAGG_CHECK_GT(probability, 0.0);
  ht_weight_hist_.Observe(1.0 / probability);
  if (aggregate_.position_condition) {
    // §4.3: the tuple's location is not returned — infer it to the
    // binary-search precision, then evaluate the condition.
    const std::optional<Vec2> pos = localizer_.Locate(id, q0);
    if (!pos.has_value() || !aggregate_.position_condition(*pos)) return;
  }
  *numerator += aggregate_.NumeratorValue(*client_, id) / probability;
  *denominator += aggregate_.DenominatorValue(*client_, id) / probability;
}

void LnrAggEstimator::Step() {
  obs::ScopedSpan round_span(tracer_, "estimator.round", "estimator");
  const Vec2 q = sampler_->Sample(rng_);
  const std::vector<int> ids = client_->Query(q);

  double round_numerator = 0.0;
  double round_denominator = 0.0;

  if (!ids.empty()) {
    if (options_.use_topk_cells && client_->k() > 1) {
      // §4.2: each of the k returned tuples contributes, weighted by its
      // (possibly concave) top-k cell.
      for (int id : ids) {
        if (!aggregate_.Passes(*client_, id)) {
          continue;  // zero contribution — skip the cell inference
        }
        double p = 0.0;
        if (const auto it = topk_probability_cache_.find(id);
            options_.reuse_cell_probabilities &&
            it != topk_probability_cache_.end()) {
          p = it->second;
          ++diagnostics_.cache_hits;
          cache_hits_counter_.Add(1);
        } else {
          std::optional<LnrCellResult> cell;
          {
            obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
            cell = cell_computer_.ComputeTopkCell(id, q);
          }
          if (!cell.has_value() || cell->region.IsEmpty()) continue;
          p = sampler_->RegionProbability(cell->region);
          topk_probability_cache_.emplace(id, p);
          ++diagnostics_.cells_inferred;
          cells_inferred_counter_.Add(1);
        }
        if (p <= 0.0) continue;
        AccumulateTuple(id, q, p, &round_numerator, &round_denominator);
      }
    } else {
      const int id = ids.front();
      if (aggregate_.Passes(*client_, id)) {
        double p = 0.0;
        if (const auto it = top1_probability_cache_.find(id);
            options_.reuse_cell_probabilities &&
            it != top1_probability_cache_.end()) {
          p = it->second;
          ++diagnostics_.cache_hits;
          cache_hits_counter_.Add(1);
        } else {
          std::optional<LnrCellResult> cell;
          {
            obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
            cell = cell_computer_.ComputeTop1Cell(id, q);
          }
          if (cell.has_value() && !cell->cell.IsEmpty()) {
            p = sampler_->RegionProbability(cell->cell);
          }
          top1_probability_cache_.emplace(id, p);
          ++diagnostics_.cells_inferred;
          cells_inferred_counter_.Add(1);
        }
        if (p > 0.0) {
          AccumulateTuple(id, q, p, &round_numerator, &round_denominator);
        }
      }
    }
  }

  numerator_.Add(round_numerator);
  denominator_.Add(round_denominator);
  ++diagnostics_.rounds;
  rounds_counter_.Add(1);
  trace_.push_back({client_->queries_used(), Estimate()});
}

double LnrAggEstimator::Estimate() const {
  if (numerator_.count() == 0) return 0.0;
  if (aggregate_.kind == AggregateSpec::Kind::kAvg) {
    if (denominator_.mean() == 0.0) return 0.0;
    return numerator_.mean() / denominator_.mean();
  }
  return numerator_.mean();
}

double LnrAggEstimator::ConfidenceHalfWidth(double z) const {
  return numerator_.ConfidenceHalfWidth(z);
}

}  // namespace lbsagg
