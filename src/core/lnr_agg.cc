#include "core/lnr_agg.h"

#include "util/check.h"

namespace lbsagg {

LnrAggEstimator::LnrAggEstimator(LnrClient* client,
                                 const QuerySampler* sampler,
                                 const AggregateSpec& aggregate,
                                 LnrAggOptions options)
    : client_(client),
      resolver_(client, sampler, options),
      engine_(&resolver_,
              engine::EngineOptions{options.registry, options.tracer}),
      query_(engine_.AddAggregate(aggregate)) {
  LBSAGG_CHECK(client_ != nullptr);
}

}  // namespace lbsagg
