#ifndef LBSAGG_CORE_LOCALIZE_H_
#define LBSAGG_CORE_LOCALIZE_H_

#include <optional>

#include "core/lnr_cell.h"
#include "lbs/client.h"

namespace lbsagg {

struct LocalizeOptions {
  LnrCellOptions cell;
  // Radius (as a fraction of the box diagonal) of the probe circle used to
  // identify the two neighboring cells around a Voronoi vertex. Must be
  // well above the vertex position error (~edge error ε), or the inferred
  // d2 direction is dominated by noise.
  double probe_radius_fraction = 1e-3;
  // Points probed on the circle.
  int probe_points = 12;
  // The d2 bisector is fixed by two flip points: one at the probe radius
  // and one `baseline_factor`× farther out, which divides its direction
  // error by the same factor.
  double baseline_factor = 40.0;
};

// Tuple position computation over an LNR interface (§4.3).
//
// Once the top-1 Voronoi cell of a tuple is known, each cell vertex o sits
// at equal distance from t and two neighbors t2, t3, and the three incident
// bisectors d1 = B(t,t2), d3 = B(t,t3), d2 = B(t2,t3) satisfy the
// reflection identity θ(o→t) = φ(d1) − φ(d2) + φ(d3) (mod π). d2 costs one
// extra binary search per vertex; intersecting the rays from two vertices
// yields the exact position — up to the edge-inference error ε and any
// obfuscation the service applies (Figure 21).
class Localizer {
 public:
  Localizer(LnrClient* client, LocalizeOptions options = {});

  // Full pipeline: infer the cell of the tuple that is top-1 at q0, then
  // compute its position. Returns nullopt when the cell has fewer than two
  // usable vertices or the probes fail.
  std::optional<Vec2> Locate(int id, const Vec2& q0);

  // Position from an already-computed top-1 cell (saves the cell queries).
  std::optional<Vec2> LocateWithCell(int id, const LnrCellResult& cell);

 private:
  // Direction (unit vector) of the ray o → t, or nullopt when the vertex
  // could not be resolved. d1/d3 are the incident cell edges with their
  // far-side neighbor tuples.
  std::optional<Vec2> RayDirectionAtVertex(int id, const LnrCellResult& cell,
                                           const Vec2& o, const Line& d1,
                                           int d1_neighbor, const Line& d3,
                                           int d3_neighbor);

  LnrClient* client_;
  LocalizeOptions options_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_LOCALIZE_H_
