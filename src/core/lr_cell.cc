#include "core/lr_cell.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "geometry/circle.h"
#include "geometry/loc_key.h"
#include "geometry/polygon.h"
#include "util/check.h"

namespace lbsagg {

namespace {

// §5.3: restore nearest-neighbor order under non-distance (prominence)
// ranking — every rank test below means distance rank. Skipped entirely for
// plain distance-ranked services, whose results arrive already sorted.
std::vector<LrClient::Item> QueryByDistance(LrClient* client, const Vec2& q) {
  std::vector<LrClient::Item> items = client->Query(q);
  if (!client->distance_ranked()) {
    std::stable_sort(items.begin(), items.end(),
                     [](const LrClient::Item& a, const LrClient::Item& b) {
                       return a.distance < b.distance;
                     });
  }
  return items;
}

}  // namespace

LrCellComputer::LrCellComputer(LrClient* client, History* history,
                               const QuerySampler* sampler,
                               LrCellOptions options)
    : client_(client),
      history_(history),
      sampler_(sampler),
      options_(options),
      refine_rounds_counter_(
          obs::GetCounter(options.registry, "estimator.lr_cell.refine_rounds")),
      mc_trials_counter_(
          obs::GetCounter(options.registry, "estimator.lr_cell.mc_trials")),
      queries_counter_(
          obs::GetCounter(options.registry, "estimator.lr_cell.queries")) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK(history_ != nullptr);
  LBSAGG_CHECK(sampler_ != nullptr);
}

LrCellComputer::LoopOutcome LrCellComputer::RefineCell(int id, const Vec2& pos,
                                                       int h,
                                                       bool allow_early_stop) {
  LBSAGG_CHECK_GE(h, 1);
  LBSAGG_CHECK_LE(h, client_->k());
  const Box& box = client_->region();
  const double grid = LocKeyGrid(box);

  // §5.3 maximum coverage radius: the inclusion region of t is its top-h
  // cell intersected with the d_max disc around t (queries farther away
  // never return t even when it is nearest). The disc enters as the convex
  // domain of the region computation.
  ConvexPolygon domain = ConvexPolygon::FromBox(box);
  if (std::isfinite(client_->max_radius())) {
    const ConvexPolygon disc =
        InscribedCirclePolygon(pos, client_->max_radius());
    for (size_t i = 0; i < disc.size() && !domain.IsEmpty(); ++i) {
      const Vec2& a = disc.vertices()[i];
      const Vec2& b = disc.vertices()[(i + 1) % disc.size()];
      // The disc polygon is CCW, so its interior is Side > 0 of
      // Through(a, b); orient the half-plane to keep it.
      domain = domain.Clip(HalfPlane(Line::Through(b, a)));
    }
    LBSAGG_CHECK(!domain.IsEmpty());
  }

  LoopOutcome out;

  // Known constraint positions (real tuples other than the focal one).
  // Deduplicated by quantized position: history seeds carry no id, so the
  // position is the identity that matters for the bisectors.
  std::vector<Vec2> known;
  std::unordered_set<LocKey, LocKeyHash> known_keys;
  auto add_known = [&](const Vec2& p) {
    if (known_keys.insert(MakeLocKey(p, grid)).second) {
      known.push_back(p);
      return true;
    }
    return false;
  };

  // §3.2.2: seed from history.
  std::vector<Vec2> seed_positions;
  if (options_.use_history) {
    seed_positions =
        history_->NearestOtherPositions(pos, id, options_.history_neighbors);
  }

  // §3.2.1 Fast-Init: when we know nothing around t, probe a small box
  // around it first. The fake tuples only steer the first queries; they are
  // never part of D'.
  if (options_.fast_init && seed_positions.empty()) {
    double halfwidth =
        options_.fast_init_fraction *
        Distance(box.lo, box.hi);
    const Vec2 fakes[4] = {pos + Vec2{halfwidth, halfwidth},
                           pos + Vec2{-halfwidth, halfwidth},
                           pos + Vec2{-halfwidth, -halfwidth},
                           pos + Vec2{halfwidth, -halfwidth}};
    const TopkRegion fake_region = ComputeTopkRegion(
        pos, std::vector<Vec2>(fakes, fakes + 4), domain, h);
    for (const Vec2& v : fake_region.BoundaryVertices()) {
      const std::vector<LrClient::Item> items = QueryByDistance(client_, v);
      ++out.queries;
      for (const LrClient::Item& item : items) {
        history_->Record(item.id, item.location);
        if (item.id != id) add_known(item.location);
      }
    }
    // If the box was too small (only t itself returned), `known` stays
    // empty and the loop below reverts to the plain design — exactly the
    // "wasting nothing but four queries" fallback of Algorithm 2.
  }

  for (const Vec2& p : seed_positions) add_known(p);

  std::unordered_map<LocKey, bool, LocKeyHash> queried;  // value: t in top-h
  double prev_area = std::numeric_limits<double>::infinity();

  // Incremental path: feed the refiner only the tuples discovered since the
  // last round (known[consumed..]) instead of re-clipping all of `known`.
  TopkRegionRefiner refiner(domain, h);
  size_t consumed = 0;

  while (true) {
    ++out.rounds;
    LBSAGG_CHECK_LE(out.rounds, options_.max_rounds)
        << "Voronoi refinement did not converge";

    TopkRegion region;
    if (options_.incremental_regions) {
      refiner.AddPoints(
          pos, std::vector<Vec2>(known.begin() + consumed, known.end()));
      consumed = known.size();
      region = refiner.Region();
    } else {
      region = ComputeTopkRegion(pos, known, domain, h);
    }
    LBSAGG_CHECK(!region.IsEmpty());

    // §3.2.4 early stop: the bounding region barely shrank last round.
    if (allow_early_stop && out.rounds > options_.mc_min_rounds &&
        prev_area < std::numeric_limits<double>::infinity()) {
      const double shrink = (prev_area - region.area) / region.area;
      if (shrink < options_.mc_shrink_threshold) {
        out.region = std::move(region);
        out.exact = false;
        return out;
      }
    }
    prev_area = region.area;

    bool new_tuple = false;
    for (const Vec2& v : region.BoundaryVertices()) {
      const LocKey key = MakeLocKey(v, grid);
      if (queried.count(key)) continue;
      const std::vector<LrClient::Item> items = QueryByDistance(client_, v);
      ++out.queries;
      bool t_in_top_h = false;
      bool t_in_result = false;
      for (size_t i = 0; i < items.size(); ++i) {
        const LrClient::Item& item = items[i];
        history_->Record(item.id, item.location);
        if (item.id == id) {
          t_in_result = true;
          if (static_cast<int>(i) < h) t_in_top_h = true;
          continue;
        }
        if (add_known(item.location)) new_tuple = true;
      }
      queried.emplace(key, t_in_top_h);
      if (t_in_top_h) out.confirmed_in_cell.push_back(v);
      if (t_in_result) out.confirmed_cover.push_back(v);
    }

    if (!new_tuple) {
      // Theorem 1: every vertex of the current region returns only known
      // tuples — the region is the exact top-h Voronoi cell.
      out.region = std::move(region);
      out.exact = true;
      return out;
    }
  }
}

LrCellComputer::Result LrCellComputer::ComputeInverseProbability(int id,
                                                                 const Vec2& pos,
                                                                 int h,
                                                                 Rng& rng) {
  LoopOutcome outcome = RefineCell(id, pos, h, options_.monte_carlo);

  Result result;
  result.queries = outcome.queries;
  result.rounds = outcome.rounds;
  result.region_area = outcome.region.area;
  result.exact = outcome.exact;

  const double region_prob = sampler_->RegionProbability(outcome.region);
  LBSAGG_CHECK_GT(region_prob, 0.0);

  if (outcome.exact) {
    result.inv_probability = 1.0 / region_prob;
    refine_rounds_counter_.Add(static_cast<uint64_t>(result.rounds));
    queries_counter_.Add(result.queries);
    return result;
  }

  // §3.2.4 Monte-Carlo trials: draw f-distributed points from the bounding
  // region V' until one lands in the true cell. E[#trials] = P(V')/P(V), so
  // trials / P(V') is an unbiased estimate of 1/P(V).
  //
  // Lower-bound shortcuts (query-free hits):
  //  * h == 1: the convex hull of vertices confirmed inside the (convex)
  //    cell is contained in the cell.
  //  * any h: if the disc C(x, d(x,t)) fits inside a confirmed cover circle
  //    C(v, d(v,t)), every tuple that can affect t's rank at x has been
  //    observed, so the rank test against history is exact.
  ConvexPolygon hull;
  if (h == 1 && outcome.confirmed_in_cell.size() >= 3) {
    hull = ConvexPolygon::ConvexHull(outcome.confirmed_in_cell);
  }
  std::vector<Circle> cover;
  cover.reserve(outcome.confirmed_cover.size());
  for (const Vec2& v : outcome.confirmed_cover) {
    cover.emplace_back(v, Distance(v, pos));
  }
  const std::vector<Vec2> history_others = history_->OtherPositions(id);

  int trials = 0;
  while (true) {
    ++trials;
    LBSAGG_CHECK_LE(trials, 1000000) << "Monte-Carlo trials runaway";
    const Vec2 x = sampler_->SampleFromRegion(outcome.region, rng);

    if (!hull.IsEmpty() && hull.Contains(x)) break;  // inside the cell

    if (DiscCoveredBySingle(Circle(x, Distance(x, pos)), cover)) {
      // Rank of t at x is fully determined by history.
      if (RankAt(x, pos, history_others) < h) break;
      continue;
    }

    const std::vector<LrClient::Item> items = QueryByDistance(client_, x);
    ++result.queries;
    bool hit = false;
    for (size_t i = 0; i < items.size(); ++i) {
      history_->Record(items[i].id, items[i].location);
      if (items[i].id == id && static_cast<int>(i) < h) hit = true;
    }
    if (hit) break;
  }

  result.mc_trials = trials;
  result.inv_probability = static_cast<double>(trials) / region_prob;
  refine_rounds_counter_.Add(static_cast<uint64_t>(result.rounds));
  mc_trials_counter_.Add(static_cast<uint64_t>(result.mc_trials));
  queries_counter_.Add(result.queries);
  return result;
}

TopkRegion LrCellComputer::ComputeExactCell(int id, const Vec2& pos, int h) {
  LoopOutcome outcome = RefineCell(id, pos, h, /*allow_early_stop=*/false);
  LBSAGG_CHECK(outcome.exact);
  refine_rounds_counter_.Add(static_cast<uint64_t>(outcome.rounds));
  queries_counter_.Add(outcome.queries);
  return std::move(outcome.region);
}

}  // namespace lbsagg
