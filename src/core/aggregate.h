#ifndef LBSAGG_CORE_AGGREGATE_H_
#define LBSAGG_CORE_AGGREGATE_H_

#include <functional>
#include <string>

#include "geometry/vec2.h"
#include "lbs/client.h"

namespace lbsagg {

// Predicate over a *returned* tuple, evaluated through the restricted client
// interface (only returned attributes are accessible). This models the
// "post-processed" selection conditions of §5.1 — conditions the LBS cannot
// evaluate server-side.
using ReturnedTuplePredicate = std::function<bool(const LbsClient&, int id)>;

// An aggregate query: SELECT AGGR(t) FROM D WHERE Cond (§2.3).
//
// The struct captures AGGR and the post-processed part of Cond; pass-through
// conditions are installed on the client via SetPassThroughFilter() and are
// invisible here. AVG is estimated as SUM/COUNT by the estimators (§1.3).
struct AggregateSpec {
  enum class Kind { kCount, kSum, kAvg };

  Kind kind = Kind::kCount;
  int value_column = -1;              // numeric column for kSum / kAvg
  ReturnedTuplePredicate condition;   // may be null (no condition)
  std::string name = "COUNT(*)";      // for reports

  // Optional selection condition over the tuple's *location* (§2.3: "we
  // support the specification of a tuple's location as part of Cond — even
  // when such a location is not returned"). LR estimators evaluate it on
  // the returned coordinates; LNR estimators first localize the tuple
  // (§4.3) and evaluate it on the inferred position.
  std::function<bool(const Vec2&)> position_condition;

  // --- Factories -----------------------------------------------------------

  static AggregateSpec Count();
  static AggregateSpec CountWhere(ReturnedTuplePredicate condition,
                                  std::string name);
  static AggregateSpec Sum(int value_column, std::string name);
  static AggregateSpec SumWhere(int value_column,
                                ReturnedTuplePredicate condition,
                                std::string name);
  static AggregateSpec Avg(int value_column, std::string name);
  static AggregateSpec AvgWhere(int value_column,
                                ReturnedTuplePredicate condition,
                                std::string name);

  // True if the returned tuple passes the (post-processed) condition.
  bool Passes(const LbsClient& client, int id) const;

  // The numerator value of the tuple: 0 when the condition fails, otherwise
  // 1 for COUNT and the column value for SUM/AVG.
  double NumeratorValue(const LbsClient& client, int id) const;

  // The denominator value (only meaningful for kAvg): 0 when the condition
  // fails, 1 otherwise.
  double DenominatorValue(const LbsClient& client, int id) const;
};

// --- Common predicates ------------------------------------------------------

// String column equality, e.g. category == "school".
ReturnedTuplePredicate ColumnEquals(int column, std::string expected);

// Boolean column is true, e.g. open_sunday.
ReturnedTuplePredicate ColumnIsTrue(int column);

// Numeric column >= threshold, e.g. rating >= 4.
ReturnedTuplePredicate ColumnAtLeast(int column, double threshold);

// Conjunction of two predicates.
ReturnedTuplePredicate And(ReturnedTuplePredicate a, ReturnedTuplePredicate b);

}  // namespace lbsagg

#endif  // LBSAGG_CORE_AGGREGATE_H_
