#include "core/mixture_sampler.h"

#include "util/check.h"

namespace lbsagg {

MixtureSampler::MixtureSampler(const QuerySampler* uniform,
                               const QuerySampler* weighted,
                               double uniform_weight)
    : uniform_(uniform), weighted_(weighted), uniform_weight_(uniform_weight) {
  LBSAGG_CHECK(uniform_ != nullptr);
  LBSAGG_CHECK(weighted_ != nullptr);
  LBSAGG_CHECK_GE(uniform_weight_, 0.0);
  LBSAGG_CHECK_LE(uniform_weight_, 1.0);
}

Vec2 MixtureSampler::Sample(Rng& rng) const {
  if (rng.Bernoulli(uniform_weight_)) return uniform_->Sample(rng);
  return weighted_->Sample(rng);
}

double MixtureSampler::RegionProbability(const TopkRegion& region) const {
  return uniform_weight_ * uniform_->RegionProbability(region) +
         (1.0 - uniform_weight_) * weighted_->RegionProbability(region);
}

double MixtureSampler::RegionProbability(const ConvexPolygon& polygon) const {
  return uniform_weight_ * uniform_->RegionProbability(polygon) +
         (1.0 - uniform_weight_) * weighted_->RegionProbability(polygon);
}

Vec2 MixtureSampler::SampleFromRegion(const TopkRegion& region,
                                      Rng& rng) const {
  // Conditional mixture: pick the component proportionally to its share of
  // the region's probability, then sample that component conditioned on the
  // region.
  const double pu = uniform_weight_ * uniform_->RegionProbability(region);
  const double pw =
      (1.0 - uniform_weight_) * weighted_->RegionProbability(region);
  LBSAGG_CHECK_GT(pu + pw, 0.0);
  if (rng.Uniform01() * (pu + pw) < pu) {
    return uniform_->SampleFromRegion(region, rng);
  }
  return weighted_->SampleFromRegion(region, rng);
}

}  // namespace lbsagg
