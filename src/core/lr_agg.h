#ifndef LBSAGG_CORE_LR_AGG_H_
#define LBSAGG_CORE_LR_AGG_H_

#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "core/history.h"
#include "core/lr_cell.h"
#include "core/sampler.h"
#include "lbs/client.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace lbsagg {

// One point of an estimation trace: the running estimate after a sampling
// round, indexed by cumulative interface queries. Figure 12 plots these.
struct TracePoint {
  uint64_t queries = 0;
  double estimate = 0.0;
};

// Per-estimator run diagnostics — what an operator needs to tune λ0, the
// Monte-Carlo thresholds and the budget.
struct LrAggDiagnostics {
  size_t rounds = 0;            // sampling rounds completed
  size_t cells_exact = 0;       // cells pinned down exactly (Theorem 1)
  size_t cells_monte_carlo = 0; // cells finished by §3.2.4 trials
  size_t h_used[8] = {};        // histogram of the h chosen per contribution
                                // (index min(h,7))
  uint64_t cell_queries = 0;    // queries spent inside cell computations
};

// Configuration of Algorithm LR-LBS-AGG (Algorithm 5).
struct LrAggOptions {
  // §3.2.3 adaptive choice of h per returned tuple (Algorithm 4). When
  // false, a fixed h = min(fixed_h, k) is used for every tuple.
  bool adaptive_h = true;
  int fixed_h = 1;

  // λ0 threshold of Algorithm 4 as a fraction of the bounding-box area: a
  // top-h cell whose upper-bound area exceeds λ0 is not worth the queries.
  // The default corresponds to a few times the mean top-1 cell at the
  // benchmark scales (tuned like the paper tuned its λ0).
  double lambda0_fraction = 2e-5;

  // Cell computation flags (§3.2.1, §3.2.2, §3.2.4).
  LrCellOptions cell;

  uint64_t seed = 1;

  // Metric plane for the estimator.lr.* counters and the estimator.lr.ht_weight
  // histogram; null lands on obs::MetricsRegistry::Default(). Propagated into
  // cell.registry when that is unset, so one pointer instruments the whole
  // estimator stack.
  obs::MetricsRegistry* registry = nullptr;

  // When set, each Step() emits an "estimator.round" span with nested
  // "estimator.cell" spans per Horvitz–Thompson cell computation.
  obs::Tracer* tracer = nullptr;
};

// Algorithm LR-LBS-AGG (§3.3): completely unbiased SUM/COUNT estimation
// over a location-returned kNN interface; AVG as SUM/COUNT.
//
// Usage: construct, then call Step() until the client budget is exhausted;
// Estimate() returns the current unbiased estimate and trace() the history
// of running estimates.
class LrAggEstimator {
 public:
  // All pointers must outlive the estimator.
  LrAggEstimator(LrClient* client, const QuerySampler* sampler,
                 const AggregateSpec& aggregate, LrAggOptions options = {});

  // Runs one sampling round: one random query location, Horvitz–Thompson
  // contributions from (up to) all k returned tuples.
  void Step();

  // Current estimate: mean of per-round estimates (kAvg: ratio of means).
  double Estimate() const;

  // Normal-approximation confidence half-width of the estimate (not
  // meaningful for kAvg).
  double ConfidenceHalfWidth(double z = 1.96) const;

  size_t rounds() const { return numerator_.count(); }
  uint64_t queries_used() const { return client_->queries_used(); }
  const LrAggDiagnostics& diagnostics() const { return diagnostics_; }
  const std::vector<TracePoint>& trace() const { return trace_; }
  History& history() { return history_; }
  const LrAggOptions& options() const { return options_; }

 private:
  // Algorithm 4: the largest h ∈ [2, k] with λ_h(t) ≤ λ0, else 1.
  int ChooseH(int id, const Vec2& pos);

  LrClient* client_;
  const QuerySampler* sampler_;
  AggregateSpec aggregate_;
  LrAggOptions options_;
  History history_;
  LrCellComputer cell_computer_;
  Rng rng_;
  RunningStats numerator_;
  RunningStats denominator_;  // used by kAvg only
  LrAggDiagnostics diagnostics_;
  std::vector<TracePoint> trace_;
  obs::CounterRef rounds_counter_;
  obs::CounterRef cells_exact_counter_;
  obs::CounterRef cells_mc_counter_;
  obs::HistogramRef ht_weight_hist_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_LR_AGG_H_
