#ifndef LBSAGG_CORE_LR_AGG_H_
#define LBSAGG_CORE_LR_AGG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/history.h"
#include "core/sampler.h"
#include "core/trace_point.h"
#include "engine/engine.h"
#include "engine/lr_resolver.h"  // LrAggOptions, LrAggDiagnostics
#include "lbs/client.h"

namespace lbsagg {

// Algorithm LR-LBS-AGG (§3.3): completely unbiased SUM/COUNT estimation
// over a location-returned kNN interface; AVG as SUM/COUNT.
//
// A thin adapter over the estimation engine (DESIGN.md §4.9): the sampling
// and cell computation live in engine::LrCellResolver, the HT accumulation
// in a single engine::AggregateQuery. Single-aggregate runs through this
// class are bit-identical to the pre-engine monolith; register further
// aggregates on an engine::EstimationEngine directly to share the budget.
//
// Usage: construct, then call Step() until the client budget is exhausted;
// Estimate() returns the current unbiased estimate and trace() the history
// of running estimates.
class LrAggEstimator {
 public:
  // All pointers must outlive the estimator.
  LrAggEstimator(LrClient* client, const QuerySampler* sampler,
                 const AggregateSpec& aggregate, LrAggOptions options = {});

  // Runs one sampling round: one random query location, Horvitz–Thompson
  // contributions from (up to) all k returned tuples.
  void Step() { engine_.Step(); }

  // Current estimate: mean of per-round estimates (kAvg: ratio of means).
  double Estimate() const { return query_->Estimate(); }

  // Normal-approximation confidence half-width of the estimate (not
  // meaningful for kAvg).
  double ConfidenceHalfWidth(double z = 1.96) const {
    return query_->ConfidenceHalfWidth(z);
  }

  size_t rounds() const { return query_->rounds(); }
  uint64_t queries_used() const { return client_->queries_used(); }
  const LrAggDiagnostics& diagnostics() const {
    return resolver_.diagnostics();
  }
  const std::vector<TracePoint>& trace() const { return query_->trace(); }
  History& history() { return resolver_.history(); }
  const LrAggOptions& options() const { return resolver_.options(); }

  // Resolver diagnostics as raw JSON, picked up by MakeHandle for run
  // reports.
  std::string diagnostics_json() const { return resolver_.diagnostics_json(); }

 private:
  LrClient* client_;
  engine::LrCellResolver resolver_;
  engine::EstimationEngine engine_;
  engine::AggregateQuery* query_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_LR_AGG_H_
