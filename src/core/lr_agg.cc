#include "core/lr_agg.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace lbsagg {

namespace {

// One observability pointer instruments the whole stack: the estimator's
// registry flows into the cell computer unless the caller pinned a
// different plane there explicitly.
LrCellOptions PropagateRegistry(LrCellOptions cell,
                                obs::MetricsRegistry* registry) {
  if (cell.registry == nullptr) cell.registry = registry;
  return cell;
}

}  // namespace

LrAggEstimator::LrAggEstimator(LrClient* client, const QuerySampler* sampler,
                               const AggregateSpec& aggregate,
                               LrAggOptions options)
    : client_(client),
      sampler_(sampler),
      aggregate_(aggregate),
      options_(options),
      cell_computer_(client, &history_, sampler,
                     PropagateRegistry(options.cell, options.registry)),
      rng_(options.seed),
      rounds_counter_(obs::GetCounter(options.registry, "estimator.lr.rounds")),
      cells_exact_counter_(
          obs::GetCounter(options.registry, "estimator.lr.cells_exact")),
      cells_mc_counter_(
          obs::GetCounter(options.registry, "estimator.lr.cells_monte_carlo")),
      ht_weight_hist_(obs::GetHistogram(options.registry,
                                        "estimator.lr.ht_weight",
                                        obs::DecadeBounds(1.0, 1e9))),
      tracer_(options.tracer) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK(sampler_ != nullptr);
  if (!options_.adaptive_h) {
    LBSAGG_CHECK_GE(options_.fixed_h, 1);
  }
}

int LrAggEstimator::ChooseH(int id, const Vec2& pos) {
  const int k = client_->k();
  if (!options_.adaptive_h) return std::min(options_.fixed_h, k);
  if (k == 1) return 1;
  const double lambda0 = options_.lambda0_fraction * client_->region().Area();
  // λ_h is non-decreasing in h: scan upward and stop at the first bound
  // exceeding λ0. In the common case λ_2 already fails and a single region
  // computation decides h = 1.
  int chosen = 1;
  for (int h = 2; h <= k; ++h) {
    const double lambda_h =
        history_.UpperBoundCellArea(id, pos, client_->region(), h);
    if (lambda_h > lambda0) break;
    chosen = h;
  }
  return chosen;
}

void LrAggEstimator::Step() {
  obs::ScopedSpan round_span(tracer_, "estimator.round", "estimator");
  const Vec2 q = sampler_->Sample(rng_);
  std::vector<LrClient::Item> items = client_->Query(q);

  // §5.3: services with non-distance ranking (e.g. Google Places
  // "prominence") can reorder results, but an LR interface always returns
  // locations — re-sorting by actual distance restores the nearest-neighbor
  // semantics every cell argument relies on. A no-op for plain distance
  // ranking.
  std::stable_sort(items.begin(), items.end(),
                   [](const LrClient::Item& a, const LrClient::Item& b) {
                     return a.distance < b.distance;
                   });

  double round_numerator = 0.0;
  double round_denominator = 0.0;

  // Decide h for every returned tuple *before* ingesting the new locations:
  // Algorithm 4 derives h from history alone, keeping the inclusion event
  // independent of the current query's outcome.
  std::vector<int> chosen_h(items.size(), 1);
  for (size_t i = 0; i < items.size(); ++i) {
    chosen_h[i] = ChooseH(items[i].id, items[i].location);
  }
  for (const LrClient::Item& item : items) {
    history_.Record(item.id, item.location);
  }

  for (size_t i = 0; i < items.size(); ++i) {
    const LrClient::Item& item = items[i];
    const int rank = static_cast<int>(i) + 1;
    const int h = chosen_h[i];
    // The sample "q ∈ V_h(t)" occurred iff t ranks within the top h, so a
    // tuple only contributes when rank <= h (see DESIGN.md on the Eq. (2)
    // inclusion condition).
    if (rank > h) continue;

    // Location-based selection conditions use the returned coordinates
    // directly on LR interfaces (§2.3).
    if (aggregate_.position_condition &&
        !aggregate_.position_condition(item.location)) {
      continue;
    }
    const double numerator_value = aggregate_.NumeratorValue(*client_, item.id);
    const double denominator_value =
        aggregate_.DenominatorValue(*client_, item.id);
    if (numerator_value == 0.0 && denominator_value == 0.0) continue;
    if (numerator_value == 0.0 && aggregate_.kind != AggregateSpec::Kind::kAvg) {
      // COUNT/SUM with a failed condition: the Horvitz–Thompson contribution
      // is exactly 0 — no need to compute the cell.
      continue;
    }

    LrCellComputer::Result cell;
    {
      obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
      cell = cell_computer_.ComputeInverseProbability(item.id, item.location,
                                                      h, rng_);
    }
    diagnostics_.cell_queries += cell.queries;
    if (cell.exact) {
      ++diagnostics_.cells_exact;
      cells_exact_counter_.Add(1);
    } else {
      ++diagnostics_.cells_monte_carlo;
      cells_mc_counter_.Add(1);
    }
    ht_weight_hist_.Observe(cell.inv_probability);
    ++diagnostics_.h_used[std::min<size_t>(h, 7)];
    round_numerator += numerator_value * cell.inv_probability;
    round_denominator += denominator_value * cell.inv_probability;
  }

  numerator_.Add(round_numerator);
  denominator_.Add(round_denominator);
  ++diagnostics_.rounds;
  rounds_counter_.Add(1);
  trace_.push_back({client_->queries_used(), Estimate()});
}

double LrAggEstimator::Estimate() const {
  if (numerator_.count() == 0) return 0.0;
  if (aggregate_.kind == AggregateSpec::Kind::kAvg) {
    if (denominator_.mean() == 0.0) return 0.0;
    return numerator_.mean() / denominator_.mean();
  }
  return numerator_.mean();
}

double LrAggEstimator::ConfidenceHalfWidth(double z) const {
  return numerator_.ConfidenceHalfWidth(z);
}

}  // namespace lbsagg
