#ifndef LBSAGG_CORE_MIXTURE_SAMPLER_H_
#define LBSAGG_CORE_MIXTURE_SAMPLER_H_

#include "core/sampler.h"

namespace lbsagg {

// Defensive mixture of two query-location distributions (§5.2 context):
// with probability `uniform_weight` draw uniformly, otherwise from the
// weighted sampler. External knowledge (a census) can be arbitrarily wrong
// without breaking unbiasedness, but a census that *misses* a populated
// area would leave its tuples with near-zero inclusion probability and thus
// explosive Horvitz–Thompson weights; the uniform component floors every
// location's density — the standard importance-sampling safeguard.
//
// Region probabilities stay exact: the mixture pdf integrates as the convex
// combination of the component integrals.
class MixtureSampler : public QuerySampler {
 public:
  // Both samplers must cover the same box and outlive the mixture.
  MixtureSampler(const QuerySampler* uniform, const QuerySampler* weighted,
                 double uniform_weight);

  Vec2 Sample(Rng& rng) const override;
  double RegionProbability(const TopkRegion& region) const override;
  double RegionProbability(const ConvexPolygon& polygon) const override;
  Vec2 SampleFromRegion(const TopkRegion& region, Rng& rng) const override;
  const Box& box() const override { return uniform_->box(); }

 private:
  const QuerySampler* uniform_;
  const QuerySampler* weighted_;
  double uniform_weight_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_MIXTURE_SAMPLER_H_
