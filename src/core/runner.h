#ifndef LBSAGG_CORE_RUNNER_H_
#define LBSAGG_CORE_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/trace_point.h"
#include "obs/report.h"
#include "util/stats.h"

namespace lbsagg {

namespace engine {
class DurableEvidenceLog;
class EstimationEngine;
}  // namespace engine

// Type-erased handle over any estimator (LrAggEstimator, LnrAggEstimator,
// NnoEstimator, ...) so the experiment driver can sweep them uniformly.
struct EstimatorHandle {
  std::function<void()> step;
  std::function<double()> estimate;
  std::function<uint64_t()> queries_used;
  // Optional: 95% confidence half-width of the current estimate.
  std::function<double()> confidence_half_width;
  // Optional: estimator diagnostics as a raw JSON object — embedded by
  // BuildRunReport without estimator-specific branches.
  std::function<std::string()> diagnostics_json;
};

// Wraps a concrete estimator type exposing Step()/Estimate()/queries_used()
// and, when available, ConfidenceHalfWidth() and diagnostics_json().
template <typename Estimator>
EstimatorHandle MakeHandle(Estimator* estimator) {
  EstimatorHandle handle{
      [estimator] { estimator->Step(); },
      [estimator] { return estimator->Estimate(); },
      [estimator] { return estimator->queries_used(); },
      nullptr,
      nullptr,
  };
  if constexpr (requires { estimator->ConfidenceHalfWidth(); }) {
    handle.confidence_half_width = [estimator] {
      return estimator->ConfidenceHalfWidth();
    };
  }
  if constexpr (requires {
                  { estimator->diagnostics_json() } -> std::convertible_to<std::string>;
                }) {
    handle.diagnostics_json = [estimator] {
      return estimator->diagnostics_json();
    };
  }
  return handle;
}

// One run: estimate trace until the query budget is reached.
struct RunResult {
  std::vector<TracePoint> trace;
  double final_estimate = 0.0;
  uint64_t queries = 0;
};

// Steps the estimator until `budget` queries have been issued (the round in
// flight when the budget trips is allowed to finish — the paper's soft
// rate-limit semantics) or `max_rounds` sampling rounds completed.
//
// Retries and the budget: `handle.queries_used` reports the client's
// counter, and through a retrying transport that counter charges once per
// *interface attempt*, not once per logical query (§2.1 meters what hits
// the service — a query that succeeded on its third attempt consumed three
// slots of the service's rate limit). So under fault injection a run
// finishes fewer sampling rounds for the same budget, which is precisely
// the degradation the transport exists to measure; the soft-budget
// semantics are unchanged (the round in flight when attempts exhaust the
// budget still completes). Pinned by transport_test.cc.
RunResult RunWithBudget(const EstimatorHandle& handle, uint64_t budget,
                        size_t max_rounds = 1u << 20);

// Steps the estimator until the 95% confidence half-width falls below
// `target_fraction` of the current estimate (the practical stopping rule of
// §2.3: approximate the population variance with the Bessel-corrected
// sample variance), after at least `min_rounds` rounds; `budget` still
// bounds the run. Requires a handle with confidence_half_width.
RunResult RunUntilConfidence(const EstimatorHandle& handle,
                             double target_fraction, uint64_t budget,
                             size_t min_rounds = 30);

// Engine-native sweep path: steps the engine until `budget` interface
// queries have been issued (soft-budget semantics as above) or `max_rounds`
// rounds completed, then returns one RunResult per registered aggregate —
// all carved from the same evidence stream, so the N results together cost
// one budget. results[i] corresponds to engine->aggregate(i).
std::vector<RunResult> RunEngineWithBudget(engine::EstimationEngine* engine,
                                           uint64_t budget,
                                           size_t max_rounds = 1u << 20);

// Durable variant (DESIGN.md §4.14): identical loop and results, but the
// round-aligned checkpoint policy runs between steps — MaybeCheckpoint
// after every committed round, Close (final checkpoint + sync) when the
// budget trips. The engine must already carry the `wal` sink; on a resumed
// engine the loop continues from the restored query count, and `max_rounds`
// bounds the rounds executed by *this call* (the kill-after-rounds harness
// leans on that). A null `wal` degrades to the plain overload.
std::vector<RunResult> RunEngineWithBudget(engine::EstimationEngine* engine,
                                           engine::DurableEvidenceLog* wal,
                                           uint64_t budget,
                                           size_t max_rounds = 1u << 20);

// The running estimate of a trace at query cost `c` (last round completed at
// or before c; 0 before the first round).
double EstimateAtCost(const std::vector<TracePoint>& trace, uint64_t cost);

// Mean relative error across runs at each query-cost checkpoint. The
// checkpoints are `num_checkpoints` evenly spaced costs up to the smallest
// final cost across runs.
struct ErrorCurve {
  std::vector<uint64_t> checkpoints;
  std::vector<double> mean_rel_error;
};
ErrorCurve ComputeErrorCurve(const std::vector<RunResult>& runs, double truth,
                             int num_checkpoints = 60);

// Smallest checkpointed query cost at which the mean relative error drops
// to `target` (linear interpolation between checkpoints). Returns the last
// checkpoint cost when the target is never reached (callers report it as a
// lower bound).
double QueryCostForError(const ErrorCurve& curve, double target);

// Assembles the single run-report artifact (DESIGN.md §4.8) from one run:
// run meta (estimator name, final estimate, query cost, rounds), a
// RunningStats summary of the running-estimate trace, and a snapshot of the
// metric plane — which carries whatever the run's components published
// (estimator.*, client.*, spatial.*, engine.*, transport.*).
// `registry == nullptr` snapshots obs::MetricsRegistry::Default(). Callers
// layer on extra context via AddStats/SetMeta/AddJsonSection (e.g. the
// transport's own JSON).
obs::RunReport BuildRunReport(const std::string& estimator_name,
                              const RunResult& result,
                              obs::MetricsRegistry* registry = nullptr);

// Same, plus the handle's diagnostics_json (when bound) as the
// "diagnostics" section — per-estimator diagnostics with no
// estimator-specific branches here.
obs::RunReport BuildRunReport(const std::string& estimator_name,
                              const RunResult& result,
                              const EstimatorHandle& handle,
                              obs::MetricsRegistry* registry = nullptr);

}  // namespace lbsagg

#endif  // LBSAGG_CORE_RUNNER_H_
