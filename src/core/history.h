#ifndef LBSAGG_CORE_HISTORY_H_
#define LBSAGG_CORE_HISTORY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "geometry/box.h"
#include "geometry/topk_region.h"
#include "geometry/vec2.h"
#include "spatial/kdtree.h"

namespace lbsagg {

// Store of every tuple location observed so far across queries (§3.2.2,
// "Leverage history on Voronoi-cell computation"). LBS tuples are static, so
// once a tuple's location is seen it can seed the initial Voronoi cell of
// every later computation and provide the upper bounds λ_h(t) used by the
// adaptive-h variance reduction (§3.2.3).
class History {
 public:
  History() = default;

  // Records a tuple location (idempotent).
  void Record(int id, const Vec2& pos);

  bool Known(int id) const { return by_id_.count(id) > 0; }
  const Vec2& Position(int id) const;
  size_t size() const { return entries_.size(); }

  // Positions of all known tuples except `excluded_id` (-1 = none).
  std::vector<Vec2> OtherPositions(int excluded_id) const;

  // Every recorded (id, position) in insertion order — the checkpoint
  // serialization of the history. Replaying these through Record() on a
  // fresh History reproduces the full state bit-identically, kd-index
  // included: the rebuild points are a pure function of the insertion
  // sequence (size thresholds), and the tree build is deterministic.
  std::vector<std::pair<int, Vec2>> Entries() const;

  // Positions of the `limit` known tuples nearest to `p`, excluding
  // `excluded_id`, ascending by (squared distance, insertion order). This is
  // query-free offline work (free in the paper's §2.1 cost model) but it
  // runs once per cell computation, which made the linear scan the top
  // wall-clock cost of an LR run; the scan is replaced by a kd-tree over
  // the settled prefix of the history (rebuilt on doubling) plus a linear
  // pass over the recent tail.
  std::vector<Vec2> NearestOtherPositions(const Vec2& p, int excluded_id,
                                          size_t limit) const;

  // Upper bound λ_h on the area of the top-h Voronoi cell of the tuple at
  // `pos` (§3.2.3): the cell computed from a subset of the database always
  // contains the true cell, so its area from history is a valid bound. At
  // most `max_constraints` nearest history tuples are used (a looser bound
  // is still a bound).
  double UpperBoundCellArea(int id, const Vec2& pos, const Box& box, int h,
                            size_t max_constraints = 64) const;

 private:
  struct Entry {
    int id;
    Vec2 pos;
  };

  // Index entries_[0..indexed_) once the history is big enough for the
  // rebuild to pay for itself; rebuilt when entries_ doubles past it, so
  // total rebuild work stays O(n log n) over a run.
  static constexpr size_t kIndexThreshold = 128;
  void RebuildIndex();

  std::vector<Entry> entries_;
  std::unordered_map<int, Vec2> by_id_;
  std::unique_ptr<KdTree> index_;  // over entries_[0..indexed_)
  size_t indexed_ = 0;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_HISTORY_H_
