#ifndef LBSAGG_CORE_HISTORY_H_
#define LBSAGG_CORE_HISTORY_H_

#include <unordered_map>
#include <vector>

#include "geometry/box.h"
#include "geometry/topk_region.h"
#include "geometry/vec2.h"

namespace lbsagg {

// Store of every tuple location observed so far across queries (§3.2.2,
// "Leverage history on Voronoi-cell computation"). LBS tuples are static, so
// once a tuple's location is seen it can seed the initial Voronoi cell of
// every later computation and provide the upper bounds λ_h(t) used by the
// adaptive-h variance reduction (§3.2.3).
class History {
 public:
  History() = default;

  // Records a tuple location (idempotent).
  void Record(int id, const Vec2& pos);

  bool Known(int id) const { return by_id_.count(id) > 0; }
  const Vec2& Position(int id) const;
  size_t size() const { return entries_.size(); }

  // Positions of all known tuples except `excluded_id` (-1 = none).
  std::vector<Vec2> OtherPositions(int excluded_id) const;

  // Positions of the `limit` known tuples nearest to `p`, excluding
  // `excluded_id`. Linear scan — history sizes stay in the thousands and
  // this is query-free offline work, which the paper treats as free
  // relative to interface calls (§2.1).
  std::vector<Vec2> NearestOtherPositions(const Vec2& p, int excluded_id,
                                          size_t limit) const;

  // Upper bound λ_h on the area of the top-h Voronoi cell of the tuple at
  // `pos` (§3.2.3): the cell computed from a subset of the database always
  // contains the true cell, so its area from history is a valid bound. At
  // most `max_constraints` nearest history tuples are used (a looser bound
  // is still a bound).
  double UpperBoundCellArea(int id, const Vec2& pos, const Box& box, int h,
                            size_t max_constraints = 64) const;

 private:
  struct Entry {
    int id;
    Vec2 pos;
  };
  std::vector<Entry> entries_;
  std::unordered_map<int, Vec2> by_id_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_HISTORY_H_
