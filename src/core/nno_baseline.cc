#include "core/nno_baseline.h"

#include "util/check.h"

namespace lbsagg {

NnoEstimator::NnoEstimator(LrClient* client, const AggregateSpec& aggregate,
                           NnoOptions options)
    : client_(client),
      resolver_(client, options),
      engine_(&resolver_,
              engine::EngineOptions{options.registry, options.tracer}),
      query_(engine_.AddAggregate(aggregate)) {
  LBSAGG_CHECK(client_ != nullptr);
}

}  // namespace lbsagg
