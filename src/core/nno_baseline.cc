#include "core/nno_baseline.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace lbsagg {

NnoEstimator::NnoEstimator(LrClient* client, const AggregateSpec& aggregate,
                           NnoOptions options)
    : client_(client),
      aggregate_(aggregate),
      options_(options),
      rng_(options.seed),
      rounds_counter_(obs::GetCounter(options.registry, "estimator.nno.rounds")),
      growth_rounds_counter_(
          obs::GetCounter(options.registry, "estimator.nno.growth_rounds")),
      mc_probes_counter_(
          obs::GetCounter(options.registry, "estimator.nno.mc_probes")),
      mc_hits_counter_(
          obs::GetCounter(options.registry, "estimator.nno.mc_hits")),
      tracer_(options.tracer) {
  LBSAGG_CHECK(client_ != nullptr);
  LBSAGG_CHECK_GE(options_.ring_points, 3);
  LBSAGG_CHECK_GE(options_.area_samples, 1);
}

double NnoEstimator::EstimateCellArea(int id, const Vec2& pos) {
  const Box& box = client_->region();

  // Grow a disc around t until a probe ring no longer returns t anywhere —
  // heuristic containment of V(t), as in the bias-prone prior approach.
  double radius =
      options_.init_radius_factor * 1e-4 * Distance(box.lo, box.hi);
  for (int round = 0; round < options_.max_growth_rounds; ++round) {
    growth_rounds_counter_.Add(1);
    bool any_hit = false;
    for (int i = 0; i < options_.ring_points; ++i) {
      const double angle = 2.0 * M_PI * (i + 0.5 * (round % 2)) /
                           options_.ring_points;
      const Vec2 probe =
          box.Clamp(pos + Vec2{std::cos(angle), std::sin(angle)} * radius);
      const std::vector<LrClient::Item> items = client_->Query(probe);
      if (!items.empty() && items.front().id == id) {
        any_hit = true;
        break;
      }
    }
    if (!any_hit) break;
    radius *= 2.0;
  }

  // Multi-scale Monte-Carlo area estimate: membership probes in dyadic
  // annuli from `radius` down, so the estimate keeps relative precision
  // whether the cell fills the disc or only its very center. The estimate
  // of |V(t)| is (roughly) unbiased; the estimator 1/|V̂| is not — the
  // inherent bias of [10] that LR-LBS-AGG eliminates.
  constexpr int kLevels = 8;
  const int per_level = std::max(2, options_.area_samples / kLevels);
  double area = 0.0;
  double outer = radius;
  for (int level = 0; level < kLevels; ++level) {
    const double inner = outer * 0.5;
    // The membership probes of one annulus are mutually independent, so
    // they go through the client's batch path — pipelined across the
    // dispatcher's workers when one is attached, with the exact same
    // probe sequence, accounting, and result pages either way. All rng
    // draws happen up front, in the sequential order.
    std::vector<Vec2> probes;
    probes.reserve(per_level);
    for (int i = 0; i < per_level; ++i) {
      // Uniform in the annulus (inner, outer].
      const double u = rng_.Uniform01();
      const double r =
          std::sqrt(inner * inner + u * (outer * outer - inner * inner));
      const double angle = rng_.Uniform(0.0, 2.0 * M_PI);
      const Vec2 probe = pos + Vec2{std::cos(angle), std::sin(angle)} * r;
      if (!box.Contains(probe)) continue;  // free: outside the region
      probes.push_back(probe);
    }
    int hits = 0;
    for (const std::vector<LrClient::Item>& items :
         client_->QueryBatch(probes)) {
      if (!items.empty() && items.front().id == id) ++hits;
    }
    mc_probes_counter_.Add(probes.size());
    mc_hits_counter_.Add(static_cast<uint64_t>(hits));
    const double annulus = M_PI * (outer * outer - inner * inner);
    if (per_level > 0) {
      // The out-of-box share of the annulus contributes no area.
      area += annulus * hits / per_level;
    }
    outer = inner;
  }
  // The innermost disc is t's immediate neighborhood: count it as owned.
  area += M_PI * outer * outer;
  return area;
}

void NnoEstimator::Step() {
  obs::ScopedSpan round_span(tracer_, "estimator.round", "estimator");
  rounds_counter_.Add(1);
  const Box& box = client_->region();
  const Vec2 q = box.SamplePoint(rng_);
  const std::vector<LrClient::Item> items = client_->Query(q);
  if (items.empty()) {
    numerator_.Add(0.0);
    denominator_.Add(0.0);
    trace_.push_back({client_->queries_used(), Estimate()});
    return;
  }

  // Top-1 only — the remaining k-1 results are discarded by this method.
  const LrClient::Item& top = items.front();
  const bool position_ok = !aggregate_.position_condition ||
                           aggregate_.position_condition(top.location);
  const double numerator_value =
      position_ok ? aggregate_.NumeratorValue(*client_, top.id) : 0.0;
  const double denominator_value =
      position_ok ? aggregate_.DenominatorValue(*client_, top.id) : 0.0;

  double round_numerator = 0.0;
  double round_denominator = 0.0;
  if (numerator_value != 0.0 || denominator_value != 0.0) {
    double area = 0.0;
    {
      obs::ScopedSpan cell_span(tracer_, "estimator.cell", "estimator");
      area = EstimateCellArea(top.id, top.location);
    }
    const double inv_p = box.Area() / area;
    round_numerator = numerator_value * inv_p;
    round_denominator = denominator_value * inv_p;
  }
  numerator_.Add(round_numerator);
  denominator_.Add(round_denominator);
  trace_.push_back({client_->queries_used(), Estimate()});
}

double NnoEstimator::Estimate() const {
  if (numerator_.count() == 0) return 0.0;
  if (aggregate_.kind == AggregateSpec::Kind::kAvg) {
    if (denominator_.mean() == 0.0) return 0.0;
    return numerator_.mean() / denominator_.mean();
  }
  return numerator_.mean();
}

}  // namespace lbsagg
