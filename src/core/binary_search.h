#ifndef LBSAGG_CORE_BINARY_SEARCH_H_
#define LBSAGG_CORE_BINARY_SEARCH_H_

#include <functional>
#include <optional>
#include <vector>

#include "geometry/line.h"
#include "lbs/client.h"
#include "obs/obs.h"

namespace lbsagg {

// Parameters of the Appendix-A binary search. δ is the along-ray segment
// tolerance and δ' the lateral offset of the two tilted rays; the maximum
// edge error obeys Theorem 3: ε ≤ max(2δ', b·sin(arctan(δ/δ'))). Both are
// expressed as fractions of the bounding-box diagonal.
struct BinarySearchOptions {
  double delta_fraction = 1e-9;
  double delta_prime_fraction = 1e-5;
  int max_steps = 80;  // cap per one-dimensional search

  // Metric plane for the estimator.binary_search.* counters (probes, plus a
  // bisection-depth histogram per one-dimensional search); null lands on
  // obs::MetricsRegistry::Default(). Estimators propagate their registry
  // here when this is unset.
  obs::MetricsRegistry* registry = nullptr;
};

// Which membership predicate defines the cell being traced:
//  * kTop1 — "the tuple is the number-one result" (convex top-1 cell);
//  * kTopK — "the tuple appears anywhere in the top-k" (top-k cell, §4.2).
enum class CellMembership {
  kTop1,
  kTopK,
};

// One inferred Voronoi edge (Algorithm 7 output).
struct EdgeEstimate {
  // Estimated edge line, oriented so the cell side (containing c1) has
  // Side < 0.
  Line edge;
  // The tuple just beyond the edge (t' in the paper); -1 for a box edge.
  int neighbor_id = -1;
  bool is_box_edge = false;
  // Witness locations: `near` returns the focal tuple, `far` does not (and
  // returns neighbor_id). Used by §4.2 and by tuple localization (§4.3).
  Vec2 near_witness;
  Vec2 far_witness;
};

// Outcome of a generic one-dimensional membership search.
struct FlipPoint {
  Vec2 midpoint;             // midpoint of the final δ-segment
  Vec2 near;                 // last location where the predicate held
  Vec2 far;                  // last location where it did not
  std::vector<int> far_ids;  // query result at `far`
  std::vector<int> near_ids; // query result at `near`
};

// The Appendix-A binary search primitive over an LNR interface: infers
// Voronoi edges of a tuple's cell from ranked ids alone, to arbitrary
// precision, in O(log(b/δ)) queries per one-dimensional search.
class LnrEdgeFinder {
 public:
  LnrEdgeFinder(LnrClient* client, BinarySearchOptions options,
                CellMembership membership);

  // Finds the Voronoi edge of tuple `id` intersecting the half-line from c1
  // through c2 (Algorithm 7). Requires the membership predicate to hold at
  // c1. Issues up to 3·log(b/δ) queries. Returns nullopt when c1 turns out
  // not to return the tuple (caller raced/struck an edge exactly).
  std::optional<EdgeEstimate> FindEdgeOnRay(int id, const Vec2& c1,
                                            const Vec2& c2);

  // Generic primitive: binary-searches segment (a, b) for the flip point of
  // an arbitrary predicate over ranked result ids. Verifies pred(a) && !pred(b)
  // first (2 queries) and returns nullopt when they do not straddle.
  std::optional<FlipPoint> FindFlipOnSegment(
      const std::function<bool(const std::vector<int>&)>& predicate,
      const Vec2& a, const Vec2& b);

  // Estimates the straight boundary line separating the predicate's true
  // and false regions near the segment (true_pt, false_pt).
  //
  // Robust variant of the Algorithm-7 two-point construction for the
  // concave top-k case (§4.2), where a long second segment can latch onto a
  // *different* branch of the boundary: three flip points are taken within
  // a window of half-width `baseline` around the main crossing, shrinking
  // the window until they are collinear — which certifies that all three
  // lie on the same straight boundary piece. Returns nullopt when no window
  // verifies (e.g. the boundary is tightly curved or the anchors race).
  // The caller orients the returned line. The optional `validator` is
  // applied to every flip used (e.g. "t's rank moved by exactly one" — the
  // signature of a genuine B(t, t'') crossing); flips failing it are
  // discarded, shrinking the window.
  std::optional<Line> FindBoundaryLine(
      const std::function<bool(const std::vector<int>&)>& predicate,
      const Vec2& true_pt, const Vec2& false_pt, double baseline,
      const std::function<bool(const FlipPoint&)>& validator = nullptr);

  // The membership predicate applied to a raw ranked-id result.
  bool IsMember(const std::vector<int>& ids, int id) const;

  // Observer invoked with every (location, ranked ids) answer the finder
  // receives. Lets callers harvest co-occurrence information from the many
  // queries a binary search issues (§4.2 needs the set of tuples seen
  // together with the focal one).
  using QueryObserver =
      std::function<void(const Vec2&, const std::vector<int>&)>;
  void SetObserver(QueryObserver observer) { observer_ = std::move(observer); }

  double delta() const { return delta_; }
  double delta_prime() const { return delta_prime_; }

 private:
  // Issues one query, notifying the observer.
  std::vector<int> Probe(const Vec2& p);

  LnrClient* client_;
  BinarySearchOptions options_;
  CellMembership membership_;
  QueryObserver observer_;
  double delta_;
  double delta_prime_;
  obs::CounterRef probes_counter_;
  obs::HistogramRef depth_hist_;
};

}  // namespace lbsagg

#endif  // LBSAGG_CORE_BINARY_SEARCH_H_
