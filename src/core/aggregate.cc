#include "core/aggregate.h"

#include "util/check.h"

namespace lbsagg {

AggregateSpec AggregateSpec::Count() {
  AggregateSpec spec;
  spec.kind = Kind::kCount;
  spec.name = "COUNT(*)";
  return spec;
}

AggregateSpec AggregateSpec::CountWhere(ReturnedTuplePredicate condition,
                                        std::string name) {
  AggregateSpec spec;
  spec.kind = Kind::kCount;
  spec.condition = std::move(condition);
  spec.name = std::move(name);
  return spec;
}

AggregateSpec AggregateSpec::Sum(int value_column, std::string name) {
  AggregateSpec spec;
  spec.kind = Kind::kSum;
  spec.value_column = value_column;
  spec.name = std::move(name);
  return spec;
}

AggregateSpec AggregateSpec::SumWhere(int value_column,
                                      ReturnedTuplePredicate condition,
                                      std::string name) {
  AggregateSpec spec = Sum(value_column, std::move(name));
  spec.condition = std::move(condition);
  return spec;
}

AggregateSpec AggregateSpec::Avg(int value_column, std::string name) {
  AggregateSpec spec;
  spec.kind = Kind::kAvg;
  spec.value_column = value_column;
  spec.name = std::move(name);
  return spec;
}

AggregateSpec AggregateSpec::AvgWhere(int value_column,
                                      ReturnedTuplePredicate condition,
                                      std::string name) {
  AggregateSpec spec = Avg(value_column, std::move(name));
  spec.condition = std::move(condition);
  return spec;
}

bool AggregateSpec::Passes(const LbsClient& client, int id) const {
  return !condition || condition(client, id);
}

double AggregateSpec::NumeratorValue(const LbsClient& client, int id) const {
  if (!Passes(client, id)) return 0.0;
  if (kind == Kind::kCount) return 1.0;
  LBSAGG_CHECK_GE(value_column, 0) << "SUM/AVG needs a value column";
  return client.NumericAttribute(id, value_column);
}

double AggregateSpec::DenominatorValue(const LbsClient& client, int id) const {
  return Passes(client, id) ? 1.0 : 0.0;
}

ReturnedTuplePredicate ColumnEquals(int column, std::string expected) {
  return [column, expected = std::move(expected)](const LbsClient& client,
                                                  int id) {
    const AttrValue v = client.Attribute(id, column);
    const std::string* s = std::get_if<std::string>(&v);
    return s != nullptr && *s == expected;
  };
}

ReturnedTuplePredicate ColumnIsTrue(int column) {
  return [column](const LbsClient& client, int id) {
    const AttrValue v = client.Attribute(id, column);
    const bool* b = std::get_if<bool>(&v);
    return b != nullptr && *b;
  };
}

ReturnedTuplePredicate ColumnAtLeast(int column, double threshold) {
  return [column, threshold](const LbsClient& client, int id) {
    const AttrValue v = client.Attribute(id, column);
    const double* d = std::get_if<double>(&v);
    return d != nullptr && *d >= threshold;
  };
}

ReturnedTuplePredicate And(ReturnedTuplePredicate a,
                           ReturnedTuplePredicate b) {
  return [a = std::move(a), b = std::move(b)](const LbsClient& client,
                                              int id) {
    return a(client, id) && b(client, id);
  };
}

}  // namespace lbsagg
