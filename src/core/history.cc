#include "core/history.h"

#include <algorithm>

#include "util/check.h"

namespace lbsagg {

void History::Record(int id, const Vec2& pos) {
  auto [it, inserted] = by_id_.emplace(id, pos);
  if (!inserted) return;
  entries_.push_back({id, pos});
  if (entries_.size() >= kIndexThreshold && entries_.size() >= 2 * indexed_) {
    RebuildIndex();
  }
}

void History::RebuildIndex() {
  std::vector<Vec2> pts;
  pts.reserve(entries_.size());
  for (const Entry& e : entries_) pts.push_back(e.pos);
  indexed_ = pts.size();
  index_ = std::make_unique<KdTree>(std::move(pts));
}

const Vec2& History::Position(int id) const {
  const auto it = by_id_.find(id);
  LBSAGG_CHECK(it != by_id_.end()) << "unknown tuple " << id;
  return it->second;
}

std::vector<std::pair<int, Vec2>> History::Entries() const {
  std::vector<std::pair<int, Vec2>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.emplace_back(e.id, e.pos);
  return out;
}

std::vector<Vec2> History::OtherPositions(int excluded_id) const {
  std::vector<Vec2> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.id != excluded_id) out.push_back(e.pos);
  }
  return out;
}

std::vector<Vec2> History::NearestOtherPositions(const Vec2& p,
                                                 int excluded_id,
                                                 size_t limit) const {
  // Candidates ranked by the exact (squared distance, insertion order)
  // total order — the same order the kd-tree ranks by, so the indexed and
  // linear paths agree bit-for-bit.
  struct Candidate {
    double d2;
    size_t idx;
  };
  std::vector<Candidate> cand;
  cand.reserve(indexed_ ? limit + (entries_.size() - indexed_)
                        : entries_.size());

  if (index_) {
    // At most one entry is excluded, so limit+1 tree results always contain
    // the limit best admissible indexed entries.
    const auto tree = index_->Nearest(p, static_cast<int>(limit) + 1);
    for (const Neighbor& n : tree) {
      const size_t idx = static_cast<size_t>(n.index);
      if (entries_[idx].id == excluded_id) continue;
      cand.push_back({SquaredDistance(p, entries_[idx].pos), idx});
    }
  }
  for (size_t i = indexed_; i < entries_.size(); ++i) {
    if (entries_[i].id == excluded_id) continue;
    cand.push_back({SquaredDistance(p, entries_[i].pos), i});
  }

  const size_t keep = std::min(limit, cand.size());
  const auto better = [](const Candidate& a, const Candidate& b) {
    return a.d2 < b.d2 || (a.d2 == b.d2 && a.idx < b.idx);
  };
  std::partial_sort(cand.begin(), cand.begin() + keep, cand.end(), better);
  std::vector<Vec2> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(entries_[cand[i].idx].pos);
  return out;
}

double History::UpperBoundCellArea(int id, const Vec2& pos, const Box& box,
                                   int h, size_t max_constraints) const {
  const std::vector<Vec2> others =
      NearestOtherPositions(pos, id, max_constraints);
  if (others.empty()) return box.Area();
  return ComputeTopkRegion(pos, others, box, h).area;
}

}  // namespace lbsagg
