#include "core/history.h"

#include <algorithm>

#include "util/check.h"

namespace lbsagg {

void History::Record(int id, const Vec2& pos) {
  auto [it, inserted] = by_id_.emplace(id, pos);
  if (inserted) entries_.push_back({id, pos});
}

const Vec2& History::Position(int id) const {
  const auto it = by_id_.find(id);
  LBSAGG_CHECK(it != by_id_.end()) << "unknown tuple " << id;
  return it->second;
}

std::vector<Vec2> History::OtherPositions(int excluded_id) const {
  std::vector<Vec2> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.id != excluded_id) out.push_back(e.pos);
  }
  return out;
}

std::vector<Vec2> History::NearestOtherPositions(const Vec2& p,
                                                 int excluded_id,
                                                 size_t limit) const {
  std::vector<std::pair<double, Vec2>> dists;
  dists.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.id == excluded_id) continue;
    dists.push_back({SquaredDistance(p, e.pos), e.pos});
  }
  const size_t keep = std::min(limit, dists.size());
  std::partial_sort(dists.begin(), dists.begin() + keep, dists.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
  std::vector<Vec2> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.push_back(dists[i].second);
  return out;
}

double History::UpperBoundCellArea(int id, const Vec2& pos, const Box& box,
                                   int h, size_t max_constraints) const {
  const std::vector<Vec2> others =
      NearestOtherPositions(pos, id, max_constraints);
  if (others.empty()) return box.Area();
  return ComputeTopkRegion(pos, others, box, h).area;
}

}  // namespace lbsagg
